package cmabhs

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cmabhs/internal/aggregate"
	"cmabhs/internal/bandit"
	"cmabhs/internal/core"
	"cmabhs/internal/economics"
	"cmabhs/internal/faults"
	"cmabhs/internal/game"
	"cmabhs/internal/market"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
)

// Seller describes one candidate data seller: its private quadratic
// cost C(τ) = (a·τ² + b·τ)·q̄ and its true expected sensing quality.
// The quality drives the simulated observations and the regret
// accounting; the mechanism itself never reads it.
type Seller struct {
	CostQuadratic   float64 // a > 0
	CostLinear      float64 // b ≥ 0
	ExpectedQuality float64 // q ∈ [0, 1]
}

// Policy selects the bandit algorithm driving seller selection.
type Policy string

// Supported policies. PolicyCMABHS is the paper's mechanism; the
// rest are the baselines and extensions of the evaluation.
const (
	PolicyCMABHS        Policy = "cmab-hs"       // extended-UCB greedy (the paper's mechanism)
	PolicyOptimal       Policy = "optimal"       // oracle knowing the true qualities
	PolicyEpsilonFirst  Policy = "epsilon-first" // explore first ε·N rounds, then greedy
	PolicyEpsilonGreedy Policy = "epsilon-greedy"
	PolicyRandom        Policy = "random"
	PolicyThompson      Policy = "thompson"
	PolicyUCB1          Policy = "ucb1"   // classic UCB1 index (ablation)
	PolicySlidingWindow Policy = "sw-ucb" // windowed UCB for drifting qualities
	PolicyDiscounted    Policy = "d-ucb"  // discounted UCB for drifting qualities
)

// Drift makes the sellers' expected qualities non-stationary:
// seller i's expectation oscillates around its configured level with
// the given amplitude and period (in rounds), clamped to [0, 1].
// With drift enabled, Result.DynamicRegret measures regret against
// the per-round oracle.
type Drift struct {
	Amplitude float64 // peak deviation from the base quality, in [0, 1]
	Period    float64 // rounds per oscillation cycle (> 0)
}

// FaultConfig turns on the composable fault-injection layer. Each
// sub-model activates independently; the zero value injects nothing
// and is bit-identical to running without a fault layer. All fault
// randomness derives from Seed (default: Config.Seed XOR a constant),
// on streams separate from the market's, so enabling one model never
// perturbs another — or the clean simulation.
type FaultConfig struct {
	// Seed drives every fault stream. 0 derives it from Config.Seed.
	Seed int64

	// Channel is a per-seller Gilbert–Elliott delivery channel:
	// bursty, correlated outages. The legacy i.i.d. DeliveryRate is
	// the special case GoodToBad = BadToGood = 0, LossGood = 1−rate
	// (and the two may not be combined).
	Channel ChannelFaults
	// Churn draws each seller's permanent departure round from an
	// exponential lifetime (Poisson churn over the population). It
	// composes with the scripted Departures list: the earliest
	// departure wins.
	Churn ChurnFaults
	// Straggler injects collection latency; a delivery that blows
	// the round deadline degrades into a miss (no data, no pay).
	Straggler StragglerFaults
	// Byzantine corrupts a fixed seller subset's quality reports.
	Byzantine ByzantineFaults
}

// ChannelFaults parameterizes the Gilbert–Elliott delivery channel.
type ChannelFaults struct {
	GoodToBad float64 // P(good→bad) per delivery check
	BadToGood float64 // P(bad→good) per delivery check
	LossGood  float64 // delivery loss probability in the good state
	LossBad   float64 // delivery loss probability in the bad state
}

// ChurnFaults parameterizes renewal (Poisson) seller churn.
type ChurnFaults struct {
	Rate     float64 // per-round departure hazard λ (0: no churn)
	MinRound int     // earliest allowed departure round (default 2)
}

// StragglerFaults parameterizes collection-latency injection.
type StragglerFaults struct {
	Prob      float64 // probability a delivery straggles
	MeanDelay float64 // mean extra latency of a straggler
	Deadline  float64 // tolerated latency (0: the job's RoundDuration)
}

// ByzantineFaults parameterizes quality-report corruption.
type ByzantineFaults struct {
	Fraction  float64 // Byzantine share of the population (ignored if Sellers set)
	Sellers   []int   // explicit Byzantine seller ids
	Mode      string  // "inflate" (default) or "random"
	Inflation float64 // bias added in inflate mode (default 0.3)
}

// Solver selects how each round's Stackelberg game is solved.
type Solver string

// Supported solvers.
const (
	SolverClosedForm Solver = "closed-form" // the paper's Theorems 14–16 (default)
	SolverExact      Solver = "exact"       // exact over the kinked supply curve
	SolverNumeric    Solver = "numeric"     // grid/golden-section reference (slow)
)

// Config parameterizes a full CDT market simulation. Zero values get
// the paper's Table II defaults where one exists.
type Config struct {
	Sellers []Seller // the M candidate sellers
	K       int      // sellers selected per round
	PoIs    int      // L points of interest (default 10)
	Rounds  int      // N trading rounds
	// RoundDuration is T, the cap on each seller's per-round sensing
	// time; 0 leaves sensing times uncapped (the paper's regime).
	RoundDuration float64

	Theta float64 // platform aggregation cost θ (default 0.1)
	// Lambda is the platform's linear aggregation cost λ. A zero
	// value means "use the paper default of 1"; the model itself
	// allows λ = 0, which this API cannot express (use a tiny
	// positive value instead).
	Lambda float64
	Omega  float64 // consumer valuation ω (default 1000)

	PJMin, PJMax float64 // consumer price bounds (default [0, 100])
	PMin, PMax   float64 // platform price bounds (default [0, 5])

	ObservationSD float64 // truncated-Gaussian noise σ (default 0.1)
	Seed          int64   // randomness seed (policies + observations)

	Policy  Policy  // default PolicyCMABHS
	Epsilon float64 // parameter for the ε-policies (default 0.1)
	Window  int     // window for PolicySlidingWindow (default 500)
	Gamma   float64 // discount for PolicyDiscounted (default 0.995)
	Solver  Solver  // default SolverClosedForm

	// QualityDrift, if non-nil, makes expected qualities oscillate
	// (non-stationary market). See Drift.
	QualityDrift *Drift

	Tau0        float64 // initial-exploration sensing time (default 1)
	ColdStart   bool    // skip the initial full-exploration round (ablation)
	KeepRounds  bool    // retain every per-round record in the result
	Checkpoints []int   // rounds at which to snapshot cumulative metrics

	// Budget caps the consumer's cumulative spend; the run stops
	// after the round in which it is reached. 0 means unlimited.
	Budget float64

	// Departures[i] = r makes seller i permanently leave the market
	// at the start of round r (seller churn / failure injection).
	// Empty or zero entries mean no departure.
	Departures []int

	// DeliveryRate makes selected sellers fail to deliver a round's
	// data with probability 1−rate (transient failures: no data, no
	// pay, no cost). 0 means always deliver; otherwise must lie in
	// (0, 1].
	DeliveryRate float64

	// Faults, if non-nil, enables the composable fault-injection
	// layer (bursty delivery channels, Poisson churn, stragglers,
	// Byzantine corruption). See FaultConfig. A zero-valued
	// FaultConfig injects nothing.
	Faults *FaultConfig

	// CollectData enables the raw-data layer: sellers return noisy
	// readings of a per-PoI ground-truth signal (noise set by their
	// true quality), the platform aggregates them weighted by the
	// estimated qualities, and Result.AggregationRMSE reports the
	// mean statistical error delivered to the consumer.
	CollectData bool

	// Observer, if non-nil, receives one RoundEvent after every
	// completed trading round. Observers are strictly passive —
	// attaching one is bit-identical to not attaching one — and run
	// synchronously on the simulation goroutine. Being code, the
	// observer never travels in a Save snapshot; reattach with
	// Session.Observe after ResumeSession.
	Observer RoundObserver `json:"-"`
}

// RoundObserver is a per-round telemetry hook. See Config.Observer
// and RoundEvent.
type RoundObserver func(*RoundEvent)

// RoundEvent is the per-round observation delivered to a
// RoundObserver: the round just played plus the learning-dynamics
// context no single record carries. The event and its slices are
// borrowed — valid only during the call, copy to retain.
type RoundEvent struct {
	// Round is the public record of the round just played: selection,
	// equilibrium prices p^J and p, sensing times, and profits.
	Round Round

	// UCB holds each seller's extended-UCB index (Eq. 19) as it stood
	// when the round's selection was made, indexed by seller id;
	// departed sellers hold NaN. Nil for the initial full-exploration
	// round, when no estimates exist yet.
	UCB []float64

	// FailedSellers lists the sellers that were selected but delivered
	// no data this round — the round's fault events (delivery loss,
	// stragglers past the deadline). Empty on clean rounds.
	FailedSellers []int

	// Regret and ExpectedRevenue are cumulative after this round,
	// regret measured against the offline optimal selection (Eq. 34).
	Regret          float64
	ExpectedRevenue float64

	// ConsumerSpend is the cumulative reward paid out after this
	// round — what Config.Budget is checked against.
	ConsumerSpend float64
}

// RandomConfig draws an M-seller configuration from the paper's
// Table II parameter ranges: a∈[0.1,0.5], b∈[0.1,1], q∈[0,1].
func RandomConfig(m, k, rounds int, seed int64) Config {
	src := rng.New(seed)
	cfg := Config{K: k, Rounds: rounds, Seed: seed}
	for i := 0; i < m; i++ {
		cfg.Sellers = append(cfg.Sellers, Seller{
			CostQuadratic:   src.Uniform(0.1, 0.5),
			CostLinear:      src.Uniform(0.1, 1),
			ExpectedQuality: src.Float64(),
		})
	}
	return cfg
}

// withDefaults fills zero values with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.PoIs == 0 {
		c.PoIs = 10
	}
	if c.Theta == 0 {
		c.Theta = 0.1
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Omega == 0 {
		c.Omega = 1000
	}
	if c.PJMax == 0 {
		c.PJMax = 100
	}
	if c.PMax == 0 {
		c.PMax = 5
	}
	if c.ObservationSD == 0 {
		c.ObservationSD = 0.1
	}
	if c.Policy == "" {
		c.Policy = PolicyCMABHS
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.Solver == "" {
		c.Solver = SolverClosedForm
	}
	if c.Window == 0 {
		c.Window = 500
	}
	if c.Gamma == 0 {
		c.Gamma = 0.995
	}
	return c
}

// faultConfig maps the public FaultConfig to the internal fault
// layer. A nil or zero-valued public config maps to nil: no injector
// is built, keeping the clean path bit-identical.
func (c Config) faultConfig() *faults.Config {
	if c.Faults == nil {
		return nil
	}
	f := c.Faults
	seed := f.Seed
	if seed == 0 {
		seed = c.Seed ^ 0xfa17
	}
	fc := &faults.Config{
		Seed: seed,
		Delivery: faults.DeliveryConfig{
			GoodToBad: f.Channel.GoodToBad,
			BadToGood: f.Channel.BadToGood,
			LossGood:  f.Channel.LossGood,
			LossBad:   f.Channel.LossBad,
		},
		Churn: faults.ChurnConfig{Rate: f.Churn.Rate, MinRound: f.Churn.MinRound},
		Straggler: faults.StragglerConfig{
			Prob:      f.Straggler.Prob,
			MeanDelay: f.Straggler.MeanDelay,
			Deadline:  f.Straggler.Deadline,
		},
		Corruption: faults.CorruptionConfig{
			Fraction:  f.Byzantine.Fraction,
			Sellers:   append([]int(nil), f.Byzantine.Sellers...),
			Mode:      f.Byzantine.Mode,
			Inflation: f.Byzantine.Inflation,
		},
	}
	if fc.Zero() {
		return nil
	}
	return fc
}

// build assembles the internal configuration and policy.
func (c Config) build() (*core.Config, bandit.Policy, error) {
	c = c.withDefaults()
	if len(c.Sellers) == 0 {
		return nil, nil, errors.New("cmabhs: no sellers configured")
	}
	means := make([]float64, len(c.Sellers))
	specs := make([]market.SellerSpec, len(c.Sellers))
	for i, s := range c.Sellers {
		means[i] = s.ExpectedQuality
		specs[i] = market.SellerSpec{Cost: economics.SellerCost{A: s.CostQuadratic, B: s.CostLinear}}
	}
	src := rng.New(c.Seed)
	var model quality.Model
	var err error
	if c.QualityDrift != nil {
		amps := make([]float64, len(means))
		for i := range amps {
			amps[i] = c.QualityDrift.Amplitude
		}
		model, err = quality.NewDrifting(means, amps, c.QualityDrift.Period, c.ObservationSD, src.Split(0x0b5))
	} else {
		model, err = quality.NewTruncGaussian(means, c.ObservationSD, src.Split(0x0b5))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("cmabhs: %w", err)
	}
	var solver core.Solver
	switch c.Solver {
	case SolverClosedForm:
		solver = core.ClosedForm
	case SolverExact:
		solver = core.Exact
	case SolverNumeric:
		solver = core.Numeric
	default:
		return nil, nil, fmt.Errorf("cmabhs: unknown solver %q", c.Solver)
	}
	cfg := &core.Config{
		Market: market.Config{
			Job:          market.Job{L: c.PoIs, N: c.Rounds, T: c.RoundDuration},
			Sellers:      specs,
			Platform:     economics.PlatformCost{Theta: c.Theta, Lambda: c.Lambda},
			Consumer:     economics.Valuation{Omega: c.Omega},
			PJBounds:     game.Bounds{Min: c.PJMin, Max: c.PJMax},
			PBounds:      game.Bounds{Min: c.PMin, Max: c.PMax},
			Quality:      model,
			Departures:   append([]int(nil), c.Departures...),
			DeliveryRate: c.DeliveryRate,
			DeliverySeed: c.Seed ^ 0x7e57,
			Faults:       c.faultConfig(),
		},
		K:           c.K,
		Tau0:        c.Tau0,
		Solver:      solver,
		Budget:      c.Budget,
		ColdStart:   c.ColdStart,
		KeepRounds:  c.KeepRounds,
		Checkpoints: append([]int(nil), c.Checkpoints...),
		Observer:    coreObserver(c.Observer),
	}
	if c.CollectData {
		sensor, err := aggregate.NewSensor(0.05, 2, src.Split(0xda7a))
		if err != nil {
			return nil, nil, fmt.Errorf("cmabhs: %w", err)
		}
		cfg.Market.Data = &market.DataLayer{
			Signal:     aggregate.SineSignal{Base: 50, Amp: 10, Period: 288},
			Sensor:     sensor,
			Aggregator: aggregate.WeightedMean{},
		}
	}
	var policy bandit.Policy
	switch c.Policy {
	case PolicyCMABHS:
		// The incremental tournament selector ranks the exact same Eq. 19
		// indices as bandit.UCBGreedy (bit-identical selections, same
		// policy name) in O(K log M) amortized time without allocating.
		policy = bandit.NewIncrementalUCB()
	case PolicyOptimal:
		policy = bandit.NewOracle(means)
	case PolicyEpsilonFirst:
		policy = bandit.NewEpsilonFirst(c.Epsilon, c.Rounds, src.Split(0xe0))
	case PolicyEpsilonGreedy:
		policy = bandit.NewEpsilonGreedy(c.Epsilon, src.Split(0xe9))
	case PolicyRandom:
		policy = bandit.NewRandom(src.Split(0xaa))
	case PolicyThompson:
		policy = bandit.NewThompson(src.Split(0x70))
	case PolicyUCB1:
		policy = bandit.UCB1Greedy{}
	case PolicySlidingWindow:
		if c.Window <= 0 {
			return nil, nil, fmt.Errorf("cmabhs: window must be positive, got %d", c.Window)
		}
		policy = bandit.NewSlidingWindowUCB(c.Window)
	case PolicyDiscounted:
		if c.Gamma <= 0 || c.Gamma >= 1 {
			return nil, nil, fmt.Errorf("cmabhs: gamma must be in (0, 1), got %v", c.Gamma)
		}
		policy = bandit.NewDiscountedUCB(c.Gamma)
	default:
		return nil, nil, fmt.Errorf("cmabhs: unknown policy %q", c.Policy)
	}
	return cfg, policy, nil
}

// Round is one trading round's public record.
type Round struct {
	Round          int       // 1-based index
	Selected       []int     // selected seller ids
	ConsumerPrice  float64   // p^J
	PlatformPrice  float64   // p
	SensingTimes   []float64 // τ_i, aligned with Selected
	TotalTime      float64   // Στ_i
	ConsumerProfit float64
	PlatformProfit float64
	SellerProfits  []float64 // aligned with Selected
	NoTrade        bool
	Realized       float64 // Σ observed qualities this round
	// AggregationRMSE is this round's statistics error vs ground
	// truth (0 unless Config.CollectData is set).
	AggregationRMSE float64
}

// Checkpoint is a cumulative-metric snapshot after a given round.
type Checkpoint struct {
	Round           int
	RealizedRevenue float64
	ExpectedRevenue float64
	Regret          float64
	ConsumerProfit  float64 // cumulative
	PlatformProfit  float64 // cumulative
	SellerProfit    float64 // cumulative, all sellers
}

// Result summarizes a full simulation.
type Result struct {
	Policy string

	RealizedRevenue float64 // Σ observed qualities of all selections (Eq. 1)
	ExpectedRevenue float64 // Σ expected qualities of all selections
	Regret          float64 // cumulative pseudo-regret vs. the optimal selection
	RegretBound     float64 // the Theorem 19 bound at this horizon

	ConsumerProfit float64 // cumulative PoC
	PlatformProfit float64 // cumulative PoP
	SellerProfit   float64 // cumulative PoS over all sellers
	Rounds         int     // rounds played

	ConsumerSpend   float64 // total rewards the consumer paid out
	AggregationRMSE float64 // mean per-round statistics error (NaN unless CollectData)
	DynamicRegret   float64 // regret vs the per-round oracle (NaN unless QualityDrift)
	Stopped         string  // non-empty if the run halted early (budget / churn)

	Estimates       []float64    // final quality estimates q̄_i
	PerSellerProfit []float64    // cumulative profit per seller over the run
	PerRound        []Round      // populated with Config.KeepRounds
	Checkpoints     []Checkpoint // populated with Config.Checkpoints
}

// coreObserver adapts a public RoundObserver to the internal hook.
// A nil observer maps to nil, keeping the unobserved hot path a
// single nil check.
func coreObserver(obs RoundObserver) core.RoundObserver {
	if obs == nil {
		return nil
	}
	return func(ev *core.RoundEvent) {
		obs(&RoundEvent{
			Round:           publicRound(ev.Record),
			UCB:             ev.UCB,
			FailedSellers:   ev.Failed,
			Regret:          ev.Regret,
			ExpectedRevenue: ev.ExpectedRevenue,
			ConsumerSpend:   ev.ConsumerSpend,
		})
	}
}

// publicRound converts an internal round record (NaN-bearing fields
// sanitized for JSON users). The Round SHARES the record's slices —
// right for the borrowed observer path; use ownedRound when the caller
// keeps the result.
func publicRound(r *core.RoundRecord) Round {
	agg := r.AggRMSE
	if math.IsNaN(agg) {
		agg = 0
	}
	return Round{
		Round:           r.Round,
		Selected:        r.Selected,
		ConsumerPrice:   r.PJ,
		PlatformPrice:   r.P,
		SensingTimes:    r.Taus,
		TotalTime:       r.TotalTau,
		ConsumerProfit:  r.PoC,
		PlatformProfit:  r.PoP,
		SellerProfits:   r.SellerProfits,
		NoTrade:         r.NoTrade,
		Realized:        r.Realized,
		AggregationRMSE: agg,
	}
}

// ownedRound converts an internal round record into a Round with its
// own slice storage, detached from the mechanism's pooled per-round
// buffers — what public callers that retain records receive.
func ownedRound(r *core.RoundRecord) Round {
	pub := publicRound(r)
	pub.Selected = append([]int(nil), pub.Selected...)
	pub.SensingTimes = append([]float64(nil), pub.SensingTimes...)
	pub.SellerProfits = append([]float64(nil), pub.SellerProfits...)
	return pub
}

// AvgConsumerProfit returns the consumer's average per-round profit,
// 0 before any round has been played.
func (r *Result) AvgConsumerProfit() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return r.ConsumerProfit / float64(r.Rounds)
}

// AvgPlatformProfit returns the platform's average per-round profit,
// 0 before any round has been played.
func (r *Result) AvgPlatformProfit() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return r.PlatformProfit / float64(r.Rounds)
}

// AvgSellerProfit returns the average per-round profit of one
// selected seller, given K sellers are selected per round. 0 before
// any round has been played.
func (r *Result) AvgSellerProfit(k int) float64 {
	if r.Rounds == 0 || k == 0 {
		return 0
	}
	return r.SellerProfit / float64(r.Rounds) / float64(k)
}

// StoppedCanceled is the Result.Stopped / Advance.Stopped value
// reported when a context cancels execution between trading rounds.
const StoppedCanceled = core.StoppedCanceled

// Run executes the configured simulation.
func Run(c Config) (*Result, error) {
	return RunContext(context.Background(), c)
}

// RunContext is Run with cancellation: the mechanism checks ctx at
// every round boundary. When ctx is done the PARTIAL result — all
// rounds traded so far, with Result.Stopped set to StoppedCanceled —
// is returned with a nil error, so interrupted simulations can still
// flush what they learned. Real failures return a non-nil error.
func RunContext(ctx context.Context, c Config) (*Result, error) {
	cfg, policy, err := c.build()
	if err != nil {
		return nil, err
	}
	res, err := core.RunContext(ctx, cfg, policy)
	if err != nil {
		return nil, fmt.Errorf("cmabhs: %w", err)
	}
	return publicResult(res), nil
}

// publicResult converts an internal result to the public shape.
func publicResult(res *core.Result) *Result {
	out := &Result{
		Policy:          res.Policy,
		RealizedRevenue: res.RealizedRevenue,
		ExpectedRevenue: res.ExpectedRevenue,
		Regret:          res.Regret,
		RegretBound:     res.RegretBound,
		ConsumerProfit:  res.CumPoC,
		PlatformProfit:  res.CumPoP,
		SellerProfit:    res.CumPoS,
		Rounds:          res.RoundsPlayed,
		ConsumerSpend:   res.ConsumerSpend,
		AggregationRMSE: res.MeanAggRMSE,
		DynamicRegret:   res.DynamicRegret,
		Stopped:         res.Stopped,
		Estimates:       res.Estimates,
		PerSellerProfit: res.SellerTotals,
	}
	for _, r := range res.Rounds {
		out.PerRound = append(out.PerRound, publicRound(&r))
	}
	for _, cp := range res.Checkpoints {
		out.Checkpoints = append(out.Checkpoints, Checkpoint{
			Round:           cp.Round,
			RealizedRevenue: cp.RealizedRevenue,
			ExpectedRevenue: cp.ExpectedRevenue,
			Regret:          cp.Regret,
			ConsumerProfit:  cp.CumPoC,
			PlatformProfit:  cp.CumPoP,
			SellerProfit:    cp.CumPoS,
		})
	}
	return out
}
