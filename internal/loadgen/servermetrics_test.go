package loadgen

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cmabhs/internal/server"
)

const sampleExposition = `# HELP cdt_http_request_seconds HTTP request latency in seconds, by route pattern.
# TYPE cdt_http_request_seconds histogram
cdt_http_request_seconds_bucket{le="0.005",route="/v1/jobs/{id}/advance"} 90
cdt_http_request_seconds_bucket{le="0.05",route="/v1/jobs/{id}/advance"} 98
cdt_http_request_seconds_bucket{le="+Inf",route="/v1/jobs/{id}/advance"} 100
cdt_http_request_seconds_sum{route="/v1/jobs/{id}/advance"} 1.25
cdt_http_request_seconds_count{route="/v1/jobs/{id}/advance"} 100
cdt_http_request_seconds_bucket{le="0.005",route="/v1/stats"} 0
cdt_http_request_seconds_bucket{le="+Inf",route="/v1/stats"} 0
cdt_http_request_seconds_sum{route="/v1/stats"} 0
cdt_http_request_seconds_count{route="/v1/stats"} 0
cdt_http_request_seconds_p50_1m{route="/v1/jobs/{id}/advance"} 0.005
cdt_http_requests_total{code="200",method="POST",route="/v1/jobs/{id}/advance"} 100
`

func TestParseRouteHistograms(t *testing.T) {
	hists, err := parseRouteHistograms(strings.NewReader(sampleExposition), serverLatencyFamily)
	if err != nil {
		t.Fatal(err)
	}
	h := hists["/v1/jobs/{id}/advance"]
	if h == nil {
		t.Fatalf("advance route missing; got %v", hists)
	}
	if h.count != 100 || h.sum != 1.25 {
		t.Fatalf("count=%d sum=%v", h.count, h.sum)
	}
	if len(h.bounds) != 3 || !math.IsInf(h.bounds[2], 1) {
		t.Fatalf("bounds %v", h.bounds)
	}
	if got := h.quantile(0.5); got != 0.005 {
		t.Fatalf("p50 = %v, want 0.005", got)
	}
	if got := h.quantile(0.95); got != 0.05 {
		t.Fatalf("p95 = %v, want 0.05", got)
	}
	// p99.5 lands in +Inf: the largest finite bound is the floor.
	if got := h.quantile(0.995); got != 0.05 {
		t.Fatalf("p99.5 = %v, want 0.05 floor", got)
	}
	if got := h.mean(); got != 0.0125 {
		t.Fatalf("mean = %v", got)
	}
	// The idle route parses but carries no traffic.
	if h := hists["/v1/stats"]; h == nil || h.count != 0 {
		t.Fatalf("stats route = %+v", h)
	}
}

func TestParseLabels(t *testing.T) {
	got := parseLabels(`le="0.005",route="/v1/jobs/{id}/advance"`)
	if got["le"] != "0.005" || got["route"] != "/v1/jobs/{id}/advance" {
		t.Fatalf("labels = %v", got)
	}
	if got := parseLabels(""); len(got) != 0 {
		t.Fatalf("empty labels = %v", got)
	}
}

// TestServerMetricsComparison runs a short load against a real broker
// with the scrape on and checks the joined rows are coherent.
func TestServerMetricsComparison(t *testing.T) {
	s := server.New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{
		Target:        ts.URL,
		Rate:          150,
		Duration:      2 * time.Second,
		Seed:          7,
		Jobs:          3,
		Sellers:       10,
		K:             3,
		AdvanceRounds: 10,
		HTTPClient:    ts.Client(),
		ServerMetrics: true,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Server) == 0 {
		t.Fatalf("no server rows scraped\n%s", rep.Human())
	}
	var advance *ServerRoute
	for i := range rep.Server {
		sr := &rep.Server[i]
		if sr.Count == 0 {
			t.Fatalf("zero-count server row %+v", sr)
		}
		if sr.Route == "/v1/jobs/{id}/advance" {
			advance = sr
		}
	}
	if advance == nil {
		t.Fatalf("no advance row in server view: %+v", rep.Server)
	}
	if advance.Ops != "advance" || advance.ClientCount == 0 {
		t.Fatalf("advance row not joined with client stats: %+v", advance)
	}
	// Client-observed latency includes the server's plus the stack
	// under it; with conservative buckets on both sides allow equality.
	if advance.ClientP99S <= 0 || advance.P99S <= 0 {
		t.Fatalf("missing quantiles: %+v", advance)
	}
	if !strings.Contains(rep.Human(), "client vs server") {
		t.Fatalf("human report missing comparison table:\n%s", rep.Human())
	}
}
