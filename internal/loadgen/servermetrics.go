package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Server-side latency comparison (Config.ServerMetrics): after the
// run drains, the broker's /metrics exposition is scraped and its
// cdt_http_request_seconds histograms are folded into per-route
// quantiles next to the client-observed ones. The gap between the two
// IS the network + client stack: server p99 ≈ client p99 means the
// broker dominates; a wide gap points at the wire or the generator
// host. Quantiles on both sides are conservative bucket upper bounds
// (the server's buckets are coarser than the client's HDR histogram,
// so small disagreements are expected bucket-width noise).

// serverLatencyFamily is the histogram family compared against.
const serverLatencyFamily = "cdt_http_request_seconds"

// ServerRoute is one route-pattern row of the server-side scrape,
// with the client-observed quantiles for the ops that hit that route
// alongside (zero Ops means no client op maps to it).
type ServerRoute struct {
	Route string  `json:"route"`
	Count uint64  `json:"count"`
	P50S  float64 `json:"p50_s"`
	P99S  float64 `json:"p99_s"`
	MeanS float64 `json:"mean_s"`

	Ops         string  `json:"ops,omitempty"` // client ops pooled into the row
	ClientCount uint64  `json:"client_count,omitempty"`
	ClientP50S  float64 `json:"client_p50_s,omitempty"`
	ClientP99S  float64 `json:"client_p99_s,omitempty"`
}

// opRoutes maps each client op to the broker route pattern it lands
// on (the route label values in /metrics).
var opRoutes = map[Op]string{
	OpCreate:    "/v1/jobs",
	OpList:      "/v1/jobs",
	OpAdvance:   "/v1/jobs/{id}/advance",
	OpStatus:    "/v1/jobs/{id}",
	OpDelete:    "/v1/jobs/{id}",
	OpSnapshot:  "/v1/jobs/{id}/snapshot",
	OpEstimates: "/v1/jobs/{id}/estimates",
	OpStats:     "/v1/stats",
	OpSolve:     "/v1/game/solve",
}

// promHist is one scraped histogram series: cumulative bucket counts
// by ascending upper bound (+Inf last), plus the _sum/_count samples.
type promHist struct {
	bounds []float64
	cum    []uint64
	count  uint64
	sum    float64
}

// quantile mirrors the conservative upper-bound rule used everywhere
// else in this package. The +Inf bucket has no upper bound; the last
// finite bound is reported as a floor (">bound" territory).
func (h *promHist) quantile(q float64) float64 {
	if h.count == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	for i, c := range h.cum {
		if c >= target {
			if math.IsInf(h.bounds[i], 1) {
				break
			}
			return h.bounds[i]
		}
	}
	// Landed in +Inf: the best honest answer without a max is the
	// largest finite bound.
	for i := len(h.bounds) - 1; i >= 0; i-- {
		if !math.IsInf(h.bounds[i], 1) {
			return h.bounds[i]
		}
	}
	return 0
}

func (h *promHist) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// scrapeServerRoutes fetches target's /metrics and reduces the
// request-latency histograms to per-route rows (routes with no
// traffic are dropped).
func scrapeServerRoutes(ctx context.Context, hc *http.Client, target string) ([]ServerRoute, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(target, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape /metrics: status %d", resp.StatusCode)
	}
	hists, err := parseRouteHistograms(resp.Body, serverLatencyFamily)
	if err != nil {
		return nil, err
	}
	out := make([]ServerRoute, 0, len(hists))
	for route, h := range hists {
		if h.count == 0 {
			continue
		}
		out = append(out, ServerRoute{
			Route: route,
			Count: h.count,
			P50S:  h.quantile(0.50),
			P99S:  h.quantile(0.99),
			MeanS: h.mean(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out, nil
}

// parseRouteHistograms extracts family's histogram series keyed by
// route label from a Prometheus text-format exposition.
func parseRouteHistograms(r io.Reader, family string) (map[string]*promHist, error) {
	hists := make(map[string]*promHist)
	at := func(route string) *promHist {
		h, ok := hists[route]
		if !ok {
			h = &promHist{}
			hists[route] = h
		}
		return h
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(family):]
		var kind string
		switch {
		case strings.HasPrefix(rest, "_bucket{"):
			kind, rest = "bucket", rest[len("_bucket"):]
		case strings.HasPrefix(rest, "_count{"):
			kind, rest = "count", rest[len("_count"):]
		case strings.HasPrefix(rest, "_sum{"):
			kind, rest = "sum", rest[len("_sum"):]
		default:
			continue // another family sharing the prefix
		}
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			continue
		}
		labels := parseLabels(rest[1:close])
		route := labels["route"]
		if route == "" {
			continue
		}
		value, err := strconv.ParseFloat(strings.TrimSpace(rest[close+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad sample value in %q: %w", line, err)
		}
		h := at(route)
		switch kind {
		case "bucket":
			bound, err := parseLe(labels["le"])
			if err != nil {
				return nil, fmt.Errorf("loadgen: bad le in %q: %w", line, err)
			}
			h.bounds = append(h.bounds, bound)
			h.cum = append(h.cum, uint64(value))
		case "count":
			h.count = uint64(value)
		case "sum":
			h.sum = value
		}
	}
	return hists, sc.Err()
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels splits a label body (`a="x",b="y"`) into a map. Values
// in the families parsed here (route patterns, le bounds) never
// contain escaped quotes, so a quote-bounded scan suffices.
func parseLabels(s string) map[string]string {
	out := make(map[string]string, 4)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return out
		}
		name := s[:eq]
		rest := s[eq+2:]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			return out
		}
		out[name] = rest[:end]
		s = rest[end+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out
}

// attachServerRoutes joins the scraped rows with the client-side
// stats: every op mapping to a route pools its HDR histogram into
// that row's client columns (identical bounds across ops, so pooling
// is bucket-wise addition, same as the all-routes rollup).
func (r *runner) attachServerRoutes(rows []ServerRoute) []ServerRoute {
	for i := range rows {
		pooled := newHist()
		var ops []string
		for _, op := range allOps {
			if opRoutes[op] != rows[i].Route {
				continue
			}
			st := r.stats[op]
			if st.count.Load() == 0 {
				continue
			}
			ops = append(ops, string(op))
			rows[i].ClientCount += st.count.Load()
			for b := range st.lat.counts {
				if n := st.lat.counts[b].Load(); n > 0 {
					pooled.counts[b].Add(n)
					pooled.total.Add(n)
				}
			}
			if m := uint64(st.lat.max()); m > pooled.maxNS.Load() {
				pooled.maxNS.Store(m)
			}
		}
		if len(ops) == 0 {
			continue
		}
		rows[i].Ops = strings.Join(ops, "+")
		rows[i].ClientP50S = secs(pooled.quantile(0.50))
		rows[i].ClientP99S = secs(pooled.quantile(0.99))
	}
	return rows
}
