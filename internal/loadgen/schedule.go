// Package loadgen is an open-loop load generator and capacity probe
// for the CDT broker. It schedules request arrivals from a seeded
// Poisson process — arrival times are fixed up front, independent of
// how long responses take — so measured tail latency includes the
// waiting a closed-loop (request → response → next request) driver
// silently hides (coordinated omission). Traffic is a configurable
// mix of job operations across a population of concurrent jobs, plus
// optional SSE subscribers per job; results are per-route latency
// quantiles, throughput, and shed/error rates; RunSweep steps the
// arrival rate until the broker saturates and reports the knee.
//
// Everything rides the public typed client (cmabhs/client): loadgen
// is the wire surface's canonical heavy consumer.
package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cmabhs/internal/rng"
)

// Op is one request kind in the traffic mix. Its string form is both
// the -mix key and the report's route label.
type Op string

const (
	OpCreate    Op = "create"    // POST /v1/jobs
	OpAdvance   Op = "advance"   // POST /v1/jobs/{id}/advance
	OpStatus    Op = "status"    // GET  /v1/jobs/{id}
	OpSnapshot  Op = "snapshot"  // POST /v1/jobs/{id}/snapshot
	OpEstimates Op = "estimates" // GET  /v1/jobs/{id}/estimates
	OpStats     Op = "stats"     // GET  /v1/stats
	OpList      Op = "list"      // GET  /v1/jobs?limit=
	OpDelete    Op = "delete"    // DELETE /v1/jobs/{id}
	OpSolve     Op = "solve"     // POST /v1/game/solve
)

// allOps is the canonical op order: mix parsing, op drawing, and
// report rendering all iterate it, so the schedule is deterministic
// and reports are stably ordered.
var allOps = []Op{OpCreate, OpAdvance, OpStatus, OpSnapshot, OpEstimates, OpStats, OpList, OpDelete, OpSolve}

// Mix maps each op to its relative weight. Weights need not sum to
// anything particular; zero/absent ops never fire.
type Mix map[Op]float64

// DefaultMix is a read-mostly steady-state profile: mostly advances,
// some status polling, light snapshot/stats/list traffic, and a
// trickle of create/delete churn.
func DefaultMix() Mix {
	return Mix{
		OpAdvance: 70, OpStatus: 15, OpSnapshot: 4, OpStats: 4,
		OpList: 3, OpCreate: 2, OpDelete: 2,
	}
}

// ParseMix parses "advance=70,status=15,create=5" into a Mix.
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q is not op=weight", part)
		}
		op := Op(strings.TrimSpace(k))
		if !validOp(op) {
			return nil, fmt.Errorf("loadgen: unknown op %q (valid: %s)", k, opList())
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: bad weight %q for op %q", v, k)
		}
		m[op] = w
	}
	if m.total() <= 0 {
		return nil, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

func validOp(op Op) bool {
	for _, o := range allOps {
		if o == op {
			return true
		}
	}
	return false
}

func opList() string {
	out := make([]string, len(allOps))
	for i, o := range allOps {
		out[i] = string(o)
	}
	return strings.Join(out, "|")
}

func (m Mix) total() float64 {
	var t float64
	for _, w := range m {
		if w > 0 {
			t += w
		}
	}
	return t
}

// String renders the mix in canonical op order ("advance=70,...").
func (m Mix) String() string {
	parts := make([]string, 0, len(m))
	for _, op := range allOps {
		if w := m[op]; w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", op, w))
		}
	}
	return strings.Join(parts, ",")
}

// Arrival is one scheduled request: fire op against job index Job
// (population slot; ignored by job-less ops) at offset At from the
// run's start.
type Arrival struct {
	At  time.Duration
	Op  Op
	Job int
}

// BuildSchedule precomputes the full open-loop arrival schedule:
// inter-arrival gaps are Exponential(rate) (a Poisson process at
// `rate` per second), each arrival's op is drawn from the mix and its
// job slot uniformly from [0, jobs). Everything is derived from seed
// via split streams, so the same inputs produce the identical
// schedule — a run is replayable bit-for-bit.
func BuildSchedule(seed int64, rate float64, d time.Duration, mix Mix, jobs int) []Arrival {
	if rate <= 0 || d <= 0 || jobs <= 0 {
		return nil
	}
	base := rng.New(seed)
	arrivals := base.Split(1)
	opsrc := base.Split(2)
	jobsrc := base.Split(3)

	// Cumulative weights in canonical op order.
	type cw struct {
		op  Op
		cum float64
	}
	cums := make([]cw, 0, len(mix))
	var total float64
	for _, op := range allOps {
		if w := mix[op]; w > 0 {
			total += w
			cums = append(cums, cw{op, total})
		}
	}
	if total <= 0 {
		return nil
	}

	out := make([]Arrival, 0, int(rate*d.Seconds())+16)
	t := time.Duration(0)
	for {
		gap := arrivals.Exponential(rate) // seconds, mean 1/rate
		t += time.Duration(gap * float64(time.Second))
		if t >= d {
			return out
		}
		x := opsrc.Float64() * total
		op := cums[len(cums)-1].op
		idx := sort.Search(len(cums), func(i int) bool { return cums[i].cum > x })
		if idx < len(cums) {
			op = cums[idx].op
		}
		out = append(out, Arrival{At: t, Op: op, Job: jobsrc.Intn(jobs)})
	}
}
