package loadgen

import (
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"testing"
	"time"

	"cmabhs/internal/server"
)

// soak gates the expensive saturation sweep, mirroring the chaos
// suite's convention: go test ./internal/loadgen/ -soak
var soak = flag.Bool("soak", false, "run the long saturation sweep test")

// TestScheduleDeterminism pins the open-loop schedule to its seed:
// identical inputs must replay the identical schedule (arrival times,
// ops, and job picks), and a different seed must diverge.
func TestScheduleDeterminism(t *testing.T) {
	mix := DefaultMix()
	a := BuildSchedule(42, 200, 2*time.Second, mix, 8)
	b := BuildSchedule(42, 200, 2*time.Second, mix, 8)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}

	c := BuildSchedule(43, 200, 2*time.Second, mix, 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical schedules")
	}

	// ~rate*duration arrivals, ordered in time, ops drawn from the mix.
	if n := len(a); n < 300 || n > 500 {
		t.Fatalf("%d arrivals for 200 req/s over 2s, want ~400", n)
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
	for i, arr := range a {
		if mix[arr.Op] <= 0 {
			t.Fatalf("arrival %d drew op %q with zero weight", i, arr.Op)
		}
		if arr.Job < 0 || arr.Job >= 8 {
			t.Fatalf("arrival %d job slot %d out of range", i, arr.Job)
		}
	}
}

// TestParseMix round-trips and rejects malformed inputs.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("advance=70, status=15,create=5")
	if err != nil {
		t.Fatal(err)
	}
	if m[OpAdvance] != 70 || m[OpStatus] != 15 || m[OpCreate] != 5 {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"advance", "bogus=5", "advance=-1", "advance=0", ""} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	if s := m.String(); s != "create=5,advance=70,status=15" {
		t.Fatalf("canonical form %q", s)
	}
}

// TestHistQuantiles sanity-checks the histogram's conservative
// quantiles: never below the true value, within one bucket width above.
func TestHistQuantiles(t *testing.T) {
	h := newHist()
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.99, 990 * time.Millisecond}, {0.999, 999 * time.Millisecond}} {
		got := h.quantile(tc.q)
		if got < tc.want {
			t.Errorf("q%.3f = %v under-reports true %v", tc.q, got, tc.want)
		}
		if got > time.Duration(float64(tc.want)*histGrowth*histGrowth) {
			t.Errorf("q%.3f = %v too far above true %v", tc.q, got, tc.want)
		}
	}
	if h.max() != time.Second {
		t.Fatalf("max %v, want 1s", h.max())
	}
}

// TestRunAgainstBroker drives a short fixed-rate profile against the
// real broker in-process and checks the report: traffic flowed, no
// 5xx, events were received, and the run cleaned up after itself.
func TestRunAgainstBroker(t *testing.T) {
	s := server.New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{
		Target:        ts.URL,
		Rate:          200,
		Duration:      2 * time.Second,
		Seed:          42,
		Jobs:          4,
		Subscribers:   1,
		Sellers:       10,
		K:             3,
		AdvanceRounds: 10,
		HTTPClient:    ts.Client(),
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests < 300 {
		t.Fatalf("requests %d, want ~400", rep.Requests)
	}
	if rep.Errors5xx != 0 || rep.Transport != 0 {
		t.Fatalf("errors: 5xx=%d transport=%d\n%s", rep.Errors5xx, rep.Transport, rep.Human())
	}
	if rep.OK == 0 || rep.P50S <= 0 || rep.P99S < rep.P50S {
		t.Fatalf("suspicious quantiles p50=%v p99=%v ok=%d", rep.P50S, rep.P99S, rep.OK)
	}
	if rep.Events.Received == 0 {
		t.Fatal("subscribers received no events despite advance traffic")
	}
	if len(rep.Routes) == 0 {
		t.Fatal("no per-route reports")
	}

	// The report must be JSON-serializable and the human table render.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	if rep.Human() == "" {
		t.Fatal("empty human report")
	}

	// Cleanup: no jobs left behind.
	n, err := auditJobs(ctx, Config{Target: ts.URL, HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("%d jobs leaked after run", n)
	}
}

// TestRunDeterministicSchedule checks two runs with the same seed
// offer identical request streams (the response side varies, the
// arrival side must not): same total scheduled requests per op.
func TestRunDeterministicSchedule(t *testing.T) {
	count := func() map[Op]int {
		m := make(map[Op]int)
		for _, a := range BuildSchedule(7, 150, 3*time.Second, DefaultMix(), 4) {
			m[a.Op]++
		}
		return m
	}
	a, b := count(), count()
	for op, n := range a {
		if b[op] != n {
			t.Fatalf("op %s count %d vs %d", op, n, b[op])
		}
	}
}

// TestSweepSaturation (soak) steps the rate against the in-process
// broker until it saturates and checks the sweep found a knee.
func TestSweepSaturation(t *testing.T) {
	if !*soak {
		t.Skip("saturation sweep: pass -soak to run")
	}
	s := server.New()
	s.MaxConcurrentAdvances = 2 // tiny pool so the knee arrives fast
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := RunSweep(ctx, SweepConfig{
		Config: Config{
			Target:     ts.URL,
			Jobs:       4,
			Sellers:    10,
			K:          3,
			Seed:       42,
			HTTPClient: ts.Client(),
			Logf:       t.Logf,
		},
		StartRate:    100,
		Factor:       2,
		MaxSteps:     8,
		StepDuration: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no sweep steps")
	}
	t.Logf("sweep: sustained %.0f req/s, knee %.0f (saturated=%v)", res.Sustained, res.Knee, res.Saturated)
	if res.Saturated && res.Knee <= res.Sustained {
		t.Fatalf("knee %.0f not above sustained %.0f", res.Knee, res.Sustained)
	}
}
