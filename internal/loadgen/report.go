package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RouteReport is one op's outcome tally plus latency quantiles.
// Latencies cover every issued request regardless of outcome: a fast
// 429 is a real response the caller saw.
type RouteReport struct {
	Op          Op     `json:"op"`
	Count       uint64 `json:"count"`
	OK          uint64 `json:"ok"`
	Shed        uint64 `json:"shed"`        // 429
	Unavailable uint64 `json:"unavailable"` // 503
	Errors5xx   uint64 `json:"errors_5xx"`  // 5xx except 503
	Errors4xx   uint64 `json:"errors_4xx"`  // 4xx except 429
	Transport   uint64 `json:"transport"`   // connection-level failures
	Skipped     uint64 `json:"skipped"`     // fired with nothing to act on

	P50S  float64 `json:"p50_s"`
	P99S  float64 `json:"p99_s"`
	P999S float64 `json:"p999_s"`
	MaxS  float64 `json:"max_s"`
	MeanS float64 `json:"mean_s"`
}

// EventsReport summarizes the SSE subscriber side of the run.
type EventsReport struct {
	Subscribers int    `json:"subscribers"`
	Received    uint64 `json:"received"`
	Reconnects  uint64 `json:"reconnects"`
}

// Report is the outcome of one fixed-rate run.
type Report struct {
	Target      string  `json:"target"`
	Seed        int64   `json:"seed"`
	Mix         string  `json:"mix"`
	OfferedRate float64 `json:"offered_rate"` // what the schedule asked for
	DurationS   float64 `json:"duration_s"`   // wall clock, schedule + drain

	Requests     uint64  `json:"requests"`
	AchievedRate float64 `json:"achieved_rate"` // requests / duration
	OK           uint64  `json:"ok"`
	Shed         uint64  `json:"shed"`
	Unavailable  uint64  `json:"unavailable"`
	Errors5xx    uint64  `json:"errors_5xx"`
	Errors4xx    uint64  `json:"errors_4xx"`
	Transport    uint64  `json:"transport"`
	Skipped      uint64  `json:"skipped"`
	ShedRate     float64 `json:"shed_rate"`  // shed / requests
	ErrorRate    float64 `json:"error_rate"` // (5xx + transport) / requests

	// P99S/P999S are across all routes combined.
	P50S  float64 `json:"p50_s"`
	P99S  float64 `json:"p99_s"`
	P999S float64 `json:"p999_s"`
	MaxS  float64 `json:"max_s"`

	MaxOutstanding int64  `json:"max_outstanding"`
	Proxied        uint64 `json:"proxied"` // responses carrying X-CDT-Proxied-By

	// GenLagMaxS is the worst dispatcher lateness. When it approaches
	// the inter-arrival gap the generator — not the broker — was the
	// bottleneck, and the offered rate overstates real load.
	GenLagMaxS float64 `json:"gen_lag_max_s"`

	Events EventsReport  `json:"events"`
	Routes []RouteReport `json:"routes"`

	// Server is the broker-side latency view scraped from /metrics at
	// the end of the run (Config.ServerMetrics); nil when the scrape
	// was off or failed.
	Server []ServerRoute `json:"server_routes,omitempty"`
}

func secs(d time.Duration) float64 { return d.Seconds() }

// report snapshots the runner's counters into a Report. Called after
// every in-flight request has drained.
func (r *runner) report(elapsed time.Duration) *Report {
	rep := &Report{
		Target:         r.cfg.Target,
		Seed:           r.cfg.Seed,
		Mix:            r.cfg.Mix.String(),
		OfferedRate:    r.cfg.Rate,
		DurationS:      secs(elapsed),
		MaxOutstanding: r.maxOutstanding.Load(),
		Proxied:        r.proxied.Load(),
		GenLagMaxS:     secs(time.Duration(r.lagMax.Load())),
		Events: EventsReport{
			Subscribers: r.cfg.Subscribers * r.cfg.Jobs,
			Received:    r.events.Load(),
			Reconnects:  r.eventsReconnects.Load(),
		},
	}
	// Merge per-route histograms into one all-routes view by pooling
	// observations bucket-by-bucket (identical bounds everywhere).
	all := newHist()
	for _, op := range allOps {
		st := r.stats[op]
		if st.count.Load() == 0 && st.skipped.Load() == 0 {
			continue
		}
		rr := RouteReport{
			Op:          op,
			Count:       st.count.Load(),
			OK:          st.ok.Load(),
			Shed:        st.shed.Load(),
			Unavailable: st.unavailable.Load(),
			Errors5xx:   st.errors5xx.Load(),
			Errors4xx:   st.errors4xx.Load(),
			Transport:   st.transport.Load(),
			Skipped:     st.skipped.Load(),
			P50S:        secs(st.lat.quantile(0.50)),
			P99S:        secs(st.lat.quantile(0.99)),
			P999S:       secs(st.lat.quantile(0.999)),
			MaxS:        secs(st.lat.max()),
			MeanS:       secs(st.lat.mean()),
		}
		rep.Routes = append(rep.Routes, rr)
		rep.Requests += rr.Count
		rep.OK += rr.OK
		rep.Shed += rr.Shed
		rep.Unavailable += rr.Unavailable
		rep.Errors5xx += rr.Errors5xx
		rep.Errors4xx += rr.Errors4xx
		rep.Transport += rr.Transport
		rep.Skipped += rr.Skipped
		for i := range st.lat.counts {
			if n := st.lat.counts[i].Load(); n > 0 {
				all.counts[i].Add(n)
				all.total.Add(n)
			}
		}
		if m := uint64(st.lat.max()); m > all.maxNS.Load() {
			all.maxNS.Store(m)
		}
	}
	sort.Slice(rep.Routes, func(i, j int) bool { return rep.Routes[i].Count > rep.Routes[j].Count })
	if rep.DurationS > 0 {
		rep.AchievedRate = float64(rep.Requests) / rep.DurationS
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
		rep.ErrorRate = float64(rep.Errors5xx+rep.Transport) / float64(rep.Requests)
	}
	rep.P50S = secs(all.quantile(0.50))
	rep.P99S = secs(all.quantile(0.99))
	rep.P999S = secs(all.quantile(0.999))
	rep.MaxS = secs(all.max())
	return rep
}

// Human renders the report as a fixed-width table for terminals.
func (rep *Report) Human() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target %s  seed %d  mix %s\n", rep.Target, rep.Seed, rep.Mix)
	fmt.Fprintf(&b, "offered %.1f req/s for %.1fs  achieved %.1f req/s  max in-flight %d\n",
		rep.OfferedRate, rep.DurationS, rep.AchievedRate, rep.MaxOutstanding)
	fmt.Fprintf(&b, "requests %d  ok %d  shed %d (%.2f%%)  503 %d  5xx %d  4xx %d  transport %d  skipped %d\n",
		rep.Requests, rep.OK, rep.Shed, rep.ShedRate*100,
		rep.Unavailable, rep.Errors5xx, rep.Errors4xx, rep.Transport, rep.Skipped)
	fmt.Fprintf(&b, "overall latency  p50 %s  p99 %s  p99.9 %s  max %s\n",
		fmtSecs(rep.P50S), fmtSecs(rep.P99S), fmtSecs(rep.P999S), fmtSecs(rep.MaxS))
	if rep.GenLagMaxS > 0.001 {
		fmt.Fprintf(&b, "generator lag max %s (schedule fell behind; offered rate is optimistic)\n", fmtSecs(rep.GenLagMaxS))
	}
	if rep.Proxied > 0 {
		fmt.Fprintf(&b, "proxied responses %d (multi-node forwarding active)\n", rep.Proxied)
	}
	if rep.Events.Subscribers > 0 {
		fmt.Fprintf(&b, "events  subscribers %d  received %d  reconnects %d\n",
			rep.Events.Subscribers, rep.Events.Received, rep.Events.Reconnects)
	}
	fmt.Fprintf(&b, "%-10s %8s %8s %6s %6s %6s %9s %9s %9s %9s\n",
		"route", "count", "ok", "shed", "5xx", "tpt", "p50", "p99", "p99.9", "max")
	for _, rr := range rep.Routes {
		fmt.Fprintf(&b, "%-10s %8d %8d %6d %6d %6d %9s %9s %9s %9s\n",
			rr.Op, rr.Count, rr.OK, rr.Shed, rr.Errors5xx+rr.Unavailable, rr.Transport,
			fmtSecs(rr.P50S), fmtSecs(rr.P99S), fmtSecs(rr.P999S), fmtSecs(rr.MaxS))
	}
	if len(rep.Server) > 0 {
		b.WriteString("\nclient vs server (server side scraped from /metrics; both conservative bucket bounds)\n")
		fmt.Fprintf(&b, "%-26s %-18s %8s %9s %9s %10s %9s %9s\n",
			"server route", "client ops", "srv n", "srv p50", "srv p99", "client n", "cli p50", "cli p99")
		for _, sr := range rep.Server {
			ops, cn, cp50, cp99 := sr.Ops, "-", "-", "-"
			if ops == "" {
				ops = "-"
			} else {
				cn = fmt.Sprintf("%d", sr.ClientCount)
				cp50, cp99 = fmtSecs(sr.ClientP50S), fmtSecs(sr.ClientP99S)
			}
			fmt.Fprintf(&b, "%-26s %-18s %8d %9s %9s %10s %9s %9s\n",
				sr.Route, ops, sr.Count, fmtSecs(sr.P50S), fmtSecs(sr.P99S), cn, cp50, cp99)
		}
	}
	return b.String()
}

func fmtSecs(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
