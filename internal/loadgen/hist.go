package loadgen

import (
	"math"
	"sync/atomic"
	"time"
)

// hist is an HDR-style latency histogram: geometric buckets from 1µs
// to ~2 minutes with 7% resolution, wait-free to record into (one
// atomic increment per observation). Quantiles are read by walking
// the cumulative counts; the reported value is the bucket's upper
// bound, so quantiles are conservative (never under-reported) within
// the 7% bucket width. The true maximum is tracked exactly.
type hist struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	sumNS  atomic.Uint64
	maxNS  atomic.Uint64
}

const (
	histMin    = time.Microsecond
	histGrowth = 1.07
)

// histBounds[i] is bucket i's upper bound; the last bucket is a
// catch-all for anything slower.
var histBounds = buildHistBounds()

func buildHistBounds() []time.Duration {
	var out []time.Duration
	for b := float64(histMin); b < float64(130*time.Second); b *= histGrowth {
		out = append(out, time.Duration(b))
	}
	return append(out, time.Duration(math.MaxInt64))
}

var invLogGrowth = 1 / math.Log(histGrowth)

func newHist() *hist {
	return &hist{counts: make([]atomic.Uint64, len(histBounds))}
}

func bucketFor(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histMin))*invLogGrowth) + 1
	if i >= len(histBounds) {
		return len(histBounds) - 1
	}
	return i
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.total.Add(1)
	h.sumNS.Add(uint64(d))
	for {
		cur := h.maxNS.Load()
		if uint64(d) <= cur || h.maxNS.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// quantile returns the latency at quantile q in [0,1]; zero when the
// histogram is empty. Reads race benignly with concurrent observes
// (loadgen reports after the run has drained).
func (h *hist) quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if v := histBounds[i]; i < len(h.counts)-1 && v < h.max() {
				return v
			}
			// Last bucket, or the conservative bound overshot the true
			// maximum: the exact max is the tighter honest answer.
			return h.max()
		}
	}
	return h.max()
}

func (h *hist) max() time.Duration { return time.Duration(h.maxNS.Load()) }

func (h *hist) mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}
