package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cmabhs/client"
)

// Config describes one fixed-rate open-loop run.
type Config struct {
	// Target is the broker base URL (http://host:port).
	Target string
	// Rate is the offered arrival rate in requests/second (default 100).
	Rate float64
	// Duration is how long arrivals are scheduled for (default 10s).
	Duration time.Duration
	// Seed derives the whole arrival schedule (times, ops, job picks);
	// the same seed replays the identical schedule (default 1).
	Seed int64
	// Mix is the traffic mix (default DefaultMix).
	Mix Mix
	// Jobs is the base job population created before the run and
	// targeted by job-scoped ops (default 4).
	Jobs int
	// Subscribers attaches this many live SSE event streams to every
	// base job for the whole run (default 0).
	Subscribers int
	// Sellers, K, Horizon shape the jobs (defaults 20, 5, 100M rounds
	// — effectively unbounded, so advances never exhaust a job
	// mid-run).
	Sellers int
	K       int
	Horizon int
	// AdvanceRounds is the rounds requested per advance call (default 25).
	AdvanceRounds int
	// OpTimeout bounds each individual request (default 30s).
	OpTimeout time.Duration
	// KeepJobs leaves the created jobs behind after the run (default:
	// the runner deletes everything it created).
	KeepJobs bool
	// ServerMetrics scrapes the broker's /metrics after the run and
	// joins its cdt_http_request_seconds histograms into the report,
	// so client-observed and server-side p50/p99 print side by side
	// (see servermetrics.go). A failed scrape degrades to a log line,
	// never a failed run.
	ServerMetrics bool
	// HTTPClient overrides the pooled transport (tests inject the
	// httptest client).
	HTTPClient *http.Client
	// Logf, when set, receives progress lines (cdt-loadgen wires it
	// to stderr).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	if c.Jobs <= 0 {
		c.Jobs = 4
	}
	if c.Sellers <= 0 {
		c.Sellers = 20
	}
	if c.K <= 0 {
		c.K = 5
	}
	if c.Horizon <= 0 {
		c.Horizon = 100_000_000
	}
	if c.AdvanceRounds <= 0 {
		c.AdvanceRounds = 25
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// routeStats accumulates one op's outcomes; all fields are atomics so
// every in-flight request records wait-free.
type routeStats struct {
	count       atomic.Uint64
	ok          atomic.Uint64
	shed        atomic.Uint64 // 429
	unavailable atomic.Uint64 // 503
	errors5xx   atomic.Uint64 // 5xx except 503
	errors4xx   atomic.Uint64 // 4xx except 429
	transport   atomic.Uint64 // connection/transport failures
	skipped     atomic.Uint64 // op had nothing to act on (delete with no extras)
	lat         *hist         // latency of every issued request, any outcome
}

// runner is one executing profile.
type runner struct {
	cfg   Config
	load  *client.Client // MaxAttempts=1: raw behavior, no hidden retries
	setup *client.Client // retried: population setup/teardown

	stats map[Op]*routeStats

	// population: base jobs are fixed for the whole run; extras are
	// created by OpCreate and consumed by OpDelete.
	popMu  sync.Mutex
	base   []string
	extras []string

	outstanding    atomic.Int64
	maxOutstanding atomic.Int64
	proxied        atomic.Uint64

	events           atomic.Uint64
	eventsReconnects atomic.Uint64

	// lagMax is the worst dispatcher lateness: how far behind its
	// scheduled arrival a request actually fired. Large lag means the
	// GENERATOR saturated, and the offered rate was not actually
	// offered — reports surface it so capacity numbers are honest.
	lagMax atomic.Int64
}

// Run executes one fixed-rate open-loop profile and reports the
// outcome. The context cancels the run early (the report covers what
// ran).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, errors.New("loadgen: Config.Target is required")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 512,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	r := &runner{cfg: cfg, stats: make(map[Op]*routeStats, len(allOps))}
	for _, op := range allOps {
		r.stats[op] = &routeStats{lat: newHist()}
	}
	r.load = client.New(cfg.Target,
		client.WithHTTPClient(hc),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 1}),
		client.WithResponseHook(func(resp *http.Response) {
			if resp.Header.Get("X-CDT-Proxied-By") != "" {
				r.proxied.Add(1)
			}
		}),
	)
	r.setup = client.New(cfg.Target, client.WithHTTPClient(hc))

	schedule := BuildSchedule(cfg.Seed, cfg.Rate, cfg.Duration, cfg.Mix, cfg.Jobs)
	cfg.logf("loadgen: %d arrivals over %s at %.1f req/s (mix %s, seed %d)",
		len(schedule), cfg.Duration, cfg.Rate, cfg.Mix, cfg.Seed)

	if err := r.createPopulation(ctx); err != nil {
		return nil, err
	}
	defer r.cleanup()

	subCtx, stopSubs := context.WithCancel(ctx)
	var subWG sync.WaitGroup
	r.startSubscribers(subCtx, &subWG)

	start := time.Now()
	var wg sync.WaitGroup
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
dispatch:
	for i := range schedule {
		a := schedule[i]
		wait := a.At - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break dispatch
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break dispatch
		} else if lag := -wait; lag > time.Duration(r.lagMax.Load()) {
			// Fired late: open-loop still fires immediately (never
			// skips), but the lag is recorded.
			r.lagMax.Store(int64(lag))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := r.outstanding.Add(1)
			for {
				cur := r.maxOutstanding.Load()
				if out <= cur || r.maxOutstanding.CompareAndSwap(cur, out) {
					break
				}
			}
			r.fire(ctx, a)
			r.outstanding.Add(-1)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopSubs()
	subWG.Wait()

	rep := r.report(elapsed)
	if cfg.ServerMetrics {
		rows, err := scrapeServerRoutes(ctx, hc, cfg.Target)
		if err != nil {
			cfg.logf("loadgen: server-metrics scrape failed: %v", err)
		} else {
			rep.Server = r.attachServerRoutes(rows)
		}
	}
	return rep, nil
}

// createPopulation creates the base jobs through the retried setup
// client (a transiently saturated broker must not abort the run
// before it starts).
func (r *runner) createPopulation(ctx context.Context) error {
	r.base = make([]string, 0, r.cfg.Jobs)
	for i := 0; i < r.cfg.Jobs; i++ {
		st, err := r.setup.CreateJob(ctx, client.JobRequest{
			RandomSellers: r.cfg.Sellers,
			K:             r.cfg.K,
			Rounds:        r.cfg.Horizon,
			Seed:          r.cfg.Seed + int64(i),
		})
		if err != nil {
			return fmt.Errorf("loadgen: create base job %d/%d: %w", i+1, r.cfg.Jobs, err)
		}
		r.base = append(r.base, st.ID)
	}
	r.cfg.logf("loadgen: %d base jobs created (%d sellers, K=%d)", len(r.base), r.cfg.Sellers, r.cfg.K)
	return nil
}

// startSubscribers attaches cfg.Subscribers live event streams to
// every base job; each counts the rounds it sees until the run ends.
func (r *runner) startSubscribers(ctx context.Context, wg *sync.WaitGroup) {
	for _, id := range r.base {
		for s := 0; s < r.cfg.Subscribers; s++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				es, err := r.setup.Events(ctx, id, client.EventsOptions{Reconnect: true})
				if err != nil {
					return
				}
				defer es.Close()
				for {
					if _, err := es.Next(); err != nil {
						r.eventsReconnects.Add(uint64(es.Reconnects()))
						return
					}
					r.events.Add(1)
				}
			}(id)
		}
	}
}

// pickJob resolves an arrival's job slot to a live id: base slots
// directly, preferring extras for deletes.
func (r *runner) pickJob(slot int) string {
	r.popMu.Lock()
	defer r.popMu.Unlock()
	if len(r.base) == 0 {
		return ""
	}
	return r.base[slot%len(r.base)]
}

func (r *runner) pushExtra(id string) {
	r.popMu.Lock()
	r.extras = append(r.extras, id)
	r.popMu.Unlock()
}

func (r *runner) popExtra() (string, bool) {
	r.popMu.Lock()
	defer r.popMu.Unlock()
	if len(r.extras) == 0 {
		return "", false
	}
	id := r.extras[len(r.extras)-1]
	r.extras = r.extras[:len(r.extras)-1]
	return id, true
}

// fire issues one scheduled request and records its outcome.
func (r *runner) fire(ctx context.Context, a Arrival) {
	st := r.stats[a.Op]
	ctx, cancel := context.WithTimeout(ctx, r.cfg.OpTimeout)
	defer cancel()

	var err error
	t0 := time.Now()
	switch a.Op {
	case OpCreate:
		var js *client.JobStatus
		js, err = r.load.CreateJob(ctx, client.JobRequest{
			RandomSellers: r.cfg.Sellers,
			K:             r.cfg.K,
			Rounds:        r.cfg.Horizon,
			Seed:          r.cfg.Seed + int64(a.Job),
		})
		if err == nil {
			r.pushExtra(js.ID)
		}
	case OpAdvance:
		_, err = r.load.Advance(ctx, r.pickJob(a.Job), r.cfg.AdvanceRounds)
	case OpStatus:
		_, err = r.load.Job(ctx, r.pickJob(a.Job))
	case OpSnapshot:
		_, err = r.load.Snapshot(ctx, r.pickJob(a.Job))
	case OpEstimates:
		_, err = r.load.Estimates(ctx, r.pickJob(a.Job))
	case OpStats:
		_, err = r.load.Stats(ctx)
	case OpList:
		_, err = r.load.Jobs(ctx, client.ListJobsOptions{Limit: r.cfg.Jobs})
	case OpDelete:
		// Only churn jobs OpCreate made; the base population must
		// survive the whole run.
		id, ok := r.popExtra()
		if !ok {
			st.skipped.Add(1)
			return
		}
		if _, err = r.load.Delete(ctx, id); err != nil {
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
				err = nil // raced another delete; the job is gone either way
			}
		}
	case OpSolve:
		_, err = r.load.SolveGame(ctx, client.SolveGameRequest{
			Sellers: []client.SellerSpec{
				{CostQuadratic: 0.2, CostLinear: 0.1, ExpectedQuality: 0.9},
				{CostQuadratic: 0.3, CostLinear: 0.2, ExpectedQuality: 0.7},
			},
		})
	default:
		st.skipped.Add(1)
		return
	}
	st.lat.observe(time.Since(t0))
	st.count.Add(1)
	r.classify(st, err)
}

// classify buckets one outcome.
func (r *runner) classify(st *routeStats, err error) {
	if err == nil {
		st.ok.Add(1)
		return
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		st.transport.Add(1)
		return
	}
	switch {
	case apiErr.Status == http.StatusTooManyRequests:
		st.shed.Add(1)
	case apiErr.Status == http.StatusServiceUnavailable:
		st.unavailable.Add(1)
	case apiErr.Status >= 500:
		st.errors5xx.Add(1)
	default:
		st.errors4xx.Add(1)
	}
}

// cleanup deletes every job the runner created (base + surviving
// extras) unless KeepJobs is set.
func (r *runner) cleanup() {
	if r.cfg.KeepJobs {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r.popMu.Lock()
	ids := append(append([]string(nil), r.base...), r.extras...)
	r.base, r.extras = nil, nil
	r.popMu.Unlock()
	for _, id := range ids {
		if _, err := r.setup.Delete(ctx, id); err != nil {
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
				continue
			}
			r.cfg.logf("loadgen: cleanup %s: %v", id, err)
		}
	}
}
