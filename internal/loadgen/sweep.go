package loadgen

import (
	"context"
	"time"

	"cmabhs/client"
)

// SweepConfig drives a saturation sweep: run the base Config at
// StartRate, multiply by Factor each step, and stop at the first step
// whose p99, shed rate, or error rate crosses a threshold — that step
// is the knee, and the step before it is the last sustainable rate.
type SweepConfig struct {
	Config
	// StartRate is the first step's offered rate (default 50 req/s).
	StartRate float64
	// Factor multiplies the rate between steps (default 1.5).
	Factor float64
	// MaxSteps bounds the sweep (default 10).
	MaxSteps int
	// StepDuration overrides Config.Duration per step (default 10s).
	StepDuration time.Duration
	// Saturation thresholds (defaults: p99 1s, shed 5%, errors 1%).
	P99Threshold       time.Duration
	ShedRateThreshold  float64
	ErrorRateThreshold float64
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.StartRate <= 0 {
		c.StartRate = 50
	}
	if c.Factor <= 1 {
		c.Factor = 1.5
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 10
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 10 * time.Second
	}
	if c.P99Threshold <= 0 {
		c.P99Threshold = time.Second
	}
	if c.ShedRateThreshold <= 0 {
		c.ShedRateThreshold = 0.05
	}
	if c.ErrorRateThreshold <= 0 {
		c.ErrorRateThreshold = 0.01
	}
	return c
}

// SweepStep is one completed step of a sweep.
type SweepStep struct {
	Rate      float64 `json:"rate"`
	Saturated bool    `json:"saturated"`
	Why       string  `json:"why,omitempty"` // which threshold tripped
	Report    *Report `json:"report"`
}

// SweepResult is a finished sweep. Knee is the first saturated rate
// (0 when the broker absorbed every step), Sustained the last rate
// that stayed under every threshold.
type SweepResult struct {
	Steps     []SweepStep `json:"steps"`
	Knee      float64     `json:"knee"`
	Sustained float64     `json:"sustained"`
	Saturated bool        `json:"saturated"`
}

// RunSweep executes a saturation sweep. Each step is an independent
// fixed-rate run (fresh jobs, same seed, so steps differ only in
// rate); between steps the job list is audited through the paged
// listing to catch leaked jobs.
func RunSweep(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	res := &SweepResult{}
	rate := cfg.StartRate
	for step := 0; step < cfg.MaxSteps; step++ {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		stepCfg := cfg.Config
		stepCfg.Rate = rate
		stepCfg.Duration = cfg.StepDuration
		cfg.logf("sweep: step %d at %.1f req/s", step+1, rate)
		rep, err := Run(ctx, stepCfg)
		if err != nil {
			return res, err
		}
		sat, why := saturated(cfg, rep)
		res.Steps = append(res.Steps, SweepStep{Rate: rate, Saturated: sat, Why: why, Report: rep})
		if sat {
			res.Knee = rate
			res.Saturated = true
			cfg.logf("sweep: saturated at %.1f req/s (%s)", rate, why)
			break
		}
		res.Sustained = rate
		if n, err := auditJobs(ctx, cfg.Config); err == nil && n > 0 {
			cfg.logf("sweep: %d jobs still live after step %d (leak?)", n, step+1)
		}
		rate *= cfg.Factor
	}
	return res, nil
}

func saturated(cfg SweepConfig, rep *Report) (bool, string) {
	switch {
	case rep.P99S > cfg.P99Threshold.Seconds():
		return true, "p99"
	case rep.ShedRate > cfg.ShedRateThreshold:
		return true, "shed-rate"
	case rep.ErrorRate > cfg.ErrorRateThreshold:
		return true, "error-rate"
	}
	return false, ""
}

// auditJobs counts jobs left on the broker by walking GET /v1/jobs
// through ?limit/?after pages — both a leak check between sweep steps
// and live coverage of the paged listing.
func auditJobs(ctx context.Context, cfg Config) (int, error) {
	c := client.New(cfg.Target)
	if cfg.HTTPClient != nil {
		c = client.New(cfg.Target, client.WithHTTPClient(cfg.HTTPClient))
	}
	total, after := 0, ""
	for {
		page, err := c.Jobs(ctx, client.ListJobsOptions{Limit: 64, After: after})
		if err != nil {
			return total, err
		}
		total += len(page)
		if len(page) < 64 {
			return total, nil
		}
		after = page[len(page)-1].ID
	}
}
