// Package game implements the three-stage Hierarchical Stackelberg
// (HS) game of the CMAB-HS mechanism: the consumer (first-tier
// leader) posts a unit data-service price p^J, the platform
// (second-tier leader) posts a unit data-collection price p, and each
// selected seller (follower) chooses a sensing time τ_i. Backward
// induction over the three stages (Theorems 14–16 of the paper)
// yields the unique Stackelberg Equilibrium.
//
// Closed forms used (with the selected set's aggregate coefficients
// A = Σ 1/(2·q̄_i·a_i) and B = Σ b_i/(2·a_i), so that Στ_i = p·A − B):
//
//	Stage 3:  τ_i* = (p − q̄_i·b_i) / (2·q̄_i·a_i)            (Eq. 20)
//	Stage 2:  p*   = (p^J·A + B + 2θAB − λA) / (2A(1+θA))    (Eq. 21, sign-corrected)
//	Stage 1:  p^J* = (3·q̄·Λ + √Δ − 2) / (4·q̄·Θ)             (Eq. 22)
//	          Θ = A/(2(1+θA)),  Λ = (λA + B)/(2(1+θA)),
//	          Δ = (q̄Λ + 2)² − 8·q̄·(Λ − Θ·ω·q̄)
//
// The paper's Eq. (21) prints the numerator constant as −B; deriving
// ∂Ω/∂p = 0 from Eq. (7) gives +B, and the tests in this package
// confirm the corrected form against a numeric argmax of the exact
// profit functions (see DESIGN.md §1).
package game

import (
	"errors"
	"fmt"
	"math"

	"cmabhs/internal/economics"
	"cmabhs/internal/numutil"
)

// Errors returned by Params.Validate.
var (
	ErrNoSellers     = errors.New("game: no selected sellers")
	ErrShapeMismatch = errors.New("game: sellers and qualities length mismatch")
	ErrBadQuality    = errors.New("game: qualities must lie in (0, 1]")
	ErrBadBounds     = errors.New("game: price bounds must satisfy 0 <= min <= max")
)

// Bounds is a closed price interval [Min, Max].
type Bounds struct {
	Min, Max float64
}

// Validate reports whether the bounds are a valid interval.
func (b Bounds) Validate() error {
	if b.Min < 0 || b.Max < b.Min || math.IsNaN(b.Min) || math.IsNaN(b.Max) {
		return fmt.Errorf("%w (got [%v, %v])", ErrBadBounds, b.Min, b.Max)
	}
	return nil
}

// Clamp restricts x to the interval.
func (b Bounds) Clamp(x float64) float64 { return numutil.Clamp(x, b.Min, b.Max) }

// Contains reports whether x lies in the interval.
func (b Bounds) Contains(x float64) bool { return x >= b.Min && x <= b.Max }

// Params describes one round's game: the selected sellers' cost
// parameters and current estimated qualities, the platform and
// consumer parameters, and the strategy spaces.
type Params struct {
	Sellers   []economics.SellerCost // cost parameters (a_i, b_i) of the selected set
	Qualities []float64              // estimated qualities q̄_i ∈ (0, 1]
	Platform  economics.PlatformCost
	Consumer  economics.Valuation
	PJBounds  Bounds  // consumer's price space [p^J_min, p^J_max]
	PBounds   Bounds  // platform's price space [p_min, p_max]
	MaxTau    float64 // round duration T; <= 0 means unbounded sensing time
}

// Validate checks structural and model constraints.
func (p *Params) Validate() error {
	if len(p.Sellers) == 0 {
		return ErrNoSellers
	}
	if len(p.Sellers) != len(p.Qualities) {
		return fmt.Errorf("%w (%d sellers, %d qualities)", ErrShapeMismatch, len(p.Sellers), len(p.Qualities))
	}
	for i, c := range p.Sellers {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("seller %d: %w", i, err)
		}
	}
	for i, q := range p.Qualities {
		if !(q > 0) || q > 1 || math.IsNaN(q) {
			return fmt.Errorf("%w (seller %d has q̄=%v)", ErrBadQuality, i, q)
		}
	}
	if err := p.Platform.Validate(); err != nil {
		return err
	}
	if err := p.Consumer.Validate(); err != nil {
		return err
	}
	if err := p.PJBounds.Validate(); err != nil {
		return fmt.Errorf("p^J bounds: %w", err)
	}
	if err := p.PBounds.Validate(); err != nil {
		return fmt.Errorf("p bounds: %w", err)
	}
	return nil
}

// Coefficients holds the aggregate quantities the closed forms are
// written in.
type Coefficients struct {
	A    float64 // Σ 1/(2·q̄_i·a_i)
	B    float64 // Σ b_i/(2·a_i)
	QBar float64 // mean estimated quality of the selected set
}

// Coeffs computes the aggregate coefficients of the selected set.
func (p *Params) Coeffs() Coefficients {
	var a, b, q numutil.KahanSum
	for i, c := range p.Sellers {
		a.Add(1 / (2 * p.Qualities[i] * c.A))
		b.Add(c.B / (2 * c.A))
		q.Add(p.Qualities[i])
	}
	return Coefficients{
		A:    a.Sum(),
		B:    b.Sum(),
		QBar: q.Sum() / float64(len(p.Sellers)),
	}
}

// Outcome is the solved incentive strategy ⟨p^J*, p*, τ*⟩ together
// with the resulting profits.
type Outcome struct {
	PJ       float64   // consumer's unit data-service price p^J*
	P        float64   // platform's unit data-collection price p*
	Taus     []float64 // sensing time τ_i* per selected seller
	TotalTau float64   // Σ τ_i*

	ConsumerProfit float64   // Φ (Eq. 9)
	PlatformProfit float64   // Ω (Eq. 7)
	SellerProfits  []float64 // Ψ_i (Eq. 5)

	NoTrade    bool // parameters admit no profitable trade this round
	PJClamped  bool // p^J* hit a bound of PJBounds
	PClamped   bool // p* hit a bound of PBounds
	TauClamped bool // some τ_i* hit 0 or MaxTau (closed form is then approximate)
}

// SellerBestResponse returns seller i's optimal sensing time for a
// posted collection price p (Stage 3, Theorem 14), clamped to
// [0, MaxTau]. The unconstrained optimum is (p − q̄b)/(2q̄a); it is
// negative when the price does not cover the marginal cost at τ=0, in
// which case the seller contributes nothing.
func SellerBestResponse(p float64, cost economics.SellerCost, qbar, maxTau float64) (tau float64, clamped bool) {
	tau = (p - qbar*cost.B) / (2 * qbar * cost.A)
	if tau < 0 {
		return 0, true
	}
	if maxTau > 0 && tau > maxTau {
		return maxTau, true
	}
	return tau, false
}

// PlatformBestResponse returns the platform's optimal collection
// price for a posted service price pJ (Stage 2, corrected Eq. 21),
// clamped to PBounds.
func (p *Params) PlatformBestResponse(pJ float64, co Coefficients) (price float64, clamped bool) {
	theta, lambda := p.Platform.Theta, p.Platform.Lambda
	raw := (pJ*co.A + co.B + 2*theta*co.A*co.B - lambda*co.A) / (2 * co.A * (1 + theta*co.A))
	price = p.PBounds.Clamp(raw)
	return price, price != raw
}

// ConsumerBestPJ returns the consumer's optimal service price
// (Stage 1, Eq. 22), clamped to PJBounds. It also reports whether the
// unclamped optimum implies a positive total sensing time; if not,
// the round is no-trade at any admissible price.
func (p *Params) ConsumerBestPJ(co Coefficients) (pJ float64, clamped, trade bool) {
	theta := p.Platform.Theta
	bigTheta := co.A / (2 * (1 + theta*co.A))
	bigLambda := (p.Platform.Lambda*co.A + co.B) / (2 * (1 + theta*co.A))
	q := co.QBar
	delta := (q*bigLambda+2)*(q*bigLambda+2) - 8*q*(bigLambda-bigTheta*p.Consumer.Omega*q)
	if delta < 0 {
		// Cannot happen for valid params (Δ > (q̄Λ−2)² + 8Θωq̄² > 0),
		// but guard against pathological float inputs.
		return p.PJBounds.Min, true, false
	}
	raw := (3*q*bigLambda + math.Sqrt(delta) - 2) / (4 * q * bigTheta)
	pJ = p.PJBounds.Clamp(raw)
	// Trade requires S = Θ·p^J − Λ > 0 at the admissible price.
	trade = bigTheta*pJ-bigLambda > 1e-15
	return pJ, pJ != raw, trade
}

// reset clears o for an n-seller round, reusing the capacity of its
// slices so steady-state callers allocate nothing.
func (o *Outcome) reset(n int) {
	taus, profits := o.Taus, o.SellerProfits
	if cap(taus) < n {
		taus = make([]float64, n)
	}
	if cap(profits) < n {
		profits = make([]float64, n)
	}
	*o = Outcome{Taus: taus[:n], SellerProfits: profits[:n]}
	for i := 0; i < n; i++ {
		o.Taus[i] = 0
		o.SellerProfits[i] = 0
	}
}

// Solve runs the backward induction and returns the full equilibrium
// outcome. It returns an error only for invalid parameters; economic
// degeneracy (no profitable trade) is reported via Outcome.NoTrade.
func Solve(p *Params) (*Outcome, error) {
	return p.SolveInto(&Outcome{})
}

// SolveInto is Solve writing the equilibrium into out (reusing its
// slice capacity) instead of allocating a fresh Outcome. It returns
// out for chaining.
func (p *Params) SolveInto(out *Outcome) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	co := p.Coeffs()
	pJ, pjClamped, trade := p.ConsumerBestPJ(co)
	if !trade {
		out.reset(len(p.Sellers))
		out.PJ = pJ
		out.P = p.PBounds.Min
		out.NoTrade = true
		out.PJClamped = pjClamped
		return out, nil
	}
	price, pClamped := p.PlatformBestResponse(pJ, co)
	p.EvaluateInto(out, pJ, price, nil)
	out.PJClamped = pjClamped
	out.PClamped = pClamped
	return out, nil
}

// Evaluate computes the outcome for an arbitrary strategy profile.
// If taus is nil, sellers play their Stage-3 best responses to price
// p; otherwise the given sensing times are used verbatim (this is how
// the Fig. 14 deviation sweeps and the SE checks probe the game).
func (prm *Params) Evaluate(pJ, p float64, taus []float64) *Outcome {
	return prm.EvaluateInto(&Outcome{}, pJ, p, taus)
}

// EvaluateInto is Evaluate writing into out (reusing its slice
// capacity) instead of allocating a fresh Outcome. taus must not
// alias out.Taus. It returns out for chaining.
func (prm *Params) EvaluateInto(out *Outcome, pJ, p float64, taus []float64) *Outcome {
	n := len(prm.Sellers)
	out.reset(n)
	out.PJ = pJ
	out.P = p
	if taus == nil {
		for i, c := range prm.Sellers {
			tau, clamped := SellerBestResponse(p, c, prm.Qualities[i], prm.MaxTau)
			out.Taus[i] = tau
			out.TauClamped = out.TauClamped || clamped
		}
	} else {
		copy(out.Taus, taus)
	}
	var total numutil.KahanSum
	for _, tau := range out.Taus {
		total.Add(tau)
	}
	out.TotalTau = total.Sum()
	var qsum numutil.KahanSum
	for _, q := range prm.Qualities {
		qsum.Add(q)
	}
	qbar := qsum.Sum() / float64(n)
	for i, c := range prm.Sellers {
		out.SellerProfits[i] = economics.SellerProfit(p, out.Taus[i], prm.Qualities[i], c)
	}
	out.PlatformProfit = economics.PlatformProfit(pJ, p, out.TotalTau, prm.Platform)
	out.ConsumerProfit = economics.ConsumerProfit(pJ, out.TotalTau, qbar, prm.Consumer)
	return out
}

// TotalReward returns the consumer's total payment p^J·Στ for an
// outcome (what the ledger transfers from consumer to platform).
func (o *Outcome) TotalReward() float64 { return o.PJ * o.TotalTau }

// SellerReward returns the payment p·τ_i owed to seller i.
func (o *Outcome) SellerReward(i int) float64 { return o.P * o.Taus[i] }
