package game

import (
	"math"
	"testing"
	"testing/quick"

	"cmabhs/internal/economics"
	"cmabhs/internal/numutil"
	"cmabhs/internal/rng"
)

// testParams builds a game with K sellers drawn from the paper's
// parameter ranges (Table II): a∈[0.1,0.5], b∈[0.1,1], q∈[0.1,1],
// θ∈[0.1,1], λ∈[0.5,2], ω∈[600,1400].
func testParams(src *rng.Source, k int) *Params {
	p := &Params{
		Platform: economics.PlatformCost{Theta: src.Uniform(0.1, 1), Lambda: src.Uniform(0.5, 2)},
		Consumer: economics.Valuation{Omega: src.Uniform(600, 1400)},
		PJBounds: Bounds{Min: 0, Max: 200},
		PBounds:  Bounds{Min: 0, Max: 200},
	}
	for i := 0; i < k; i++ {
		p.Sellers = append(p.Sellers, economics.SellerCost{A: src.Uniform(0.1, 0.5), B: src.Uniform(0.1, 1)})
		p.Qualities = append(p.Qualities, src.Uniform(0.1, 1))
	}
	return p
}

// defaultParams returns the paper's default configuration with fixed
// mid-range seller parameters (deterministic). The spread of b_i
// means the cheapest-threshold structure is exercised: at defaults
// the last seller opts out (τ=0), as in realistic sweeps.
func defaultParams(k int) *Params {
	p := &Params{
		Platform: economics.PlatformCost{Theta: 0.1, Lambda: 1},
		Consumer: economics.Valuation{Omega: 1000},
		PJBounds: Bounds{Min: 0, Max: 200},
		PBounds:  Bounds{Min: 0, Max: 200},
	}
	for i := 0; i < k; i++ {
		frac := float64(i) / float64(k)
		p.Sellers = append(p.Sellers, economics.SellerCost{A: 0.1 + 0.4*frac, B: 0.1 + 0.9*frac})
		p.Qualities = append(p.Qualities, 0.2+0.8*frac)
	}
	return p
}

// interiorParams is defaultParams with uniformly small b_i, so every
// activation threshold is low and the full-set solution is interior —
// the regime the paper's closed forms assume.
func interiorParams(k int) *Params {
	p := defaultParams(k)
	for i := range p.Sellers {
		p.Sellers[i].B = 0.1
	}
	return p
}

func TestParamsValidate(t *testing.T) {
	good := defaultParams(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"no sellers", func(p *Params) { p.Sellers = nil; p.Qualities = nil }},
		{"length mismatch", func(p *Params) { p.Qualities = p.Qualities[:2] }},
		{"zero quality", func(p *Params) { p.Qualities[0] = 0 }},
		{"quality > 1", func(p *Params) { p.Qualities[0] = 1.5 }},
		{"bad seller cost", func(p *Params) { p.Sellers[0].A = 0 }},
		{"bad platform cost", func(p *Params) { p.Platform.Theta = -1 }},
		{"bad valuation", func(p *Params) { p.Consumer.Omega = 0.5 }},
		{"bad pJ bounds", func(p *Params) { p.PJBounds = Bounds{Min: 5, Max: 1} }},
		{"bad p bounds", func(p *Params) { p.PBounds = Bounds{Min: -1, Max: 1} }},
	}
	for _, tc := range cases {
		p := defaultParams(3)
		tc.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestBounds(t *testing.T) {
	b := Bounds{Min: 1, Max: 3}
	if b.Clamp(0) != 1 || b.Clamp(5) != 3 || b.Clamp(2) != 2 {
		t.Error("Clamp wrong")
	}
	if !b.Contains(1) || !b.Contains(3) || b.Contains(0.99) || b.Contains(3.01) {
		t.Error("Contains wrong")
	}
}

func TestCoeffs(t *testing.T) {
	p := &Params{
		Sellers:   []economics.SellerCost{{A: 0.25, B: 0.5}, {A: 0.5, B: 1}},
		Qualities: []float64{0.5, 1},
	}
	co := p.Coeffs()
	// A = 1/(2·0.5·0.25) + 1/(2·1·0.5) = 4 + 1 = 5
	if math.Abs(co.A-5) > 1e-12 {
		t.Errorf("A = %v", co.A)
	}
	// B = 0.5/(2·0.25) + 1/(2·0.5) = 1 + 1 = 2
	if math.Abs(co.B-2) > 1e-12 {
		t.Errorf("B = %v", co.B)
	}
	if math.Abs(co.QBar-0.75) > 1e-12 {
		t.Errorf("QBar = %v", co.QBar)
	}
}

// TestSellerBestResponseClosedFormIsArgmax: Theorem 14 — the closed
// form must beat every sampled deviation, and must match the numeric
// argmax, across random parameters.
func TestSellerBestResponseClosedFormIsArgmax(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 300; trial++ {
		cost := economics.SellerCost{A: src.Uniform(0.1, 0.5), B: src.Uniform(0.1, 1)}
		q := src.Uniform(0.1, 1)
		price := src.Uniform(0.05, 10)
		tau, _ := SellerBestResponse(price, cost, q, 0)
		best := economics.SellerProfit(price, tau, q, cost)
		// Numeric cross-check.
		p := &Params{Sellers: []economics.SellerCost{cost}, Qualities: []float64{q},
			PBounds: Bounds{Max: 10}}
		numTau := p.NumericSellerBestResponse(price, 0)
		if !numutil.AlmostEqual(tau, numTau, 1e-4) && math.Abs(tau-numTau) > 1e-6 {
			t.Fatalf("closed form τ=%v vs numeric %v (price=%v cost=%+v q=%v)", tau, numTau, price, cost, q)
		}
		// Random deviations never profit.
		for i := 0; i < 20; i++ {
			dev := src.Uniform(0, 4*tau+1)
			if economics.SellerProfit(price, dev, q, cost) > best+1e-9 {
				t.Fatalf("deviation τ=%v beats closed form τ=%v", dev, tau)
			}
		}
	}
}

// TestSellerBestResponseClamping: negative interior optimum clamps to
// zero; MaxTau caps the response.
func TestSellerBestResponseClamping(t *testing.T) {
	cost := economics.SellerCost{A: 0.3, B: 1}
	// price below q̄·b: seller opts out.
	tau, clamped := SellerBestResponse(0.1, cost, 0.9, 0)
	if tau != 0 || !clamped {
		t.Errorf("want opt-out, got τ=%v clamped=%v", tau, clamped)
	}
	// Small MaxTau binds.
	tau, clamped = SellerBestResponse(5, cost, 0.5, 0.5)
	if tau != 0.5 || !clamped {
		t.Errorf("want cap at 0.5, got τ=%v clamped=%v", tau, clamped)
	}
	// Interior.
	tau, clamped = SellerBestResponse(5, cost, 0.5, 100)
	want := (5 - 0.5*1) / (2 * 0.5 * 0.3)
	if math.Abs(tau-want) > 1e-12 || clamped {
		t.Errorf("interior τ=%v want %v clamped=%v", tau, want, clamped)
	}
}

// TestPlatformBestResponseMatchesNumeric validates the sign-corrected
// Eq. 21 against the numeric argmax of the exact platform profit.
func TestPlatformBestResponseMatchesNumeric(t *testing.T) {
	src := rng.New(12)
	for trial := 0; trial < 60; trial++ {
		p := testParams(src, 2+src.Intn(10))
		co := p.Coeffs()
		pJ := src.Uniform(2, 50)
		closed, clamped := p.PlatformBestResponse(pJ, co)
		if clamped {
			continue // compare interior solutions only
		}
		numeric := p.NumericPlatformBestResponse(pJ)
		// Guard: numeric path must be interior too (sellers not opted out).
		interior := true
		for i, c := range p.Sellers {
			if closed < p.Qualities[i]*c.B {
				interior = false
			}
		}
		if !interior {
			continue
		}
		if math.Abs(closed-numeric) > 1e-3*(1+math.Abs(closed)) {
			t.Fatalf("trial %d: closed p*=%v numeric %v (pJ=%v)", trial, closed, numeric, pJ)
		}
	}
}

// TestPlatformClosedFormBeatsPaperVariant demonstrates the Eq. 21
// sign correction: on a concrete instance, the corrected price yields
// strictly higher platform profit than the paper's printed formula.
func TestPlatformClosedFormBeatsPaperVariant(t *testing.T) {
	p := defaultParams(10)
	co := p.Coeffs()
	pJ := 20.0
	theta, lambda := p.Platform.Theta, p.Platform.Lambda
	corrected := (pJ*co.A + co.B + 2*theta*co.A*co.B - lambda*co.A) / (2 * co.A * (1 + theta*co.A))
	paper := (pJ*co.A - (lambda*co.A - 2*theta*co.B*co.A + co.B)) / (2 * co.A * (1 + theta*co.A))
	profit := func(price float64) float64 {
		return p.Evaluate(pJ, price, nil).PlatformProfit
	}
	if !(profit(corrected) > profit(paper)) {
		t.Fatalf("corrected form (%v -> %v) should beat paper form (%v -> %v)",
			corrected, profit(corrected), paper, profit(paper))
	}
	// And the corrected form is the argmax up to solver tolerance.
	numeric := p.NumericPlatformBestResponse(pJ)
	if math.Abs(corrected-numeric) > 1e-3 {
		t.Fatalf("corrected %v vs numeric argmax %v", corrected, numeric)
	}
}

// TestConsumerBestPJMatchesNumeric validates Eq. 22 against the
// numeric triple-nested argmax.
func TestConsumerBestPJMatchesNumeric(t *testing.T) {
	src := rng.New(13)
	checked := 0
	for trial := 0; trial < 40 && checked < 20; trial++ {
		p := testParams(src, 2+src.Intn(8))
		co := p.Coeffs()
		closed, clamped, trade := p.ConsumerBestPJ(co)
		if clamped || !trade {
			continue
		}
		// Interior check at the induced platform price.
		price, pc := p.PlatformBestResponse(closed, co)
		if pc {
			continue
		}
		interior := true
		for i, c := range p.Sellers {
			if price < p.Qualities[i]*c.B {
				interior = false
			}
		}
		if !interior {
			continue
		}
		numeric := p.NumericConsumerBestPJ()
		if math.Abs(closed-numeric) > 5e-3*(1+math.Abs(closed)) {
			t.Fatalf("trial %d: closed p^J*=%v numeric %v", trial, closed, numeric)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d interior instances checked; generator too restrictive", checked)
	}
}

// TestSolveProducesStackelbergEquilibrium probes Def. 13 with random
// unilateral deviations (Theorem 20).
func TestSolveProducesStackelbergEquilibrium(t *testing.T) {
	src := rng.New(14)
	for trial := 0; trial < 40; trial++ {
		p := testParams(src, 2+src.Intn(10))
		out, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if out.NoTrade || out.TauClamped {
			continue // closed forms are exact only for interior solutions
		}
		if dev := VerifySE(p, out, 400, src.Split(int64(trial)), 1e-6); dev != nil {
			t.Fatalf("trial %d: %v", trial, dev)
		}
	}
}

// TestSolveSEUnderClamping: even when p^J hits its cap the clamped
// strategy must remain unilaterally optimal within the admissible
// space (Theorem 20, Case 2).
func TestSolveSEUnderClamping(t *testing.T) {
	src := rng.New(15)
	verified := 0
	for trial := 0; trial < 30; trial++ {
		p := testParams(src, 2+src.Intn(10))
		p.PJBounds = Bounds{Min: 0, Max: 8} // tight cap: most instances clamp
		out, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if out.NoTrade || out.TauClamped {
			continue
		}
		if !out.PJClamped {
			continue
		}
		if dev := VerifySE(p, out, 300, src.Split(int64(trial)), 1e-6); dev != nil {
			t.Fatalf("trial %d: %v", trial, dev)
		}
		verified++
	}
	if verified == 0 {
		t.Skip("no clamped interior instances generated")
	}
}

// TestSolveExactMatchesSolveWhenInterior: on interior instances the
// exact solver must coincide with the paper's closed form.
func TestSolveExactMatchesSolveWhenInterior(t *testing.T) {
	p := interiorParams(10)
	plain, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TauClamped || plain.NoTrade {
		t.Fatal("interiorParams should be interior")
	}
	exact, err := SolveExact(p)
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.AlmostEqual(plain.PJ, exact.PJ, 1e-12) ||
		!numutil.AlmostEqual(plain.P, exact.P, 1e-12) ||
		!numutil.AlmostEqual(plain.TotalTau, exact.TotalTau, 1e-12) {
		t.Fatalf("exact (%v,%v,%v) != closed form (%v,%v,%v)",
			exact.PJ, exact.P, exact.TotalTau, plain.PJ, plain.P, plain.TotalTau)
	}
}

// TestSolveExactDominatesNumeric: the exact solver's consumer profit
// must match or beat the grid-based numeric solver on random
// instances, including ones with opted-out sellers.
func TestSolveExactDominatesNumeric(t *testing.T) {
	src := rng.New(21)
	for trial := 0; trial < 25; trial++ {
		p := testParams(src, 2+src.Intn(10))
		exact, err := SolveExact(p)
		if err != nil {
			t.Fatal(err)
		}
		numeric, err := NumericSolve(p)
		if err != nil {
			t.Fatal(err)
		}
		if exact.NoTrade {
			if numeric.ConsumerProfit > 1e-6 {
				t.Fatalf("trial %d: exact says no-trade but numeric finds Φ=%v", trial, numeric.ConsumerProfit)
			}
			continue
		}
		if exact.ConsumerProfit < numeric.ConsumerProfit-1e-4*(1+math.Abs(numeric.ConsumerProfit)) {
			t.Fatalf("trial %d: exact Φ=%v < numeric Φ=%v", trial, exact.ConsumerProfit, numeric.ConsumerProfit)
		}
	}
	// And specifically on the defaults, where seller 9 opts out.
	p := defaultParams(10)
	exact, err := SolveExact(p)
	if err != nil {
		t.Fatal(err)
	}
	numeric, err := NumericSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	// The numeric solver's *approximate* platform reaction can land
	// just past a supply kink and accidentally favor the consumer, so
	// compare with a relative tolerance.
	if exact.ConsumerProfit < numeric.ConsumerProfit-1e-4*(1+math.Abs(numeric.ConsumerProfit)) {
		t.Fatalf("defaults: exact Φ=%v < numeric Φ=%v", exact.ConsumerProfit, numeric.ConsumerProfit)
	}
}

// TestSolveExactSE: exact-solver outcomes withstand deviation probes
// with the exact platform reaction.
func TestSolveExactSE(t *testing.T) {
	src := rng.New(22)
	for trial := 0; trial < 15; trial++ {
		p := testParams(src, 2+src.Intn(10))
		out, err := SolveExact(p)
		if err != nil {
			t.Fatal(err)
		}
		if out.NoTrade {
			continue
		}
		s := p.newSupply()
		react := func(pj float64) float64 { return p.PlatformBestResponseExact(pj, s) }
		if dev := VerifySEReact(p, out, react, 200, src.Split(int64(trial)), 1e-4); dev != nil {
			t.Fatalf("trial %d: %v", trial, dev)
		}
	}
}

// TestSolveTotalTauIdentity: at an interior solution Στ = p·A − B and
// equals Θ·p^J − Λ (the paper's Υ identity).
func TestSolveTotalTauIdentity(t *testing.T) {
	p := interiorParams(10)
	out, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.NoTrade || out.TauClamped {
		t.Fatal("expected an interior trade for default params")
	}
	co := p.Coeffs()
	if !numutil.AlmostEqual(out.TotalTau, out.P*co.A-co.B, 1e-9) {
		t.Errorf("Στ=%v, p·A−B=%v", out.TotalTau, out.P*co.A-co.B)
	}
	theta := p.Platform.Theta
	bigTheta := co.A / (2 * (1 + theta*co.A))
	bigLambda := (p.Platform.Lambda*co.A + co.B) / (2 * (1 + theta*co.A))
	if !numutil.AlmostEqual(out.TotalTau, bigTheta*out.PJ-bigLambda, 1e-9) {
		t.Errorf("Στ=%v, Θp^J−Λ=%v", out.TotalTau, bigTheta*out.PJ-bigLambda)
	}
}

// TestSolveProfitsPositiveAtDefaults: with Table II defaults the
// trade is mutually profitable (participation is rational).
func TestSolveProfitsPositiveAtDefaults(t *testing.T) {
	p := defaultParams(10)
	out, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.NoTrade {
		t.Fatal("defaults should trade")
	}
	if out.ConsumerProfit <= 0 {
		t.Errorf("consumer profit %v", out.ConsumerProfit)
	}
	if out.PlatformProfit <= 0 {
		t.Errorf("platform profit %v", out.PlatformProfit)
	}
	for i, sp := range out.SellerProfits {
		if sp < 0 {
			t.Errorf("seller %d profit %v", i, sp)
		}
	}
	if out.TotalTau <= 0 {
		t.Errorf("total sensing time %v", out.TotalTau)
	}
}

// TestNoTradeWhenValuationTooSmall: with ω barely above its lower
// bound and expensive sellers there is no profitable trade.
func TestNoTradeWhenValuationTooSmall(t *testing.T) {
	p := &Params{
		Sellers:   []economics.SellerCost{{A: 50, B: 500}},
		Qualities: []float64{0.01},
		Platform:  economics.PlatformCost{Theta: 50, Lambda: 500},
		Consumer:  economics.Valuation{Omega: 1.01},
		PJBounds:  Bounds{Min: 0, Max: 1},
		PBounds:   Bounds{Min: 0, Max: 1},
	}
	out, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.NoTrade {
		t.Fatalf("expected no-trade, got %+v", out)
	}
	if out.TotalTau != 0 || out.ConsumerProfit != 0 || out.PlatformProfit != 0 {
		t.Error("no-trade outcome should be all-zero")
	}
}

// TestSolveClampsPJ: a tight price cap forces p^J to the bound and
// sets the flag.
func TestSolveClampsPJ(t *testing.T) {
	p := defaultParams(10)
	unbounded, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	p.PJBounds = Bounds{Min: 0, Max: unbounded.PJ / 2}
	out, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.PJClamped || out.PJ != unbounded.PJ/2 {
		t.Fatalf("want clamped p^J=%v, got %+v", unbounded.PJ/2, out)
	}
	// Clamped price yields weakly less consumer profit.
	if out.ConsumerProfit > unbounded.ConsumerProfit+1e-9 {
		t.Error("clamping should not increase consumer profit")
	}
}

// TestEvaluateExplicitTaus: Evaluate with explicit sensing times must
// use them verbatim.
func TestEvaluateExplicitTaus(t *testing.T) {
	p := defaultParams(3)
	taus := []float64{1, 2, 3}
	out := p.Evaluate(10, 2, taus)
	if out.TotalTau != 6 {
		t.Errorf("TotalTau = %v", out.TotalTau)
	}
	for i := range taus {
		if out.Taus[i] != taus[i] {
			t.Errorf("tau[%d] = %v", i, out.Taus[i])
		}
	}
	// Rewards follow Def. 5.
	if out.TotalReward() != 60 {
		t.Errorf("TotalReward = %v", out.TotalReward())
	}
	if out.SellerReward(1) != 4 {
		t.Errorf("SellerReward(1) = %v", out.SellerReward(1))
	}
	// Mutating the caller's slice afterwards must not alias.
	taus[0] = 99
	if out.Taus[0] == 99 {
		t.Error("Evaluate aliased the caller's slice")
	}
}

// TestConsumerProfitSinglePeaked reproduces the Fig. 13(a) shape: the
// consumer profit as a function of p^J (with followers reacting) has
// a single interior maximum at the closed-form p^J*.
func TestConsumerProfitSinglePeaked(t *testing.T) {
	p := interiorParams(10)
	co := p.Coeffs()
	pjStar, _, trade := p.ConsumerBestPJ(co)
	if !trade {
		t.Fatal("defaults should trade")
	}
	profitAt := func(pJ float64) float64 {
		price, _ := p.PlatformBestResponse(pJ, co)
		return p.Evaluate(pJ, price, nil).ConsumerProfit
	}
	best := profitAt(pjStar)
	for _, pJ := range numutil.Linspace(p.PJBounds.Min+0.01, p.PJBounds.Max, 200) {
		if profitAt(pJ) > best+1e-6 {
			t.Fatalf("p^J=%v beats closed-form optimum %v", pJ, pjStar)
		}
	}
	// Monotone rise before, fall after (sampled coarsely).
	left := profitAt(pjStar * 0.5)
	right := profitAt(pjStar * 1.5)
	if !(left < best && right < best) {
		t.Error("profit not single-peaked around p^J*")
	}
}

// TestDeltaAlwaysPositive: the discriminant of Eq. 28 is provably
// positive; fuzz it.
func TestDeltaAlwaysPositive(t *testing.T) {
	src := rng.New(16)
	for i := 0; i < 2000; i++ {
		p := testParams(src, 1+src.Intn(20))
		co := p.Coeffs()
		theta := p.Platform.Theta
		bigTheta := co.A / (2 * (1 + theta*co.A))
		bigLambda := (p.Platform.Lambda*co.A + co.B) / (2 * (1 + theta*co.A))
		q := co.QBar
		delta := (q*bigLambda+2)*(q*bigLambda+2) - 8*q*(bigLambda-bigTheta*p.Consumer.Omega*q)
		if !(delta > 0) {
			t.Fatalf("Δ=%v not positive (A=%v B=%v q̄=%v)", delta, co.A, co.B, q)
		}
	}
}

func BenchmarkSolveClosedForm(b *testing.B) {
	p := defaultParams(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveNumeric(b *testing.B) {
	p := defaultParams(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NumericSolve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSEIndividualRationality (quick): at any solved equilibrium,
// every party weakly prefers participating — seller profits are
// non-negative (τ=0 is always available), and the consumer/platform
// profits are non-negative whenever the round trades (they could post
// prices inducing no trade instead).
func TestSEIndividualRationality(t *testing.T) {
	src := rng.New(91)
	f := func(seed int64) bool {
		sub := src.Split(seed)
		p := testParams(sub, 1+sub.Intn(14))
		for _, solveFn := range []func(*Params) (*Outcome, error){Solve, SolveExact} {
			out, err := solveFn(p)
			if err != nil || out.NoTrade {
				continue
			}
			for _, sp := range out.SellerProfits {
				if sp < -1e-9 {
					return false
				}
			}
			if out.ConsumerProfit < -1e-6 || out.PlatformProfit < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
