package game

import (
	"fmt"

	"cmabhs/internal/rng"
)

// This file hosts the Stackelberg-Equilibrium verifier: it probes the
// Def. 13 inequalities with random unilateral deviations. Tests use
// it to certify Theorem 20 on random instances; the experiment layer
// reuses it for the Fig. 13–14 deviation sweeps.
//
// In a hierarchical Stackelberg game a leader's deviation is followed
// by the lower tiers re-solving their sub-games (that is what the τ*
// and p* in Eqs. 14–15 denote). Concretely:
//
//   - consumer deviates in p^J ⇒ platform plays p*(p^J), sellers play
//     τ*(p*(p^J));
//   - platform deviates in p (p^J* fixed) ⇒ sellers play τ*(p);
//   - seller i deviates in τ_i ⇒ everything else fixed (Eq. 16).
//
// Holding followers frozen while a leader lowers its price would
// *always* profit the leader (profit is linear in own price at fixed
// quantities), which is why the naive reading of Eqs. 14–15 is not
// the equilibrium condition the theorems establish.

// Deviation describes one profitable unilateral deviation found by
// VerifySE; a nil result means none was found.
type Deviation struct {
	Party string  // "consumer", "platform", or "seller i"
	From  float64 // equilibrium strategy value
	To    float64 // deviating strategy value
	Gain  float64 // profit improvement achieved by deviating
}

func (d *Deviation) String() string {
	return fmt.Sprintf("%s improves profit by %.6g deviating %.6g -> %.6g", d.Party, d.Gain, d.From, d.To)
}

// VerifySE checks the hierarchical SE conditions (Def. 13, Eqs.
// 14–16) for outcome out on game p by sampling trials random
// unilateral deviations per party within the strategy spaces. tol
// absorbs float noise: a deviation must improve the deviating party's
// profit by more than tol to count. It returns the first profitable
// deviation found, or nil if the outcome withstands all probes.
func VerifySE(p *Params, out *Outcome, trials int, src *rng.Source, tol float64) *Deviation {
	co := p.Coeffs()
	react := func(pj float64) float64 {
		price, _ := p.PlatformBestResponse(pj, co)
		return price
	}
	return VerifySEReact(p, out, react, trials, src, tol)
}

// VerifySEReact is VerifySE with an explicit platform reaction
// function (how the platform re-prices when the consumer deviates).
// Pass a closed-form reaction for Solve outcomes and an exact-curve
// reaction (see PlatformBestResponseExact) for SolveExact outcomes.
func VerifySEReact(p *Params, out *Outcome, react func(pJ float64) float64, trials int, src *rng.Source, tol float64) *Deviation {
	if out.NoTrade {
		return nil // nothing to deviate from; no-trade is handled upstream
	}
	for trial := 0; trial < trials; trial++ {
		// Consumer deviation in p^J; lower tiers re-solve.
		pj := src.Uniform(p.PJBounds.Min, p.PJBounds.Max)
		price := react(pj)
		dev := p.Evaluate(pj, price, nil)
		if dev.ConsumerProfit > out.ConsumerProfit+tol {
			return &Deviation{Party: "consumer", From: out.PJ, To: pj, Gain: dev.ConsumerProfit - out.ConsumerProfit}
		}
		// Platform deviation in p; sellers re-solve.
		price = src.Uniform(p.PBounds.Min, p.PBounds.Max)
		dev = p.Evaluate(out.PJ, price, nil)
		if dev.PlatformProfit > out.PlatformProfit+tol {
			return &Deviation{Party: "platform", From: out.P, To: price, Gain: dev.PlatformProfit - out.PlatformProfit}
		}
		// Per-seller deviation in τ_i; everything else fixed.
		i := src.Intn(len(p.Sellers))
		cap := p.MaxTau
		if cap <= 0 {
			cap = 4*out.Taus[i] + 1
		}
		taus := append([]float64(nil), out.Taus...)
		taus[i] = src.Uniform(0, cap)
		dev = p.Evaluate(out.PJ, out.P, taus)
		if dev.SellerProfits[i] > out.SellerProfits[i]+tol {
			return &Deviation{
				Party: fmt.Sprintf("seller %d", i),
				From:  out.Taus[i], To: taus[i],
				Gain: dev.SellerProfits[i] - out.SellerProfits[i],
			}
		}
	}
	return nil
}
