package game

import (
	"math"
	"sort"

	"cmabhs/internal/numutil"
)

// This file implements the exact solver over the kinked supply curve.
//
// The paper's Theorems 14–16 assume every selected seller plays an
// interior sensing time 0 < τ_i* < T. Two boundary effects break
// that: a seller opts out when the collection price does not clear
// its activation threshold q̄_i·b_i, and a seller saturates at the
// round duration T when the price exceeds q̄_i·(b_i + 2·a_i·T). The
// true supply curve
//
//	S(p) = Σ clamp((p − q̄_i·b_i)/(2·q̄_i·a_i), 0, T)
//
// is continuous, non-decreasing, and piecewise linear with
// breakpoints at every activation and saturation price. SolveExact
// handles it exactly:
//
//   - Stage 2: on each supply segment the platform profit is a
//     concave quadratic (or linear) in p, so the global optimum is
//     the best of O(#segments) segment-wise closed forms and
//     breakpoints.
//   - Stage 1: the consumer optimum is found among the segment-wise
//     Eq. 22 candidates, the segment-transition prices, and the
//     PJBounds endpoints, each evaluated against the exact Stage-2
//     response.
//
// Whenever the full-set solution is interior, SolveExact returns the
// same outcome as Solve.

// supply is the piecewise-linear representation of S(p): on segment
// j — prices in (bp[j], bp[j+1]], with bp[len-1] extending to +∞ —
// S(p) = segA[j]·p − segB[j]. Segment 0 covers p ≤ bp[0] where
// S = 0. Built by a slope-delta sweep with B fixed by continuity.
type supply struct {
	bp   []float64 // sorted breakpoints (activation and saturation prices)
	segA []float64 // slope per segment, len(bp)+1 entries... segA[j] covers (bp[j-1], bp[j]]
	segB []float64
	qbar float64 // mean quality of the whole selected set
}

// newSupply builds the supply curve of the selected set, honoring
// MaxTau when positive.
func (p *Params) newSupply() *supply {
	type event struct {
		price  float64
		dSlope float64
	}
	events := make([]event, 0, 2*len(p.Sellers))
	for i, c := range p.Sellers {
		q := p.Qualities[i]
		slope := 1 / (2 * q * c.A)
		act := q * c.B
		events = append(events, event{price: act, dSlope: slope})
		if p.MaxTau > 0 {
			sat := q * (c.B + 2*c.A*p.MaxTau)
			events = append(events, event{price: sat, dSlope: -slope})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].price < events[b].price })

	s := &supply{}
	a, b := 0.0, 0.0 // S = a·p − b before the first breakpoint (zero)
	s.segA = append(s.segA, a)
	s.segB = append(s.segB, b)
	for k := 0; k < len(events); {
		price := events[k].price
		dA := 0.0
		for k < len(events) && events[k].price == price {
			dA += events[k].dSlope
			k++
		}
		// Continuity at the breakpoint: (a+dA)·price − b' = a·price − b.
		newA := a + dA
		b = b + dA*price
		a = newA
		s.bp = append(s.bp, price)
		s.segA = append(s.segA, a)
		s.segB = append(s.segB, b)
	}
	var qsum numutil.KahanSum
	for _, qi := range p.Qualities {
		qsum.Add(qi)
	}
	s.qbar = qsum.Sum() / float64(len(p.Qualities))
	return s
}

// segment returns the index of the segment containing price p:
// segment j covers (bp[j-1], bp[j]] for j ≥ 1, segment 0 is p ≤ bp[0].
func (s *supply) segment(p float64) int {
	// First breakpoint >= p; prices exactly at a breakpoint belong to
	// the lower segment (S is continuous, so either side evaluates
	// identically).
	return sort.SearchFloat64s(s.bp, p)
}

// total returns S(p).
func (s *supply) total(p float64) float64 {
	j := s.segment(p)
	v := s.segA[j]*p - s.segB[j]
	if v < 0 {
		return 0 // float guard near the first activation
	}
	return v
}

// platformProfitAt evaluates the platform profit at price given pJ.
func (p *Params) platformProfitAt(pJ, price float64, s *supply) float64 {
	S := s.total(price)
	return (pJ-price)*S - p.Platform.Cost(S)
}

// PlatformBestResponseExact maximizes the platform profit over
// PBounds against the exact kinked supply curve.
func (p *Params) PlatformBestResponseExact(pJ float64, s *supply) float64 {
	theta, lambda := p.Platform.Theta, p.Platform.Lambda
	lo, hi := p.PBounds.Min, p.PBounds.Max
	bestP, bestV := lo, p.platformProfitAt(pJ, lo, s)
	consider := func(price float64) {
		price = p.PBounds.Clamp(price)
		if v := p.platformProfitAt(pJ, price, s); v > bestV {
			bestP, bestV = price, v
		}
	}
	consider(hi)
	for j := 1; j < len(s.segA); j++ {
		segLo := s.bp[j-1]
		segHi := hi
		if j < len(s.bp) {
			segHi = s.bp[j]
		}
		if segLo > hi || segHi < lo {
			continue
		}
		A, B := s.segA[j], s.segB[j]
		if A > 0 {
			// Ω(p) = (pJ−p)(Ap−B) − θ(Ap−B)² − λ(Ap−B): concave
			// quadratic with the same interior form as Eq. 21.
			interior := (pJ*A + B + 2*theta*A*B - lambda*A) / (2 * A * (1 + theta*A))
			consider(numutil.Clamp(numutil.Clamp(interior, segLo, segHi), lo, hi))
		}
		// With A == 0 (all saturated) Ω is linear decreasing in p:
		// the left breakpoint dominates, covered below.
		consider(numutil.Clamp(segLo, lo, hi))
	}
	return bestP
}

// stage1TiePJs returns the p^J values at which the platform's exact
// best response can jump between response branches. The platform's
// profit envelope over the kinked supply curve is a max of concave
// pieces — one quadratic (in p^J) per segment-interior optimum plus
// one linear piece per pinned breakpoint/bound price — and that
// envelope is NOT concave, so the argmax can switch between
// non-adjacent branches as p^J grows. The consumer's profit is
// discontinuous exactly at those switch prices, which makes every
// branch-pair tie (a quadratic root) a Stage-1 candidate. Each tie is
// emitted with a ±δ neighborhood because the supremum is approached
// one-sided at a jump.
func (p *Params) stage1TiePJs(s *supply) []float64 {
	theta, lambda := p.Platform.Theta, p.Platform.Lambda
	type quad struct{ a, b, c float64 } // branch profit a·pJ² + b·pJ + c
	var branches []quad
	// Pinned-price branches: supply breakpoints and the price bounds.
	// Profit (pJ−t)·S − θS² − λS is linear in pJ with slope S(t).
	pinned := append([]float64{p.PBounds.Min, p.PBounds.Max}, s.bp...)
	for _, t := range pinned {
		if t < p.PBounds.Min || t > p.PBounds.Max {
			continue
		}
		S := s.total(t)
		branches = append(branches, quad{b: S, c: -t*S - theta*S*S - lambda*S})
	}
	// Interior branches: segment j's unclamped optimum price is linear
	// in pJ, so the profit along it is quadratic; fit the coefficients
	// from three exact evaluations.
	for j := 1; j < len(s.segA); j++ {
		A, B := s.segA[j], s.segB[j]
		if A <= 0 {
			continue
		}
		f := func(pJ float64) float64 {
			price := (pJ*A + B + 2*theta*A*B - lambda*A) / (2 * A * (1 + theta*A))
			S := A*price - B
			return (pJ-price)*S - theta*S*S - lambda*S
		}
		f0, f1, f2 := f(0), f(1), f(2)
		a := (f0 - 2*f1 + f2) / 2
		branches = append(branches, quad{a: a, b: f1 - f0 - a, c: f0})
	}
	var out []float64
	for i := 0; i < len(branches); i++ {
		for j := i + 1; j < len(branches); j++ {
			x1, x2, err := numutil.QuadraticRoots(
				branches[i].a-branches[j].a,
				branches[i].b-branches[j].b,
				branches[i].c-branches[j].c)
			if err != nil {
				continue
			}
			for _, x := range []float64{x1, x2} {
				d := 1e-9 * (1 + math.Abs(x))
				out = append(out, x-d, x, x+d)
			}
		}
	}
	return out
}

// consumerProfitAt evaluates the consumer profit at pJ with the
// platform playing its exact best response and sellers reacting.
func (p *Params) consumerProfitAt(pJ float64, s *supply) (float64, float64) {
	price := p.PlatformBestResponseExact(pJ, s)
	S := s.total(price)
	return p.Consumer.Value(S, s.qbar) - pJ*S, price
}

// SolveExact solves the three-stage game exactly over the kinked
// supply curve (activation and saturation boundaries included). It
// returns an error only for invalid parameters.
func SolveExact(p *Params) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Fast path: the full-set closed form is exact when interior and
	// nothing is clamped.
	full, err := Solve(p)
	if err != nil {
		return nil, err
	}
	if !full.NoTrade && !full.TauClamped {
		return full, nil
	}
	// Otherwise search the kinked curve — including when the full-set
	// model reported no trade, since a smaller active set (without the
	// sellers whose negative model-τ dragged S down) may still trade.
	s := p.newSupply()
	theta, lambda := p.Platform.Theta, p.Platform.Lambda
	n := len(p.Sellers)

	candidates := []float64{p.PJBounds.Min, p.PJBounds.Max}
	for j := 1; j < len(s.segA); j++ {
		A, B := s.segA[j], s.segB[j]
		if A <= 0 {
			continue
		}
		co := Coefficients{A: A, B: B, QBar: s.qbar}
		if pj, _, trade := p.ConsumerBestPJ(co); trade {
			candidates = append(candidates, pj)
		}
		// Transition prices: pJ at which the segment-j interior
		// platform optimum hits each end of its segment. Beyond these
		// the platform response pins to a breakpoint, where consumer
		// profit is monotone in pJ — so the transition itself is the
		// candidate.
		ends := []float64{s.bp[j-1]}
		if j < len(s.bp) {
			ends = append(ends, s.bp[j])
		} else {
			ends = append(ends, p.PBounds.Max)
		}
		for _, t := range ends {
			// interior(pJ) = t  =>  pJ = (2A(1+θA)·t − B − 2θAB + λA)/A
			pj := (2*A*(1+theta*A)*t - B - 2*theta*A*B + lambda*A) / A
			candidates = append(candidates, p.PJBounds.Clamp(pj))
		}
	}
	candidates = append(candidates, p.stage1TiePJs(s)...)
	bestPJ, bestPrice, bestV := p.PJBounds.Min, p.PBounds.Min, 0.0
	found := false
	for _, pj := range candidates {
		if pj < p.PJBounds.Min || pj > p.PJBounds.Max {
			continue
		}
		v, price := p.consumerProfitAt(pj, s)
		if !found || v > bestV {
			bestPJ, bestPrice, bestV = pj, price, v
			found = true
		}
	}
	if !found || s.total(bestPrice) <= 1e-15 {
		out := &Outcome{
			PJ:            p.PJBounds.Min,
			P:             p.PBounds.Min,
			Taus:          make([]float64, n),
			SellerProfits: make([]float64, n),
			NoTrade:       true,
		}
		return out, nil
	}
	out := p.Evaluate(bestPJ, bestPrice, nil)
	out.PJClamped = bestPJ == p.PJBounds.Min || bestPJ == p.PJBounds.Max
	out.PClamped = bestPrice == p.PBounds.Min || bestPrice == p.PBounds.Max
	return out, nil
}
