package game

import (
	"math"
	"testing"

	"cmabhs/internal/economics"
	"cmabhs/internal/numutil"
	"cmabhs/internal/rng"
)

// bruteSupply computes S(p) straight from the definition.
func bruteSupply(p *Params, price float64) float64 {
	var sum float64
	for i, c := range p.Sellers {
		tau := (price - p.Qualities[i]*c.B) / (2 * p.Qualities[i] * c.A)
		if tau < 0 {
			tau = 0
		}
		if p.MaxTau > 0 && tau > p.MaxTau {
			tau = p.MaxTau
		}
		sum += tau
	}
	return sum
}

// TestSupplyCurveMatchesDefinition: the breakpoint-sweep
// representation equals the direct clamp-sum at random prices, with
// and without a sensing-time cap.
func TestSupplyCurveMatchesDefinition(t *testing.T) {
	src := rng.New(61)
	for trial := 0; trial < 100; trial++ {
		p := testParams(src, 1+src.Intn(12))
		if trial%2 == 0 {
			p.MaxTau = src.Uniform(0.2, 5)
		}
		s := p.newSupply()
		for probe := 0; probe < 60; probe++ {
			price := src.Uniform(0, 6)
			want := bruteSupply(p, price)
			got := s.total(price)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d: S(%v) = %v, want %v (MaxTau=%v)", trial, price, got, want, p.MaxTau)
			}
		}
		// Exactly at every breakpoint too (tie handling).
		for _, bp := range s.bp {
			want := bruteSupply(p, bp)
			if got := s.total(bp); math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d: S at breakpoint %v = %v, want %v", trial, bp, got, want)
			}
		}
	}
}

// TestSupplyCurveShape: S is non-negative, non-decreasing, and fully
// saturated at ΣT above the last breakpoint when capped.
func TestSupplyCurveShape(t *testing.T) {
	src := rng.New(62)
	p := testParams(src, 8)
	p.MaxTau = 1.5
	s := p.newSupply()
	if len(s.bp) != 16 { // activation + saturation per seller
		t.Fatalf("breakpoints %d", len(s.bp))
	}
	prev := -1.0
	for _, price := range numutil.Linspace(0, s.bp[len(s.bp)-1]+1, 500) {
		v := s.total(price)
		if v < prev-1e-12 {
			t.Fatalf("supply decreased at p=%v", price)
		}
		prev = v
	}
	want := 8 * 1.5
	if got := s.total(s.bp[len(s.bp)-1] + 10); math.Abs(got-want) > 1e-9 {
		t.Fatalf("saturated supply %v, want %v", got, want)
	}
}

// TestPlatformBestResponseExactBeatsGrid: the segment-wise closed
// forms must match or beat a fine grid search of the true profit.
func TestPlatformBestResponseExactBeatsGrid(t *testing.T) {
	src := rng.New(63)
	for trial := 0; trial < 40; trial++ {
		p := testParams(src, 2+src.Intn(8))
		if trial%2 == 1 {
			p.MaxTau = src.Uniform(0.3, 3)
		}
		s := p.newSupply()
		pJ := src.Uniform(2, 40)
		exact := p.PlatformBestResponseExact(pJ, s)
		exactV := p.platformProfitAt(pJ, exact, s)
		gridBest := math.Inf(-1)
		for _, price := range numutil.Linspace(p.PBounds.Min, p.PBounds.Max, 4001) {
			if v := p.platformProfitAt(pJ, price, s); v > gridBest {
				gridBest = v
			}
		}
		if exactV < gridBest-1e-6*(1+math.Abs(gridBest)) {
			t.Fatalf("trial %d: exact response %v (Ω=%v) below grid best %v", trial, exact, exactV, gridBest)
		}
	}
}

// TestSolveExactWithCapMatchesNumeric: with a binding sensing-time
// cap, the exact solver's consumer profit matches or beats the
// numeric solver (which also honors the cap), up to the numeric
// solver's kink-landing slack.
func TestSolveExactWithCapMatchesNumeric(t *testing.T) {
	src := rng.New(64)
	for trial := 0; trial < 12; trial++ {
		p := testParams(src, 2+src.Intn(6))
		p.MaxTau = src.Uniform(0.3, 2) // tight cap: saturation binds at equilibrium prices
		exact, err := SolveExact(p)
		if err != nil {
			t.Fatal(err)
		}
		numeric, err := NumericSolve(p)
		if err != nil {
			t.Fatal(err)
		}
		if exact.NoTrade {
			if numeric.ConsumerProfit > 1e-6 {
				t.Fatalf("trial %d: exact no-trade but numeric Φ=%v", trial, numeric.ConsumerProfit)
			}
			continue
		}
		slack := 2e-3 * (1 + math.Abs(numeric.ConsumerProfit))
		if exact.ConsumerProfit < numeric.ConsumerProfit-slack {
			t.Fatalf("trial %d: exact Φ=%v < numeric Φ=%v (cap %v)",
				trial, exact.ConsumerProfit, numeric.ConsumerProfit, p.MaxTau)
		}
		// Sensing times honor the cap.
		for i, tau := range exact.Taus {
			if tau > p.MaxTau+1e-12 {
				t.Fatalf("trial %d: τ_%d = %v exceeds cap %v", trial, i, tau, p.MaxTau)
			}
		}
	}
}

// TestSolveExactSaturationRegime: a market where every seller
// saturates (huge valuation, tiny cap) trades at full supply.
func TestSolveExactSaturationRegime(t *testing.T) {
	p := &Params{
		Sellers: []economics.SellerCost{
			{A: 0.2, B: 0.1}, {A: 0.3, B: 0.2}, {A: 0.25, B: 0.15},
		},
		Qualities: []float64{0.8, 0.9, 0.7},
		Platform:  economics.PlatformCost{Theta: 0.1, Lambda: 1},
		Consumer:  economics.Valuation{Omega: 5000},
		PJBounds:  Bounds{Min: 0, Max: 500},
		PBounds:   Bounds{Min: 0, Max: 500},
		MaxTau:    0.5,
	}
	out, err := SolveExact(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.NoTrade {
		t.Fatal("rich consumer should trade")
	}
	if !numutil.AlmostEqual(out.TotalTau, 1.5, 1e-6) {
		t.Fatalf("total sensing time %v, want full saturation 1.5", out.TotalTau)
	}
	for _, tau := range out.Taus {
		if !numutil.AlmostEqual(tau, 0.5, 1e-9) {
			t.Fatalf("τ = %v, want cap 0.5", tau)
		}
	}
	// The closed-form solution would overshoot the cap badly.
	plain, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.TauClamped {
		t.Error("closed form should report clamping here")
	}
}
