package game

import (
	"math"
	"testing"

	"cmabhs/internal/economics"
	"cmabhs/internal/numutil"
	"cmabhs/internal/rng"
)

func TestFlexValidate(t *testing.T) {
	good := FlexFromParams(defaultParams(3), 50)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid flex rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*FlexParams)
	}{
		{"no sellers", func(f *FlexParams) { f.Costs = nil; f.Qualities = nil }},
		{"length mismatch", func(f *FlexParams) { f.Qualities = f.Qualities[:1] }},
		{"nil cost", func(f *FlexParams) { f.Costs[0] = nil }},
		{"bad quality", func(f *FlexParams) { f.Qualities[0] = 0 }},
		{"nil valuation", func(f *FlexParams) { f.Valuation = nil }},
		{"bad platform", func(f *FlexParams) { f.Platform.Theta = 0 }},
		{"bad bounds", func(f *FlexParams) { f.PJBounds = Bounds{Min: 2, Max: 1} }},
		{"no cap", func(f *FlexParams) { f.MaxTau = 0 }},
	}
	for _, tc := range cases {
		f := FlexFromParams(defaultParams(3), 50)
		tc.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestFlexMatchesClosedFormOnPaperFamilies: with the paper's
// quadratic/log families and a non-binding cap, SolveFlex lands on
// (approximately) the closed-form equilibrium.
func TestFlexMatchesClosedFormOnPaperFamilies(t *testing.T) {
	p := interiorParams(6)
	closed, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if closed.TauClamped || closed.NoTrade {
		t.Fatal("interior instance expected")
	}
	flex, err := SolveFlex(FlexFromParams(p, 4*closed.TotalTau))
	if err != nil {
		t.Fatal(err)
	}
	// Grid solvers are approximate; profits must agree tightly, the
	// prices loosely.
	if !numutil.AlmostEqual(flex.ConsumerProfit, closed.ConsumerProfit, 2e-3) {
		t.Errorf("flex Φ=%v vs closed %v", flex.ConsumerProfit, closed.ConsumerProfit)
	}
	if math.Abs(flex.PJ-closed.PJ) > 0.05*(1+closed.PJ) {
		t.Errorf("flex p^J=%v vs closed %v", flex.PJ, closed.PJ)
	}
}

// TestFlexPiecewiseLinearBangBang: with linear cost below the price
// slope, a seller's best response jumps to the cap; above it, to
// zero — the bang-bang structure quadratic costs smooth out.
func TestFlexPiecewiseLinearBangBang(t *testing.T) {
	f := &FlexParams{
		Costs:     []economics.CostFunc{economics.PiecewiseLinearCost{Rate: 2, Knee: 1, Steepen: 4}},
		Qualities: []float64{1},
		Platform:  economics.PlatformCost{Theta: 0.1, Lambda: 1},
		Valuation: economics.Valuation{Omega: 100},
		PJBounds:  Bounds{Max: 50},
		PBounds:   Bounds{Max: 20},
		MaxTau:    3,
	}
	// Price below the base slope (2): opt out.
	if tau := f.SellerBestResponse(1.5, 0); tau != 0 {
		t.Errorf("price below marginal cost: τ=%v, want 0", tau)
	}
	// Price between slopes (2, 8): sit at the knee.
	if tau := f.SellerBestResponse(5, 0); math.Abs(tau-1) > 0.02 {
		t.Errorf("price between slopes: τ=%v, want ≈1 (knee)", tau)
	}
	// Price above the steep slope: saturate at the cap.
	if tau := f.SellerBestResponse(10, 0); math.Abs(tau-3) > 0.02 {
		t.Errorf("price above steep slope: τ=%v, want cap 3", tau)
	}
}

// TestFlexCobbDouglas: the Cobb–Douglas valuation produces a
// profitable trade and an SE-like outcome (no sampled unilateral
// deviation profits).
func TestFlexCobbDouglas(t *testing.T) {
	src := rng.New(71)
	f := &FlexParams{
		Platform:  economics.PlatformCost{Theta: 0.1, Lambda: 1},
		Valuation: economics.CobbDouglasValuation{Scale: 400, ElasTau: 0.5, ElasQ: 0.5},
		PJBounds:  Bounds{Max: 100},
		PBounds:   Bounds{Max: 5},
		MaxTau:    20,
	}
	for i := 0; i < 6; i++ {
		f.Costs = append(f.Costs, economics.SellerCost{A: src.Uniform(0.1, 0.5), B: src.Uniform(0.1, 1)})
		f.Qualities = append(f.Qualities, src.Uniform(0.2, 1))
	}
	out, err := SolveFlex(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.NoTrade || out.ConsumerProfit <= 0 {
		t.Fatalf("Cobb–Douglas market should trade profitably: %+v", out)
	}
	// Seller deviations at the equilibrium prices never profit.
	for trial := 0; trial < 200; trial++ {
		i := src.Intn(len(f.Costs))
		dev := src.Uniform(0, f.MaxTau)
		devProfit := out.P*dev - f.Costs[i].Cost(dev, f.Qualities[i])
		if devProfit > out.SellerProfits[i]+1e-6 {
			t.Fatalf("seller %d profits from τ=%v (%v > %v)", i, dev, devProfit, out.SellerProfits[i])
		}
	}
	// Consumer deviations (with reactions) never profit materially.
	qbar := f.qbar()
	for trial := 0; trial < 40; trial++ {
		pj := src.Uniform(f.PJBounds.Min, f.PJBounds.Max)
		price := f.PlatformBestResponse(pj)
		S := f.totalTau(price)
		if phi := f.Valuation.Value(S, qbar) - pj*S; phi > out.ConsumerProfit*(1+1e-3)+1e-6 {
			t.Fatalf("consumer profits from p^J=%v (%v > %v)", pj, phi, out.ConsumerProfit)
		}
	}
}

// TestFlexNoTrade: an absurdly expensive market yields no trade.
func TestFlexNoTrade(t *testing.T) {
	f := &FlexParams{
		Costs:     []economics.CostFunc{economics.PiecewiseLinearCost{Rate: 1e6, Knee: 1, Steepen: 1}},
		Qualities: []float64{0.5},
		Platform:  economics.PlatformCost{Theta: 0.1, Lambda: 1},
		Valuation: economics.Valuation{Omega: 2},
		PJBounds:  Bounds{Max: 3},
		PBounds:   Bounds{Max: 3},
		MaxTau:    5,
	}
	out, err := SolveFlex(f)
	if err != nil {
		t.Fatal(err)
	}
	if !out.NoTrade {
		t.Fatalf("expected no-trade, got %+v", out)
	}
}

func BenchmarkSolveFlexK10(b *testing.B) {
	p := defaultParams(10)
	f := FlexFromParams(p, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveFlex(f); err != nil {
			b.Fatal(err)
		}
	}
}
