package game

import (
	"errors"
	"fmt"
	"math"

	"cmabhs/internal/economics"
	"cmabhs/internal/numutil"
)

// This file implements the family-flexible game solver: the same
// three-stage Stackelberg structure, but with the cost and valuation
// families behind interfaces, so the related-work alternatives
// (piecewise-linear seller costs; Cobb–Douglas valuation — [15],
// [16], [19]–[21] in the paper) can be played and compared against
// the paper's quadratic/logarithmic choices. The closed forms only
// exist for the paper's families, so every stage here is solved
// numerically; a finite sensing-time cap (MaxTau) keeps the seller
// stage well-posed for families with linear tails.

// FlexParams describes one round's game with pluggable families.
type FlexParams struct {
	Costs     []economics.CostFunc // per-seller cost families
	Qualities []float64            // estimated qualities q̄_i ∈ (0, 1]
	Platform  economics.PlatformCost
	Valuation economics.ValuationFunc
	PJBounds  Bounds
	PBounds   Bounds
	MaxTau    float64 // must be positive: bounds the sellers' strategy space
}

// Validate checks structural and model constraints.
func (f *FlexParams) Validate() error {
	if len(f.Costs) == 0 {
		return ErrNoSellers
	}
	if len(f.Costs) != len(f.Qualities) {
		return fmt.Errorf("%w (%d costs, %d qualities)", ErrShapeMismatch, len(f.Costs), len(f.Qualities))
	}
	for i, c := range f.Costs {
		if c == nil {
			return fmt.Errorf("game: nil cost family for seller %d", i)
		}
	}
	for i, q := range f.Qualities {
		if !(q > 0) || q > 1 || math.IsNaN(q) {
			return fmt.Errorf("%w (seller %d has q̄=%v)", ErrBadQuality, i, q)
		}
	}
	if f.Valuation == nil {
		return errors.New("game: nil valuation family")
	}
	if err := f.Platform.Validate(); err != nil {
		return err
	}
	if err := f.PJBounds.Validate(); err != nil {
		return fmt.Errorf("p^J bounds: %w", err)
	}
	if err := f.PBounds.Validate(); err != nil {
		return fmt.Errorf("p bounds: %w", err)
	}
	if !(f.MaxTau > 0) {
		return errors.New("game: flex games need a positive MaxTau")
	}
	return nil
}

// SellerBestResponse maximizes Ψ_i(τ) = p·τ − C_i(τ, q̄_i) over
// τ ∈ [0, MaxTau] by grid+golden search (the family need not be
// smooth — piecewise-linear costs have kinks).
func (f *FlexParams) SellerBestResponse(price float64, i int) float64 {
	cost, q := f.Costs[i], f.Qualities[i]
	profit := func(tau float64) float64 { return price*tau - cost.Cost(tau, q) }
	tau, best := numutil.MaximizeGrid(profit, 0, f.MaxTau, 96)
	// Opting out is always available.
	if best < 0 {
		return 0
	}
	return tau
}

// totalTau returns Στ with every seller playing its best response.
func (f *FlexParams) totalTau(price float64) float64 {
	var sum numutil.KahanSum
	for i := range f.Costs {
		sum.Add(f.SellerBestResponse(price, i))
	}
	return sum.Sum()
}

func (f *FlexParams) qbar() float64 {
	var sum numutil.KahanSum
	for _, q := range f.Qualities {
		sum.Add(q)
	}
	return sum.Sum() / float64(len(f.Qualities))
}

// PlatformBestResponse maximizes the platform profit over PBounds
// with sellers best-responding.
func (f *FlexParams) PlatformBestResponse(pJ float64) float64 {
	obj := func(price float64) float64 {
		S := f.totalTau(price)
		return (pJ-price)*S - f.Platform.Cost(S)
	}
	price, _ := numutil.MaximizeGrid(obj, f.PBounds.Min, f.PBounds.Max, 96)
	return price
}

// SolveFlex runs the full backward induction numerically and returns
// the outcome under the configured families.
func SolveFlex(f *FlexParams) (*Outcome, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	qbar := f.qbar()
	consumer := func(pJ float64) float64 {
		price := f.PlatformBestResponse(pJ)
		S := f.totalTau(price)
		return f.Valuation.Value(S, qbar) - pJ*S
	}
	pJ, _ := numutil.MaximizeGrid(consumer, f.PJBounds.Min, f.PJBounds.Max, 96)
	price := f.PlatformBestResponse(pJ)

	n := len(f.Costs)
	out := &Outcome{
		PJ:            pJ,
		P:             price,
		Taus:          make([]float64, n),
		SellerProfits: make([]float64, n),
	}
	var total numutil.KahanSum
	for i := range f.Costs {
		tau := f.SellerBestResponse(price, i)
		out.Taus[i] = tau
		total.Add(tau)
		out.SellerProfits[i] = price*tau - f.Costs[i].Cost(tau, f.Qualities[i])
	}
	out.TotalTau = total.Sum()
	if out.TotalTau <= 1e-12 {
		out.NoTrade = true
		out.TotalTau = 0
		return out, nil
	}
	out.PlatformProfit = (pJ-price)*out.TotalTau - f.Platform.Cost(out.TotalTau)
	out.ConsumerProfit = f.Valuation.Value(out.TotalTau, qbar) - pJ*out.TotalTau
	return out, nil
}

// FlexFromParams lifts the paper's quadratic/log game into the
// flexible representation (for cross-checks and ablations). maxTau
// must be positive.
func FlexFromParams(p *Params, maxTau float64) *FlexParams {
	costs := make([]economics.CostFunc, len(p.Sellers))
	for i, c := range p.Sellers {
		costs[i] = c
	}
	return &FlexParams{
		Costs:     costs,
		Qualities: append([]float64(nil), p.Qualities...),
		Platform:  p.Platform,
		Valuation: p.Consumer,
		PJBounds:  p.PJBounds,
		PBounds:   p.PBounds,
		MaxTau:    maxTau,
	}
}
