package game

import (
	"cmabhs/internal/economics"
	"cmabhs/internal/numutil"
)

// This file hosts the numeric reference solver. It maximizes each
// stage's exact profit function directly, without the closed forms,
// and exists for three reasons: (1) the tests cross-check Theorems
// 14–16 (including the sign correction to Eq. 21) against it, (2) the
// ablation bench quantifies the speed/accuracy gap, and (3) it keeps
// working when a stage's interior-solution assumption breaks (e.g.
// sensing times clamped at T), where the closed forms are only
// approximate.

// numericTauCap returns a finite search interval for sensing times.
func (p *Params) numericTauCap() float64 {
	if p.MaxTau > 0 {
		return p.MaxTau
	}
	// Generous data-driven cap: the seller best response at the top
	// admissible price bounds any rational sensing time.
	cap := 1.0
	for i, c := range p.Sellers {
		t := (p.PBounds.Max - p.Qualities[i]*c.B) / (2 * p.Qualities[i] * c.A)
		if t > cap {
			cap = t
		}
	}
	return cap * 2
}

// NumericSellerBestResponse maximizes Ψ_i(τ) = p·τ − C_i(τ, q̄) over
// τ ∈ [0, cap] by golden-section search.
func (p *Params) NumericSellerBestResponse(price float64, i int) float64 {
	cost, q := p.Sellers[i], p.Qualities[i]
	cap := p.numericTauCap()
	tau, _ := numutil.MaximizeGolden(func(t float64) float64 {
		return economics.SellerProfit(price, t, q, cost)
	}, 0, cap, cap*1e-12+1e-12)
	return tau
}

// numericTotalTau returns Στ_i with every seller playing the numeric
// best response to price.
func (p *Params) numericTotalTau(price float64) float64 {
	var sum numutil.KahanSum
	for i := range p.Sellers {
		sum.Add(p.NumericSellerBestResponse(price, i))
	}
	return sum.Sum()
}

// NumericPlatformBestResponse maximizes the platform's profit over
// p ∈ PBounds with sellers playing numeric best responses.
func (p *Params) NumericPlatformBestResponse(pJ float64) float64 {
	f := func(price float64) float64 {
		return economics.PlatformProfit(pJ, price, p.numericTotalTau(price), p.Platform)
	}
	// The profit is concave in p only while every seller stays
	// interior; activation and saturation boundaries kink it into
	// several local maxima, which can sit closer together than one
	// top-level grid step when PBounds dwarfs the breakpoint region.
	// Zoomed re-gridding keeps the oracle honest there — a follower
	// that under-optimizes would let the leader's numeric profit
	// exceed what is actually achievable.
	price, _ := numutil.MaximizeGridZoom(f, p.PBounds.Min, p.PBounds.Max, 64, 3)
	return price
}

// NumericConsumerBestPJ maximizes the consumer's profit over
// p^J ∈ PJBounds with the platform and sellers playing numeric best
// responses.
func (p *Params) NumericConsumerBestPJ() float64 {
	var qsum numutil.KahanSum
	for _, q := range p.Qualities {
		qsum.Add(q)
	}
	qbar := qsum.Sum() / float64(len(p.Qualities))
	f := func(pJ float64) float64 {
		price := p.NumericPlatformBestResponse(pJ)
		return economics.ConsumerProfit(pJ, p.numericTotalTau(price), qbar, p.Consumer)
	}
	pJ, _ := numutil.MaximizeGrid(f, p.PJBounds.Min, p.PJBounds.Max, 64)
	return pJ
}

// NumericSolve runs the full backward induction numerically and
// returns the resulting outcome.
func NumericSolve(p *Params) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pJ := p.NumericConsumerBestPJ()
	price := p.NumericPlatformBestResponse(pJ)
	taus := make([]float64, len(p.Sellers))
	for i := range p.Sellers {
		taus[i] = p.NumericSellerBestResponse(price, i)
	}
	return p.Evaluate(pJ, price, taus), nil
}
