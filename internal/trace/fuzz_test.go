package trace

import (
	"strings"
	"testing"
)

// FuzzParseCSV checks the parser never panics and that anything it
// accepts survives a write→parse round trip unchanged.
func FuzzParseCSV(f *testing.F) {
	f.Add("taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\nx,2021-01-01 00:00:00,2021-01-01 00:10:00,1.5,1,2\n")
	f.Add("taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\n")
	f.Add("garbage")
	f.Add("")
	f.Add("taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\nx,2021-01-01 00:00:00,2020-01-01 00:00:00,1,1,1\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteCSV(&sb, recs); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		back, err := ParseCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(back))
		}
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], back[i])
			}
		}
	})
}
