// Package trace implements the mobility-trace substrate the paper's
// evaluation is driven by. The paper uses a 27,465-record extract of
// the public "Chicago Taxi Trips" dataset; that file is not shipped
// here, so the package provides both (a) a parser/writer for the
// relevant subset of the public schema, and (b) a synthetic generator
// that reproduces the structure the CDT evaluation depends on: a few
// hundred taxis with heterogeneous activity moving between community
// areas, from which the L busiest areas become PoIs and the taxis
// that serve them become the M candidate data sellers.
//
// The bandit/game layers consume only (seller set, PoI set); sensing
// qualities are randomly generated in [0, 1] exactly as in the paper
// ("there is no record about the qualities"), so the substitution
// preserves the behaviour that matters. See DESIGN.md §5.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"cmabhs/internal/rng"
)

// Record is one taxi trip, mirroring the fields of the public
// Chicago schema the paper's evaluation relies on.
type Record struct {
	TaxiID      string    // anonymized taxi identifier
	Start       time.Time // trip start timestamp
	End         time.Time // trip end timestamp
	TripMiles   float64   // trip length
	PickupArea  int       // pickup community area (1-based)
	DropoffArea int       // dropoff community area (1-based)
}

// Validate reports structural problems with the record.
func (r *Record) Validate() error {
	switch {
	case r.TaxiID == "":
		return errors.New("trace: empty taxi id")
	case r.End.Before(r.Start):
		return fmt.Errorf("trace: trip ends (%v) before it starts (%v)", r.End, r.Start)
	case r.TripMiles < 0:
		return fmt.Errorf("trace: negative trip miles %v", r.TripMiles)
	case r.PickupArea <= 0 || r.DropoffArea <= 0:
		return fmt.Errorf("trace: non-positive community area (%d, %d)", r.PickupArea, r.DropoffArea)
	}
	return nil
}

const timeLayout = "2006-01-02 15:04:05"

var csvHeader = []string{"taxi_id", "trip_start", "trip_end", "trip_miles", "pickup_area", "dropoff_area"}

// WriteCSV writes records in the package's canonical CSV layout.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(csvHeader, ",") + "\n"); err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		_, err := fmt.Fprintf(bw, "%s,%s,%s,%s,%d,%d\n",
			r.TaxiID,
			r.Start.UTC().Format(timeLayout),
			r.End.UTC().Format(timeLayout),
			strconv.FormatFloat(r.TripMiles, 'f', -1, 64),
			r.PickupArea, r.DropoffArea)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseCSV reads records written by WriteCSV (or hand-converted from
// the public dataset into the same six columns). Unknown extra
// columns are rejected to surface schema drift early.
func ParseCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("trace: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("trace: unexpected header %q", got)
	}
	var recs []Record
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != len(csvHeader) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), len(csvHeader))
		}
		start, err := time.Parse(timeLayout, fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d start: %w", line, err)
		}
		end, err := time.Parse(timeLayout, fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d end: %w", line, err)
		}
		miles, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d miles: %w", line, err)
		}
		pick, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d pickup: %w", line, err)
		}
		drop, err := strconv.Atoi(fields[5])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d dropoff: %w", line, err)
		}
		rec := Record{TaxiID: fields[0], Start: start, End: end, TripMiles: miles, PickupArea: pick, DropoffArea: drop}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Dataset wraps a trip collection with the PoI/seller extraction the
// CDT pipeline needs.
type Dataset struct {
	Records []Record
}

// visitCounts returns per-area visit counts (pickups + dropoffs).
func (d *Dataset) visitCounts() map[int]int {
	counts := make(map[int]int)
	for i := range d.Records {
		counts[d.Records[i].PickupArea]++
		counts[d.Records[i].DropoffArea]++
	}
	return counts
}

// TopPoIs returns the l busiest community areas (most pickups +
// dropoffs), ties broken by lower area id. Fewer than l areas in the
// data means fewer PoIs returned.
func (d *Dataset) TopPoIs(l int) []int {
	counts := d.visitCounts()
	areas := make([]int, 0, len(counts))
	for a := range counts {
		areas = append(areas, a)
	}
	sort.Slice(areas, func(i, j int) bool {
		if counts[areas[i]] != counts[areas[j]] {
			return counts[areas[i]] > counts[areas[j]]
		}
		return areas[i] < areas[j]
	})
	if l > len(areas) {
		l = len(areas)
	}
	return areas[:l]
}

// SellerCandidates returns the taxi ids that visit at least one of
// the given PoIs, ordered by descending PoI visit count (ties by id).
// These are the M candidate data sellers of the evaluation.
func (d *Dataset) SellerCandidates(pois []int) []string {
	inPoI := make(map[int]bool, len(pois))
	for _, p := range pois {
		inPoI[p] = true
	}
	visits := make(map[string]int)
	for i := range d.Records {
		r := &d.Records[i]
		if inPoI[r.PickupArea] {
			visits[r.TaxiID]++
		}
		if inPoI[r.DropoffArea] {
			visits[r.TaxiID]++
		}
	}
	ids := make([]string, 0, len(visits))
	for id := range visits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if visits[ids[i]] != visits[ids[j]] {
			return visits[ids[i]] > visits[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// GenConfig parameterizes the synthetic generator. The defaults
// mirror the scale of the paper's extract: ~300 taxis, 77 community
// areas (Chicago's count), ~27k trips.
type GenConfig struct {
	Taxis    int           // number of distinct taxis (default 300)
	Areas    int           // number of community areas (default 77)
	Trips    int           // number of trip records (default 27465)
	Start    time.Time     // window start (default 2021-01-01)
	Duration time.Duration // window length (default 30 days)
	Seed     int64         // generator seed
}

func (c *GenConfig) withDefaults() GenConfig {
	out := *c
	if out.Taxis <= 0 {
		out.Taxis = 300
	}
	if out.Areas <= 0 {
		out.Areas = 77
	}
	if out.Trips <= 0 {
		out.Trips = 27465
	}
	if out.Start.IsZero() {
		out.Start = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if out.Duration <= 0 {
		out.Duration = 30 * 24 * time.Hour
	}
	return out
}

// Generate produces a synthetic trip trace with heterogeneous taxi
// activity (Gamma-distributed weights) and Zipf-like area popularity,
// the two structural properties the PoI/seller extraction depends on.
func Generate(cfg GenConfig) []Record {
	c := cfg.withDefaults()
	src := rng.New(c.Seed)

	taxiW := make([]float64, c.Taxis)
	var taxiTotal float64
	for i := range taxiW {
		taxiW[i] = src.Gamma(0.8) + 0.05
		taxiTotal += taxiW[i]
	}
	areaW := make([]float64, c.Areas)
	var areaTotal float64
	for i := range areaW {
		areaW[i] = 1 / float64(i+1) // Zipf: area 1 is the loop, busiest
		areaTotal += areaW[i]
	}
	pick := func(w []float64, total float64) int {
		x := src.Uniform(0, total)
		for i, v := range w {
			x -= v
			if x <= 0 {
				return i
			}
		}
		return len(w) - 1
	}

	recs := make([]Record, c.Trips)
	for t := range recs {
		taxi := pick(taxiW, taxiTotal)
		start := c.Start.Add(time.Duration(src.Float64() * float64(c.Duration)))
		dur := time.Duration((2 + src.Exponential(0.15)) * float64(time.Minute))
		miles := 0.3 + src.Exponential(0.35)
		recs[t] = Record{
			TaxiID:      fmt.Sprintf("taxi-%04d", taxi),
			Start:       start.Truncate(time.Second),
			End:         start.Add(dur).Truncate(time.Second),
			TripMiles:   miles,
			PickupArea:  pick(areaW, areaTotal) + 1,
			DropoffArea: pick(areaW, areaTotal) + 1,
		}
	}
	return recs
}
