package trace

import (
	"strings"
	"testing"
	"time"
)

func sampleRecords() []Record {
	t0 := time.Date(2021, 3, 1, 8, 0, 0, 0, time.UTC)
	return []Record{
		{TaxiID: "taxi-0001", Start: t0, End: t0.Add(10 * time.Minute), TripMiles: 2.5, PickupArea: 8, DropoffArea: 32},
		{TaxiID: "taxi-0002", Start: t0.Add(time.Hour), End: t0.Add(time.Hour + 5*time.Minute), TripMiles: 1.25, PickupArea: 8, DropoffArea: 8},
		{TaxiID: "taxi-0001", Start: t0.Add(2 * time.Hour), End: t0.Add(2*time.Hour + 20*time.Minute), TripMiles: 7, PickupArea: 32, DropoffArea: 3},
	}
}

func TestRecordValidate(t *testing.T) {
	t0 := time.Now()
	good := Record{TaxiID: "x", Start: t0, End: t0, TripMiles: 0, PickupArea: 1, DropoffArea: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := []Record{
		{TaxiID: "", Start: t0, End: t0, PickupArea: 1, DropoffArea: 1},
		{TaxiID: "x", Start: t0, End: t0.Add(-time.Second), PickupArea: 1, DropoffArea: 1},
		{TaxiID: "x", Start: t0, End: t0, TripMiles: -1, PickupArea: 1, DropoffArea: 1},
		{TaxiID: "x", Start: t0, End: t0, PickupArea: 0, DropoffArea: 1},
		{TaxiID: "x", Start: t0, End: t0, PickupArea: 1, DropoffArea: -2},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("parsed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "foo,bar\n"},
		{"wrong field count", "taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\nonly,three,fields\n"},
		{"bad time", "taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\nx,not-a-time,2021-01-01 00:00:00,1,1,1\n"},
		{"bad miles", "taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\nx,2021-01-01 00:00:00,2021-01-01 00:10:00,abc,1,1\n"},
		{"bad area", "taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\nx,2021-01-01 00:00:00,2021-01-01 00:10:00,1,zero,1\n"},
		{"invalid record", "taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\nx,2021-01-01 00:00:00,2021-01-01 00:10:00,1,0,1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseCSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestParseCSVSkipsBlankLines(t *testing.T) {
	in := "taxi_id,trip_start,trip_end,trip_miles,pickup_area,dropoff_area\n\nx,2021-01-01 00:00:00,2021-01-01 00:10:00,1,1,2\n\n"
	recs, err := ParseCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestTopPoIs(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	// Area 8 has 3 visits, 32 has 2, 3 has 1.
	pois := d.TopPoIs(2)
	if len(pois) != 2 || pois[0] != 8 || pois[1] != 32 {
		t.Fatalf("TopPoIs = %v", pois)
	}
	// Asking for more PoIs than areas returns all.
	if got := d.TopPoIs(10); len(got) != 3 {
		t.Errorf("TopPoIs(10) = %v", got)
	}
}

func TestSellerCandidates(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	// PoI {8}: taxi-0001 visits once (pickup), taxi-0002 twice.
	got := d.SellerCandidates([]int{8})
	if len(got) != 2 || got[0] != "taxi-0002" || got[1] != "taxi-0001" {
		t.Fatalf("SellerCandidates = %v", got)
	}
	// PoI {3}: only taxi-0001.
	got = d.SellerCandidates([]int{3})
	if len(got) != 1 || got[0] != "taxi-0001" {
		t.Fatalf("SellerCandidates = %v", got)
	}
	// No PoIs: nobody.
	if got := d.SellerCandidates(nil); len(got) != 0 {
		t.Fatalf("SellerCandidates(nil) = %v", got)
	}
}

func TestGenerateDefaults(t *testing.T) {
	recs := Generate(GenConfig{Seed: 1, Trips: 5000})
	if len(recs) != 5000 {
		t.Fatalf("len = %d", len(recs))
	}
	taxis := map[string]bool{}
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if recs[i].PickupArea > 77 || recs[i].DropoffArea > 77 {
			t.Fatalf("area out of range: %+v", recs[i])
		}
		taxis[recs[i].TaxiID] = true
	}
	// With 5000 trips over 300 heterogeneous taxis, most taxis appear.
	if len(taxis) < 200 {
		t.Errorf("only %d distinct taxis", len(taxis))
	}
}

func TestGenerateReproducible(t *testing.T) {
	a := Generate(GenConfig{Seed: 7, Trips: 200})
	b := Generate(GenConfig{Seed: 7, Trips: 200})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must generate identical traces")
		}
	}
	c := Generate(GenConfig{Seed: 8, Trips: 200})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

// TestGenerateStructure: the busiest areas follow the Zipf weights
// (area 1 busiest), and taxi activity is heterogeneous.
func TestGenerateStructure(t *testing.T) {
	recs := Generate(GenConfig{Seed: 3, Trips: 20000})
	d := &Dataset{Records: recs}
	pois := d.TopPoIs(10)
	if pois[0] != 1 {
		t.Errorf("area 1 should be the busiest, got %v", pois)
	}
	// All top PoIs should be low-numbered under Zipf popularity.
	for _, p := range pois {
		if p > 25 {
			t.Errorf("unexpectedly high-numbered busy area %d in %v", p, pois)
		}
	}
	// The full pipeline: candidates at the top 10 PoIs form the seller
	// population of the evaluation.
	sellers := d.SellerCandidates(pois)
	if len(sellers) < 250 {
		t.Errorf("only %d seller candidates", len(sellers))
	}
	// Heterogeneity: the busiest taxi serves far more PoI visits than
	// the median taxi.
	visits := map[string]int{}
	inPoI := map[int]bool{}
	for _, p := range pois {
		inPoI[p] = true
	}
	for i := range recs {
		if inPoI[recs[i].PickupArea] {
			visits[recs[i].TaxiID]++
		}
		if inPoI[recs[i].DropoffArea] {
			visits[recs[i].TaxiID]++
		}
	}
	top := visits[sellers[0]]
	median := visits[sellers[len(sellers)/2]]
	if !(top >= 3*median) {
		t.Errorf("taxi activity not heterogeneous: top=%d median=%d", top, median)
	}
}

func TestWriteCSVRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []Record{{TaxiID: ""}})
	if err == nil {
		t.Fatal("invalid record should fail WriteCSV")
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(GenConfig{Seed: int64(i), Trips: 27465})
	}
}

func BenchmarkParseCSV(b *testing.B) {
	recs := Generate(GenConfig{Seed: 1, Trips: 10000})
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		b.Fatal(err)
	}
	data := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCSV(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
