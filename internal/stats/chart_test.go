package stats

import (
	"math"
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	up := Series{Name: "up", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}}
	down := Series{Name: "down", Points: []Point{{X: 0, Y: 2}, {X: 1, Y: 1}, {X: 2, Y: 0}}}
	var sb strings.Builder
	if err := (Chart{Width: 20, Height: 5}).Render(&sb, "demo", "x", up, down); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "up", "down", "(x)", "*", "o", "+----"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Title + 5 rows + axis + labels + 2 legend + trailing.
	if len(lines) != 11 {
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
	// The increasing series' glyph appears top-right and bottom-left.
	var plot []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plot = append(plot, l[strings.Index(l, "|")+1:])
		}
	}
	if len(plot) != 5 {
		t.Fatalf("plot rows %d", len(plot))
	}
	if !strings.Contains(plot[0], "*") || strings.Index(plot[0], "*") < 10 {
		t.Errorf("up-series peak not top-right: %q", plot[0])
	}
	if !strings.Contains(plot[0], "o") || strings.Index(plot[0], "o") > 5 {
		t.Errorf("down-series peak not top-left: %q", plot[0])
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	var sb strings.Builder
	// No finite points.
	err := Chart{}.Render(&sb, "t", "x", Series{Name: "nan", Points: []Point{{X: 0, Y: math.NaN()}}})
	if err != nil || !strings.Contains(sb.String(), "no finite points") {
		t.Errorf("NaN-only series: %v / %q", err, sb.String())
	}
	// Single point (zero X and Y ranges) must not divide by zero.
	sb.Reset()
	if err := (Chart{}).Render(&sb, "t", "x", Series{Name: "one", Points: []Point{{X: 3, Y: 7}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("single point not plotted")
	}
	// Defaults kick in for zero dimensions.
	sb.Reset()
	if err := (Chart{}).Render(&sb, "", "", Series{Name: "s", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(sb.String(), "\n")) < 17 {
		t.Error("default height not applied")
	}
}

func TestChartGlyphCycling(t *testing.T) {
	series := make([]Series, 10)
	for i := range series {
		series[i] = Series{Name: "s", Points: []Point{{X: float64(i), Y: float64(i)}}}
	}
	var sb strings.Builder
	if err := (Chart{Width: 30, Height: 6}).Render(&sb, "", "", series...); err != nil {
		t.Fatal(err)
	}
	// 10 series with 8 glyphs: the legend shows cycled glyphs.
	if strings.Count(sb.String(), "\n  ") < 10 {
		t.Error("legend incomplete")
	}
}
