package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "x", "y")
	tab.AddRow("1", "10")
	tab.AddFloatRow(2, 20.5)
	tab.AddRow("3") // short row padded
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "x", "y", "20.5000", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("1", `va"l,ue`)
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"va\"\"l,ue\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := Series{Name: "optimal", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}}
	s2 := Series{Name: "random", Points: []Point{{X: 1, Y: 5}, {X: 3, Y: 7}}}
	tab := SeriesTable("Fig", "N", s1, s2)
	if len(tab.Headers) != 3 || tab.Headers[1] != "optimal" {
		t.Fatalf("headers = %v", tab.Headers)
	}
	if len(tab.Rows) != 3 { // x = 1, 2, 3
		t.Fatalf("rows = %v", tab.Rows)
	}
	// x=2 exists only in s1; the s2 cell must be empty.
	if tab.Rows[1][2] != "" {
		t.Errorf("missing point should render empty, got %q", tab.Rows[1][2])
	}
	if tab.Rows[2][1] != "" || tab.Rows[2][2] != "7" {
		t.Errorf("row 3 = %v", tab.Rows[2])
	}
}
