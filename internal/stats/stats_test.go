package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	// Unbiased variance of the classic data set: 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.StdErr() <= 0 || a.CI95() <= a.StdErr() {
		t.Error("StdErr/CI95 should be positive and CI wider")
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("n=1 dispersion must be zero")
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Error("n=1 min/max must equal the sample")
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		var whole, left, right Accumulator
		nl, nr := rng.Intn(100), 1+rng.Intn(100)
		for i := 0; i < nl; i++ {
			x := rng.NormFloat64() * 10
			whole.Add(x)
			left.Add(x)
		}
		for i := 0; i < nr; i++ {
			x := rng.NormFloat64()*10 + 5
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if left.N() != whole.N() {
			t.Fatalf("merged N %d != %d", left.N(), whole.N())
		}
		if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
			t.Fatalf("merged mean %v != %v", left.Mean(), whole.Mean())
		}
		if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
			t.Fatalf("merged var %v != %v", left.Variance(), whole.Variance())
		}
		if left.Min() != whole.Min() || left.Max() != whole.Max() {
			t.Fatal("merged min/max mismatch")
		}
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // empty rhs: no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Error("merge with empty changed state")
	}
	b.Merge(&a) // empty lhs: copy
	if b.N() != 2 || b.Mean() != 2 {
		t.Error("empty lhs should copy rhs")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if Median(xs) != 3 {
		t.Errorf("median = %v", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Error("out-of-range q should clamp")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, x := range []float64{-0.5, 0, 0.05, 0.15, 0.95, 0.999999, 1, 2} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Errorf("in-range total = %d", h.Total())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = %d/%d", under, over)
	}
	if h.Counts[0] != 2 { // 0 and 0.05
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 0.95 and 0.999999
		t.Errorf("bin9 = %d", h.Counts[9])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params should panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestSeriesBuilder(t *testing.T) {
	b := NewSeriesBuilder("revenue")
	b.Observe(2, 10)
	b.Observe(1, 5)
	b.Observe(2, 14)
	s := b.Series()
	if s.Name != "revenue" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].X != 1 || s.Points[1].X != 2 {
		t.Error("points not sorted by X")
	}
	if s.Points[1].Y != 12 || s.Points[1].Count != 2 {
		t.Errorf("aggregation wrong: %+v", s.Points[1])
	}
}

func TestSeriesBuilderMerge(t *testing.T) {
	a := NewSeriesBuilder("m")
	b := NewSeriesBuilder("m")
	a.Observe(1, 2)
	b.Observe(1, 4)
	b.Observe(3, 9)
	a.Merge(b)
	s := a.Series()
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Y != 3 || s.Points[0].Count != 2 {
		t.Errorf("merged point wrong: %+v", s.Points[0])
	}
	if s.Points[1].Y != 9 || s.Points[1].Count != 1 {
		t.Errorf("copied point wrong: %+v", s.Points[1])
	}
}

func TestAccumulatorMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // avoid float overflow artifacts
			}
			a.Add(x)
		}
		if a.N() == 0 {
			return true
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9 && a.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{-12, "-12"},
		{2.5, "2.5000"},
		{1e8, "1.000e+08"},
		{0.0001, "1.000e-04"},
		{0, "0"},
	}
	for _, tc := range tests {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
