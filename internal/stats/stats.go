// Package stats provides the summary-statistics substrate used by the
// experiment harness: streaming moment accumulators, series
// aggregation across replications, quantiles, histograms, and
// confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance with Welford's
// algorithm, plus min/max. The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples seen.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns a normal-approximation 95% confidence half-width for
// the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Merge folds another accumulator into a (parallel reduction), using
// Chan et al.'s pairwise update.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	under  int64
	over   int64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics on invalid arguments.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records x, counting out-of-range values in under/overflow bins.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard float edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int64) { return h.under, h.over }

// Point is one (X, Y) sample of a result series, with dispersion.
type Point struct {
	X     float64 // swept parameter value
	Y     float64 // mean across replications
	Err   float64 // 95% CI half-width
	Count int64   // replications folded in
}

// Series is a named sequence of points, the unit the figure renderers
// consume.
type Series struct {
	Name   string
	Points []Point
}

// SeriesBuilder aggregates replicated observations keyed by X into a
// Series. It is not safe for concurrent use; run replications into
// separate builders and Merge them, or collect via channels.
type SeriesBuilder struct {
	name string
	accs map[float64]*Accumulator
}

// NewSeriesBuilder returns an empty builder for a series called name.
func NewSeriesBuilder(name string) *SeriesBuilder {
	return &SeriesBuilder{name: name, accs: make(map[float64]*Accumulator)}
}

// Observe records a y observation for sweep value x.
func (b *SeriesBuilder) Observe(x, y float64) {
	acc, ok := b.accs[x]
	if !ok {
		acc = &Accumulator{}
		b.accs[x] = acc
	}
	acc.Add(y)
}

// Merge folds another builder's observations into b.
func (b *SeriesBuilder) Merge(other *SeriesBuilder) {
	for x, acc := range other.accs {
		mine, ok := b.accs[x]
		if !ok {
			cp := *acc
			b.accs[x] = &cp
			continue
		}
		mine.Merge(acc)
	}
}

// Series renders the aggregated points sorted by X.
func (b *SeriesBuilder) Series() Series {
	xs := make([]float64, 0, len(b.accs))
	for x := range b.accs {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	s := Series{Name: b.name, Points: make([]Point, 0, len(xs))}
	for _, x := range xs {
		acc := b.accs[x]
		s.Points = append(s.Points, Point{X: x, Y: acc.Mean(), Err: acc.CI95(), Count: acc.N()})
	}
	return s
}

// FormatFloat renders v compactly for tables: integers without
// decimals, large magnitudes in scientific notation, everything else
// with four significant decimals.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e7:
		return fmt.Sprintf("%.0f", v)
	case av >= 1e7 || (av < 1e-3 && av > 0):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
