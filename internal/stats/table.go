package stats

import (
	"io"
	"strings"
)

// Table is a simple column-aligned text table used to render the
// paper's figures as rows of numbers (one column per series).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row of formatted floats.
func (t *Table) AddFloatRow(vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = FormatFloat(v)
	}
	t.AddRow(cells...)
}

// Render writes the table to w in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (headers first) to w.
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// SeriesTable lays several series with a shared X axis out as a
// table: first column X, one column per series.
func SeriesTable(title, xLabel string, series ...Series) *Table {
	headers := append([]string{xLabel}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	t := NewTable(title, headers...)
	// Collect the union of X values in first-appearance order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	lookup := make([]map[float64]Point, len(series))
	for i, s := range series {
		lookup[i] = make(map[float64]Point, len(s.Points))
		for _, p := range s.Points {
			lookup[i][p.X] = p
		}
	}
	for _, x := range xs {
		cells := make([]string, 0, len(series)+1)
		cells = append(cells, FormatFloat(x))
		for i := range series {
			if p, ok := lookup[i][x]; ok {
				cells = append(cells, FormatFloat(p.Y))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t
}
