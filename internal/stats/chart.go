package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders series as a compact ASCII line chart — cdt-bench uses
// it so the reproduced figures can be eyeballed in a terminal next to
// the paper's plots. Each series gets a glyph; overlapping points
// show the later series' glyph.
type Chart struct {
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
}

var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series onto w. Series share the axes; X is scaled
// per the union of X ranges, Y per the union of finite Y values.
func (c Chart) Render(w io.Writer, title, xLabel string, series ...Series) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if xmin > xmax || ymin > ymax {
		_, err := fmt.Fprintf(w, "%s\n(no finite points)\n", title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(float64(width-1) * (x - xmin) / (xmax - xmin))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(float64(height-1) * (ymax - y) / (ymax - ymin))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		g := chartGlyphs[si%len(chartGlyphs)]
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				continue
			}
			grid[row(p.Y)][col(p.X)] = g
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	yTop := FormatFloat(ymax)
	yBot := FormatFloat(ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", pad))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat(" ", pad+2))
	left := FormatFloat(xmin)
	right := FormatFloat(xmax)
	gap := width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	sb.WriteString(left)
	sb.WriteString(strings.Repeat(" ", gap))
	sb.WriteString(right)
	if xLabel != "" {
		sb.WriteString("  (")
		sb.WriteString(xLabel)
		sb.WriteByte(')')
	}
	sb.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", chartGlyphs[si%len(chartGlyphs)], s.Name)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
