package telemetry

import (
	"math/rand"
	"reflect"
	"testing"
)

func feed(r *Recorder, from, to int) {
	for round := from; round <= to; round++ {
		r.Record(Point{
			Round:   round,
			Regret:  float64(round) * 0.5,
			Revenue: float64(round) * 2,
			Spend:   float64(round),
			NoTrade: round%7 == 0,
			Failed:  round % 3,
		})
	}
}

// TestRecorderGoldenDownsampling pins the exact retained round set
// for a fixed feed: capacity 16, rounds 1..100. The kept set must be
// {rounds ≡ 1 (mod stride)} with the stride the power of two the ring
// settles on — any change to the compaction rule shows up here.
func TestRecorderGoldenDownsampling(t *testing.T) {
	r := NewRecorder(16)
	feed(r, 1, 100)

	if got := r.Stride(); got != 8 {
		t.Fatalf("stride = %d, want 8", got)
	}
	pts, stride := r.Series(0, 0)
	if stride != 8 {
		t.Fatalf("series stride = %d, want 8", stride)
	}
	var rounds []int
	for _, p := range pts {
		rounds = append(rounds, p.Round)
	}
	golden := []int{1, 9, 17, 25, 33, 41, 49, 57, 65, 73, 81, 89, 97, 100}
	if !reflect.DeepEqual(rounds, golden) {
		t.Fatalf("retained rounds = %v\nwant %v", rounds, golden)
	}
	// Values ride along with their rounds.
	for _, p := range pts {
		if p.Regret != float64(p.Round)*0.5 || p.Revenue != float64(p.Round)*2 {
			t.Fatalf("point %d carries wrong values: %+v", p.Round, p)
		}
	}
}

// TestRecorderDeterministic: two identical feeds yield byte-identical
// series regardless of interleaved queries.
func TestRecorderDeterministic(t *testing.T) {
	a, b := NewRecorder(32), NewRecorder(32)
	rng := rand.New(rand.NewSource(42))
	for round := 1; round <= 5000; round++ {
		p := Point{Round: round, Regret: rng.Float64() * float64(round)}
		a.Record(p)
		if round%97 == 0 {
			a.Series(round/2, 7) // queries must not perturb retention
		}
		b.Record(p)
	}
	ap, as := a.Series(0, 0)
	bp, bs := b.Series(0, 0)
	if as != bs || !reflect.DeepEqual(ap, bp) {
		t.Fatalf("identical feeds diverged: stride %d vs %d, %d vs %d points", as, bs, len(ap), len(bp))
	}
	if len(ap) >= 32 {
		t.Fatalf("ring exceeded capacity: %d points", len(ap))
	}
}

func TestRecorderBounded(t *testing.T) {
	r := NewRecorder(64)
	feed(r, 1, 100000)
	pts, _ := r.Series(0, 0)
	if len(pts) > 64 {
		t.Fatalf("10^5 rounds retained %d points, cap 64", len(pts))
	}
	if last := pts[len(pts)-1]; last.Round != 100000 {
		t.Fatalf("newest round missing: tail is %d", last.Round)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Round <= pts[i-1].Round {
			t.Fatalf("rounds not increasing at %d: %d then %d", i, pts[i-1].Round, pts[i].Round)
		}
	}
}

func TestRecorderSinceAndMaxPoints(t *testing.T) {
	r := NewRecorder(256)
	feed(r, 1, 200)

	// since: strictly-greater tail query.
	pts, _ := r.Series(150, 0)
	for _, p := range pts {
		if p.Round <= 150 {
			t.Fatalf("since=150 returned round %d", p.Round)
		}
	}
	if pts[len(pts)-1].Round != 200 {
		t.Fatalf("tail query lost the head: %d", pts[len(pts)-1].Round)
	}

	// max_points thins deterministically and keeps the newest point.
	thin, _ := r.Series(0, 10)
	if len(thin) > 10 {
		t.Fatalf("max_points=10 returned %d points", len(thin))
	}
	if thin[0].Round != 1 || thin[len(thin)-1].Round != 200 {
		t.Fatalf("thinned series endpoints %d..%d, want 1..200", thin[0].Round, thin[len(thin)-1].Round)
	}
	for i := 1; i < len(thin); i++ {
		if thin[i].Round <= thin[i-1].Round {
			t.Fatalf("thinned rounds not increasing: %v", thin)
		}
	}

	// Empty window.
	if pts, _ := r.Series(10000, 5); len(pts) != 0 {
		t.Fatalf("future since returned %d points", len(pts))
	}

	// max_points=1 still answers with the newest point.
	one, _ := r.Series(0, 1)
	if len(one) != 1 || one[0].Round != 200 {
		t.Fatalf("max_points=1 = %+v, want the newest round", one)
	}
}

func TestRecorderOffGridHeadRetained(t *testing.T) {
	r := NewRecorder(16)
	feed(r, 1, 100) // stride is now 8; round 100 is off-grid
	pts, _ := r.Series(0, 0)
	if pts[len(pts)-1].Round != 100 {
		t.Fatalf("off-grid newest round dropped; tail %d", pts[len(pts)-1].Round)
	}
	// The next on-grid round replaces the synthetic head cleanly.
	feed(r, 101, 105) // 105 ≡ 1 mod 8? 104%8 == 0 → on-grid
	pts, _ = r.Series(0, 0)
	if pts[len(pts)-1].Round != 105 {
		t.Fatalf("tail after more rounds = %d, want 105", pts[len(pts)-1].Round)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Round <= pts[i-1].Round {
			t.Fatalf("series not strictly increasing: %v", pts)
		}
	}
}

func TestRecorderCapacityRounding(t *testing.T) {
	if got := NewRecorder(0).cap; got != DefaultCapacity {
		t.Fatalf("default cap = %d", got)
	}
	if got := NewRecorder(100).cap; got != 128 {
		t.Fatalf("cap(100) = %d, want 128", got)
	}
	if got := NewRecorder(3).cap; got != minCapacity {
		t.Fatalf("cap(3) = %d, want %d", got, minCapacity)
	}
}
