// Package telemetry records fixed-memory time series of a trading
// job's per-round learning metrics (regret, cumulative revenue and
// spend, no-trade rounds, failed sellers). A Recorder is fed from the
// strictly passive RoundObserver path and answers range queries for
// the series endpoint without ever touching the session: it copies
// the handful of scalars it needs out of each event and owns all of
// its memory, so attaching one cannot perturb a run.
//
// Memory stays bounded by deterministic power-of-two downsampling:
// the ring keeps only rounds on a stride-spaced grid, and whenever it
// fills, the stride doubles and off-grid points are dropped. The kept
// set is a pure function of the round numbers seen — independent of
// timing, query load, or goroutine scheduling — so two identical runs
// always expose identical series.
package telemetry

import "sync"

// Point is one round's sampled metrics. All monetary fields are
// cumulative, matching the RoundEvent totals they are copied from;
// Regret is the cumulative pseudo-regret of Eq. 19.
type Point struct {
	Round   int     `json:"round"`
	Regret  float64 `json:"regret"`
	Revenue float64 `json:"revenue"`
	Spend   float64 `json:"spend"`
	NoTrade bool    `json:"no_trade,omitempty"`
	Failed  int     `json:"failed,omitempty"`
}

// DefaultCapacity is the per-job point budget when the caller passes
// a non-positive capacity.
const DefaultCapacity = 512

const minCapacity = 8

// Recorder is a fixed-memory round-series ring. Record is called
// from the observer path (one goroutine at a time, under the job's
// advance lock); Series may be called concurrently from any number of
// HTTP readers. The recorder's own mutex is a leaf lock — it is never
// held while calling out — so queries never contend with anything but
// the O(1) per-round append.
type Recorder struct {
	mu     sync.Mutex
	cap    int
	stride int
	pts    []Point
	last   Point
	seen   int
}

// NewRecorder builds a recorder keeping at most capacity points
// (rounded up to a power of two, minimum 8; non-positive means
// DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := minCapacity
	for c < capacity {
		c <<= 1
	}
	return &Recorder{cap: c, stride: 1, pts: make([]Point, 0, c)}
}

// Record offers one round's point. Points must arrive in increasing
// round order (the observer contract already guarantees this); rounds
// off the current stride grid are dropped, except that the newest
// point is always retained so the series head tracks the live run.
func (r *Recorder) Record(p Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	r.last = p
	if (p.Round-1)%r.stride != 0 {
		return
	}
	r.pts = append(r.pts, p)
	for len(r.pts) >= r.cap {
		r.compact()
	}
}

// compact doubles the stride and drops points that fall off the new
// grid. Grid phase is anchored at round 1, so the kept set after any
// number of compactions is exactly {rounds ≡ 1 (mod stride)} — the
// deterministic-downsampling invariant the golden test pins.
func (r *Recorder) compact() {
	r.stride *= 2
	kept := r.pts[:0]
	for _, p := range r.pts {
		if (p.Round-1)%r.stride == 0 {
			kept = append(kept, p)
		}
	}
	r.pts = kept
}

// Stride reports the current downsampling stride in rounds.
func (r *Recorder) Stride() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stride
}

// Rounds reports how many points have been offered to Record.
func (r *Recorder) Rounds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Series returns the retained points with Round > since, thinned
// deterministically to at most maxPoints (non-positive means
// unlimited — still bounded by the ring capacity). The newest
// retained point is always included so a poller following the series
// tail never loses the head of the curve. The second result is the
// ring's current stride.
func (r *Recorder) Series(since, maxPoints int) ([]Point, int) {
	r.mu.Lock()
	sel := make([]Point, 0, len(r.pts)+1)
	for _, p := range r.pts {
		if p.Round > since {
			sel = append(sel, p)
		}
	}
	if r.seen > 0 && r.last.Round > since &&
		(len(sel) == 0 || sel[len(sel)-1].Round != r.last.Round) {
		sel = append(sel, r.last)
	}
	stride := r.stride
	r.mu.Unlock()

	if maxPoints > 0 && len(sel) > maxPoints {
		k := (len(sel) + maxPoints - 1) / maxPoints
		out := sel[:0]
		for i := 0; i < len(sel); i += k {
			out = append(out, sel[i])
		}
		// Swap the newest point in for the last grid pick so the series
		// always ends at the most recent round.
		out[len(out)-1] = sel[len(sel)-1]
		sel = out
	}
	return sel, stride
}
