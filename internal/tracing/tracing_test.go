package tracing

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestIDsNonZeroAndDistinct(t *testing.T) {
	tr := NewSeeded(1, 8)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		tid, sid := tr.NewTraceID(), tr.NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("zero id generated")
		}
		if len(tid.String()) != 32 || len(sid.String()) != 16 {
			t.Fatalf("bad hex lengths %q %q", tid, sid)
		}
		if seen[tid.String()] || seen[sid.String()] {
			t.Fatalf("duplicate id at draw %d", i)
		}
		seen[tid.String()] = true
		seen[sid.String()] = true
	}
	if id := tr.NewRequestID(); len(id) != 16 {
		t.Fatalf("request id %q, want 16 hex chars", id)
	}
}

func TestSpanParentChildLinking(t *testing.T) {
	tr := NewSeeded(2, 8)
	ctx, root := tr.StartSpan(context.Background(), "root")
	ctx2, child := tr.StartSpan(ctx, "child")
	_, grandchild := tr.StartSpan(ctx2, "grandchild")

	if child.TraceID() != root.TraceID() || grandchild.TraceID() != root.TraceID() {
		t.Fatal("children left the trace")
	}
	grandchild.End()
	child.End()
	root.SetAttr("k", "v")
	root.End()

	detail, ok := tr.Store().Trace(root.TraceID().String())
	if !ok {
		t.Fatal("trace not stored")
	}
	if len(detail.Spans) != 3 {
		t.Fatalf("%d spans stored, want 3", len(detail.Spans))
	}
	// Finish order: grandchild, child, root.
	byName := map[string]SpanData{}
	for _, sp := range detail.Spans {
		byName[sp.Name] = sp
	}
	if byName["root"].ParentID != "" {
		t.Fatalf("root has parent %q", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Fatal("child not parented under root")
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Fatal("grandchild not parented under child")
	}
	if byName["root"].Attrs["k"] != "v" {
		t.Fatalf("root attrs %v", byName["root"].Attrs)
	}
}

func TestRemoteParentIngest(t *testing.T) {
	tr := NewSeeded(3, 8)
	remoteTrace, remoteSpan := tr.NewTraceID(), tr.NewSpanID()
	ctx := ContextWithRemote(context.Background(), remoteTrace, remoteSpan)
	_, sp := tr.StartSpan(ctx, "server")
	if sp.TraceID() != remoteTrace {
		t.Fatalf("span opened trace %s, want remote %s", sp.TraceID(), remoteTrace)
	}
	sp.End()
	detail, _ := tr.Store().Trace(remoteTrace.String())
	if len(detail.Spans) != 1 || detail.Spans[0].ParentID != remoteSpan.String() {
		t.Fatalf("remote parent not linked: %+v", detail.Spans)
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every nil-span method must be a safe no-op.
	sp.SetAttr("a", 1)
	sp.AddEvent("e", nil)
	sp.SetError(errors.New("boom"))
	sp.End()
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() {
		t.Fatal("nil span carries ids")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Fatal("nil tracer polluted the context")
	}
}

func TestSpanEndIsIdempotentAndFreezes(t *testing.T) {
	tr := NewSeeded(4, 8)
	_, sp := tr.StartSpan(context.Background(), "once")
	sp.End()
	sp.SetAttr("late", true) // ignored after End
	sp.AddEvent("late", nil)
	sp.End() // second End must not double-record
	detail, _ := tr.Store().Trace(sp.TraceID().String())
	if len(detail.Spans) != 1 {
		t.Fatalf("%d spans recorded for one End'd span", len(detail.Spans))
	}
	if detail.Spans[0].Attrs != nil || detail.Spans[0].Events != nil {
		t.Fatal("mutation after End leaked into the record")
	}
}

func TestStartSpanAtBackdates(t *testing.T) {
	tr := NewSeeded(5, 8)
	start := time.Now().Add(-time.Second)
	_, sp := tr.StartSpanAt(context.Background(), "late", start)
	sp.End()
	detail, _ := tr.Store().Trace(sp.TraceID().String())
	if d := detail.Spans[0].Duration; d < 0.9 {
		t.Fatalf("backdated span duration %gs, want ~1s", d)
	}
}

func TestStoreEvictionOrder(t *testing.T) {
	s := NewStore(3)
	var ids []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("%032d", i)
		ids = append(ids, id)
		s.add(SpanData{TraceID: id, SpanID: "s", Name: "n", Start: time.Now()})
	}
	if s.Len() != 3 {
		t.Fatalf("store holds %d traces, want 3", s.Len())
	}
	if s.Evicted() != 2 {
		t.Fatalf("evicted %d, want 2", s.Evicted())
	}
	// The two oldest are gone, the three newest remain.
	for _, id := range ids[:2] {
		if _, ok := s.Trace(id); ok {
			t.Fatalf("trace %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := s.Trace(id); !ok {
			t.Fatalf("trace %s missing", id)
		}
	}
	// Listing is newest-first.
	list := s.Traces()
	if len(list) != 3 || list[0].TraceID != ids[4] || list[2].TraceID != ids[2] {
		t.Fatalf("listing order wrong: %+v", list)
	}
	// A span for an already-stored trace must not evict anything.
	s.add(SpanData{TraceID: ids[3], SpanID: "s2", Name: "n2", Start: time.Now()})
	if s.Evicted() != 2 || s.Len() != 3 {
		t.Fatal("adding to a live trace evicted something")
	}
}

func TestStoreSpanCapCountsDrops(t *testing.T) {
	s := NewStore(4)
	s.SetMaxSpansPerTrace(3)
	for i := 0; i < 10; i++ {
		s.add(SpanData{TraceID: "t", SpanID: fmt.Sprint(i), Name: "n", Start: time.Now()})
	}
	detail, _ := s.Trace("t")
	if len(detail.Spans) != 3 {
		t.Fatalf("%d spans kept, want 3", len(detail.Spans))
	}
	if detail.Dropped != 7 || s.DroppedSpans() != 7 {
		t.Fatalf("dropped %d/%d, want 7", detail.Dropped, s.DroppedSpans())
	}
}

func TestTraceparentTable(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tests := []struct {
		name, header string
		ok           bool
	}{
		{"valid v00", valid, true},
		{"valid future version", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", true},
		{"empty", "", false},
		{"too short", "00-abc-def-01", false},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"uppercase hex", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", false},
		{"non-hex version", "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false},
		{"zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false},
		{"missing dashes", strings.ReplaceAll(valid, "-", "_"), false},
		{"v00 with trailing junk", valid + "-extra", false},
		{"future version glued junk", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01extra", false},
		{"non-hex trace id", "00-0af7651916cd43dd8448eb211c8031xx-b7ad6b7169203331-01", false},
		{"non-hex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0x", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			trace, span, ok := ParseTraceparent(tc.header)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok=%v, want %v", tc.header, ok, tc.ok)
			}
			if ok && (trace.IsZero() || span.IsZero()) {
				t.Fatal("accepted header produced zero ids")
			}
		})
	}
	// Round trip through the formatter.
	tr := NewSeeded(6, 4)
	tid, sid := tr.NewTraceID(), tr.NewSpanID()
	gotT, gotS, ok := ParseTraceparent(FormatTraceparent(tid, sid))
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("format/parse round trip lost ids: %v %v %v", gotT, gotS, ok)
	}
}

func TestNewLoggerValidation(t *testing.T) {
	var sb strings.Builder
	for _, tc := range []struct{ format, level string }{
		{"text", "info"}, {"json", "debug"}, {"", ""}, {"TEXT", "WARN"},
	} {
		if _, err := NewLogger(&sb, tc.format, tc.level); err != nil {
			t.Fatalf("NewLogger(%q, %q): %v", tc.format, tc.level, err)
		}
	}
	if _, err := NewLogger(&sb, "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&sb, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
	lg, err := NewLogger(&sb, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "trace_id", "abc")
	if !strings.Contains(sb.String(), `"trace_id":"abc"`) {
		t.Fatalf("json log line missing attr: %s", sb.String())
	}
	lg.Debug("hidden")
	if strings.Contains(sb.String(), "hidden") {
		t.Fatal("debug line emitted at info level")
	}
}
