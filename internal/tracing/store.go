package tracing

import (
	"sync"
	"time"
)

// DefaultCapacity is the trace count a Store keeps when the caller
// passes no explicit capacity.
const DefaultCapacity = 256

// DefaultMaxSpansPerTrace bounds the spans kept per trace; past it,
// new spans are counted as dropped instead of stored, so one
// 100k-round advance cannot flood the buffer.
const DefaultMaxSpansPerTrace = 512

// Store is a bounded in-memory buffer of finished spans grouped by
// trace: when a span arrives for an unseen trace and the buffer is at
// capacity, the oldest trace (by first-seen order — a FIFO ring) is
// evicted whole. Safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	capacity int
	maxSpans int
	order    []string // trace ids, oldest first
	traces   map[string]*traceEntry

	evicted      uint64 // traces evicted by the ring
	droppedSpans uint64 // spans dropped by the per-trace cap
}

type traceEntry struct {
	first   time.Time
	spans   []SpanData
	dropped int
}

// NewStore returns a store keeping the last capacity traces
// (capacity <= 0 means DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity: capacity,
		maxSpans: DefaultMaxSpansPerTrace,
		traces:   make(map[string]*traceEntry, capacity),
	}
}

// SetMaxSpansPerTrace overrides the per-trace span cap (n <= 0 resets
// the default). Call before recording; it does not re-trim.
func (s *Store) SetMaxSpansPerTrace(n int) {
	if n <= 0 {
		n = DefaultMaxSpansPerTrace
	}
	s.mu.Lock()
	s.maxSpans = n
	s.mu.Unlock()
}

// add records one finished span, evicting the oldest trace if the
// ring is full.
func (s *Store) add(data SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.traces[data.TraceID]
	if !ok {
		if len(s.order) >= s.capacity {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.traces, oldest)
			s.evicted++
		}
		e = &traceEntry{first: data.Start}
		s.traces[data.TraceID] = e
		s.order = append(s.order, data.TraceID)
	}
	if len(e.spans) >= s.maxSpans {
		e.dropped++
		s.droppedSpans++
		return
	}
	if data.Start.Before(e.first) {
		e.first = data.Start
	}
	e.spans = append(e.spans, data)
}

// Len returns the number of traces currently held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Evicted returns how many traces the ring has evicted so far.
func (s *Store) Evicted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// DroppedSpans returns how many spans the per-trace cap has dropped.
func (s *Store) DroppedSpans() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.droppedSpans
}

// TraceSummary is one row of the trace listing.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	// Name is the root span's name (the span without a parent; the
	// first recorded span when the root was evicted or still open).
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration_s"`
	Spans    int       `json:"spans"`
	Dropped  int       `json:"dropped_spans,omitempty"`
}

// Traces lists the stored traces, newest first.
func (s *Store) Traces() []TraceSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		e := s.traces[id]
		sum := TraceSummary{
			TraceID: id,
			Start:   e.first,
			Spans:   len(e.spans),
			Dropped: e.dropped,
		}
		if len(e.spans) > 0 {
			root := e.spans[0]
			for _, sp := range e.spans {
				if sp.ParentID == "" {
					root = sp
					break
				}
			}
			sum.Name = root.Name
			sum.Duration = root.Duration
		}
		out = append(out, sum)
	}
	return out
}

// TraceDetail is the full span list of one trace, in recorded
// (finish) order — children end before their parent, so the root is
// typically last.
type TraceDetail struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
	Dropped int        `json:"dropped_spans,omitempty"`
}

// Trace returns the spans of one trace by hex id.
func (s *Store) Trace(id string) (TraceDetail, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.traces[id]
	if !ok {
		return TraceDetail{}, false
	}
	return TraceDetail{
		TraceID: id,
		Spans:   append([]SpanData(nil), e.spans...),
		Dropped: e.dropped,
	}, true
}
