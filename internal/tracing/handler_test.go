package tracing

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandlerListAndDetail(t *testing.T) {
	tr := NewSeeded(7, 8)
	ctx, root := tr.StartSpan(context.Background(), "http POST /v1/jobs/{id}/advance")
	_, child := tr.StartSpan(ctx, "round")
	child.SetAttr("round", 1)
	child.End()
	root.End()
	_, lone := tr.StartSpan(context.Background(), "http GET /v1/healthz")
	lone.End()

	h := Handler(tr.Store())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var list TraceListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("%d traces listed, want 2", len(list.Traces))
	}
	// Newest first: the healthz trace finished last.
	if list.Traces[0].Name != "http GET /v1/healthz" {
		t.Fatalf("newest-first order broken: %+v", list.Traces)
	}
	if list.Traces[1].Spans != 2 {
		t.Fatalf("advance trace lists %d spans, want 2", list.Traces[1].Spans)
	}

	// ?limit trims the listing.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?limit=1", nil))
	list = TraceListResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(list.Traces))
	}

	// Detail carries the span tree.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+root.TraceID().String(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("detail status %d", rec.Code)
	}
	var detail TraceDetail
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if len(detail.Spans) != 2 || detail.Spans[0].Name != "round" {
		t.Fatalf("detail spans %+v", detail.Spans)
	}
	if detail.Spans[0].ParentID != root.SpanID().String() {
		t.Fatal("child span lost its parent through the wire")
	}

	// Unknown trace and wrong method.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/ffffffffffffffffffffffffffffffff", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", rec.Code)
	}
}
