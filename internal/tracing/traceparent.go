package tracing

import "encoding/hex"

// W3C trace-context `traceparent` support (https://www.w3.org/TR/trace-context/):
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   00   -  32 hex    -   16 hex    -   2 hex
//
// ParseTraceparent is forgiving in exactly the ways the spec demands
// and no others: future versions (anything but "ff") are accepted as
// long as the four core fields parse and, for versions past 00, any
// extra content is separated by a dash; lowercase hex is required;
// all-zero ids are invalid.

// ParseTraceparent parses a traceparent header into the remote trace
// and parent-span ids. ok is false for anything malformed — callers
// then start a fresh trace instead of trusting the header.
func ParseTraceparent(h string) (trace TraceID, span SpanID, ok bool) {
	// version(2) - trace(32) - parent(16) - flags(2) = 55 bytes minimum.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return trace, span, false
	}
	version := h[:2]
	if !isLowerHex(version) || version == "ff" {
		return trace, span, false
	}
	// Version 00 is exactly 55 bytes; future versions may append
	// "-extra" but never glue content straight onto the flags.
	if len(h) > 55 && (version == "00" || h[55] != '-') {
		return trace, span, false
	}
	traceHex, spanHex, flagsHex := h[3:35], h[36:52], h[53:55]
	if !isLowerHex(traceHex) || !isLowerHex(spanHex) || !isLowerHex(flagsHex) {
		return trace, span, false
	}
	if _, err := hex.Decode(trace[:], []byte(traceHex)); err != nil {
		return trace, span, false
	}
	if _, err := hex.Decode(span[:], []byte(spanHex)); err != nil {
		return TraceID{}, span, false
	}
	if trace.IsZero() || span.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return trace, span, true
}

// FormatTraceparent renders a version-00 traceparent header for the
// given ids with the sampled flag set.
func FormatTraceparent(trace TraceID, span SpanID) string {
	return "00-" + trace.String() + "-" + span.String() + "-01"
}

// isLowerHex reports whether s is entirely lowercase hex digits — the
// spec forbids uppercase in traceparent.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return len(s) > 0
}
