package tracing

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured-logging half of the layer: one place the CLIs build
// their slog handler from -log-format/-log-level flags, so every
// binary emits the same schema (text for humans, JSON for shippers)
// and the same level vocabulary.

// NewLogger builds a slog.Logger writing to w. format is "text" or
// "json"; level is "debug", "info", "warn", or "error". Unknown
// values return an error so a typo in a flag fails loudly at startup
// instead of silently logging at the wrong level.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("tracing: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("tracing: unknown log format %q (text|json)", format)
	}
}
