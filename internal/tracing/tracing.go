// Package tracing is the dependency-free distributed-tracing core of
// the CDT stack: spans carrying W3C trace-context compatible ids,
// context propagation (including ingest of a remote `traceparent`
// parent), and a bounded in-memory ring-buffer store served over HTTP
// by Handler — enough to answer "what happened to THIS request / THIS
// round?" without pulling an OpenTelemetry dependency tree into a
// reproduction repository.
//
// The design mirrors internal/metrics: recording never blocks request
// handling beyond a short mutex, everything is bounded (the store
// evicts whole traces FIFO and caps spans per trace), and ids come
// from the same splitmix64 generator quality as internal/rng — but
// from a dedicated operational stream, deliberately separate from the
// simulation's seeded streams so tracing can never perturb a run.
//
// Spans are strictly passive observers: a Span records names, times,
// attributes, and events, and nothing in this package feeds back into
// the caller. Attaching tracing to a mechanism run is bit-identical
// to not attaching it (asserted by the chaos harness).
package tracing

import (
	"context"
	"encoding/hex"
	"sync"
	"time"

	"cmabhs/internal/rng"
)

// TraceID is a 16-byte W3C trace-context trace id.
type TraceID [16]byte

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is an 8-byte W3C trace-context span id.
type SpanID [8]byte

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Tracer creates spans and records the finished ones into its Store.
// A nil *Tracer is valid and inert: StartSpan returns a nil span whose
// methods all no-op, so call sites never branch on "tracing enabled".
type Tracer struct {
	store *Store

	mu  sync.Mutex
	src *rng.Source
}

// New returns a Tracer whose store keeps the last capacity traces
// (capacity <= 0 means DefaultCapacity). Ids are seeded from the wall
// clock — operational randomness, never the simulation streams.
func New(capacity int) *Tracer {
	return NewSeeded(time.Now().UnixNano(), capacity)
}

// NewSeeded is New with a fixed id seed, for deterministic tests.
func NewSeeded(seed int64, capacity int) *Tracer {
	return &Tracer{store: NewStore(capacity), src: rng.New(seed)}
}

// Store returns the tracer's trace store (never nil on a non-nil
// tracer).
func (t *Tracer) Store() *Store { return t.store }

func (t *Tracer) rand64() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.src.Uint64()
}

// NewTraceID draws a fresh non-zero trace id.
func (t *Tracer) NewTraceID() TraceID {
	for {
		var id TraceID
		putUint64(id[:8], t.rand64())
		putUint64(id[8:], t.rand64())
		if !id.IsZero() {
			return id
		}
	}
}

// NewSpanID draws a fresh non-zero span id.
func (t *Tracer) NewSpanID() SpanID {
	for {
		var id SpanID
		putUint64(id[:], t.rand64())
		if !id.IsZero() {
			return id
		}
	}
}

// NewRequestID draws a 16-hex-character id suitable for X-Request-ID
// generation — same generator quality as span ids, shorter on the
// wire.
func (t *Tracer) NewRequestID() string {
	var b [8]byte
	putUint64(b[:], t.rand64())
	return hex.EncodeToString(b[:])
}

func putUint64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// ctxKey keys the tracing values stored in a context.
type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

// remoteParent is an ingested traceparent: the trace to join and the
// remote span to parent under.
type remoteParent struct {
	trace TraceID
	span  SpanID
}

// ContextWithRemote records a remote parent (an ingested traceparent
// header) in ctx: the next StartSpan joins that trace as a child of
// the remote span instead of opening a fresh trace.
func ContextWithRemote(ctx context.Context, trace TraceID, span SpanID) context.Context {
	return context.WithValue(ctx, remoteKey, remoteParent{trace: trace, span: span})
}

// SpanFromContext returns the span recorded in ctx, or nil. A nil
// span is safe to use — every method no-ops — so callers chain
// without checking.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan opens a span named name as a child of the span in ctx (or
// of an ingested remote parent, or as a new trace root) and returns a
// context carrying it. End the span to record it into the store.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartSpanAt(ctx, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for callers
// that observe already-completed work — a round observer firing at
// the round boundary backdates the span to the previous boundary.
func (t *Tracer) StartSpanAt(ctx context.Context, name string, start time.Time) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{
		tracer: t,
		name:   name,
		start:  start,
	}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.trace = parent.trace
		sp.parent = parent.id
	} else if rp, ok := ctx.Value(remoteKey).(remoteParent); ok {
		sp.trace = rp.trace
		sp.parent = rp.span
	} else {
		sp.trace = t.NewTraceID()
	}
	sp.id = t.NewSpanID()
	return context.WithValue(ctx, spanKey, sp), sp
}

// Span is one unit of traced work. All methods are safe on a nil
// receiver (no-ops) and safe for concurrent use; after End the span
// is frozen and later mutations are ignored.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID

	mu     sync.Mutex
	name   string
	start  time.Time
	attrs  map[string]any
	events []SpanEvent
	errMsg string
	ended  bool
}

// TraceID returns the span's trace id (zero on a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's own id (zero on a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr records one key=value attribute, overwriting a previous
// value for the same key. Returns the span for chaining.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	return s
}

// AddEvent appends a timestamped point-in-time event (a store-write
// retry attempt, a cap notice) to the span.
func (s *Span) AddEvent(name string, attrs map[string]any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.events = append(s.events, SpanEvent{Time: time.Now(), Name: name, Attrs: attrs})
}

// SetError marks the span failed with err's message (nil clears it).
func (s *Span) SetError(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if err == nil {
		s.errMsg = ""
	} else {
		s.errMsg = err.Error()
	}
}

// End freezes the span and records it into the tracer's store. Only
// the first End records; later calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		TraceID:  s.trace.String(),
		SpanID:   s.id.String(),
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start).Seconds(),
		Error:    s.errMsg,
	}
	if !s.parent.IsZero() {
		data.ParentID = s.parent.String()
	}
	if len(s.attrs) > 0 {
		attrs := make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
		data.Attrs = attrs
	}
	if len(s.events) > 0 {
		data.Events = append([]SpanEvent(nil), s.events...)
	}
	s.mu.Unlock()
	s.tracer.store.add(data)
}

// SpanData is the immutable record of a finished span — what the
// store keeps and /debug/traces serves.
type SpanData struct {
	TraceID  string         `json:"trace_id"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration float64        `json:"duration_s"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []SpanEvent    `json:"events,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// SpanEvent is one timestamped point event inside a span.
type SpanEvent struct {
	Time  time.Time      `json:"time"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}
