package tracing

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// TraceListResponse is the wire form of GET /debug/traces.
type TraceListResponse struct {
	Traces       []TraceSummary `json:"traces"`
	Evicted      uint64         `json:"evicted"`
	DroppedSpans uint64         `json:"dropped_spans"`
}

// Handler serves the trace store for debugging:
//
//	GET /debug/traces          list stored traces, newest first (?limit=n)
//	GET /debug/traces/{id}     one trace's full span list
//
// Mount it on the debug listener next to pprof — trace attributes can
// carry request ids and job ids, so keep it off the public port.
func Handler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			debugJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET"})
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/debug/traces")
		rest = strings.Trim(rest, "/")
		if rest == "" {
			out := TraceListResponse{
				Traces:       s.Traces(),
				Evicted:      s.Evicted(),
				DroppedSpans: s.DroppedSpans(),
			}
			if n, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && n >= 0 && n < len(out.Traces) {
				out.Traces = out.Traces[:n]
			}
			debugJSON(w, http.StatusOK, out)
			return
		}
		detail, ok := s.Trace(rest)
		if !ok {
			debugJSON(w, http.StatusNotFound, map[string]string{"error": "no trace " + rest})
			return
		}
		debugJSON(w, http.StatusOK, detail)
	})
}

func debugJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
