package metrics

import (
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "jobs created")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration: the same instrument comes back.
	if r.Counter("jobs_total", "jobs created") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("inflight", "in-flight requests")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := New()
	a := r.Counter("http_requests_total", "requests", L("route", "/v1/jobs"))
	b := r.Counter("http_requests_total", "requests", L("route", "/v1/stats"))
	if a == b {
		t.Fatal("distinct label sets shared a counter")
	}
	a.Add(2)
	b.Inc()
	snap := r.Snapshot()
	if snap[`http_requests_total{route="/v1/jobs"}`] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	if snap[`http_requests_total{route="/v1/stats"}`] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "")
}

func TestHistogramBucketsCumulativeAndMonotone(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 2, 0.0001} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []uint64{2, 4, 5, 6} // ≤0.01, ≤0.1, ≤1, +Inf
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative buckets not monotone: %v", cum)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-2.5451) > 1e-12 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" means v <= 1
	if cum := h.Cumulative(); cum[0] != 1 {
		t.Fatalf("observation at the bound landed in bucket %v", cum)
	}
}

func TestGaugeFuncReadsAtScrape(t *testing.T) {
	r := New()
	depth := 0
	r.GaugeFunc("queue_depth", "queued work", func() float64 { return float64(depth) })
	depth = 7
	if got := r.Snapshot()["queue_depth"]; got != 7 {
		t.Fatalf("gauge func = %v, want 7", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v", g.Value())
	}
	if h.Count() != 8000 || h.Cumulative()[0] != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
}

// TestScrapeRacesSeriesResolution reproduces the broker's hot path:
// requests resolve first-seen label combinations (and re-register
// GaugeFuncs) while a scraper iterates the registry. Under -race this
// pins that scrapes snapshot series under the lock instead of
// iterating live maps, and that GaugeFunc replacement is safe against
// a concurrent read.
func TestScrapeRacesSeriesResolution(t *testing.T) {
	// Force real goroutine interleaving even on a single-core runner —
	// with GOMAXPROCS=1 the scrape loop can run to completion between
	// scheduler preemptions and the race window rarely opens.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	r := New()
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			_ = r.Snapshot()
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				id := strconv.Itoa(w*1000 + i)
				r.Counter("requests_total", "", L("code", id)).Inc()
				r.Histogram("latency_seconds", "", nil, L("route", id)).Observe(0.01)
				depth := float64(i)
				r.GaugeFunc("depth", "", func() float64 { return depth })
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()
	if got := len(r.sortedFamilies()); got != 3 {
		t.Fatalf("families = %d, want 3", got)
	}
}

// TestEmptyBucketsNormalizeToDefault pins the empty-slice edge:
// []float64{} means "defaults" exactly like nil, both on first
// registration and on re-registration of an existing family — no raw
// index panic out of equalBuckets.
func TestEmptyBucketsNormalizeToDefault(t *testing.T) {
	r := New()
	a := r.Histogram("h_seconds", "", nil)
	b := r.Histogram("h_seconds", "", []float64{})
	if a != b {
		t.Fatal("empty buckets resolved a different series than nil")
	}
	a.Observe(0.003)
	if cum := a.Cumulative(); len(cum) != len(DefLatencyBuckets)+1 {
		t.Fatalf("bucket count %d, want %d", len(cum), len(DefLatencyBuckets)+1)
	}
	// A custom family re-registered with empty buckets is a layout
	// mismatch — it must fail with the descriptive panic.
	r.Histogram("custom_seconds", "", []float64{1, 2})
	defer func() {
		msg, ok := recover().(string)
		if !ok || !strings.Contains(msg, "different buckets") {
			t.Fatalf("panic = %v, want descriptive bucket mismatch", msg)
		}
	}()
	r.Histogram("custom_seconds", "", []float64{})
}

func TestLabelValueEscaping(t *testing.T) {
	r := New()
	r.Counter("c_total", "", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

// TestWritePrometheusGolden pins the full exposition byte-for-byte:
// deterministic family and series order, HELP/TYPE headers, histogram
// expansion with cumulative le buckets, _sum, and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("cdt_http_requests_total", "HTTP requests served.",
		L("route", "/v1/jobs"), L("method", "POST"), L("code", "201")).Add(3)
	r.Counter("cdt_http_requests_total", "HTTP requests served.",
		L("route", "/v1/healthz"), L("method", "GET"), L("code", "200")).Inc()
	r.Gauge("cdt_jobs_live", "Live trading jobs.").Set(2)
	h := r.Histogram("cdt_http_request_seconds", "Request latency.", []float64{0.01, 0.1}, L("route", "/v1/jobs"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	const want = `# HELP cdt_http_request_seconds Request latency.
# TYPE cdt_http_request_seconds histogram
cdt_http_request_seconds_bucket{le="0.01",route="/v1/jobs"} 1
cdt_http_request_seconds_bucket{le="0.1",route="/v1/jobs"} 2
cdt_http_request_seconds_bucket{le="+Inf",route="/v1/jobs"} 3
cdt_http_request_seconds_sum{route="/v1/jobs"} 0.555
cdt_http_request_seconds_count{route="/v1/jobs"} 3
# HELP cdt_http_requests_total HTTP requests served.
# TYPE cdt_http_requests_total counter
cdt_http_requests_total{code="200",method="GET",route="/v1/healthz"} 1
cdt_http_requests_total{code="201",method="POST",route="/v1/jobs"} 3
# HELP cdt_jobs_live Live trading jobs.
# TYPE cdt_jobs_live gauge
cdt_jobs_live 2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestSnapshotMatchesExposition(t *testing.T) {
	r := New()
	r.Counter("a_total", "").Add(2)
	h := r.Histogram("lat", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	snap := r.Snapshot()
	for k, want := range map[string]float64{
		"a_total":               2,
		`lat_bucket{le="1"}`:    1,
		`lat_bucket{le="+Inf"}`: 2,
		"lat_sum":               3.5,
		"lat_count":             2,
	} {
		if snap[k] != want {
			t.Errorf("snapshot[%q] = %v, want %v (all: %v)", k, snap[k], want, snap)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_seconds", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}
