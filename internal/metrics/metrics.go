// Package metrics is the dependency-free observability core of the
// CDT stack: named counters, gauges, and fixed-bucket histograms with
// lock-free hot paths, collected in a Registry that exposes them in
// Prometheus text format (WritePrometheus) and as a flat snapshot for
// tests (Snapshot).
//
// Design rules:
//
//   - Recording is wait-free: Counter.Add, Gauge.Set, and
//     Histogram.Observe touch only atomics, never the registry lock.
//     The registry lock is taken only when a series is first resolved
//     (Counter/Gauge/Histogram lookups) and at scrape time.
//   - Registration is idempotent: asking for the same name + label set
//     returns the same instrument, so call sites never coordinate.
//     Re-registering a name with a different kind or bucket layout
//     panics — that is a programming error, not a runtime condition.
//   - The exposition is deterministic: families are sorted by name and
//     series by label signature, so scrapes (and golden tests) are
//     stable.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing count.
type Counter struct {
	n atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are upper
// bucket edges (le semantics); an implicit +Inf bucket catches the
// rest. Observations also accumulate into a sum, so rate(sum)/rate
// (count) yields a mean.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    Gauge           // CAS-added float sum
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Cumulative returns the cumulative bucket counts in bound order with
// the +Inf bucket last — exactly the le series of the exposition, so
// tests can assert monotonicity directly.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// DefLatencyBuckets is the default latency histogram layout, in
// seconds: half a millisecond through 10 s, roughly logarithmic.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instrument inside a family. Every field
// except fn is set before the series is published into its family's
// map (under the registry lock) and never mutated again; fn is an
// atomic pointer because GaugeFunc re-registration replaces it while
// scrapes read it without the lock.
type series struct {
	labels []Label
	sig    string // rendered {a="b",...} signature, "" when unlabeled

	c  *Counter
	g  *Gauge
	fn atomic.Pointer[func() float64]
	h  *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name, help string
	kind       kind
	buckets    []float64 // histograms only
	series     map[string]*series
}

// Registry collects instruments. The zero value is not usable; create
// with New. A Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use. help is recorded on first
// registration of the family.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.resolve(name, help, kindCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge registered under name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.resolve(name, help, kindGauge, nil, labels)
	return s.g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — for values another component already tracks (pool occupancy,
// live-job counts) that would otherwise need shadow accounting.
// Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.resolve(name, help, kindGaugeFunc, nil, labels)
	s.fn.Store(&fn)
}

// Histogram returns the histogram registered under name with the given
// labels. buckets are ascending upper bounds; nil or empty means
// DefLatencyBuckets. Every series of one family shares the first
// registration's bucket layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	s := r.resolve(name, help, kindHistogram, buckets, labels)
	return s.h
}

// resolve finds or creates the (family, series) pair.
func (r *Registry) resolve(name, help string, k kind, buckets []float64, labels []Label) *series {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabel(l.Name)
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		if k == kindHistogram {
			f.buckets = validBuckets(name, buckets)
		}
		r.families[name] = f
	}
	// GaugeFunc and Gauge share an exposition type; everything else
	// must re-register as what it was.
	sameKind := f.kind == k ||
		(f.kind == kindGauge && k == kindGaugeFunc) || (f.kind == kindGaugeFunc && k == kindGauge)
	if !sameKind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, k, f.kind))
	}
	if k == kindHistogram && !equalBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("metrics: %s re-registered with different buckets", name))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...), sig: sig}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge, kindGaugeFunc:
			s.g = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: f.buckets}
			h.counts = make([]atomic.Uint64, len(f.buckets)+1)
			s.h = h
		}
		f.series[sig] = s
	}
	return s
}

// value returns the series' instantaneous scalar (counters and
// gauges; histograms are expanded by the caller).
func (s *series) value() float64 {
	if s.c != nil {
		return float64(s.c.Value())
	}
	if fn := s.fn.Load(); fn != nil {
		return (*fn)()
	}
	return s.g.Value()
}

// Snapshot flattens every series into name{labels} → value, with
// histograms expanded exactly like the exposition: name_bucket{le=...}
// cumulative counts, name_sum, and name_count. It is the test-facing
// read API.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			if f.kind != kindHistogram {
				out[f.name+s.sig] = s.value()
				continue
			}
			cum := s.h.Cumulative()
			for i, b := range f.buckets {
				out[f.name+"_bucket"+withLabel(s.labels, "le", formatFloat(b))] = float64(cum[i])
			}
			out[f.name+"_bucket"+withLabel(s.labels, "le", "+Inf")] = float64(cum[len(cum)-1])
			out[f.name+"_sum"+s.sig] = s.h.Sum()
			out[f.name+"_count"+s.sig] = float64(s.h.Count())
		}
	}
	return out
}

// familyView is a scrape-time copy of one family: the immutable
// family metadata plus its series snapshotted (and sorted) while the
// registry lock was held. Scrapes iterate these slices after the lock
// is released, so a concurrent resolve() inserting a first-seen label
// combination never races a map iteration.
type familyView struct {
	*family
	series []*series
}

func (r *Registry) sortedFamilies() []familyView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })
		out = append(out, familyView{family: f, series: ss})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// labelSignature renders the {a="b",c="d"} suffix, labels sorted by
// name, values escaped. Empty for no labels.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel renders the signature of labels plus one extra pair (the
// histogram le label).
func withLabel(labels []Label, name, value string) string {
	extra := append(append([]Label(nil), labels...), Label{Name: name, Value: value})
	return labelSignature(extra)
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// mustValidName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func mustValidName(name string) {
	if !validName(name, true) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
}

// mustValidLabel enforces the label-name charset [a-zA-Z_][a-zA-Z0-9_]*.
func mustValidLabel(name string) {
	if !validName(name, false) {
		panic(fmt.Sprintf("metrics: invalid label name %q", name))
	}
}

func validName(name string, allowColon bool) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func validBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s with no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %s buckets not strictly ascending", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], 1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	return append([]float64(nil), buckets...)
}

func equalBuckets(a, b []float64) bool {
	if n := len(b); n > 0 && math.IsInf(b[n-1], 1) {
		b = b[:n-1]
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
