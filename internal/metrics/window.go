package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Window is a rolling-window histogram/counter: a ring of fixed
// sub-interval slots, each an epoch-tagged bucketed histogram. The
// observe path is wait-free and mirrors the package's atomics
// discipline — one epoch load (plus a CAS when the slot rolls over to
// a new sub-interval) and a handful of atomic adds; no locks, no
// background goroutine. Readers aggregate the slots whose epoch still
// falls inside the window, so expiry is lazy and the read side never
// mutates shared state.
//
// Two races are accepted and benign, both confined to a slot
// boundary: an observation racing the CAS that recycles its slot may
// be dropped, and an observation landing just after its sub-interval
// ended may be counted in the slot that replaced it. Both move a
// single sample by at most one sub-interval of a window that is
// itself an approximation.
type Window struct {
	slotDur int64 // nanoseconds per sub-interval slot
	bounds  []float64
	slots   []windowSlot
	now     func() time.Time
}

type windowSlot struct {
	epoch   atomic.Int64
	count   atomic.Uint64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
	buckets []atomic.Uint64 // per-bound counts; len(bounds)+1 with +Inf last
}

// NewWindow builds a rolling window covering span, split into slots
// sub-intervals. buckets are histogram upper bounds (nil for a
// count-only window, e.g. shed totals); they follow the same
// validation rules as Registry.Histogram. Panics on a non-positive
// span or slot count.
func NewWindow(span time.Duration, slots int, buckets []float64) *Window {
	if span <= 0 || slots <= 0 {
		panic("metrics: NewWindow requires a positive span and slot count")
	}
	if len(buckets) > 0 {
		buckets = validBuckets("window", buckets)
	}
	w := &Window{
		slotDur: int64(span) / int64(slots),
		bounds:  buckets,
		slots:   make([]windowSlot, slots),
		now:     time.Now,
	}
	if w.slotDur <= 0 {
		panic("metrics: NewWindow span shorter than its slot count")
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
		if len(buckets) > 0 {
			w.slots[i].buckets = make([]atomic.Uint64, len(buckets)+1)
		}
	}
	return w
}

// SetNow injects the clock, for deterministic tests. Call before any
// Observe or Snapshot; the function must be safe for concurrent use.
func (w *Window) SetNow(now func() time.Time) { w.now = now }

// Observe records v into the current sub-interval slot. Wait-free.
func (w *Window) Observe(v float64) {
	e := w.now().UnixNano() / w.slotDur
	s := &w.slots[int(e%int64(len(w.slots)))]
	for {
		old := s.epoch.Load()
		if old >= e {
			break // current (or a racing clock ran ahead); record here
		}
		if s.epoch.CompareAndSwap(old, e) {
			// This observer claimed the rollover and recycles the slot.
			// A concurrent Observe between the CAS and these stores can
			// lose its sample to the reset — the benign boundary race
			// documented on Window.
			s.count.Store(0)
			s.sumBits.Store(0)
			s.maxBits.Store(0)
			for i := range s.buckets {
				s.buckets[i].Store(0)
			}
			break
		}
	}
	s.count.Add(1)
	addFloatBits(&s.sumBits, v)
	maxFloatBits(&s.maxBits, v)
	if len(s.buckets) > 0 {
		i := 0
		for i < len(w.bounds) && v > w.bounds[i] {
			i++
		}
		s.buckets[i].Add(1)
	}
}

func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

func maxFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v || bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// WindowSnapshot is a point-in-time aggregate of the live slots.
type WindowSnapshot struct {
	Count   uint64
	Sum     float64
	Max     float64
	Buckets []uint64 // per-bound counts aligned with Bounds; nil for count-only windows
	Bounds  []float64
}

// Snapshot aggregates every slot whose epoch is still inside the
// window. The newest slot is usually partial, so the effective span
// ranges between span−slot and span.
func (w *Window) Snapshot() WindowSnapshot {
	cur := w.now().UnixNano() / w.slotDur
	min := cur - int64(len(w.slots)) + 1
	snap := WindowSnapshot{Bounds: w.bounds}
	if len(w.bounds) > 0 {
		snap.Buckets = make([]uint64, len(w.bounds)+1)
	}
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < min || e > cur {
			continue
		}
		snap.Count += s.count.Load()
		snap.Sum += math.Float64frombits(s.sumBits.Load())
		if m := math.Float64frombits(s.maxBits.Load()); m > snap.Max {
			snap.Max = m
		}
		for b := range s.buckets {
			snap.Buckets[b] += s.buckets[b].Load()
		}
	}
	return snap
}

// Count returns the number of observations currently in the window.
func (w *Window) Count() uint64 { return w.Snapshot().Count }

// Quantile returns the value at quantile q in [0,1], zero when the
// snapshot is empty. Like the exposition histograms it reports the
// bucket's upper bound, so the answer is conservative (never
// under-reported); the +Inf bucket falls back to the exact observed
// maximum.
func (s WindowSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum < target {
			continue
		}
		if i < len(s.Bounds) && s.Bounds[i] < s.Max {
			return s.Bounds[i]
		}
		return s.Max
	}
	return s.Max
}
