package metrics

import (
	"bufio"
	"io"
	"strconv"
)

// ContentType is the Content-Type an HTTP handler should set when
// serving WritePrometheus output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): `# HELP` and `# TYPE`
// headers per family, one line per series, histograms expanded into
// cumulative le buckets plus _sum and _count. Output order is
// deterministic — families sorted by name, series by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			if f.kind != kindHistogram {
				writeSample(bw, f.name, s.sig, s.value())
				continue
			}
			cum := s.h.Cumulative()
			for i, b := range f.buckets {
				writeSample(bw, f.name+"_bucket", withLabel(s.labels, "le", formatFloat(b)), float64(cum[i]))
			}
			writeSample(bw, f.name+"_bucket", withLabel(s.labels, "le", "+Inf"), float64(cum[len(cum)-1]))
			writeSample(bw, f.name+"_sum", s.sig, s.h.Sum())
			writeSample(bw, f.name+"_count", s.sig, float64(s.h.Count()))
		}
	}
	return bw.Flush()
}

func writeSample(bw *bufio.Writer, name, sig string, v float64) {
	bw.WriteString(name)
	bw.WriteString(sig)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value (or an le bound) the way
// Prometheus clients do: shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes newlines and backslashes in help text, per the
// exposition format.
func escapeHelp(h string) string {
	out := make([]byte, 0, len(h))
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, h[i])
		}
	}
	return string(out)
}
