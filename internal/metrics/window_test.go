package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a goroutine-safe monotone clock for Window tests.
type fakeClock struct {
	ns atomic.Int64
}

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func newTestWindow(t *testing.T, span time.Duration, slots int, buckets []float64) (*Window, *fakeClock) {
	t.Helper()
	w := NewWindow(span, slots, buckets)
	clk := &fakeClock{}
	clk.ns.Store(int64(24 * time.Hour)) // away from epoch 0 so slot -1 sentinels never match
	w.SetNow(clk.now)
	return w, clk
}

func TestWindowExpiry(t *testing.T) {
	w, clk := newTestWindow(t, time.Minute, 6, []float64{0.01, 0.1, 1})

	w.Observe(0.05)
	w.Observe(0.5)
	if got := w.Count(); got != 2 {
		t.Fatalf("fresh count = %d, want 2", got)
	}
	snap := w.Snapshot()
	if snap.Sum != 0.55 || snap.Max != 0.5 {
		t.Fatalf("snapshot sum=%v max=%v", snap.Sum, snap.Max)
	}

	// Half a window later both points are still visible.
	clk.advance(30 * time.Second)
	w.Observe(0.005)
	if got := w.Count(); got != 3 {
		t.Fatalf("mid-window count = %d, want 3", got)
	}

	// A full span after the first observations only the newer one remains.
	clk.advance(31 * time.Second)
	if got := w.Count(); got != 1 {
		t.Fatalf("post-expiry count = %d, want 1", got)
	}

	// And far in the future the window drains to empty without any writer.
	clk.advance(time.Hour)
	if got := w.Count(); got != 0 {
		t.Fatalf("drained count = %d, want 0", got)
	}
}

func TestWindowSlotRecycling(t *testing.T) {
	w, clk := newTestWindow(t, time.Minute, 6, []float64{0.01, 0.1, 1})

	// Fill a slot, come back exactly one ring revolution later: the
	// same slot index must be recycled, not accumulated into.
	w.Observe(0.5)
	clk.advance(time.Minute)
	w.Observe(0.02)
	snap := w.Snapshot()
	if snap.Count != 1 || snap.Sum != 0.02 {
		t.Fatalf("recycled slot snapshot count=%d sum=%v, want 1/0.02", snap.Count, snap.Sum)
	}
}

func TestWindowQuantileConservative(t *testing.T) {
	w, _ := newTestWindow(t, time.Minute, 6, []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		w.Observe(0.002) // first bucket
	}
	for i := 0; i < 10; i++ {
		w.Observe(0.7) // third bucket
	}
	snap := w.Snapshot()
	if got := snap.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %v, want bucket bound 0.01", got)
	}
	// p99 lands in the 0.1–1 bucket; the exact max (0.7) is tighter
	// than the 1.0 bound and must win.
	if got := snap.Quantile(0.99); got != 0.7 {
		t.Fatalf("p99 = %v, want exact max 0.7", got)
	}
	if got := (WindowSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestWindowCountOnly(t *testing.T) {
	w, clk := newTestWindow(t, time.Minute, 6, nil)
	for i := 0; i < 5; i++ {
		w.Observe(1)
	}
	if got := w.Count(); got != 5 {
		t.Fatalf("count-only window count = %d, want 5", got)
	}
	if snap := w.Snapshot(); snap.Buckets != nil {
		t.Fatalf("count-only window grew buckets: %v", snap.Buckets)
	}
	clk.advance(2 * time.Minute)
	if got := w.Count(); got != 0 {
		t.Fatalf("count-only window did not expire: %d", got)
	}
}

// TestWindowConcurrentRotation hammers Observe from many goroutines
// while another advances the clock across slot boundaries and readers
// snapshot continuously. Run under -race this is the proof that the
// observe path and the CAS-recycle rollover are data-race-free; the
// invariant checked is only sanity (counts bounded by what was
// written) because boundary races may legitimately drop a sample.
func TestWindowConcurrentRotation(t *testing.T) {
	w, clk := newTestWindow(t, 100*time.Millisecond, 4, []float64{0.01, 0.1, 1})

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Clock driver: rotate through many slot boundaries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			clk.advance(5 * time.Millisecond)
			time.Sleep(50 * time.Microsecond)
		}
		close(stop)
	}()

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				w.Observe(float64(g%3) * 0.05)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}

	// Concurrent readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				snap := w.Snapshot()
				if snap.Count > writers*perWriter {
					t.Errorf("snapshot count %d exceeds writes", snap.Count)
					return
				}
				snap.Quantile(0.99)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()

	if got := w.Snapshot().Count; got > writers*perWriter {
		t.Fatalf("final count %d exceeds total writes", got)
	}
}

func TestWindowPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero span":  func() { NewWindow(0, 4, nil) },
		"zero slots": func() { NewWindow(time.Minute, 0, nil) },
		"tiny span":  func() { NewWindow(10, 100, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
