package economics

import (
	"math"
)

// CostFunc abstracts a seller cost model so the numeric game solver
// and ablation benches can swap the quadratic family for the
// piecewise-linear one used by several related works ([16], [19]–[21]
// in the paper).
type CostFunc interface {
	// Cost returns the data-collection cost for sensing time tau at
	// estimated quality qbar.
	Cost(tau, qbar float64) float64
	// MarginalCost returns ∂Cost/∂τ (a subgradient at kink points).
	MarginalCost(tau, qbar float64) float64
}

// ValuationFunc abstracts the consumer valuation so alternatives such
// as Cobb–Douglas ([15] in the paper) can be benchmarked against the
// log form.
type ValuationFunc interface {
	// Value returns the valuation of total sensing time S at mean
	// quality qbar.
	Value(totalTau, qbar float64) float64
	// MarginalValue returns ∂Value/∂S.
	MarginalValue(totalTau, qbar float64) float64
}

// The paper's concrete families satisfy the interfaces.
var (
	_ CostFunc      = SellerCost{}
	_ ValuationFunc = Valuation{}
)

// PiecewiseLinearCost is the alternative seller cost family from the
// related work: cost grows linearly with slope Rate up to Knee, then
// with slope Rate·Steepen beyond it, all scaled by quality.
type PiecewiseLinearCost struct {
	Rate    float64 // base marginal cost, > 0
	Knee    float64 // sensing time at which the slope increases, >= 0
	Steepen float64 // slope multiplier after the knee, >= 1
}

// Cost returns the piecewise-linear cost at tau.
func (c PiecewiseLinearCost) Cost(tau, qbar float64) float64 {
	if tau <= c.Knee {
		return c.Rate * tau * qbar
	}
	return (c.Rate*c.Knee + c.Rate*c.Steepen*(tau-c.Knee)) * qbar
}

// MarginalCost returns the slope at tau (the steeper slope at the
// knee itself).
func (c PiecewiseLinearCost) MarginalCost(tau, qbar float64) float64 {
	if tau < c.Knee {
		return c.Rate * qbar
	}
	return c.Rate * c.Steepen * qbar
}

// CobbDouglasValuation is the alternative consumer valuation family
// from the related work ([15]): φ = Scale·S^ElasTau·q̄^ElasQ with
// elasticities in (0, 1) for diminishing marginal returns.
type CobbDouglasValuation struct {
	Scale   float64 // multiplicative scale, > 0
	ElasTau float64 // sensing-time elasticity in (0,1)
	ElasQ   float64 // quality elasticity in (0,1)
}

// Value returns the Cobb–Douglas valuation.
func (v CobbDouglasValuation) Value(totalTau, qbar float64) float64 {
	if totalTau <= 0 || qbar <= 0 {
		return 0
	}
	return v.Scale * math.Pow(totalTau, v.ElasTau) * math.Pow(qbar, v.ElasQ)
}

// MarginalValue returns ∂Value/∂S.
func (v CobbDouglasValuation) MarginalValue(totalTau, qbar float64) float64 {
	if totalTau <= 0 || qbar <= 0 {
		return math.Inf(1)
	}
	return v.Value(totalTau, qbar) * v.ElasTau / totalTau
}

var (
	_ CostFunc      = PiecewiseLinearCost{}
	_ ValuationFunc = CobbDouglasValuation{}
)
