// Package economics implements the cost, valuation, and profit
// functions of the CDT model (Definitions 4 and 9–11 of the paper).
//
// The paper's concrete families are the quadratic seller cost
// C_i(τ, q̄) = (a·τ² + b·τ)·q̄ (Eq. 6), the quadratic platform
// aggregation cost C^J(τ) = θ·(Στ)² + λ·Στ (Eq. 8), and the
// logarithmic consumer valuation φ = ω·ln(1 + q̄·Στ) (Eq. 10). The
// package exposes them both as concrete parameter structs (what the
// closed-form game solver consumes) and behind small interfaces so
// the related-work alternatives (piecewise-linear cost, Cobb–Douglas
// valuation) can be plugged into the numeric solver and ablations.
package economics

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by parameter validation.
var (
	ErrBadSellerCost   = errors.New("economics: seller cost requires a > 0 and b >= 0")
	ErrBadPlatformCost = errors.New("economics: platform cost requires theta > 0 and lambda >= 0")
	ErrBadValuation    = errors.New("economics: valuation requires omega > 1")
)

// SellerCost holds the quadratic cost parameters (a_i, b_i) of one
// seller: C(τ, q̄) = (a·τ² + b·τ)·q̄, with a > 0 and b ≥ 0 so that the
// cost is strictly convex and increasing in τ (Def. 9).
type SellerCost struct {
	A float64 // quadratic coefficient a_i > 0
	B float64 // linear coefficient b_i >= 0
}

// Validate reports whether the parameters satisfy the model's
// convexity constraints.
func (c SellerCost) Validate() error {
	if !(c.A > 0) || c.B < 0 || math.IsNaN(c.A) || math.IsNaN(c.B) {
		return fmt.Errorf("%w (a=%v, b=%v)", ErrBadSellerCost, c.A, c.B)
	}
	return nil
}

// Cost returns C(τ, q̄) = (a·τ² + b·τ)·q̄ (Eq. 6).
func (c SellerCost) Cost(tau, qbar float64) float64 {
	return (c.A*tau*tau + c.B*tau) * qbar
}

// MarginalCost returns ∂C/∂τ = (2aτ + b)·q̄.
func (c SellerCost) MarginalCost(tau, qbar float64) float64 {
	return (2*c.A*tau + c.B) * qbar
}

// PlatformCost holds the quadratic aggregation-cost parameters
// (θ, λ): C^J(τ) = θ·S² + λ·S with S = Στ_i (Eq. 8), θ > 0, λ ≥ 0.
type PlatformCost struct {
	Theta  float64 // quadratic coefficient θ > 0
	Lambda float64 // linear coefficient λ >= 0
}

// Validate reports whether the parameters satisfy the model.
func (c PlatformCost) Validate() error {
	if !(c.Theta > 0) || c.Lambda < 0 || math.IsNaN(c.Theta) || math.IsNaN(c.Lambda) {
		return fmt.Errorf("%w (theta=%v, lambda=%v)", ErrBadPlatformCost, c.Theta, c.Lambda)
	}
	return nil
}

// Cost returns C^J(S) = θ·S² + λ·S for total sensing time S.
func (c PlatformCost) Cost(totalTau float64) float64 {
	return c.Theta*totalTau*totalTau + c.Lambda*totalTau
}

// Valuation holds the consumer's log-valuation parameter ω:
// φ(S, q̄) = ω·ln(1 + q̄·S) (Eq. 10), ω > 1.
type Valuation struct {
	Omega float64 // system parameter ω > 1
}

// Validate reports whether the parameter satisfies the model.
func (v Valuation) Validate() error {
	if !(v.Omega > 1) || math.IsNaN(v.Omega) {
		return fmt.Errorf("%w (omega=%v)", ErrBadValuation, v.Omega)
	}
	return nil
}

// Value returns φ(S, q̄) = ω·ln(1 + q̄·S) for total sensing time S and
// mean selected quality q̄.
func (v Valuation) Value(totalTau, qbar float64) float64 {
	return v.Omega * math.Log(1+qbar*totalTau)
}

// MarginalValue returns ∂φ/∂S = ω·q̄ / (1 + q̄·S).
func (v Valuation) MarginalValue(totalTau, qbar float64) float64 {
	return v.Omega * qbar / (1 + qbar*totalTau)
}

// SellerProfit returns Ψ_i = p·τ − C_i(τ, q̄_i) (Eq. 5) for a selected
// seller. Unselected sellers have zero profit by Eq. 5 (χ_i = 0).
func SellerProfit(p, tau, qbar float64, c SellerCost) float64 {
	return p*tau - c.Cost(tau, qbar)
}

// PlatformProfit returns Ω = p^J·S − p·S − C^J(S) (Eq. 7) where S is
// the total sensing time of the selected sellers.
func PlatformProfit(pJ, p, totalTau float64, c PlatformCost) float64 {
	return (pJ-p)*totalTau - c.Cost(totalTau)
}

// ConsumerProfit returns Φ = φ(S, q̄) − p^J·S (Eq. 9).
func ConsumerProfit(pJ, totalTau, qbar float64, v Valuation) float64 {
	return v.Value(totalTau, qbar) - pJ*totalTau
}
