package economics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSellerCostValidate(t *testing.T) {
	valid := []SellerCost{{A: 0.1, B: 0}, {A: 1, B: 2}}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v should be valid: %v", c, err)
		}
	}
	invalid := []SellerCost{{A: 0, B: 1}, {A: -1, B: 1}, {A: 1, B: -0.1}, {A: math.NaN(), B: 0}}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should be invalid", c)
		}
	}
}

func TestSellerCostValues(t *testing.T) {
	c := SellerCost{A: 0.3, B: 0.5}
	// (0.3·4 + 0.5·2)·0.8 = (1.2+1.0)·0.8 = 1.76
	if got := c.Cost(2, 0.8); math.Abs(got-1.76) > 1e-12 {
		t.Errorf("Cost = %v", got)
	}
	// (2·0.3·2 + 0.5)·0.8 = 1.7·0.8 = 1.36
	if got := c.MarginalCost(2, 0.8); math.Abs(got-1.36) > 1e-12 {
		t.Errorf("MarginalCost = %v", got)
	}
	if c.Cost(0, 0.8) != 0 {
		t.Error("zero time should cost zero")
	}
}

// TestSellerCostConvexity checks strict convexity and monotonicity in
// τ for random parameters — the assumptions Theorem 14 relies on.
func TestSellerCostConvexity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		c := SellerCost{A: 0.05 + rng.Float64(), B: rng.Float64()}
		q := 0.05 + 0.95*rng.Float64()
		t1 := rng.Float64() * 10
		t2 := t1 + 0.1 + rng.Float64()*10
		mid := (t1 + t2) / 2
		// Midpoint strictly below the chord: strict convexity.
		chord := (c.Cost(t1, q) + c.Cost(t2, q)) / 2
		if !(c.Cost(mid, q) < chord) {
			t.Fatalf("not strictly convex: %+v q=%v t1=%v t2=%v", c, q, t1, t2)
		}
		// Monotone increasing.
		if !(c.Cost(t2, q) > c.Cost(t1, q)) {
			t.Fatalf("not increasing: %+v", c)
		}
		// Marginal cost is the derivative: finite-difference check.
		h := 1e-6
		fd := (c.Cost(mid+h, q) - c.Cost(mid-h, q)) / (2 * h)
		if math.Abs(fd-c.MarginalCost(mid, q)) > 1e-4 {
			t.Fatalf("marginal cost mismatch: fd=%v analytic=%v", fd, c.MarginalCost(mid, q))
		}
	}
}

func TestPlatformCostValidateAndValues(t *testing.T) {
	if err := (PlatformCost{Theta: 0.1, Lambda: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, c := range []PlatformCost{{Theta: 0, Lambda: 1}, {Theta: -1, Lambda: 0}, {Theta: 1, Lambda: -1}} {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should be invalid", c)
		}
	}
	c := PlatformCost{Theta: 0.1, Lambda: 1}
	// 0.1·25 + 1·5 = 7.5
	if got := c.Cost(5); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("Cost = %v", got)
	}
}

func TestValuationValidateAndValues(t *testing.T) {
	if err := (Valuation{Omega: 1000}).Validate(); err != nil {
		t.Errorf("valid omega rejected: %v", err)
	}
	for _, v := range []Valuation{{Omega: 1}, {Omega: 0}, {Omega: -5}, {Omega: math.NaN()}} {
		if err := v.Validate(); err == nil {
			t.Errorf("%+v should be invalid", v)
		}
	}
	v := Valuation{Omega: 100}
	if got := v.Value(0, 0.5); got != 0 {
		t.Errorf("zero time should have zero value, got %v", got)
	}
	want := 100 * math.Log(1+0.5*4)
	if got := v.Value(4, 0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value = %v, want %v", got, want)
	}
}

// TestValuationConcavity checks strict concavity and diminishing
// marginal returns — the assumptions Theorem 16 relies on.
func TestValuationConcavity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		v := Valuation{Omega: 1.5 + rng.Float64()*2000}
		q := 0.05 + 0.95*rng.Float64()
		t1 := rng.Float64() * 50
		t2 := t1 + 0.1 + rng.Float64()*50
		mid := (t1 + t2) / 2
		chord := (v.Value(t1, q) + v.Value(t2, q)) / 2
		if !(v.Value(mid, q) > chord) {
			t.Fatalf("not strictly concave: ω=%v q=%v", v.Omega, q)
		}
		if !(v.MarginalValue(t2, q) < v.MarginalValue(t1, q)) {
			t.Fatal("marginal value should diminish")
		}
		h := 1e-6
		fd := (v.Value(mid+h, q) - v.Value(mid-h, q)) / (2 * h)
		if math.Abs(fd-v.MarginalValue(mid, q)) > 1e-5 {
			t.Fatalf("marginal value mismatch: fd=%v analytic=%v", fd, v.MarginalValue(mid, q))
		}
	}
}

func TestProfitFunctions(t *testing.T) {
	sc := SellerCost{A: 0.2, B: 0.3}
	// Ψ = p·τ − (aτ²+bτ)q̄ = 2·3 − (0.2·9+0.3·3)·0.5 = 6 − 1.35 = 4.65
	if got := SellerProfit(2, 3, 0.5, sc); math.Abs(got-4.65) > 1e-12 {
		t.Errorf("SellerProfit = %v", got)
	}
	pc := PlatformCost{Theta: 0.1, Lambda: 1}
	// Ω = (5−2)·4 − (0.1·16 + 4) = 12 − 5.6 = 6.4
	if got := PlatformProfit(5, 2, 4, pc); math.Abs(got-6.4) > 1e-12 {
		t.Errorf("PlatformProfit = %v", got)
	}
	v := Valuation{Omega: 100}
	want := 100*math.Log(1+0.5*4) - 5*4
	if got := ConsumerProfit(5, 4, 0.5, v); math.Abs(got-want) > 1e-12 {
		t.Errorf("ConsumerProfit = %v, want %v", got, want)
	}
}

// TestProfitZeroTime: with zero sensing time every party's profit is
// zero — the no-trade baseline all participation constraints compare
// against.
func TestProfitZeroTime(t *testing.T) {
	f := func(p, pJ, q float64) bool {
		p = math.Abs(p)
		pJ = math.Abs(pJ)
		q = math.Mod(math.Abs(q), 1)
		sc := SellerCost{A: 0.3, B: 0.2}
		pc := PlatformCost{Theta: 0.1, Lambda: 1}
		v := Valuation{Omega: 1000}
		return SellerProfit(p, 0, q, sc) == 0 &&
			PlatformProfit(pJ, p, 0, pc) == 0 &&
			ConsumerProfit(pJ, 0, q, v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPiecewiseLinearCost(t *testing.T) {
	c := PiecewiseLinearCost{Rate: 2, Knee: 3, Steepen: 4}
	if got := c.Cost(2, 1); got != 4 {
		t.Errorf("pre-knee cost = %v", got)
	}
	// 2·3 + 2·4·(5−3) = 6 + 16 = 22
	if got := c.Cost(5, 1); got != 22 {
		t.Errorf("post-knee cost = %v", got)
	}
	// Continuity at the knee.
	if math.Abs(c.Cost(3-1e-9, 1)-c.Cost(3+1e-9, 1)) > 1e-6 {
		t.Error("cost discontinuous at knee")
	}
	if c.MarginalCost(2, 1) != 2 || c.MarginalCost(4, 1) != 8 {
		t.Error("marginal slopes wrong")
	}
	// Quality scales the whole thing.
	if c.Cost(5, 0.5) != 11 {
		t.Errorf("quality scaling wrong: %v", c.Cost(5, 0.5))
	}
}

func TestCobbDouglasValuation(t *testing.T) {
	v := CobbDouglasValuation{Scale: 10, ElasTau: 0.5, ElasQ: 0.5}
	if v.Value(0, 0.5) != 0 || v.Value(4, 0) != 0 {
		t.Error("degenerate inputs should value 0")
	}
	want := 10 * math.Sqrt(4) * math.Sqrt(0.25)
	if got := v.Value(4, 0.25); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value = %v, want %v", got, want)
	}
	// Diminishing marginal value.
	if !(v.MarginalValue(8, 0.25) < v.MarginalValue(4, 0.25)) {
		t.Error("marginal value should diminish")
	}
	// Finite-difference agreement.
	h := 1e-6
	fd := (v.Value(4+h, 0.25) - v.Value(4-h, 0.25)) / (2 * h)
	if math.Abs(fd-v.MarginalValue(4, 0.25)) > 1e-5 {
		t.Errorf("marginal mismatch: fd=%v analytic=%v", fd, v.MarginalValue(4, 0.25))
	}
}

func BenchmarkSellerProfit(b *testing.B) {
	c := SellerCost{A: 0.3, B: 0.5}
	for i := 0; i < b.N; i++ {
		SellerProfit(2.5, 1.4, 0.7, c)
	}
}
