// Package rng provides the deterministic random sources the simulator
// is built on: truncated Gaussian observations (the paper's quality
// noise model), Beta and Bernoulli variates, bounded uniforms, and
// splittable seeding so parallel parameter sweeps stay reproducible.
//
// Every Source owns a splitmix64 generator whose complete state is two
// words (the creation seed and the current state word), so a live
// stream can be exported with State and resumed bit-for-bit with
// FromState — the foundation of the repository's durable snapshots.
// Nothing in the repository draws from the global generator.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic pseudo-random stream backed by a
// splitmix64 generator. It is not safe for concurrent use; derive
// independent streams with Split instead of sharing one across
// goroutines.
type Source struct {
	state uint64
	seed  int64
}

// State is the complete serializable state of a Source: restoring it
// resumes the stream at exactly the next draw. Both fields round-trip
// exactly through encoding/json.
type State struct {
	Seed  int64  `json:"seed"`
	State uint64 `json:"state"`
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{state: uint64(seed), seed: seed}
}

// FromState reconstructs a Source mid-stream from an exported State.
func FromState(st State) *Source {
	return &Source{state: st.State, seed: st.Seed}
}

// State exports the full generator state.
func (s *Source) State() State { return State{Seed: s.seed, State: s.state} }

// SetState rewinds or fast-forwards the stream to an exported State.
func (s *Source) SetState(st State) { s.state, s.seed = st.State, st.Seed }

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent deterministic sub-stream identified by
// key. Two Sources with the same (seed, key) produce identical
// streams; distinct keys produce decorrelated streams. Split depends
// only on the creation seed, never on the stream position, so it is
// stable across a snapshot/restore cycle.
func (s *Source) Split(key int64) *Source {
	return New(mix(s.seed, key))
}

// mix combines a seed and a key with a splitmix64-style finalizer.
func mix(seed, key int64) int64 {
	z := uint64(seed) ^ (uint64(key) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// next advances the splitmix64 state and returns the next 64 output
// bits (Steele, Lea & Flood's finalizer over a Weyl sequence).
func (s *Source) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next raw 64-bit output word.
func (s *Source) Uint64() uint64 { return s.next() }

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + s.Float64()*(hi-lo)
}

// uint64n returns an unbiased uniform integer in [0, n) by rejection.
func (s *Source) uint64n(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two
		return s.next() & (n - 1)
	}
	// Reject the 2^64 mod n smallest raw values so every residue is
	// equally likely.
	threshold := -n % n
	for {
		v := s.next()
		if v >= threshold {
			return v % n
		}
	}
}

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.uint64n(uint64(n)))
}

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return int64(s.next() >> 1) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// normFloat64 returns a standard Gaussian variate via the Box–Muller
// transform. The spare variate is deliberately discarded: caching it
// would add hidden state beyond the two exported words.
func (s *Source) normFloat64() float64 {
	u := 1 - s.Float64() // (0, 1]: keeps the log finite
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, sd float64) float64 {
	return mean + sd*s.normFloat64()
}

// TruncNormal returns a Gaussian(mean, sd) variate truncated to
// [lo, hi] by rejection sampling, falling back to clipping if the
// acceptance region is so improbable that rejection stalls. This is
// the observation model the paper uses for sensing qualities
// ("truncated Gaussian distribution" on [0, 1]).
func (s *Source) TruncNormal(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		panic("rng: TruncNormal with lo > hi")
	}
	if sd <= 0 {
		return clamp(mean, lo, hi)
	}
	for i := 0; i < 64; i++ {
		x := s.Normal(mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
	return clamp(s.Normal(mean, sd), lo, hi)
}

// Bernoulli returns 1 with probability p, else 0. p is clamped to
// [0, 1].
func (s *Source) Bernoulli(p float64) float64 {
	if s.Float64() < clamp(p, 0, 1) {
		return 1
	}
	return 0
}

// Exponential returns an exponential variate with the given rate.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(1-s.Float64()) / rate
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang
// method (with Ahrens–Dieter boosting for shape < 1).
func (s *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: X ~ Gamma(a+1), U^(1/a) scaling.
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.normFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(alpha, beta) variate. Used by the
// Thompson-sampling bandit extension.
func (s *Source) Beta(alpha, beta float64) float64 {
	x := s.Gamma(alpha)
	y := s.Gamma(beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Poisson returns a Poisson variate with the given mean (Knuth's
// algorithm for small means, normal approximation above 500).
func (s *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean > 500 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// GoString lets %#v show the live stream position in test failures.
func (s *Source) GoString() string {
	return fmt.Sprintf("rng.Source{seed: %d, state: %#x}", s.seed, s.state)
}
