// Package rng provides the deterministic random sources the simulator
// is built on: truncated Gaussian observations (the paper's quality
// noise model), Beta and Bernoulli variates, bounded uniforms, and
// splittable seeding so parallel parameter sweeps stay reproducible.
//
// Every source wraps math/rand with an explicit seed; nothing in the
// repository draws from the global generator.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic pseudo-random stream. It is not safe for
// concurrent use; derive independent streams with Split instead of
// sharing one across goroutines.
type Source struct {
	r    *rand.Rand
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent deterministic sub-stream identified by
// key. Two Sources with the same (seed, key) produce identical
// streams; distinct keys produce decorrelated streams. This is what
// lets a parameter sweep run its replications on separate goroutines
// without losing reproducibility.
func (s *Source) Split(key int64) *Source {
	return New(mix(s.seed, key))
}

// mix combines a seed and a key with a splitmix64-style finalizer.
func mix(seed, key int64) int64 {
	z := uint64(seed) ^ (uint64(key) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + s.r.Float64()*(hi-lo)
}

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, sd float64) float64 {
	return mean + sd*s.r.NormFloat64()
}

// TruncNormal returns a Gaussian(mean, sd) variate truncated to
// [lo, hi] by rejection sampling, falling back to clipping if the
// acceptance region is so improbable that rejection stalls. This is
// the observation model the paper uses for sensing qualities
// ("truncated Gaussian distribution" on [0, 1]).
func (s *Source) TruncNormal(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		panic("rng: TruncNormal with lo > hi")
	}
	if sd <= 0 {
		return clamp(mean, lo, hi)
	}
	for i := 0; i < 64; i++ {
		x := s.Normal(mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
	return clamp(s.Normal(mean, sd), lo, hi)
}

// Bernoulli returns 1 with probability p, else 0. p is clamped to
// [0, 1].
func (s *Source) Bernoulli(p float64) float64 {
	if s.r.Float64() < clamp(p, 0, 1) {
		return 1
	}
	return 0
}

// Exponential returns an exponential variate with the given rate.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return s.r.ExpFloat64() / rate
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang
// method (with Ahrens–Dieter boosting for shape < 1).
func (s *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: X ~ Gamma(a+1), U^(1/a) scaling.
		u := s.r.Float64()
		for u == 0 {
			u = s.r.Float64()
		}
		return s.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(alpha, beta) variate. Used by the
// Thompson-sampling bandit extension.
func (s *Source) Beta(alpha, beta float64) float64 {
	x := s.Gamma(alpha)
	y := s.Gamma(beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Poisson returns a Poisson variate with the given mean (Knuth's
// algorithm for small means, normal approximation above 500).
func (s *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean > 500 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
