package rng

import (
	"math"
	"testing"
)

// TestGoldenValues pins the generator to the reference splitmix64
// output sequence (Steele, Lea & Flood; seed-0 vectors are the widely
// published test vectors). Any change to the core algorithm breaks
// every persisted snapshot, so these values must never drift.
func TestGoldenValues(t *testing.T) {
	wantSeed0 := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	s := New(0)
	for i, want := range wantSeed0 {
		if got := s.Uint64(); got != want {
			t.Errorf("seed 0 draw %d = %#016x, want %#016x", i, got, want)
		}
	}
	wantSeed42 := []uint64{0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52}
	s = New(42)
	for i, want := range wantSeed42 {
		if got := s.Uint64(); got != want {
			t.Errorf("seed 42 draw %d = %#016x, want %#016x", i, got, want)
		}
	}
	f := New(42)
	wantF := []float64{0.74156487877182331, 0.1599103928769201, 0.27860113025513866}
	for i, want := range wantF {
		if got := f.Float64(); got != want {
			t.Errorf("seed 42 Float64 %d = %.17g, want %.17g", i, got, want)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(99)
	// Burn through a mix of draw types to move the state word.
	for i := 0; i < 57; i++ {
		s.TruncNormal(0.5, 0.2, 0, 1)
		s.Intn(17)
		s.Beta(2, 5)
	}
	st := s.State()
	r := FromState(st)
	for i := 0; i < 1000; i++ {
		if a, b := s.Float64(), r.Float64(); a != b {
			t.Fatalf("draw %d diverged after restore: %v vs %v", i, a, b)
		}
	}
	if r.Seed() != 99 {
		t.Errorf("restored Seed() = %d, want 99", r.Seed())
	}

	// SetState rewinds an existing stream.
	var z Source
	z.SetState(st)
	s2 := FromState(st)
	for i := 0; i < 100; i++ {
		if a, b := z.Float64(), s2.Float64(); a != b {
			t.Fatalf("SetState stream diverged at draw %d", i)
		}
	}
}

func TestSplitStableAcrossRestore(t *testing.T) {
	s := New(7)
	for i := 0; i < 10; i++ {
		s.Float64() // stream position must not affect Split
	}
	a := s.Split(3)
	b := FromState(s.State()).Split(3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split must depend only on the creation seed")
		}
	}
}

func TestIntnUnbiasedSmall(t *testing.T) {
	s := New(14)
	const n, draws = 7, 140000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.03 {
			t.Errorf("Intn(%d): value %d drawn %d times, want ≈%.0f", n, v, c, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	s.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(15)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-3) > 0.02 {
		t.Errorf("Normal mean %v, want ≈3", mean)
	}
	if math.Abs(sd-2) > 0.02 {
		t.Errorf("Normal sd %v, want ≈2", sd)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	if a.Seed() != 42 {
		t.Errorf("Seed() = %d", a.Seed())
	}
}

func TestSplitDeterminismAndIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	s1b := New(7).Split(1)
	same, diff := 0, 0
	for i := 0; i < 1000; i++ {
		v1, v2, v1b := s1.Float64(), s2.Float64(), s1b.Float64()
		if v1 == v1b {
			same++
		}
		if v1 != v2 {
			diff++
		}
	}
	if same != 1000 {
		t.Errorf("Split not deterministic: %d/1000 matched", same)
	}
	if diff < 990 {
		t.Errorf("Split streams look correlated: only %d/1000 differ", diff)
	}
}

func TestUniformBounds(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) produced %v", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 50000; i++ {
		v := s.TruncNormal(0.5, 0.2, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNormal escaped [0,1]: %v", v)
		}
	}
}

func TestTruncNormalMean(t *testing.T) {
	s := New(4)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.TruncNormal(0.5, 0.1, 0, 1)
	}
	mean := sum / float64(n)
	// Symmetric truncation around an interior mean keeps the mean.
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("truncated mean %v, want ≈0.5", mean)
	}
}

func TestTruncNormalExtremeMeanStillBounded(t *testing.T) {
	s := New(5)
	// Mean far outside the interval: rejection will stall, the
	// clipping fallback must still respect bounds.
	for i := 0; i < 1000; i++ {
		v := s.TruncNormal(50, 0.01, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("fallback escaped bounds: %v", v)
		}
	}
}

func TestTruncNormalZeroSD(t *testing.T) {
	s := New(6)
	if v := s.TruncNormal(0.7, 0, 0, 1); v != 0.7 {
		t.Errorf("sd=0 should return the mean, got %v", v)
	}
	if v := s.TruncNormal(7, 0, 0, 1); v != 1 {
		t.Errorf("sd=0 out-of-range mean should clamp, got %v", v)
	}
}

func TestTruncNormalPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).TruncNormal(0, 1, 1, 0)
}

func TestBernoulli(t *testing.T) {
	s := New(8)
	n := 100000
	var ones float64
	for i := 0; i < n; i++ {
		v := s.Bernoulli(0.3)
		if v != 0 && v != 1 {
			t.Fatalf("Bernoulli produced %v", v)
		}
		ones += v
	}
	p := ones / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("empirical p = %v, want ≈0.3", p)
	}
	if s.Bernoulli(-1) != 0 {
		t.Error("p<0 must always give 0")
	}
	if s.Bernoulli(2) != 1 {
		t.Error("p>1 must always give 1")
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(9)
	for _, shape := range []float64{0.5, 1, 2.5, 10} {
		n := 100000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := s.Gamma(shape)
			if v < 0 {
				t.Fatalf("Gamma(%v) produced negative %v", shape, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Errorf("Gamma(%v) mean %v, want ≈%v", shape, mean, shape)
		}
		if math.Abs(variance-shape)/shape > 0.1 {
			t.Errorf("Gamma(%v) variance %v, want ≈%v", shape, variance, shape)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	s := New(10)
	alpha, beta := 2.0, 5.0
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Beta(alpha, beta)
		if v < 0 || v > 1 {
			t.Fatalf("Beta produced %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	want := alpha / (alpha + beta)
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("Beta mean %v, want ≈%v", mean, want)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(11)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(2)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(2) mean %v, want ≈0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	s.Exponential(0)
}

func TestPoisson(t *testing.T) {
	s := New(12)
	for _, mean := range []float64{0, 0.5, 4, 600} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			k := s.Poisson(mean)
			if k < 0 {
				t.Fatalf("Poisson(%v) produced %d", mean, k)
			}
			sum += float64(k)
		}
		got := sum / float64(n)
		tol := 0.05*mean + 0.05
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%v) empirical mean %v", mean, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative mean")
		}
	}()
	s.Poisson(-1)
}

func TestPermAndShuffle(t *testing.T) {
	s := New(13)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func BenchmarkTruncNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.TruncNormal(0.5, 0.1, 0, 1)
	}
}

func BenchmarkBeta(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Beta(2, 5)
	}
}
