package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	if a.Seed() != 42 {
		t.Errorf("Seed() = %d", a.Seed())
	}
}

func TestSplitDeterminismAndIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	s1b := New(7).Split(1)
	same, diff := 0, 0
	for i := 0; i < 1000; i++ {
		v1, v2, v1b := s1.Float64(), s2.Float64(), s1b.Float64()
		if v1 == v1b {
			same++
		}
		if v1 != v2 {
			diff++
		}
	}
	if same != 1000 {
		t.Errorf("Split not deterministic: %d/1000 matched", same)
	}
	if diff < 990 {
		t.Errorf("Split streams look correlated: only %d/1000 differ", diff)
	}
}

func TestUniformBounds(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) produced %v", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 50000; i++ {
		v := s.TruncNormal(0.5, 0.2, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNormal escaped [0,1]: %v", v)
		}
	}
}

func TestTruncNormalMean(t *testing.T) {
	s := New(4)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.TruncNormal(0.5, 0.1, 0, 1)
	}
	mean := sum / float64(n)
	// Symmetric truncation around an interior mean keeps the mean.
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("truncated mean %v, want ≈0.5", mean)
	}
}

func TestTruncNormalExtremeMeanStillBounded(t *testing.T) {
	s := New(5)
	// Mean far outside the interval: rejection will stall, the
	// clipping fallback must still respect bounds.
	for i := 0; i < 1000; i++ {
		v := s.TruncNormal(50, 0.01, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("fallback escaped bounds: %v", v)
		}
	}
}

func TestTruncNormalZeroSD(t *testing.T) {
	s := New(6)
	if v := s.TruncNormal(0.7, 0, 0, 1); v != 0.7 {
		t.Errorf("sd=0 should return the mean, got %v", v)
	}
	if v := s.TruncNormal(7, 0, 0, 1); v != 1 {
		t.Errorf("sd=0 out-of-range mean should clamp, got %v", v)
	}
}

func TestTruncNormalPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).TruncNormal(0, 1, 1, 0)
}

func TestBernoulli(t *testing.T) {
	s := New(8)
	n := 100000
	var ones float64
	for i := 0; i < n; i++ {
		v := s.Bernoulli(0.3)
		if v != 0 && v != 1 {
			t.Fatalf("Bernoulli produced %v", v)
		}
		ones += v
	}
	p := ones / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("empirical p = %v, want ≈0.3", p)
	}
	if s.Bernoulli(-1) != 0 {
		t.Error("p<0 must always give 0")
	}
	if s.Bernoulli(2) != 1 {
		t.Error("p>1 must always give 1")
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(9)
	for _, shape := range []float64{0.5, 1, 2.5, 10} {
		n := 100000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := s.Gamma(shape)
			if v < 0 {
				t.Fatalf("Gamma(%v) produced negative %v", shape, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Errorf("Gamma(%v) mean %v, want ≈%v", shape, mean, shape)
		}
		if math.Abs(variance-shape)/shape > 0.1 {
			t.Errorf("Gamma(%v) variance %v, want ≈%v", shape, variance, shape)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	s := New(10)
	alpha, beta := 2.0, 5.0
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Beta(alpha, beta)
		if v < 0 || v > 1 {
			t.Fatalf("Beta produced %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	want := alpha / (alpha + beta)
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("Beta mean %v, want ≈%v", mean, want)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(11)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(2)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(2) mean %v, want ≈0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	s.Exponential(0)
}

func TestPoisson(t *testing.T) {
	s := New(12)
	for _, mean := range []float64{0, 0.5, 4, 600} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			k := s.Poisson(mean)
			if k < 0 {
				t.Fatalf("Poisson(%v) produced %d", mean, k)
			}
			sum += float64(k)
		}
		got := sum / float64(n)
		tol := 0.05*mean + 0.05
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%v) empirical mean %v", mean, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative mean")
		}
	}()
	s.Poisson(-1)
}

func TestPermAndShuffle(t *testing.T) {
	s := New(13)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func BenchmarkTruncNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.TruncNormal(0.5, 0.1, 0, 1)
	}
}

func BenchmarkBeta(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Beta(2, 5)
	}
}
