package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"cmabhs/internal/stats"
)

func mkFigure(id string, names []string, ys [][]float64) Figure {
	f := Figure{ID: id, Title: id, XLabel: "x"}
	for si, name := range names {
		s := stats.Series{Name: name}
		for i, y := range ys[si] {
			s.Points = append(s.Points, stats.Point{X: float64(i), Y: y})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

func TestSaveLoadRoundTrip(t *testing.T) {
	figs := []Figure{mkFigure("f1", []string{"a", "b"}, [][]float64{{1, 2, 3}, {3, 2, 1}})}
	var buf bytes.Buffer
	if err := SaveFigures(&buf, figs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFigures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID != "f1" || len(back[0].Series) != 2 {
		t.Fatalf("round trip %+v", back)
	}
	if back[0].Series[0].Points[2].Y != 3 {
		t.Error("points lost")
	}
	if _, err := LoadFigures(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestCompareIdentical(t *testing.T) {
	figs := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{1, 2, 3, 4, 5}})}
	if diffs := CompareFigures(figs, figs, CompareOptions{}); len(diffs) != 0 {
		t.Fatalf("identical figures diff: %v", diffs)
	}
}

func TestCompareNoisyButSameShape(t *testing.T) {
	base := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{10, 20, 30, 40, 50}})}
	cand := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{12, 19, 33, 38, 54}})}
	if diffs := CompareFigures(base, cand, CompareOptions{}); len(diffs) != 0 {
		t.Fatalf("same-shape noisy run should pass: %v", diffs)
	}
}

func TestCompareDetectsShapeFlip(t *testing.T) {
	base := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{10, 20, 30, 40, 50}})}
	cand := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{50, 40, 30, 20, 10}})}
	diffs := CompareFigures(base, cand, CompareOptions{})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Issue, "correlation") {
		t.Fatalf("flip not detected: %v", diffs)
	}
}

func TestCompareDetectsScaleBlowup(t *testing.T) {
	base := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{10, 20, 30, 40, 50}})}
	cand := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{100, 200, 300, 400, 500}})}
	diffs := CompareFigures(base, cand, CompareOptions{})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Issue, "scale") {
		t.Fatalf("scale blowup not detected: %v", diffs)
	}
	// Same comparison with a permissive ratio passes.
	if diffs := CompareFigures(base, cand, CompareOptions{MaxScaleRatio: 20}); len(diffs) != 0 {
		t.Fatalf("permissive scale should pass: %v", diffs)
	}
}

func TestCompareMissingPieces(t *testing.T) {
	base := []Figure{
		mkFigure("f1", []string{"a", "b"}, [][]float64{{1, 2, 3}, {3, 2, 1}}),
		mkFigure("f2", []string{"a"}, [][]float64{{1, 2, 3}}),
	}
	cand := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{1, 2, 3}})}
	diffs := CompareFigures(base, cand, CompareOptions{})
	var missFig, missSeries bool
	for _, d := range diffs {
		if d.FigureID == "f2" && strings.Contains(d.Issue, "figure missing") {
			missFig = true
		}
		if d.FigureID == "f1" && d.Series == "b" && strings.Contains(d.Issue, "series missing") {
			missSeries = true
		}
	}
	if !missFig || !missSeries {
		t.Fatalf("missing pieces not reported: %v", diffs)
	}
}

func TestCompareXGridMismatch(t *testing.T) {
	base := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{1, 2, 3, 4}})}
	cand := []Figure{{ID: "f1", Series: []stats.Series{{
		Name:   "a",
		Points: []stats.Point{{X: 99, Y: 1}},
	}}}}
	diffs := CompareFigures(base, cand, CompareOptions{})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Issue, "baseline X points") {
		t.Fatalf("grid mismatch not reported: %v", diffs)
	}
}

func TestCompareConstantBaselineSkipsCorrelation(t *testing.T) {
	// A flat baseline (e.g. optimal regret ≡ 0) cannot correlate;
	// only scale is checked.
	base := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{5, 5, 5, 5, 5}})}
	cand := []Figure{mkFigure("f1", []string{"a"}, [][]float64{{5.1, 4.9, 5.2, 4.8, 5}})}
	if diffs := CompareFigures(base, cand, CompareOptions{}); len(diffs) != 0 {
		t.Fatalf("constant baseline should pass: %v", diffs)
	}
}

// TestCompareEndToEndWithRealExperiment: a figure generator's output
// compares clean against itself under a different seed (same shape),
// exercising the full save→load→compare path.
func TestCompareEndToEndWithRealExperiment(t *testing.T) {
	s := testSettings()
	s.K = 10
	a, err := Fig13(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveFigures(&buf, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFigures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := s
	s2.Seed = 43 // different market draw, same shapes
	b, err := Fig13(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := CompareFigures(loaded, b, CompareOptions{MinCorrelation: 0.6}); len(diffs) != 0 {
		t.Fatalf("reseeded Fig13 should keep its shape: %v", diffs)
	}
}
