package experiment

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Experiment is a registered reproduction target: one entry per
// table/figure group of the paper plus the ablations.
type Experiment struct {
	ID          string
	Description string
	Heavy       bool // full-scale run takes minutes rather than seconds
	Run         func(context.Context, Settings) ([]Figure, error)
}

// Registry lists every reproduction target, in paper order.
var Registry = []Experiment{
	{
		ID:          "settings",
		Description: "Table II: simulation settings",
		Run: func(context.Context, Settings) ([]Figure, error) {
			// Rendered as a table, not a series figure; wrap for uniformity.
			return nil, nil
		},
	},
	{
		ID:          "fig4-6",
		Description: "Figs. 4-6: the Sec. III-D illustrative 3-seller trading process",
		Run:         Fig4To6,
	},
	{
		ID:          "fig7-8",
		Description: "Fig. 7: revenue & regret vs N; Fig. 8: Δ-profits vs N",
		Heavy:       true,
		Run:         Fig7And8,
	},
	{
		ID:          "fig9-10",
		Description: "Fig. 9: revenue & regret vs M; Fig. 10: Δ-profits vs M",
		Heavy:       true,
		Run:         Fig9And10,
	},
	{
		ID:          "fig11-12",
		Description: "Fig. 11: revenue & regret vs K; Fig. 12: average per-round profits vs K",
		Heavy:       true,
		Run:         Fig11And12,
	},
	{
		ID:          "fig13",
		Description: "Fig. 13: consumer profit vs own price p^J (per ω; all parties at ω=1000)",
		Run:         Fig13,
	},
	{
		ID:          "fig14",
		Description: "Fig. 14: profits vs seller 6's sensing-time deviation",
		Run:         Fig14,
	},
	{
		ID:          "fig15-16",
		Description: "Figs. 15–16: profits and strategies vs seller 6's cost a_6",
		Run:         Fig15And16,
	},
	{
		ID:          "fig17-18",
		Description: "Figs. 17–18: profits and strategies vs platform cost θ",
		Run:         Fig17And18,
	},
	{
		ID:          "ablation-ucb",
		Description: "Ablation: extended UCB vs UCB1 vs Thompson vs ε-greedy",
		Heavy:       true,
		Run:         AblationUCB,
	},
	{
		ID:          "ablation-explore",
		Description: "Ablation: initial full exploration vs cold start",
		Heavy:       true,
		Run:         AblationExplore,
	},
	{
		ID:          "ablation-solver",
		Description: "Ablation: closed-form vs exact game solver",
		Run:         AblationSolver,
	},
	{
		ID:          "ext-aggregation",
		Description: "Extension: aggregation-statistics RMSE vs N (Definition 2's service made concrete)",
		Heavy:       true,
		Run:         ExtAggregation,
	},
	{
		ID:          "ext-churn",
		Description: "Extension: regret under seller churn",
		Heavy:       true,
		Run:         ExtChurn,
	},
	{
		ID:          "ext-auction",
		Description: "Extension: Stackelberg pricing vs truthful reverse-auction baseline",
		Heavy:       true,
		Run:         ExtAuction,
	},
	{
		ID:          "ext-families",
		Description: "Extension: equilibria across cost/valuation families (quadratic/log vs piecewise/Cobb-Douglas)",
		Run:         ExtFamilies,
	},
	{
		ID:          "ext-nonstationary",
		Description: "Extension: dynamic regret under abrupt quality shifts (fixed-q assumption probed)",
		Heavy:       true,
		Run:         ExtNonStationary,
	},
}

// Find returns the experiment with the given id.
func Find(id string) (*Experiment, bool) {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i], true
		}
	}
	return nil, false
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// RunAndRender executes an experiment under ctx and writes every
// produced figure to w. The "settings" pseudo-experiment renders
// Table II.
func RunAndRender(ctx context.Context, w io.Writer, id string, s Settings) error {
	exp, ok := Find(id)
	if !ok {
		return fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	if id == "settings" {
		return SettingsTable(s).Render(w)
	}
	figs, err := exp.Run(ctx, s)
	if err != nil {
		return err
	}
	for i := range figs {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := figs[i].Render(w); err != nil {
			return err
		}
	}
	return nil
}
