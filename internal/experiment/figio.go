package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"cmabhs/internal/stats"
)

// This file implements figure persistence and shape comparison: the
// reproduction's regression harness. `cdt-bench -json` saves a run's
// figures; `cdt-compare` checks a new run against that baseline the
// same way EXPERIMENTS.md compares against the paper — by shape
// (correlation, trend, scale), not by exact values, since every run
// draws fresh randomness.

// LoadFigures reads a JSON figure array written by cdt-bench -json.
func LoadFigures(r io.Reader) ([]Figure, error) {
	var figs []Figure
	if err := json.NewDecoder(r).Decode(&figs); err != nil {
		return nil, fmt.Errorf("figio: %w", err)
	}
	return figs, nil
}

// SaveFigures writes figures as indented JSON.
func SaveFigures(w io.Writer, figs []Figure) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(figs)
}

// CompareOptions tunes the shape comparison.
type CompareOptions struct {
	// MinCorrelation is the minimum Pearson correlation between the
	// baseline and candidate Y values over shared X points (default
	// 0.8). Ignored for series with fewer than 3 shared points or
	// (near-)constant baselines.
	MinCorrelation float64
	// MaxScaleRatio bounds how far the candidate's mean |Y| may move
	// from the baseline's (default 5: anything within 5× passes).
	MaxScaleRatio float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.MinCorrelation == 0 {
		o.MinCorrelation = 0.8
	}
	if o.MaxScaleRatio == 0 {
		o.MaxScaleRatio = 5
	}
	return o
}

// Diff is one detected shape disagreement.
type Diff struct {
	FigureID string
	Series   string
	Issue    string
}

func (d Diff) String() string {
	return fmt.Sprintf("%s/%s: %s", d.FigureID, d.Series, d.Issue)
}

// CompareFigures checks candidate figures against a baseline and
// returns every shape disagreement. Missing figures/series and
// X-grid mismatches are reported too; extra candidate figures are
// ignored (additions are fine).
func CompareFigures(baseline, candidate []Figure, opts CompareOptions) []Diff {
	opts = opts.withDefaults()
	var diffs []Diff
	candByID := make(map[string]*Figure, len(candidate))
	for i := range candidate {
		candByID[candidate[i].ID] = &candidate[i]
	}
	for bi := range baseline {
		bf := &baseline[bi]
		cf, ok := candByID[bf.ID]
		if !ok {
			diffs = append(diffs, Diff{FigureID: bf.ID, Issue: "figure missing from candidate"})
			continue
		}
		candSeries := make(map[string]*stats.Series, len(cf.Series))
		for i := range cf.Series {
			candSeries[cf.Series[i].Name] = &cf.Series[i]
		}
		for si := range bf.Series {
			bs := &bf.Series[si]
			cs, ok := candSeries[bs.Name]
			if !ok {
				diffs = append(diffs, Diff{FigureID: bf.ID, Series: bs.Name, Issue: "series missing from candidate"})
				continue
			}
			diffs = append(diffs, compareSeries(bf.ID, bs, cs, opts)...)
		}
	}
	return diffs
}

func compareSeries(figID string, b, c *stats.Series, opts CompareOptions) []Diff {
	var diffs []Diff
	cByX := make(map[float64]float64, len(c.Points))
	for _, p := range c.Points {
		cByX[p.X] = p.Y
	}
	var bs, cs []float64
	for _, p := range b.Points {
		if y, ok := cByX[p.X]; ok {
			bs = append(bs, p.Y)
			cs = append(cs, y)
		}
	}
	if len(bs) < len(b.Points)/2 || len(bs) == 0 {
		// Sparse X overlap: some sweeps derive their grid from the
		// sampled instance (e.g. Fig. 14's τ* multiples), so X values
		// shift with the seed. When both series have the same length,
		// fall back to ordinal alignment; otherwise report.
		if len(b.Points) != len(c.Points) {
			return append(diffs, Diff{FigureID: figID, Series: b.Name,
				Issue: fmt.Sprintf("only %d/%d baseline X points present and lengths differ (%d vs %d)",
					len(bs), len(b.Points), len(b.Points), len(c.Points))})
		}
		bs = bs[:0]
		cs = cs[:0]
		for i := range b.Points {
			bs = append(bs, b.Points[i].Y)
			cs = append(cs, c.Points[i].Y)
		}
	}
	// Scale: compare mean magnitudes.
	bMag, cMag := meanAbs(bs), meanAbs(cs)
	if bMag > 1e-9 {
		ratio := cMag / bMag
		if ratio > opts.MaxScaleRatio || ratio < 1/opts.MaxScaleRatio {
			diffs = append(diffs, Diff{FigureID: figID, Series: b.Name,
				Issue: fmt.Sprintf("scale moved %.3gx (baseline mean |Y| %.4g, candidate %.4g)", ratio, bMag, cMag)})
		}
	}
	// Shape: correlation over shared X, when the baseline varies.
	if len(bs) >= 3 && relSpread(bs) > 0.05 {
		if r := correlation(bs, cs); r < opts.MinCorrelation {
			diffs = append(diffs, Diff{FigureID: figID, Series: b.Name,
				Issue: fmt.Sprintf("correlation %.3f below %.3f", r, opts.MinCorrelation)})
		}
	}
	return diffs
}

func meanAbs(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// relSpread returns (max−min)/mean|Y|, a cheap constancy test.
func relSpread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	m := meanAbs(xs)
	if m == 0 {
		return 0
	}
	return (hi - lo) / m
}

// correlation returns the Pearson correlation of two equal-length
// samples (0 for degenerate inputs).
func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
