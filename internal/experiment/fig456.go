package experiment

import (
	"context"
	"fmt"

	"cmabhs/internal/bandit"
	"cmabhs/internal/core"
	"cmabhs/internal/economics"
	"cmabhs/internal/game"
	"cmabhs/internal/market"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// Fig4To6 regenerates the paper's illustrative example (Sec. III-D,
// Figs. 4–6): three unknown sellers, four PoIs, ten rounds, K=2. The
// output mirrors Fig. 6's per-round trace — who is selected, the
// prices, the sensing times — as series over the round index, plus
// the learned quality estimates. Exact values differ from the paper
// (its Fig. 4 parameters are not fully printed), but the structure is
// the same: an all-seller exploration round at p_max, then
// UCB-alternating pairs with Stackelberg pricing.
func Fig4To6(ctx context.Context, s Settings) ([]Figure, error) {
	means := []float64{0.64, 0.66, 0.57} // the example's expected qualities
	model, err := quality.NewTruncGaussian(means, 0.15, rng.New(s.Seed).Split(0x456))
	if err != nil {
		return nil, err
	}
	cfg := &core.Config{
		Market: market.Config{
			Job: market.Job{L: 4, N: 10, Description: "Sec. III-D illustrative job"},
			Sellers: []market.SellerSpec{
				{Cost: economics.SellerCost{A: 0.30, B: 0.20}},
				{Cost: economics.SellerCost{A: 0.25, B: 0.30}},
				{Cost: economics.SellerCost{A: 0.35, B: 0.25}},
			},
			Platform: economics.PlatformCost{Theta: 0.5, Lambda: 1},
			Consumer: economics.Valuation{Omega: 100},
			PJBounds: game.Bounds{Min: 0, Max: 50},
			PBounds:  game.Bounds{Min: 0, Max: 5}, // p¹* = p_max = 5, as in Fig. 4
			Quality:  model,
		},
		K:          2,
		KeepRounds: true,
	}
	res, err := runMech(ctx, cfg, bandit.UCBGreedy{})
	if err != nil {
		return nil, err
	}

	prices := []*stats.SeriesBuilder{
		stats.NewSeriesBuilder("p^J*"),
		stats.NewSeriesBuilder("p*"),
	}
	taus := make([]*stats.SeriesBuilder, 3)
	selected := make([]*stats.SeriesBuilder, 3)
	for i := range taus {
		taus[i] = stats.NewSeriesBuilder(fmt.Sprintf("tau seller %d", i+1))
		selected[i] = stats.NewSeriesBuilder(fmt.Sprintf("seller %d", i+1))
	}
	for _, r := range res.Rounds {
		x := float64(r.Round)
		prices[0].Observe(x, r.PJ)
		prices[1].Observe(x, r.P)
		inRound := map[int]float64{}
		for j, i := range r.Selected {
			inRound[i] = r.Taus[j]
		}
		for i := 0; i < 3; i++ {
			if tau, ok := inRound[i]; ok {
				taus[i].Observe(x, tau)
				selected[i].Observe(x, 1)
			} else {
				taus[i].Observe(x, 0)
				selected[i].Observe(x, 0)
			}
		}
	}
	estimates := stats.NewSeriesBuilder("learned q̄")
	truth := stats.NewSeriesBuilder("true q")
	for i, est := range res.Estimates {
		estimates.Observe(float64(i+1), est)
		truth.Observe(float64(i+1), means[i])
	}

	collect := func(bs []*stats.SeriesBuilder) []stats.Series {
		out := make([]stats.Series, len(bs))
		for i, b := range bs {
			out[i] = b.Series()
		}
		return out
	}
	return []Figure{
		{ID: "fig4-6a", Title: "selection indicator per round (Sec. III-D example)", XLabel: "round", Series: collect(selected)},
		{ID: "fig4-6b", Title: "equilibrium prices per round", XLabel: "round", Series: collect(prices)},
		{ID: "fig4-6c", Title: "sensing times per round", XLabel: "round", Series: collect(taus)},
		{ID: "fig4-6d", Title: "learned vs true qualities after 10 rounds", XLabel: "seller", Series: []stats.Series{estimates.Series(), truth.Series()}},
	}, nil
}
