package experiment

import (
	"context"

	"cmabhs/internal/auction"
	"cmabhs/internal/bandit"
	"cmabhs/internal/numutil"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// ExtAuction compares the paper's Stackelberg incentive mechanism
// against the reverse-auction baseline of the related work ([9],
// [10], [36]): the same markets are run under (a) CMAB-HS and (b) a
// UCB+critical-payment auction where sellers bid their unit costs,
// the platform picks the K best UCB-quality-per-cost offers at a
// fixed unit sensing time, and winners are paid their critical
// values (dominant-strategy truthful; see internal/auction).
//
// The figure reports average per-round PoC/PoP/PoS for both. The
// expected trade-off: Stackelberg pricing optimizes the three-party
// profits (higher PoC), while the auction holds seller payments to
// critical values (truthfulness premium shows up as seller rent and
// a thinner consumer margin).
func ExtAuction(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	xs := make([]float64, len(SweepN))
	for i, n := range SweepN {
		xs[i] = float64(s.scaled(n))
	}
	reps := s.reps()
	type cell struct {
		x                  float64
		stackel, auctioned auctionMetrics
	}
	cells := make([]cell, len(xs)*reps)
	err := s.forEachCell(ctx, len(cells), func(ctx context.Context, idx int) error {
		xi := idx / reps
		rep := idx % reps
		horizon := int(xs[xi])
		src := rng.New(s.Seed).Split(int64(xi*27644437 + rep))
		inst := s.NewInstance(src, s.M, s.K, horizon)

		res, err := runMech(ctx, inst.Config, bandit.UCBGreedy{})
		if err != nil {
			return err
		}
		a, err := runAuctionMarket(inst, s.K, horizon)
		if err != nil {
			return err
		}
		cells[idx] = cell{
			x: xs[xi],
			stackel: auctionMetrics{
				poc: res.AvgPoC(), pop: res.AvgPoP(), pos: res.AvgPoSPerSeller(s.K), ok: true,
			},
			auctioned: *a,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := []string{
		"PoC CMAB-HS", "PoC auction",
		"PoP CMAB-HS", "PoP auction",
		"PoS CMAB-HS", "PoS auction",
	}
	builders := make([]*stats.SeriesBuilder, len(names))
	for i, n := range names {
		builders[i] = stats.NewSeriesBuilder(n)
	}
	for _, c := range cells {
		if !c.stackel.ok || !c.auctioned.ok {
			continue
		}
		builders[0].Observe(c.x, c.stackel.poc)
		builders[1].Observe(c.x, c.auctioned.poc)
		builders[2].Observe(c.x, c.stackel.pop)
		builders[3].Observe(c.x, c.auctioned.pop)
		builders[4].Observe(c.x, c.stackel.pos)
		builders[5].Observe(c.x, c.auctioned.pos)
	}
	series := make([]stats.Series, len(names))
	for i := range builders {
		series[i] = builders[i].Series()
	}
	return []Figure{{
		ID:     "ext-auction",
		Title:  "avg per-round profits: Stackelberg pricing vs truthful reverse auction",
		XLabel: "N",
		Series: series,
	}}, nil
}

// auctionMetrics are average per-round profits (pos per seller).
type auctionMetrics struct {
	poc, pop, pos float64
	ok            bool
}

// runAuctionMarket executes the UCB+auction mechanism on an
// instance's market: round 1 explores everyone at break-even, later
// rounds run the critical-payment auction on UCB quality indices at
// a fixed unit sensing time per winner.
func runAuctionMarket(inst *Instance, k, horizon int) (*auctionMetrics, error) {
	mcfg := &inst.Config.Market
	m := len(mcfg.Sellers)
	model := mcfg.Quality
	arms := bandit.NewArms(m)
	const commission = 0.05

	// True unit costs: the cost of one unit of sensing time at the
	// seller's own (privately known) quality.
	costs := make([]float64, m)
	for i, spec := range mcfg.Sellers {
		q := model.Expected(i)
		if q < 0.05 {
			q = 0.05 // keep bids bounded away from zero
		}
		costs[i] = (spec.Cost.A + spec.Cost.B) * q
	}
	valuation := func(sel []int) float64 {
		var qsum numutil.KahanSum
		for _, i := range sel {
			qsum.Add(arms.Mean(i))
		}
		qbar := qsum.Sum() / float64(len(sel))
		return mcfg.Consumer.Value(float64(len(sel)), qbar)
	}
	observe := func(t int, sel []int) {
		for _, i := range sel {
			obs := make([]float64, mcfg.Job.L)
			for l := range obs {
				obs[l] = model.Observe(i, l, t)
			}
			arms.Update(i, obs)
		}
	}

	var poc, pop, pos numutil.KahanSum
	rounds := 0

	// Round 1: full exploration, pay-as-bid.
	all := make([]int, m)
	for i := range all {
		all[i] = i
	}
	observe(1, all)
	rounds++ // exploration round is priced at break-even for everyone

	ucb := make([]float64, m)
	for t := 2; t <= horizon; t++ {
		for i := range ucb {
			u := arms.UCB(i, k)
			if u > 1 {
				u = 1
			}
			ucb[i] = u
		}
		res, err := auction.Run(ucb, costs, k)
		if err != nil {
			return nil, err
		}
		observe(t, res.Winners)
		aggCost := mcfg.Platform.Cost(float64(k))
		settle, err := res.Settle(valuation(res.Winners), aggCost, commission)
		if err == auction.ErrNoTrade {
			rounds++
			continue // nobody trades this round; profits all zero
		}
		if err != nil {
			return nil, err
		}
		poc.Add(settle.ConsumerProfit)
		pop.Add(settle.PlatformProfit)
		var rent numutil.KahanSum
		for j, w := range res.Winners {
			rent.Add(res.Payments[j] - costs[w])
		}
		pos.Add(rent.Sum())
		rounds++
	}
	r := float64(rounds)
	return &auctionMetrics{
		poc: poc.Sum() / r,
		pop: pop.Sum() / r,
		pos: pos.Sum() / r / float64(k),
		ok:  true,
	}, nil
}
