// Package experiment implements the paper's evaluation harness
// (Sec. V): the Table II settings, the compared algorithms (optimal,
// CMAB-HS, ε-first, random), parallel replicated parameter sweeps,
// and one generator per figure of the paper. Each generator returns
// plain (X, series...) tables so the numbers can be eyeballed against
// the published plots; EXPERIMENTS.md records that comparison.
package experiment

import (
	"errors"
	"fmt"

	"cmabhs/internal/bandit"
	"cmabhs/internal/core"
	"cmabhs/internal/economics"
	"cmabhs/internal/game"
	"cmabhs/internal/market"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// Range is a closed parameter interval used for random draws.
type Range struct {
	Lo, Hi float64
}

// Draw samples uniformly from the range.
func (r Range) Draw(src *rng.Source) float64 { return src.Uniform(r.Lo, r.Hi) }

// Settings mirrors Table II. Scale (default 1) divides every round
// count so the full suite can be smoke-run cheaply: Scale=100 turns
// the 10⁵-round default into 10³ rounds.
type Settings struct {
	M int // number of sellers (default 300)
	K int // selected sellers per round (default 10)
	L int // number of PoIs (default 10)
	N int // total rounds (default 1e5)

	Theta  float64 // platform cost θ (default 0.1)
	Lambda float64 // platform cost λ (default 1)
	Omega  float64 // consumer valuation ω (default 1000)

	ARange Range   // seller cost a_i (default [0.1, 0.5])
	BRange Range   // seller cost b_i (default [0.1, 1])
	QRange Range   // expected qualities (default [0, 1])
	SD     float64 // observation noise std-dev (default 0.1)

	PJBounds game.Bounds // default [0, 100]
	PBounds  game.Bounds // default [0, 5]

	Seed         int64 // master seed
	Replications int   // independent repetitions per sweep point (default 1)
	Scale        int   // divide all round counts by this (default 1)
	Workers      int   // parallel workers (default GOMAXPROCS)
	Solver       core.Solver
}

// Defaults returns the paper's default configuration.
func Defaults() Settings {
	return Settings{
		M: 300, K: 10, L: 10, N: 100_000,
		Theta: 0.1, Lambda: 1, Omega: 1000,
		ARange:       Range{0.1, 0.5},
		BRange:       Range{0.1, 1},
		QRange:       Range{0, 1},
		SD:           0.1,
		PJBounds:     game.Bounds{Min: 0, Max: 100},
		PBounds:      game.Bounds{Min: 0, Max: 5},
		Seed:         1,
		Replications: 1,
		Scale:        1,
	}
}

// Validate checks the settings.
func (s *Settings) Validate() error {
	switch {
	case s.M <= 0 || s.K <= 0 || s.K > s.M:
		return fmt.Errorf("experiment: invalid M=%d K=%d", s.M, s.K)
	case s.L <= 0:
		return errors.New("experiment: L must be positive")
	case s.N <= 0:
		return errors.New("experiment: N must be positive")
	case s.Replications < 0 || s.Scale < 0 || s.Workers < 0:
		return errors.New("experiment: negative replication/scale/workers")
	}
	return nil
}

func (s *Settings) scaled(n int) int {
	sc := s.Scale
	if sc <= 0 {
		sc = 1
	}
	n /= sc
	if n < 2 {
		n = 2
	}
	return n
}

func (s *Settings) reps() int {
	if s.Replications <= 0 {
		return 1
	}
	return s.Replications
}

// Instance is one concrete sampled market: seller costs, expected
// qualities, and the assembled core configuration.
type Instance struct {
	Config *core.Config
	Means  []float64
}

// NewInstance draws a market instance from the settings using the
// given stream. horizon overrides N (already scaled by the caller).
func (s *Settings) NewInstance(src *rng.Source, m, k, horizon int) *Instance {
	means := make([]float64, m)
	sellers := make([]market.SellerSpec, m)
	for i := range means {
		means[i] = s.QRange.Draw(src)
		sellers[i] = market.SellerSpec{Cost: economics.SellerCost{
			A: s.ARange.Draw(src),
			B: s.BRange.Draw(src),
		}}
	}
	model, err := quality.NewTruncGaussian(means, s.SD, src.Split(0x9a))
	if err != nil {
		panic(err) // means are drawn in [0,1]; cannot happen
	}
	cfg := &core.Config{
		Market: market.Config{
			Job:      market.Job{L: s.L, N: horizon, Description: "synthetic CDT job"},
			Sellers:  sellers,
			Platform: economics.PlatformCost{Theta: s.Theta, Lambda: s.Lambda},
			Consumer: economics.Valuation{Omega: s.Omega},
			PJBounds: s.PJBounds,
			PBounds:  s.PBounds,
			Quality:  model,
		},
		K:      k,
		Solver: s.Solver,
	}
	return &Instance{Config: cfg, Means: means}
}

// PolicySet names the paper's comparison algorithms in presentation
// order. Epsilons follows the paper: ε ∈ {0.1, 0.5} shown.
var PolicyNames = []string{"optimal", "CMAB-HS", "0.1-first", "0.5-first", "random"}

// Policies instantiates the comparison set for one instance. horizon
// is the run length the ε-first phase split is computed against.
func Policies(inst *Instance, horizon int, src *rng.Source) []bandit.Policy {
	return []bandit.Policy{
		bandit.NewOracle(inst.Means),
		bandit.UCBGreedy{},
		bandit.NewEpsilonFirst(0.1, horizon, src.Split(0xe1)),
		bandit.NewEpsilonFirst(0.5, horizon, src.Split(0xe5)),
		bandit.NewRandom(src.Split(0xaa)),
	}
}

// SettingsTable renders Table II (the simulation settings) with the
// actual values this harness runs.
func SettingsTable(s Settings) *stats.Table {
	t := stats.NewTable("Table II: simulation settings", "parameter", "value(s)")
	t.AddRow("number of rounds N", fmt.Sprintf("5k,40k,80k,100k*,120k,160k,200k (scale 1/%d)", max(1, s.Scale)))
	t.AddRow("number of sellers M", "50,100,150,200,250,300*")
	t.AddRow("number of selected sellers K", "10*,20,30,40,50,60")
	t.AddRow("valuation parameter omega", "600,800,1000*,1200,1400")
	t.AddRow("cost parameter theta,lambda", fmt.Sprintf("theta=%.2g* in [0.1,1], lambda=%.2g* in [0.5,2]", s.Theta, s.Lambda))
	t.AddRow("cost parameters a,b", fmt.Sprintf("a in [%.2g,%.2g], b in [%.2g,%.2g]", s.ARange.Lo, s.ARange.Hi, s.BRange.Lo, s.BRange.Hi))
	t.AddRow("expected qualities q", fmt.Sprintf("uniform [%.2g,%.2g], truncated-Gaussian obs sd=%.2g", s.QRange.Lo, s.QRange.Hi, s.SD))
	t.AddRow("price bounds", fmt.Sprintf("p^J in [%.4g,%.4g], p in [%.4g,%.4g]", s.PJBounds.Min, s.PJBounds.Max, s.PBounds.Min, s.PBounds.Max))
	t.AddRow("(* = default)", "")
	return t
}
