package experiment

import (
	"context"
	"fmt"

	"cmabhs/internal/core"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// This file regenerates the online-learning figures (Figs. 7–12):
// total revenue, regret, and per-party profit gaps across sweeps of
// the horizon N, the population M, and the selection size K, for the
// paper's algorithm set (optimal / CMAB-HS / ε-first / random).

// Paper sweep values (Table II).
var (
	SweepN = []int{5_000, 40_000, 80_000, 100_000, 120_000, 160_000, 200_000}
	SweepM = []int{50, 100, 150, 200, 250, 300}
	SweepK = []int{10, 20, 30, 40, 50, 60}
)

// banditCell is one completed (sweep point, replication, policy) run.
type banditCell struct {
	x      float64
	policy int
	rep    int
	res    *core.Result
}

// runBanditSweep executes the comparison set at every sweep point ×
// replication on the execution engine. build must return the (M, K,
// horizon) of sweep point x; instances are drawn with common random
// numbers across policies for variance reduction.
func runBanditSweep(ctx context.Context, s *Settings, xs []float64, build func(x float64) (m, k, horizon int)) ([]banditCell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	reps := s.reps()
	nPol := len(PolicyNames)
	cells := make([]banditCell, len(xs)*reps*nPol)
	err := s.forEachCell(ctx, len(cells), func(ctx context.Context, idx int) error {
		xi := idx / (reps * nPol)
		rep := (idx / nPol) % reps
		pol := idx % nPol
		m, k, horizon := build(xs[xi])
		src := rng.New(s.Seed).Split(int64(xi*7919 + rep))
		inst := s.NewInstance(src, m, k, horizon)
		policy := Policies(inst, horizon, src.Split(int64(pol)))[pol]
		res, err := runMech(ctx, inst.Config, policy)
		if err != nil {
			return fmt.Errorf("sweep x=%v policy=%s: %w", xs[xi], PolicyNames[pol], err)
		}
		cells[idx] = banditCell{x: xs[xi], policy: pol, rep: rep, res: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// revenueRegretFigures assembles the "total revenue vs X" and
// "regret vs X" figures from a completed sweep.
func revenueRegretFigures(idPrefix, what, xLabel string, cells []banditCell) []Figure {
	revenue := make([]*stats.SeriesBuilder, len(PolicyNames))
	regret := make([]*stats.SeriesBuilder, len(PolicyNames))
	for i, name := range PolicyNames {
		revenue[i] = stats.NewSeriesBuilder(name)
		regret[i] = stats.NewSeriesBuilder(name)
	}
	for _, c := range cells {
		if c.res == nil {
			continue
		}
		revenue[c.policy].Observe(c.x, c.res.RealizedRevenue)
		regret[c.policy].Observe(c.x, c.res.Regret)
	}
	revSeries := make([]stats.Series, len(revenue))
	regSeries := make([]stats.Series, len(regret))
	for i := range revenue {
		revSeries[i] = revenue[i].Series()
		regSeries[i] = regret[i].Series()
	}
	return []Figure{
		{ID: idPrefix + "a", Title: "total revenue vs " + what, XLabel: xLabel, Series: revSeries},
		{ID: idPrefix + "b", Title: "regret vs " + what, XLabel: xLabel, Series: regSeries},
	}
}

// profitGapFigures assembles the Δ-PoC / Δ-PoP / Δ-PoS figures: the
// average per-round profit gap between the optimal algorithm and each
// other algorithm, per sweep point (Figs. 8 and 10).
func profitGapFigures(idPrefix, what, xLabel string, cells []banditCell) []Figure {
	// Index optimal runs by (x, rep) for pairing.
	type key struct {
		x   float64
		rep int
	}
	opt := make(map[key]*core.Result)
	for _, c := range cells {
		if c.res != nil && PolicyNames[c.policy] == "optimal" {
			opt[key{c.x, c.rep}] = c.res
		}
	}
	metricNames := []string{"Δ-PoC", "Δ-PoP", "Δ-PoS(s)"}
	builders := make([][]*stats.SeriesBuilder, len(metricNames))
	for mi := range builders {
		builders[mi] = make([]*stats.SeriesBuilder, 0, len(PolicyNames)-1)
		for _, name := range PolicyNames {
			if name == "optimal" {
				continue
			}
			builders[mi] = append(builders[mi], stats.NewSeriesBuilder(name))
		}
	}
	for _, c := range cells {
		if c.res == nil || PolicyNames[c.policy] == "optimal" {
			continue
		}
		o := opt[key{c.x, c.rep}]
		if o == nil {
			continue
		}
		rounds := float64(c.res.RoundsPlayed)
		// The slot of this policy among non-optimal ones.
		slot := c.policy - 1
		builders[0][slot].Observe(c.x, (o.CumPoC-c.res.CumPoC)/rounds)
		builders[1][slot].Observe(c.x, (o.CumPoP-c.res.CumPoP)/rounds)
		builders[2][slot].Observe(c.x, (o.CumPoS-c.res.CumPoS)/rounds)
	}
	sub := []string{"a", "b", "c"}
	figs := make([]Figure, len(metricNames))
	for mi, metric := range metricNames {
		series := make([]stats.Series, len(builders[mi]))
		for i := range builders[mi] {
			series[i] = builders[mi][i].Series()
		}
		figs[mi] = Figure{
			ID:     idPrefix + sub[mi],
			Title:  metric + " vs " + what,
			XLabel: xLabel,
			Series: series,
		}
	}
	return figs
}

// Fig7And8 regenerates Fig. 7 (total revenue and regret vs N) and
// Fig. 8 (Δ-profits vs N) with M and K at their defaults.
func Fig7And8(ctx context.Context, s Settings) ([]Figure, error) {
	xs := make([]float64, len(SweepN))
	for i, n := range SweepN {
		xs[i] = float64(s.scaled(n))
	}
	cells, err := runBanditSweep(ctx, &s, xs, func(x float64) (int, int, int) {
		return s.M, s.K, int(x)
	})
	if err != nil {
		return nil, err
	}
	figs := revenueRegretFigures("fig7", "total rounds N", "N", cells)
	figs = append(figs, profitGapFigures("fig8", "total rounds N", "N", cells)...)
	return figs, nil
}

// Fig9And10 regenerates Fig. 9 (revenue/regret vs M) and Fig. 10
// (Δ-profits vs M) with N and K at their defaults.
func Fig9And10(ctx context.Context, s Settings) ([]Figure, error) {
	horizon := s.scaled(s.N)
	xs := make([]float64, len(SweepM))
	for i, m := range SweepM {
		xs[i] = float64(m)
	}
	cells, err := runBanditSweep(ctx, &s, xs, func(x float64) (int, int, int) {
		return int(x), s.K, horizon
	})
	if err != nil {
		return nil, err
	}
	figs := revenueRegretFigures("fig9", "number of sellers M", "M", cells)
	figs = append(figs, profitGapFigures("fig10", "number of sellers M", "M", cells)...)
	return figs, nil
}

// Fig11And12 regenerates Fig. 11 (revenue/regret vs K) and Fig. 12
// (average per-round PoC/PoP/PoS(s) vs K) with N and M at their
// defaults.
func Fig11And12(ctx context.Context, s Settings) ([]Figure, error) {
	horizon := s.scaled(s.N)
	xs := make([]float64, 0, len(SweepK))
	for _, k := range SweepK {
		if k <= s.M {
			xs = append(xs, float64(k))
		}
	}
	cells, err := runBanditSweep(ctx, &s, xs, func(x float64) (int, int, int) {
		return s.M, int(x), horizon
	})
	if err != nil {
		return nil, err
	}
	figs := revenueRegretFigures("fig11", "selected sellers K", "K", cells)

	// Fig. 12: average per-round profits by party.
	names := []string{"avg PoC", "avg PoP", "avg PoS per seller"}
	sub := []string{"a", "b", "c"}
	builders := make([][]*stats.SeriesBuilder, len(names))
	for mi := range builders {
		builders[mi] = make([]*stats.SeriesBuilder, len(PolicyNames))
		for pi, name := range PolicyNames {
			builders[mi][pi] = stats.NewSeriesBuilder(name)
		}
	}
	for _, c := range cells {
		if c.res == nil {
			continue
		}
		k := int(c.x)
		builders[0][c.policy].Observe(c.x, c.res.AvgPoC())
		builders[1][c.policy].Observe(c.x, c.res.AvgPoP())
		builders[2][c.policy].Observe(c.x, c.res.AvgPoSPerSeller(k))
	}
	for mi := range names {
		series := make([]stats.Series, len(PolicyNames))
		for pi := range PolicyNames {
			series[pi] = builders[mi][pi].Series()
		}
		figs = append(figs, Figure{
			ID:     "fig12" + sub[mi],
			Title:  names[mi] + " vs selected sellers K",
			XLabel: "K",
			Series: series,
		})
	}
	return figs, nil
}
