package experiment

import (
	"context"
	"fmt"

	"cmabhs/internal/economics"
	"cmabhs/internal/game"
	"cmabhs/internal/numutil"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// This file regenerates the Stackelberg-game figures (Figs. 13–18).
// They all probe a single round's game on a fixed set of K=10 sellers
// ("we randomly select one round"), so the generators build one
// deterministic instance from the settings and sweep prices, a
// seller's strategy, a seller's cost parameter a_6, and the
// platform's cost parameter θ. Sellers are referred to 1-based as in
// the paper (PoS-3 is p.Qualities[2] etc.).

// gameInstance draws the fixed K-seller round used by Figs. 13–18.
func gameInstance(s *Settings) *game.Params {
	src := rng.New(s.Seed).Split(0x6a3e)
	p := &game.Params{
		Platform: economics.PlatformCost{Theta: s.Theta, Lambda: s.Lambda},
		Consumer: economics.Valuation{Omega: s.Omega},
		PJBounds: s.PJBounds,
		PBounds:  s.PBounds,
	}
	for i := 0; i < s.K; i++ {
		p.Sellers = append(p.Sellers, economics.SellerCost{
			A: s.ARange.Draw(src),
			B: s.BRange.Draw(src),
		})
		// Estimated qualities of a settled round: bounded away from 0.
		p.Qualities = append(p.Qualities, src.Uniform(0.2, 1))
	}
	return p
}

// watchedSellers are the 1-based seller ids the paper plots (PoS-3,
// PoS-6, PoS-8); trimmed if K is smaller in a scaled run.
func watchedSellers(k int) []int {
	var out []int
	for _, id := range []int{3, 6, 8} {
		if id <= k {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Fig13 regenerates Fig. 13: (a) PoC vs the consumer's own price p^J
// for several ω, with the platform and sellers reacting; (b) all
// parties' profits vs p^J at ω=1000.
func Fig13(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	base := gameInstance(&s)
	pjGrid := numutil.Linspace(0.25, 40, 160)

	// (a) PoC(p^J) for each ω.
	omegas := []float64{600, 800, 1000, 1200, 1400}
	seriesA := make([]stats.Series, 0, len(omegas))
	for _, omega := range omegas {
		p := *base
		p.Consumer = economics.Valuation{Omega: omega}
		co := p.Coeffs()
		b := stats.NewSeriesBuilder(fmt.Sprintf("omega=%.0f", omega))
		for _, pj := range pjGrid {
			price, _ := p.PlatformBestResponse(pj, co)
			out := p.Evaluate(pj, price, nil)
			b.Observe(pj, out.ConsumerProfit)
		}
		seriesA = append(seriesA, b.Series())
	}

	// (b) PoC/PoP/PoS-i(p^J) at ω = 1000.
	p := *base
	p.Consumer = economics.Valuation{Omega: 1000}
	co := p.Coeffs()
	watched := watchedSellers(len(p.Sellers))
	builders := []*stats.SeriesBuilder{stats.NewSeriesBuilder("PoC"), stats.NewSeriesBuilder("PoP")}
	for _, id := range watched {
		builders = append(builders, stats.NewSeriesBuilder(fmt.Sprintf("PoS-%d", id)))
	}
	for _, pj := range pjGrid {
		price, _ := p.PlatformBestResponse(pj, co)
		out := p.Evaluate(pj, price, nil)
		builders[0].Observe(pj, out.ConsumerProfit)
		builders[1].Observe(pj, out.PlatformProfit)
		for wi, id := range watched {
			builders[2+wi].Observe(pj, out.SellerProfits[id-1])
		}
	}
	seriesB := make([]stats.Series, len(builders))
	for i, b := range builders {
		seriesB[i] = b.Series()
	}
	return []Figure{
		{ID: "fig13a", Title: "PoC vs SoC (p^J) for different omega", XLabel: "p^J", Series: seriesA},
		{ID: "fig13b", Title: "profits vs SoC (p^J) at omega=1000", XLabel: "p^J", Series: seriesB},
	}, nil
}

// Fig14 regenerates Fig. 14: SoC and SoP fixed at the SE, seller 6's
// sensing time deviates; (a) PoC and PoP, (b) PoS-3/6/8.
func Fig14(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := gameInstance(&s)
	eq, err := game.Solve(p)
	if err != nil {
		return nil, err
	}
	if eq.NoTrade {
		return nil, fmt.Errorf("fig14: instance does not trade")
	}
	watched := watchedSellers(len(p.Sellers))
	dev := watched[len(watched)/2] // seller 6 at defaults
	tauStar := eq.Taus[dev-1]
	grid := numutil.Linspace(0, 3*tauStar+1, 121)

	a := []*stats.SeriesBuilder{stats.NewSeriesBuilder("PoC"), stats.NewSeriesBuilder("PoP")}
	bs := make([]*stats.SeriesBuilder, 0, len(watched))
	for _, id := range watched {
		bs = append(bs, stats.NewSeriesBuilder(fmt.Sprintf("PoS-%d", id)))
	}
	taus := append([]float64(nil), eq.Taus...)
	for _, t6 := range grid {
		taus[dev-1] = t6
		out := p.Evaluate(eq.PJ, eq.P, taus)
		a[0].Observe(t6, out.ConsumerProfit)
		a[1].Observe(t6, out.PlatformProfit)
		for wi, id := range watched {
			bs[wi].Observe(t6, out.SellerProfits[id-1])
		}
	}
	seriesA := []stats.Series{a[0].Series(), a[1].Series()}
	seriesB := make([]stats.Series, len(bs))
	for i := range bs {
		seriesB[i] = bs[i].Series()
	}
	xl := fmt.Sprintf("tau_%d", dev)
	return []Figure{
		{ID: "fig14a", Title: "PoC and PoP vs SoS-" + fmt.Sprint(dev), XLabel: xl, Series: seriesA},
		{ID: "fig14b", Title: "PoS(s) vs SoS-" + fmt.Sprint(dev), XLabel: xl, Series: seriesB},
	}, nil
}

// sweepSE solves the SE across a parameter sweep and collects profits
// and strategies; mutate applies the swept value to a copy of the
// base game.
func sweepSE(p *game.Params, xs []float64, mutate func(*game.Params, float64)) (profits, strategies map[string]*stats.SeriesBuilder, watched []int, err error) {
	watched = watchedSellers(len(p.Sellers))
	profits = map[string]*stats.SeriesBuilder{
		"PoC": stats.NewSeriesBuilder("PoC"),
		"PoP": stats.NewSeriesBuilder("PoP"),
	}
	strategies = map[string]*stats.SeriesBuilder{
		"SoC": stats.NewSeriesBuilder("SoC (p^J)"),
		"SoP": stats.NewSeriesBuilder("SoP (p)"),
	}
	for _, id := range watched {
		profits[fmt.Sprintf("PoS-%d", id)] = stats.NewSeriesBuilder(fmt.Sprintf("PoS-%d", id))
		strategies[fmt.Sprintf("SoS-%d", id)] = stats.NewSeriesBuilder(fmt.Sprintf("SoS-%d", id))
	}
	for _, x := range xs {
		cp := *p
		cp.Sellers = append([]economics.SellerCost(nil), p.Sellers...)
		cp.Qualities = append([]float64(nil), p.Qualities...)
		mutate(&cp, x)
		out, err := game.Solve(&cp)
		if err != nil {
			return nil, nil, nil, err
		}
		profits["PoC"].Observe(x, out.ConsumerProfit)
		profits["PoP"].Observe(x, out.PlatformProfit)
		strategies["SoC"].Observe(x, out.PJ)
		strategies["SoP"].Observe(x, out.P)
		for _, id := range watched {
			profits[fmt.Sprintf("PoS-%d", id)].Observe(x, out.SellerProfits[id-1])
			strategies[fmt.Sprintf("SoS-%d", id)].Observe(x, out.Taus[id-1])
		}
	}
	return profits, strategies, watched, nil
}

// seFigures renders the standard two-figure (profits, strategies)
// pair shared by Figs. 15–18.
func seFigures(profitID, strategyID, what, xLabel string, profits, strategies map[string]*stats.SeriesBuilder, watched []int) []Figure {
	pSeries := []stats.Series{profits["PoC"].Series(), profits["PoP"].Series()}
	sSeries := []stats.Series{strategies["SoC"].Series(), strategies["SoP"].Series()}
	var posSeries, sosSeries []stats.Series
	for _, id := range watched {
		posSeries = append(posSeries, profits[fmt.Sprintf("PoS-%d", id)].Series())
		sosSeries = append(sosSeries, strategies[fmt.Sprintf("SoS-%d", id)].Series())
	}
	return []Figure{
		{ID: profitID + "a", Title: "PoC and PoP vs " + what, XLabel: xLabel, Series: pSeries},
		{ID: profitID + "b", Title: "PoS(s) vs " + what, XLabel: xLabel, Series: posSeries},
		{ID: strategyID + "a", Title: "SoC and SoP vs " + what, XLabel: xLabel, Series: sSeries},
		{ID: strategyID + "b", Title: "SoS(s) vs " + what, XLabel: xLabel, Series: sosSeries},
	}
}

// Fig15And16 regenerates Figs. 15–16: profits and strategies as
// seller 6's cost parameter a_6 grows.
func Fig15And16(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := gameInstance(&s)
	watched := watchedSellers(len(p.Sellers))
	dev := watched[len(watched)/2]
	xs := numutil.Linspace(0.05, 5, 100)
	profits, strategies, w, err := sweepSE(p, xs, func(cp *game.Params, x float64) {
		cp.Sellers[dev-1].A = x
	})
	if err != nil {
		return nil, err
	}
	what := fmt.Sprintf("cost parameter a_%d", dev)
	return seFigures("fig15", "fig16", what, fmt.Sprintf("a_%d", dev), profits, strategies, w), nil
}

// Fig17And18 regenerates Figs. 17–18: profits and strategies as the
// platform's cost parameter θ grows.
func Fig17And18(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := gameInstance(&s)
	xs := numutil.Linspace(0.1, 1, 91)
	profits, strategies, w, err := sweepSE(p, xs, func(cp *game.Params, x float64) {
		cp.Platform.Theta = x
	})
	if err != nil {
		return nil, err
	}
	return seFigures("fig17", "fig18", "platform cost theta", "theta", profits, strategies, w), nil
}
