package experiment

import (
	"context"

	"cmabhs/internal/aggregate"
	"cmabhs/internal/market"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// ExtAggregation is an extension experiment beyond the paper: it
// makes Definition 2's aggregation service concrete and measures the
// statistics error the consumer actually receives. Sellers return
// noisy readings of a per-PoI ground-truth signal (noise set by their
// TRUE quality); the platform fuses them with a quality-weighted mean
// (weighted by ESTIMATED qualities). The figure reports the mean
// per-round aggregation RMSE across the N sweep for the comparison
// policies — quality-aware selection translates directly into better
// statistics.
func ExtAggregation(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	xs := make([]float64, len(SweepN))
	for i, n := range SweepN {
		xs[i] = float64(s.scaled(n))
	}
	reps := s.reps()
	nPol := len(PolicyNames)
	type cell struct {
		x      float64
		policy int
		rmse   float64
		ok     bool
	}
	cells := make([]cell, len(xs)*reps*nPol)
	err := s.forEachCell(ctx, len(cells), func(ctx context.Context, idx int) error {
		xi := idx / (reps * nPol)
		rep := (idx / nPol) % reps
		pol := idx % nPol
		horizon := int(xs[xi])
		src := rng.New(s.Seed).Split(int64(xi*6151 + rep))
		inst := s.NewInstance(src, s.M, s.K, horizon)
		sensor, err := aggregate.NewSensor(0.05, 2, src.Split(0xd1))
		if err != nil {
			return err
		}
		inst.Config.Market.Data = &market.DataLayer{
			Signal:     aggregate.SineSignal{Base: 50, Amp: 10, Period: 288},
			Sensor:     sensor,
			Aggregator: aggregate.WeightedMean{},
		}
		res, err := runMech(ctx, inst.Config, Policies(inst, horizon, src.Split(int64(pol)))[pol])
		if err != nil {
			return err
		}
		cells[idx] = cell{x: xs[xi], policy: pol, rmse: res.MeanAggRMSE, ok: true}
		return nil
	})
	if err != nil {
		return nil, err
	}
	builders := make([]*stats.SeriesBuilder, nPol)
	for i, name := range PolicyNames {
		builders[i] = stats.NewSeriesBuilder(name)
	}
	for _, c := range cells {
		if c.ok {
			builders[c.policy].Observe(c.x, c.rmse)
		}
	}
	series := make([]stats.Series, nPol)
	for i := range builders {
		series[i] = builders[i].Series()
	}
	return []Figure{{
		ID:     "ext-aggregation",
		Title:  "mean aggregation RMSE vs N (extension: Definition 2's statistics service)",
		XLabel: "N",
		Series: series,
	}}, nil
}

// ExtChurn is a second extension experiment: robustness to seller
// churn. A fraction of the population departs uniformly over the
// run; the figure compares regret with and without churn across the
// comparison policies at the default horizon.
func ExtChurn(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	horizon := s.scaled(s.N)
	churnFracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	reps := s.reps()
	nPol := len(PolicyNames)
	type cell struct {
		x      float64
		policy int
		regret float64
		ok     bool
	}
	cells := make([]cell, len(churnFracs)*reps*nPol)
	err := s.forEachCell(ctx, len(cells), func(ctx context.Context, idx int) error {
		xi := idx / (reps * nPol)
		rep := (idx / nPol) % reps
		pol := idx % nPol
		frac := churnFracs[xi]
		src := rng.New(s.Seed).Split(int64(xi*911 + rep))
		inst := s.NewInstance(src, s.M, s.K, horizon)
		// The first frac·M sellers depart at rounds spread uniformly
		// over (1, horizon]. Includes high-quality sellers by chance.
		departing := int(frac * float64(s.M))
		if departing > 0 {
			dep := make([]int, s.M)
			perm := src.Split(0xc4).Perm(s.M)
			for j := 0; j < departing; j++ {
				dep[perm[j]] = 2 + int(float64(horizon-2)*float64(j)/float64(departing))
			}
			inst.Config.Market.Departures = dep
		}
		res, err := runMech(ctx, inst.Config, Policies(inst, horizon, src.Split(int64(pol)))[pol])
		if err != nil {
			return err
		}
		cells[idx] = cell{x: frac, policy: pol, regret: res.Regret, ok: true}
		return nil
	})
	if err != nil {
		return nil, err
	}
	builders := make([]*stats.SeriesBuilder, nPol)
	for i, name := range PolicyNames {
		builders[i] = stats.NewSeriesBuilder(name)
	}
	for _, c := range cells {
		if c.ok {
			builders[c.policy].Observe(c.x, c.regret)
		}
	}
	series := make([]stats.Series, nPol)
	for i := range builders {
		series[i] = builders[i].Series()
	}
	return []Figure{{
		ID:     "ext-churn",
		Title:  "regret vs departing-seller fraction (extension: churn robustness)",
		XLabel: "churn fraction",
		Series: series,
	}}, nil
}
