package experiment

import (
	"fmt"
	"io"
	"sync"

	"cmabhs/internal/stats"
)

// Figure is one reproduced plot: a shared X axis and one series per
// algorithm/party, rendered as an aligned table or CSV.
type Figure struct {
	ID     string // e.g. "fig7a"
	Title  string // what the paper's plot shows
	XLabel string
	Series []stats.Series
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() *stats.Table {
	return stats.SeriesTable(fmt.Sprintf("%s: %s", f.ID, f.Title), f.XLabel, f.Series...)
}

// Render writes the figure's table to w.
func (f *Figure) Render(w io.Writer) error { return f.Table().Render(w) }

// RenderCSV writes the figure as CSV to w.
func (f *Figure) RenderCSV(w io.Writer) error { return f.Table().RenderCSV(w) }

// RenderChart draws the figure as a compact ASCII line chart.
func (f *Figure) RenderChart(w io.Writer) error {
	return stats.Chart{}.Render(w, fmt.Sprintf("%s: %s", f.ID, f.Title), f.XLabel, f.Series...)
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines.
// Each fn must confine its writes to its own index's data.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = 4
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
