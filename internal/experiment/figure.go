package experiment

import (
	"context"
	"fmt"
	"io"

	"cmabhs/internal/bandit"
	"cmabhs/internal/core"
	"cmabhs/internal/engine"
	"cmabhs/internal/stats"
)

// Figure is one reproduced plot: a shared X axis and one series per
// algorithm/party, rendered as an aligned table or CSV.
type Figure struct {
	ID     string // e.g. "fig7a"
	Title  string // what the paper's plot shows
	XLabel string
	Series []stats.Series
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() *stats.Table {
	return stats.SeriesTable(fmt.Sprintf("%s: %s", f.ID, f.Title), f.XLabel, f.Series...)
}

// Render writes the figure's table to w.
func (f *Figure) Render(w io.Writer) error { return f.Table().Render(w) }

// RenderCSV writes the figure as CSV to w.
func (f *Figure) RenderCSV(w io.Writer) error { return f.Table().RenderCSV(w) }

// RenderChart draws the figure as a compact ASCII line chart.
func (f *Figure) RenderChart(w io.Writer) error {
	return stats.Chart{}.Render(w, fmt.Sprintf("%s: %s", f.ID, f.Title), f.XLabel, f.Series...)
}

// forEachCell runs fn(ctx, i) for every cell index of a sweep on the
// shared execution engine, bounded by the settings' worker count
// (GOMAXPROCS when unset). Each fn must confine its writes to its own
// index's data. The first task error cancels the remaining cells and
// is returned; cancelling ctx aborts the sweep at a cell boundary.
func (s *Settings) forEachCell(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return engine.ForEach(ctx, n, engine.Options{Workers: s.Workers}, fn)
}

// runMech executes one mechanism run under ctx. A run the context cut
// short is converted into ctx's error rather than returned as a
// truncated result, so sweep cells never record partial runs.
func runMech(ctx context.Context, cfg *core.Config, policy bandit.Policy) (*core.Result, error) {
	res, err := core.RunContext(ctx, cfg, policy)
	if err != nil {
		return nil, err
	}
	if res.Stopped == core.StoppedCanceled {
		return nil, ctx.Err()
	}
	return res, nil
}
