package experiment

import (
	"context"

	"cmabhs/internal/economics"
	"cmabhs/internal/game"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// ExtFamilies compares equilibrium outcomes across the cost/valuation
// family choices surveyed in the paper's related work: the paper's
// quadratic cost + log valuation against piecewise-linear costs
// ([16], [19]–[21]) and the Cobb–Douglas valuation ([15]). All
// variants are solved with the family-flexible numeric solver on the
// same sampled seller population, sweeping the consumer's budget-of-
// value parameter (ω for the log family; a matched scale for
// Cobb–Douglas), and reporting PoC, PoP, and total sensing time.
//
// The qualitative expectation: the quadratic/log pairing produces
// smooth interior equilibria; piecewise-linear costs produce
// bang-bang supply (sellers sit at kinks or the cap), which makes
// total sensing time jumpy while profits stay comparable.
func ExtFamilies(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(s.Seed).Split(0xfa)
	k := s.K
	// One fixed seller population for all variants.
	quals := make([]float64, k)
	quads := make([]economics.SellerCost, k)
	pieces := make([]economics.CostFunc, k)
	quadCosts := make([]economics.CostFunc, k)
	for i := 0; i < k; i++ {
		quads[i] = economics.SellerCost{A: s.ARange.Draw(src), B: s.BRange.Draw(src)}
		quals[i] = src.Uniform(0.2, 1)
		quadCosts[i] = quads[i]
		// A piecewise-linear cost calibrated to the quadratic one:
		// same marginal cost at τ=1, knee at τ=1, 3× steeper after.
		pieces[i] = economics.PiecewiseLinearCost{
			Rate:    2*quads[i].A + quads[i].B,
			Knee:    1,
			Steepen: 3,
		}
	}
	const maxTau = 25.0

	variants := []struct {
		name  string
		costs []economics.CostFunc
		val   func(omega float64) economics.ValuationFunc
	}{
		{"quad+log (paper)", quadCosts, func(w float64) economics.ValuationFunc {
			return economics.Valuation{Omega: w}
		}},
		{"piecewise+log", pieces, func(w float64) economics.ValuationFunc {
			return economics.Valuation{Omega: w}
		}},
		{"quad+cobb-douglas", quadCosts, func(w float64) economics.ValuationFunc {
			return economics.CobbDouglasValuation{Scale: w / 2, ElasTau: 0.5, ElasQ: 0.5}
		}},
	}
	omegas := []float64{600, 800, 1000, 1200, 1400}

	poc := make([]*stats.SeriesBuilder, len(variants))
	pop := make([]*stats.SeriesBuilder, len(variants))
	tau := make([]*stats.SeriesBuilder, len(variants))
	for vi, v := range variants {
		poc[vi] = stats.NewSeriesBuilder("PoC " + v.name)
		pop[vi] = stats.NewSeriesBuilder("PoP " + v.name)
		tau[vi] = stats.NewSeriesBuilder("sum-tau " + v.name)
	}
	for vi, v := range variants {
		for _, w := range omegas {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			f := &game.FlexParams{
				Costs:     v.costs,
				Qualities: quals,
				Platform:  economics.PlatformCost{Theta: s.Theta, Lambda: s.Lambda},
				Valuation: v.val(w),
				PJBounds:  s.PJBounds,
				PBounds:   s.PBounds,
				MaxTau:    maxTau,
			}
			out, err := game.SolveFlex(f)
			if err != nil {
				return nil, err
			}
			poc[vi].Observe(w, out.ConsumerProfit)
			pop[vi].Observe(w, out.PlatformProfit)
			tau[vi].Observe(w, out.TotalTau)
		}
	}
	collect := func(bs []*stats.SeriesBuilder) []stats.Series {
		out := make([]stats.Series, len(bs))
		for i, b := range bs {
			out[i] = b.Series()
		}
		return out
	}
	return []Figure{
		{ID: "ext-families-a", Title: "consumer profit vs omega across economics families", XLabel: "omega", Series: collect(poc)},
		{ID: "ext-families-b", Title: "platform profit vs omega across economics families", XLabel: "omega", Series: collect(pop)},
		{ID: "ext-families-c", Title: "total sensing time vs omega across economics families", XLabel: "omega", Series: collect(tau)},
	}, nil
}
