package experiment

import (
	"context"

	"cmabhs/internal/bandit"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// ExtNonStationary probes the paper's fixed-quality assumption
// (Def. 3 Remark): sellers' expected qualities shift abruptly —
// phase A's ranking is inverted in phase B, switching every
// N/8 rounds — and the policies compete on regret against the
// per-round dynamic oracle. Compared: the paper's cumulative
// extended UCB, the sliding-window and discounted variants built for
// this regime, and random selection.
//
// The headline finding (recorded in EXPERIMENTS.md) is a negative
// result for the specialist policies at CDT scales: the paper's wide
// (K+1)·ln(Σn) confidence makes cumulative UCB re-explore
// aggressively enough to track regime shifts on its own.
func ExtNonStationary(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	xs := make([]float64, len(SweepN))
	for i, n := range SweepN {
		xs[i] = float64(s.scaled(n))
	}
	names := []string{"CMAB-HS", "sw-ucb", "d-ucb", "random"}
	reps := s.reps()
	type cell struct {
		x      float64
		policy int
		regret float64
		ok     bool
	}
	cells := make([]cell, len(xs)*reps*len(names))
	err := s.forEachCell(ctx, len(cells), func(ctx context.Context, idx int) error {
		xi := idx / (reps * len(names))
		rep := (idx / len(names)) % reps
		pol := idx % len(names)
		horizon := int(xs[xi])
		src := rng.New(s.Seed).Split(int64(xi*18839 + rep))
		inst := s.NewInstance(src, s.M, s.K, horizon)

		// Replace the stationary model with a two-phase shifting one:
		// phase B inverts phase A's quality ranking.
		up := make([]float64, s.M)
		down := make([]float64, s.M)
		for i := range up {
			up[i] = s.QRange.Draw(src.Split(int64(i)))
		}
		// down[i] gets the quality of the "mirror" seller: the phase
		// switch inverts the ranking.
		for i := range down {
			down[i] = up[s.M-1-i]
		}
		switchEvery := horizon / 8
		if switchEvery < 2 {
			switchEvery = 2
		}
		model, err := quality.NewShifting([][]float64{up, down}, switchEvery, s.SD, src.Split(0x5f))
		if err != nil {
			return err
		}
		inst.Config.Market.Quality = model
		var policy bandit.Policy
		switch pol {
		case 0:
			policy = bandit.UCBGreedy{}
		case 1:
			w := switchEvery / 2
			if w < 10 {
				w = 10
			}
			policy = bandit.NewSlidingWindowUCB(w)
		case 2:
			policy = bandit.NewDiscountedUCB(0.998)
		default:
			policy = bandit.NewRandom(src.Split(0xaa))
		}
		res, err := runMech(ctx, inst.Config, policy)
		if err != nil {
			return err
		}
		cells[idx] = cell{x: xs[xi], policy: pol, regret: res.DynamicRegret, ok: true}
		return nil
	})
	if err != nil {
		return nil, err
	}
	builders := make([]*stats.SeriesBuilder, len(names))
	for i, n := range names {
		builders[i] = stats.NewSeriesBuilder(n)
	}
	for _, c := range cells {
		if c.ok {
			builders[c.policy].Observe(c.x, c.regret)
		}
	}
	series := make([]stats.Series, len(names))
	for i := range builders {
		series[i] = builders[i].Series()
	}
	return []Figure{{
		ID:     "ext-nonstationary",
		Title:  "dynamic regret vs N under abrupt quality shifts (extension)",
		XLabel: "N",
		Series: series,
	}}, nil
}
