package experiment

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmabhs/internal/stats"
)

// testSettings returns a drastically scaled-down configuration so the
// whole suite stays fast; shape assertions still hold at this scale.
func testSettings() Settings {
	s := Defaults()
	s.M = 20
	s.K = 3
	s.L = 3
	s.Scale = 1000 // N sweep becomes {5, 40, 80, 100, 120, 160, 200}
	s.Workers = 4
	s.Seed = 42
	return s
}

func seriesByName(figs []Figure, figID, name string) (stats.Series, bool) {
	for _, f := range figs {
		if f.ID != figID {
			continue
		}
		for _, s := range f.Series {
			if s.Name == name {
				return s, true
			}
		}
	}
	return stats.Series{}, false
}

func lastY(s stats.Series) float64 { return s.Points[len(s.Points)-1].Y }

func TestSettingsValidate(t *testing.T) {
	s := Defaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := Defaults()
	bad.K = bad.M + 1
	if err := bad.Validate(); err == nil {
		t.Error("K > M should fail")
	}
	bad = Defaults()
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Error("N = 0 should fail")
	}
}

func TestScaledFloorsAtTwo(t *testing.T) {
	s := Defaults()
	s.Scale = 1_000_000
	if got := s.scaled(5000); got != 2 {
		t.Errorf("scaled = %d", got)
	}
	s.Scale = 0
	if got := s.scaled(5000); got != 5000 {
		t.Errorf("unscaled = %d", got)
	}
}

func TestFig7And8ShapesAndOrdering(t *testing.T) {
	s := testSettings()
	figs, err := Fig7And8(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"fig7a", "fig7b", "fig8a", "fig8b", "fig8c"}
	if len(figs) != len(wantIDs) {
		t.Fatalf("got %d figures", len(figs))
	}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d id %q, want %q", i, f.ID, wantIDs[i])
		}
	}
	// Revenue at the largest N: optimal ≥ CMAB-HS > random.
	opt, _ := seriesByName(figs, "fig7a", "optimal")
	ucb, _ := seriesByName(figs, "fig7a", "CMAB-HS")
	rnd, _ := seriesByName(figs, "fig7a", "random")
	if len(opt.Points) != 7 {
		t.Fatalf("sweep has %d points", len(opt.Points))
	}
	if !(lastY(opt) >= lastY(ucb) && lastY(ucb) > lastY(rnd)) {
		t.Errorf("revenue ordering violated: opt=%v ucb=%v random=%v", lastY(opt), lastY(ucb), lastY(rnd))
	}
	// Regret: optimal ≈ 0, CMAB-HS < random; both grow with N.
	optR, _ := seriesByName(figs, "fig7b", "optimal")
	ucbR, _ := seriesByName(figs, "fig7b", "CMAB-HS")
	rndR, _ := seriesByName(figs, "fig7b", "random")
	if lastY(optR) != 0 {
		t.Errorf("optimal regret %v", lastY(optR))
	}
	if !(lastY(ucbR) < lastY(rndR)) {
		t.Errorf("CMAB-HS regret %v not below random %v", lastY(ucbR), lastY(rndR))
	}
	if !(rndR.Points[len(rndR.Points)-1].Y > rndR.Points[0].Y) {
		t.Error("random regret should grow with N")
	}
	// Δ-PoC of CMAB-HS stays below random's at the largest N.
	dUCB, ok := seriesByName(figs, "fig8a", "CMAB-HS")
	if !ok {
		t.Fatal("fig8a missing CMAB-HS")
	}
	dRnd, _ := seriesByName(figs, "fig8a", "random")
	if !(lastY(dUCB) <= lastY(dRnd)) {
		t.Errorf("Δ-PoC ordering violated: ucb=%v random=%v", lastY(dUCB), lastY(dRnd))
	}
}

func TestFig9And10Shapes(t *testing.T) {
	s := testSettings()
	s.Scale = 2000 // horizon 50
	figs, err := Fig9And10(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 || figs[0].ID != "fig9a" || figs[4].ID != "fig10c" {
		t.Fatalf("figure ids: %v, %v...", figs[0].ID, figs[1].ID)
	}
	opt, _ := seriesByName(figs, "fig9a", "optimal")
	if len(opt.Points) != len(SweepM) {
		t.Fatalf("M sweep has %d points", len(opt.Points))
	}
	// Revenue ordering at the largest M.
	ucb, _ := seriesByName(figs, "fig9a", "CMAB-HS")
	rnd, _ := seriesByName(figs, "fig9a", "random")
	if !(lastY(opt) >= lastY(ucb) && lastY(ucb) > lastY(rnd)) {
		t.Errorf("revenue ordering at M=300: opt=%v ucb=%v rnd=%v", lastY(opt), lastY(ucb), lastY(rnd))
	}
}

func TestFig11And12Shapes(t *testing.T) {
	s := testSettings()
	s.M = 80 // allow K ∈ {10..60}
	s.Scale = 2000
	figs, err := Fig11And12(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("got %d figures", len(figs))
	}
	// Revenue increases with K for every policy (more sellers => more
	// collected quality).
	for _, name := range PolicyNames {
		ser, ok := seriesByName(figs, "fig11a", name)
		if !ok {
			t.Fatalf("fig11a missing %s", name)
		}
		if !(lastY(ser) > ser.Points[0].Y) {
			t.Errorf("%s revenue should grow with K: first=%v last=%v", name, ser.Points[0].Y, lastY(ser))
		}
	}
	// Average per-seller profit decreases with K (Fig. 12c).
	pos, ok := seriesByName(figs, "fig12c", "CMAB-HS")
	if !ok {
		t.Fatal("fig12c missing CMAB-HS")
	}
	if !(lastY(pos) < pos.Points[0].Y) {
		t.Errorf("avg PoS should fall with K: first=%v last=%v", pos.Points[0].Y, lastY(pos))
	}
}

func TestFig13Shapes(t *testing.T) {
	s := testSettings()
	s.K = 10
	figs, err := Fig13(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "fig13a" || figs[1].ID != "fig13b" {
		t.Fatalf("figure ids wrong: %+v", figs)
	}
	if len(figs[0].Series) != 5 {
		t.Fatalf("fig13a has %d series", len(figs[0].Series))
	}
	// Larger ω ⇒ larger peak PoC, and each curve is single-peaked.
	peak := func(s stats.Series) float64 {
		best := s.Points[0].Y
		for _, p := range s.Points {
			if p.Y > best {
				best = p.Y
			}
		}
		return best
	}
	prev := -1.0
	for _, ser := range figs[0].Series {
		p := peak(ser)
		if !(p > prev) {
			t.Errorf("peak PoC should grow with omega: %v then %v", prev, p)
		}
		prev = p
	}
	// fig13b: PoP increases with p^J (platform gains from higher
	// service prices).
	pop, ok := seriesByName(figs, "fig13b", "PoP")
	if !ok {
		t.Fatal("fig13b missing PoP")
	}
	if !(lastY(pop) > pop.Points[0].Y) {
		t.Error("PoP should increase with p^J")
	}
	// PoC is single-peaked: rises then falls.
	poc, _ := seriesByName(figs, "fig13b", "PoC")
	if !(peak(poc) > poc.Points[0].Y && peak(poc) > lastY(poc)) {
		t.Error("PoC should be single-peaked in p^J")
	}
}

func TestFig14Shapes(t *testing.T) {
	s := testSettings()
	s.K = 10
	figs, err := Fig14(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	// Non-deviating sellers' profits are flat (Eq. 5: PoS-i depends
	// only on its own τ_i given fixed prices).
	for _, name := range []string{"PoS-3", "PoS-8"} {
		ser, ok := seriesByName(figs, "fig14b", name)
		if !ok {
			t.Fatalf("fig14b missing %s", name)
		}
		for _, p := range ser.Points {
			if p.Y != ser.Points[0].Y {
				t.Errorf("%s should be constant under seller-6 deviation", name)
				break
			}
		}
	}
	// The deviating seller's profit is single-peaked with an interior max.
	pos6, ok := seriesByName(figs, "fig14b", "PoS-6")
	if !ok {
		t.Fatal("fig14b missing PoS-6")
	}
	bestIdx := 0
	for i, p := range pos6.Points {
		if p.Y > pos6.Points[bestIdx].Y {
			bestIdx = i
		}
	}
	if bestIdx == 0 || bestIdx == len(pos6.Points)-1 {
		t.Errorf("PoS-6 peak at boundary index %d", bestIdx)
	}
}

func TestFig15And16Shapes(t *testing.T) {
	s := testSettings()
	s.K = 10
	figs, err := Fig15And16(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("got %d figures", len(figs))
	}
	// PoC, PoP, PoS-6 decline as a_6 grows; SoC rises; SoS-6 falls.
	poc, _ := seriesByName(figs, "fig15a", "PoC")
	if !(lastY(poc) < poc.Points[0].Y) {
		t.Error("PoC should decline with a_6")
	}
	pos6, _ := seriesByName(figs, "fig15b", "PoS-6")
	if !(lastY(pos6) < pos6.Points[0].Y) {
		t.Error("PoS-6 should decline with a_6")
	}
	soc, _ := seriesByName(figs, "fig16a", "SoC (p^J)")
	if !(lastY(soc) > soc.Points[0].Y) {
		t.Error("SoC should rise with a_6")
	}
	sos6, _ := seriesByName(figs, "fig16b", "SoS-6")
	if !(lastY(sos6) < sos6.Points[0].Y) {
		t.Error("SoS-6 should fall with a_6")
	}
}

func TestFig17And18Shapes(t *testing.T) {
	s := testSettings()
	s.K = 10
	figs, err := Fig17And18(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("got %d figures", len(figs))
	}
	// Profits fall with θ; SoC (p^J) rises; SoP (p) falls; SoS fall.
	poc, _ := seriesByName(figs, "fig17a", "PoC")
	pop, _ := seriesByName(figs, "fig17a", "PoP")
	if !(lastY(poc) < poc.Points[0].Y) || !(lastY(pop) < pop.Points[0].Y) {
		t.Error("PoC and PoP should decline with theta")
	}
	soc, _ := seriesByName(figs, "fig18a", "SoC (p^J)")
	sop, _ := seriesByName(figs, "fig18a", "SoP (p)")
	if !(lastY(soc) > soc.Points[0].Y) {
		t.Error("SoC should rise with theta")
	}
	if !(lastY(sop) < sop.Points[0].Y) {
		t.Error("SoP should fall with theta")
	}
	for _, ser := range figs[3].Series {
		if !(lastY(ser) < ser.Points[0].Y) {
			t.Errorf("%s should fall with theta", ser.Name)
		}
	}
}

func TestAblationUCB(t *testing.T) {
	s := testSettings()
	figs, err := AblationUCB(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Series) != 5 {
		t.Fatalf("shape: %d figs", len(figs))
	}
	opt, _ := seriesByName(figs, "ablation-ucb", "optimal")
	if lastY(opt) != 0 {
		t.Errorf("oracle regret %v", lastY(opt))
	}
}

func TestAblationExplore(t *testing.T) {
	s := testSettings()
	figs, err := AblationExplore(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Series) != 2 {
		t.Fatal("shape wrong")
	}
	for _, ser := range figs[0].Series {
		if len(ser.Points) != 7 {
			t.Errorf("%s has %d points", ser.Name, len(ser.Points))
		}
	}
}

func TestAblationSolver(t *testing.T) {
	s := testSettings()
	s.M = 80
	figs, err := AblationSolver(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	gap, ok := seriesByName(figs, "ablation-solver", "relative gap")
	if !ok {
		t.Fatal("missing relative gap series")
	}
	// The exact solver's platform plays its true best response, which
	// can cut either way for the consumer relative to the closed
	// form's inconsistent price — but the gap must stay small.
	for _, p := range gap.Points {
		if p.Y < -0.2 || p.Y > 0.2 {
			t.Errorf("solver gap too large at K=%v: %v", p.X, p.Y)
		}
	}
}

func TestRegistry(t *testing.T) {
	if _, ok := Find("fig13"); !ok {
		t.Error("fig13 not registered")
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus id found")
	}
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Errorf("IDs() returned %d, registry has %d", len(ids), len(Registry))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("IDs not sorted")
		}
	}
}

func TestRunAndRender(t *testing.T) {
	var sb strings.Builder
	if err := RunAndRender(context.Background(), &sb, "settings", testSettings()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Error("settings table missing title")
	}
	sb.Reset()
	s := testSettings()
	s.K = 10
	if err := RunAndRender(context.Background(), &sb, "fig13", s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "fig13a") || !strings.Contains(out, "fig13b") {
		t.Errorf("rendered output missing figures:\n%s", out[:min(400, len(out))])
	}
	if err := RunAndRender(context.Background(), &sb, "bogus", testSettings()); err == nil {
		t.Error("unknown id should error")
	}
}

func TestSettingsTableRenders(t *testing.T) {
	var sb strings.Builder
	if err := SettingsTable(Defaults()).Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"number of rounds N", "theta", "omega"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("settings table missing %q", want)
		}
	}
}

func TestExtAggregation(t *testing.T) {
	s := testSettings()
	figs, err := ExtAggregation(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Series) != len(PolicyNames) {
		t.Fatalf("shape: %d figs", len(figs))
	}
	// Quality-aware selection yields lower statistics error than
	// random at the largest horizon.
	opt, _ := seriesByName(figs, "ext-aggregation", "optimal")
	rnd, _ := seriesByName(figs, "ext-aggregation", "random")
	if !(lastY(opt) < lastY(rnd)) {
		t.Errorf("optimal RMSE %v should beat random %v", lastY(opt), lastY(rnd))
	}
	for _, ser := range figs[0].Series {
		for _, p := range ser.Points {
			if !(p.Y > 0) {
				t.Fatalf("%s has non-positive RMSE %v", ser.Name, p.Y)
			}
		}
	}
}

func TestExtChurn(t *testing.T) {
	s := testSettings()
	s.Scale = 1000
	figs, err := ExtChurn(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("figs %d", len(figs))
	}
	ucb, ok := seriesByName(figs, "ext-churn", "CMAB-HS")
	if !ok {
		t.Fatal("missing CMAB-HS series")
	}
	if len(ucb.Points) != 6 {
		t.Fatalf("churn sweep has %d points", len(ucb.Points))
	}
	// Which sellers depart is random, so at smoke scale the regret
	// ordering across churn levels is noisy; assert the runs complete
	// with sane (finite, non-negative) regret everywhere instead.
	for _, ser := range figs[0].Series {
		if len(ser.Points) != 6 {
			t.Fatalf("%s has %d points", ser.Name, len(ser.Points))
		}
		for _, p := range ser.Points {
			if p.Y < 0 || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				t.Fatalf("%s regret %v at churn %v", ser.Name, p.Y, p.X)
			}
		}
	}
}

func TestExtNonStationary(t *testing.T) {
	s := testSettings()
	figs, err := ExtNonStationary(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Series) != 4 {
		t.Fatalf("shape: %d figs", len(figs))
	}
	// Every learning policy's dynamic regret beats random at the
	// largest horizon; all values are finite and non-negative.
	rnd, ok := seriesByName(figs, "ext-nonstationary", "random")
	if !ok {
		t.Fatal("missing random series")
	}
	for _, name := range []string{"CMAB-HS", "sw-ucb", "d-ucb"} {
		ser, ok := seriesByName(figs, "ext-nonstationary", name)
		if !ok {
			t.Fatalf("missing %s series", name)
		}
		if !(lastY(ser) < lastY(rnd)) {
			t.Errorf("%s dynamic regret %v should beat random %v", name, lastY(ser), lastY(rnd))
		}
		for _, p := range ser.Points {
			if p.Y < 0 || math.IsNaN(p.Y) {
				t.Fatalf("%s regret %v at N=%v", name, p.Y, p.X)
			}
		}
	}
}

func TestExtAuction(t *testing.T) {
	s := testSettings()
	figs, err := ExtAuction(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Series) != 6 {
		t.Fatalf("shape: %d figs", len(figs))
	}
	// Both mechanisms trade profitably at the largest horizon, and
	// the Stackelberg consumer profit beats the auction's (the
	// auction's truthfulness premium goes to sellers and the fixed
	// unit sensing time caps the surplus).
	pocHS, _ := seriesByName(figs, "ext-auction", "PoC CMAB-HS")
	pocAu, _ := seriesByName(figs, "ext-auction", "PoC auction")
	if !(lastY(pocHS) > 0 && lastY(pocAu) > 0) {
		t.Errorf("consumer profits should be positive: HS=%v auction=%v", lastY(pocHS), lastY(pocAu))
	}
	if !(lastY(pocHS) > lastY(pocAu)) {
		t.Errorf("Stackelberg PoC %v should beat auction PoC %v", lastY(pocHS), lastY(pocAu))
	}
	// Auction seller rents are non-negative (individual rationality).
	posAu, _ := seriesByName(figs, "ext-auction", "PoS auction")
	for _, p := range posAu.Points {
		if p.Y < -1e-9 {
			t.Errorf("auction seller rent %v at N=%v violates IR", p.Y, p.X)
		}
	}
}

func TestExtFamilies(t *testing.T) {
	s := testSettings()
	s.K = 10
	figs, err := ExtFamilies(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("figs %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 3 {
			t.Fatalf("%s has %d series", f.ID, len(f.Series))
		}
		for _, ser := range f.Series {
			if len(ser.Points) != 5 {
				t.Fatalf("%s/%s has %d points", f.ID, ser.Name, len(ser.Points))
			}
		}
	}
	// The paper's family trades profitably and PoC grows with omega.
	poc, ok := seriesByName(figs, "ext-families-a", "PoC quad+log (paper)")
	if !ok {
		t.Fatal("missing paper-family PoC")
	}
	if !(poc.Points[0].Y > 0 && lastY(poc) > poc.Points[0].Y) {
		t.Errorf("paper-family PoC should be positive and grow with omega: %v → %v",
			poc.Points[0].Y, lastY(poc))
	}
	// Every variant trades at the largest omega.
	for _, name := range []string{"PoC piecewise+log", "PoC quad+cobb-douglas"} {
		ser, ok := seriesByName(figs, "ext-families-a", name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if !(lastY(ser) > 0) {
			t.Errorf("%s should trade profitably at omega=1400: %v", name, lastY(ser))
		}
	}
}

func TestFig4To6(t *testing.T) {
	figs, err := Fig4To6(context.Background(), testSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("figs %d", len(figs))
	}
	// Round 1 selects all three sellers; later rounds exactly two.
	sel := figs[0].Series
	if len(sel) != 3 {
		t.Fatalf("selection series %d", len(sel))
	}
	for _, ser := range sel {
		if ser.Points[0].Y != 1 {
			t.Errorf("%s not selected in round 1", ser.Name)
		}
	}
	for round := 1; round < 10; round++ {
		count := 0.0
		for _, ser := range sel {
			count += ser.Points[round].Y
		}
		if count != 2 {
			t.Errorf("round %d selected %v sellers, want 2", round+1, count)
		}
	}
	// Round 1 pays p_max = 5 (Fig. 4's p¹*).
	pStar, _ := seriesByName(figs, "fig4-6b", "p*")
	if pStar.Points[0].Y != 5 {
		t.Errorf("round-1 collection price %v, want 5", pStar.Points[0].Y)
	}
	// Learned qualities land near the truth.
	est, _ := seriesByName(figs, "fig4-6d", "learned q̄")
	truth, _ := seriesByName(figs, "fig4-6d", "true q")
	for i := range est.Points {
		if math.Abs(est.Points[i].Y-truth.Points[i].Y) > 0.15 {
			t.Errorf("seller %d estimate %v far from truth %v", i+1, est.Points[i].Y, truth.Points[i].Y)
		}
	}
}

// TestShippedBaselines: the baselines committed in baselines/ load
// and compare clean against a fresh same-seed run — the repo's own
// regression check.
func TestShippedBaselines(t *testing.T) {
	cases := []struct {
		file, exp string
		scale     int
	}{
		{"fig13.json", "fig13", 1},
		{"fig15-16.json", "fig15-16", 1},
		{"fig17-18.json", "fig17-18", 1},
	}
	for _, tc := range cases {
		f, err := os.Open(filepath.Join("..", "..", "baselines", tc.file))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		baseline, err := LoadFigures(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		s := Defaults()
		s.Scale = tc.scale
		exp, ok := Find(tc.exp)
		if !ok {
			t.Fatalf("experiment %s missing", tc.exp)
		}
		fresh, err := exp.Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := CompareFigures(baseline, fresh, CompareOptions{}); len(diffs) != 0 {
			t.Errorf("%s: %v", tc.file, diffs)
		}
	}
}
