package experiment

import (
	"context"
	"fmt"

	"cmabhs/internal/bandit"
	"cmabhs/internal/economics"
	"cmabhs/internal/game"
	"cmabhs/internal/numutil"
	"cmabhs/internal/rng"
	"cmabhs/internal/stats"
)

// This file implements the ablation studies DESIGN.md §6 calls out:
// the extended-UCB confidence width vs. classic UCB1 (and the
// Thompson/ε-greedy extensions), the initial full-exploration round
// vs. cold start, and the closed-form game solver vs. the exact
// kinked-curve solver.

// AblationUCB compares bandit indices/policies on regret over the N
// sweep: extended UCB (Eq. 19), classic UCB1, Thompson sampling, and
// ε-greedy, plus the oracle floor.
func AblationUCB(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	names := []string{"optimal", "CMAB-HS", "UCB1", "thompson", "0.10-greedy"}
	mk := func(inst *Instance, src *rng.Source, idx int) bandit.Policy {
		switch idx {
		case 0:
			return bandit.NewOracle(inst.Means)
		case 1:
			return bandit.UCBGreedy{}
		case 2:
			return bandit.UCB1Greedy{}
		case 3:
			return bandit.NewThompson(src.Split(0x7))
		default:
			return bandit.NewEpsilonGreedy(0.1, src.Split(0x8))
		}
	}
	xs := make([]float64, len(SweepN))
	for i, n := range SweepN {
		xs[i] = float64(s.scaled(n))
	}
	reps := s.reps()
	type cell struct {
		x      float64
		policy int
		regret float64
		ok     bool
	}
	cells := make([]cell, len(xs)*reps*len(names))
	err := s.forEachCell(ctx, len(cells), func(ctx context.Context, idx int) error {
		xi := idx / (reps * len(names))
		rep := (idx / len(names)) % reps
		pol := idx % len(names)
		horizon := int(xs[xi])
		src := rng.New(s.Seed).Split(int64(xi*104729 + rep))
		inst := s.NewInstance(src, s.M, s.K, horizon)
		res, err := runMech(ctx, inst.Config, mk(inst, src, pol))
		if err != nil {
			return fmt.Errorf("ablation-ucb x=%v policy=%s: %w", xs[xi], names[pol], err)
		}
		cells[idx] = cell{x: xs[xi], policy: pol, regret: res.Regret, ok: true}
		return nil
	})
	if err != nil {
		return nil, err
	}
	builders := make([]*stats.SeriesBuilder, len(names))
	for i, n := range names {
		builders[i] = stats.NewSeriesBuilder(n)
	}
	for _, c := range cells {
		if c.ok {
			builders[c.policy].Observe(c.x, c.regret)
		}
	}
	series := make([]stats.Series, len(names))
	for i := range names {
		series[i] = builders[i].Series()
	}
	return []Figure{{
		ID:     "ablation-ucb",
		Title:  "regret vs N across bandit indices",
		XLabel: "N",
		Series: series,
	}}, nil
}

// AblationExplore compares the mechanism with and without Algorithm
// 1's initial full-exploration round.
func AblationExplore(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	xs := make([]float64, len(SweepN))
	for i, n := range SweepN {
		xs[i] = float64(s.scaled(n))
	}
	names := []string{"with initial exploration", "cold start"}
	reps := s.reps()
	builders := []*stats.SeriesBuilder{stats.NewSeriesBuilder(names[0]), stats.NewSeriesBuilder(names[1])}
	type cell struct {
		x      float64
		regret float64
		ok     bool
	}
	cells := make([]cell, len(xs)*reps*2)
	err := s.forEachCell(ctx, len(cells), func(ctx context.Context, idx int) error {
		xi := idx / (reps * 2)
		rep := (idx / 2) % reps
		cold := idx%2 == 1
		horizon := int(xs[xi])
		src := rng.New(s.Seed).Split(int64(xi*31337 + rep))
		inst := s.NewInstance(src, s.M, s.K, horizon)
		inst.Config.ColdStart = cold
		res, err := runMech(ctx, inst.Config, bandit.UCBGreedy{})
		if err != nil {
			return err
		}
		cells[idx] = cell{x: xs[xi], regret: res.Regret, ok: true}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for idx, c := range cells {
		if c.ok {
			builders[idx%2].Observe(c.x, c.regret)
		}
	}
	return []Figure{{
		ID:     "ablation-explore",
		Title:  "regret vs N with/without the initial exploration round",
		XLabel: "N",
		Series: []stats.Series{builders[0].Series(), builders[1].Series()},
	}}, nil
}

// AblationSolver compares the closed-form game solver against the
// exact kinked-curve solver across the K sweep: per-round consumer
// and platform profit at equilibrium, on the fixed game instance
// family of Figs. 13–18.
func AblationSolver(ctx context.Context, s Settings) ([]Figure, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(s.Seed).Split(0x50)
	kGrid := SweepK
	phiClosed := stats.NewSeriesBuilder("PoC closed-form")
	phiExact := stats.NewSeriesBuilder("PoC exact")
	gapB := stats.NewSeriesBuilder("relative gap")
	for _, k := range kGrid {
		if k > s.M {
			continue
		}
		for rep := 0; rep < s.reps()*8; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sub := src.Split(int64(k*1000 + rep))
			p := &game.Params{
				Platform: economics.PlatformCost{Theta: s.Theta, Lambda: s.Lambda},
				Consumer: economics.Valuation{Omega: s.Omega},
				PJBounds: s.PJBounds,
				PBounds:  s.PBounds,
			}
			for i := 0; i < k; i++ {
				p.Sellers = append(p.Sellers, economics.SellerCost{
					A: s.ARange.Draw(sub),
					B: s.BRange.Draw(sub),
				})
				p.Qualities = append(p.Qualities, sub.Uniform(0.05, 1))
			}
			closed, err := game.Solve(p)
			if err != nil {
				return nil, err
			}
			exact, err := game.SolveExact(p)
			if err != nil {
				return nil, err
			}
			phiClosed.Observe(float64(k), closed.ConsumerProfit)
			phiExact.Observe(float64(k), exact.ConsumerProfit)
			denom := numutil.Clamp(exact.ConsumerProfit, 1e-9, 1e18)
			gapB.Observe(float64(k), (exact.ConsumerProfit-closed.ConsumerProfit)/denom)
		}
	}
	return []Figure{
		{
			ID:     "ablation-solver",
			Title:  "equilibrium consumer profit: closed-form vs exact solver",
			XLabel: "K",
			Series: []stats.Series{phiClosed.Series(), phiExact.Series(), gapB.Series()},
		},
	}, nil
}
