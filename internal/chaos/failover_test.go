package chaos

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cmabhs/internal/server"
)

// failoverClock is the one fake clock every broker and store handle in
// a failover test shares, so lease expiry is driven by the test, not
// the wall.
type failoverClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *failoverClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *failoverClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// failoverTTL is deliberately long: the test's clock is frozen between
// explicit advances, so no renewal loop needs to run mid-leg.
const failoverTTL = time.Minute

// bootNode starts one cluster node over the shared state dir: its own
// WALStore handle, the static two-node topology, and the shared clock.
// LoadAll is the real boot path — a successor adopting a lapsed peer's
// jobs happens right here, exactly as a restarted production node
// would do it.
func bootNode(t *testing.T, dir, nodeID string, clk *failoverClock) (*server.Server, *server.WALStore) {
	t.Helper()
	ws, err := server.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ws.SetNow(clk.Now)
	s := server.New()
	s.Store = ws
	s.CompactEvery = 16
	s.Cluster = &server.Cluster{
		NodeID: nodeID,
		Peers: []server.Peer{
			{ID: "a", URL: "http://node-a.invalid"},
			{ID: "b", URL: "http://node-b.invalid"},
		},
		LeaseTTL: failoverTTL,
		Now:      clk.Now,
	}
	if err := s.ValidateCluster(); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadAll(); err != nil {
		t.Fatal(err)
	}
	return s, ws
}

// finalStatus fetches a job's final status and strips everything that
// legitimately differs between a single-node control run and a
// clustered run — the node-namespaced id, the id-bearing links, the
// lease block, and wall-clock metrics. What remains is the model
// result, which must be bit-identical.
func finalStatus(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"metrics", "id", "links", "lease"} {
		delete(st, k)
	}
	out, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFailoverKillPointsBitIdentical is the multi-node chaos check:
// the owning node of a kitchen-sink-faults job is crashed (no SaveAll,
// no lease release, sometimes a torn WAL tail) at several points; each
// time, the surviving peer boots over the shared directory, steals the
// lease at a higher epoch, and resumes from snapshot + WAL tail. The
// final result after four ownership changes must be byte-identical to
// an uninterrupted single-node control run, and every resume must be
// exactly-once — never ahead of the rounds actually played, never back
// at job creation.
func TestFailoverKillPointsBitIdentical(t *testing.T) {
	ctrl := server.New()
	ctrlID := createJob(t, ctrl.Handler(), kitchenSinkJob)
	want := finalStatus(t, ctrl.Handler(), advanceTo(t, ctrl.Handler(), ctrlID, 60))

	clk := &failoverClock{t: time.Unix(1_700_000_000, 0)}
	dir := t.TempDir()
	s, ws := bootNode(t, dir, "a", clk)
	id := createJob(t, s.Handler(), kitchenSinkJob)
	if id != "job-a-1" {
		t.Fatalf("clustered job id %q", id)
	}

	// Kill schedule: (rounds before the crash, WAL tail bytes torn,
	// successor node). Owners alternate a→b→a→b→a; leg 3 lands right
	// after a compaction, leg 4 tears deep enough to eat whole records.
	schedule := []struct {
		rounds, tear int
		successor    string
	}{
		{12, 0, "b"},
		{9, 7, "a"},
		{17, 0, "b"},
		{8, 300, "a"},
	}

	played := 0
	var lastEpoch int64 = 1
	for i, k := range schedule {
		advanceN(t, s.Handler(), id, k.rounds)
		played += k.rounds

		// Crash: handles dropped, nothing saved, nothing released.
		ws.Close()
		if k.tear > 0 {
			path := filepath.Join(dir, id+".wal")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			hdr := bytes.IndexByte(data, '\n') + 1
			tear := k.tear
			if tail := len(data) - hdr; tear > tail {
				tear = tail
			}
			if tear > 0 {
				if err := os.Truncate(path, int64(len(data)-tear)); err != nil {
					t.Fatal(err)
				}
			}
		}

		// The lease must first lapse; only then may the successor steal.
		clk.Advance(failoverTTL + 2*time.Second)
		s, ws = bootNode(t, dir, k.successor, clk)

		st := jobStatus(t, s, id)
		if st.Lease == nil || st.Lease.Owner != k.successor || st.Lease.Epoch <= lastEpoch {
			t.Fatalf("kill %d: successor lease %+v (last epoch %d)", i, st.Lease, lastEpoch)
		}
		lastEpoch = st.Lease.Epoch
		if st.NextRound > played+1 {
			t.Fatalf("kill %d: resumed AHEAD of play: next_round %d > %d", i, st.NextRound, played+1)
		}
		if st.NextRound <= 1 {
			t.Fatalf("kill %d: resume fell back to job creation", i)
		}
		if k.tear == 0 && st.NextRound != played+1 {
			t.Fatalf("kill %d: clean crash lost rounds: next_round %d, want %d", i, st.NextRound, played+1)
		}
		// Re-play whatever a torn tail lost, so each leg starts level
		// with the control.
		if lost := played + 1 - st.NextRound; lost > 0 {
			advanceN(t, s.Handler(), id, lost)
		}
	}

	got := finalStatus(t, s.Handler(), advanceTo(t, s.Handler(), id, 60-played))
	if !bytes.Equal(want, got) {
		t.Fatalf("failover run diverged from control:\nclean    %s\nfailover %s", want, got)
	}
	ws.Close()
}

// advanceTo drives the job forward and hands the id back, so calls
// compose with finalStatus.
func advanceTo(t *testing.T, h http.Handler, id string, rounds int) string {
	t.Helper()
	advanceN(t, h, id, rounds)
	return id
}

// TestFailoverGracefulHandoff is the planned-maintenance half: the
// owner snapshots, releases its leases, and goes away cleanly; the
// peer adopts the job IMMEDIATELY — no TTL wait, no clock advance —
// and the run completes bit-identically.
func TestFailoverGracefulHandoff(t *testing.T) {
	ctrl := server.New()
	ctrlID := createJob(t, ctrl.Handler(), kitchenSinkJob)
	want := finalStatus(t, ctrl.Handler(), advanceTo(t, ctrl.Handler(), ctrlID, 60))

	clk := &failoverClock{t: time.Unix(1_700_000_000, 0)}
	dir := t.TempDir()
	s, ws := bootNode(t, dir, "a", clk)
	id := createJob(t, s.Handler(), kitchenSinkJob)
	advanceN(t, s.Handler(), id, 25)

	// Graceful shutdown, exactly the cdt-server sequence: snapshot,
	// then release, then close.
	if err := s.SaveAll(); err != nil {
		t.Fatal(err)
	}
	s.ReleaseOwnedLeases()
	ws.Close()

	// The peer picks the job up with the clock UNTOUCHED.
	s, ws = bootNode(t, dir, "b", clk)
	defer ws.Close()
	st := jobStatus(t, s, id)
	if st.Lease == nil || st.Lease.Owner != "b" {
		t.Fatalf("handoff lease: %+v", st.Lease)
	}
	if st.NextRound != 26 {
		t.Fatalf("handoff resumed at %d, want 26", st.NextRound)
	}
	got := finalStatus(t, s.Handler(), advanceTo(t, s.Handler(), id, 35))
	if !bytes.Equal(want, got) {
		t.Fatalf("handoff run diverged from control:\nclean   %s\nhandoff %s", want, got)
	}
}
