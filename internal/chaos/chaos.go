// Package chaos is the crash-recovery soak harness of the CDT stack.
// It runs trading jobs under active fault injection (bursty delivery
// channels, Poisson churn, stragglers, Byzantine corruption), kills
// them mid-flight through a full snapshot encode/decode, resumes into
// a fresh mechanism, and asserts two properties at every step:
//
//  1. Invariants — money conservation on the ledger, consumer-spend
//     consistency, quality estimates inside [0, 1], and round
//     accounting — hold at every crash point and at the end.
//  2. Equivalence — the interrupted run's final result is
//     bit-identical to an uninterrupted control run, faults and all.
//
// The short versions of these checks run in ordinary `go test`; the
// long soak (more seeds, longer horizons, denser kill schedules) is
// gated behind the -soak flag wired up in the package's tests.
package chaos

import (
	"fmt"
	"math"

	"cmabhs/internal/bandit"
	"cmabhs/internal/core"
	"cmabhs/internal/economics"
	"cmabhs/internal/faults"
	"cmabhs/internal/game"
	"cmabhs/internal/ledger"
	"cmabhs/internal/market"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
)

// Scenario describes one soak run: a randomly drawn market plus the
// fault models active during it. The same Scenario value always
// builds the same world, so a control run and a kill/resume run can
// be compared bit-for-bit.
type Scenario struct {
	M, K, Rounds int
	PoIs         int
	Seed         int64
	// Faults is the fault layer; nil runs a clean market.
	Faults *faults.Config
	// DeliveryRate enables the legacy i.i.d. delivery path instead
	// of (not alongside) Faults.Delivery. 0 means always deliver.
	DeliveryRate float64
	// Departures is the scripted departure list (composes with
	// Faults.Churn; earliest wins).
	Departures []int
}

// Config builds the scenario's core configuration. Call it once per
// mechanism: configs hold live quality-model streams and must not be
// shared between runs.
func (s Scenario) Config() *core.Config {
	src := rng.New(s.Seed)
	means := make([]float64, s.M)
	sellers := make([]market.SellerSpec, s.M)
	for i := range means {
		means[i] = src.Uniform(0.05, 0.95)
		sellers[i] = market.SellerSpec{Cost: economics.SellerCost{
			A: src.Uniform(0.1, 0.5),
			B: src.Uniform(0.1, 1),
		}}
	}
	pois := s.PoIs
	if pois == 0 {
		pois = 4
	}
	model, err := quality.NewTruncGaussian(means, 0.1, src.Split(1))
	if err != nil {
		panic(err) // unreachable: means are drawn inside [0, 1]
	}
	var fc *faults.Config
	if s.Faults != nil {
		cp := *s.Faults
		cp.Corruption.Sellers = append([]int(nil), s.Faults.Corruption.Sellers...)
		fc = &cp
	}
	return &core.Config{
		Market: market.Config{
			Job:          market.Job{L: pois, N: s.Rounds},
			Sellers:      sellers,
			Platform:     economics.PlatformCost{Theta: 0.1, Lambda: 1},
			Consumer:     economics.Valuation{Omega: 1000},
			PJBounds:     game.Bounds{Min: 0, Max: 100},
			PBounds:      game.Bounds{Min: 0, Max: 5},
			Quality:      model,
			Faults:       fc,
			DeliveryRate: s.DeliveryRate,
			DeliverySeed: s.Seed ^ 0x7e57,
			Departures:   append([]int(nil), s.Departures...),
		},
		K: s.K,
	}
}

// CheckInvariants validates the cross-layer invariants every CDT run
// must satisfy at any round boundary, crashed or not. It returns the
// first violation found.
func CheckInvariants(m *core.Mechanism) error {
	led := m.Market().Ledger()

	// Money conservation: the ledger double-books every transfer, so
	// the balances of consumer + platform + sellers must sum to ~0.
	if imb := led.TotalImbalance(); math.Abs(imb) > 1e-6 {
		return fmt.Errorf("chaos: ledger imbalance %g", imb)
	}

	// Consumer-spend consistency: the mechanism's compensated spend
	// accumulator and the ledger's view of the consumer account must
	// agree — the consumer's balance is exactly minus what it paid.
	res := m.Result()
	bal := led.Balance(ledger.Consumer)
	if tol := 1e-9 * math.Max(1, res.ConsumerSpend); math.Abs(bal+res.ConsumerSpend) > tol {
		return fmt.Errorf("chaos: consumer balance %g vs spend %g", bal, res.ConsumerSpend)
	}

	// Quality estimates are means of [0, 1] observations — corrupted
	// or not, they must stay in [0, 1] and finite.
	for i, q := range m.Arms().Means() {
		if math.IsNaN(q) || q < 0 || q > 1 {
			return fmt.Errorf("chaos: estimate q̄_%d = %g outside [0, 1]", i, q)
		}
	}

	// Round accounting: every played round was accounted exactly once.
	if res.RoundsPlayed != m.Round()-1 {
		return fmt.Errorf("chaos: played %d rounds but cursor is at %d", res.RoundsPlayed, m.Round())
	}
	return nil
}

// RunClean plays the scenario to completion without interruption and
// returns the final result (the control arm of an equivalence check).
func RunClean(s Scenario, policy bandit.Policy) (*core.Result, error) {
	m, err := core.NewMechanism(s.Config(), policy)
	if err != nil {
		return nil, err
	}
	for !m.Done() {
		if _, err := m.Step(); err != nil {
			return nil, err
		}
	}
	if err := CheckInvariants(m); err != nil {
		return nil, err
	}
	return m.Result(), nil
}

// RunInterrupted plays the scenario, crashing at the end of every
// round listed in kills: the mechanism is snapshotted through a full
// wire encode/decode, discarded, and resumed into a fresh world built
// from the same Scenario. Invariants are checked at every crash point
// and at the end. The policy factory must yield a fresh equivalent
// policy per (re)build, exactly as a restarted process would.
func RunInterrupted(s Scenario, policy func() bandit.Policy, kills []int) (*core.Result, error) {
	m, err := core.NewMechanism(s.Config(), policy())
	if err != nil {
		return nil, err
	}
	next := 0
	for !m.Done() {
		if _, err := m.Step(); err != nil {
			return nil, err
		}
		if next < len(kills) && m.Round()-1 == kills[next] {
			next++
			if err := CheckInvariants(m); err != nil {
				return nil, fmt.Errorf("at kill round %d: %w", m.Round()-1, err)
			}
			data, err := m.Snapshot().Encode()
			if err != nil {
				return nil, err
			}
			st, err := core.DecodeState(data)
			if err != nil {
				return nil, err
			}
			m, err = core.Resume(s.Config(), policy(), st)
			if err != nil {
				return nil, fmt.Errorf("resume at round %d: %w", kills[next-1], err)
			}
			if err := CheckInvariants(m); err != nil {
				return nil, fmt.Errorf("after resume at round %d: %w", kills[next-1], err)
			}
		}
	}
	if err := CheckInvariants(m); err != nil {
		return nil, err
	}
	return m.Result(), nil
}

// Equivalent reports whether two final results are bit-identical on
// every cumulative metric a crash could corrupt. A non-nil error
// names the first field that differs.
func Equivalent(a, b *core.Result) error {
	checks := []struct {
		name string
		x, y float64
	}{
		{"realized revenue", a.RealizedRevenue, b.RealizedRevenue},
		{"expected revenue", a.ExpectedRevenue, b.ExpectedRevenue},
		{"regret", a.Regret, b.Regret},
		{"cum PoC", a.CumPoC, b.CumPoC},
		{"cum PoP", a.CumPoP, b.CumPoP},
		{"cum PoS", a.CumPoS, b.CumPoS},
		{"consumer spend", a.ConsumerSpend, b.ConsumerSpend},
	}
	for _, c := range checks {
		if c.x != c.y {
			return fmt.Errorf("chaos: %s diverged: %g vs %g", c.name, c.x, c.y)
		}
	}
	if a.RoundsPlayed != b.RoundsPlayed {
		return fmt.Errorf("chaos: rounds played diverged: %d vs %d", a.RoundsPlayed, b.RoundsPlayed)
	}
	if a.Stopped != b.Stopped {
		return fmt.Errorf("chaos: stop reason diverged: %q vs %q", a.Stopped, b.Stopped)
	}
	if len(a.Estimates) != len(b.Estimates) {
		return fmt.Errorf("chaos: estimate count diverged: %d vs %d", len(a.Estimates), len(b.Estimates))
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			return fmt.Errorf("chaos: estimate %d diverged: %g vs %g", i, a.Estimates[i], b.Estimates[i])
		}
	}
	for i := range a.SellerTotals {
		if a.SellerTotals[i] != b.SellerTotals[i] {
			return fmt.Errorf("chaos: seller %d total diverged: %g vs %g", i, a.SellerTotals[i], b.SellerTotals[i])
		}
	}
	return nil
}
