package chaos

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cmabhs"
	"cmabhs/internal/bandit"
	"cmabhs/internal/faults"
	"cmabhs/internal/rng"
	"cmabhs/internal/server"
)

// -soak unlocks the long schedule: more seeds, longer horizons,
// denser kill points. The default run keeps the same checks short
// enough for every CI invocation.
var soak = flag.Bool("soak", false, "run the long crash-recovery soak schedule")

// allFaults is the kitchen-sink fault layer: bursty channel, Poisson
// churn, stragglers with a hard deadline, and random Byzantine
// corruption — every live stream the snapshot layer must carry.
func allFaults(seed int64) *faults.Config {
	return &faults.Config{
		Seed: seed,
		Delivery: faults.DeliveryConfig{
			GoodToBad: 0.15, BadToGood: 0.4, LossGood: 0.02, LossBad: 0.6,
		},
		Churn:     faults.ChurnConfig{Rate: 0.004},
		Straggler: faults.StragglerConfig{Prob: 0.1, MeanDelay: 1.5, Deadline: 4},
		Corruption: faults.CorruptionConfig{
			Fraction: 0.25, Mode: faults.CorruptRandom,
		},
	}
}

// runSoak is the core kill/resume equivalence check shared by the
// short and long schedules.
func runSoak(t *testing.T, s Scenario, kills []int) {
	t.Helper()
	policy := func() bandit.Policy { return bandit.UCBGreedy{} }
	ref, err := RunClean(s, policy())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	got, err := RunInterrupted(s, policy, kills)
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if err := Equivalent(ref, got); err != nil {
		t.Fatal(err)
	}
	if ref.RoundsPlayed == 0 {
		t.Fatal("scenario played no rounds; the check proved nothing")
	}
}

// TestCrashRecoveryUnderFaults kills and resumes a mechanism running
// with every fault model active, asserting invariants at every crash
// point and bit-identical equivalence with the uninterrupted control.
func TestCrashRecoveryUnderFaults(t *testing.T) {
	s := Scenario{M: 10, K: 3, Rounds: 60, Seed: 11, Faults: allFaults(101)}
	runSoak(t, s, []int{3, 17, 41})
}

// TestCrashRecoveryCleanMarket is the degenerate case: no faults at
// all. Recovery must be exact there too.
func TestCrashRecoveryCleanMarket(t *testing.T) {
	runSoak(t, Scenario{M: 8, K: 3, Rounds: 40, Seed: 5}, []int{9, 20})
}

// TestCrashRecoveryLegacyFailures covers the pre-fault-layer failure
// paths — scripted departures plus i.i.d. delivery loss — through the
// same kill/resume machinery.
func TestCrashRecoveryLegacyFailures(t *testing.T) {
	s := Scenario{
		M: 9, K: 3, Rounds: 50, Seed: 7,
		DeliveryRate: 0.8,
		Departures:   []int{0, 0, 25, 0, 0, 0, 0, 0, 12},
	}
	runSoak(t, s, []int{6, 30})
}

// TestSoakLong is the long schedule, gated behind -soak: a seed sweep
// with dense kill points over a longer horizon.
func TestSoakLong(t *testing.T) {
	if !*soak {
		t.Skip("short run; pass -soak for the full schedule")
	}
	for seed := int64(1); seed <= 8; seed++ {
		s := Scenario{M: 16, K: 5, Rounds: 400, Seed: seed, Faults: allFaults(seed * 31)}
		var kills []int
		src := rng.New(seed * 977)
		for r := 1; r < s.Rounds; r += 3 + int(src.Float64()*20) {
			kills = append(kills, r)
		}
		runSoak(t, s, kills)
	}
}

// TestSessionKillResume checks the public API layer: a cmabhs.Session
// with faults enabled, saved and resumed mid-run, must finish with a
// result identical to an uninterrupted Run of the same Config.
func TestSessionKillResume(t *testing.T) {
	cfg := cmabhs.RandomConfig(8, 3, 45, 3)
	cfg.Faults = &cmabhs.FaultConfig{
		Channel:   cmabhs.ChannelFaults{GoodToBad: 0.1, BadToGood: 0.5, LossBad: 0.7},
		Churn:     cmabhs.ChurnFaults{Rate: 0.005},
		Byzantine: cmabhs.ByzantineFaults{Fraction: 0.3},
	}
	ref, err := cmabhs.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := cmabhs.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.StepN(12); err != nil {
		t.Fatal(err)
	}
	data, err := sess.Save()
	if err != nil {
		t.Fatal(err)
	}
	sess = nil // the process died here

	resumed, err := cmabhs.ResumeSession(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.StepN(0); err != nil { // to completion
		t.Fatal(err)
	}
	got := resumed.Result()
	if got.Rounds != ref.Rounds || got.Stopped != ref.Stopped {
		t.Fatalf("rounds/stop diverged: %d/%q vs %d/%q", got.Rounds, got.Stopped, ref.Rounds, ref.Stopped)
	}
	if got.RealizedRevenue != ref.RealizedRevenue || got.ConsumerProfit != ref.ConsumerProfit ||
		got.PlatformProfit != ref.PlatformProfit || got.SellerProfit != ref.SellerProfit ||
		got.ConsumerSpend != ref.ConsumerSpend || got.Regret != ref.Regret {
		t.Fatalf("cumulative metrics diverged:\nresumed %+v\nclean   %+v", got, ref)
	}
	for i := range ref.Estimates {
		if got.Estimates[i] != ref.Estimates[i] {
			t.Fatalf("estimate %d diverged: %g vs %g", i, got.Estimates[i], ref.Estimates[i])
		}
	}
}

// TestBrokerKillResume checks the outermost layer: a broker with a
// FileStore is killed (SaveAll + new Server) mid-job and the reloaded
// job must finish identically to one advanced without interruption.
func TestBrokerKillResume(t *testing.T) {
	req := `{"random_sellers":12,"k":4,"rounds":70,"seed":9,` +
		`"faults":{"channel":{"good_to_bad":0.2,"bad_to_good":0.5,"loss_bad":0.8},` +
		`"byzantine":{"fraction":0.25,"mode":"random"}}}`

	// Control: one broker, one uninterrupted advance.
	ctrl := server.New()
	ctrlID := createJob(t, ctrl.Handler(), req)
	want := advanceAll(t, ctrl.Handler(), ctrlID, 70)

	// Crash arm: advance 20 rounds, snapshot to disk, "crash", load
	// into a brand-new broker, finish.
	dir := t.TempDir()
	store, err := server.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := server.New()
	s1.Store = store
	id := createJob(t, s1.Handler(), req)
	advanceN(t, s1.Handler(), id, 20)
	if err := s1.SaveAll(); err != nil {
		t.Fatal(err)
	}

	s2 := server.New()
	s2.Store = store
	if err := s2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	got := advanceAll(t, s2.Handler(), id, 70)

	if !bytes.Equal(want, got) {
		t.Fatalf("broker kill/resume diverged:\nclean   %s\nresumed %s", want, got)
	}
}

// createJob posts a job request and returns the new job id.
func createJob(t *testing.T, h http.Handler, body string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// advanceN advances a job by n rounds.
func advanceN(t *testing.T, h http.Handler, id string, n int) {
	t.Helper()
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(map[string]int{"rounds": n})
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+id+"/advance", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("advance status %d: %s", rec.Code, rec.Body)
	}
}

// advanceAll drives the job to completion and returns the final
// status JSON (the full result, canonical for byte comparison). The
// status envelope's "metrics" block is wall-clock throughput telemetry
// — legitimately different between a clean and a resumed broker — so
// it is stripped before the bytes are compared.
func advanceAll(t *testing.T, h http.Handler, id string, rounds int) []byte {
	t.Helper()
	advanceN(t, h, id, rounds)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	delete(st, "metrics")
	out, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
