package chaos

import (
	"bytes"
	"context"
	"math"
	"testing"

	"cmabhs"
	"cmabhs/internal/bandit"
	"cmabhs/internal/core"
	"cmabhs/internal/telemetry"
	"cmabhs/internal/tracing"
)

// TestObserverBitIdentityUnderFaults is the observer passivity
// contract checked against the chaos harness: a mechanism running
// with every fault model active and a RoundObserver attached must
// stay bit-identical — cumulative metrics, estimates, AND encoded
// snapshots at every round boundary — to the same run unobserved.
func TestObserverBitIdentityUnderFaults(t *testing.T) {
	s := Scenario{M: 10, K: 3, Rounds: 60, Seed: 11, Faults: allFaults(101)}

	ctrl, err := core.NewMechanism(s.Config(), bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	var events []core.RoundEvent
	var failedTotal int
	cfg.Observer = func(ev *core.RoundEvent) {
		failedTotal += len(ev.Failed)
		cp := *ev
		cp.UCB = append([]float64(nil), ev.UCB...) // events are borrowed
		events = append(events, cp)
	}
	obs, err := core.NewMechanism(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}

	for !ctrl.Done() {
		if _, err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := obs.Step(); err != nil {
			t.Fatal(err)
		}
		a, err := ctrl.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := obs.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("snapshots diverged after round %d:\nctrl %s\nobs  %s", ctrl.Round()-1, a, b)
		}
	}
	if !obs.Done() {
		t.Fatal("observed run fell behind the control")
	}
	if err := Equivalent(ctrl.Result(), obs.Result()); err != nil {
		t.Fatal(err)
	}

	// The stream itself must be coherent: one event per played round,
	// UCB indices absent only for the initial exploration, and the
	// lossy channel must actually have produced fault events —
	// otherwise the identity check above proved too little.
	if len(events) != ctrl.Result().RoundsPlayed {
		t.Fatalf("%d events for %d rounds", len(events), ctrl.Result().RoundsPlayed)
	}
	for i, ev := range events {
		if ev.Round != i+1 {
			t.Fatalf("event %d carries round %d", i, ev.Round)
		}
		if i == 0 && ev.UCB != nil {
			t.Fatal("round 1 exploration should carry no UCB indices")
		}
		if i > 0 && len(ev.UCB) != s.M {
			t.Fatalf("round %d carries %d UCB indices, want %d", ev.Round, len(ev.UCB), s.M)
		}
	}
	if failedTotal == 0 {
		t.Fatal("kitchen-sink channel produced no fault events; scenario too tame")
	}
	last := events[len(events)-1]
	if last.Regret <= 0 || last.ExpectedRevenue <= 0 || last.ConsumerSpend <= 0 {
		t.Fatalf("final cumulative event not populated: %+v", last)
	}
}

// TestObserverTracingAndStreamingPassivity is the PR-5 strictness
// upgrade of the passivity contract, extended in PR-10: the observer
// now does real observability work — it records a tracing span per
// round, publishes each event into a bounded stream buffer that
// nobody drains (the slow-SSE-consumer worst case, so publishes drop
// once the buffer fills), AND feeds a telemetry ring recorder sized
// so compaction fires mid-run (the broker's series wiring) — and the
// mechanism must STILL produce encoded snapshots bit-identical to the
// unobserved control at every single round boundary, under every
// fault model at once.
func TestObserverTracingAndStreamingPassivity(t *testing.T) {
	s := Scenario{M: 10, K: 3, Rounds: 60, Seed: 11, Faults: allFaults(101)}

	ctrl, err := core.NewMechanism(s.Config(), bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}

	tr := tracing.NewSeeded(77, 8)
	ctx, root := tr.StartSpan(context.Background(), "chaos run")
	stream := make(chan int, 4) // bounded and never drained, like a stalled SSE client
	dropped := 0
	series := telemetry.NewRecorder(16) // small ring: downsampling must trigger over 60 rounds
	cfg := s.Config()
	cfg.Observer = func(ev *core.RoundEvent) {
		_, sp := tr.StartSpan(ctx, "round")
		sp.SetAttr("round", ev.Round)
		sp.SetAttr("failed", len(ev.Failed))
		sp.End()
		series.Record(telemetry.Point{
			Round:   ev.Round,
			Regret:  ev.Regret,
			Revenue: ev.ExpectedRevenue,
			Spend:   ev.ConsumerSpend,
			NoTrade: ev.Record.NoTrade,
			Failed:  len(ev.Failed),
		})
		select {
		case stream <- ev.Round:
		default:
			dropped++
		}
	}
	obs, err := core.NewMechanism(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}

	rounds := 0
	for !ctrl.Done() {
		if _, err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := obs.Step(); err != nil {
			t.Fatal(err)
		}
		rounds++
		a, err := ctrl.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := obs.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("snapshots diverged after round %d with tracing+streaming attached", rounds)
		}
	}
	root.End()
	if err := Equivalent(ctrl.Result(), obs.Result()); err != nil {
		t.Fatal(err)
	}

	// The observability side did real work, or the identity check
	// proved too little: the stream filled and dropped, and every
	// played round is a recorded span in the trace store.
	if dropped != rounds-cap(stream) {
		t.Fatalf("dropped %d events, want %d (rounds %d past a buffer of %d)",
			dropped, rounds-cap(stream), rounds, cap(stream))
	}
	detail, ok := tr.Store().Trace(root.TraceID().String())
	if !ok {
		t.Fatal("chaos trace not recorded")
	}
	if len(detail.Spans) != rounds+1 { // rounds + the root span
		t.Fatalf("%d spans recorded, want %d rounds + 1 root", len(detail.Spans), rounds)
	}
	// The ring recorder did real work too: it saw every round, it
	// compacted (60 rounds through 16 slots), and the series it kept is
	// coherent — strictly increasing rounds, nondecreasing cumulative
	// regret, newest round retained.
	if series.Rounds() != rounds {
		t.Fatalf("recorder saw %d rounds, want %d", series.Rounds(), rounds)
	}
	if series.Stride() < 2 {
		t.Fatalf("stride %d: compaction never fired, ring proved too little", series.Stride())
	}
	pts, _ := series.Series(0, 0)
	if len(pts) == 0 || len(pts) > 16 {
		t.Fatalf("series kept %d points, want (0,16]", len(pts))
	}
	if pts[len(pts)-1].Round != rounds {
		t.Fatalf("series tail at round %d, want %d", pts[len(pts)-1].Round, rounds)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Round <= pts[i-1].Round {
			t.Fatalf("series rounds not increasing at %d", i)
		}
		if pts[i].Regret < pts[i-1].Regret {
			t.Fatalf("cumulative regret decreased at round %d", pts[i].Round)
		}
	}
}

// TestObserverBitIdentityPublicSession checks the same contract one
// layer up: a cmabhs.Session with an observer attached produces the
// same Result and the same Save bytes as an unobserved one, and a
// resumed session re-instrumented via Observe keeps both properties.
func TestObserverBitIdentityPublicSession(t *testing.T) {
	mk := func() cmabhs.Config {
		cfg := cmabhs.RandomConfig(8, 3, 40, 3)
		cfg.Faults = &cmabhs.FaultConfig{
			Channel:   cmabhs.ChannelFaults{GoodToBad: 0.1, BadToGood: 0.5, LossBad: 0.7},
			Byzantine: cmabhs.ByzantineFaults{Fraction: 0.3},
		}
		return cfg
	}

	ctrl, err := cmabhs.NewSession(mk())
	if err != nil {
		t.Fatal(err)
	}
	obsCfg := mk()
	events := 0
	obsCfg.Observer = func(ev *cmabhs.RoundEvent) {
		events++
		if ev.Round.Round > 1 {
			for _, u := range ev.UCB {
				if !math.IsNaN(u) && u < 0 {
					t.Errorf("negative UCB index %g in round %d", u, ev.Round.Round)
				}
			}
		}
	}
	sess, err := cmabhs.NewSession(obsCfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ctrl.Advance(15); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Advance(15); err != nil {
		t.Fatal(err)
	}
	a, err := ctrl.Save()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Save()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("Save bytes diverged with an observer attached:\nctrl %s\nobs  %s", a, b)
	}

	// Resume the observed arm from its snapshot and re-instrument it.
	resumed, err := cmabhs.ResumeSession(b)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Observe(func(ev *cmabhs.RoundEvent) { events++ })
	if _, err := ctrl.Advance(0); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Advance(0); err != nil {
		t.Fatal(err)
	}
	ref, got := ctrl.Result(), resumed.Result()
	if got.RealizedRevenue != ref.RealizedRevenue || got.Regret != ref.Regret ||
		got.ConsumerProfit != ref.ConsumerProfit || got.ConsumerSpend != ref.ConsumerSpend ||
		got.Rounds != ref.Rounds {
		t.Fatalf("observed resumed run diverged:\nobs  %+v\nctrl %+v", got, ref)
	}
	if events != ref.Rounds {
		t.Fatalf("observer saw %d events over %d rounds", events, ref.Rounds)
	}
}
