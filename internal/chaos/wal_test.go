package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cmabhs/internal/server"
)

// kitchenSinkJob is a job request with every fault model active — the
// hardest state the WAL recovery path has to carry bit-identically.
const kitchenSinkJob = `{"random_sellers":12,"k":4,"rounds":60,"seed":31,` +
	`"faults":{"channel":{"good_to_bad":0.2,"bad_to_good":0.5,"loss_bad":0.8},` +
	`"churn":{"rate":0.004},` +
	`"byzantine":{"fraction":0.25,"mode":"random"}}}`

// walKill models a kill -9: the broker object and its store handles
// are dropped with no SaveAll, and tear bytes are then sliced off the
// end of the job's WAL segment — the torn final line a crash
// mid-append leaves behind. It returns a fresh broker recovered from
// the directory.
func walKill(t *testing.T, ws *server.WALStore, dir, id string, tear int) (*server.Server, *server.WALStore) {
	t.Helper()
	ws.Close()
	if tear > 0 {
		// A crash can only tear un-synced tail bytes of the last
		// append; the header and every previously fsynced record are
		// durable. Clamp the tear to the record region so the injected
		// fault stays inside what a real kill -9 can produce (a
		// compaction may have just reset the segment to header-only,
		// in which case the kill is clean).
		path := filepath.Join(dir, id+".wal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		hdr := bytes.IndexByte(data, '\n') + 1
		if tail := len(data) - hdr; tear > tail {
			tear = tail
		}
		if tear > 0 {
			if err := os.Truncate(path, int64(len(data)-tear)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ws2, err := server.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := recoverBroker(ws2)
	if err != nil {
		t.Fatal(err)
	}
	return s, ws2
}

func recoverBroker(ws *server.WALStore) (*server.Server, error) {
	s := server.New()
	s.Store = ws
	s.CompactEvery = 16 // small: kill points land before, on, and after compactions
	if err := s.LoadAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// TestWALKillPointsBitIdentical is the tentpole chaos check: a broker
// on a WAL store is killed WITHOUT SaveAll at several points of a
// kitchen-sink-faults job — including kills that tear the segment's
// final line, and one that tears deep enough to eat whole records —
// and the recovered run's final result must be byte-identical to an
// uninterrupted control run. Torn records are safe precisely because
// replay is deterministic: a round the log lost is simply re-played
// live after resume, landing on the same bits.
func TestWALKillPointsBitIdentical(t *testing.T) {
	ctrl := server.New()
	ctrlID := createJob(t, ctrl.Handler(), kitchenSinkJob)
	want := advanceAll(t, ctrl.Handler(), ctrlID, 60)

	// Kill schedule: (rounds advanced before the kill, bytes torn off
	// the segment tail). 0 = clean kill mid-run; small tears cut the
	// final record's line; 400 is deeper than one record and eats into
	// earlier ones, forcing a multi-round live re-play.
	schedule := []struct{ rounds, tear int }{
		{1, 0},    // killed one round after creation
		{9, 7},    // torn final line
		{17, 1},   // a compaction ran this leg: kill lands on a fresh segment
		{15, 400}, // deep tear: several records re-played live
		{8, 0},
	}

	dir := t.TempDir()
	ws, err := server.NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := recoverBroker(ws)
	if err != nil {
		t.Fatal(err)
	}
	id := createJob(t, s.Handler(), kitchenSinkJob)
	if id != ctrlID {
		t.Fatalf("arm ids diverged: %q vs %q", id, ctrlID)
	}
	played := 0
	for i, k := range schedule {
		advanceN(t, s.Handler(), id, k.rounds)
		played += k.rounds
		s, ws = walKill(t, ws, dir, id, k.tear)
		// The recovered cursor must sit at most k.tear's worth of
		// records behind the advance — never ahead, never at job
		// creation.
		st := jobStatus(t, s, id)
		if st.NextRound > played+1 {
			t.Fatalf("kill %d: recovered AHEAD of play: next_round %d > %d", i, st.NextRound, played+1)
		}
		if st.NextRound <= 1 && played > 0 {
			t.Fatalf("kill %d: recovery fell back to job creation", i)
		}
		// Re-advance whatever the tear lost so every kill point starts
		// the next leg at the same round as an uninterrupted run.
		if lost := played + 1 - st.NextRound; lost > 0 {
			advanceN(t, s.Handler(), id, lost)
		}
	}
	got := advanceAll(t, s.Handler(), id, 60-played) // overshoot clamps at done
	if !bytes.Equal(want, got) {
		t.Fatalf("WAL kill/resume diverged from control:\nclean   %s\nresumed %s", want, got)
	}
	ws.Close()
}

// TestWALKillEveryRound sweeps the kill point across every round of a
// short faulty job: for each k the broker is killed (no SaveAll)
// after k rounds with a torn tail, recovered, run to completion, and
// compared to the control. This is the WAL analogue of the mechanism
// layer's per-round kill schedule.
func TestWALKillEveryRound(t *testing.T) {
	const rounds = 12
	req := `{"random_sellers":8,"k":3,"rounds":12,"seed":5,` +
		`"faults":{"channel":{"good_to_bad":0.3,"bad_to_good":0.6,"loss_bad":0.7},` +
		`"byzantine":{"fraction":0.3,"mode":"random"}}}`

	ctrl := server.New()
	want := advanceAll(t, ctrl.Handler(), createJob(t, ctrl.Handler(), req), rounds)

	for k := 1; k < rounds; k++ {
		k := k
		t.Run(fmt.Sprintf("kill_after_%d", k), func(t *testing.T) {
			dir := t.TempDir()
			ws, err := server.NewWALStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			s, err := recoverBroker(ws)
			if err != nil {
				t.Fatal(err)
			}
			id := createJob(t, s.Handler(), req)
			advanceN(t, s.Handler(), id, k)
			tear := (k % 3) * 5 // rotate: clean kill, 5-byte tear, 10-byte tear
			s, ws = walKill(t, ws, dir, id, tear)
			defer ws.Close()
			got := advanceAll(t, s.Handler(), id, rounds) // overshoot clamps at done
			if !bytes.Equal(want, got) {
				t.Fatalf("kill after %d (tear %d) diverged:\nclean   %s\nresumed %s", k, tear, want, got)
			}
		})
	}
}

// jobStatus fetches a job's status struct from a broker.
func jobStatus(t *testing.T, s *server.Server, id string) server.JobStatus {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var st server.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}
