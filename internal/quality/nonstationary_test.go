package quality

import (
	"math"
	"testing"

	"cmabhs/internal/rng"
)

func TestDriftingValidation(t *testing.T) {
	src := rng.New(1)
	cases := []struct {
		means, amps []float64
		period, sd  float64
	}{
		{[]float64{1.5}, []float64{0.1}, 10, 0.1},      // bad mean
		{[]float64{0.5}, []float64{0.1, 0.2}, 10, 0.1}, // length mismatch
		{[]float64{0.5}, []float64{-0.1}, 10, 0.1},     // negative amp
		{[]float64{0.5}, []float64{0.1}, 0, 0.1},       // bad period
		{[]float64{0.5}, []float64{0.1}, 10, -1},       // bad sd
	}
	for i, tc := range cases {
		if _, err := NewDrifting(tc.means, tc.amps, tc.period, tc.sd, src); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDriftingExpectations(t *testing.T) {
	m, err := NewDrifting([]float64{0.5, 0.9}, []float64{0.3, 0.3}, 100, 0.05, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Sellers() != 2 || m.Expected(0) != 0.5 {
		t.Fatal("accessors wrong")
	}
	lo, hi := 1.0, 0.0
	for round := 1; round <= 200; round++ {
		q := m.ExpectedAt(0, round)
		if q < 0 || q > 1 {
			t.Fatalf("expectation %v out of range", q)
		}
		lo, hi = math.Min(lo, q), math.Max(hi, q)
	}
	// Oscillation covers roughly base ± amp.
	if hi-lo < 0.4 {
		t.Errorf("drift range [%v, %v] too narrow", lo, hi)
	}
	// Seller 1 clamps at 1 near its peak.
	peak := 0.0
	for round := 1; round <= 200; round++ {
		peak = math.Max(peak, m.ExpectedAt(1, round))
	}
	if peak > 1 {
		t.Errorf("expectation should clamp at 1, got %v", peak)
	}
	// Observations follow the drifting mean.
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += m.Observe(0, 0, 25) // fixed round: fixed expectation
	}
	want := m.ExpectedAt(0, 25)
	if math.Abs(sum/float64(n)-want) > 0.02 {
		t.Errorf("observed mean %v, want ≈%v", sum/float64(n), want)
	}
}

func TestShiftingValidation(t *testing.T) {
	src := rng.New(3)
	if _, err := NewShifting(nil, 5, 0.1, src); err == nil {
		t.Error("empty phases should fail")
	}
	if _, err := NewShifting([][]float64{{0.5}, {0.1, 0.2}}, 5, 0.1, src); err == nil {
		t.Error("ragged phases should fail")
	}
	if _, err := NewShifting([][]float64{{1.5}}, 5, 0.1, src); err == nil {
		t.Error("invalid expectation should fail")
	}
	if _, err := NewShifting([][]float64{{0.5}}, 0, 0.1, src); err == nil {
		t.Error("bad switchEvery should fail")
	}
}

func TestShiftingPhases(t *testing.T) {
	phases := [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	m, err := NewShifting(phases, 10, 0.05, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Sellers() != 2 {
		t.Fatal("Sellers wrong")
	}
	// Rounds 1-10: phase 0; rounds 11-20: phase 1; cycles.
	if m.ExpectedAt(0, 1) != 0.9 || m.ExpectedAt(0, 10) != 0.9 {
		t.Error("phase 0 expectations wrong")
	}
	if m.ExpectedAt(0, 11) != 0.1 || m.ExpectedAt(1, 15) != 0.9 {
		t.Error("phase 1 expectations wrong")
	}
	if m.ExpectedAt(0, 21) != 0.9 {
		t.Error("phases should cycle")
	}
	// Across-phase mean.
	if m.Expected(0) != 0.5 {
		t.Errorf("Expected = %v", m.Expected(0))
	}
	// Observations stay in [0,1].
	for i := 0; i < 1000; i++ {
		if v := m.Observe(0, 0, i+1); v < 0 || v > 1 {
			t.Fatalf("observation %v", v)
		}
	}
}
