// Package quality implements the sensing-quality models of the CDT
// system (Definition 3): each seller i has a fixed but unknown
// expected quality q_i ∈ [0, 1] determined by its device, and every
// observation q_{i,l}^t at a PoI is a noisy draw around q_i caused by
// exogenous factors (angle, distance, context). The paper's
// simulations use a truncated Gaussian on [0, 1]; Bernoulli and Beta
// observation models are provided for robustness studies.
package quality

import (
	"errors"
	"fmt"

	"cmabhs/internal/rng"
)

// ErrBadExpectation is returned when an expected quality lies outside
// [0, 1].
var ErrBadExpectation = errors.New("quality: expected quality must lie in [0, 1]")

// Model generates the noisy per-PoI quality observations for a fixed
// population of sellers. Implementations must be deterministic given
// the Source passed at construction.
type Model interface {
	// Expected returns seller i's expected quality q_i.
	Expected(seller int) float64
	// Observe returns one observation q_{i,l}^t ∈ [0, 1] for seller i
	// at PoI l in round t.
	Observe(seller, poi, round int) float64
	// Sellers returns the population size M.
	Sellers() int
}

// State is the serializable state of a quality model. The model's
// structure (means, noise level, biases) is rebuilt from configuration
// on resume; only the live observation stream position travels.
type State struct {
	RNG rng.State `json:"rng"`
}

// Stateful is implemented by models whose observation stream carries
// serializable state. Deterministic does not implement it — it has no
// stream — and callers treat that as "nothing to persist".
type Stateful interface {
	State() State
	Restore(State) error
}

// validateExpectations checks all means lie in [0, 1].
func validateExpectations(means []float64) error {
	for i, m := range means {
		if m < 0 || m > 1 {
			return fmt.Errorf("%w (seller %d has q=%v)", ErrBadExpectation, i, m)
		}
	}
	return nil
}

// TruncGaussian is the paper's observation model: observations are
// Gaussian around q_i with standard deviation SD, truncated to [0, 1].
type TruncGaussian struct {
	means []float64
	sd    float64
	src   *rng.Source
}

// NewTruncGaussian builds the model. sd must be non-negative.
func NewTruncGaussian(means []float64, sd float64, src *rng.Source) (*TruncGaussian, error) {
	if err := validateExpectations(means); err != nil {
		return nil, err
	}
	if sd < 0 {
		return nil, errors.New("quality: negative standard deviation")
	}
	return &TruncGaussian{means: append([]float64(nil), means...), sd: sd, src: src}, nil
}

// Expected returns q_i.
func (m *TruncGaussian) Expected(seller int) float64 { return m.means[seller] }

// Sellers returns M.
func (m *TruncGaussian) Sellers() int { return len(m.means) }

// Observe draws a truncated-Gaussian observation. The (poi, round)
// arguments only assert the caller's indices are sane; draws are
// consumed from the stream in call order, which keeps full runs
// reproducible under a fixed seed.
func (m *TruncGaussian) Observe(seller, poi, round int) float64 {
	checkIndices(seller, len(m.means), poi, round)
	return m.src.TruncNormal(m.means[seller], m.sd, 0, 1)
}

// Bernoulli observes 1 with probability q_i and 0 otherwise — the
// classic bandit feedback model, with the same mean but maximal
// variance.
type Bernoulli struct {
	means []float64
	src   *rng.Source
}

// NewBernoulli builds the model.
func NewBernoulli(means []float64, src *rng.Source) (*Bernoulli, error) {
	if err := validateExpectations(means); err != nil {
		return nil, err
	}
	return &Bernoulli{means: append([]float64(nil), means...), src: src}, nil
}

// Expected returns q_i.
func (m *Bernoulli) Expected(seller int) float64 { return m.means[seller] }

// Sellers returns M.
func (m *Bernoulli) Sellers() int { return len(m.means) }

// Observe draws a Bernoulli observation.
func (m *Bernoulli) Observe(seller, poi, round int) float64 {
	checkIndices(seller, len(m.means), poi, round)
	return m.src.Bernoulli(m.means[seller])
}

// Beta observes Beta-distributed qualities with mean q_i and a
// concentration parameter: alpha = q·c, beta = (1−q)·c. Larger c
// means tighter observations.
type Beta struct {
	means []float64
	conc  float64
	src   *rng.Source
}

// NewBeta builds the model. conc must be positive.
func NewBeta(means []float64, conc float64, src *rng.Source) (*Beta, error) {
	if err := validateExpectations(means); err != nil {
		return nil, err
	}
	if conc <= 0 {
		return nil, errors.New("quality: concentration must be positive")
	}
	return &Beta{means: append([]float64(nil), means...), conc: conc, src: src}, nil
}

// Expected returns q_i.
func (m *Beta) Expected(seller int) float64 { return m.means[seller] }

// Sellers returns M.
func (m *Beta) Sellers() int { return len(m.means) }

// Observe draws a Beta observation; degenerate means (0 or 1) return
// the mean itself.
func (m *Beta) Observe(seller, poi, round int) float64 {
	checkIndices(seller, len(m.means), poi, round)
	q := m.means[seller]
	if q <= 0 || q >= 1 {
		return q
	}
	return m.src.Beta(q*m.conc, (1-q)*m.conc)
}

// Deterministic always observes exactly q_i — useful for tests that
// need noise-free estimators.
type Deterministic struct {
	means []float64
}

// NewDeterministic builds the model.
func NewDeterministic(means []float64) (*Deterministic, error) {
	if err := validateExpectations(means); err != nil {
		return nil, err
	}
	return &Deterministic{means: append([]float64(nil), means...)}, nil
}

// Expected returns q_i.
func (m *Deterministic) Expected(seller int) float64 { return m.means[seller] }

// Sellers returns M.
func (m *Deterministic) Sellers() int { return len(m.means) }

// Observe returns q_i exactly.
func (m *Deterministic) Observe(seller, poi, round int) float64 {
	checkIndices(seller, len(m.means), poi, round)
	return m.means[seller]
}

func checkIndices(seller, m, poi, round int) {
	if seller < 0 || seller >= m {
		panic(fmt.Sprintf("quality: seller index %d out of range [0,%d)", seller, m))
	}
	if poi < 0 {
		panic("quality: negative PoI index")
	}
	if round < 0 {
		panic("quality: negative round index")
	}
}

// RandomMeans draws M expected qualities uniformly from [lo, hi] —
// the paper generates them uniformly from [0, 1].
func RandomMeans(m int, lo, hi float64, src *rng.Source) []float64 {
	means := make([]float64, m)
	for i := range means {
		means[i] = src.Uniform(lo, hi)
	}
	return means
}

// State implements Stateful.
func (m *TruncGaussian) State() State { return State{RNG: m.src.State()} }

// Restore implements Stateful.
func (m *TruncGaussian) Restore(st State) error { m.src.SetState(st.RNG); return nil }

// State implements Stateful.
func (m *Bernoulli) State() State { return State{RNG: m.src.State()} }

// Restore implements Stateful.
func (m *Bernoulli) Restore(st State) error { m.src.SetState(st.RNG); return nil }

// State implements Stateful.
func (m *Beta) State() State { return State{RNG: m.src.State()} }

// Restore implements Stateful.
func (m *Beta) Restore(st State) error { m.src.SetState(st.RNG); return nil }

// State implements Stateful. The bias matrix is regenerated from the
// seed at construction, so only the stream position is exported.
func (m *PoIBiased) State() State { return State{RNG: m.src.State()} }

// Restore implements Stateful.
func (m *PoIBiased) Restore(st State) error { m.src.SetState(st.RNG); return nil }

var (
	_ Model = (*TruncGaussian)(nil)
	_ Model = (*Bernoulli)(nil)
	_ Model = (*Beta)(nil)
	_ Model = (*Deterministic)(nil)

	_ Stateful = (*TruncGaussian)(nil)
	_ Stateful = (*Bernoulli)(nil)
	_ Stateful = (*Beta)(nil)
	_ Stateful = (*PoIBiased)(nil)
)

// PoIBiased refines the paper's Remark on Def. 3: the actual quality
// q_{i,l} differs per PoI (distance, angle, context) even with the
// same device, while the per-seller mean stays q_i. Each (seller,
// PoI) pair carries a fixed bias drawn from ±BiasSpread that averages
// (approximately) to zero across PoIs, and observations add truncated
// Gaussian noise on top.
type PoIBiased struct {
	means []float64
	bias  [][]float64 // [seller][poi] offsets
	sd    float64
	src   *rng.Source
}

// NewPoIBiased builds the model with pois fixed per-PoI biases per
// seller, each uniform in [−biasSpread, +biasSpread] and recentred to
// mean zero across the seller's PoIs.
func NewPoIBiased(means []float64, pois int, biasSpread, sd float64, src *rng.Source) (*PoIBiased, error) {
	if err := validateExpectations(means); err != nil {
		return nil, err
	}
	if pois <= 0 {
		return nil, errors.New("quality: need at least one PoI")
	}
	if biasSpread < 0 || sd < 0 {
		return nil, errors.New("quality: negative spread or sd")
	}
	m := &PoIBiased{
		means: append([]float64(nil), means...),
		bias:  make([][]float64, len(means)),
		sd:    sd,
		src:   src,
	}
	for i := range m.bias {
		row := make([]float64, pois)
		var sum float64
		for l := range row {
			row[l] = src.Uniform(-biasSpread, biasSpread)
			sum += row[l]
		}
		center := sum / float64(pois)
		for l := range row {
			row[l] -= center // per-seller mean bias is exactly zero
		}
		m.bias[i] = row
	}
	return m, nil
}

// Expected returns q_i (the across-PoI mean, by construction).
func (m *PoIBiased) Expected(seller int) float64 { return m.means[seller] }

// Sellers returns M.
func (m *PoIBiased) Sellers() int { return len(m.means) }

// ExpectedAtPoI returns the (seller, poi) mean q_{i,l} clamped to
// [0, 1].
func (m *PoIBiased) ExpectedAtPoI(seller, poi int) float64 {
	q := m.means[seller] + m.bias[seller][poi%len(m.bias[seller])]
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// Observe draws a truncated-Gaussian observation around q_{i,l}.
func (m *PoIBiased) Observe(seller, poi, round int) float64 {
	checkIndices(seller, len(m.means), poi, round)
	return m.src.TruncNormal(m.ExpectedAtPoI(seller, poi), m.sd, 0, 1)
}
