package quality

import (
	"errors"
	"math"

	"cmabhs/internal/rng"
)

// NonStationary is implemented by models whose expected qualities
// change over rounds. The mechanism uses ExpectedAt for dynamic-
// oracle regret accounting; Expected still returns the long-run
// level.
type NonStationary interface {
	Model
	// ExpectedAt returns seller i's expected quality in round t.
	ExpectedAt(seller, round int) float64
}

// Drifting models smooth quality drift: seller i's expectation
// oscillates around its base level with per-seller amplitude and
// phase, clamped to [0, 1]:
//
//	q_i(t) = clamp(base_i + amp_i·sin(2π·t/period + phase_i), 0, 1)
//
// Observations are truncated-Gaussian around q_i(t). This violates
// the paper's fixed-quality assumption in the mildest way — the
// long-run mean stays base_i.
type Drifting struct {
	base   []float64
	amp    []float64
	period float64
	sd     float64
	src    *rng.Source
}

// NewDrifting builds the model. amps must match means; period must
// be positive.
func NewDrifting(means, amps []float64, period, sd float64, src *rng.Source) (*Drifting, error) {
	if err := validateExpectations(means); err != nil {
		return nil, err
	}
	if len(amps) != len(means) {
		return nil, errors.New("quality: amps and means length mismatch")
	}
	for _, a := range amps {
		if a < 0 || a > 1 {
			return nil, errors.New("quality: amplitude must lie in [0, 1]")
		}
	}
	if period <= 0 {
		return nil, errors.New("quality: period must be positive")
	}
	if sd < 0 {
		return nil, errors.New("quality: negative standard deviation")
	}
	return &Drifting{
		base:   append([]float64(nil), means...),
		amp:    append([]float64(nil), amps...),
		period: period,
		sd:     sd,
		src:    src,
	}, nil
}

// Sellers returns M.
func (m *Drifting) Sellers() int { return len(m.base) }

// Expected returns the long-run level base_i.
func (m *Drifting) Expected(seller int) float64 { return m.base[seller] }

// ExpectedAt implements NonStationary.
func (m *Drifting) ExpectedAt(seller, round int) float64 {
	phase := float64(seller) * math.Phi
	q := m.base[seller] + m.amp[seller]*math.Sin(2*math.Pi*float64(round)/m.period+phase)
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// Observe draws a truncated-Gaussian observation around q_i(t).
func (m *Drifting) Observe(seller, poi, round int) float64 {
	checkIndices(seller, len(m.base), poi, round)
	return m.src.TruncNormal(m.ExpectedAt(seller, round), m.sd, 0, 1)
}

// Shifting models abrupt quality change: the market cycles through
// phases of fixed expectations, switching every SwitchEvery rounds.
// It is the adversarial end of non-stationarity (a seller's device
// breaks, another upgrades).
type Shifting struct {
	phases      [][]float64 // phases[p][i]: expectation of seller i in phase p
	switchEvery int
	sd          float64
	src         *rng.Source
}

// NewShifting builds the model. Every phase must cover the same
// sellers with valid expectations.
func NewShifting(phases [][]float64, switchEvery int, sd float64, src *rng.Source) (*Shifting, error) {
	if len(phases) == 0 || len(phases[0]) == 0 {
		return nil, errors.New("quality: need at least one non-empty phase")
	}
	for _, ph := range phases {
		if len(ph) != len(phases[0]) {
			return nil, errors.New("quality: phases cover different seller counts")
		}
		if err := validateExpectations(ph); err != nil {
			return nil, err
		}
	}
	if switchEvery <= 0 {
		return nil, errors.New("quality: switchEvery must be positive")
	}
	if sd < 0 {
		return nil, errors.New("quality: negative standard deviation")
	}
	cp := make([][]float64, len(phases))
	for i, ph := range phases {
		cp[i] = append([]float64(nil), ph...)
	}
	return &Shifting{phases: cp, switchEvery: switchEvery, sd: sd, src: src}, nil
}

// Sellers returns M.
func (m *Shifting) Sellers() int { return len(m.phases[0]) }

// Expected returns the across-phase mean for seller i.
func (m *Shifting) Expected(seller int) float64 {
	var sum float64
	for _, ph := range m.phases {
		sum += ph[seller]
	}
	return sum / float64(len(m.phases))
}

// ExpectedAt implements NonStationary.
func (m *Shifting) ExpectedAt(seller, round int) float64 {
	if round < 1 {
		round = 1
	}
	p := ((round - 1) / m.switchEvery) % len(m.phases)
	return m.phases[p][seller]
}

// Observe draws a truncated-Gaussian observation around the phase
// expectation.
func (m *Shifting) Observe(seller, poi, round int) float64 {
	checkIndices(seller, len(m.phases[0]), poi, round)
	return m.src.TruncNormal(m.ExpectedAt(seller, round), m.sd, 0, 1)
}

// State implements Stateful.
func (m *Drifting) State() State { return State{RNG: m.src.State()} }

// Restore implements Stateful.
func (m *Drifting) Restore(st State) error { m.src.SetState(st.RNG); return nil }

// State implements Stateful.
func (m *Shifting) State() State { return State{RNG: m.src.State()} }

// Restore implements Stateful.
func (m *Shifting) Restore(st State) error { m.src.SetState(st.RNG); return nil }

var (
	_ NonStationary = (*Drifting)(nil)
	_ NonStationary = (*Shifting)(nil)

	_ Stateful = (*Drifting)(nil)
	_ Stateful = (*Shifting)(nil)
)
