package quality

import (
	"math"
	"testing"

	"cmabhs/internal/rng"
)

func TestValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NewTruncGaussian([]float64{0.5, 1.5}, 0.1, src); err == nil {
		t.Error("expectation > 1 should be rejected")
	}
	if _, err := NewTruncGaussian([]float64{-0.1}, 0.1, src); err == nil {
		t.Error("negative expectation should be rejected")
	}
	if _, err := NewTruncGaussian([]float64{0.5}, -0.1, src); err == nil {
		t.Error("negative sd should be rejected")
	}
	if _, err := NewBernoulli([]float64{2}, src); err == nil {
		t.Error("Bernoulli should validate expectations")
	}
	if _, err := NewBeta([]float64{0.5}, 0, src); err == nil {
		t.Error("non-positive concentration should be rejected")
	}
	if _, err := NewDeterministic([]float64{0.5, 0, 1}); err != nil {
		t.Errorf("boundary expectations are valid: %v", err)
	}
}

func TestModelAccessors(t *testing.T) {
	means := []float64{0.2, 0.8}
	m, err := NewTruncGaussian(means, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Sellers() != 2 {
		t.Errorf("Sellers = %d", m.Sellers())
	}
	if m.Expected(0) != 0.2 || m.Expected(1) != 0.8 {
		t.Error("Expected() wrong")
	}
	// Constructor must copy the means.
	means[0] = 0.99
	if m.Expected(0) != 0.2 {
		t.Error("constructor aliased the caller's slice")
	}
}

func TestTruncGaussianObservations(t *testing.T) {
	m, err := NewTruncGaussian([]float64{0.3, 0.7}, 0.15, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var sum0, sum1 float64
	n := 20000
	for i := 0; i < n; i++ {
		v0 := m.Observe(0, i%10, i)
		v1 := m.Observe(1, i%10, i)
		if v0 < 0 || v0 > 1 || v1 < 0 || v1 > 1 {
			t.Fatalf("observation out of [0,1]: %v %v", v0, v1)
		}
		sum0 += v0
		sum1 += v1
	}
	if math.Abs(sum0/float64(n)-0.3) > 0.01 {
		t.Errorf("seller 0 empirical mean %v", sum0/float64(n))
	}
	if math.Abs(sum1/float64(n)-0.7) > 0.01 {
		t.Errorf("seller 1 empirical mean %v", sum1/float64(n))
	}
}

func TestBernoulliObservations(t *testing.T) {
	m, err := NewBernoulli([]float64{0.25}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		v := m.Observe(0, 0, i)
		if v != 0 && v != 1 {
			t.Fatalf("non-binary observation %v", v)
		}
		sum += v
	}
	if math.Abs(sum/float64(n)-0.25) > 0.01 {
		t.Errorf("empirical mean %v", sum/float64(n))
	}
}

func TestBetaObservations(t *testing.T) {
	m, err := NewBeta([]float64{0.6, 0, 1}, 20, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		v := m.Observe(0, 0, i)
		if v < 0 || v > 1 {
			t.Fatalf("observation out of range: %v", v)
		}
		sum += v
	}
	if math.Abs(sum/float64(n)-0.6) > 0.01 {
		t.Errorf("empirical mean %v", sum/float64(n))
	}
	// Degenerate means pass through exactly.
	if m.Observe(1, 0, 0) != 0 || m.Observe(2, 0, 0) != 1 {
		t.Error("degenerate means should be returned exactly")
	}
}

func TestDeterministic(t *testing.T) {
	m, err := NewDeterministic([]float64{0.42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if m.Observe(0, i, i) != 0.42 {
			t.Fatal("deterministic model must return the mean")
		}
	}
}

func TestObserveReproducible(t *testing.T) {
	mk := func() Model {
		m, err := NewTruncGaussian([]float64{0.5, 0.9}, 0.2, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		if a.Observe(i%2, i%10, i) != b.Observe(i%2, i%10, i) {
			t.Fatal("same seed must reproduce observations")
		}
	}
}

func TestObservePanicsOnBadIndices(t *testing.T) {
	m, err := NewDeterministic([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { m.Observe(1, 0, 0) },
		func() { m.Observe(-1, 0, 0) },
		func() { m.Observe(0, -1, 0) },
		func() { m.Observe(0, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad index")
				}
			}()
			fn()
		}()
	}
}

func TestRandomMeans(t *testing.T) {
	src := rng.New(6)
	means := RandomMeans(500, 0.2, 0.8, src)
	if len(means) != 500 {
		t.Fatalf("len = %d", len(means))
	}
	var sum float64
	for _, m := range means {
		if m < 0.2 || m > 0.8 {
			t.Fatalf("mean %v outside [0.2, 0.8]", m)
		}
		sum += m
	}
	if math.Abs(sum/500-0.5) > 0.05 {
		t.Errorf("means not centered: %v", sum/500)
	}
}

func TestPoIBiased(t *testing.T) {
	src := rng.New(21)
	m, err := NewPoIBiased([]float64{0.5, 0.8}, 6, 0.2, 0.05, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sellers() != 2 || m.Expected(0) != 0.5 {
		t.Fatal("accessors wrong")
	}
	// Per-PoI means differ but average to the seller mean.
	var sum float64
	distinct := false
	first := m.ExpectedAtPoI(0, 0)
	for l := 0; l < 6; l++ {
		q := m.ExpectedAtPoI(0, l)
		if q != first {
			distinct = true
		}
		sum += m.means[0] + m.bias[0][l] // unclamped for the mean identity
	}
	if !distinct {
		t.Error("per-PoI qualities should differ")
	}
	if math.Abs(sum/6-0.5) > 1e-12 {
		t.Errorf("across-PoI mean %v, want 0.5", sum/6)
	}
	// Observations at one PoI concentrate around its biased mean.
	var obs float64
	n := 20000
	for i := 0; i < n; i++ {
		v := m.Observe(0, 2, i)
		if v < 0 || v > 1 {
			t.Fatalf("observation %v out of range", v)
		}
		obs += v
	}
	if math.Abs(obs/float64(n)-m.ExpectedAtPoI(0, 2)) > 0.01 {
		t.Errorf("observed mean %v, want ≈%v", obs/float64(n), m.ExpectedAtPoI(0, 2))
	}
	// Validation.
	if _, err := NewPoIBiased([]float64{0.5}, 0, 0.1, 0.1, src); err == nil {
		t.Error("zero PoIs should fail")
	}
	if _, err := NewPoIBiased([]float64{0.5}, 3, -1, 0.1, src); err == nil {
		t.Error("negative spread should fail")
	}
}
