package market

import (
	"math"
	"testing"

	"cmabhs/internal/aggregate"
	"cmabhs/internal/economics"
	"cmabhs/internal/game"
	"cmabhs/internal/ledger"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	means := []float64{0.3, 0.6, 0.9}
	model, err := quality.NewTruncGaussian(means, 0.1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Job: Job{L: 4, N: 10, Description: "test job"},
		Sellers: []SellerSpec{
			{Cost: economics.SellerCost{A: 0.2, B: 0.1}},
			{Cost: economics.SellerCost{A: 0.3, B: 0.2}},
			{Cost: economics.SellerCost{A: 0.4, B: 0.3}},
		},
		Platform: economics.PlatformCost{Theta: 0.1, Lambda: 1},
		Consumer: economics.Valuation{Omega: 1000},
		PJBounds: game.Bounds{Min: 0, Max: 100},
		PBounds:  game.Bounds{Min: 0, Max: 5},
		Quality:  model,
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no PoIs", func(c *Config) { c.Job.L = 0 }},
		{"no rounds", func(c *Config) { c.Job.N = 0 }},
		{"no sellers", func(c *Config) { c.Sellers = nil }},
		{"bad seller cost", func(c *Config) { c.Sellers[0].Cost.A = 0 }},
		{"bad platform", func(c *Config) { c.Platform.Theta = 0 }},
		{"bad consumer", func(c *Config) { c.Consumer.Omega = 1 }},
		{"bad pJ bounds", func(c *Config) { c.PJBounds = game.Bounds{Min: 2, Max: 1} }},
		{"bad p bounds", func(c *Config) { c.PBounds = game.Bounds{Min: -1, Max: 1} }},
		{"nil quality", func(c *Config) { c.Quality = nil }},
	}
	for _, tc := range cases {
		cfg := testConfig(t)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Seller/quality-model size mismatch.
	cfg = testConfig(t)
	cfg.Sellers = cfg.Sellers[:2]
	if err := cfg.Validate(); err == nil {
		t.Error("model/seller mismatch should fail")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cfg := testConfig(t)
	cfg.Job.N = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestGameParams(t *testing.T) {
	mkt, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	estimates := []float64{0.5, 0, 2} // includes degenerate values
	p := mkt.GameParams([]int{0, 2}, estimates, 1e-6)
	if len(p.Sellers) != 2 || len(p.Qualities) != 2 {
		t.Fatalf("shape: %d sellers", len(p.Sellers))
	}
	if p.Sellers[0].A != 0.2 || p.Sellers[1].A != 0.4 {
		t.Error("seller cost mapping wrong")
	}
	if p.Qualities[0] != 0.5 {
		t.Errorf("quality 0 = %v", p.Qualities[0])
	}
	if p.Qualities[1] != 1 {
		t.Errorf("quality above 1 should clamp to 1, got %v", p.Qualities[1])
	}
	// Floor applies to the zero estimate.
	p2 := mkt.GameParams([]int{1}, estimates, 1e-6)
	if p2.Qualities[0] != 1e-6 {
		t.Errorf("floored quality = %v", p2.Qualities[0])
	}
	// Game params carry the market's economics and the job's T.
	if p.Platform.Theta != 0.1 || p.Consumer.Omega != 1000 || p.MaxTau != 0 {
		t.Error("market parameters not propagated")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("assembled params invalid: %v", err)
	}
}

func TestCollectShapeAndRange(t *testing.T) {
	mkt, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	obs := mkt.Collect(1, []int{0, 2})
	if len(obs) != 2 {
		t.Fatalf("rows = %d", len(obs))
	}
	for _, row := range obs {
		if len(row) != 4 { // L PoIs
			t.Fatalf("cols = %d", len(row))
		}
		for _, q := range row {
			if q < 0 || q > 1 {
				t.Fatalf("observation %v outside [0,1]", q)
			}
		}
	}
}

func TestCollectStatistics(t *testing.T) {
	mkt, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for round := 0; round < 5000; round++ {
		for _, row := range mkt.Collect(round, []int{1}) {
			for _, q := range row {
				sum += q
				n++
			}
		}
	}
	if mean := sum / float64(n); math.Abs(mean-0.6) > 0.01 {
		t.Errorf("seller 1 observed mean %v, want ≈0.6", mean)
	}
}

func TestSettleBooksPayments(t *testing.T) {
	mkt, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	out := &game.Outcome{
		PJ:       10,
		P:        2,
		Taus:     []float64{1.5, 0.5},
		TotalTau: 2,
	}
	if err := mkt.Settle(3, []int{0, 2}, out); err != nil {
		t.Fatal(err)
	}
	l := mkt.Ledger()
	if got := l.Balance(ledger.Consumer); got != -20 { // p^J·Στ = 10·2
		t.Errorf("consumer balance %v", got)
	}
	if got := l.Balance(ledger.Seller(0)); got != 3 { // p·τ_0 = 2·1.5
		t.Errorf("seller 0 balance %v", got)
	}
	if got := l.Balance(ledger.Seller(2)); got != 1 {
		t.Errorf("seller 2 balance %v", got)
	}
	if got := l.Balance(ledger.Platform); got != 16 {
		t.Errorf("platform balance %v", got)
	}
	if imb := l.TotalImbalance(); math.Abs(imb) > 1e-12 {
		t.Errorf("imbalance %v", imb)
	}
	if got := l.Commission(3); got != 16 {
		t.Errorf("commission %v", got)
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := testConfig(t)
	mkt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mkt.Config().M() != 3 {
		t.Errorf("M = %d", mkt.Config().M())
	}
	if mkt.Config().Job.Description != "test job" {
		t.Error("job description lost")
	}
}

func TestDeparted(t *testing.T) {
	cfg := testConfig(t)
	cfg.Departures = []int{0, 5, 1}
	mkt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mkt.Departed(0, 100) {
		t.Error("zero departure means never")
	}
	if mkt.Departed(1, 4) || !mkt.Departed(1, 5) || !mkt.Departed(1, 6) {
		t.Error("departure boundary wrong")
	}
	if !mkt.Departed(2, 1) {
		t.Error("seller 2 departs at round 1")
	}
	cfg.Departures = []int{1}
	if err := cfg.Validate(); err == nil {
		t.Error("wrong-length departures should fail validation")
	}
}

func TestCollectReadings(t *testing.T) {
	cfg := testConfig(t)
	sensor, err := aggregate.NewSensor(0.01, 0.5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Data = &DataLayer{
		Signal:     aggregate.ConstSignal{Levels: []float64{10, 20, 30, 40}},
		Sensor:     sensor,
		Aggregator: aggregate.WeightedMean{},
	}
	mkt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	estimates := []float64{0.3, 0.6, 0.9}
	reports := mkt.CollectReadings(5, []int{1, 2}, estimates)
	if len(reports) != 4 { // one report per PoI
		t.Fatalf("reports %d", len(reports))
	}
	for l, r := range reports {
		if r.PoI != l || r.Readings != 2 {
			t.Fatalf("report %d: %+v", l, r)
		}
		truth := []float64{10, 20, 30, 40}[l]
		if r.Truth != truth {
			t.Errorf("truth %v, want %v", r.Truth, truth)
		}
		// With sd ≤ 0.5 the two-reading estimate stays near the truth.
		if r.Error() > 2 {
			t.Errorf("PoI %d error %v too large", l, r.Error())
		}
	}
	if got := aggregate.RMSE(reports); math.IsNaN(got) || got > 2 {
		t.Errorf("RMSE = %v", got)
	}
	// Without a data layer, CollectReadings returns nil.
	plain, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if plain.CollectReadings(1, []int{0}, estimates) != nil {
		t.Error("no data layer should return nil")
	}
}

func TestDataLayerValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Data = &DataLayer{} // incomplete
	if err := cfg.Validate(); err == nil {
		t.Fatal("incomplete data layer should fail validation")
	}
}
