// Package market implements the CDT environment: the long-term data
// collection job (Definition 1), the three trading parties, the
// per-round workflow of Fig. 2 (select → play game → collect →
// aggregate → settle), and the payment settlement against the ledger.
// The learning/decision logic itself (bandit policy + Stackelberg
// game) lives in internal/core; this package owns the world the
// mechanism acts on.
package market

import (
	"errors"
	"fmt"

	"cmabhs/internal/aggregate"
	"cmabhs/internal/economics"
	"cmabhs/internal/faults"
	"cmabhs/internal/game"
	"cmabhs/internal/ledger"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
)

// Job is the consumer's data collection job ⟨L, N, T, Des⟩.
type Job struct {
	L           int     // number of PoIs
	N           int     // number of trading rounds
	T           float64 // duration of one round (caps each τ_i; <= 0 means uncapped)
	Description string  // free-form requirements (Des)
}

// Validate checks the job's structural constraints.
func (j Job) Validate() error {
	if j.L <= 0 {
		return errors.New("market: job needs at least one PoI")
	}
	if j.N <= 0 {
		return errors.New("market: job needs at least one round")
	}
	return nil
}

// SellerSpec describes one candidate data seller: its private cost
// parameters. Its expected sensing quality lives in the quality
// model and is unknown to the mechanism.
type SellerSpec struct {
	Cost economics.SellerCost
}

// DataLayer optionally models the raw sensed data behind the
// qualities: a ground-truth signal per PoI, a sensor model mapping a
// seller's true quality to reading noise, and the aggregation
// operator the platform applies (Definition 2's aggregation service).
type DataLayer struct {
	Signal     aggregate.Signal
	Sensor     *aggregate.Sensor
	Aggregator aggregate.Aggregator
}

// Validate checks the layer is fully specified.
func (d *DataLayer) Validate() error {
	if d.Signal == nil || d.Sensor == nil || d.Aggregator == nil {
		return errors.New("market: data layer needs signal, sensor, and aggregator")
	}
	return nil
}

// Config assembles a CDT market.
type Config struct {
	Job      Job
	Sellers  []SellerSpec
	Platform economics.PlatformCost
	Consumer economics.Valuation
	PJBounds game.Bounds // consumer price space [p^J_min, p^J_max]
	PBounds  game.Bounds // platform price space [p_min, p_max]
	Quality  quality.Model
	Data     *DataLayer // optional raw-data layer

	// Departures optionally injects seller churn: Departures[i] = r
	// means seller i permanently leaves the market at the START of
	// round r (it can no longer be selected from round r on). Zero or
	// out-of-range means the seller never departs.
	Departures []int

	// DeliveryRate optionally injects transient failures: each
	// selected seller delivers its round's data with this probability
	// (default 1 when zero). A failing seller returns nothing, learns
	// nothing, is not paid, and incurs no cost that round. Must lie
	// in (0, 1] when set. Internally this is the i.i.d. special case
	// of the fault layer's delivery models.
	DeliveryRate float64
	// DeliverySeed seeds the failure draws (only used when
	// DeliveryRate < 1).
	DeliverySeed int64

	// Faults optionally configures the extended fault layer: bursty
	// Gilbert–Elliott delivery outages, renewal seller churn,
	// collection stragglers, and Byzantine quality corruption. A nil
	// or zero-intensity configuration injects nothing and leaves the
	// simulation bit-identical to a fault-free market. Faults compose
	// with the legacy fields above — except that a Gilbert–Elliott
	// delivery channel and a DeliveryRate cannot both be set (they
	// model the same failure once).
	Faults *faults.Config
}

// Validate checks the whole configuration.
func (c *Config) Validate() error {
	if err := c.Job.Validate(); err != nil {
		return err
	}
	if len(c.Sellers) == 0 {
		return errors.New("market: no sellers")
	}
	for i, s := range c.Sellers {
		if err := s.Cost.Validate(); err != nil {
			return fmt.Errorf("market: seller %d: %w", i, err)
		}
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if err := c.Consumer.Validate(); err != nil {
		return err
	}
	if err := c.PJBounds.Validate(); err != nil {
		return fmt.Errorf("market: p^J bounds: %w", err)
	}
	if err := c.PBounds.Validate(); err != nil {
		return fmt.Errorf("market: p bounds: %w", err)
	}
	if c.Quality == nil {
		return errors.New("market: nil quality model")
	}
	if c.Quality.Sellers() != len(c.Sellers) {
		return fmt.Errorf("market: quality model covers %d sellers, config has %d",
			c.Quality.Sellers(), len(c.Sellers))
	}
	if c.Data != nil {
		if err := c.Data.Validate(); err != nil {
			return err
		}
	}
	if len(c.Departures) != 0 && len(c.Departures) != len(c.Sellers) {
		return fmt.Errorf("market: %d departures for %d sellers", len(c.Departures), len(c.Sellers))
	}
	if c.DeliveryRate < 0 || c.DeliveryRate > 1 {
		return fmt.Errorf("market: delivery rate %v outside [0, 1]", c.DeliveryRate)
	}
	if err := c.Faults.Validate(len(c.Sellers)); err != nil {
		return err
	}
	if c.deliveryRate() < 1 && c.Faults != nil && c.Faults.Delivery != (faults.DeliveryConfig{}) {
		return errors.New("market: DeliveryRate and a fault-layer delivery channel cannot both be set")
	}
	return nil
}

// deliveryRate returns the effective delivery probability.
func (c *Config) deliveryRate() float64 {
	if c.DeliveryRate == 0 {
		return 1
	}
	return c.DeliveryRate
}

// M returns the seller population size.
func (c *Config) M() int { return len(c.Sellers) }

// Market is a live CDT environment.
type Market struct {
	cfg      Config
	ledger   *ledger.Ledger
	inj      *faults.Injector // nil when nothing is injected
	delivery *rng.Source      // the legacy i.i.d. delivery stream, nil unless DeliveryRate < 1

	// Hot-path scratch, reused across rounds (see CollectInto/Settle).
	obsRows   [][]float64
	obsArena  []float64
	settleIDs []int
	settlePay []float64
}

// New builds a market from a validated configuration, assembling the
// fault layer from the legacy failure fields (DeliveryRate,
// Departures) and the extended Faults configuration.
func New(cfg Config) (*Market, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Market{cfg: cfg, ledger: ledger.New()}
	inj, err := faults.New(cfg.Faults, len(cfg.Sellers))
	if err != nil {
		return nil, err
	}
	if cfg.deliveryRate() < 1 {
		// The legacy i.i.d. path keeps its historic stream (seeded
		// directly off DeliverySeed, one draw per check) so existing
		// seeded runs and snapshots stay bit-identical.
		if inj == nil {
			inj = &faults.Injector{}
		}
		m.delivery = rng.New(cfg.DeliverySeed)
		inj.Delivery = faults.NewIID(cfg.deliveryRate(), m.delivery)
	}
	if len(cfg.Departures) != 0 {
		if inj == nil {
			inj = &faults.Injector{}
		}
		inj.Churn = faults.ComposeChurn(faults.Scripted(cfg.Departures), inj.Churn)
	}
	m.inj = inj
	return m, nil
}

// Departed reports whether seller i has left the market by round t
// (scripted departures and renewal churn combined).
func (m *Market) Departed(i, t int) bool {
	d := m.inj.DepartureRound(i)
	return d > 0 && t >= d
}

// DepartureRound returns the round at whose start seller i permanently
// departs (scripted departures and renewal churn combined), or 0 when
// it never leaves. Departure rounds are fixed at construction, so the
// mechanism can precompute its churn schedule instead of scanning all
// sellers every round.
func (m *Market) DepartureRound(i int) int { return m.inj.DepartureRound(i) }

// Faults exposes the assembled fault injector (nil when the market
// injects nothing), for inspection by tests and diagnostics.
func (m *Market) Faults() *faults.Injector { return m.inj }

// Config returns the market's configuration.
func (m *Market) Config() *Config { return &m.cfg }

// Ledger exposes the settlement ledger (for inspection and
// invariant checks).
func (m *Market) Ledger() *ledger.Ledger { return m.ledger }

// State is the serializable state of a live Market: the settlement
// ledger plus the positions of every random stream the environment
// owns (delivery failures, quality observations, sensor noise, and
// the extended fault models). The market's structure — sellers,
// costs, bounds, the quality model's means — is rebuilt from
// configuration on resume and deliberately not persisted.
type State struct {
	Ledger   ledger.State   `json:"ledger"`
	Delivery *rng.State     `json:"delivery,omitempty"` // legacy i.i.d. delivery stream
	Quality  *quality.State `json:"quality,omitempty"`
	Sensor   *rng.State     `json:"sensor,omitempty"`
	Faults   *faults.State  `json:"faults,omitempty"` // extended fault-layer streams
}

// State exports the market for persistence.
func (m *Market) State() State {
	st := State{Ledger: m.ledger.State()}
	if m.delivery != nil {
		d := m.delivery.State()
		st.Delivery = &d
	}
	st.Faults = m.inj.State()
	if q, ok := m.cfg.Quality.(quality.Stateful); ok {
		qs := q.State()
		st.Quality = &qs
	}
	if m.cfg.Data != nil {
		ss := m.cfg.Data.Sensor.RNGState()
		st.Sensor = &ss
	}
	return st
}

// Restore overwrites the market's mutable state with an exported
// state. The market must have been built from the same configuration
// the state was exported under; structural mismatches (a stream the
// configuration does not own, or vice versa) are errors.
func (m *Market) Restore(st State) error {
	if (m.delivery != nil) != (st.Delivery != nil) {
		return errors.New("market: delivery stream state does not match configuration")
	}
	q, stateful := m.cfg.Quality.(quality.Stateful)
	if stateful != (st.Quality != nil) {
		return errors.New("market: quality stream state does not match configuration")
	}
	if (m.cfg.Data != nil) != (st.Sensor != nil) {
		return errors.New("market: sensor stream state does not match configuration")
	}
	if err := m.ledger.Restore(st.Ledger); err != nil {
		return err
	}
	if st.Delivery != nil {
		m.delivery.SetState(*st.Delivery)
	}
	if st.Quality != nil {
		if err := q.Restore(*st.Quality); err != nil {
			return err
		}
	}
	if st.Sensor != nil {
		m.cfg.Data.Sensor.RestoreRNG(*st.Sensor)
	}
	if err := m.inj.Restore(st.Faults); err != nil {
		return err
	}
	return nil
}

// GameParams assembles the Stackelberg game of one round for the
// selected sellers with their current estimated qualities. Estimates
// are floored at minQ (degenerate all-zero estimates would otherwise
// break the model's q̄ > 0 requirement); pass 0 to keep raw values.
func (m *Market) GameParams(selected []int, estimates []float64, minQ float64) *game.Params {
	return m.GameParamsInto(&game.Params{}, selected, estimates, minQ)
}

// GameParamsInto is GameParams writing into a caller-owned Params,
// reusing its Sellers/Qualities capacity so a steady-state round
// assembles the game without allocating. All fields of p are
// overwritten; it returns p.
func (m *Market) GameParamsInto(p *game.Params, selected []int, estimates []float64, minQ float64) *game.Params {
	n := len(selected)
	if cap(p.Sellers) < n {
		p.Sellers = make([]economics.SellerCost, n)
	}
	if cap(p.Qualities) < n {
		p.Qualities = make([]float64, n)
	}
	*p = game.Params{
		Sellers:   p.Sellers[:n],
		Qualities: p.Qualities[:n],
		Platform:  m.cfg.Platform,
		Consumer:  m.cfg.Consumer,
		PJBounds:  m.cfg.PJBounds,
		PBounds:   m.cfg.PBounds,
		MaxTau:    m.cfg.Job.T,
	}
	for j, i := range selected {
		p.Sellers[j] = m.cfg.Sellers[i].Cost
		q := estimates[i]
		if q < minQ {
			q = minQ
		}
		if q > 1 {
			q = 1
		}
		p.Qualities[j] = q
	}
	return p
}

// Collect runs the data collection of round t: every selected seller
// senses at all L PoIs, producing L quality observations each
// (Definition 3). The returned slice is indexed like selected. A
// seller whose data does not arrive — delivery failure (i.i.d. or
// Gilbert–Elliott channel) or a straggler missing the round deadline
// — has a nil row: no data, no pay, no cost. Byzantine sellers'
// observations pass through the corruption model, so the mechanism
// learns from what was REPORTED, not what was sensed.
func (m *Market) Collect(round int, selected []int) [][]float64 {
	obs := make([][]float64, len(selected))
	for j, i := range selected {
		if !m.inj.Delivers(round, i, m.cfg.Job.T) {
			continue // failure or missed deadline: nil row
		}
		row := make([]float64, m.cfg.Job.L)
		for l := range row {
			row[l] = m.inj.Corrupt(i, l, round, m.cfg.Quality.Observe(i, l, round))
		}
		obs[j] = row
	}
	return obs
}

// CollectInto is Collect backed by market-owned scratch: rows live in
// one arena reused across rounds, so a steady-state collection makes
// zero heap allocations. The returned slice and its rows are BORROWED
// — valid only until the next CollectInto call — and draw the exact
// same random observations as Collect would.
func (m *Market) CollectInto(round int, selected []int) [][]float64 {
	n, l := len(selected), m.cfg.Job.L
	if cap(m.obsRows) < n {
		m.obsRows = make([][]float64, n)
	}
	m.obsRows = m.obsRows[:n]
	if cap(m.obsArena) < n*l {
		m.obsArena = make([]float64, n*l)
	}
	arena := m.obsArena[:n*l]
	for j, i := range selected {
		m.obsRows[j] = nil
		if !m.inj.Delivers(round, i, m.cfg.Job.T) {
			continue // failure or missed deadline: nil row
		}
		row := arena[j*l : (j+1)*l : (j+1)*l]
		for p := range row {
			row[p] = m.inj.Corrupt(i, p, round, m.cfg.Quality.Observe(i, p, round))
		}
		m.obsRows[j] = row
	}
	return m.obsRows
}

// CollectReadings produces the raw-data readings of a round when the
// data layer is configured: every selected seller reads every PoI
// with noise set by its TRUE quality, weighted for aggregation by its
// ESTIMATED quality. It then fuses them into per-PoI reports. Returns
// nil when no data layer is configured.
func (m *Market) CollectReadings(round int, selected []int, estimates []float64) []aggregate.Report {
	d := m.cfg.Data
	if d == nil {
		return nil
	}
	readings := make([]aggregate.Reading, 0, len(selected)*m.cfg.Job.L)
	for _, i := range selected {
		trueQ := m.cfg.Quality.Expected(i)
		w := estimates[i]
		for l := 0; l < m.cfg.Job.L; l++ {
			readings = append(readings, aggregate.Reading{
				Seller: i,
				PoI:    l,
				Value:  d.Sensor.Read(d.Signal, l, round, trueQ),
				Weight: w,
			})
		}
	}
	return aggregate.AggregateRound(d.Aggregator, d.Signal, round, m.cfg.Job.L, readings)
}

// Settle books the round's payments from the game outcome: the
// consumer pays p^J·Στ to the platform, the platform pays p·τ_i to
// seller i (Definition 5). Journal order is deterministic (sellers in
// ascending id), and the sort + transfers run on market-owned scratch
// so a steady-state settlement does not allocate.
func (m *Market) Settle(round int, selected []int, out *game.Outcome) error {
	n := len(selected)
	if cap(m.settleIDs) < n {
		m.settleIDs = make([]int, n)
		m.settlePay = make([]float64, n)
	}
	ids, pay := m.settleIDs[:n], m.settlePay[:n]
	for j, i := range selected {
		// Insertion sort by id: selections are small (K sellers) and
		// round 1's full-population selection arrives already sorted.
		p := out.SellerReward(j)
		q := j
		for q > 0 && ids[q-1] > i {
			ids[q], pay[q] = ids[q-1], pay[q-1]
			q--
		}
		ids[q], pay[q] = i, p
	}
	return m.ledger.SettleRoundSorted(round, out.TotalReward(), ids, pay)
}
