// Package aggregate implements the platform's data aggregation
// service (Definition 2): selected sellers return raw per-PoI
// readings, the platform fuses them into the statistics the consumer
// actually buys. Sensing quality becomes concrete here — a seller's
// quality determines the precision of its readings, so the value of
// quality-aware selection shows up directly as lower aggregation
// error.
//
// The package provides ground-truth signal models for the PoIs, a
// sensor model mapping quality to reading noise, several aggregation
// operators (quality-weighted mean, median, trimmed mean), and error
// metrics against the ground truth.
package aggregate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cmabhs/internal/rng"
)

// Signal is a ground-truth process over (PoI, round). Implementations
// must be deterministic: the same (poi, round) always yields the same
// value, so error metrics are well defined after the fact.
type Signal interface {
	Value(poi, round int) float64
}

// SineSignal is a smooth periodic ground truth: each PoI oscillates
// around Base with amplitude Amp and period Period rounds, at a
// PoI-specific phase. It models daily patterns (traffic, noise, air
// quality).
type SineSignal struct {
	Base   float64 // center level
	Amp    float64 // oscillation amplitude
	Period float64 // rounds per cycle (> 0)
}

// Value implements Signal.
func (s SineSignal) Value(poi, round int) float64 {
	if s.Period <= 0 {
		return s.Base
	}
	phase := float64(poi) * math.Phi // deterministic per-PoI offset
	return s.Base + s.Amp*math.Sin(2*math.Pi*float64(round)/s.Period+phase)
}

// DriftSignal is a deterministic slowly drifting ground truth:
// a sine modulated by a linear trend, one slope per PoI.
type DriftSignal struct {
	Base  float64
	Slope float64 // drift per round, scaled per PoI
}

// Value implements Signal.
func (s DriftSignal) Value(poi, round int) float64 {
	k := 1 + float64(poi%7)/7
	return s.Base + s.Slope*k*float64(round)
}

// ConstSignal is a fixed per-PoI level — the simplest ground truth,
// used by tests.
type ConstSignal struct {
	Levels []float64
}

// Value implements Signal.
func (s ConstSignal) Value(poi, round int) float64 {
	return s.Levels[poi%len(s.Levels)]
}

// Sensor maps a seller's quality to reading noise: a reading of the
// ground truth g is g + Normal(0, σ(q)) with σ(q) = SDMax·(1−q) +
// SDMin. Quality 1 gives the cleanest possible readings.
type Sensor struct {
	SDMin float64 // noise floor at quality 1 (≥ 0)
	SDMax float64 // extra noise at quality 0 (≥ 0)
	src   *rng.Source
}

// NewSensor builds the sensor model.
func NewSensor(sdMin, sdMax float64, src *rng.Source) (*Sensor, error) {
	if sdMin < 0 || sdMax < 0 {
		return nil, errors.New("aggregate: negative sensor noise")
	}
	return &Sensor{SDMin: sdMin, SDMax: sdMax, src: src}, nil
}

// SD returns the reading noise at quality q (clamped to [0, 1]).
func (s *Sensor) SD(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return s.SDMax*(1-q) + s.SDMin
}

// Read produces one noisy reading of sig at (poi, round) by a seller
// with true quality q.
func (s *Sensor) Read(sig Signal, poi, round int, q float64) float64 {
	return sig.Value(poi, round) + s.src.Normal(0, s.SD(q))
}

// RNGState exports the sensor's noise stream position for durable
// snapshots (the SDMin/SDMax structure is rebuilt from configuration).
func (s *Sensor) RNGState() rng.State { return s.src.State() }

// RestoreRNG resumes the noise stream at an exported position.
func (s *Sensor) RestoreRNG(st rng.State) { s.src.SetState(st) }

// Reading is one raw data point returned by a seller.
type Reading struct {
	Seller int     // seller id
	PoI    int     // PoI index
	Value  float64 // sensed value
	Weight float64 // aggregation weight (the seller's estimated quality)
}

// Aggregator fuses one PoI's readings into a statistic.
type Aggregator interface {
	// Name identifies the operator in reports.
	Name() string
	// Aggregate returns the fused estimate; it must tolerate an
	// empty input by returning NaN.
	Aggregate(values, weights []float64) float64
}

// WeightedMean is the platform's default operator: readings weighted
// by the sellers' estimated qualities. Zero total weight degrades to
// the plain mean.
type WeightedMean struct{}

// Name implements Aggregator.
func (WeightedMean) Name() string { return "weighted-mean" }

// Aggregate implements Aggregator.
func (WeightedMean) Aggregate(values, weights []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var num, den float64
	for i, v := range values {
		w := 1.0
		if i < len(weights) {
			w = weights[i]
		}
		num += w * v
		den += w
	}
	if den <= 0 {
		var sum float64
		for _, v := range values {
			sum += v
		}
		return sum / float64(len(values))
	}
	return num / den
}

// Median is the robust operator: the middle reading, ignoring
// weights.
type Median struct{}

// Name implements Aggregator.
func (Median) Name() string { return "median" }

// Aggregate implements Aggregator.
func (Median) Aggregate(values, _ []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), values...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// TrimmedMean drops the Frac most extreme readings on each side
// before averaging (unweighted).
type TrimmedMean struct {
	Frac float64 // fraction trimmed per side, in [0, 0.5)
}

// Name implements Aggregator.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed-mean(%.2f)", t.Frac) }

// Aggregate implements Aggregator.
func (t TrimmedMean) Aggregate(values, _ []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	frac := t.Frac
	if frac < 0 {
		frac = 0
	}
	if frac >= 0.5 {
		frac = 0.49
	}
	cp := append([]float64(nil), values...)
	sort.Float64s(cp)
	drop := int(frac * float64(len(cp)))
	cp = cp[drop : len(cp)-drop]
	var sum float64
	for _, v := range cp {
		sum += v
	}
	return sum / float64(len(cp))
}

// Report is the per-PoI statistic the consumer receives, with the
// ground truth attached for error accounting.
type Report struct {
	PoI      int
	Estimate float64
	Truth    float64
	Readings int
}

// Error returns |estimate − truth|.
func (r Report) Error() float64 { return math.Abs(r.Estimate - r.Truth) }

// AggregateRound fuses one round's readings into per-PoI reports.
// pois is the number of PoIs; readings may cover any subset.
func AggregateRound(agg Aggregator, sig Signal, round, pois int, readings []Reading) []Report {
	values := make([][]float64, pois)
	weights := make([][]float64, pois)
	for _, r := range readings {
		if r.PoI < 0 || r.PoI >= pois {
			continue
		}
		values[r.PoI] = append(values[r.PoI], r.Value)
		weights[r.PoI] = append(weights[r.PoI], r.Weight)
	}
	reports := make([]Report, pois)
	for l := 0; l < pois; l++ {
		reports[l] = Report{
			PoI:      l,
			Estimate: agg.Aggregate(values[l], weights[l]),
			Truth:    sig.Value(l, round),
			Readings: len(values[l]),
		}
	}
	return reports
}

// RMSE returns the root-mean-square error of the reports with at
// least one reading; NaN if none have readings.
func RMSE(reports []Report) float64 {
	var sum float64
	n := 0
	for _, r := range reports {
		if r.Readings == 0 || math.IsNaN(r.Estimate) {
			continue
		}
		d := r.Estimate - r.Truth
		sum += d * d
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(n))
}

var (
	_ Signal     = SineSignal{}
	_ Signal     = DriftSignal{}
	_ Signal     = ConstSignal{}
	_ Aggregator = WeightedMean{}
	_ Aggregator = Median{}
	_ Aggregator = TrimmedMean{}
)
