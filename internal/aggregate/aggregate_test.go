package aggregate

import (
	"math"
	"testing"

	"cmabhs/internal/rng"
)

func TestSineSignalDeterministicAndBounded(t *testing.T) {
	s := SineSignal{Base: 10, Amp: 2, Period: 24}
	for poi := 0; poi < 5; poi++ {
		for round := 0; round < 100; round++ {
			v := s.Value(poi, round)
			if v != s.Value(poi, round) {
				t.Fatal("signal not deterministic")
			}
			if v < 8 || v > 12 {
				t.Fatalf("value %v outside base±amp", v)
			}
		}
	}
	// Distinct PoIs have distinct phases.
	if s.Value(0, 0) == s.Value(1, 0) {
		t.Error("PoIs should be phase-shifted")
	}
	// Degenerate period falls back to the base level.
	if (SineSignal{Base: 3}).Value(0, 10) != 3 {
		t.Error("zero period should return base")
	}
}

func TestDriftAndConstSignals(t *testing.T) {
	d := DriftSignal{Base: 5, Slope: 0.1}
	if !(d.Value(0, 10) > d.Value(0, 0)) {
		t.Error("drift should increase")
	}
	c := ConstSignal{Levels: []float64{1, 2}}
	if c.Value(0, 99) != 1 || c.Value(1, 5) != 2 || c.Value(2, 0) != 1 {
		t.Error("const signal levels wrong")
	}
}

func TestSensorNoiseScalesWithQuality(t *testing.T) {
	s, err := NewSensor(0.05, 1.0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.SD(1) != 0.05 {
		t.Errorf("SD(1) = %v", s.SD(1))
	}
	if s.SD(0) != 1.05 {
		t.Errorf("SD(0) = %v", s.SD(0))
	}
	if s.SD(-5) != s.SD(0) || s.SD(7) != s.SD(1) {
		t.Error("quality should clamp")
	}
	// Empirical: high-quality readings are tighter.
	sig := ConstSignal{Levels: []float64{10}}
	spread := func(q float64) float64 {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			d := s.Read(sig, 0, i, q) - 10
			sum += d * d
		}
		return math.Sqrt(sum / float64(n))
	}
	if !(spread(0.95) < spread(0.2)/3) {
		t.Errorf("noise should shrink with quality: %v vs %v", spread(0.95), spread(0.2))
	}
	if _, err := NewSensor(-1, 1, rng.New(1)); err == nil {
		t.Error("negative noise should be rejected")
	}
}

func TestWeightedMean(t *testing.T) {
	var wm WeightedMean
	if got := wm.Aggregate([]float64{1, 3}, []float64{1, 1}); got != 2 {
		t.Errorf("uniform weights: %v", got)
	}
	if got := wm.Aggregate([]float64{1, 3}, []float64{3, 1}); got != 1.5 {
		t.Errorf("weighted: %v", got)
	}
	// Zero weights degrade to the plain mean.
	if got := wm.Aggregate([]float64{1, 3}, []float64{0, 0}); got != 2 {
		t.Errorf("zero-weight fallback: %v", got)
	}
	// Missing weights default to 1.
	if got := wm.Aggregate([]float64{1, 3}, nil); got != 2 {
		t.Errorf("nil weights: %v", got)
	}
	if !math.IsNaN(wm.Aggregate(nil, nil)) {
		t.Error("empty input should be NaN")
	}
}

func TestMedian(t *testing.T) {
	var m Median
	if got := m.Aggregate([]float64{5, 1, 3}, nil); got != 3 {
		t.Errorf("odd median: %v", got)
	}
	if got := m.Aggregate([]float64{4, 1, 3, 2}, nil); got != 2.5 {
		t.Errorf("even median: %v", got)
	}
	if !math.IsNaN(m.Aggregate(nil, nil)) {
		t.Error("empty input should be NaN")
	}
	// Robust to one wild outlier.
	if got := m.Aggregate([]float64{10, 11, 12, 1e9}, nil); got > 100 {
		t.Errorf("median not robust: %v", got)
	}
	in := []float64{3, 1, 2}
	m.Aggregate(in, nil)
	if in[0] != 3 {
		t.Error("median mutated its input")
	}
}

func TestTrimmedMean(t *testing.T) {
	tm := TrimmedMean{Frac: 0.25}
	// Sorted: [1 2 3 1000]; trim 1 per side -> mean(2,3) = 2.5.
	if got := tm.Aggregate([]float64{1000, 2, 1, 3}, nil); got != 2.5 {
		t.Errorf("trimmed: %v", got)
	}
	// Out-of-range fractions are clamped, not fatal.
	if got := (TrimmedMean{Frac: -1}).Aggregate([]float64{1, 3}, nil); got != 2 {
		t.Errorf("negative frac: %v", got)
	}
	if got := (TrimmedMean{Frac: 0.9}).Aggregate([]float64{1, 2, 100}, nil); math.IsNaN(got) {
		t.Error("over-trim should still return a value")
	}
	if !math.IsNaN(tm.Aggregate(nil, nil)) {
		t.Error("empty input should be NaN")
	}
	if tm.Name() != "trimmed-mean(0.25)" {
		t.Errorf("name %q", tm.Name())
	}
}

func TestAggregateRoundAndRMSE(t *testing.T) {
	sig := ConstSignal{Levels: []float64{10, 20, 30}}
	readings := []Reading{
		{Seller: 0, PoI: 0, Value: 9, Weight: 1},
		{Seller: 1, PoI: 0, Value: 11, Weight: 1},
		{Seller: 0, PoI: 1, Value: 26, Weight: 1},
		{Seller: 5, PoI: 99, Value: 1, Weight: 1}, // out of range: dropped
	}
	reports := AggregateRound(WeightedMean{}, sig, 0, 3, readings)
	if len(reports) != 3 {
		t.Fatalf("reports %d", len(reports))
	}
	if reports[0].Estimate != 10 || reports[0].Error() != 0 || reports[0].Readings != 2 {
		t.Errorf("PoI 0 report %+v", reports[0])
	}
	if reports[1].Estimate != 26 || reports[1].Error() != 6 {
		t.Errorf("PoI 1 report %+v", reports[1])
	}
	if reports[2].Readings != 0 || !math.IsNaN(reports[2].Estimate) {
		t.Errorf("PoI 2 should be empty: %+v", reports[2])
	}
	// RMSE over covered PoIs: sqrt((0² + 6²)/2).
	want := math.Sqrt(36.0 / 2)
	if got := RMSE(reports); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE %v, want %v", got, want)
	}
	if !math.IsNaN(RMSE([]Report{{Readings: 0}})) {
		t.Error("RMSE of no coverage should be NaN")
	}
}

// TestQualitySelectionReducesError is the point of the subsystem:
// aggregating readings from high-quality sellers yields lower RMSE
// than from low-quality ones, with the same operator.
func TestQualitySelectionReducesError(t *testing.T) {
	sig := SineSignal{Base: 50, Amp: 10, Period: 48}
	sensor, err := NewSensor(0.1, 3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	run := func(q float64) float64 {
		var total float64
		rounds := 300
		for round := 0; round < rounds; round++ {
			var readings []Reading
			for s := 0; s < 10; s++ {
				for poi := 0; poi < 4; poi++ {
					readings = append(readings, Reading{
						Seller: s, PoI: poi,
						Value:  sensor.Read(sig, poi, round, q),
						Weight: q,
					})
				}
			}
			total += RMSE(AggregateRound(WeightedMean{}, sig, round, 4, readings))
		}
		return total / float64(rounds)
	}
	hi, lo := run(0.95), run(0.1)
	if !(hi < lo/2) {
		t.Errorf("high-quality RMSE %v should be well below low-quality %v", hi, lo)
	}
}

func BenchmarkWeightedMean100(b *testing.B) {
	values := make([]float64, 100)
	weights := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 0.5
	}
	var wm WeightedMean
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wm.Aggregate(values, weights)
	}
}
