package bandit

import (
	"testing"

	"cmabhs/internal/rng"
)

// seedArms returns an estimator with each arm observed a few times at
// its true mean.
func seedArms(means []float64, obsPerArm int) *Arms {
	arms := NewArms(len(means))
	for i, m := range means {
		batch := make([]float64, obsPerArm)
		for j := range batch {
			batch[j] = m
		}
		arms.Update(i, batch)
	}
	return arms
}

func TestUCBGreedyPrefersUnobserved(t *testing.T) {
	arms := NewArms(5)
	arms.Update(0, []float64{0.9})
	arms.Update(1, []float64{0.95})
	arms.Update(2, []float64{0.99})
	// Arms 3 and 4 unobserved => infinite UCB => always selected.
	got := UCBGreedy{}.SelectK(2, arms, 2)
	if !(contains(got, 3) && contains(got, 4)) {
		t.Fatalf("unobserved arms should be explored first, got %v", got)
	}
}

func TestUCBGreedyExploitsWithEqualCounts(t *testing.T) {
	means := []float64{0.1, 0.9, 0.5, 0.8, 0.3}
	arms := seedArms(means, 100)
	got := UCBGreedy{}.SelectK(2, arms, 2)
	// Equal counts: UCB order == mean order.
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestOracleAlwaysOptimal(t *testing.T) {
	expected := []float64{0.2, 0.9, 0.4, 0.7}
	o := NewOracle(expected)
	arms := NewArms(4) // oracle ignores estimates
	first := o.SelectK(1, arms, 2)
	if first[0] != 1 || first[1] != 3 {
		t.Fatalf("oracle picked %v", first)
	}
	// Stable across rounds. SelectK results are borrowed (the oracle
	// serves its cached set without copying), so the repeat call must
	// return the same selection — and may share the same backing.
	second := o.SelectK(2, arms, 2)
	if second[0] != 1 || second[1] != 3 {
		t.Fatalf("oracle selection unstable: %v", second)
	}
	// Changing K invalidates the cache.
	three := o.SelectK(3, arms, 3)
	if len(three) != 3 || three[2] != 2 {
		t.Fatalf("oracle K=3 picked %v", three)
	}
	if o.Name() != "optimal" {
		t.Errorf("name %q", o.Name())
	}
}

func TestRandomSelectsValidSets(t *testing.T) {
	r := NewRandom(rng.New(9))
	arms := NewArms(10)
	counts := make([]int, 10)
	for round := 0; round < 3000; round++ {
		got := r.SelectK(round, arms, 3)
		if len(got) != 3 {
			t.Fatalf("len = %d", len(got))
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= 10 || seen[i] {
				t.Fatalf("invalid selection %v", got)
			}
			seen[i] = true
			counts[i]++
		}
	}
	// Uniformity: each arm expected 900 picks.
	for i, c := range counts {
		if c < 700 || c > 1100 {
			t.Errorf("arm %d picked %d times; selection not uniform", i, c)
		}
	}
}

func TestEpsilonFirstPhases(t *testing.T) {
	means := []float64{0.1, 0.9, 0.5, 0.8}
	arms := seedArms(means, 10)
	p := NewEpsilonFirst(0.5, 100, rng.New(10))
	// Exploration phase: selections vary.
	varied := false
	prev := p.SelectK(1, arms, 2)
	for round := 2; round <= 50; round++ {
		got := p.SelectK(round, arms, 2)
		if got[0] != prev[0] || got[1] != prev[1] {
			varied = true
		}
		prev = got
	}
	if !varied {
		t.Error("exploration phase looks deterministic")
	}
	// Exploitation phase: greedy on means.
	for round := 51; round <= 100; round++ {
		got := p.SelectK(round, arms, 2)
		if got[0] != 1 || got[1] != 3 {
			t.Fatalf("round %d: exploitation picked %v", round, got)
		}
	}
	if p.Name() != "0.5-first" {
		t.Errorf("name %q", p.Name())
	}
}

func TestEpsilonFirstClampsEpsilon(t *testing.T) {
	if NewEpsilonFirst(-1, 10, rng.New(1)).Epsilon != 0 {
		t.Error("epsilon < 0 should clamp to 0")
	}
	if NewEpsilonFirst(2, 10, rng.New(1)).Epsilon != 1 {
		t.Error("epsilon > 1 should clamp to 1")
	}
}

func TestEpsilonGreedyMixes(t *testing.T) {
	means := []float64{0.1, 0.9, 0.5, 0.8}
	arms := seedArms(means, 10)
	p := NewEpsilonGreedy(0.3, rng.New(11))
	greedy, other := 0, 0
	for round := 0; round < 2000; round++ {
		got := p.SelectK(round, arms, 2)
		if got[0] == 1 && got[1] == 3 {
			greedy++
		} else {
			other++
		}
	}
	// Exploration rate 0.3 and random picks occasionally coincide with
	// the greedy set, so the greedy share is a bit above 0.7.
	frac := float64(greedy) / 2000
	if frac < 0.65 || frac > 0.85 {
		t.Errorf("greedy fraction %v, want ≈0.7–0.75", frac)
	}
}

func TestThompsonConvergesToBestArms(t *testing.T) {
	means := []float64{0.2, 0.9, 0.4, 0.85, 0.1}
	arms := seedArms(means, 2000) // tight posteriors
	p := NewThompson(rng.New(12))
	hits := 0
	for round := 0; round < 200; round++ {
		got := p.SelectK(round, arms, 2)
		if (got[0] == 1 && got[1] == 3) || (got[0] == 3 && got[1] == 1) {
			hits++
		}
	}
	if hits < 190 {
		t.Errorf("Thompson with tight posteriors picked best pair only %d/200 times", hits)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
