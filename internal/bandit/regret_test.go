package bandit

import (
	"math"
	"testing"

	"cmabhs/internal/numutil"
	"cmabhs/internal/rng"
)

func TestRegretTrackerConstruction(t *testing.T) {
	expected := []float64{0.9, 0.2, 0.7, 0.5, 0.4}
	r := NewRegretTracker(expected, 2, 10)
	opt := r.OptimalSet()
	if opt[0] != 0 || opt[1] != 2 {
		t.Fatalf("optimal set %v", opt)
	}
	// Δ_min = q_(2) − q_(3) = 0.7 − 0.5
	if !numutil.AlmostEqual(r.DeltaMin(), 0.2, 1e-12) {
		t.Errorf("DeltaMin = %v", r.DeltaMin())
	}
	// Δ_max = (0.9+0.7) − (0.2+0.4) = 1.0
	if !numutil.AlmostEqual(r.DeltaMax(), 1.0, 1e-12) {
		t.Errorf("DeltaMax = %v", r.DeltaMax())
	}
}

func TestRegretTrackerPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRegretTracker([]float64{0.5}, 2, 1) },
		func() { NewRegretTracker([]float64{0.5}, 0, 1) },
		func() { NewRegretTracker([]float64{0.5}, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRegretAccounting(t *testing.T) {
	expected := []float64{0.9, 0.2, 0.7}
	r := NewRegretTracker(expected, 2, 10)
	// Optimal pick: zero regret.
	r.Record([]int{0, 2})
	if r.Regret() != 0 {
		t.Errorf("regret after optimal pick = %v", r.Regret())
	}
	if !numutil.AlmostEqual(r.ExpectedRevenue(), 16, 1e-12) { // (0.9+0.7)*10
		t.Errorf("revenue = %v", r.ExpectedRevenue())
	}
	// Non-optimal pick: regret 10·(1.6 − 1.1) = 5.
	r.Record([]int{0, 1})
	if !numutil.AlmostEqual(r.Regret(), 5, 1e-12) {
		t.Errorf("regret = %v", r.Regret())
	}
	if r.Rounds() != 2 {
		t.Errorf("rounds = %d", r.Rounds())
	}
}

// TestCounterUpdateRule exercises Eq. 37: exactly one counter (the
// least-counted selected seller) increments by L per non-optimal
// round; optimal rounds change nothing.
func TestCounterUpdateRule(t *testing.T) {
	expected := []float64{0.9, 0.8, 0.2, 0.1}
	r := NewRegretTracker(expected, 2, 10)
	r.Record([]int{0, 1}) // optimal
	for i := range expected {
		if r.Counter(i) != 0 {
			t.Fatalf("optimal round must not touch counters")
		}
	}
	r.Record([]int{0, 2}) // non-optimal; β_0 == β_2 == 0, ties pick first-min (seller 0)
	if got := r.Counter(0) + r.Counter(2); got != 10 {
		t.Fatalf("exactly one counter should gain L, got β0=%d β2=%d", r.Counter(0), r.Counter(2))
	}
	r.Record([]int{0, 2}) // the other one has the smaller counter now
	if r.Counter(0) != 10 || r.Counter(2) != 10 {
		t.Fatalf("least-counted rule violated: β0=%d β2=%d", r.Counter(0), r.Counter(2))
	}
	// Total counter mass equals L times the number of non-optimal rounds.
	var mass int64
	for i := range expected {
		mass += r.Counter(i)
	}
	if mass != 20 {
		t.Fatalf("counter mass = %d, want 20", mass)
	}
}

func TestBoundFiniteAndGrowsLogarithmically(t *testing.T) {
	expected := []float64{0.9, 0.8, 0.6, 0.4, 0.2}
	r := NewRegretTracker(expected, 2, 10)
	b1 := r.Bound(1000)
	b2 := r.Bound(100000)
	if math.IsInf(b1, 0) || b1 <= 0 {
		t.Fatalf("bound = %v", b1)
	}
	if !(b2 > b1) {
		t.Error("bound should grow with the horizon")
	}
	// Log growth: ratio should be far below the horizon ratio.
	if b2/b1 > 2 {
		t.Errorf("bound ratio %v looks super-logarithmic", b2/b1)
	}
}

func TestBoundDegenerateGap(t *testing.T) {
	// M == K: no non-optimal set exists, Δ_min = 0.
	r := NewRegretTracker([]float64{0.5, 0.6}, 2, 5)
	if !math.IsInf(r.Bound(1000), 1) {
		t.Error("degenerate gap should give +Inf bound")
	}
	if r.DeltaMin() != 0 || r.DeltaMax() != 0 {
		t.Error("gaps should be zero when M == K")
	}
}

// TestUCBGreedyRegretSublinear runs the full bandit loop (without the
// game layer) and checks the hallmark of Theorem 19: UCB-greedy
// regret grows sublinearly while random selection grows linearly.
func TestUCBGreedyRegretSublinear(t *testing.T) {
	src := rng.New(33)
	m, k, l := 20, 3, 5
	means := make([]float64, m)
	for i := range means {
		means[i] = src.Uniform(0.05, 0.95)
	}
	run := func(p Policy, rounds int) float64 {
		arms := NewArms(m)
		tracker := NewRegretTracker(means, k, l)
		obsSrc := src.Split(int64(rounds))
		// Initial exploration: every arm once (Algorithm 1, round 1).
		for i := 0; i < m; i++ {
			obs := make([]float64, l)
			for j := range obs {
				obs[j] = obsSrc.TruncNormal(means[i], 0.1, 0, 1)
			}
			arms.Update(i, obs)
		}
		for round := 2; round <= rounds; round++ {
			sel := p.SelectK(round, arms, k)
			tracker.Record(sel)
			for _, i := range sel {
				obs := make([]float64, l)
				for j := range obs {
					obs[j] = obsSrc.TruncNormal(means[i], 0.1, 0, 1)
				}
				arms.Update(i, obs)
			}
		}
		return tracker.Regret()
	}
	ucbShort := run(UCBGreedy{}, 2000)
	ucbLong := run(UCBGreedy{}, 8000)
	randShort := run(NewRandom(src.Split(1)), 2000)
	randLong := run(NewRandom(src.Split(2)), 8000)
	// Random is linear: 4x the rounds ≈ 4x the regret.
	if ratio := randLong / randShort; ratio < 3 || ratio > 5 {
		t.Errorf("random regret ratio %v, want ≈4", ratio)
	}
	// UCB is logarithmic: far less than 4x.
	if ratio := ucbLong / ucbShort; ratio > 2.5 {
		t.Errorf("UCB regret ratio %v, want ≪4", ratio)
	}
	// And UCB beats random outright.
	if !(ucbLong < randLong/4) {
		t.Errorf("UCB regret %v should be far below random %v", ucbLong, randLong)
	}
	// Theorem 19: regret stays below the bound.
	tracker := NewRegretTracker(means, k, l)
	if bound := tracker.Bound(8000); !(ucbLong < bound) {
		t.Errorf("regret %v exceeds Theorem 19 bound %v", ucbLong, bound)
	}
}

// TestCounterSchemeLemma18: run the UCB loop and check the Eq. 37
// counter bookkeeping against its defining properties and the Lemma
// 18 bound: the counter mass equals L times the number of non-optimal
// rounds, and each seller's counter stays below the lemma's
// (loose) bound.
func TestCounterSchemeLemma18(t *testing.T) {
	src := rng.New(55)
	m, k, l, n := 12, 3, 4, 4000
	means := make([]float64, m)
	for i := range means {
		means[i] = src.Uniform(0.05, 0.95)
	}
	arms := NewArms(m)
	tracker := NewRegretTracker(means, k, l)
	obsSrc := src.Split(9)
	observe := func(i int) {
		obs := make([]float64, l)
		for j := range obs {
			obs[j] = obsSrc.TruncNormal(means[i], 0.1, 0, 1)
		}
		arms.Update(i, obs)
	}
	for i := 0; i < m; i++ {
		observe(i)
	}
	nonOptimal := 0
	optSet := map[int]bool{}
	for _, i := range tracker.OptimalSet() {
		optSet[i] = true
	}
	p := UCBGreedy{}
	for round := 2; round <= n; round++ {
		sel := p.SelectK(round, arms, k)
		tracker.Record(sel)
		isOpt := true
		for _, i := range sel {
			if !optSet[i] {
				isOpt = false
			}
		}
		if !isOpt {
			nonOptimal++
		}
		for _, i := range sel {
			observe(i)
		}
	}
	var mass int64
	for i := 0; i < m; i++ {
		mass += tracker.Counter(i)
	}
	if mass != int64(l*nonOptimal) {
		t.Fatalf("counter mass %d != L·(non-optimal rounds) = %d", mass, l*nonOptimal)
	}
	// Lemma 18: E[β_i] ≤ 4K²(K+1)ln(NKL)/Δmin² + 1 + tail. The bound
	// is per-seller; with the measured Δmin it is loose, so a strict
	// per-seller check is safe.
	lemma := 4*float64(k*k*(k+1))*math.Log(float64(n*k*l))/(tracker.DeltaMin()*tracker.DeltaMin()) +
		1 + math.Pi*math.Pi/3
	for i := 0; i < m; i++ {
		if float64(tracker.Counter(i)) > lemma {
			t.Fatalf("β_%d = %d exceeds Lemma 18 bound %v", i, tracker.Counter(i), lemma)
		}
	}
}
