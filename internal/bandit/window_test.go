package bandit

import (
	"math"
	"testing"
)

func TestSlidingWindowUCBForgets(t *testing.T) {
	p := NewSlidingWindowUCB(10)
	arms := NewArms(2)
	// Rounds 1-5: arm 0 looks great, arm 1 poor.
	for round := 1; round <= 5; round++ {
		p.ObserveRound(round, 0, []float64{0.9, 0.9})
		p.ObserveRound(round, 1, []float64{0.1, 0.1})
		arms.Update(0, []float64{0.9, 0.9})
		arms.Update(1, []float64{0.1, 0.1})
	}
	if got := p.SelectK(6, arms, 1); got[0] != 0 {
		t.Fatalf("fresh evidence should pick arm 0, got %v", got)
	}
	// Quality flips; the window sees only the new regime soon.
	for round := 6; round <= 25; round++ {
		p.ObserveRound(round, 0, []float64{0.1, 0.1})
		p.ObserveRound(round, 1, []float64{0.9, 0.9})
	}
	if got := p.SelectK(26, arms, 1); got[0] != 1 {
		t.Fatalf("after the flip the window should pick arm 1, got %v", got)
	}
	// The cumulative estimator would still be confused; the window's
	// in-window means are clean.
	if p.count[0] == 0 || p.sum[0]/float64(p.count[0]) > 0.2 {
		t.Errorf("in-window mean of arm 0 should reflect the new regime")
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	p := NewSlidingWindowUCB(3)
	arms := NewArms(1)
	p.ObserveRound(1, 0, []float64{0.5})
	p.ObserveRound(2, 0, []float64{0.5})
	p.ObserveRound(5, 0, []float64{0.7})
	p.SelectK(6, arms, 1) // evicts rounds ≤ 3
	if p.count[0] != 1 || p.total != 1 {
		t.Fatalf("count=%d total=%d after eviction", p.count[0], p.total)
	}
	if p.sum[0] != 0.7 {
		t.Errorf("sum %v", p.sum[0])
	}
	// Unobserved-in-window arms become +Inf again.
	p.SelectK(20, arms, 1)
	if p.count[0] != 0 {
		t.Error("stale window should fully evict")
	}
}

func TestSlidingWindowPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSlidingWindowUCB(0)
}

func TestDiscountedUCBForgets(t *testing.T) {
	p := NewDiscountedUCB(0.9)
	arms := NewArms(2)
	for round := 1; round <= 5; round++ {
		p.ObserveRound(round, 0, []float64{0.9, 0.9})
		p.ObserveRound(round, 1, []float64{0.1, 0.1})
	}
	if got := p.SelectK(6, arms, 1); got[0] != 0 {
		t.Fatalf("fresh evidence should pick arm 0, got %v", got)
	}
	for round := 6; round <= 60; round++ {
		p.ObserveRound(round, 0, []float64{0.1, 0.1})
		p.ObserveRound(round, 1, []float64{0.9, 0.9})
	}
	if got := p.SelectK(61, arms, 1); got[0] != 1 {
		t.Fatalf("after the flip discounting should pick arm 1, got %v", got)
	}
}

func TestDiscountedUCBDecay(t *testing.T) {
	p := NewDiscountedUCB(0.5)
	p.ObserveRound(1, 0, []float64{1})
	p.advance(0, 11)
	// 10 rounds of decay at γ=0.5: weight 2^-10.
	if math.Abs(p.count[0]-math.Pow(0.5, 10)) > 1e-12 {
		t.Errorf("decayed count %v", p.count[0])
	}
	// Mean is preserved under decay (sum and count scale together).
	if math.Abs(p.sum[0]/p.count[0]-1) > 1e-9 {
		t.Errorf("decayed mean %v", p.sum[0]/p.count[0])
	}
}

func TestDiscountedUCBPanicsOnBadGamma(t *testing.T) {
	for _, g := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("gamma=%v should panic", g)
				}
			}()
			NewDiscountedUCB(g)
		}()
	}
}

func TestWindowPoliciesRespectMask(t *testing.T) {
	arms := NewArms(3)
	arms.Deactivate(0)
	for _, p := range []Policy{NewSlidingWindowUCB(5), NewDiscountedUCB(0.9)} {
		fb := p.(RoundFeedback)
		for round := 1; round <= 5; round++ {
			for i := 0; i < 3; i++ {
				fb.ObserveRound(round, i, []float64{0.9})
			}
		}
		for round := 6; round <= 12; round++ {
			for _, i := range p.SelectK(round, arms, 2) {
				if i == 0 {
					t.Fatalf("%s selected deactivated arm", p.Name())
				}
			}
		}
	}
}

func TestDynamicRegret(t *testing.T) {
	d := NewDynamicRegret(10)
	now := []float64{0.9, 0.5, 0.1}
	d.Record([]int{0, 1}, now, 2) // optimal pick: zero regret
	if d.Regret() != 0 {
		t.Errorf("regret %v", d.Regret())
	}
	d.Record([]int{1, 2}, now, 2) // gap (1.4 − 0.6)·10 = 8
	if math.Abs(d.Regret()-8) > 1e-12 {
		t.Errorf("regret %v", d.Regret())
	}
	if d.Rounds() != 2 {
		t.Errorf("rounds %d", d.Rounds())
	}
	// Changing expectations change the oracle.
	now2 := []float64{0.1, 0.5, 0.9}
	d.Record([]int{1, 2}, now2, 2) // now this IS optimal
	if math.Abs(d.Regret()-8) > 1e-12 {
		t.Errorf("dynamic oracle should track the new expectations: %v", d.Regret())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for l <= 0")
		}
	}()
	NewDynamicRegret(0)
}
