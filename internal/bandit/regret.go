package bandit

import (
	"fmt"
	"math"
	"sort"

	"cmabhs/internal/numutil"
)

// RegretTracker accounts the online performance of a policy against
// the all-knowing optimal selection (Sec. IV-A): the cumulative
// pseudo-regret of Eq. 34, the revenue gap constants Δ_min/Δ_max of
// Eqs. 35–36, the counter scheme β_i of Eq. 37, and the Theorem 19
// bound.
type RegretTracker struct {
	expected []float64 // true expectations q_i
	l        int       // PoIs per round (each selection learns L samples)
	k        int       // selection size K

	optimal    []int   // S*: indices of the top-K expected qualities
	optimalSet []bool  // membership mask for S*
	optimalVal float64 // Σ_{i∈S*} q_i

	deltaMin float64 // Eq. 36: smallest positive revenue gap
	deltaMax float64 // Eq. 35: largest revenue gap

	regret   numutil.KahanSum // cumulative pseudo-regret (revenue units)
	revenue  numutil.KahanSum // cumulative expected revenue of the policy
	rounds   int
	counters []int64 // β_i of Eq. 37
}

// NewRegretTracker builds a tracker for a population with the given
// true expectations, selection size k, and l PoIs per round.
func NewRegretTracker(expected []float64, k, l int) *RegretTracker {
	if k <= 0 || k > len(expected) {
		panic("bandit: invalid selection size")
	}
	if l <= 0 {
		panic("bandit: need at least one PoI")
	}
	r := &RegretTracker{
		expected:   append([]float64(nil), expected...),
		l:          l,
		k:          k,
		optimal:    TopK(expected, k),
		optimalSet: make([]bool, len(expected)),
		counters:   make([]int64, len(expected)),
	}
	for _, i := range r.optimal {
		r.optimalSet[i] = true
		r.optimalVal += expected[i]
	}
	// Δ_min: replace the weakest optimal seller with the strongest
	// non-optimal one — the closest non-optimal set. Δ_max: the K
	// smallest expectations — the farthest set.
	if m := len(expected); m > k {
		sorted := append([]float64(nil), expected...)
		sort.Float64s(sorted)
		r.deltaMin = sorted[m-k] - sorted[m-k-1]
		var worst float64
		for _, q := range sorted[:k] {
			worst += q
		}
		r.deltaMax = r.optimalVal - worst
	}
	return r
}

// Record accounts one round's selection. The per-round pseudo-regret
// is L·(Σ_{i∈S*} q_i − Σ_{i∈S^t} q_i), matching Eq. 1's revenue which
// sums over all L PoIs. For non-optimal selections the counter of the
// least-counted selected seller is incremented by L (Eq. 37).
func (r *RegretTracker) Record(selected []int) {
	r.rounds++
	var val float64
	optimalPick := len(selected) == r.k
	for _, i := range selected {
		val += r.expected[i]
		if !r.optimalSet[i] {
			optimalPick = false
		}
	}
	r.revenue.Add(val * float64(r.l))
	r.regret.Add((r.optimalVal - val) * float64(r.l))
	if optimalPick {
		return
	}
	// Eq. 37: find the selected seller with the smallest counter.
	minIdx := selected[0]
	for _, i := range selected[1:] {
		if r.counters[i] < r.counters[minIdx] {
			minIdx = i
		}
	}
	r.counters[minIdx] += int64(r.l)
}

// Rounds returns how many rounds have been recorded.
func (r *RegretTracker) Rounds() int { return r.rounds }

// Regret returns the cumulative pseudo-regret (Eq. 34).
func (r *RegretTracker) Regret() float64 { return r.regret.Sum() }

// ExpectedRevenue returns the cumulative expected revenue of the
// recorded selections (Eq. 1 with expectations substituted).
func (r *RegretTracker) ExpectedRevenue() float64 { return r.revenue.Sum() }

// OptimalSet returns the indices of S* (descending expectation). The
// returned slice is the tracker's own (S* is fixed at construction);
// callers must not modify it.
func (r *RegretTracker) OptimalSet() []int { return r.optimal }

// DeltaMin returns Δ_min (Eq. 36); zero when M == K.
func (r *RegretTracker) DeltaMin() float64 { return r.deltaMin }

// DeltaMax returns Δ_max (Eq. 35); zero when M == K.
func (r *RegretTracker) DeltaMax() float64 { return r.deltaMax }

// Counter returns β_i (Eq. 37).
func (r *RegretTracker) Counter(i int) int64 { return r.counters[i] }

// TrackerState is the serializable state of a RegretTracker. The
// structural fields (true expectations, K, L, the optimal set, gap
// constants) are derived from the run configuration at construction
// and therefore deliberately not persisted; only the online
// accumulators travel.
type TrackerState struct {
	Regret   numutil.KahanState `json:"regret"`
	Revenue  numutil.KahanState `json:"revenue"`
	Rounds   int                `json:"rounds"`
	Counters []int64            `json:"counters"`
}

// State exports the online accumulators for persistence.
func (r *RegretTracker) State() TrackerState {
	return TrackerState{
		Regret:   r.regret.State(),
		Revenue:  r.revenue.State(),
		Rounds:   r.rounds,
		Counters: append([]int64(nil), r.counters...),
	}
}

// Restore overwrites the online accumulators with an exported state.
func (r *RegretTracker) Restore(st TrackerState) error {
	if len(st.Counters) != len(r.counters) {
		return fmt.Errorf("bandit: tracker state covers %d arms, tracker has %d", len(st.Counters), len(r.counters))
	}
	if st.Rounds < 0 {
		return fmt.Errorf("bandit: tracker state with %d rounds", st.Rounds)
	}
	r.regret.Restore(st.Regret)
	r.revenue.Restore(st.Revenue)
	r.rounds = st.Rounds
	copy(r.counters, st.Counters)
	return nil
}

// Bound evaluates the Theorem 19 regret bound
//
//	M·Δ_max·( 4K²(K+1)·ln(NKL)/Δ_min² + 1 + π²/(3·K^(2K+1)·L^(K+2)) )
//
// for a horizon of n rounds. It returns +Inf when Δ_min is zero
// (degenerate gap).
func (r *RegretTracker) Bound(n int) float64 {
	if r.deltaMin <= 0 {
		return math.Inf(1)
	}
	m := float64(len(r.expected))
	k := float64(r.k)
	l := float64(r.l)
	logTerm := math.Log(float64(n) * k * l)
	if logTerm < 0 {
		logTerm = 0
	}
	lead := 4 * k * k * (k + 1) * logTerm / (r.deltaMin * r.deltaMin)
	tail := math.Pi * math.Pi / (3 * math.Pow(k, 2*k+1) * math.Pow(l, k+2))
	return m * r.deltaMax * (lead + 1 + tail)
}
