package bandit

import (
	"fmt"
	"math"
)

// This file implements the non-stationary extensions: policies whose
// quality estimates forget the past, for markets where sellers'
// expected qualities drift (the paper's Def. 3 Remark assumes fixed
// q_i; these policies relax that). Both maintain their own
// observation state via the RoundFeedback hook, since the shared
// Arms estimator is cumulative by design.

// RoundFeedback is implemented by policies that maintain their own
// per-round observation state. The mechanism calls ObserveRound for
// every (selected seller, observation batch) right after updating
// the shared estimator.
type RoundFeedback interface {
	ObserveRound(round, seller int, obs []float64)
}

// batch is one round's observations of one arm.
type batch struct {
	round int
	n     int64
	sum   float64
}

// SlidingWindowUCB ranks arms by a UCB computed over only the last
// Window rounds of observations (SW-UCB, Garivier & Moulines). Arms
// unobserved within the window get +Inf (re-exploration), so the
// policy tracks drifting qualities at the price of extra exploration.
type SlidingWindowUCB struct {
	Window int // rounds of memory (> 0)

	arms  [][]batch // per-arm pending batches, round-ordered
	count []int64   // in-window count per arm
	sum   []float64 // in-window sum per arm
	total int64     // in-window count across arms
}

// NewSlidingWindowUCB builds the policy with the given window length.
func NewSlidingWindowUCB(window int) *SlidingWindowUCB {
	if window <= 0 {
		panic("bandit: window must be positive")
	}
	return &SlidingWindowUCB{Window: window}
}

// Name implements Policy.
func (p *SlidingWindowUCB) Name() string { return fmt.Sprintf("sw-ucb(%d)", p.Window) }

// ObserveRound implements RoundFeedback.
func (p *SlidingWindowUCB) ObserveRound(round, seller int, obs []float64) {
	if len(obs) == 0 {
		return
	}
	p.grow(seller + 1)
	var s float64
	for _, q := range obs {
		s += q
	}
	b := batch{round: round, n: int64(len(obs)), sum: s}
	p.arms[seller] = append(p.arms[seller], b)
	p.count[seller] += b.n
	p.sum[seller] += b.sum
	p.total += b.n
}

func (p *SlidingWindowUCB) grow(n int) {
	for len(p.arms) < n {
		p.arms = append(p.arms, nil)
		p.count = append(p.count, 0)
		p.sum = append(p.sum, 0)
	}
}

// evict drops batches older than the window relative to round.
func (p *SlidingWindowUCB) evict(round int) {
	cutoff := round - p.Window
	for i := range p.arms {
		drop := 0
		for drop < len(p.arms[i]) && p.arms[i][drop].round <= cutoff {
			b := p.arms[i][drop]
			p.count[i] -= b.n
			p.sum[i] -= b.sum
			p.total -= b.n
			drop++
		}
		if drop > 0 {
			p.arms[i] = p.arms[i][drop:]
		}
	}
}

// SelectK implements Policy.
func (p *SlidingWindowUCB) SelectK(round int, arms *Arms, k int) []int {
	p.grow(arms.M())
	p.evict(round)
	logTotal := 0.0
	if p.total > 1 {
		logTotal = math.Log(float64(p.total))
	}
	scores := make([]float64, arms.M())
	for i := range scores {
		switch {
		case !arms.Active(i):
			scores[i] = math.Inf(-1)
		case p.count[i] == 0:
			scores[i] = math.Inf(1)
		default:
			n := float64(p.count[i])
			scores[i] = p.sum[i]/n + math.Sqrt(float64(k+1)*logTotal/n)
		}
	}
	return TopK(scores, k)
}

// BatchState is one round's observations of one arm on the wire.
type BatchState struct {
	Round int     `json:"round"`
	N     int64   `json:"n"`
	Sum   float64 `json:"sum"`
}

// WindowState is the serializable state of a SlidingWindowUCB.
type WindowState struct {
	Window int            `json:"window"`
	Arms   [][]BatchState `json:"arms"`
	Count  []int64        `json:"count"`
	Sum    []float64      `json:"sum"`
	Total  int64          `json:"total"`
}

// State exports the window for persistence.
func (p *SlidingWindowUCB) State() WindowState {
	st := WindowState{
		Window: p.Window,
		Arms:   make([][]BatchState, len(p.arms)),
		Count:  append([]int64(nil), p.count...),
		Sum:    append([]float64(nil), p.sum...),
		Total:  p.total,
	}
	for i, bs := range p.arms {
		if len(bs) == 0 {
			continue
		}
		row := make([]BatchState, len(bs))
		for j, b := range bs {
			row[j] = BatchState{Round: b.round, N: b.n, Sum: b.sum}
		}
		st.Arms[i] = row
	}
	return st
}

// Restore overwrites the window with an exported state.
func (p *SlidingWindowUCB) Restore(st WindowState) error {
	if st.Window != p.Window {
		return fmt.Errorf("bandit: window state for window %d, policy has %d", st.Window, p.Window)
	}
	if len(st.Arms) != len(st.Count) || len(st.Arms) != len(st.Sum) {
		return fmt.Errorf("bandit: window state with %d/%d/%d rows", len(st.Arms), len(st.Count), len(st.Sum))
	}
	arms := make([][]batch, len(st.Arms))
	for i, row := range st.Arms {
		var n int64
		var sum float64
		bs := make([]batch, len(row))
		for j, b := range row {
			if b.N < 0 {
				return fmt.Errorf("bandit: window state arm %d has negative batch count", i)
			}
			bs[j] = batch{round: b.Round, n: b.N, sum: b.Sum}
			n += b.N
			sum += b.Sum
		}
		if n != st.Count[i] {
			return fmt.Errorf("bandit: window state arm %d count %d does not match batches (%d)", i, st.Count[i], n)
		}
		arms[i] = bs
	}
	p.arms = arms
	p.count = append([]int64(nil), st.Count...)
	p.sum = append([]float64(nil), st.Sum...)
	p.total = st.Total
	return nil
}

// DiscountedUCB ranks arms by an exponentially discounted UCB
// (D-UCB): every observation's weight decays by Gamma per round, so
// old evidence fades smoothly instead of expiring abruptly.
type DiscountedUCB struct {
	Gamma float64 // per-round discount in (0, 1)

	count []float64 // discounted count per arm, valid at `asOf`
	sum   []float64 // discounted observation sum per arm
	asOf  []int     // round the aggregates are discounted to
}

// NewDiscountedUCB builds the policy with the given discount factor.
func NewDiscountedUCB(gamma float64) *DiscountedUCB {
	if gamma <= 0 || gamma >= 1 {
		panic("bandit: gamma must be in (0, 1)")
	}
	return &DiscountedUCB{Gamma: gamma}
}

// Name implements Policy.
func (p *DiscountedUCB) Name() string { return fmt.Sprintf("d-ucb(%.3f)", p.Gamma) }

func (p *DiscountedUCB) grow(n int) {
	for len(p.count) < n {
		p.count = append(p.count, 0)
		p.sum = append(p.sum, 0)
		p.asOf = append(p.asOf, 0)
	}
}

// advance discounts arm i's aggregates to the given round.
func (p *DiscountedUCB) advance(i, round int) {
	if round > p.asOf[i] {
		f := math.Pow(p.Gamma, float64(round-p.asOf[i]))
		p.count[i] *= f
		p.sum[i] *= f
		p.asOf[i] = round
	}
}

// ObserveRound implements RoundFeedback.
func (p *DiscountedUCB) ObserveRound(round, seller int, obs []float64) {
	if len(obs) == 0 {
		return
	}
	p.grow(seller + 1)
	p.advance(seller, round)
	for _, q := range obs {
		p.sum[seller] += q
	}
	p.count[seller] += float64(len(obs))
}

// SelectK implements Policy.
func (p *DiscountedUCB) SelectK(round int, arms *Arms, k int) []int {
	p.grow(arms.M())
	var total float64
	for i := range p.count {
		p.advance(i, round)
		total += p.count[i]
	}
	logTotal := 0.0
	if total > 1 {
		logTotal = math.Log(total)
	}
	scores := make([]float64, arms.M())
	for i := range scores {
		switch {
		case !arms.Active(i):
			scores[i] = math.Inf(-1)
		case p.count[i] < 1e-9:
			scores[i] = math.Inf(1)
		default:
			scores[i] = p.sum[i]/p.count[i] + math.Sqrt(float64(k+1)*logTotal/p.count[i])
		}
	}
	return TopK(scores, k)
}

// DiscountedState is the serializable state of a DiscountedUCB.
type DiscountedState struct {
	Gamma float64   `json:"gamma"`
	Count []float64 `json:"count"`
	Sum   []float64 `json:"sum"`
	AsOf  []int     `json:"as_of"`
}

// State exports the discounted aggregates for persistence.
func (p *DiscountedUCB) State() DiscountedState {
	return DiscountedState{
		Gamma: p.Gamma,
		Count: append([]float64(nil), p.count...),
		Sum:   append([]float64(nil), p.sum...),
		AsOf:  append([]int(nil), p.asOf...),
	}
}

// Restore overwrites the aggregates with an exported state.
func (p *DiscountedUCB) Restore(st DiscountedState) error {
	if st.Gamma != p.Gamma {
		return fmt.Errorf("bandit: discounted state for gamma %v, policy has %v", st.Gamma, p.Gamma)
	}
	if len(st.Count) != len(st.Sum) || len(st.Count) != len(st.AsOf) {
		return fmt.Errorf("bandit: discounted state with %d/%d/%d rows", len(st.Count), len(st.Sum), len(st.AsOf))
	}
	p.count = append([]float64(nil), st.Count...)
	p.sum = append([]float64(nil), st.Sum...)
	p.asOf = append([]int(nil), st.AsOf...)
	return nil
}

// DynamicRegret accumulates regret against the per-round dynamic
// oracle: each round's benchmark is the top-K of the qualities as
// they are *at that round*, which is the meaningful notion under
// non-stationary qualities.
type DynamicRegret struct {
	l      int
	regret float64
	rounds int
}

// NewDynamicRegret builds a tracker for l PoIs per round.
func NewDynamicRegret(l int) *DynamicRegret {
	if l <= 0 {
		panic("bandit: need at least one PoI")
	}
	return &DynamicRegret{l: l}
}

// Record accounts one round: expectedNow are the current true
// expectations, selected the chosen arms, k the selection size.
func (d *DynamicRegret) Record(selected []int, expectedNow []float64, k int) {
	d.rounds++
	opt := TopK(expectedNow, k)
	var optVal, val float64
	for _, i := range opt {
		optVal += expectedNow[i]
	}
	for _, i := range selected {
		val += expectedNow[i]
	}
	if gap := optVal - val; gap > 0 {
		d.regret += gap * float64(d.l)
	}
}

// Regret returns the cumulative dynamic regret.
func (d *DynamicRegret) Regret() float64 { return d.regret }

// Rounds returns the number of recorded rounds.
func (d *DynamicRegret) Rounds() int { return d.rounds }

// DynamicRegretState is the serializable state of a DynamicRegret.
type DynamicRegretState struct {
	Regret float64 `json:"regret"`
	Rounds int     `json:"rounds"`
}

// State exports the tracker for persistence.
func (d *DynamicRegret) State() DynamicRegretState {
	return DynamicRegretState{Regret: d.regret, Rounds: d.rounds}
}

// Restore overwrites the tracker with an exported state.
func (d *DynamicRegret) Restore(st DynamicRegretState) error {
	if st.Rounds < 0 {
		return fmt.Errorf("bandit: dynamic regret state with %d rounds", st.Rounds)
	}
	d.regret, d.rounds = st.Regret, st.Rounds
	return nil
}

var (
	_ Policy        = (*SlidingWindowUCB)(nil)
	_ Policy        = (*DiscountedUCB)(nil)
	_ RoundFeedback = (*SlidingWindowUCB)(nil)
	_ RoundFeedback = (*DiscountedUCB)(nil)
)
