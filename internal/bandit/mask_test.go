package bandit

import (
	"math"
	"testing"

	"cmabhs/internal/rng"
)

func TestDeactivateBasics(t *testing.T) {
	arms := NewArms(4)
	if arms.ActiveCount() != 4 {
		t.Fatalf("ActiveCount = %d", arms.ActiveCount())
	}
	arms.Deactivate(1)
	arms.Deactivate(1) // idempotent
	if arms.ActiveCount() != 3 || arms.Active(1) {
		t.Fatal("deactivation wrong")
	}
	got := arms.ActiveIndices()
	want := []int{0, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveIndices = %v", got)
		}
	}
	if !math.IsInf(arms.UCB(1, 3), -1) || !math.IsInf(arms.UCB1(1), -1) {
		t.Error("inactive arm must have -Inf indices")
	}
	// Statistics survive deactivation.
	arms.Update(1, []float64{0.5})
	if arms.Mean(1) != 0.5 {
		t.Error("stats should still update")
	}
	sm := arms.SelectableMeans()
	if !math.IsInf(sm[1], -1) || sm[0] != 0 {
		t.Errorf("SelectableMeans = %v", sm)
	}
	snap := arms.Snapshot()
	if snap.ActiveCount() != 3 || snap.Active(1) {
		t.Error("snapshot must copy the mask")
	}
}

// TestPoliciesRespectMask: no policy ever selects a deactivated arm.
func TestPoliciesRespectMask(t *testing.T) {
	src := rng.New(51)
	means := []float64{0.95, 0.9, 0.85, 0.2, 0.1}
	arms := seedArms(means, 50)
	// Kill the two best arms — the remaining top pair is {2, 3}.
	arms.Deactivate(0)
	arms.Deactivate(1)
	policies := []Policy{
		UCBGreedy{},
		UCB1Greedy{},
		NewOracle(means),
		NewRandom(src.Split(1)),
		NewEpsilonFirst(0.5, 100, src.Split(2)),
		NewEpsilonGreedy(0.5, src.Split(3)),
		NewThompson(src.Split(4)),
	}
	for _, p := range policies {
		for round := 1; round <= 60; round++ {
			for _, i := range p.SelectK(round, arms, 2) {
				if i == 0 || i == 1 {
					t.Fatalf("%s selected deactivated arm %d", p.Name(), i)
				}
			}
		}
	}
	// Greedy policies agree the survivors' best pair is {2, 3}.
	got := UCBGreedy{}.SelectK(99, arms, 2)
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("UCB picked %v, want [2 3]", got)
	}
	oracle := NewOracle(means).SelectK(99, arms, 2)
	if oracle[0] != 2 || oracle[1] != 3 {
		t.Errorf("oracle picked %v, want [2 3]", oracle)
	}
}

func TestOracleCacheUnaffectedByMasklessRuns(t *testing.T) {
	means := []float64{0.1, 0.9, 0.5}
	o := NewOracle(means)
	arms := NewArms(3)
	first := o.SelectK(1, arms, 2)
	arms.Deactivate(1) // best arm leaves
	second := o.SelectK(2, arms, 2)
	if second[0] != 2 || second[1] != 0 {
		t.Fatalf("post-churn oracle picked %v", second)
	}
	// And going back to a fresh mask-free estimator, the cache path
	// still returns the original set.
	third := o.SelectK(3, NewArms(3), 2)
	if third[0] != first[0] || third[1] != first[1] {
		t.Fatalf("cache corrupted: %v vs %v", third, first)
	}
}
