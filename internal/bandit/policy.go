package bandit

import (
	"fmt"
	"math"

	"cmabhs/internal/rng"
)

// Policy selects K sellers each round. Implementations see the shared
// estimator state but must not mutate it; the mechanism owns updates.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// SelectK returns the indices of the K arms to pull in round t
	// (1-based), given the current estimator state. The returned
	// slice is borrowed: a policy may reuse it on its next SelectK
	// call, so callers that retain a selection across rounds must
	// copy it.
	SelectK(round int, arms *Arms, k int) []int
}

// UCBGreedy is the paper's CMAB-HS bandit policy: select the K arms
// with the largest extended UCB indices (Eq. 19). Unobserved arms
// rank first, so the cold-start behaviour is pure exploration.
type UCBGreedy struct{}

// Name implements Policy.
func (UCBGreedy) Name() string { return "CMAB-HS" }

// SelectK implements Policy.
func (UCBGreedy) SelectK(round int, arms *Arms, k int) []int {
	scores := make([]float64, arms.M())
	for i := range scores {
		scores[i] = arms.UCB(i, k)
	}
	return TopK(scores, k)
}

// UCB1Greedy is the ablation variant using the classic UCB1 index
// instead of the (K+1)-scaled extended index.
type UCB1Greedy struct{}

// Name implements Policy.
func (UCB1Greedy) Name() string { return "UCB1" }

// SelectK implements Policy.
func (UCB1Greedy) SelectK(round int, arms *Arms, k int) []int {
	scores := make([]float64, arms.M())
	for i := range scores {
		scores[i] = arms.UCB1(i)
	}
	return TopK(scores, k)
}

// Oracle knows the true expected qualities in advance and always
// selects the same top-K set — the paper's "optimal" baseline.
type Oracle struct {
	expected []float64
	cached   []int
	scores   []float64 // churn-branch scratch, reused across rounds
	churnSel []int     // churn-branch result buffer, reused across rounds
}

// NewOracle builds the oracle from the true expectations.
func NewOracle(expected []float64) *Oracle {
	return &Oracle{expected: append([]float64(nil), expected...)}
}

// Name implements Policy.
func (*Oracle) Name() string { return "optimal" }

// SelectK implements Policy.
func (o *Oracle) SelectK(round int, arms *Arms, k int) []int {
	if arms.ActiveCount() < arms.M() {
		// Churn: re-rank among the surviving sellers each round,
		// masking departures into a reused scratch score vector.
		if cap(o.scores) < len(o.expected) {
			o.scores = make([]float64, len(o.expected))
		}
		scores := o.scores[:len(o.expected)]
		copy(scores, o.expected)
		for i := range scores {
			if !arms.Active(i) {
				scores[i] = math.Inf(-1)
			}
		}
		o.churnSel = TopKInto(o.churnSel, scores, k)
		return o.churnSel
	}
	if o.cached == nil || len(o.cached) != k {
		o.cached = TopK(o.expected, k)
	}
	return o.cached
}

// Random selects K arms uniformly at random each round — the paper's
// "random" baseline.
type Random struct {
	src *rng.Source
}

// NewRandom builds the policy with its own random stream.
func NewRandom(src *rng.Source) *Random { return &Random{src: src} }

// Name implements Policy.
func (*Random) Name() string { return "random" }

// SelectK implements Policy.
func (r *Random) SelectK(round int, arms *Arms, k int) []int {
	return randomSubset(arms, k, r.src)
}

// EpsilonFirst explores with random selections for the first ε·N
// rounds, then greedily exploits the sample means — the paper's
// "ε-first" baseline.
type EpsilonFirst struct {
	Epsilon float64 // fraction of rounds spent exploring, in [0, 1]
	Horizon int     // total rounds N
	src     *rng.Source
}

// NewEpsilonFirst builds the policy; epsilon is clamped to [0, 1].
func NewEpsilonFirst(epsilon float64, horizon int, src *rng.Source) *EpsilonFirst {
	if epsilon < 0 {
		epsilon = 0
	}
	if epsilon > 1 {
		epsilon = 1
	}
	return &EpsilonFirst{Epsilon: epsilon, Horizon: horizon, src: src}
}

// Name implements Policy.
func (p *EpsilonFirst) Name() string { return fmt.Sprintf("%.1f-first", p.Epsilon) }

// SelectK implements Policy.
func (p *EpsilonFirst) SelectK(round int, arms *Arms, k int) []int {
	if float64(round) <= p.Epsilon*float64(p.Horizon) {
		return randomSubset(arms, k, p.src)
	}
	return TopK(arms.SelectableMeans(), k)
}

// EpsilonGreedy explores with probability ε every round and exploits
// the sample means otherwise — a standard bandit baseline beyond the
// paper's comparison set.
type EpsilonGreedy struct {
	Epsilon float64
	src     *rng.Source
}

// NewEpsilonGreedy builds the policy; epsilon is clamped to [0, 1].
func NewEpsilonGreedy(epsilon float64, src *rng.Source) *EpsilonGreedy {
	if epsilon < 0 {
		epsilon = 0
	}
	if epsilon > 1 {
		epsilon = 1
	}
	return &EpsilonGreedy{Epsilon: epsilon, src: src}
}

// Name implements Policy.
func (p *EpsilonGreedy) Name() string { return fmt.Sprintf("%.2f-greedy", p.Epsilon) }

// SelectK implements Policy.
func (p *EpsilonGreedy) SelectK(round int, arms *Arms, k int) []int {
	if p.src.Float64() < p.Epsilon {
		return randomSubset(arms, k, p.src)
	}
	return TopK(arms.SelectableMeans(), k)
}

// Thompson samples a Beta posterior per arm (successes ≈ Σ
// observations, failures ≈ n − Σ observations, both plus 1) and picks
// the top-K samples — a Bayesian extension beyond the paper.
type Thompson struct {
	src *rng.Source
}

// NewThompson builds the policy with its own random stream.
func NewThompson(src *rng.Source) *Thompson { return &Thompson{src: src} }

// Name implements Policy.
func (*Thompson) Name() string { return "thompson" }

// SelectK implements Policy.
func (t *Thompson) SelectK(round int, arms *Arms, k int) []int {
	scores := make([]float64, arms.M())
	for i := range scores {
		if !arms.Active(i) {
			scores[i] = math.Inf(-1)
			continue
		}
		n := float64(arms.Count(i))
		s := arms.sum[i]
		scores[i] = t.src.Beta(s+1, n-s+1)
	}
	return TopK(scores, k)
}

// PolicyState is the serializable state of a stateful policy. It is a
// tagged union: exactly one field is set, matching the policy type.
// Stateless policies (UCBGreedy, UCB1Greedy, Oracle) have no entry —
// everything they need lives in the shared Arms estimator.
type PolicyState struct {
	RNG        *rng.State       `json:"rng,omitempty"`
	Window     *WindowState     `json:"window,omitempty"`
	Discounted *DiscountedState `json:"discounted,omitempty"`
}

// StatefulPolicy is implemented by policies carrying mutable state
// beyond the shared Arms estimator — their own RNG streams or
// forgetting windows — which must travel with a snapshot for a
// restored run to reproduce the original bit-for-bit.
type StatefulPolicy interface {
	// PolicyState exports the policy's private state.
	PolicyState() PolicyState
	// RestorePolicyState overwrites the private state; it errors when
	// the state's variant or shape does not match the policy.
	RestorePolicyState(PolicyState) error
}

// rngPolicyState exports a policy whose only private state is an RNG
// stream.
func rngPolicyState(src *rng.Source) PolicyState {
	st := src.State()
	return PolicyState{RNG: &st}
}

// restoreRNGPolicy restores an RNG-only policy state.
func restoreRNGPolicy(name string, src *rng.Source, st PolicyState) error {
	if st.RNG == nil {
		return fmt.Errorf("bandit: %s policy state without rng", name)
	}
	src.SetState(*st.RNG)
	return nil
}

// PolicyState implements StatefulPolicy.
func (r *Random) PolicyState() PolicyState { return rngPolicyState(r.src) }

// RestorePolicyState implements StatefulPolicy.
func (r *Random) RestorePolicyState(st PolicyState) error {
	return restoreRNGPolicy("random", r.src, st)
}

// PolicyState implements StatefulPolicy.
func (p *EpsilonFirst) PolicyState() PolicyState { return rngPolicyState(p.src) }

// RestorePolicyState implements StatefulPolicy.
func (p *EpsilonFirst) RestorePolicyState(st PolicyState) error {
	return restoreRNGPolicy("epsilon-first", p.src, st)
}

// PolicyState implements StatefulPolicy.
func (p *EpsilonGreedy) PolicyState() PolicyState { return rngPolicyState(p.src) }

// RestorePolicyState implements StatefulPolicy.
func (p *EpsilonGreedy) RestorePolicyState(st PolicyState) error {
	return restoreRNGPolicy("epsilon-greedy", p.src, st)
}

// PolicyState implements StatefulPolicy.
func (t *Thompson) PolicyState() PolicyState { return rngPolicyState(t.src) }

// RestorePolicyState implements StatefulPolicy.
func (t *Thompson) RestorePolicyState(st PolicyState) error {
	return restoreRNGPolicy("thompson", t.src, st)
}

// PolicyState implements StatefulPolicy.
func (p *SlidingWindowUCB) PolicyState() PolicyState {
	st := p.State()
	return PolicyState{Window: &st}
}

// RestorePolicyState implements StatefulPolicy.
func (p *SlidingWindowUCB) RestorePolicyState(st PolicyState) error {
	if st.Window == nil {
		return fmt.Errorf("bandit: sliding-window policy state without window")
	}
	return p.Restore(*st.Window)
}

// PolicyState implements StatefulPolicy.
func (p *DiscountedUCB) PolicyState() PolicyState {
	st := p.State()
	return PolicyState{Discounted: &st}
}

// RestorePolicyState implements StatefulPolicy.
func (p *DiscountedUCB) RestorePolicyState(st PolicyState) error {
	if st.Discounted == nil {
		return fmt.Errorf("bandit: discounted policy state without discounted")
	}
	return p.Restore(*st.Discounted)
}

var (
	_ StatefulPolicy = (*Random)(nil)
	_ StatefulPolicy = (*EpsilonFirst)(nil)
	_ StatefulPolicy = (*EpsilonGreedy)(nil)
	_ StatefulPolicy = (*Thompson)(nil)
	_ StatefulPolicy = (*SlidingWindowUCB)(nil)
	_ StatefulPolicy = (*DiscountedUCB)(nil)
)

// randomSubset draws k distinct active arms uniformly.
func randomSubset(arms *Arms, k int, src *rng.Source) []int {
	active := arms.ActiveIndices()
	src.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
	return active[:k]
}

var (
	_ Policy = UCBGreedy{}
	_ Policy = UCB1Greedy{}
	_ Policy = (*Oracle)(nil)
	_ Policy = (*Random)(nil)
	_ Policy = (*EpsilonFirst)(nil)
	_ Policy = (*EpsilonGreedy)(nil)
	_ Policy = (*Thompson)(nil)
)
