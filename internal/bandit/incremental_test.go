package bandit

import (
	"math/rand"
	"testing"
)

// requireSameSelection fails unless got matches want exactly
// (selection content and order).
func requireSameSelection(t *testing.T, ctx string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: selected %v, want %v", ctx, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: selected %v, want %v", ctx, got, want)
		}
	}
}

// ucbScores evaluates the dense Eq. 19 score vector the sort-based
// reference ranks.
func ucbScores(arms *Arms, k int) []float64 {
	scores := make([]float64, arms.M())
	for i := range scores {
		scores[i] = arms.UCB(i, k)
	}
	return scores
}

// TestIncrementalUCBMatchesReference: randomized equivalence of the
// tournament selector against the sort-based topKRef oracle across
// arm counts up to 1000, under churn, heavy ties (coarse observation
// values force identical means, batch sizes force identical counts),
// unobserved arms (+Inf indices), and deactivated arms (-Inf).
func TestIncrementalUCBMatchesReference(t *testing.T) {
	coarse := []float64{0, 0.25, 0.5, 0.5, 1} // repeats breed mean ties
	for _, m := range []int{1, 2, 3, 7, 50, 313, 1000} {
		rng := rand.New(rand.NewSource(int64(100 + m)))
		arms := NewArms(m)
		p := NewIncrementalUCB()
		rounds := 60
		if m >= 1000 {
			rounds = 25
		}
		for round := 1; round <= rounds; round++ {
			k := 1 + rng.Intn(m)
			got := p.SelectK(round, arms, k)
			want := topKRef(ucbScores(arms, k), k)
			requireSameSelection(t, "m,round,k", got, want)

			// Play a random subset, reporting each change as the
			// mechanism would.
			played := rng.Intn(5)
			for j := 0; j < played; j++ {
				i := rng.Intn(m)
				obs := []float64{coarse[rng.Intn(len(coarse))], coarse[rng.Intn(len(coarse))]}
				arms.Update(i, obs)
				p.ArmChanged(i)
			}
			if rng.Intn(10) == 0 && arms.ActiveCount() > 1 {
				i := rng.Intn(m)
				arms.Deactivate(i)
				p.ArmChanged(i)
			}
			if rng.Intn(25) == 0 {
				// Bulk rewrite, as a snapshot restore does.
				if err := arms.Restore(arms.State()); err != nil {
					t.Fatal(err)
				}
				p.InvalidateSelection()
			}
		}
	}
}

// TestIncrementalUCBColdStartAndExhaustedMarket: the two all-tie
// extremes — every arm unobserved (+Inf everywhere) and every arm
// deactivated (-Inf everywhere) — must reproduce TopK's index-order
// tie-breaking.
func TestIncrementalUCBColdStartAndExhaustedMarket(t *testing.T) {
	arms := NewArms(10)
	p := NewIncrementalUCB()
	requireSameSelection(t, "cold start", p.SelectK(1, arms, 4), []int{0, 1, 2, 3})

	for i := 0; i < 10; i++ {
		arms.Deactivate(i)
		p.ArmChanged(i)
	}
	requireSameSelection(t, "all inactive", p.SelectK(2, arms, 3), []int{0, 1, 2})
}

// TestIncrementalUCBMixedInfinities: unobserved (+Inf) arms rank
// first in index order, then finite indices, then deactivated (-Inf)
// arms fill out an over-sized selection — exactly as the dense TopK
// ranks the same score vector.
func TestIncrementalUCBMixedInfinities(t *testing.T) {
	arms := NewArms(6)
	arms.Update(1, []float64{0.9, 0.9})
	arms.Update(4, []float64{0.2, 0.2})
	arms.Deactivate(0)
	arms.Deactivate(5)
	// Arms 2, 3 unobserved → +Inf; arm 1 beats arm 4; arms 0, 5 → -Inf.
	p := NewIncrementalUCB()
	for k := 1; k <= 6; k++ {
		got := p.SelectK(1, arms, k)
		want := topKRef(ucbScores(arms, k), k)
		requireSameSelection(t, "mixed", got, want)
	}
}

// TestIncrementalUCBDetectsUnreportedMutation: a driver that updates
// the estimator without honoring SelectionSync must not get stale
// selections — the total-count guard forces a rebuild.
func TestIncrementalUCBDetectsUnreportedMutation(t *testing.T) {
	arms := NewArms(5)
	p := NewIncrementalUCB()
	p.SelectK(1, arms, 2)
	for i := 0; i < 5; i++ {
		q := 0.1 * float64(i+1)
		arms.Update(i, []float64{q, q, q, q}) // no ArmChanged on purpose
	}
	got := p.SelectK(2, arms, 2)
	want := topKRef(ucbScores(arms, 2), 2)
	requireSameSelection(t, "unreported mutation", got, want)
}

// TestIncrementalUCBRebuildsForNewEstimator: reusing one policy value
// across different Arms instances (as successive mechanisms might)
// rebuilds instead of selecting from the previous estimator's tree.
func TestIncrementalUCBRebuildsForNewEstimator(t *testing.T) {
	p := NewIncrementalUCB()
	a := NewArms(4)
	a.Update(3, []float64{1, 1})
	p.ArmChanged(3)
	p.SelectK(1, a, 2)

	b := NewArms(8)
	b.Update(5, []float64{0.9, 0.9})
	got := p.SelectK(1, b, 3)
	want := topKRef(ucbScores(b, 3), 3)
	requireSameSelection(t, "fresh estimator", got, want)
}

// TestIncrementalUCBSteadyStateAllocFree: once warm, a
// select→play→notify round costs zero heap allocations.
func TestIncrementalUCBSteadyStateAllocFree(t *testing.T) {
	arms := NewArms(300)
	obs := []float64{0.4, 0.6, 0.5}
	for i := 0; i < 300; i++ {
		arms.Update(i, obs)
	}
	p := NewIncrementalUCB()
	round := 1
	p.SelectK(round, arms, 10) // build the tree outside the measured region
	allocs := testing.AllocsPerRun(200, func() {
		round++
		sel := p.SelectK(round, arms, 10)
		for _, i := range sel {
			obs[0] = 0.3 + 0.4*float64(i%2)
			arms.Update(i, obs)
			p.ArmChanged(i)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SelectK allocates %v times per round, want 0", allocs)
	}
}

// TestIncrementalUCBLongRunEquivalence: drive a realistic CMAB loop
// (always play the selected set) for many rounds and require the
// incremental policy to shadow UCBGreedy bit-for-bit, including after
// the ln t drift has reordered unplayed arms many times.
func TestIncrementalUCBLongRunEquivalence(t *testing.T) {
	const m, k = 120, 7
	rng := rand.New(rand.NewSource(77))
	incArms, refArms := NewArms(m), NewArms(m)
	inc, ref := NewIncrementalUCB(), UCBGreedy{}
	truth := make([]float64, m)
	for i := range truth {
		truth[i] = rng.Float64()
	}
	obs := make([]float64, 3)
	for round := 1; round <= 2000; round++ {
		got := inc.SelectK(round, incArms, k)
		want := ref.SelectK(round, refArms, k)
		requireSameSelection(t, "long run", got, want)
		for _, i := range got {
			for j := range obs {
				if rng.Float64() < truth[i] {
					obs[j] = 1
				} else {
					obs[j] = 0
				}
			}
			incArms.Update(i, obs)
			refArms.Update(i, obs)
			inc.ArmChanged(i)
		}
	}
}

// benchArms builds a 300-arm estimator with distinct means, the
// generic post-exploration state of a real run (identical means are
// the degenerate all-ties case and cost an O(M) re-rank by design).
func benchArms() *Arms {
	arms := NewArms(300)
	rng := rand.New(rand.NewSource(4))
	obs := make([]float64, 3)
	for i := 0; i < 300; i++ {
		for j := range obs {
			obs[j] = rng.Float64()
		}
		arms.Update(i, obs)
	}
	return arms
}

func BenchmarkIncrementalUCBSelect300(b *testing.B) {
	arms := benchArms()
	p := NewIncrementalUCB()
	p.SelectK(1, arms, 10)
	obs := []float64{0.5, 0.6, 0.4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := p.SelectK(i+2, arms, 10)
		for _, s := range sel {
			arms.Update(s, obs)
			p.ArmChanged(s)
		}
	}
}

// BenchmarkUCBGreedySelect300 is the same select→play loop through
// the sort-based policy, for a like-for-like comparison.
func BenchmarkUCBGreedySelect300(b *testing.B) {
	arms := benchArms()
	p := UCBGreedy{}
	obs := []float64{0.5, 0.6, 0.4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := p.SelectK(i+2, arms, 10)
		for _, s := range sel {
			arms.Update(s, obs)
		}
	}
}
