package bandit

import (
	"fmt"
	"math"
)

// SelectionSync is implemented by policies that cache per-arm
// selection state derived from the shared Arms estimator. The
// mechanism that owns the estimator must report every mutation: call
// ArmChanged after folding observations into an arm or deactivating
// it, and InvalidateSelection after bulk rewrites (Restore). A policy
// that misses a notification would select from stale indices, so the
// contract is load-bearing for correctness, not just speed.
type SelectionSync interface {
	// ArmChanged marks arm i as modified since the last SelectK.
	ArmChanged(i int)
	// InvalidateSelection discards all cached selection state; the
	// next SelectK rebuilds from the estimator.
	InvalidateSelection()
}

// Bound inflation constants. Tournament node bounds must stay
// admissible — never below any exact Eq. 19 index in the subtree —
// despite floating-point rounding in the drift extrapolation:
// slackRel inflates the 1/sqrt(n) drift rate (the exact per-arm
// confidence divides inside the square root, the bound multiplies two
// independently rounded roots), and slackAbs absorbs the final
// additions' half-ulp rounding, which a vanishing drift term cannot.
// Both exceed the worst-case rounding error by orders of magnitude
// and only ever push a bound up, which costs (rare) extra node
// expansions, never correctness.
const (
	slackRel = 1e-9
	slackAbs = 1e-12
)

// IncrementalUCB is the allocation-free CMAB-HS selection policy: it
// returns bit-for-bit the same selections as UCBGreedy (the K arms
// with the largest extended UCB indices of Eq. 19, ties to the lower
// index) but maintains its ranking state incrementally instead of
// recomputing and fully sorting all M indices every round.
//
// The structure is a static tournament (segment) tree over the arms.
// In round-count space the Eq. 19 index of arm i is
//
//	q̄_i + sqrt(A)/sqrt(n_i),  A = (K+1)·ln Σ_j n_j,
//
// so each tournament node caches an admissible upper bound val on the
// best index in its subtree together with the sqrt(A) at which it was
// evaluated, plus the subtree's fastest possible growth rate
// (1+ε)/sqrt(min n). A cached bound is revalidated forward to the
// current round as
//
//	val + (sqrt(A_now) − sqrt(A_eval))·rate + ε′
//
// which remains an upper bound because no index can grow faster than
// the subtree's smallest-count arm. That one identity handles the
// global ln Σn_j drift without touching the tree: nothing cached
// depends on the round otherwise. Unobserved arms carry +Inf and
// deactivated arms -Inf with zero rate, so the infinities propagate
// through the same max/drift arithmetic without special cases.
//
// After a round, only the K played arms (reported via SelectionSync)
// are refreshed — each leaf re-evaluates exactly and the dirty root
// paths are re-merged level by level with shared ancestors visited
// once, O(K log M). SelectK then runs a branch-and-bound DFS from the
// root, best bound first: internal nodes are scored with their
// drifted bounds (and re-tightened as they are expanded, so staleness
// self-corrects), leaves with their exact Eq. 19 index, and subtrees
// strictly below the running K-th best are pruned. Only the top of
// the tournament is re-examined — O(K log M) node visits in the
// steady state instead of an O(M log M) re-rank.
//
// Every emitted arm is scored by the exact index UCBGreedy ranks
// (bit-for-bit: the policy reuses Arms.Confidence's own (K+1)·ln Σn_j
// product), and node bounds only ever prune subtrees strictly below
// the current K-th best exact index, so the selection — and with it
// baselines, snapshots, and chaos bit-identity — is exactly that of
// UCBGreedy. TopK over the dense score vector stays the oracle in the
// property tests.
//
// The zero value is ready to use; the tree is built lazily on the
// first SelectK (and after InvalidateSelection, e.g. following a
// snapshot restore). SelectK returns a slice that is reused on the
// next call — callers that retain it across rounds must copy.
type IncrementalUCB struct {
	arms *Arms // estimator the tree was built over
	m    int   // number of arms at build time
	k    int   // selection size the bounds were evaluated for
	base int   // first leaf node id; power of two ≥ m

	// Per-node state, indexed by tournament node id (1 = root,
	// children of n are 2n and 2n+1, arm i lives at base+i).
	val     []float64 // admissible bound on the subtree's best index…
	atSqrtA []float64 // …evaluated at this sqrt((K+1)·ln Σn_j)
	rate    []float64 // (1+ε)/sqrt(min n): the bound's max growth rate

	dirty       []int  // arms changed since the last SelectK
	marked      []bool // per-arm dedup for dirty
	invalid     bool   // full rebuild required
	syncedTotal int64  // arms.TotalCount() at the end of the last sync

	stack   []selFrame // DFS frontier, reused across calls
	path    []int      // dirty ancestor scratch, reused across calls
	sel     []int      // result buffer, reused across calls
	selVals []float64  // scores of sel, same order
}

// selFrame is one deferred DFS branch: a tournament node and the
// score it was deferred with (exact Eq. 19 index for leaves,
// admissible bound for internal nodes).
type selFrame struct {
	score float64
	node  int32
}

// NewIncrementalUCB returns an empty policy; state is built lazily
// from the Arms estimator passed to the first SelectK.
func NewIncrementalUCB() *IncrementalUCB { return &IncrementalUCB{} }

// Name implements Policy. The policy is the same CMAB-HS selection
// rule as UCBGreedy — only the evaluation strategy differs — so it
// reports the same name and is interchangeable in every output.
func (*IncrementalUCB) Name() string { return "CMAB-HS" }

// ArmChanged implements SelectionSync.
func (p *IncrementalUCB) ArmChanged(i int) {
	if p.arms == nil || p.invalid {
		return // next SelectK rebuilds everything anyway
	}
	if i < 0 || i >= p.m {
		p.invalid = true
		return
	}
	if !p.marked[i] {
		p.marked[i] = true
		p.dirty = append(p.dirty, i)
	}
}

// InvalidateSelection implements SelectionSync.
func (p *IncrementalUCB) InvalidateSelection() { p.invalid = true }

// SelectK implements Policy. The returned slice is valid until the
// next SelectK call on this policy.
func (p *IncrementalUCB) SelectK(round int, arms *Arms, k int) []int {
	if k <= 0 || k > arms.M() {
		panic(fmt.Sprintf("bandit: TopK k=%d with %d arms", k, arms.M()))
	}
	// The round-dependent factor of every Eq. 19 confidence term,
	// computed exactly as Arms.Confidence does — leaf indices are
	// mean + sqrt(a/n) with this very product, so they match
	// Arms.UCB bit-for-bit without re-deriving ln Σn_j per leaf.
	var a float64
	if total := arms.TotalCount(); total > 0 {
		logTotal := math.Log(float64(total))
		if logTotal < 0 {
			logTotal = 0
		}
		a = float64(k+1) * logTotal
	}
	sqrtA := math.Sqrt(a)
	p.sync(arms, k, a, sqrtA)

	// Partial re-selection: a branch-and-bound DFS over the
	// tournament, descending best-bound-first and keeping the running
	// top k in a TopK-style insertion buffer ordered by the same
	// total order TopK uses (score descending, ties to the lower
	// index). A subtree is pruned only when its admissible bound is
	// strictly below the current K-th best exact index — on equality
	// it is searched, because an equal bound can hide an equal-valued
	// arm at a lower index — so the buffer converges to exactly the
	// TopK selection. Every arm that enters the buffer is scored by
	// its exact Eq. 19 index; bounds only ever prune.
	sel, selVals := p.sel[:0], p.selVals[:0]
	kth := math.Inf(-1) // buffer's k-th score once full
	stack := p.stack[:0]
	stack = append(stack, selFrame{score: p.bound(1, sqrtA), node: 1})
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Re-check against the K-th best, which may have risen since
		// this branch was deferred.
		if len(sel) == k && top.score < kth {
			continue
		}
		n := int(top.node)
		if n >= p.base {
			// Leaf: insert the exact index into the result buffer.
			i := n - p.base
			if i >= p.m {
				continue // padding past M
			}
			v := top.score
			pos := len(sel)
			for pos > 0 {
				j := pos - 1
				if selVals[j] > v || (selVals[j] == v && sel[j] < i) {
					break
				}
				pos--
			}
			if pos < k {
				if len(sel) < k {
					sel = append(sel, 0)
					selVals = append(selVals, 0)
				}
				copy(sel[pos+1:], sel[pos:len(sel)-1])
				copy(selVals[pos+1:], selVals[pos:len(selVals)-1])
				sel[pos] = i
				selVals[pos] = v
				if len(sel) == k {
					kth = selVals[k-1]
				}
			}
			continue
		}
		bl := p.childScore(2*n, arms, a, sqrtA)
		br := p.childScore(2*n+1, arms, a, sqrtA)
		// Re-tighten the expanded node at the current round, so a
		// stale subtree costs one deep descent, not one per round.
		if p.rate[2*n] >= p.rate[2*n+1] {
			p.rate[n] = p.rate[2*n]
		} else {
			p.rate[n] = p.rate[2*n+1]
		}
		if bl >= br {
			p.val[n] = bl
			p.atSqrtA[n] = sqrtA
			// Defer the lesser branch; descend the better one first
			// so the K-th best rises as fast as possible.
			if !(len(sel) == k && br < kth) {
				stack = append(stack, selFrame{score: br, node: int32(2*n + 1)})
			}
			stack = append(stack, selFrame{score: bl, node: int32(2 * n)})
		} else {
			p.val[n] = br
			p.atSqrtA[n] = sqrtA
			if !(len(sel) == k && bl < kth) {
				stack = append(stack, selFrame{score: bl, node: int32(2 * n)})
			}
			stack = append(stack, selFrame{score: br, node: int32(2*n + 1)})
		}
	}
	p.stack, p.sel, p.selVals = stack, sel, selVals
	if len(sel) < k {
		// Unreachable with k ≤ M: the tree enumerates every arm.
		panic("bandit: incremental selection exhausted the tournament")
	}
	return sel
}

// childScore evaluates DFS child n: the exact Eq. 19 index for
// leaves (-Inf for padding past M), the drifted admissible bound for
// internal nodes.
func (p *IncrementalUCB) childScore(n int, arms *Arms, a, sqrtA float64) float64 {
	if n >= p.base {
		i := n - p.base
		if i >= p.m {
			return math.Inf(-1)
		}
		return leafUCB(arms, i, a)
	}
	return p.bound(n, sqrtA)
}

// leafUCB evaluates arm i's exact Eq. 19 index given the precomputed
// a = (K+1)·ln Σn_j, bit-identical to Arms.UCB (same product, same
// division, same square root).
func leafUCB(arms *Arms, i int, a float64) float64 {
	if !arms.Active(i) {
		return math.Inf(-1)
	}
	n := arms.Count(i)
	if n == 0 {
		return math.Inf(1)
	}
	return arms.Mean(i) + math.Sqrt(a/float64(n))
}

// bound returns the admissible upper bound of node n's subtree at the
// current sqrt(A), drifting the cached evaluation forward at the
// subtree's maximal growth rate. Infinite vals carry zero-ish rates,
// so the arithmetic never produces NaN.
func (p *IncrementalUCB) bound(n int, sqrtA float64) float64 {
	drift := sqrtA - p.atSqrtA[n]
	if drift < 0 {
		drift = 0
	}
	return p.val[n] + drift*p.rate[n] + slackAbs
}

// refresh re-evaluates internal node n's aggregates from its children
// at the current sqrt(A).
func (p *IncrementalUCB) refresh(n int, sqrtA float64) {
	l, r := 2*n, 2*n+1
	if p.rate[l] >= p.rate[r] {
		p.rate[n] = p.rate[l]
	} else {
		p.rate[n] = p.rate[r]
	}
	bl, br := p.bound(l, sqrtA), p.bound(r, sqrtA)
	if bl >= br {
		p.val[n] = bl
	} else {
		p.val[n] = br
	}
	p.atSqrtA[n] = sqrtA
}

// sync brings the tournament up to date: a full rebuild when the
// estimator changed identity/shape, the selection size changed, or
// the state was invalidated; otherwise a refresh of just the dirty
// leaves and their root paths.
func (p *IncrementalUCB) sync(arms *Arms, k int, a, sqrtA float64) {
	if p.arms != arms || p.m != arms.M() || p.k != k {
		p.invalid = true
	}
	if !p.invalid && len(p.dirty) == 0 && arms.TotalCount() != p.syncedTotal {
		// The estimator moved without a notification: a driver is
		// mutating arms outside the SelectionSync contract. Fall back
		// to a full rebuild rather than select from stale indices.
		p.invalid = true
	}
	if p.invalid {
		p.rebuild(arms, k, a, sqrtA)
		return
	}
	if len(p.dirty) == 0 {
		return
	}
	// Refresh dirty leaves, then re-merge their root paths level by
	// level: parents of a sorted node list are sorted, so shared
	// ancestors deduplicate by adjacency and each is visited once.
	ns := p.path[:0]
	for _, i := range p.dirty {
		p.marked[i] = false
		p.setLeaf(arms, i, a, sqrtA)
		n := p.base + i
		pos := len(ns)
		for pos > 0 && ns[pos-1] > n {
			pos--
		}
		ns = append(ns, 0)
		copy(ns[pos+1:], ns[pos:len(ns)-1])
		ns[pos] = n
	}
	p.dirty = p.dirty[:0]
	for ns[0] > 1 {
		w := 0
		for _, n := range ns {
			parent := n / 2
			if w > 0 && ns[w-1] == parent {
				continue
			}
			ns[w] = parent
			w++
		}
		ns = ns[:w]
		for _, n := range ns {
			p.refresh(n, sqrtA)
		}
	}
	p.path = ns
	p.syncedTotal = arms.TotalCount()
}

// rebuild sizes the tree for the estimator and recomputes every node.
func (p *IncrementalUCB) rebuild(arms *Arms, k int, a, sqrtA float64) {
	m := arms.M()
	base := 1
	for base < m {
		base *= 2
	}
	if p.arms != arms || p.m != m {
		p.arms, p.m, p.base = arms, m, base
		p.val = make([]float64, 2*base)
		p.atSqrtA = make([]float64, 2*base)
		p.rate = make([]float64, 2*base)
		p.marked = make([]bool, m)
		p.dirty = p.dirty[:0]
	}
	p.k = k
	for i := 0; i < m; i++ {
		p.marked[i] = false
		p.setLeaf(arms, i, a, sqrtA)
	}
	for n := base + m; n < 2*base; n++ {
		p.val[n] = math.Inf(-1)
		p.rate[n] = 0
		p.atSqrtA[n] = sqrtA
	}
	for n := base - 1; n >= 1; n-- {
		p.refresh(n, sqrtA)
	}
	p.dirty = p.dirty[:0]
	p.invalid = false
	p.syncedTotal = arms.TotalCount()
}

// setLeaf refreshes arm i's leaf from the estimator: the exact Eq. 19
// index and the exact growth rate, so leaf bounds carry no slack
// until they drift.
func (p *IncrementalUCB) setLeaf(arms *Arms, i int, a, sqrtA float64) {
	n := p.base + i
	p.val[n] = leafUCB(arms, i, a)
	p.atSqrtA[n] = sqrtA
	if c := arms.Count(i); c > 0 && arms.Active(i) {
		p.rate[n] = (1 + slackRel) / math.Sqrt(float64(c))
	} else {
		p.rate[n] = 0
	}
}

var (
	_ Policy        = (*IncrementalUCB)(nil)
	_ SelectionSync = (*IncrementalUCB)(nil)
)
