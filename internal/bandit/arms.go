// Package bandit implements the K-armed Combinatorial Multi-Armed
// Bandit substrate of CMAB-HS: per-arm quality estimators (Eqs.
// 17–18), the extended UCB index (Eq. 19), the selection policies the
// paper evaluates (UCB-greedy, optimal oracle, ε-first, random) plus
// two extensions (ε-greedy, Thompson sampling), and the regret
// accounting of Sec. IV-A (Eqs. 34–37 and the Theorem 19 bound).
package bandit

import (
	"fmt"
	"math"
)

// Arms maintains the online quality statistics of all M sellers: the
// learning counts n_i (Eq. 17), the sample means q̄_i (Eq. 18), and
// the observation sums needed by the Thompson extension.
type Arms struct {
	count    []int64   // n_i: number of quality observations folded in
	mean     []float64 // q̄_i: running sample mean
	sum      []float64 // Σ observations (for posterior-based policies)
	total    int64     // Σ_j n_j
	inactive []bool    // arms withdrawn from selection (seller churn)
	nActive  int
}

// NewArms creates estimators for m arms, all unobserved and active.
func NewArms(m int) *Arms {
	if m <= 0 {
		panic("bandit: need at least one arm")
	}
	return &Arms{
		count:    make([]int64, m),
		mean:     make([]float64, m),
		sum:      make([]float64, m),
		inactive: make([]bool, m),
		nActive:  m,
	}
}

// M returns the number of arms.
func (a *Arms) M() int { return len(a.count) }

// Update folds one round's observations of arm i into the estimator.
// A selected seller collects at all L PoIs, so its quality is learned
// L times per round (Eq. 17); pass those L values here.
func (a *Arms) Update(i int, observations []float64) {
	if len(observations) == 0 {
		return
	}
	for _, q := range observations {
		if q < 0 || q > 1 || math.IsNaN(q) {
			panic(fmt.Sprintf("bandit: observation %v outside [0,1]", q))
		}
		a.sum[i] += q
	}
	a.count[i] += int64(len(observations))
	a.total += int64(len(observations))
	a.mean[i] = a.sum[i] / float64(a.count[i])
}

// Count returns n_i.
func (a *Arms) Count(i int) int64 { return a.count[i] }

// TotalCount returns Σ_j n_j.
func (a *Arms) TotalCount() int64 { return a.total }

// Mean returns the current estimate q̄_i (0 if unobserved).
func (a *Arms) Mean(i int) float64 { return a.mean[i] }

// Means returns a copy of all current estimates.
func (a *Arms) Means() []float64 {
	return append([]float64(nil), a.mean...)
}

// MeansInto copies all current estimates into dst, growing it only
// when its capacity is short, and returns the filled slice — the
// allocation-free form of Means for hot-path callers that own a
// reusable buffer.
func (a *Arms) MeansInto(dst []float64) []float64 {
	if cap(dst) < len(a.mean) {
		dst = make([]float64, len(a.mean))
	}
	dst = dst[:len(a.mean)]
	copy(dst, a.mean)
	return dst
}

// Deactivate withdraws arm i from selection (the seller left the
// market). Its statistics are kept; deactivation is permanent.
func (a *Arms) Deactivate(i int) {
	if !a.inactive[i] {
		a.inactive[i] = true
		a.nActive--
	}
}

// Active reports whether arm i can still be selected.
func (a *Arms) Active(i int) bool { return !a.inactive[i] }

// ActiveCount returns the number of selectable arms.
func (a *Arms) ActiveCount() int { return a.nActive }

// ActiveIndices returns the selectable arm indices in order.
func (a *Arms) ActiveIndices() []int {
	out := make([]int, 0, a.nActive)
	for i, off := range a.inactive {
		if !off {
			out = append(out, i)
		}
	}
	return out
}

// UCB returns the extended upper-confidence index of arm i for a
// K-selection game (Eq. 19):
//
//	q̂_i = q̄_i + sqrt((K+1)·ln(Σ_j n_j) / n_i)
//
// Unobserved arms get +Inf so they are always explored first;
// deactivated arms get -Inf so they are never selected.
func (a *Arms) UCB(i, k int) float64 {
	if a.inactive[i] {
		return math.Inf(-1)
	}
	if a.count[i] == 0 {
		return math.Inf(1)
	}
	return a.mean[i] + a.Confidence(i, k)
}

// Confidence returns the additive exploration term ε_i of Eq. 19
// (+Inf for unobserved arms).
func (a *Arms) Confidence(i, k int) float64 {
	if a.count[i] == 0 {
		return math.Inf(1)
	}
	logTotal := math.Log(float64(a.total))
	if logTotal < 0 {
		logTotal = 0
	}
	return math.Sqrt(float64(k+1) * logTotal / float64(a.count[i]))
}

// UCB1 returns the classic single-play UCB1 index (exploration term
// sqrt(2·ln t / n_i)) — the ablation alternative to Eq. 19.
func (a *Arms) UCB1(i int) float64 {
	if a.inactive[i] {
		return math.Inf(-1)
	}
	if a.count[i] == 0 {
		return math.Inf(1)
	}
	logTotal := math.Log(float64(a.total))
	if logTotal < 0 {
		logTotal = 0
	}
	return a.mean[i] + math.Sqrt(2*logTotal/float64(a.count[i]))
}

// SelectableMeans returns the current estimates with deactivated
// arms replaced by -Inf, the score vector mean-greedy policies rank.
func (a *Arms) SelectableMeans() []float64 {
	out := append([]float64(nil), a.mean...)
	for i, off := range a.inactive {
		if off {
			out[i] = math.Inf(-1)
		}
	}
	return out
}

// Snapshot copies the estimator state, letting callers branch
// what-if explorations without disturbing the live run.
func (a *Arms) Snapshot() *Arms {
	return &Arms{
		count:    append([]int64(nil), a.count...),
		mean:     append([]float64(nil), a.mean...),
		sum:      append([]float64(nil), a.sum...),
		total:    a.total,
		inactive: append([]bool(nil), a.inactive...),
		nActive:  a.nActive,
	}
}

// ArmsState is the serializable state of an Arms estimator.
type ArmsState struct {
	Count    []int64   `json:"count"`
	Mean     []float64 `json:"mean"`
	Sum      []float64 `json:"sum"`
	Total    int64     `json:"total"`
	Inactive []bool    `json:"inactive"`
}

// State exports the estimator for persistence.
func (a *Arms) State() ArmsState {
	return ArmsState{
		Count:    append([]int64(nil), a.count...),
		Mean:     append([]float64(nil), a.mean...),
		Sum:      append([]float64(nil), a.sum...),
		Total:    a.total,
		Inactive: append([]bool(nil), a.inactive...),
	}
}

// Restore overwrites the estimator with an exported state. The state
// must describe the same number of arms the estimator was built for.
func (a *Arms) Restore(st ArmsState) error {
	m := len(a.count)
	if len(st.Count) != m || len(st.Mean) != m || len(st.Sum) != m || len(st.Inactive) != m {
		return fmt.Errorf("bandit: arms state covers %d/%d/%d/%d entries, estimator has %d arms",
			len(st.Count), len(st.Mean), len(st.Sum), len(st.Inactive), m)
	}
	var total int64
	active := 0
	for i := range st.Count {
		if st.Count[i] < 0 {
			return fmt.Errorf("bandit: arms state has negative count for arm %d", i)
		}
		total += st.Count[i]
		if !st.Inactive[i] {
			active++
		}
	}
	if total != st.Total {
		return fmt.Errorf("bandit: arms state total %d does not match per-arm sum %d", st.Total, total)
	}
	copy(a.count, st.Count)
	copy(a.mean, st.Mean)
	copy(a.sum, st.Sum)
	copy(a.inactive, st.Inactive)
	a.total = st.Total
	a.nActive = active
	return nil
}

// TopK returns the indices of the k largest values in scores,
// breaking ties by lower index, in descending score order. It panics
// if k is out of range.
func TopK(scores []float64, k int) []int {
	return TopKInto(nil, scores, k)
}

// TopKInto is TopK writing into dst (sliced to length zero and grown
// as needed), so steady-state callers can reuse one buffer. The
// result aliases dst when it has capacity k.
func TopKInto(dst []int, scores []float64, k int) []int {
	if k <= 0 || k > len(scores) {
		panic(fmt.Sprintf("bandit: TopK k=%d with %d arms", k, len(scores)))
	}
	// Selection into a small ordered buffer: O(M·K) with K ≪ M; no
	// allocation beyond the (reusable) result.
	best := dst[:0]
	if cap(best) < k {
		best = make([]int, 0, k)
	}
	for i := range scores {
		pos := len(best)
		for pos > 0 {
			j := best[pos-1]
			if scores[j] > scores[i] || (scores[j] == scores[i] && j < i) {
				break
			}
			pos--
		}
		if pos < k {
			if len(best) < k {
				best = append(best, 0)
			}
			copy(best[pos+1:], best[pos:len(best)-1])
			best[pos] = i
		}
	}
	return best
}
