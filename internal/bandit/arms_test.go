package bandit

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cmabhs/internal/numutil"
)

func TestNewArmsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArms(0)
}

// TestArmsEstimatorIsSampleMean: the iterative Eq. 17–18 update must
// equal the plain arithmetic mean of every observation seen.
func TestArmsEstimatorIsSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arms := NewArms(3)
	var all [3][]float64
	for round := 0; round < 50; round++ {
		i := rng.Intn(3)
		batch := make([]float64, 1+rng.Intn(10))
		for j := range batch {
			batch[j] = rng.Float64()
		}
		all[i] = append(all[i], batch...)
		arms.Update(i, batch)
	}
	var total int64
	for i := 0; i < 3; i++ {
		if len(all[i]) == 0 {
			if arms.Count(i) != 0 || arms.Mean(i) != 0 {
				t.Errorf("arm %d should be untouched", i)
			}
			continue
		}
		if arms.Count(i) != int64(len(all[i])) {
			t.Errorf("arm %d count %d, want %d", i, arms.Count(i), len(all[i]))
		}
		if !numutil.AlmostEqual(arms.Mean(i), numutil.Mean(all[i]), 1e-12) {
			t.Errorf("arm %d mean %v, want %v", i, arms.Mean(i), numutil.Mean(all[i]))
		}
		total += int64(len(all[i]))
	}
	if arms.TotalCount() != total {
		t.Errorf("total %d, want %d", arms.TotalCount(), total)
	}
}

func TestArmsUpdateRejectsBadObservations(t *testing.T) {
	arms := NewArms(1)
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("observation %v should panic", bad)
				}
			}()
			arms.Update(0, []float64{bad})
		}()
	}
	arms.Update(0, nil) // no-op, no panic
	if arms.Count(0) != 0 {
		t.Error("nil batch should not count")
	}
}

func TestUCBProperties(t *testing.T) {
	arms := NewArms(2)
	if !math.IsInf(arms.UCB(0, 5), 1) {
		t.Error("unobserved arm must have +Inf UCB")
	}
	arms.Update(0, []float64{0.5, 0.5})
	arms.Update(1, []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	// Same mean, fewer observations => larger UCB.
	if !(arms.UCB(0, 5) > arms.UCB(1, 5)) {
		t.Error("less-observed arm should have larger UCB")
	}
	// UCB exceeds the mean by exactly the confidence term.
	k := 5
	want := arms.Mean(0) + math.Sqrt(float64(k+1)*math.Log(float64(arms.TotalCount()))/float64(arms.Count(0)))
	if !numutil.AlmostEqual(arms.UCB(0, k), want, 1e-12) {
		t.Errorf("UCB = %v, want %v", arms.UCB(0, k), want)
	}
	// Larger K widens the confidence.
	if !(arms.UCB(0, 10) > arms.UCB(0, 2)) {
		t.Error("larger K must widen the bound")
	}
	// UCB1 is finite and above the mean too.
	if u := arms.UCB1(0); !(u > arms.Mean(0)) || math.IsInf(u, 0) {
		t.Errorf("UCB1 = %v", u)
	}
}

// TestUCBConfidenceShrinks: the exploration term vanishes as an arm
// is observed more, so UCB converges to the sample mean.
func TestUCBConfidenceShrinks(t *testing.T) {
	arms := NewArms(1)
	// Past n=3, sqrt(ln n / n) is monotone decreasing; seed beyond the
	// ln(1)=0 cold-start artifact first.
	arms.Update(0, []float64{0.4, 0.4, 0.4, 0.4})
	prev := arms.Confidence(0, 3)
	for batch := 0; batch < 12; batch++ {
		obs := make([]float64, 1<<batch)
		for i := range obs {
			obs[i] = 0.4
		}
		arms.Update(0, obs)
		conf := arms.Confidence(0, 3)
		if conf >= prev {
			t.Fatalf("confidence did not shrink: %v -> %v", prev, conf)
		}
		prev = conf
	}
	if prev > 0.1 {
		t.Errorf("confidence should be small after ~4k samples, got %v", prev)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	arms := NewArms(2)
	arms.Update(0, []float64{0.3})
	snap := arms.Snapshot()
	arms.Update(0, []float64{0.9})
	arms.Update(1, []float64{0.1})
	if snap.Mean(0) != 0.3 || snap.Count(1) != 0 || snap.TotalCount() != 1 {
		t.Error("snapshot shares state with the live estimator")
	}
}

// topKRef is the obvious sort-based reference implementation.
func topKRef(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

func TestTopKAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(n)
		scores := make([]float64, n)
		for i := range scores {
			// Coarse values force plenty of ties.
			scores[i] = float64(rng.Intn(6))
		}
		got := TopK(scores, k)
		want := topKRef(scores, k)
		if len(got) != k {
			t.Fatalf("len = %d, want %d", len(got), k)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("TopK(%v, %d) = %v, want %v", scores, k, got, want)
			}
		}
	}
}

func TestTopKInfinities(t *testing.T) {
	scores := []float64{0.5, math.Inf(1), 0.2, math.Inf(1)}
	got := TopK(scores, 3)
	want := []int{1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, -1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			TopK([]float64{1, 2}, k)
		}()
	}
}

func TestTopKPropertyMembersDominate(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) {
				return true
			}
			scores[i] = v
		}
		k := 1 + int(kRaw)%len(scores)
		got := TopK(scores, k)
		in := make(map[int]bool, k)
		for _, i := range got {
			if in[i] {
				return false // duplicates
			}
			in[i] = true
		}
		// Every member's score >= every non-member's score.
		minIn := math.Inf(1)
		for i := range in {
			if scores[i] < minIn {
				minIn = scores[i]
			}
		}
		for i, s := range scores {
			if !in[i] && s > minIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopK300x10(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	scores := make([]float64, 300)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(scores, 10)
	}
}

func BenchmarkUCBSelect300(b *testing.B) {
	arms := NewArms(300)
	for i := 0; i < 300; i++ {
		arms.Update(i, []float64{0.5, 0.6, 0.4})
	}
	p := UCBGreedy{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SelectK(i+1, arms, 10)
	}
}
