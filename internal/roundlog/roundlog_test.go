package roundlog

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cmabhs/internal/bandit"
	"cmabhs/internal/core"
	"cmabhs/internal/economics"
	"cmabhs/internal/game"
	"cmabhs/internal/market"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
)

func runWithJournal(t *testing.T) (*bytes.Buffer, *core.Result) {
	t.Helper()
	src := rng.New(3)
	means := quality.RandomMeans(10, 0.05, 0.95, src)
	model, err := quality.NewTruncGaussian(means, 0.1, src.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	sellers := make([]market.SellerSpec, 10)
	for i := range sellers {
		sellers[i] = market.SellerSpec{Cost: economics.SellerCost{
			A: src.Uniform(0.1, 0.5), B: src.Uniform(0.1, 1),
		}}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "CMAB-HS")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &core.Config{
		Market: market.Config{
			Job:      market.Job{L: 4, N: 300},
			Sellers:  sellers,
			Platform: economics.PlatformCost{Theta: 0.1, Lambda: 1},
			Consumer: economics.Valuation{Omega: 1000},
			PJBounds: game.Bounds{Min: 0, Max: 100},
			PBounds:  game.Bounds{Min: 0, Max: 5},
			Quality:  model,
		},
		K: 3,
		Observer: func(ev *core.RoundEvent) {
			if err := w.Append(ev.Record); err != nil {
				t.Fatal(err)
			}
		},
	}
	res, err := core.Run(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf, res
}

// TestJournalRoundTripAndVerify: a full run journaled via the
// Observer replays to exactly the reported result.
func TestJournalRoundTripAndVerify(t *testing.T) {
	buf, res := runWithJournal(t)
	policy, rounds, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if policy != "CMAB-HS" {
		t.Errorf("policy %q", policy)
	}
	if len(rounds) != 300 {
		t.Fatalf("journal has %d rounds", len(rounds))
	}
	if rounds[0].Round != 1 || len(rounds[0].Selected) != 10 {
		t.Errorf("round 1 record %+v", rounds[0])
	}
	rep := Summarize(rounds)
	if err := Verify(rep, res, 1e-9); err != nil {
		t.Fatal(err)
	}
	// The journal also reconciles money flows: spend covers payouts
	// plus the platform's net (ignoring its aggregation cost, which
	// is not a transfer).
	if rep.SellerPayout > rep.ConsumerSpend {
		t.Errorf("payout %v exceeds spend %v", rep.SellerPayout, rep.ConsumerSpend)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	buf, res := runWithJournal(t)
	_, rounds, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rounds[42].Realized *= 2 // cook the books
	if err := Verify(Summarize(rounds), res, 1e-9); err == nil {
		t.Fatal("tampered journal should fail verification")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", `{"t":1}` + "\n"},
		{"wrong schema", `{"schema":"nope","version":1}` + "\n"},
		{"future version", `{"schema":"cdt-roundlog","version":99}` + "\n"},
		{"bad entry", `{"schema":"cdt-roundlog","version":1}` + "\nnot json\n"},
	}
	for _, tc := range cases {
		if _, _, err := Read(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Blank lines are tolerated.
	in := `{"schema":"cdt-roundlog","version":1}` + "\n\n" +
		`{"t":1,"sel":[0],"pj":1,"p":1,"tau":[1],"poc":1,"pop":1,"pos":[1],"rev":1}` + "\n"
	_, rounds, err := Read(strings.NewReader(in))
	if err != nil || len(rounds) != 1 {
		t.Fatalf("blank-line journal: %v, %d rounds", err, len(rounds))
	}
	if rounds[0].TotalTau != 1 || !math.IsNaN(rounds[0].AggRMSE) {
		t.Errorf("derived fields wrong: %+v", rounds[0])
	}
}

func TestSummarizeEmpty(t *testing.T) {
	rep := Summarize(nil)
	if rep.Rounds != 0 || rep.RealizedRevenue != 0 {
		t.Errorf("empty replay %+v", rep)
	}
}
