package roundlog

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"cmabhs/internal/core"
)

func segRecords(n, base int) []core.RoundRecord {
	recs := make([]core.RoundRecord, n)
	for i := range recs {
		recs[i] = core.RoundRecord{
			Round:         base + i,
			Selected:      []int{i, i + 1},
			PJ:            1.5 + float64(i),
			P:             0.25 * float64(i+1),
			Taus:          []float64{0.5, 1.25},
			TotalTau:      1.75,
			PoC:           10 + float64(i),
			PoP:           5 - float64(i),
			SellerProfits: []float64{0.1, 0.2},
			NoTrade:       i%3 == 0,
			Realized:      float64(i) * 1.125,
		}
	}
	return recs
}

func buildSegment(t *testing.T, job string, base int, recs []core.RoundRecord) []byte {
	t.Helper()
	hdr, err := EncodeSegmentHeader(job, base)
	if err != nil {
		t.Fatal(err)
	}
	body, err := EncodeSegmentRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	return append(hdr, body...)
}

func TestSegmentRoundTrip(t *testing.T) {
	recs := segRecords(5, 7)
	data := buildSegment(t, "job-3", 7, recs)

	seg, err := ReadSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Job != "job-3" || seg.Base != 7 || seg.Torn {
		t.Fatalf("header round-trip: %+v", seg)
	}
	if len(seg.Rounds) != len(recs) {
		t.Fatalf("got %d rounds, want %d", len(seg.Rounds), len(recs))
	}
	for i, got := range seg.Rounds {
		want := recs[i]
		if got.Round != want.Round || got.PJ != want.PJ || got.P != want.P ||
			got.PoC != want.PoC || got.PoP != want.PoP || got.Realized != want.Realized ||
			got.NoTrade != want.NoTrade {
			t.Errorf("round %d: got %+v want %+v", i, got, want)
		}
		if !math.IsNaN(got.AggRMSE) {
			t.Errorf("round %d: AggRMSE should be NaN after decode, got %v", i, got.AggRMSE)
		}
	}
}

func TestSegmentEmpty(t *testing.T) {
	data := buildSegment(t, "job-1", 1, nil)
	seg, err := ReadSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Rounds) != 0 || seg.Torn || seg.Base != 1 {
		t.Fatalf("empty segment: %+v", seg)
	}
}

// A crash mid-append leaves a final line with no terminating newline:
// it must be discarded and reported, and every preceding line kept.
func TestSegmentTornTailNoNewline(t *testing.T) {
	recs := segRecords(4, 1)
	data := buildSegment(t, "job-1", 1, recs)
	for cut := 1; cut < 40; cut += 7 {
		torn := data[:len(data)-cut]
		seg, err := ReadSegment(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !seg.Torn {
			t.Fatalf("cut %d: tear not reported", cut)
		}
		if len(seg.Rounds) != 3 {
			t.Fatalf("cut %d: kept %d rounds, want 3", cut, len(seg.Rounds))
		}
	}
}

// A torn write that happens to end at a newline (e.g. garbage bytes
// flushed before the crash) shows up as an undecodable final line —
// discarded the same way.
func TestSegmentTornTailBadJSONLine(t *testing.T) {
	data := buildSegment(t, "job-1", 1, segRecords(2, 1))
	data = append(data, []byte("{\"t\":3,\"sel\":[1\n")...)
	seg, err := ReadSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Torn || len(seg.Rounds) != 2 {
		t.Fatalf("torn=%v rounds=%d, want torn with 2 rounds", seg.Torn, len(seg.Rounds))
	}
}

// Corruption anywhere except the final line is NOT a torn tail — it
// means lost history, and the read must fail instead of silently
// truncating the log.
func TestSegmentMidFileCorruptionFails(t *testing.T) {
	recs := segRecords(3, 1)
	hdr, _ := EncodeSegmentHeader("job-1", 1)
	line1, _ := EncodeSegmentRecords(recs[:1])
	line3, _ := EncodeSegmentRecords(recs[2:])
	data := append(hdr, line1...)
	data = append(data, []byte("not json\n")...)
	data = append(data, line3...)
	if _, err := ReadSegment(data); err == nil {
		t.Fatal("mid-file corruption read back without error")
	}
}

func TestSegmentHeaderErrors(t *testing.T) {
	if _, err := ReadSegment(nil); !errors.Is(err, ErrBadHeader) {
		t.Errorf("empty file: %v", err)
	}
	if _, err := ReadSegment([]byte("{\"schema\":\"cdt-roundlog\",\"version\":1}\n")); !errors.Is(err, ErrBadHeader) {
		t.Errorf("audit-journal header accepted as segment: %v", err)
	}
	if _, err := ReadSegment([]byte("{\"schema\":\"cdt-wal\",\"version\":99,\"job\":\"j\",\"base\":1}\n")); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: %v", err)
	}
	// A header-only file whose single line is torn has no header yet.
	hdr, _ := EncodeSegmentHeader("job-1", 1)
	if _, err := ReadSegment(bytes.TrimSuffix(hdr, []byte("\n"))); !errors.Is(err, ErrBadHeader) {
		t.Errorf("torn header: %v", err)
	}
}

// TestAppendSegmentRecordIncremental: encoding one record at a time
// into a shared buffer — the broker observer's zero-copy WAL feed —
// must produce the exact bytes of the batch encoder and must leave the
// borrowed record's slices untouched.
func TestAppendSegmentRecordIncremental(t *testing.T) {
	recs := segRecords(6, 3)
	batch, err := EncodeSegmentRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	var incr []byte
	for i := range recs {
		selBefore := append([]int(nil), recs[i].Selected...)
		if incr, err = AppendSegmentRecord(incr, &recs[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(intsAsBytes(selBefore), intsAsBytes(recs[i].Selected)) {
			t.Fatalf("record %d mutated by encoder", i)
		}
	}
	if !bytes.Equal(batch, incr) {
		t.Fatalf("incremental encoding diverged from batch:\n%s\nvs\n%s", incr, batch)
	}
}

func intsAsBytes(xs []int) []byte {
	out := make([]byte, 0, len(xs))
	for _, x := range xs {
		out = append(out, byte(x))
	}
	return out
}

// The lease epoch stamped by a clustered broker must round-trip, and —
// the single-node compatibility contract — epoch 0 must produce bytes
// identical to the pre-epoch header, so an unclustered broker's WAL
// files never change shape.
func TestSegmentEpochRoundTrip(t *testing.T) {
	hdr, err := EncodeSegmentHeaderEpoch("job-a-1", 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ReadSegment(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Job != "job-a-1" || seg.Base != 9 || seg.Epoch != 3 {
		t.Fatalf("epoch header round-trip: %+v", seg)
	}

	plain, err := EncodeSegmentHeader("job-1", 4)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := EncodeSegmentHeaderEpoch("job-1", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, zero) {
		t.Fatalf("epoch-0 header differs from the legacy form:\n%s%s", plain, zero)
	}
	if bytes.Contains(plain, []byte("epoch")) {
		t.Fatalf("legacy header leaks the epoch field: %s", plain)
	}
	if seg, err := ReadSegment(plain); err != nil || seg.Epoch != 0 {
		t.Fatalf("legacy header read: %+v err=%v", seg, err)
	}
}
