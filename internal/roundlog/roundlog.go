// Package roundlog implements the durable trade log of a CDT market:
// an append-only, line-delimited JSON journal of per-round records,
// with a schema header, a reader, and a replay routine that recomputes
// the run's cumulative metrics from the log alone. The log is the
// audit trail — any party can re-derive revenues, profits, and
// payments from it and check them against the reported result.
package roundlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"cmabhs/internal/core"
	"cmabhs/internal/numutil"
)

// Version identifies the journal schema.
const Version = 1

// header is the first line of every journal.
type header struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Policy  string `json:"policy,omitempty"`
}

// entry is one journaled round. Field names are kept short: a 1e5
// round journal is written once per run.
type entry struct {
	T   int       `json:"t"`
	Sel []int     `json:"sel"`
	PJ  float64   `json:"pj"`
	P   float64   `json:"p"`
	Tau []float64 `json:"tau"`
	PoC float64   `json:"poc"`
	PoP float64   `json:"pop"`
	PoS []float64 `json:"pos"`
	NT  bool      `json:"nt,omitempty"`
	Rev float64   `json:"rev"`
}

// Writer appends rounds to a journal.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter starts a journal on w with the schema header.
func NewWriter(w io.Writer, policy string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: "cdt-roundlog", Version: Version, Policy: policy}); err != nil {
		return nil, err
	}
	return &Writer{w: bw, enc: enc}, nil
}

// newEntry converts a round record to its journal line form.
func newEntry(rec *core.RoundRecord) entry {
	return entry{
		T:   rec.Round,
		Sel: rec.Selected,
		PJ:  rec.PJ,
		P:   rec.P,
		Tau: rec.Taus,
		PoC: rec.PoC,
		PoP: rec.PoP,
		PoS: rec.SellerProfits,
		NT:  rec.NoTrade,
		Rev: rec.Realized,
	}
}

// record converts a journal line back to a round record. TotalTau is
// recomputed from the sensing times; AggRMSE is not journaled (NaN).
func (e *entry) record() core.RoundRecord {
	return core.RoundRecord{
		Round:         e.T,
		Selected:      e.Sel,
		PJ:            e.PJ,
		P:             e.P,
		Taus:          e.Tau,
		PoC:           e.PoC,
		PoP:           e.PoP,
		SellerProfits: e.PoS,
		NoTrade:       e.NT,
		Realized:      e.Rev,
		TotalTau:      numutil.SumSlice(e.Tau),
		AggRMSE:       math.NaN(),
	}
}

// Append journals one round record.
func (w *Writer) Append(rec *core.RoundRecord) error {
	return w.enc.Encode(newEntry(rec))
}

// Flush writes any buffered entries through to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Errors returned by Read.
var (
	ErrBadHeader = errors.New("roundlog: missing or invalid journal header")
	ErrVersion   = errors.New("roundlog: unsupported journal version")
)

// Read parses a whole journal, returning the policy name and the
// rounds in order.
func Read(r io.Reader) (policy string, rounds []core.RoundRecord, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", nil, err
		}
		return "", nil, ErrBadHeader
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Schema != "cdt-roundlog" {
		return "", nil, ErrBadHeader
	}
	if h.Version != Version {
		return "", nil, fmt.Errorf("%w (%d)", ErrVersion, h.Version)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return "", nil, fmt.Errorf("roundlog: line %d: %w", line, err)
		}
		rounds = append(rounds, e.record())
	}
	if err := sc.Err(); err != nil {
		return "", nil, err
	}
	return h.Policy, rounds, nil
}

// Replay recomputes the cumulative metrics from a journal's rounds.
type Replay struct {
	Rounds          int
	RealizedRevenue float64
	CumPoC, CumPoP  float64
	CumPoS          float64
	ConsumerSpend   float64 // Σ p^J·Στ
	SellerPayout    float64 // Σ p·τ_i over all sellers and rounds
}

// Summarize folds the journal's rounds into a Replay.
func Summarize(rounds []core.RoundRecord) *Replay {
	var rev, poc, pop, pos, spend, payout numutil.KahanSum
	for i := range rounds {
		r := &rounds[i]
		rev.Add(r.Realized)
		poc.Add(r.PoC)
		pop.Add(r.PoP)
		for _, sp := range r.SellerProfits {
			pos.Add(sp)
		}
		spend.Add(r.PJ * r.TotalTau)
		for _, tau := range r.Taus {
			payout.Add(r.P * tau)
		}
	}
	return &Replay{
		Rounds:          len(rounds),
		RealizedRevenue: rev.Sum(),
		CumPoC:          poc.Sum(),
		CumPoP:          pop.Sum(),
		CumPoS:          pos.Sum(),
		ConsumerSpend:   spend.Sum(),
		SellerPayout:    payout.Sum(),
	}
}

// Verify checks a replayed journal against a reported result,
// returning a descriptive error on the first mismatch. tol is the
// relative tolerance (floats accumulate differently across orderings).
func Verify(rep *Replay, res *core.Result, tol float64) error {
	checks := []struct {
		name      string
		got, want float64
	}{
		{"rounds", float64(rep.Rounds), float64(res.RoundsPlayed)},
		{"realized revenue", rep.RealizedRevenue, res.RealizedRevenue},
		{"consumer profit", rep.CumPoC, res.CumPoC},
		{"platform profit", rep.CumPoP, res.CumPoP},
		{"seller profit", rep.CumPoS, res.CumPoS},
		{"consumer spend", rep.ConsumerSpend, res.ConsumerSpend},
	}
	for _, c := range checks {
		if !numutil.AlmostEqual(c.got, c.want, tol) {
			return fmt.Errorf("roundlog: %s mismatch: journal %v vs result %v", c.name, c.got, c.want)
		}
	}
	return nil
}
