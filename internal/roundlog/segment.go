// WAL segments: the line-delimited JSON journal reused as the broker's
// per-job write-ahead round log. A segment is one file — a header line
// naming the schema, the job, and the base round (the 1-based index of
// the first round the segment may hold, i.e. the snapshot it extends),
// followed by one entry line per round in the same short-field format
// the audit journal uses.
//
// Unlike the audit journal, a segment is written incrementally by a
// live process and read back after a crash, so the reader tolerates
// exactly one torn write: a final line that is incomplete (no
// trailing newline) or undecodable is DISCARDED and reported, never an
// error. Anything torn before the final line is real corruption and
// fails the read.
package roundlog

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cmabhs/internal/core"
)

// SegmentSchema names the WAL-segment flavor of the journal in its
// header line, distinguishing a segment from an audit journal.
const SegmentSchema = "cdt-wal"

// SegmentVersion identifies the segment schema.
const SegmentVersion = 1

// segmentHeader is the first line of every WAL segment. Epoch is the
// lease epoch of the broker node that opened the segment; 0 (omitted,
// keeping single-node headers byte-identical to the pre-lease format)
// means the segment was opened outside any ownership protocol.
type segmentHeader struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Job     string `json:"job"`
	Base    int    `json:"base"`            // 1-based round index the segment starts at
	Epoch   int64  `json:"epoch,omitempty"` // lease epoch of the writer, 0 when unowned
}

// EncodeSegmentHeader renders the header line (newline-terminated) for
// a segment holding rounds base, base+1, ... of job.
func EncodeSegmentHeader(job string, base int) ([]byte, error) {
	return EncodeSegmentHeaderEpoch(job, base, 0)
}

// EncodeSegmentHeaderEpoch is EncodeSegmentHeader with the writer's
// lease epoch stamped into the header. A recovering node compares the
// stamp against its own lease: a segment from a HIGHER epoch means
// another owner already advanced past this node's view of the job, so
// resuming from it would fork history.
func EncodeSegmentHeaderEpoch(job string, base int, epoch int64) ([]byte, error) {
	data, err := json.Marshal(segmentHeader{
		Schema: SegmentSchema, Version: SegmentVersion, Job: job, Base: base, Epoch: epoch,
	})
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// EncodeSegmentRecords renders round records as entry lines ready to
// append to a segment. Each line is newline-terminated; a crash mid
// write tears at most the final line, which ReadSegment discards.
func EncodeSegmentRecords(recs []core.RoundRecord) ([]byte, error) {
	var buf []byte
	for i := range recs {
		var err error
		if buf, err = AppendSegmentRecord(buf, &recs[i]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// AppendSegmentRecord renders one round record as a newline-terminated
// entry line and appends it to dst, returning the extended buffer. It
// only READS the record, so callers holding a borrowed record (the
// mechanism's pooled per-round storage) can encode it in place instead
// of deep-copying rounds they never retain; bytes produced are
// identical to EncodeSegmentRecords.
func AppendSegmentRecord(dst []byte, rec *core.RoundRecord) ([]byte, error) {
	line, err := json.Marshal(newEntry(rec))
	if err != nil {
		return dst, err
	}
	dst = append(dst, line...)
	return append(dst, '\n'), nil
}

// Segment is a decoded WAL segment.
type Segment struct {
	Job   string // job id from the header
	Base  int    // first round the segment may hold
	Epoch int64  // lease epoch of the node that opened it (0: unowned)
	// Rounds are the decoded records in append order.
	Rounds []core.RoundRecord
	// Torn reports that the final line was incomplete or undecodable
	// — the signature of a crash mid-append — and was discarded.
	Torn bool
}

// ReadSegment decodes a whole segment from its raw bytes, discarding a
// torn final line. An empty or header-less file, a wrong schema, or an
// undecodable line anywhere but last is an error.
func ReadSegment(data []byte) (*Segment, error) {
	lines, torn := splitTorn(data)
	if len(lines) == 0 {
		return nil, ErrBadHeader
	}
	var h segmentHeader
	if err := json.Unmarshal(lines[0], &h); err != nil || h.Schema != SegmentSchema {
		return nil, ErrBadHeader
	}
	if h.Version != SegmentVersion {
		return nil, fmt.Errorf("%w (%d)", ErrVersion, h.Version)
	}
	seg := &Segment{Job: h.Job, Base: h.Base, Epoch: h.Epoch, Torn: torn}
	for i, ln := range lines[1:] {
		if len(ln) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(ln, &e); err != nil {
			if i == len(lines)-2 {
				// Undecodable final line: a torn write that happened to
				// end in a newline. Discard it like any other torn tail.
				seg.Torn = true
				break
			}
			return nil, fmt.Errorf("roundlog: segment line %d: %w", i+2, err)
		}
		seg.Rounds = append(seg.Rounds, e.record())
	}
	return seg, nil
}

// splitTorn splits data into newline-terminated lines. A final chunk
// with no terminating newline is a torn write: it is dropped and
// reported rather than returned.
func splitTorn(data []byte) (lines [][]byte, torn bool) {
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			return lines, true
		}
		lines = append(lines, data[:i])
		data = data[i+1:]
	}
	return lines, false
}
