package faults

import (
	"fmt"

	"cmabhs/internal/rng"
)

// StragglerConfig parameterizes collection-phase latency injection:
// with probability Prob a delivery straggles, taking Exponential
// extra time with mean MeanDelay (in round-duration units). A
// straggler whose delay exceeds the round deadline misses the round
// entirely — its data arrives too late to aggregate, so the market
// treats it as a non-delivery (no data, no pay, no cost).
type StragglerConfig struct {
	Prob      float64 `json:"prob,omitempty"`       // probability a delivery straggles
	MeanDelay float64 `json:"mean_delay,omitempty"` // mean extra latency of a straggler
	// Deadline caps tolerated latency. 0 falls back to the job's
	// round duration T; if that is also unset, stragglers are slow
	// but never late (the model only matters with a deadline).
	Deadline float64 `json:"deadline,omitempty"`
}

func (c StragglerConfig) enabled() bool { return c.Prob > 0 }

func (c StragglerConfig) validate() error {
	if c.Prob < 0 || c.Prob > 1 {
		return fmt.Errorf("faults: straggler prob %v outside [0, 1]", c.Prob)
	}
	if c.Prob > 0 && c.MeanDelay <= 0 {
		return fmt.Errorf("faults: straggler mean_delay %v must be positive", c.MeanDelay)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("faults: straggler deadline %v negative", c.Deadline)
	}
	return nil
}

// Straggler injects the latency. One uniform draw decides whether a
// delivery straggles; stragglers consume one further draw for the
// delay. Non-straggling deliveries are instant.
type Straggler struct {
	cfg StragglerConfig
	src *rng.Source
}

// NewStraggler builds the model.
func NewStraggler(cfg StragglerConfig, src *rng.Source) *Straggler {
	return &Straggler{cfg: cfg, src: src}
}

// OnTime draws one delivery's latency and reports whether it beats
// the deadline. deadline <= 0 uses the configured Deadline; if both
// are unset the delivery is always on time.
func (s *Straggler) OnTime(deadline float64) bool {
	if s.src.Float64() >= s.cfg.Prob {
		return true // not a straggler: instant
	}
	delay := s.src.Exponential(1 / s.cfg.MeanDelay)
	if s.cfg.Deadline > 0 {
		deadline = s.cfg.Deadline
	}
	if deadline <= 0 {
		return true // slow, but nothing to miss
	}
	return delay <= deadline
}
