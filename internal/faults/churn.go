package faults

import (
	"fmt"

	"cmabhs/internal/rng"
)

// Churn models permanent seller departures (the paper's Remark on
// long-term jobs: a seller that leaves can no longer be selected).
// Departure rounds are fixed — scripted, or drawn once at
// construction — so churn needs no live state in snapshots: it is
// fully rebuilt from configuration on resume.
type Churn interface {
	// DepartureRound returns the round at whose START the seller
	// permanently leaves (it can no longer be selected from that round
	// on); 0 means the seller never departs.
	DepartureRound(seller int) int
}

// ChurnConfig parameterizes renewal churn: seller lifetimes are
// i.i.d. exponential with the given hazard rate, making departures a
// Poisson process over the population. The scripted Departures slice
// of the market configuration remains available and composes with
// this model (the earlier departure wins).
type ChurnConfig struct {
	// Rate is the per-round departure hazard λ: each seller's
	// lifetime is Exponential(λ) rounds, so a fraction ≈ λ of the
	// surviving population departs per round (for small λ).
	Rate float64 `json:"rate,omitempty"`
	// MinRound floors every drawn departure round (default 2: no
	// seller departs before the initial exploration completes).
	MinRound int `json:"min_round,omitempty"`
}

func (c ChurnConfig) enabled() bool { return c.Rate > 0 }

func (c ChurnConfig) validate() error {
	if c.Rate < 0 {
		return fmt.Errorf("faults: churn rate %v negative", c.Rate)
	}
	if c.MinRound < 0 {
		return fmt.Errorf("faults: churn min_round %d negative", c.MinRound)
	}
	return nil
}

// RenewalChurn holds the departure round of every seller, drawn once
// from exponential lifetimes.
type RenewalChurn struct {
	departs []int
}

// NewRenewalChurn draws each seller's departure round from
// Exponential(cfg.Rate), floored at cfg.MinRound (default 2).
func NewRenewalChurn(cfg ChurnConfig, sellers int, src *rng.Source) *RenewalChurn {
	minRound := cfg.MinRound
	if minRound == 0 {
		minRound = 2
	}
	c := &RenewalChurn{departs: make([]int, sellers)}
	for i := range c.departs {
		d := minRound + int(src.Exponential(cfg.Rate))
		c.departs[i] = d
	}
	return c
}

// DepartureRound implements Churn.
func (c *RenewalChurn) DepartureRound(seller int) int { return c.departs[seller] }

// Scripted is the legacy departure list lifted into the Churn
// interface: entry i is seller i's departure round (0 = never).
type Scripted []int

// DepartureRound implements Churn.
func (s Scripted) DepartureRound(seller int) int {
	if seller >= len(s) {
		return 0
	}
	return s[seller]
}

// ComposeChurn merges churn models: the earliest positive departure
// round wins. nil models are skipped; the result is nil when nothing
// remains.
func ComposeChurn(models ...Churn) Churn {
	var live []Churn
	for _, m := range models {
		if m != nil {
			live = append(live, m)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return composed(live)
}

type composed []Churn

// DepartureRound implements Churn as the min over the composed
// models' positive departure rounds.
func (c composed) DepartureRound(seller int) int {
	best := 0
	for _, m := range c {
		d := m.DepartureRound(seller)
		if d > 0 && (best == 0 || d < best) {
			best = d
		}
	}
	return best
}

var (
	_ Churn = (*RenewalChurn)(nil)
	_ Churn = Scripted(nil)
	_ Churn = composed(nil)
)
