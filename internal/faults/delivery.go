package faults

import (
	"fmt"

	"cmabhs/internal/rng"
)

// Delivery models whether a selected seller's round of data arrives
// at the platform. Implementations must be deterministic given their
// Source and be consulted exactly once per (round, seller) check, in
// a stable order, so runs stay reproducible and snapshot-safe.
type Delivery interface {
	// Deliver reports whether seller's data for round arrives.
	Deliver(round, seller int) bool
}

// IID is the seed market's independent-failure model: every check
// succeeds with probability rate, independently of everything else.
// It consumes exactly one uniform draw per check — the precise draw
// sequence of the legacy market.Config.DeliveryRate path, which makes
// it the backward-compatible special case of the fault layer.
type IID struct {
	rate float64
	src  *rng.Source
}

// NewIID builds the i.i.d. delivery model over an externally seeded
// stream. rate must lie in (0, 1].
func NewIID(rate float64, src *rng.Source) *IID {
	return &IID{rate: rate, src: src}
}

// Deliver implements Delivery: success iff the draw lands within
// rate. (The legacy path failed iff draw > rate; this is the same
// predicate, preserving the exact bit stream.)
func (d *IID) Deliver(round, seller int) bool {
	return d.src.Float64() <= d.rate
}

// Source exposes the underlying stream for snapshot export.
func (d *IID) Source() *rng.Source { return d.src }

// DeliveryConfig parameterizes a Gilbert–Elliott on/off channel per
// seller: a two-state Markov chain (good/bad) advanced once per
// delivery check, with a state-dependent loss probability. The
// classic burst-loss regime is LossGood ≈ 0, LossBad ≈ 1 with small
// transition probabilities: long clean stretches punctuated by
// multi-round outages, which i.i.d. failures cannot produce.
type DeliveryConfig struct {
	GoodToBad float64 `json:"good_to_bad,omitempty"` // P(good→bad) per check
	BadToGood float64 `json:"bad_to_good,omitempty"` // P(bad→good) per check
	LossGood  float64 `json:"loss_good,omitempty"`   // loss probability in good state
	LossBad   float64 `json:"loss_bad,omitempty"`    // loss probability in bad state
}

// enabled reports whether the channel can ever lose a delivery.
func (c DeliveryConfig) enabled() bool {
	return c.LossGood > 0 || (c.GoodToBad > 0 && c.LossBad > 0)
}

func (c DeliveryConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"good_to_bad", c.GoodToBad}, {"bad_to_good", c.BadToGood},
		{"loss_good", c.LossGood}, {"loss_bad", c.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: delivery %s=%v outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// GilbertElliott is the per-seller bursty delivery channel. All
// sellers share one stream (checks happen in selection order, which
// is deterministic), but each keeps its own chain state, so one
// seller's outage burst does not depend on who else was selected.
type GilbertElliott struct {
	cfg DeliveryConfig
	bad []bool // chain state per seller; false = good (initial)
	src *rng.Source
}

// NewGilbertElliott builds the channel with every seller starting in
// the good state.
func NewGilbertElliott(cfg DeliveryConfig, sellers int, src *rng.Source) *GilbertElliott {
	return &GilbertElliott{cfg: cfg, bad: make([]bool, sellers), src: src}
}

// Deliver advances seller's chain one step and then draws the loss:
// exactly two uniform draws per check.
func (g *GilbertElliott) Deliver(round, seller int) bool {
	u := g.src.Float64()
	if g.bad[seller] {
		if u < g.cfg.BadToGood {
			g.bad[seller] = false
		}
	} else if u < g.cfg.GoodToBad {
		g.bad[seller] = true
	}
	loss := g.cfg.LossGood
	if g.bad[seller] {
		loss = g.cfg.LossBad
	}
	return g.src.Float64() >= loss
}

// Bad reports whether seller's channel currently sits in the bad
// state (for tests and diagnostics).
func (g *GilbertElliott) Bad(seller int) bool { return g.bad[seller] }

var (
	_ Delivery = (*IID)(nil)
	_ Delivery = (*GilbertElliott)(nil)
)
