// Package faults implements the composable failure models of the CDT
// market. The paper's failure story is thin — sellers may silently
// fail to deliver (Sec. VII: no data ⇒ no pay) and the market seed
// modeled exactly that as i.i.d. per-round delivery failures plus a
// scripted departure list. This package generalizes both into a
// seeded, snapshot-safe fault layer:
//
//   - Gilbert–Elliott delivery channels: a per-seller two-state
//     (good/bad) Markov chain whose loss probability depends on the
//     state, producing the bursty, correlated outages real sensing
//     fleets show. The legacy i.i.d. DeliveryRate path is the
//     special case GoodToBad = BadToGood = 0, LossGood = 1−rate.
//   - Renewal seller churn: per-seller departure rounds drawn from
//     exponential lifetimes (a Poisson departure process over the
//     population), generalizing the scripted Departures slice, with
//     which it composes (earliest departure wins).
//   - Straggler latency for the collection phase: a delivery
//     occasionally takes Exp-distributed extra time; if it blows the
//     round deadline it degrades into a miss (no data, no pay).
//   - Byzantine quality corruption: a fixed subset of sellers
//     reports inflated or randomized observations, corrupting the
//     bandit's feedback without touching honest sellers' streams.
//
// Every model draws from its own rng.Source split off the fault
// seed, so adding or removing one model never perturbs another's
// stream, and a zero-intensity model consumes no randomness at all —
// a market with all injectors at zero intensity is bit-identical to
// one with no fault layer. Live stream positions (and the channel
// states of the Gilbert–Elliott chains) export through State and
// restore through Injector.Restore, so faulted runs snapshot and
// resume exactly like clean ones.
package faults

import (
	"errors"
	"fmt"

	"cmabhs/internal/rng"
)

// Stream-split keys for the fault models. Construction-only streams
// (churn lifetimes, Byzantine subset selection) are separate from the
// live streams so live streams start at position zero.
const (
	keyDelivery   = 0x0de1
	keyChurn      = 0x0c42
	keyStraggler  = 0x057a
	keyCorruption = 0x0c09
	keyByzantine  = 0x0b52
)

// Config declares a market's fault models. The zero value injects
// nothing; each sub-config activates independently, and all streams
// derive from Seed.
type Config struct {
	Seed       int64            `json:"seed,omitempty"`
	Delivery   DeliveryConfig   `json:"delivery,omitempty"`
	Churn      ChurnConfig      `json:"churn,omitempty"`
	Straggler  StragglerConfig  `json:"straggler,omitempty"`
	Corruption CorruptionConfig `json:"corruption,omitempty"`
}

// Zero reports whether the configuration injects nothing (every model
// at zero intensity).
func (c *Config) Zero() bool {
	if c == nil {
		return true
	}
	return !c.Delivery.enabled() && !c.Churn.enabled() &&
		!c.Straggler.enabled() && !c.Corruption.enabled()
}

// Validate checks every sub-configuration. sellers is the market's
// population size M (used to range-check explicit seller lists).
func (c *Config) Validate(sellers int) error {
	if c == nil {
		return nil
	}
	if err := c.Delivery.validate(); err != nil {
		return err
	}
	if err := c.Churn.validate(); err != nil {
		return err
	}
	if err := c.Straggler.validate(); err != nil {
		return err
	}
	return c.Corruption.validate(sellers)
}

// Injector is a live, assembled fault layer. A nil *Injector is valid
// and injects nothing. Not safe for concurrent use — like the rest of
// the market it is owned by one mechanism loop.
type Injector struct {
	// Delivery decides whether a selected seller's data arrives; nil
	// means every delivery succeeds.
	Delivery Delivery
	// Churn decides when sellers permanently leave; nil means no
	// seller ever departs.
	Churn Churn
	// Straggler injects collection latency; nil means instant.
	Straggler *Straggler
	// Corruption rewrites Byzantine sellers' observations; nil means
	// every report is honest.
	Corruption *Corruption
}

// New assembles an injector from a configuration. It returns nil when
// the configuration is zero intensity, so callers can use the nil
// injector as the fast path.
func New(cfg *Config, sellers int) (*Injector, error) {
	if cfg.Zero() {
		return nil, nil
	}
	if err := cfg.Validate(sellers); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	inj := &Injector{}
	if cfg.Delivery.enabled() {
		inj.Delivery = NewGilbertElliott(cfg.Delivery, sellers, root.Split(keyDelivery))
	}
	if cfg.Churn.enabled() {
		inj.Churn = NewRenewalChurn(cfg.Churn, sellers, root.Split(keyChurn))
	}
	if cfg.Straggler.enabled() {
		inj.Straggler = NewStraggler(cfg.Straggler, root.Split(keyStraggler))
	}
	if cfg.Corruption.enabled() {
		inj.Corruption = NewCorruption(cfg.Corruption, sellers, root.Split(keyByzantine), root.Split(keyCorruption))
	}
	return inj, nil
}

// Empty reports whether the injector injects nothing.
func (inj *Injector) Empty() bool {
	return inj == nil ||
		(inj.Delivery == nil && inj.Churn == nil && inj.Straggler == nil && inj.Corruption == nil)
}

// Delivers runs the delivery-phase models for one selected seller in
// one round: the delivery channel first, then — only for data that
// left the seller at all — straggler latency against the deadline.
// deadline <= 0 means no deadline (stragglers always arrive in time).
func (inj *Injector) Delivers(round, seller int, deadline float64) bool {
	if inj == nil {
		return true
	}
	if inj.Delivery != nil && !inj.Delivery.Deliver(round, seller) {
		return false
	}
	if inj.Straggler != nil && !inj.Straggler.OnTime(deadline) {
		return false
	}
	return true
}

// DepartureRound returns the round at whose start the seller
// permanently leaves the market (0 = never).
func (inj *Injector) DepartureRound(seller int) int {
	if inj == nil || inj.Churn == nil {
		return 0
	}
	return inj.Churn.DepartureRound(seller)
}

// Corrupt passes one observation through the corruption model.
func (inj *Injector) Corrupt(seller, poi, round int, obs float64) float64 {
	if inj == nil || inj.Corruption == nil {
		return obs
	}
	return inj.Corruption.Corrupt(seller, poi, round, obs)
}

// State is the serializable live state of an injector: stream
// positions plus the Gilbert–Elliott channel states. Models with no
// live state (churn departure rounds are fixed at construction)
// contribute nothing.
type State struct {
	Delivery   *rng.State `json:"delivery,omitempty"`
	Channels   []bool     `json:"channels,omitempty"` // true = bad state
	Straggler  *rng.State `json:"straggler,omitempty"`
	Corruption *rng.State `json:"corruption,omitempty"`
}

// zero reports whether the state carries nothing.
func (s *State) zero() bool {
	return s == nil || (s.Delivery == nil && len(s.Channels) == 0 &&
		s.Straggler == nil && s.Corruption == nil)
}

// State exports the injector's live state; nil when there is nothing
// to persist (nil injector, or only construction-time models).
func (inj *Injector) State() *State {
	if inj == nil {
		return nil
	}
	st := &State{}
	if ge, ok := inj.Delivery.(*GilbertElliott); ok {
		s := ge.src.State()
		st.Delivery = &s
		st.Channels = append([]bool(nil), ge.bad...)
	}
	if inj.Straggler != nil {
		s := inj.Straggler.src.State()
		st.Straggler = &s
	}
	if inj.Corruption != nil && inj.Corruption.hasStream() {
		s := inj.Corruption.src.State()
		st.Corruption = &s
	}
	if st.zero() {
		return nil
	}
	return st
}

// Restore overwrites the injector's live state with an exported one.
// The injector must be structurally identical to the one the state
// was exported from; mismatches are errors.
func (inj *Injector) Restore(st *State) error {
	ge, _ := inj.deliveryChannel()
	if (ge != nil) != (st != nil && st.Delivery != nil) {
		return errors.New("faults: delivery channel state does not match configuration")
	}
	if ge != nil {
		if len(st.Channels) != len(ge.bad) {
			return fmt.Errorf("faults: state has %d channel states, injector has %d sellers", len(st.Channels), len(ge.bad))
		}
		ge.src.SetState(*st.Delivery)
		copy(ge.bad, st.Channels)
	}
	if (inj != nil && inj.Straggler != nil) != (st != nil && st.Straggler != nil) {
		return errors.New("faults: straggler state does not match configuration")
	}
	if st != nil && st.Straggler != nil {
		inj.Straggler.src.SetState(*st.Straggler)
	}
	wantCorr := inj != nil && inj.Corruption != nil && inj.Corruption.hasStream()
	if wantCorr != (st != nil && st.Corruption != nil) {
		return errors.New("faults: corruption state does not match configuration")
	}
	if st != nil && st.Corruption != nil {
		inj.Corruption.src.SetState(*st.Corruption)
	}
	return nil
}

// deliveryChannel returns the Gilbert–Elliott channel, if that is the
// configured delivery model.
func (inj *Injector) deliveryChannel() (*GilbertElliott, bool) {
	if inj == nil {
		return nil, false
	}
	ge, ok := inj.Delivery.(*GilbertElliott)
	return ge, ok
}
