package faults

import (
	"fmt"
	"sort"

	"cmabhs/internal/rng"
)

// Corruption modes.
const (
	// CorruptInflate adds a fixed bias to every Byzantine
	// observation, clamped to 1 — the self-promoting seller that
	// reports better data than it senses. Inflation is the classic
	// attack on UCB-style mechanisms: the bandit overestimates the
	// attacker and keeps selecting it.
	CorruptInflate = "inflate"
	// CorruptRandom replaces every Byzantine observation with an
	// independent uniform draw on [0, 1] — a broken or adversarially
	// noisy sensor whose reports carry no signal.
	CorruptRandom = "random"
)

// CorruptionConfig parameterizes Byzantine sellers: a fixed subset of
// the population whose reported observations are corrupted before the
// mechanism sees them. The subset is either explicit (Sellers) or
// drawn once from the fault seed (Fraction of the population).
type CorruptionConfig struct {
	// Fraction of the population that is Byzantine (rounded to the
	// nearest seller count). Ignored when Sellers is set.
	Fraction float64 `json:"fraction,omitempty"`
	// Sellers lists explicit Byzantine seller ids.
	Sellers []int `json:"sellers,omitempty"`
	// Mode is CorruptInflate (default) or CorruptRandom.
	Mode string `json:"mode,omitempty"`
	// Inflation is the bias added in inflate mode (default 0.3).
	Inflation float64 `json:"inflation,omitempty"`
}

func (c CorruptionConfig) enabled() bool { return c.Fraction > 0 || len(c.Sellers) > 0 }

func (c CorruptionConfig) validate(sellers int) error {
	if c.Fraction < 0 || c.Fraction > 1 {
		return fmt.Errorf("faults: byzantine fraction %v outside [0, 1]", c.Fraction)
	}
	for _, i := range c.Sellers {
		if i < 0 || i >= sellers {
			return fmt.Errorf("faults: byzantine seller %d out of range [0, %d)", i, sellers)
		}
	}
	switch c.Mode {
	case "", CorruptInflate, CorruptRandom:
	default:
		return fmt.Errorf("faults: unknown corruption mode %q", c.Mode)
	}
	if c.Inflation < 0 {
		return fmt.Errorf("faults: inflation %v negative", c.Inflation)
	}
	return nil
}

// Corruption applies the Byzantine model. The subset is fixed at
// construction; only CorruptRandom consumes live randomness.
type Corruption struct {
	byz       []bool
	mode      string
	inflation float64
	src       *rng.Source // live stream, used by CorruptRandom only
}

// NewCorruption builds the model. pick seeds the subset selection
// (consumed at construction only); src is the live corruption stream.
func NewCorruption(cfg CorruptionConfig, sellers int, pick, src *rng.Source) *Corruption {
	c := &Corruption{
		byz:       make([]bool, sellers),
		mode:      cfg.Mode,
		inflation: cfg.Inflation,
		src:       src,
	}
	if c.mode == "" {
		c.mode = CorruptInflate
	}
	if c.inflation == 0 {
		c.inflation = 0.3
	}
	if len(cfg.Sellers) > 0 {
		for _, i := range cfg.Sellers {
			c.byz[i] = true
		}
		return c
	}
	n := int(cfg.Fraction*float64(sellers) + 0.5)
	if n > sellers {
		n = sellers
	}
	for _, i := range pick.Perm(sellers)[:n] {
		c.byz[i] = true
	}
	return c
}

// Byzantine reports whether seller i is corrupted.
func (c *Corruption) Byzantine(i int) bool { return c.byz[i] }

// ByzantineSellers returns the corrupted seller ids, sorted.
func (c *Corruption) ByzantineSellers() []int {
	var out []int
	for i, b := range c.byz {
		if b {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// hasStream reports whether the model consumes live randomness (and
// therefore has stream state to persist).
func (c *Corruption) hasStream() bool { return c.mode == CorruptRandom }

// Corrupt rewrites one observation if the seller is Byzantine.
func (c *Corruption) Corrupt(seller, poi, round int, obs float64) float64 {
	if !c.byz[seller] {
		return obs
	}
	switch c.mode {
	case CorruptRandom:
		return c.src.Float64()
	default: // CorruptInflate
		v := obs + c.inflation
		if v > 1 {
			return 1
		}
		return v
	}
}
