package faults

import (
	"encoding/json"
	"math"
	"testing"

	"cmabhs/internal/rng"
)

// TestZeroConfigInjectsNothing pins the fast path: a nil or
// zero-valued config builds no injector, and the nil injector's
// methods are total no-ops that consume no randomness.
func TestZeroConfigInjectsNothing(t *testing.T) {
	for _, cfg := range []*Config{nil, {}, {Seed: 42}} {
		inj, err := New(cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		if inj != nil {
			t.Fatalf("zero config %+v built injector %+v", cfg, inj)
		}
	}
	var inj *Injector
	if !inj.Delivers(1, 0, 5) || inj.DepartureRound(3) != 0 || inj.Corrupt(0, 0, 1, 0.5) != 0.5 {
		t.Fatal("nil injector injected something")
	}
	if inj.State() != nil {
		t.Fatal("nil injector exported state")
	}
	if !inj.Empty() {
		t.Fatal("nil injector not Empty")
	}
}

// TestGilbertElliottBurstiness checks the defining property of the
// channel: losses cluster. With a sticky bad state the conditional
// loss probability after a loss must exceed the marginal loss rate.
func TestGilbertElliottBurstiness(t *testing.T) {
	cfg := DeliveryConfig{GoodToBad: 0.05, BadToGood: 0.2, LossGood: 0.01, LossBad: 0.9}
	ge := NewGilbertElliott(cfg, 1, rng.New(7))
	const n = 200_000
	var losses, pairs, lossAfterLoss int
	prevLost := false
	for r := 0; r < n; r++ {
		lost := !ge.Deliver(r, 0)
		if lost {
			losses++
		}
		if prevLost {
			pairs++
			if lost {
				lossAfterLoss++
			}
		}
		prevLost = lost
	}
	marginal := float64(losses) / n
	conditional := float64(lossAfterLoss) / float64(pairs)
	if conditional < 2*marginal {
		t.Fatalf("no burstiness: P(loss|loss)=%.3f vs P(loss)=%.3f", conditional, marginal)
	}
	// Sanity: the marginal rate should be near the stationary mix
	// π_bad·LossBad + π_good·LossGood with π_bad = g2b/(g2b+b2g) = 0.2.
	want := 0.2*0.9 + 0.8*0.01
	if math.Abs(marginal-want) > 0.02 {
		t.Fatalf("marginal loss %.3f, want ≈%.3f", marginal, want)
	}
}

// TestIIDMatchesLegacyStream pins the backward-compatibility
// contract: the IID model must consume exactly one Float64 per check
// with the predicate draw <= rate, bit-identical to the historic
// market code.
func TestIIDMatchesLegacyStream(t *testing.T) {
	const seed, rate = 99, 0.7
	iid := NewIID(rate, rng.New(seed))
	ref := rng.New(seed)
	for r := 0; r < 1000; r++ {
		want := ref.Float64() <= rate
		if got := iid.Deliver(r, r%5); got != want {
			t.Fatalf("check %d: IID=%v legacy=%v", r, got, want)
		}
	}
}

// TestRenewalChurn checks departures are drawn at construction, are
// floored at MinRound, never change between calls, and occur at
// roughly the configured hazard.
func TestRenewalChurn(t *testing.T) {
	const sellers = 4000
	cfg := ChurnConfig{Rate: 0.01}
	ch := NewRenewalChurn(cfg, sellers, rng.New(3))
	var sum float64
	for i := 0; i < sellers; i++ {
		r := ch.DepartureRound(i)
		if r < 2 {
			t.Fatalf("seller %d departs at round %d, below the default floor", i, r)
		}
		if ch.DepartureRound(i) != r {
			t.Fatalf("seller %d departure round not stable", i)
		}
		sum += float64(r)
	}
	// Mean lifetime ≈ 1/rate = 100 (+ floor).
	if mean := sum / sellers; mean < 80 || mean > 125 {
		t.Fatalf("mean departure round %.1f, want ≈100", mean)
	}
}

// TestComposeChurn checks the earliest-positive-wins composition used
// to merge scripted departures with renewal churn.
func TestComposeChurn(t *testing.T) {
	a := Scripted([]int{0, 10, 5})
	b := Scripted([]int{7, 0, 9})
	c := ComposeChurn(a, b, nil)
	for i, want := range []int{7, 10, 5} {
		if got := c.DepartureRound(i); got != want {
			t.Fatalf("seller %d: composed departure %d, want %d", i, got, want)
		}
	}
	if ComposeChurn(nil, nil) != nil {
		t.Fatal("composing nothing should be nil")
	}
	one := ComposeChurn(a)
	for i := range a {
		if one.DepartureRound(i) != a.DepartureRound(i) {
			t.Fatal("composing one model changed its departures")
		}
	}
}

// TestStragglerDeadline checks the latency model: with no deadline
// stragglers are never late; with a tight one, roughly Prob·P(delay >
// deadline) of deliveries miss.
func TestStragglerDeadline(t *testing.T) {
	cfg := StragglerConfig{Prob: 0.5, MeanDelay: 2}
	st := NewStraggler(cfg, rng.New(5))
	for i := 0; i < 1000; i++ {
		if !st.OnTime(0) {
			t.Fatal("straggler late with no deadline")
		}
	}
	st = NewStraggler(cfg, rng.New(5))
	late := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if !st.OnTime(2) {
			late++
		}
	}
	// P(late) = Prob · P(Exp(mean 2) > 2) = 0.5·e⁻¹ ≈ 0.184.
	want := 0.5 * math.Exp(-1)
	if got := float64(late) / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("late rate %.3f, want ≈%.3f", got, want)
	}
}

// TestCorruptionModes checks both Byzantine behaviors: inflate adds a
// clamped bias without randomness; random replaces the observation.
func TestCorruptionModes(t *testing.T) {
	c := NewCorruption(CorruptionConfig{Sellers: []int{2}, Inflation: 0.3}, 5, rng.New(1), rng.New(2))
	if got := c.Corrupt(2, 0, 1, 0.5); got != 0.8 {
		t.Fatalf("inflate: got %v, want 0.8", got)
	}
	if got := c.Corrupt(2, 0, 1, 0.9); got != 1 {
		t.Fatalf("inflate clamp: got %v, want 1", got)
	}
	if got := c.Corrupt(1, 0, 1, 0.5); got != 0.5 {
		t.Fatalf("honest seller corrupted: %v", got)
	}
	if !c.Byzantine(2) || c.Byzantine(1) {
		t.Fatal("Byzantine membership wrong")
	}

	r := NewCorruption(CorruptionConfig{Fraction: 0.4, Mode: CorruptRandom}, 10, rng.New(1), rng.New(2))
	if n := len(r.ByzantineSellers()); n != 4 {
		t.Fatalf("fraction 0.4 of 10 picked %d sellers", n)
	}
	byz := r.ByzantineSellers()[0]
	a, b := r.Corrupt(byz, 0, 1, 0.5), r.Corrupt(byz, 0, 2, 0.5)
	if a == b {
		t.Fatalf("random mode returned identical draws %v", a)
	}
	if a < 0 || a > 1 || b < 0 || b > 1 {
		t.Fatalf("random corruption outside [0, 1]: %v %v", a, b)
	}
}

// TestStateRoundTrip checks that exporting an injector's live state
// mid-stream (through JSON) and restoring into a freshly built twin
// continues every model bit-identically.
func TestStateRoundTrip(t *testing.T) {
	cfg := &Config{
		Seed: 17,
		Delivery: DeliveryConfig{
			GoodToBad: 0.2, BadToGood: 0.3, LossGood: 0.05, LossBad: 0.8,
		},
		Churn:      ChurnConfig{Rate: 0.01},
		Straggler:  StragglerConfig{Prob: 0.3, MeanDelay: 1, Deadline: 2},
		Corruption: CorruptionConfig{Fraction: 0.3, Mode: CorruptRandom},
	}
	const sellers = 8
	a, err := New(cfg, sellers)
	if err != nil {
		t.Fatal(err)
	}
	// Burn in a non-trivial position on every stream.
	for r := 1; r <= 57; r++ {
		for i := 0; i < sellers; i++ {
			a.Delivers(r, i, 2)
			a.Corrupt(i, 0, r, 0.5)
		}
	}
	data, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, sellers)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(&st); err != nil {
		t.Fatal(err)
	}
	for r := 58; r <= 120; r++ {
		for i := 0; i < sellers; i++ {
			if a.Delivers(r, i, 2) != b.Delivers(r, i, 2) {
				t.Fatalf("round %d seller %d: delivery diverged after restore", r, i)
			}
			if a.Corrupt(i, 0, r, 0.5) != b.Corrupt(i, 0, r, 0.5) {
				t.Fatalf("round %d seller %d: corruption diverged after restore", r, i)
			}
		}
		if a.DepartureRound(r%sellers) != b.DepartureRound(r%sellers) {
			t.Fatal("churn diverged after restore")
		}
	}
}

// TestRestoreMismatch checks structural mismatches are rejected, not
// silently absorbed.
func TestRestoreMismatch(t *testing.T) {
	withGE := &Config{Seed: 1, Delivery: DeliveryConfig{LossGood: 0.5}}
	noGE := &Config{Seed: 1, Straggler: StragglerConfig{Prob: 0.2, MeanDelay: 1}}
	a, err := New(withGE, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(noGE, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(a.State()); err == nil {
		t.Fatal("restoring channel state into channel-less injector succeeded")
	}
	if err := a.Restore(b.State()); err == nil {
		t.Fatal("restoring straggler state into straggler-less injector succeeded")
	}
}

// TestValidate spot-checks the validation surface.
func TestValidate(t *testing.T) {
	bad := []*Config{
		{Delivery: DeliveryConfig{LossGood: 1.5}},
		{Churn: ChurnConfig{Rate: -1}},
		{Straggler: StragglerConfig{Prob: 0.5}}, // missing MeanDelay
		{Corruption: CorruptionConfig{Fraction: 2}},
		{Corruption: CorruptionConfig{Sellers: []int{9}}}, // out of range
		{Corruption: CorruptionConfig{Fraction: 0.5, Mode: "garble"}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(5); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if err := allValid().Validate(5); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func allValid() *Config {
	return &Config{
		Seed:       9,
		Delivery:   DeliveryConfig{GoodToBad: 0.1, BadToGood: 0.5, LossBad: 0.9},
		Churn:      ChurnConfig{Rate: 0.02, MinRound: 5},
		Straggler:  StragglerConfig{Prob: 0.1, MeanDelay: 1},
		Corruption: CorruptionConfig{Fraction: 0.2},
	}
}
