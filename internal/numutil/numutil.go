// Package numutil provides the small numeric toolkit the rest of the
// system is built on: root finding, scalar maximization, compensated
// summation, clamping, and approximate float comparison.
//
// The Go standard library deliberately ships no optimization routines,
// so the closed-form game solutions in internal/game are cross-checked
// against the maximizers implemented here.
package numutil

import (
	"errors"
	"math"
)

// Eps is the default relative tolerance used by the approximate
// comparison helpers.
const Eps = 1e-9

// ErrNoRoot is returned by root finders when no real root exists in
// the requested domain.
var ErrNoRoot = errors.New("numutil: no real root")

// ErrBadBracket is returned by Bisect when f(lo) and f(hi) do not
// bracket a sign change.
var ErrBadBracket = errors.New("numutil: interval does not bracket a root")

// Clamp returns x restricted to [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("numutil: Clamp with lo > hi")
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// AlmostEqual reports whether a and b are equal within tol relative
// tolerance (absolute for values near zero).
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if a == 0 || b == 0 || diff < math.SmallestNonzeroFloat64 {
		return diff < tol
	}
	return diff/(math.Abs(a)+math.Abs(b)) < tol
}

// QuadraticRoots solves a·x² + b·x + c = 0 for real roots, returned in
// ascending order. The implementation uses the numerically stable
// citardauq form to avoid catastrophic cancellation when b² ≫ 4ac.
// If a == 0 the equation is linear; a single root is returned twice.
func QuadraticRoots(a, b, c float64) (x1, x2 float64, err error) {
	if a == 0 {
		if b == 0 {
			return 0, 0, ErrNoRoot
		}
		r := -c / b
		return r, r, nil
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, 0, ErrNoRoot
	}
	sq := math.Sqrt(disc)
	// q = -(b + sign(b)·√disc)/2 keeps the additions same-signed.
	var q float64
	if b >= 0 {
		q = -(b + sq) / 2
	} else {
		q = -(b - sq) / 2
	}
	x1 = q / a
	if q != 0 {
		x2 = c / q
	} else {
		x2 = 0
	}
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	return x1, x2, nil
}

// Bisect finds a root of f in [lo, hi] assuming f(lo) and f(hi) have
// opposite signs. It returns a point x with |f(x)| small or the
// interval narrowed below tol.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrBadBracket
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// invPhi is the reciprocal golden ratio used by MaximizeGolden.
var invPhi = (math.Sqrt(5) - 1) / 2

// MaximizeGolden maximizes a unimodal function f on [lo, hi] by
// golden-section search and returns (argmax, max). It performs enough
// iterations to narrow the interval below tol.
func MaximizeGolden(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// MaximizeGrid maximizes f on [lo, hi] by evaluating n+1 evenly spaced
// points and refining the best bracket with golden-section search.
// Unlike MaximizeGolden it tolerates multimodal f, as long as the grid
// is fine enough to land in the basin of the global maximum.
func MaximizeGrid(f func(float64) float64, lo, hi float64, n int) (x, fx float64) {
	if n < 2 {
		n = 2
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	step := (hi - lo) / float64(n)
	bestI, bestF := 0, math.Inf(-1)
	for i := 0; i <= n; i++ {
		v := f(lo + float64(i)*step)
		if v > bestF {
			bestI, bestF = i, v
		}
	}
	a := lo + float64(maxInt(bestI-1, 0))*step
	b := lo + float64(minInt(bestI+1, n))*step
	return MaximizeGolden(f, a, b, (hi-lo)*1e-10+1e-12)
}

// MaximizeGridZoom is MaximizeGrid with levels of bracket re-gridding
// before the golden polish. A single grid pass followed by golden
// search locks onto one basin of the winning bracket, which picks the
// wrong local maximum when a bracket narrower than one grid step
// holds several (e.g. profit curves kinked at activation/saturation
// prices). Each zoom level shrinks the bracket by n/2, so basins down
// to (hi−lo)·(2/n)^(levels−1) wide are resolved.
func MaximizeGridZoom(f func(float64) float64, lo, hi float64, n, levels int) (x, fx float64) {
	if n < 2 {
		n = 2
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	for l := 1; l < levels; l++ {
		step := (hi - lo) / float64(n)
		bestI, bestF := 0, math.Inf(-1)
		for i := 0; i <= n; i++ {
			if v := f(lo + float64(i)*step); v > bestF {
				bestI, bestF = i, v
			}
		}
		a := lo + float64(maxInt(bestI-1, 0))*step
		b := lo + float64(minInt(bestI+1, n))*step
		lo, hi = a, b
	}
	return MaximizeGrid(f, lo, hi, n)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// KahanSum accumulates floats with compensated (Kahan) summation,
// keeping error O(1) ULP regardless of the number of addends.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates x into the sum.
func (k *KahanSum) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Reset zeroes the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// KahanState is the serializable state of a KahanSum. Both words are
// preserved so a restored accumulator continues bit-for-bit — dropping
// the compensation term would let restored and uninterrupted runs
// drift apart in the low bits.
type KahanState struct {
	Sum float64 `json:"sum"`
	C   float64 `json:"c"`
}

// State exports the accumulator.
func (k *KahanSum) State() KahanState { return KahanState{Sum: k.sum, C: k.c} }

// Restore overwrites the accumulator with an exported state.
func (k *KahanSum) Restore(st KahanState) { k.sum, k.c = st.Sum, st.C }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return SumSlice(xs) / float64(len(xs))
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numutil: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
