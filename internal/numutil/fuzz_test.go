package numutil

import (
	"math"
	"testing"
)

// FuzzQuadraticRoots checks that any returned roots satisfy the
// polynomial and come out ordered, for arbitrary coefficients.
func FuzzQuadraticRoots(f *testing.F) {
	f.Add(1.0, -3.0, 2.0)
	f.Add(0.0, 2.0, -4.0)
	f.Add(1.0, 0.0, 1.0)
	f.Add(1e-300, 1e300, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return
		}
		if math.Abs(a) > 1e100 || math.Abs(b) > 1e100 || math.Abs(c) > 1e100 {
			return // avoid overflow artifacts in the residual check
		}
		x1, x2, err := QuadraticRoots(a, b, c)
		if err != nil {
			return
		}
		if x1 > x2 {
			t.Fatalf("roots out of order: %v > %v", x1, x2)
		}
		for _, x := range []float64{x1, x2} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("non-finite root %v for (%v, %v, %v)", x, a, b, c)
			}
			res := a*x*x + b*x + c
			scale := math.Abs(a*x*x) + math.Abs(b*x) + math.Abs(c) + 1
			if math.Abs(res)/scale > 1e-7 {
				t.Fatalf("root %v residual %v for (%v, %v, %v)", x, res, a, b, c)
			}
		}
	})
}
