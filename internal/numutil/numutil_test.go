package numutil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0, 0, 1, 0},
		{1, 0, 1, 1},
		{3, 3, 3, 3},
	}
	for _, tc := range tests {
		if got := Clamp(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > hi")
		}
	}()
	Clamp(0, 1, 0)
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi && (got == x || got == lo || got == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("close values should compare equal")
	}
	if AlmostEqual(1.0, 1.001, 1e-9) {
		t.Error("distant values should not compare equal")
	}
	if !AlmostEqual(0, 0, 1e-9) {
		t.Error("zero equals zero")
	}
	if !AlmostEqual(0, 1e-12, 1e-9) {
		t.Error("tiny vs zero should be equal at abs tolerance")
	}
}

func TestQuadraticRootsKnown(t *testing.T) {
	tests := []struct {
		a, b, c  float64
		r1, r2   float64
		wantsErr bool
	}{
		{1, -3, 2, 1, 2, false},        // (x-1)(x-2)
		{2, 0, -8, -2, 2, false},       // 2x² = 8
		{1, 2, 1, -1, -1, false},       // double root
		{0, 2, -4, 2, 2, false},        // linear
		{1, 0, 1, 0, 0, true},          // complex roots
		{0, 0, 1, 0, 0, true},          // degenerate
		{1, -1e8, 1, 1e-8, 1e8, false}, // numerical stability case
	}
	for _, tc := range tests {
		x1, x2, err := QuadraticRoots(tc.a, tc.b, tc.c)
		if tc.wantsErr {
			if err == nil {
				t.Errorf("QuadraticRoots(%v,%v,%v): want error", tc.a, tc.b, tc.c)
			}
			continue
		}
		if err != nil {
			t.Errorf("QuadraticRoots(%v,%v,%v): %v", tc.a, tc.b, tc.c, err)
			continue
		}
		if !AlmostEqual(x1, tc.r1, 1e-6) || !AlmostEqual(x2, tc.r2, 1e-6) {
			t.Errorf("QuadraticRoots(%v,%v,%v) = (%v,%v), want (%v,%v)",
				tc.a, tc.b, tc.c, x1, x2, tc.r1, tc.r2)
		}
	}
}

// TestQuadraticRootsProperty verifies that returned roots actually
// satisfy the polynomial, for randomly generated root pairs.
func TestQuadraticRootsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		r1 := rng.Float64()*200 - 100
		r2 := rng.Float64()*200 - 100
		a := rng.Float64()*10 + 0.1
		b := -a * (r1 + r2)
		c := a * r1 * r2
		x1, x2, err := QuadraticRoots(a, b, c)
		if err != nil {
			t.Fatalf("roots exist but solver failed: a=%v b=%v c=%v", a, b, c)
		}
		for _, x := range []float64{x1, x2} {
			res := a*x*x + b*x + c
			scale := math.Abs(a*x*x) + math.Abs(b*x) + math.Abs(c) + 1
			if math.Abs(res)/scale > 1e-9 {
				t.Fatalf("root %v does not satisfy poly (residual %v)", x, res)
			}
		}
		if x1 > x2 {
			t.Fatalf("roots not ordered: %v > %v", x1, x2)
		}
	}
}

func TestBisect(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(x, math.Sqrt2, 1e-9) {
		t.Errorf("Bisect sqrt2 = %v", x)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-9); err != ErrBadBracket {
		t.Errorf("want ErrBadBracket, got %v", err)
	}
	// Endpoint roots are returned directly.
	x, err = Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || x != 0 {
		t.Errorf("endpoint root: got %v, %v", x, err)
	}
}

func TestMaximizeGolden(t *testing.T) {
	// max of -(x-3)² + 7 at x=3
	x, fx := MaximizeGolden(func(x float64) float64 { return -(x-3)*(x-3) + 7 }, -10, 10, 1e-10)
	if !AlmostEqual(x, 3, 1e-6) || !AlmostEqual(fx, 7, 1e-9) {
		t.Errorf("got (%v,%v), want (3,7)", x, fx)
	}
	// Reversed bounds are tolerated.
	x, _ = MaximizeGolden(func(x float64) float64 { return -x * x }, 5, -5, 1e-10)
	if !AlmostEqual(x, 0, 1e-6) {
		t.Errorf("reversed bounds: argmax %v, want 0", x)
	}
}

func TestMaximizeGoldenLogConcave(t *testing.T) {
	// The consumer-profit shape: ω·ln(1+q·s) − c·s² on s ≥ 0.
	omega, q, c := 1000.0, 0.5, 2.0
	f := func(s float64) float64 { return omega*math.Log(1+q*s) - c*s*s }
	x, _ := MaximizeGolden(f, 0, 100, 1e-10)
	// Analytic argmax: ωq/(1+qs) = 2cs  =>  2cq s² + 2c s − ωq = 0.
	s1, s2, err := QuadraticRoots(2*c*q, 2*c, -omega*q)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Max(s1, s2)
	if !AlmostEqual(x, want, 1e-6) {
		t.Errorf("argmax %v, want %v", x, want)
	}
}

func TestMaximizeGrid(t *testing.T) {
	// Bimodal: grid search must find the global peak at x≈8.
	f := func(x float64) float64 {
		return math.Exp(-(x-2)*(x-2)) + 2*math.Exp(-(x-8)*(x-8))
	}
	x, fx := MaximizeGrid(f, 0, 10, 200)
	if !AlmostEqual(x, 8, 1e-3) {
		t.Errorf("global argmax %v, want 8", x)
	}
	if fx < 1.9 {
		t.Errorf("max %v too small", fx)
	}
	// Tiny n is coerced.
	x, _ = MaximizeGrid(func(x float64) float64 { return -x * x }, -1, 1, 0)
	if math.Abs(x) > 0.51 {
		t.Errorf("coerced-n argmax %v out of plausible range", x)
	}
}

func TestKahanSum(t *testing.T) {
	var k KahanSum
	// 1 + 1e-16 repeated: naive summation loses the small addends.
	k.Add(1)
	for i := 0; i < 1_000_000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-10
	if !AlmostEqual(k.Sum(), want, 1e-12) {
		t.Errorf("Kahan sum %v, want %v", k.Sum(), want)
	}
	k.Reset()
	if k.Sum() != 0 {
		t.Error("Reset did not zero the accumulator")
	}
}

func TestSumSliceAndMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := SumSlice(xs); got != 10 {
		t.Errorf("SumSlice = %v", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(xs) != len(want) {
		t.Fatalf("len = %d", len(xs))
	}
	for i := range xs {
		if !AlmostEqual(xs[i], want[i], 1e-12) {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Linspace(0,1,1) should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func BenchmarkMaximizeGolden(b *testing.B) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	for i := 0; i < b.N; i++ {
		MaximizeGolden(f, -100, 100, 1e-10)
	}
}

func BenchmarkQuadraticRoots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		QuadraticRoots(1.3, -4.2, 0.9)
	}
}
