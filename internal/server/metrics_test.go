package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cmabhs/internal/metrics"
)

// scrape fetches GET /metrics through the full middleware chain and
// returns the exposition body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("scrape status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("scrape content type %q, want %q", ct, metrics.ContentType)
	}
	return rec.Body.String()
}

// TestMetricsEndpoint drives real traffic through the broker and
// checks the scrape reflects it: request counters by route and code,
// monotone cumulative latency buckets, and the service-level counters.
func TestMetricsEndpoint(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)
	if code, adv := advance(t, h, nil, st.ID, 5); code != http.StatusOK || len(adv.Played) != 5 {
		t.Fatalf("advance: %d", code)
	}
	body := scrape(t, h)

	for _, want := range []string{
		`cdt_http_requests_total{code="201",method="POST",route="/v1/jobs"} 1`,
		`cdt_http_requests_total{code="200",method="POST",route="/v1/jobs/{id}/advance"} 1`,
		`cdt_jobs_created_total 1`,
		`cdt_rounds_advanced_total 5`,
		`cdt_jobs_live 1`,
		`cdt_advance_pool_active 0`,
		`cdt_http_in_flight 1`, // the scrape request itself
		"# TYPE cdt_http_request_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Job ids never reach labels: they are monotonic and unbounded
	// under create/delete churn, so an id-labeled series would grow the
	// registry without bound on a long-lived broker.
	if strings.Contains(body, st.ID) {
		t.Errorf("exposition leaks job id %q into a label", st.ID)
	}

	// The advance route's latency histogram saw exactly one observation
	// and its cumulative buckets are monotone.
	snap := s.Metrics().Snapshot()
	if n := snap[`cdt_http_request_seconds_count{route="/v1/jobs/{id}/advance"}`]; n != 1 {
		t.Fatalf("advance latency count %v, want 1", n)
	}
	prev := 0.0
	for _, b := range metrics.DefLatencyBuckets {
		key := `cdt_http_request_seconds_bucket{le="` + trimFloat(b) + `",route="/v1/jobs/{id}/advance"}`
		v, ok := snap[key]
		if !ok {
			t.Fatalf("missing bucket series %s", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %v below previous %v: not cumulative", key, v, prev)
		}
		prev = v
	}
	if inf := snap[`cdt_http_request_seconds_bucket{le="+Inf",route="/v1/jobs/{id}/advance"}`]; inf != 1 {
		t.Fatalf("+Inf bucket %v, want 1", inf)
	}
}

// trimFloat renders a bucket bound the way the snapshot keys do.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// TestShedCounterAndEnvelope saturates the advance pool and checks the
// shed path end to end: 429 with the structured "saturated" envelope
// (retry hint mirrored into the body) and the shed counter advancing.
func TestShedCounterAndEnvelope(t *testing.T) {
	s := New()
	s.MaxConcurrentAdvances = 1
	h := s.Handler()
	st := createJob(t, h)

	if err := s.pool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.pool().Release()

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs/"+st.ID+"/advance", strings.NewReader(`{"rounds":5}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated advance status %d, want 429", rec.Code)
	}
	var out ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Error.Code != "saturated" || out.Error.Message == "" {
		t.Fatalf("shed envelope %+v, want code saturated", out)
	}
	if out.Error.RetryAfterS <= 0 {
		t.Fatalf("shed envelope retry_after_s %v, want > 0", out.Error.RetryAfterS)
	}
	if out.Message != "" {
		t.Fatalf("legacy top-level message %q present; wire v2 dropped it (LegacyErrors off)", out.Message)
	}

	snap := s.Metrics().Snapshot()
	if v := snap["cdt_http_shed_total"]; v != 1 {
		t.Fatalf("cdt_http_shed_total %v, want 1", v)
	}
	if v := snap[`cdt_http_requests_total{code="429",method="POST",route="/v1/jobs/{id}/advance"}`]; v != 1 {
		t.Fatalf("429 request counter %v, want 1", v)
	}
}

// TestRejectionCounters checks the middleware failure counters: 413s
// increment the body-reject counter, recovered panics increment the
// panic counter, and both land in the request counter with their
// status codes.
func TestRejectionCounters(t *testing.T) {
	s := New()
	s.MaxBodyBytes = 64
	h := s.Handler()

	big := `{"pad":"` + strings.Repeat("x", 256) + `"}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(big)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", rec.Code)
	}

	ph := s.harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("injected")
	}))
	rec = httptest.NewRecorder()
	ph.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/poison", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic status %d, want 500", rec.Code)
	}

	snap := s.Metrics().Snapshot()
	if v := snap["cdt_http_body_reject_total"]; v != 1 {
		t.Fatalf("cdt_http_body_reject_total %v, want 1", v)
	}
	if v := snap["cdt_http_panics_total"]; v != 1 {
		t.Fatalf("cdt_http_panics_total %v, want 1", v)
	}
	if v := snap[`cdt_http_requests_total{code="500",method="GET",route="other"}`]; v != 1 {
		t.Fatalf("500 request counter %v, want 1", v)
	}
}

// TestRouteOf pins the path → route-pattern normalization that bounds
// label cardinality.
func TestRouteOf(t *testing.T) {
	cases := map[string]string{
		"/v1/healthz":              "/v1/healthz",
		"/v1/jobs":                 "/v1/jobs",
		"/v1/jobs/job-7":           "/v1/jobs/{id}",
		"/v1/jobs/job-7/advance":   "/v1/jobs/{id}/advance",
		"/v1/jobs/job-7/snapshot":  "/v1/jobs/{id}/snapshot",
		"/v1/jobs/job-7/estimates": "/v1/jobs/{id}/estimates",
		"/v1/jobs/job-7/events":    "/v1/jobs/{id}/events",
		"/v1/jobs/job-7/series":    "/v1/jobs/{id}/series",
		"/v1/jobs/job-7/bogus":     "other",
		"/v1/game/solve":           "/v1/game/solve",
		"/v1/stats":                "/v1/stats",
		"/v1/cluster/overview":     "/v1/cluster/overview",
		"/metrics":                 "/metrics",
		"/favicon.ico":             "other",
	}
	for path, want := range cases {
		if got := routeOf(path); got != want {
			t.Errorf("routeOf(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestJobStatusMetricsAndLinks checks the per-job wire surface: the
// status envelope carries advance throughput and navigable links.
func TestJobStatusMetricsAndLinks(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)
	if st.Links.Self != "/v1/jobs/"+st.ID || st.Links.Snapshot != "/v1/jobs/"+st.ID+"/snapshot" || st.Links.Metrics != "/metrics" {
		t.Fatalf("links %+v", st.Links)
	}
	if st.Metrics.RoundsAdvanced != 0 || st.Metrics.RoundsPerSec != 0 {
		t.Fatalf("fresh job metrics %+v, want zeros", st.Metrics)
	}

	code, adv := advance(t, h, nil, st.ID, 20)
	if code != http.StatusOK || len(adv.Played) != 20 {
		t.Fatalf("advance: %d", code)
	}
	m := adv.Status.Metrics
	if m.RoundsAdvanced != 20 {
		t.Fatalf("rounds_advanced %d, want 20", m.RoundsAdvanced)
	}
	if m.RoundsPerSec <= 0 {
		t.Fatalf("rounds_per_sec %v, want > 0", m.RoundsPerSec)
	}
	if m.LastAdvanceSeconds <= 0 {
		t.Fatalf("last_advance_seconds %v, want > 0", m.LastAdvanceSeconds)
	}
}

// TestSharedRegistry checks the broker instruments itself into a
// caller-provided registry instead of a private one.
func TestSharedRegistry(t *testing.T) {
	reg := metrics.New()
	reg.Counter("app_custom_total", "App-level counter.").Add(7)
	s := New()
	s.Registry = reg
	h := s.Handler()
	createJob(t, h)

	body := scrape(t, h)
	for _, want := range []string{"app_custom_total 7", "cdt_jobs_created_total 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("shared-registry exposition missing %q", want)
		}
	}
}
