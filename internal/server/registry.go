package server

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The job registry is lock-striped: jobs are spread across a fixed
// power-of-two set of shards by a hash of their id, and every registry
// operation locks only the one shard the id maps to. Under
// create/status/delete churn the shards serialize independently, so
// throughput scales with the shard count instead of funneling through
// one broker-wide mutex (BenchmarkRegistryChurn measures the scaling;
// per-shard occupancy is exported as cdt_registry_shard_jobs so
// contention hot spots are visible in /metrics).
//
// Cross-shard facts that must stay exact under concurrency — the live
// job count MaxJobs is enforced against, and the monotonic id counter
// — live in registry-level atomics, not in any shard.

// defaultShards is the shard count when Server.Shards is unset: small
// enough that per-shard gauges stay readable, large enough that 16
// concurrent API calls rarely collide on a stripe.
const defaultShards = 16

// maxShards bounds the knob: past this the per-shard metric families
// cost more than the striping wins.
const maxShards = 1024

// registryShard is one stripe: a mutex and the jobs hashed to it.
type registryShard struct {
	mu   sync.Mutex
	jobs map[string]*job
}

// registry is the sharded job table.
type registry struct {
	shards []registryShard
	mask   uint64 // len(shards)-1; len is a power of two

	// live is the exact registry-wide job count. It is maintained by
	// put/remove (not derived by summing shards) so the MaxJobs
	// admission check is a single atomic and never takes every lock.
	live atomic.Int64

	// nextID is the last job number handed out or observed. allocID
	// increments it; observeID advances it past reloaded ids so a
	// restart never reuses one.
	nextID atomic.Int64

	// prefix is the namespace allocID mints in; empty means "job-".
	// Clustered brokers set "job-<node>-" (at construction, before any
	// allocID) so two nodes sharing a store never mint the same id.
	prefix string
}

// newRegistry builds a registry with n shards, rounded up to a power
// of two; n <= 0 means defaultShards.
func newRegistry(n int) *registry {
	if n <= 0 {
		n = defaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	r := &registry{shards: make([]registryShard, size), mask: uint64(size - 1)}
	for i := range r.shards {
		r.shards[i].jobs = make(map[string]*job)
	}
	return r
}

// hashID is FNV-1a over the id bytes — cheap, allocation-free, and
// well spread even on the near-sequential "job-N" ids the broker
// mints.
func hashID(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

func (r *registry) shardFor(id string) *registryShard {
	return &r.shards[hashID(id)&r.mask]
}

// shardCount returns the (power-of-two) number of stripes.
func (r *registry) shardCount() int { return len(r.shards) }

// shardLen returns shard i's current job count (for the per-shard
// gauges; takes only that shard's lock).
func (r *registry) shardLen(i int) int {
	sh := &r.shards[i]
	sh.mu.Lock()
	n := len(sh.jobs)
	sh.mu.Unlock()
	return n
}

// len returns the exact live job count without touching any shard
// lock.
func (r *registry) len() int { return int(r.live.Load()) }

// get returns the job registered under id.
func (r *registry) get(id string) (*job, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	j, ok := sh.jobs[id]
	sh.mu.Unlock()
	return j, ok
}

// put registers j unconditionally, replacing any previous job with the
// same id (LoadAll uses it; ids are unique in a store listing).
func (r *registry) put(j *job) {
	sh := r.shardFor(j.id)
	sh.mu.Lock()
	_, existed := sh.jobs[j.id]
	sh.jobs[j.id] = j
	sh.mu.Unlock()
	if !existed {
		r.live.Add(1)
	}
}

// putIfBelow registers j only while the registry-wide live count is
// below max; it reports whether the job was admitted. The count is
// reserved before the shard insert, so concurrent creates across
// different shards can never overshoot max.
func (r *registry) putIfBelow(j *job, max int) bool {
	for {
		n := r.live.Load()
		if max > 0 && int(n) >= max {
			return false
		}
		if r.live.CompareAndSwap(n, n+1) {
			break
		}
	}
	sh := r.shardFor(j.id)
	sh.mu.Lock()
	if _, exists := sh.jobs[j.id]; exists {
		sh.mu.Unlock()
		r.live.Add(-1) // id collision: give the reservation back
		return false
	}
	sh.jobs[j.id] = j
	sh.mu.Unlock()
	return true
}

// remove unregisters id, returning the job that was there (nil when
// the id was not registered).
func (r *registry) remove(id string) *job {
	sh := r.shardFor(id)
	sh.mu.Lock()
	j, ok := sh.jobs[id]
	if ok {
		delete(sh.jobs, id)
	}
	sh.mu.Unlock()
	if ok {
		r.live.Add(-1)
	}
	return j
}

// snapshot collects every registered job, one shard at a time. The
// result is a point-in-time union, not an atomic cut — exactly the
// guarantee the old single-mutex copy loop gave list/SaveAll, since
// both released the registry lock before touching any job.
func (r *registry) snapshot() []*job {
	out := make([]*job, 0, r.len())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, j := range sh.jobs {
			out = append(out, j)
		}
		sh.mu.Unlock()
	}
	return out
}

// ids collects every registered job id, one shard at a time — the
// cheap half of a listing: no job lock is ever taken, so a paged
// GET /v1/jobs can window the id space before touching any job that
// may be mid-advance.
func (r *registry) ids() []string {
	out := make([]string, 0, r.len())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id := range sh.jobs {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// allocID mints the next "<prefix>N" id. Monotonic across the process
// lifetime, including past any ids observeID has seen.
func (r *registry) allocID() string {
	p := r.prefix
	if p == "" {
		p = "job-"
	}
	return fmt.Sprintf("%s%d", p, r.nextID.Add(1))
}

// observeID advances the id counter to at least n, so ids reloaded
// from a store are never re-minted.
func (r *registry) observeID(n int64) {
	for {
		cur := r.nextID.Load()
		if cur >= n || r.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}
