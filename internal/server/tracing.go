package server

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"cmabhs"
	"cmabhs/internal/tracing"
)

// This file is the broker's request-correlation layer: every request
// gets a trace span (outermost in the middleware chain, so sheds,
// body rejections, and recovered panics are all captured), a
// sanitized-or-generated X-Request-ID echoed on every response
// including the error-envelope paths, W3C traceparent ingest so a
// caller's trace id is joined rather than replaced, and one
// structured access-log line per request carrying trace_id, route,
// code, and duration. Child spans cover advance-pool acquisition,
// store writes (one span event per retry attempt), and — through the
// round-observer adapter below — each trading round played.

// maxRequestIDLen caps an accepted caller-supplied X-Request-ID.
const maxRequestIDLen = 64

// maxRoundSpans bounds the per-round child spans one advance request
// records; past it the request span carries a single cap notice so a
// 100k-round advance cannot flood the trace buffer.
const maxRoundSpans = 128

// Tracing returns the broker's tracer, building a default one
// (tracing.DefaultCapacity traces) on first use. Set the Tracer field
// before serving to size or share it; its store feeds GET
// /debug/traces on the debug listener.
func (s *Server) Tracing() *tracing.Tracer {
	s.traceOnce.Do(func() {
		if s.Tracer == nil {
			s.Tracer = tracing.New(0)
		}
	})
	return s.Tracer
}

// logger returns the structured logger, defaulting to slog.Default.
func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// sanitizeRequestID filters a caller-supplied request id down to
// [A-Za-z0-9._-] and caps its length; anything else (including an
// id that sanitizes to nothing) is discarded so log lines and trace
// attributes never carry attacker-controlled bytes.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			b.WriteByte(c)
		}
	}
	return b.String()
}

// withTracing is the outermost middleware: it assigns the request id
// and trace span before anything can reject the request, so every
// response — 2xx, shed 429, 413, recovered 500 — carries both.
func (s *Server) withTracing(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := s.Tracing()
		reqID := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if reqID == "" {
			reqID = tr.NewRequestID()
		}
		ctx := r.Context()
		if tid, sid, ok := tracing.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx = tracing.ContextWithRemote(ctx, tid, sid)
		}
		route := routeOf(r.URL.Path)
		ctx, span := tr.StartSpan(ctx, "http "+r.Method+" "+route)
		span.SetAttr("route", route)
		span.SetAttr("method", r.Method)
		span.SetAttr("request_id", reqID)
		w.Header().Set("X-Request-ID", reqID)
		w.Header().Set("Traceparent", tracing.FormatTraceparent(span.TraceID(), span.SpanID()))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			span.SetAttr("code", code)
			span.End()
			s.logger().LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("trace_id", span.TraceID().String()),
				slog.String("request_id", reqID),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("code", code),
				slog.Duration("duration", time.Since(start)),
			)
		}()
		h.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// roundSpanHook builds the tracing RoundObserver adapter for one
// advance request: each completed round becomes a child span of the
// request span, backdated to the previous round boundary and carrying
// the job id and round index as attributes. The hook is strictly
// passive — it reads the event and writes only into the tracer.
// Returns nil when the request carries no span to parent under.
func (s *Server) roundSpanHook(ctx context.Context, jobID string) func(*cmabhs.RoundEvent) {
	parent := tracing.SpanFromContext(ctx)
	if parent == nil {
		return nil
	}
	tr := s.Tracing()
	n := 0
	last := time.Now()
	return func(ev *cmabhs.RoundEvent) {
		n++
		if n > maxRoundSpans {
			if n == maxRoundSpans+1 {
				parent.AddEvent("round spans capped", map[string]any{"cap": maxRoundSpans})
			}
			return
		}
		_, sp := tr.StartSpanAt(ctx, "round", last)
		sp.SetAttr("job_id", jobID)
		sp.SetAttr("round", ev.Round.Round)
		if ev.Round.NoTrade {
			sp.SetAttr("no_trade", true)
		}
		if len(ev.FailedSellers) > 0 {
			sp.SetAttr("failed_sellers", len(ev.FailedSellers))
		}
		sp.End()
		last = time.Now()
	}
}
