package server

import (
	"fmt"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "a" || peers[1].URL != "http://h2:8080" {
		t.Fatalf("parsed: %+v", peers)
	}
	for _, bad := range []string{"", "a", "a=", "=url", "a=u,a=v", "a/b=u"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestRankPeersDeterministicAndOrderIndependent(t *testing.T) {
	peers := []Peer{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	shuffled := []Peer{{ID: "c"}, {ID: "a"}, {ID: "b"}}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("job-%d", i)
		r1 := rankPeers(peers, id)
		r2 := rankPeers(shuffled, id)
		for k := range r1 {
			if r1[k].ID != r2[k].ID {
				t.Fatalf("HRW ranking depends on input order for %s: %v vs %v", id, r1, r2)
			}
		}
	}
}

func TestRankPeersSpreadsJobs(t *testing.T) {
	peers := []Peer{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	homes := map[string]int{}
	for i := 0; i < 300; i++ {
		homes[rankPeers(peers, fmt.Sprintf("job-%d", i))[0].ID]++
	}
	for _, p := range peers {
		if homes[p.ID] == 0 {
			t.Fatalf("HRW never homes a job on %s: %v", p.ID, homes)
		}
	}
}

func TestClaimantOf(t *testing.T) {
	peers := []Peer{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	id := "job-x"
	home := rankPeers(peers, id)[0]

	// Unowned → the HRW home.
	if got := claimantOf(peers, id, nil, false); got.ID != home.ID {
		t.Fatalf("unowned claimant %s, want home %s", got.ID, home.ID)
	}

	// Live lease → the recorded owner, wherever it ranks.
	for _, p := range peers {
		l := &Lease{Job: id, Owner: p.ID, Epoch: 1}
		if got := claimantOf(peers, id, l, false); got.ID != p.ID {
			t.Fatalf("live claimant %s, want owner %s", got.ID, p.ID)
		}
	}

	// Expired lease → the best-ranked peer that is NOT the lapsed
	// owner, even when the lapsed owner is the HRW home.
	l := &Lease{Job: id, Owner: home.ID, Epoch: 1}
	succ := claimantOf(peers, id, l, true)
	if succ.ID == home.ID {
		t.Fatalf("successor is the lapsed owner %s", home.ID)
	}
	if want := rankPeers(peers, id)[1]; succ.ID != want.ID {
		t.Fatalf("successor %s, want rank-1 peer %s", succ.ID, want.ID)
	}

	// Owner outside the topology (shrunk cluster) → back to the home.
	gone := &Lease{Job: id, Owner: "zz", Epoch: 1, ExpiryUnixNano: time.Now().Add(time.Hour).UnixNano()}
	if got := claimantOf(peers, id, gone, false); got.ID != home.ID {
		t.Fatalf("foreign-owner claimant %s, want home %s", got.ID, home.ID)
	}

	// Single-peer cluster: the owner succeeds itself.
	solo := []Peer{{ID: "a"}}
	if got := claimantOf(solo, id, &Lease{Owner: "a"}, true); got.ID != "a" {
		t.Fatalf("solo successor %s", got.ID)
	}
}
