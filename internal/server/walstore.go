package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cmabhs/internal/core"
	"cmabhs/internal/roundlog"
)

// RoundWAL is the optional Store extension for round-granular
// durability: next to each job's snapshot, the store keeps an
// append-only per-job round log (a roundlog WAL segment). Each advance
// appends only the rounds it just played instead of rewriting the
// whole snapshot, and crash recovery becomes load-last-snapshot +
// replay-WAL-tail instead of falling back to the last explicit
// snapshot.
//
// The broker drives the protocol: ResetWAL whenever a fresh snapshot
// of the job is durably saved (creation, compaction, recovery,
// shutdown), AppendWAL after every advance, LoadWAL on restart.
type RoundWAL interface {
	Store

	// ResetWAL atomically replaces id's segment with an empty one
	// whose first round is base — called right after a snapshot at
	// NextRound == base is durably saved, folding the old tail into it.
	ResetWAL(id string, base int) error

	// AppendWAL durably appends the records to id's open segment and
	// returns the total records the segment now holds.
	AppendWAL(id string, recs []core.RoundRecord) (int, error)

	// AppendWALEncoded durably appends n records that the caller has
	// already rendered as segment entry lines (see
	// roundlog.AppendSegmentRecord) — the zero-copy feed the broker's
	// observer uses. It returns the total records the segment holds.
	AppendWALEncoded(id string, data []byte, n int) (int, error)

	// LoadWAL reads id's segment, discarding a torn final line. A
	// missing segment returns (nil, nil): the job predates the WAL or
	// was just reset by a crash between snapshot and reset.
	LoadWAL(id string) (*roundlog.Segment, error)

	// WALStats reports the segment/append/compaction counters for
	// healthz and metrics.
	WALStats() WALStats
}

// WALStats is the point-in-time view of a RoundWAL's activity.
type WALStats struct {
	// OpenSegments is the number of jobs with an open WAL segment.
	OpenSegments int `json:"open_segments"`
	// AppendedRounds counts rounds appended since process start.
	AppendedRounds uint64 `json:"appended_rounds"`
	// Resets counts segment resets (job creations + compactions +
	// recoveries) since process start.
	Resets uint64 `json:"resets"`
	// TornTails counts torn final lines discarded during LoadWAL.
	TornTails uint64 `json:"torn_tails"`
}

// WALStore is the file-backed RoundWAL: a FileStore for snapshots plus
// one `<id>.wal` segment per job in the same directory. Appends go
// through a persistent O_APPEND handle and are fsynced once per batch
// (one advance call = one batch), so a kill -9 can tear at most the
// final line of a segment — which ReadSegment discards by design.
type WALStore struct {
	fs *FileStore

	mu   sync.Mutex
	open map[string]*walSegment

	appended  atomic.Uint64
	resets    atomic.Uint64
	tornTails atomic.Uint64
}

// walSegment is one job's open segment handle.
type walSegment struct {
	f       *os.File
	base    int // first round the segment may hold
	entries int // records appended since the last reset
}

// NewWALStore creates (if needed) the directory and returns the store.
func NewWALStore(dir string) (*WALStore, error) {
	fs, err := NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	return &WALStore{fs: fs, open: make(map[string]*walSegment)}, nil
}

// Dir returns the backing directory.
func (w *WALStore) Dir() string { return w.fs.Dir() }

func (w *WALStore) walPath(id string) string {
	return filepath.Join(w.fs.Dir(), id+".wal")
}

// Save, Load, and List delegate to the snapshot FileStore.
func (w *WALStore) Save(id string, data []byte) error { return w.fs.Save(id, data) }
func (w *WALStore) Load(id string) ([]byte, error)    { return w.fs.Load(id) }
func (w *WALStore) List() ([]string, error)           { return w.fs.List() }

// The LeaseStore extension delegates to the snapshot FileStore too:
// leases live next to the snapshots they guard.
func (w *WALStore) AcquireLease(id, owner string, ttl time.Duration) (Lease, error) {
	return w.fs.AcquireLease(id, owner, ttl)
}
func (w *WALStore) RenewLease(id, owner string, epoch int64, ttl time.Duration) (Lease, error) {
	return w.fs.RenewLease(id, owner, epoch, ttl)
}
func (w *WALStore) ReleaseLease(id, owner string, epoch int64) error {
	return w.fs.ReleaseLease(id, owner, epoch)
}
func (w *WALStore) LoadLease(id string) (*Lease, error) { return w.fs.LoadLease(id) }
func (w *WALStore) CheckLease(id, owner string, epoch int64) error {
	return w.fs.CheckLease(id, owner, epoch)
}
func (w *WALStore) FencedSave(id string, data []byte, owner string, epoch int64) error {
	return w.fs.FencedSave(id, data, owner, epoch)
}
func (w *WALStore) SweepLeases() (int, error) { return w.fs.SweepLeases() }
func (w *WALStore) LeaseStats() LeaseStats    { return w.fs.LeaseStats() }

// SetNow injects a clock into the underlying FileStore's lease-expiry
// decisions (tests drive failover with it); nil restores wall time.
func (w *WALStore) SetNow(fn func() time.Time) { w.fs.Now = fn }

var _ LeaseStore = (*WALStore)(nil)

// Delete removes id's snapshot and its WAL segment, closing the open
// handle first.
func (w *WALStore) Delete(id string) error {
	if err := checkID(id); err != nil {
		return err
	}
	w.mu.Lock()
	if seg, ok := w.open[id]; ok {
		seg.f.Close()
		delete(w.open, id)
	}
	w.mu.Unlock()
	if err := os.Remove(w.walPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("server: delete %s wal: %w", id, err)
	}
	return w.fs.Delete(id) // fsyncs the directory for both removals
}

// ResetWAL implements RoundWAL: the fresh header-only segment is
// written to a temp file, fsynced, and renamed over the old one, so a
// crash leaves either the old segment (harmless: recovery skips
// entries below the snapshot round) or the new one — never a torn
// header.
func (w *WALStore) ResetWAL(id string, base int) error {
	return w.resetWAL(id, base, 0)
}

// ResetWALEpoch is ResetWAL with the owner's lease epoch stamped into
// the segment header (see roundlog.EncodeSegmentHeaderEpoch); the
// clustered broker uses it so recovery can detect segments written by
// a later ownership generation.
func (w *WALStore) ResetWALEpoch(id string, base int, epoch int64) error {
	return w.resetWAL(id, base, epoch)
}

// ResetWALFenced is ResetWALEpoch executed under the job's lease lock
// with a fencing check first: a zombie owner whose lease was stolen
// cannot truncate its successor's segment.
func (w *WALStore) ResetWALFenced(id string, base int, owner string, epoch int64) error {
	if err := checkID(id); err != nil {
		return err
	}
	return w.fs.withLeaseLock(id, func() error {
		cur, err := w.fs.loadLeaseLocked(id)
		if err != nil {
			return err
		}
		if cur == nil || cur.Owner != owner || cur.Epoch != epoch {
			w.fs.leaseFenced.Add(1)
			return leaseLostErr(id, owner, epoch, cur)
		}
		return w.resetWAL(id, base, epoch)
	})
}

func (w *WALStore) resetWAL(id string, base int, epoch int64) error {
	if err := checkID(id); err != nil {
		return err
	}
	hdr, err := roundlog.EncodeSegmentHeaderEpoch(id, base, epoch)
	if err != nil {
		return fmt.Errorf("server: wal reset %s: %w", id, err)
	}
	tmp, err := os.CreateTemp(w.fs.Dir(), "."+id+"-wal-*.tmp")
	if err != nil {
		return fmt.Errorf("server: wal reset %s: %w", id, err)
	}
	_, werr := tmp.Write(hdr)
	serr := tmp.Sync()
	if err := errors.Join(werr, serr); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("server: wal reset %s: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), w.walPath(id)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("server: wal reset %s: %w", id, err)
	}
	if err := syncDir(w.fs.Dir()); err != nil {
		tmp.Close()
		return fmt.Errorf("server: wal reset %s: %w", id, err)
	}
	// The renamed file IS the open segment: keep appending through the
	// same handle the header was written with.
	w.mu.Lock()
	if old, ok := w.open[id]; ok {
		old.f.Close()
	}
	w.open[id] = &walSegment{f: tmp, base: base}
	w.mu.Unlock()
	w.resets.Add(1)
	return nil
}

// AppendWAL implements RoundWAL: the batch is rendered to entry lines
// and handed to AppendWALEncoded.
func (w *WALStore) AppendWAL(id string, recs []core.RoundRecord) (int, error) {
	if err := checkID(id); err != nil {
		return 0, err
	}
	data, err := roundlog.EncodeSegmentRecords(recs)
	if err != nil {
		return 0, fmt.Errorf("server: wal append %s: %w", id, err)
	}
	return w.AppendWALEncoded(id, data, len(recs))
}

// AppendWALEncoded implements RoundWAL. The whole pre-encoded batch is
// written with one Write + one fsync, so an advance of n rounds costs
// one disk round-trip, not n.
func (w *WALStore) AppendWALEncoded(id string, data []byte, n int) (int, error) {
	if err := checkID(id); err != nil {
		return 0, err
	}
	if n == 0 {
		w.mu.Lock()
		var have int
		if seg, ok := w.open[id]; ok {
			have = seg.entries
		}
		w.mu.Unlock()
		return have, nil
	}
	w.mu.Lock()
	seg, ok := w.open[id]
	w.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("server: wal append %s: no open segment (ResetWAL first)", id)
	}
	if _, err := seg.f.Write(data); err != nil {
		return seg.entries, fmt.Errorf("server: wal append %s: %w", id, err)
	}
	if err := seg.f.Sync(); err != nil {
		return seg.entries, fmt.Errorf("server: wal append %s: %w", id, err)
	}
	w.mu.Lock()
	seg.entries += n
	total := seg.entries
	w.mu.Unlock()
	w.appended.Add(uint64(n))
	return total, nil
}

// LoadWAL implements RoundWAL.
func (w *WALStore) LoadWAL(id string) (*roundlog.Segment, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(w.walPath(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: wal load %s: %w", id, err)
	}
	seg, err := roundlog.ReadSegment(data)
	if err != nil {
		return nil, fmt.Errorf("server: wal load %s: %w", id, err)
	}
	if seg.Torn {
		w.tornTails.Add(1)
	}
	return seg, nil
}

// WALStats implements RoundWAL.
func (w *WALStore) WALStats() WALStats {
	w.mu.Lock()
	open := len(w.open)
	w.mu.Unlock()
	return WALStats{
		OpenSegments:   open,
		AppendedRounds: w.appended.Load(),
		Resets:         w.resets.Load(),
		TornTails:      w.tornTails.Load(),
	}
}

// Close closes every open segment handle. Appended data is already
// durable (every append fsyncs); Close just releases descriptors.
func (w *WALStore) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	for id, seg := range w.open {
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(w.open, id)
	}
	return firstErr
}

var _ RoundWAL = (*WALStore)(nil)
