package server

import (
	"net/http"
	"strconv"

	"cmabhs/internal/telemetry"
)

// GET /v1/jobs/{id}/series — a job's downsampled per-round learning
// curve, recorded passively from the observer path (see
// internal/telemetry). Unlike the /events firehose this is queryable
// after the fact, bounded in memory, and cheap to poll: pass
// ?since=<round> to fetch only the tail beyond what you already have
// and ?max_points= to thin the response for plotting.

// SeriesPoint is one sampled point of a job's learning trajectory.
type SeriesPoint struct {
	Round int     `json:"round"`
	Value float64 `json:"value"`
}

// SeriesResponse is the wire form of GET /v1/jobs/{id}/series.
// Stride is the recorder's current downsampling stride in rounds
// (grows as powers of two once the ring fills); Rounds is how many
// rounds the job has recorded in total, so a poller can tell a short
// series from a heavily downsampled one.
type SeriesResponse struct {
	ID     string        `json:"id"`
	Metric string        `json:"metric"`
	Stride int           `json:"stride"`
	Rounds int           `json:"rounds"`
	Points []SeriesPoint `json:"points"`
}

// seriesMetrics maps the ?metric= name to its point field. Values are
// cumulative where the underlying totals are (regret, revenue,
// spend); no_trade and failed are per-round flags/counts.
var seriesMetrics = map[string]func(telemetry.Point) float64{
	"regret":  func(p telemetry.Point) float64 { return p.Regret },
	"revenue": func(p telemetry.Point) float64 { return p.Revenue },
	"spend":   func(p telemetry.Point) float64 { return p.Spend },
	"no_trade": func(p telemetry.Point) float64 {
		if p.NoTrade {
			return 1
		}
		return 0
	},
	"failed": func(p telemetry.Point) float64 { return float64(p.Failed) },
}

func (s *Server) handleJobSeries(w http.ResponseWriter, r *http.Request, j *job) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		metric = "regret"
	}
	value, ok := seriesMetrics[metric]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown metric %q (want regret, revenue, spend, no_trade, or failed)", metric)
		return
	}
	since, ok := seriesQueryInt(w, q.Get("since"), "since")
	if !ok {
		return
	}
	maxPoints, ok := seriesQueryInt(w, q.Get("max_points"), "max_points")
	if !ok {
		return
	}

	pts, stride := j.series.Series(since, maxPoints)
	resp := SeriesResponse{
		ID:     j.id,
		Metric: metric,
		Stride: stride,
		Rounds: j.series.Rounds(),
		Points: make([]SeriesPoint, len(pts)),
	}
	for i, p := range pts {
		resp.Points[i] = SeriesPoint{Round: p.Round, Value: value(p)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// seriesQueryInt parses a non-negative integer query parameter,
// writing a 400 and returning ok=false on garbage.
func seriesQueryInt(w http.ResponseWriter, raw, name string) (int, bool) {
	if raw == "" {
		return 0, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		httpError(w, http.StatusBadRequest, "bad %s %q: want a non-negative integer", name, raw)
		return 0, false
	}
	return n, true
}
