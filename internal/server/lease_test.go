package server

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable lease clock shared by however many
// stores and clusters a test wires together.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// leasePair builds two FileStores over ONE directory — two broker
// processes sharing a state dir — with independent injectable clocks.
func leasePair(t *testing.T) (*FileStore, *FileStore, *fakeClock) {
	t.Helper()
	dir := t.TempDir()
	a, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	a.Now, b.Now = clk.Now, clk.Now
	return a, b, clk
}

func TestLeaseAcquireRenewStealRelease(t *testing.T) {
	a, b, clk := leasePair(t)
	ttl := 10 * time.Second

	// Fresh acquire: epoch 1.
	la, err := a.AcquireLease("job-1", "a", ttl)
	if err != nil || la.Epoch != 1 || la.Owner != "a" {
		t.Fatalf("fresh acquire: %+v err=%v", la, err)
	}

	// A live foreign lease cannot be taken.
	if _, err := b.AcquireLease("job-1", "b", ttl); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire over a live lease: %v", err)
	}

	// Renewal extends the expiry without bumping the epoch.
	clk.Advance(5 * time.Second)
	ren, err := a.RenewLease("job-1", "a", la.Epoch, ttl)
	if err != nil || ren.Epoch != 1 {
		t.Fatalf("renew: %+v err=%v", ren, err)
	}
	if !ren.Expiry().After(la.Expiry()) {
		t.Fatalf("renew did not extend: %v then %v", la.Expiry(), ren.Expiry())
	}

	// Re-acquire by the holder keeps the epoch too.
	again, err := a.AcquireLease("job-1", "a", ttl)
	if err != nil || again.Epoch != 1 {
		t.Fatalf("re-acquire by holder: %+v err=%v", again, err)
	}

	// Expiry + grace passes without renewal: b steals at epoch 2.
	clk.Advance(ttl + leaseGrace + time.Millisecond)
	lb, err := b.AcquireLease("job-1", "b", ttl)
	if err != nil || lb.Epoch != 2 || lb.Owner != "b" {
		t.Fatalf("steal: %+v err=%v", lb, err)
	}

	// The zombie's renewal and fencing checks now fail loudly.
	if _, err := a.RenewLease("job-1", "a", 1, ttl); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie renew: %v", err)
	}
	if err := a.CheckLease("job-1", "a", 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie check: %v", err)
	}
	if err := b.CheckLease("job-1", "b", 2); err != nil {
		t.Fatalf("holder check: %v", err)
	}

	// Release only works for the exact holder; afterwards the lease is
	// gone and anyone can acquire fresh... at epoch 1 again.
	if err := a.ReleaseLease("job-1", "a", 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie release: %v", err)
	}
	if err := b.ReleaseLease("job-1", "b", 2); err != nil {
		t.Fatal(err)
	}
	l, err := b.LoadLease("job-1")
	if err != nil || l != nil {
		t.Fatalf("lease after release: %+v err=%v", l, err)
	}

	// Counters are per-store (per-process): b did the stealing.
	if st := b.LeaseStats(); st.Stolen == 0 {
		t.Fatalf("steal not counted: %+v", st)
	}
}

func TestLeaseClockSkewGraceEdge(t *testing.T) {
	a, b, clk := leasePair(t)
	ttl := 10 * time.Second
	if _, err := a.AcquireLease("job-1", "a", ttl); err != nil {
		t.Fatal(err)
	}

	// Nominally expired but still inside the grace window: a broker
	// whose clock runs slightly ahead must NOT steal yet.
	clk.Advance(ttl + leaseGrace/2)
	if _, err := b.AcquireLease("job-1", "b", ttl); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("steal inside the grace window: %v", err)
	}

	// One tick past expiry+grace: stealable.
	clk.Advance(leaseGrace/2 + time.Millisecond)
	if l, err := b.AcquireLease("job-1", "b", ttl); err != nil || l.Epoch != 2 {
		t.Fatalf("steal past grace: %+v err=%v", l, err)
	}
}

func TestFencedSaveRejectsZombie(t *testing.T) {
	a, b, clk := leasePair(t)
	ttl := 10 * time.Second
	la, err := a.AcquireLease("job-1", "a", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FencedSave("job-1", []byte(`{"gen":"a"}`), "a", la.Epoch); err != nil {
		t.Fatal(err)
	}

	clk.Advance(ttl + leaseGrace + time.Millisecond)
	lb, err := b.AcquireLease("job-1", "b", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.FencedSave("job-1", []byte(`{"gen":"b"}`), "b", lb.Epoch); err != nil {
		t.Fatal(err)
	}

	// The zombie's write is rejected and the successor's bytes survive.
	if err := a.FencedSave("job-1", []byte(`{"gen":"zombie"}`), "a", la.Epoch); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie fenced save: %v", err)
	}
	data, err := a.Load("job-1")
	if err != nil || string(data) != `{"gen":"b"}` {
		t.Fatalf("snapshot after fence: %q err=%v", data, err)
	}
	if st := a.LeaseStats(); st.Fenced == 0 {
		t.Fatalf("fence not counted: %+v", st)
	}
}

// TestLeaseRace races two stores over one directory through acquire/
// renew/steal cycles under -race: per round exactly one of the two
// contenders may hold the lease, and epochs only move up.
func TestLeaseRace(t *testing.T) {
	a, b, clk := leasePair(t)
	ttl := 50 * time.Millisecond

	type claim struct {
		ok bool
		l  Lease
	}
	race := func(s *FileStore, owner string) claim {
		l, err := s.AcquireLease("job-1", owner, ttl)
		if err != nil {
			if errors.Is(err, ErrLeaseHeld) {
				return claim{}
			}
			t.Error(err)
			return claim{}
		}
		return claim{ok: true, l: l}
	}

	var lastEpoch int64
	for round := 0; round < 20; round++ {
		var ca, cb claim
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); ca = race(a, "a") }()
		go func() { defer wg.Done(); cb = race(b, "b") }()
		wg.Wait()
		if !ca.ok && !cb.ok {
			t.Fatalf("round %d: nobody holds the lease", round)
		}
		// Both may report ok only if they agree (same-owner re-acquire
		// cannot happen here: owners differ), so exactly one wins.
		if ca.ok && cb.ok {
			t.Fatalf("round %d: split brain: %+v and %+v", round, ca.l, cb.l)
		}
		w := ca.l
		if cb.ok {
			w = cb.l
		}
		if w.Epoch < lastEpoch {
			t.Fatalf("round %d: epoch went backwards: %d after %d", round, w.Epoch, lastEpoch)
		}
		lastEpoch = w.Epoch
		// Let the lease lapse so the next round is a fresh contest.
		clk.Advance(ttl + leaseGrace + time.Millisecond)
	}
}

func TestLeaseCorruptRecordToleratedAsAbsent(t *testing.T) {
	a, _, _ := leasePair(t)
	if err := os.WriteFile(a.leasePath("job-1"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := a.LoadLease("job-1")
	if err != nil || l != nil {
		t.Fatalf("corrupt lease surfaced: %+v err=%v", l, err)
	}
	// The job is not stranded: a fresh acquire overwrites the debris.
	if got, err := a.AcquireLease("job-1", "a", time.Second); err != nil || got.Epoch != 1 {
		t.Fatalf("acquire over corrupt lease: %+v err=%v", got, err)
	}
	if st := a.LeaseStats(); st.Corrupt == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
}

func TestLeaseStaleLockBroken(t *testing.T) {
	a, _, _ := leasePair(t)
	lock := a.lockPath("job-1")
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Age the lock past the break threshold (mtime is REAL wall time:
	// a crashed process stops touching its lock, fake clocks don't
	// apply).
	old := time.Now().Add(-2 * lockStaleAfter)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AcquireLease("job-1", "a", time.Second); err != nil {
		t.Fatalf("acquire under a stale lock: %v", err)
	}
}

func TestLeaseSweep(t *testing.T) {
	a, _, clk := leasePair(t)
	ttl := time.Second

	// live-job: snapshot + expired lease → kept (it is failover state).
	if err := a.Save("live-job", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AcquireLease("live-job", "a", ttl); err != nil {
		t.Fatal(err)
	}
	// gone-job: expired lease, NO snapshot → swept.
	if _, err := a.AcquireLease("gone-job", "a", ttl); err != nil {
		t.Fatal(err)
	}
	// A stale lock file → swept.
	stale := a.lockPath("stuck-job")
	if err := os.WriteFile(stale, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * lockStaleAfter)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	clk.Advance(ttl + leaseGrace + time.Millisecond)
	n, err := a.SweepLeases()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d files, want 2", n)
	}
	if l, _ := a.LoadLease("live-job"); l == nil {
		t.Fatal("live job's lease swept")
	}
	if l, _ := a.LoadLease("gone-job"); l != nil {
		t.Fatal("deleted job's expired lease survived the sweep")
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale lock survived the sweep")
	}
}

func TestListAndLoadAllSkipLeaseFiles(t *testing.T) {
	a, _, _ := leasePair(t)
	if err := a.Save("job-1", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AcquireLease("job-1", "a", time.Second); err != nil {
		t.Fatal(err)
	}
	// Orphaned lease (no snapshot), a partial lease write, and a lock
	// file must all be invisible to List.
	if _, err := a.AcquireLease("orphan", "a", time.Second); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"job-9.json.lease", "job-9.json.lease.lock"} {
		if err := os.WriteFile(filepath.Join(a.Dir(), f), []byte("{partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "job-1" {
		t.Fatalf("List over lease debris: %v", ids)
	}
}

func TestDeleteRemovesLease(t *testing.T) {
	a, _, _ := leasePair(t)
	if err := a.Save("job-1", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AcquireLease("job-1", "a", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if l, _ := a.LoadLease("job-1"); l != nil {
		t.Fatal("lease survived Delete")
	}
}
