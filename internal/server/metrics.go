package server

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cmabhs/internal/metrics"
)

// This file wires the broker into the metrics registry. Conventions
// (documented in DESIGN.md §11):
//
//   - every metric is prefixed cdt_; durations are histograms in
//     seconds with a _seconds suffix, counts are _total counters;
//   - HTTP series carry a route label holding the route PATTERN
//     ("/v1/jobs/{id}/advance"), never the raw path — ids never reach
//     labels, anywhere: job ids are monotonic and unbounded under
//     create/delete churn, so an id-labeled family would leak series.
//     Per-job numbers ride in the JobStatus metrics block instead;
//   - values another component already tracks (pool occupancy, live
//     jobs) are GaugeFuncs read at scrape time, not shadow counters.

// metricNames used by the middleware hot path.
const (
	mnRequests   = "cdt_http_requests_total"
	mnLatency    = "cdt_http_request_seconds"
	mnInFlight   = "cdt_http_in_flight"
	mnShed       = "cdt_http_shed_total"
	mnBodyReject = "cdt_http_body_reject_total"
	mnPanics     = "cdt_http_panics_total"
)

// routes is the fixed route-pattern universe; routeOf maps every
// request into it.
var routes = []string{
	"/v1/healthz",
	"/v1/jobs",
	"/v1/jobs/{id}",
	"/v1/jobs/{id}/advance",
	"/v1/jobs/{id}/snapshot",
	"/v1/jobs/{id}/estimates",
	"/v1/jobs/{id}/events",
	"/v1/jobs/{id}/series",
	"/v1/game/solve",
	"/v1/stats",
	"/v1/cluster/overview",
	"/metrics",
	"other",
}

// routeOf normalizes a request path to its route pattern.
func routeOf(path string) string {
	switch path {
	case "/v1/healthz", "/v1/jobs", "/v1/game/solve", "/v1/stats",
		"/v1/cluster/overview", "/metrics":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/v1/jobs/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch rest[i+1:] {
			case "advance":
				return "/v1/jobs/{id}/advance"
			case "snapshot":
				return "/v1/jobs/{id}/snapshot"
			case "estimates":
				return "/v1/jobs/{id}/estimates"
			case "events":
				return "/v1/jobs/{id}/events"
			case "series":
				return "/v1/jobs/{id}/series"
			}
			return "other"
		}
		return "/v1/jobs/{id}"
	}
	return "other"
}

// serverMetrics holds the pre-resolved instruments of the broker's
// hot paths; everything else resolves through the registry on demand.
type serverMetrics struct {
	reg      *metrics.Registry
	inFlight *metrics.Gauge
	latency  map[string]*metrics.Histogram // by route pattern

	// Rolling 1m/5m windows alongside the cumulative families
	// (exposed as *_1m/*_5m gauge series, see registerWindows).
	// Index 0 is the 1-minute window, index 1 the 5-minute one.
	winLatency map[string][2]*metrics.Window // by route pattern
	winAll     [2]*metrics.Window            // all routes pooled (overview rollup)
	winShed    [2]*metrics.Window            // count-only

	shed       *metrics.Counter
	bodyReject *metrics.Counter
	panics     *metrics.Counter

	jobsCreated    *metrics.Counter
	roundsAdvanced *metrics.Counter
	gamesSolved    *metrics.Counter

	retryAttempts *metrics.Counter
	retryFailures *metrics.Counter

	eventsDropped *metrics.Counter

	walAppended     *metrics.Counter
	walCompactions  *metrics.Counter
	walAppendErrors *metrics.Counter
	walReplayed     *metrics.Counter

	// Cluster instruments, registered only when Server.Cluster is set
	// so the single-node /metrics surface is unchanged. Every code
	// path that touches them is cluster-gated.
	leasesLost         *metrics.Counter
	leaseRenewFailures *metrics.Counter
	leaseTakeovers     *metrics.Counter
	proxyRejected      *metrics.Counter
	proxyErrors        *metrics.Counter
	proxiedByRoute     map[string]*metrics.Counter // by route pattern
}

// proxied returns the cdt_proxied_requests_total counter for a route
// pattern (falling back to "other" for anything outside the universe).
func (m *serverMetrics) proxied(route string) *metrics.Counter {
	if c, ok := m.proxiedByRoute[route]; ok {
		return c
	}
	return m.proxiedByRoute["other"]
}

// Metrics returns the broker's metrics registry, building and
// instrumenting it on first use. Set the Registry field before
// serving to scrape broker metrics into an existing registry.
func (s *Server) Metrics() *metrics.Registry {
	s.metricsOnce.Do(func() {
		reg := s.Registry
		if reg == nil {
			reg = metrics.New()
		}
		m := &serverMetrics{
			reg:      reg,
			inFlight: reg.Gauge(mnInFlight, "HTTP requests currently being served."),
			latency:  make(map[string]*metrics.Histogram, len(routes)),
			shed: reg.Counter(mnShed,
				"Advance requests shed with 429 because the advance pool was saturated."),
			bodyReject: reg.Counter(mnBodyReject,
				"Requests rejected with 413 because the body exceeded MaxBodyBytes."),
			panics: reg.Counter(mnPanics,
				"Handler panics recovered into a 500 response."),
			jobsCreated:    reg.Counter("cdt_jobs_created_total", "Trading jobs created."),
			roundsAdvanced: reg.Counter("cdt_rounds_advanced_total", "Trading rounds played across all jobs."),
			gamesSolved:    reg.Counter("cdt_games_solved_total", "Stateless game solves served."),
			retryAttempts:  reg.Counter("cdt_store_retry_attempts_total", "State-store write attempts."),
			retryFailures:  reg.Counter("cdt_store_retry_failures_total", "Failed state-store write attempts."),
			eventsDropped: reg.Counter("cdt_job_events_dropped_total",
				"Round events dropped because an /events subscriber could not keep up."),
			walAppended: reg.Counter("cdt_wal_appended_rounds_total",
				"Rounds appended to per-job WAL segments."),
			walCompactions: reg.Counter("cdt_wal_compactions_total",
				"WAL compactions: segment tails folded into fresh snapshots."),
			walAppendErrors: reg.Counter("cdt_wal_append_errors_total",
				"Failed WAL appends or compactions (durability degraded to the last intact prefix)."),
			walReplayed: reg.Counter("cdt_wal_replayed_rounds_total",
				"Rounds replayed from WAL tails during crash recovery."),
		}
		for _, rt := range routes {
			m.latency[rt] = reg.Histogram(mnLatency,
				"HTTP request latency in seconds, by route pattern.", nil, metrics.L("route", rt))
		}
		m.registerWindows(reg)
		reg.Gauge("cdt_build_info",
			"Build and wire-format metadata carried in labels; the value is always 1.",
			metrics.L("version", buildVersion()),
			metrics.L("go_version", runtime.Version()),
			metrics.L("wire_version", strconv.Itoa(WireVersion))).Set(1)
		// Trace-store loss counters, surfaced from /debug/traces into
		// the scrape so dashboards can alert on trace loss.
		reg.GaugeFunc("cdt_trace_evicted_traces",
			"Traces evicted from the bounded in-memory trace store.",
			func() float64 { return float64(s.Tracing().Store().Evicted()) })
		reg.GaugeFunc("cdt_trace_dropped_spans",
			"Spans dropped because a trace hit its per-trace span cap.",
			func() float64 { return float64(s.Tracing().Store().DroppedSpans()) })
		reg.GaugeFunc("cdt_jobs_live", "Live trading jobs.", func() float64 {
			return float64(s.registry().len())
		})
		// Per-shard occupancy. Shard indexes are a fixed, small label
		// universe (unlike job ids), so a per-shard family is safe; a
		// hot shard shows up as one gauge pulling away from the rest.
		reg.GaugeFunc("cdt_registry_shards", "Job-registry stripe count.",
			func() float64 { return float64(s.registry().shardCount()) })
		for i := 0; i < s.registry().shardCount(); i++ {
			reg.GaugeFunc("cdt_registry_shard_jobs", "Live jobs per registry shard.",
				func() float64 { return float64(s.registry().shardLen(i)) },
				metrics.L("shard", strconv.Itoa(i)))
		}
		reg.GaugeFunc("cdt_advance_pool_capacity", "Advance worker-pool capacity.",
			func() float64 { return float64(s.pool().Cap()) })
		reg.GaugeFunc("cdt_advance_pool_active", "Advance calls executing right now.",
			func() float64 { return float64(s.pool().InUse()) })
		reg.GaugeFunc("cdt_advance_pool_waiting", "Acquire calls queued behind a full advance pool.",
			func() float64 { return float64(s.pool().Waiting()) })
		if s.clustered() {
			m.leasesLost = reg.Counter("cdt_leases_lost_total",
				"Jobs evicted because their lease was stolen by another node.")
			m.leaseRenewFailures = reg.Counter("cdt_lease_renew_failures_total",
				"Failed lease renewals (lost leases and store errors).")
			m.leaseTakeovers = reg.Counter("cdt_lease_takeovers_total",
				"Leases this node acquired for jobs it did not create (adoption and failover).")
			m.proxyRejected = reg.Counter("cdt_proxy_rejected_total",
				"Requests answered 503 because job ownership was in transition.")
			m.proxyErrors = reg.Counter("cdt_proxy_errors_total",
				"Proxied requests that failed to reach the owning peer.")
			m.proxiedByRoute = make(map[string]*metrics.Counter, len(routes))
			for _, rt := range routes {
				m.proxiedByRoute[rt] = reg.Counter("cdt_proxied_requests_total",
					"Requests proxied to the owning peer, by route pattern.",
					metrics.L("route", rt))
			}
			reg.GaugeFunc("cdt_leases_held", "Job leases this node currently holds.",
				func() float64 { return float64(s.leasesHeld.Load()) })
		}
		s.metrics = m
	})
	return s.metrics.reg
}

// windowSpans defines the rolling windows every windowed family
// carries: suffix, span, and sub-interval slot count. Slot
// granularity is span/slots (5s for the 1m window, 20s for 5m).
var windowSpans = [2]struct {
	suffix string
	span   time.Duration
	slots  int
}{
	{"1m", time.Minute, 12},
	{"5m", 5 * time.Minute, 15},
}

// registerWindows builds the rolling 1m/5m windows and exports them
// as gauge families computed at scrape time:
//
//	cdt_http_request_seconds_p50_{1m,5m}{route=...}  windowed latency quantiles
//	cdt_http_request_seconds_p99_{1m,5m}{route=...}
//	cdt_http_requests_{1m,5m}{route=...}             requests inside the window
//	cdt_http_shed_{1m,5m}                            sheds inside the window
//	cdt_http_shed_rate_{1m,5m}                       sheds / (requests+sheds), 0 when idle
//
// These are gauges, not counters: a window's value falls as samples
// age out. The cumulative families remain the source of truth for
// rate() math; the windows exist so a bare scrape (or the cluster
// overview) answers "what is p99 right now" with no PromQL engine.
func (m *serverMetrics) registerWindows(reg *metrics.Registry) {
	m.winLatency = make(map[string][2]*metrics.Window, len(routes))
	for i, ws := range windowSpans {
		m.winAll[i] = metrics.NewWindow(ws.span, ws.slots, metrics.DefLatencyBuckets)
		m.winShed[i] = metrics.NewWindow(ws.span, ws.slots, nil)
	}
	for _, rt := range routes {
		var wins [2]*metrics.Window
		for i, ws := range windowSpans {
			w := metrics.NewWindow(ws.span, ws.slots, metrics.DefLatencyBuckets)
			wins[i] = w
			lbl := metrics.L("route", rt)
			reg.GaugeFunc(mnLatency+"_p50_"+ws.suffix,
				"Rolling-window p50 HTTP latency in seconds, by route pattern.",
				func() float64 { return w.Snapshot().Quantile(0.5) }, lbl)
			reg.GaugeFunc(mnLatency+"_p99_"+ws.suffix,
				"Rolling-window p99 HTTP latency in seconds, by route pattern.",
				func() float64 { return w.Snapshot().Quantile(0.99) }, lbl)
			reg.GaugeFunc("cdt_http_requests_"+ws.suffix,
				"HTTP requests served inside the rolling window, by route pattern.",
				func() float64 { return float64(w.Count()) }, lbl)
		}
		m.winLatency[rt] = wins
	}
	for i, ws := range windowSpans {
		shed, all := m.winShed[i], m.winAll[i]
		reg.GaugeFunc("cdt_http_shed_"+ws.suffix,
			"Advance requests shed inside the rolling window.",
			func() float64 { return float64(shed.Count()) })
		reg.GaugeFunc("cdt_http_shed_rate_"+ws.suffix,
			"Fraction of advance traffic shed inside the rolling window.",
			func() float64 { return shedRate(shed.Count(), all.Count()) })
	}
}

// shedRate computes sheds/(served+sheds); shed requests never reach
// the latency windows, so the denominator adds them back in.
func shedRate(sheds, served uint64) float64 {
	if sheds == 0 {
		return 0
	}
	return float64(sheds) / float64(served+sheds)
}

// recordShed counts one shed advance into the cumulative counter and
// both rolling windows.
func (m *serverMetrics) recordShed() {
	m.shed.Inc()
	m.winShed[0].Observe(1)
	m.winShed[1].Observe(1)
}

// rollup aggregates the pooled latency/shed windows into the wire
// form the cluster overview reports for this node.
func (m *serverMetrics) rollup() WindowRollup {
	var r WindowRollup
	for i := range windowSpans {
		snap := m.winAll[i].Snapshot()
		wr := WindowRates{
			Requests: snap.Count,
			P50S:     snap.Quantile(0.5),
			P99S:     snap.Quantile(0.99),
			ShedRate: shedRate(m.winShed[i].Count(), snap.Count),
		}
		if i == 0 {
			r.Win1m = wr
		} else {
			r.Win5m = wr
		}
	}
	return r
}

// met returns the instrumented sink, initializing on first use.
func (s *Server) met() *serverMetrics {
	s.Metrics()
	return s.metrics
}

// withMetrics times every request, counts it by route pattern,
// method, and final status code, and tracks the in-flight gauge. It
// reuses the statusWriter the tracing layer installed (tracing wraps
// it), creating one only when running unwrapped in tests.
func (s *Server) withMetrics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.met()
		route := routeOf(r.URL.Path)
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w}
		}
		m.inFlight.Add(1)
		start := time.Now()
		defer func() {
			m.inFlight.Add(-1)
			sec := time.Since(start).Seconds()
			if h, ok := m.latency[route]; ok {
				h.Observe(sec)
			}
			if wins, ok := m.winLatency[route]; ok {
				wins[0].Observe(sec)
				wins[1].Observe(sec)
			}
			m.winAll[0].Observe(sec)
			m.winAll[1].Observe(sec)
			code := sw.code
			if code == 0 {
				code = http.StatusOK // implicit 200 on first Write
			}
			m.reg.Counter(mnRequests, "HTTP requests served, by route pattern, method, and status.",
				metrics.L("route", route),
				metrics.L("method", r.Method),
				metrics.L("code", strconv.Itoa(code))).Inc()
		}()
		h.ServeHTTP(sw, r)
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	_ = s.Metrics().WritePrometheus(w)
}
