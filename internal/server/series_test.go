package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getSeries(t *testing.T, h http.Handler, id, query string) (int, SeriesResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id+"/series"+query, nil))
	var out SeriesResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("series decode: %v\n%s", err, rec.Body)
		}
	}
	return rec.Code, out
}

// TestJobSeries10kRounds is the acceptance path: a 10k-round job's
// regret series comes back bounded, downsampled, monotone, and
// anchored at the newest round.
func TestJobSeries10kRounds(t *testing.T) {
	s := New()
	h := s.Handler()
	body := `{"random_sellers":10,"k":3,"rounds":10000,"seed":1}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if code, adv := advance(t, h, nil, st.ID, 10000); code != http.StatusOK || len(adv.Played) != 10000 {
		t.Fatalf("advance: code %d, played %d", code, len(adv.Played))
	}

	code, resp := getSeries(t, h, st.ID, "")
	if code != http.StatusOK {
		t.Fatalf("series status %d", code)
	}
	if resp.ID != st.ID || resp.Metric != "regret" {
		t.Fatalf("series header %+v", resp)
	}
	if resp.Rounds != 10000 {
		t.Fatalf("rounds recorded %d, want 10000", resp.Rounds)
	}
	// 10k rounds through a 512-point ring: downsampling kicked in and
	// the result stays under the ring capacity.
	if len(resp.Points) == 0 || len(resp.Points) > 512 {
		t.Fatalf("series size %d, want (0,512]", len(resp.Points))
	}
	if resp.Stride < 32 {
		t.Fatalf("stride %d after 10k rounds, want >= 32", resp.Stride)
	}
	if last := resp.Points[len(resp.Points)-1]; last.Round != 10000 {
		t.Fatalf("series tail at round %d, want 10000", last.Round)
	}
	// Cumulative regret is nondecreasing; rounds strictly increase.
	for i := 1; i < len(resp.Points); i++ {
		if resp.Points[i].Round <= resp.Points[i-1].Round {
			t.Fatalf("rounds not increasing at %d", i)
		}
		if resp.Points[i].Value < resp.Points[i-1].Value {
			t.Fatalf("regret decreased at round %d: %v -> %v",
				resp.Points[i].Round, resp.Points[i-1].Value, resp.Points[i].Value)
		}
	}

	// max_points thins below the ring size and keeps the tail.
	code, thin := getSeries(t, h, st.ID, "?max_points=100")
	if code != http.StatusOK || len(thin.Points) == 0 || len(thin.Points) > 100 {
		t.Fatalf("max_points=100 gave %d points (status %d)", len(thin.Points), code)
	}
	if thin.Points[len(thin.Points)-1].Round != 10000 {
		t.Fatalf("thinned tail %d, want 10000", thin.Points[len(thin.Points)-1].Round)
	}

	// since pages the tail incrementally.
	code, tail := getSeries(t, h, st.ID, "?since=9000")
	if code != http.StatusOK || len(tail.Points) == 0 {
		t.Fatalf("since=9000: status %d, %d points", code, len(tail.Points))
	}
	for _, p := range tail.Points {
		if p.Round <= 9000 {
			t.Fatalf("since=9000 returned round %d", p.Round)
		}
	}

	// Cumulative revenue is also nondecreasing.
	code, rev := getSeries(t, h, st.ID, "?metric=revenue")
	if code != http.StatusOK || len(rev.Points) == 0 {
		t.Fatalf("revenue series: %d", code)
	}
	for i := 1; i < len(rev.Points); i++ {
		if rev.Points[i].Value < rev.Points[i-1].Value {
			t.Fatalf("revenue decreased at %d", rev.Points[i].Round)
		}
	}
}

func TestJobSeriesValidation(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)

	if code, _ := getSeries(t, h, st.ID, "?metric=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus metric: %d, want 400", code)
	}
	if code, _ := getSeries(t, h, st.ID, "?since=-3"); code != http.StatusBadRequest {
		t.Fatalf("negative since: %d, want 400", code)
	}
	if code, _ := getSeries(t, h, st.ID, "?max_points=x"); code != http.StatusBadRequest {
		t.Fatalf("garbage max_points: %d, want 400", code)
	}
	if code, _ := getSeries(t, h, "nope", ""); code != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+st.ID+"/series", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST series: %d, want 405", rec.Code)
	}

	// A job with no rounds yet answers an empty series, not an error.
	code, resp := getSeries(t, h, st.ID, "")
	if code != http.StatusOK || len(resp.Points) != 0 || resp.Rounds != 0 {
		t.Fatalf("fresh job series: status %d, %+v", code, resp)
	}
}

// TestJobSeriesCustomCapacity checks SeriesCapacity plumbs through to
// the per-job recorder.
func TestJobSeriesCustomCapacity(t *testing.T) {
	s := New()
	s.SeriesCapacity = 16
	h := s.Handler()
	st := createJob(t, h) // 50-round horizon
	if code, _ := advance(t, h, nil, st.ID, 50); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	code, resp := getSeries(t, h, st.ID, "")
	if code != http.StatusOK {
		t.Fatalf("series: %d", code)
	}
	if len(resp.Points) >= 16+1 {
		t.Fatalf("capacity 16 retained %d points", len(resp.Points))
	}
	if resp.Stride < 2 {
		t.Fatalf("stride %d, want downsampling to have started", resp.Stride)
	}
}
