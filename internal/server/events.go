package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cmabhs"
	"cmabhs/internal/metrics"
	"cmabhs/internal/roundlog"
	"cmabhs/internal/telemetry"
)

// Live round-event streaming: GET /v1/jobs/{id}/events serves the
// per-round events the Session.Observe hook produces as Server-Sent
// Events (default) or NDJSON (?format=ndjson / Accept:
// application/x-ndjson). Delivery is bounded: each subscriber gets a
// fixed buffer, and a subscriber that cannot keep up with the
// advance loop has events DROPPED (counted in
// cdt_job_events_dropped_total, visible as gaps in the round
// numbers) rather than ever back-pressuring the simulation.

// eventBufferSize is the per-subscriber buffered-channel depth.
const eventBufferSize = 256

// eventHeartbeat is the SSE keep-alive comment interval.
const eventHeartbeat = 15 * time.Second

// JobEvent is the wire form of one round event on the live stream.
type JobEvent struct {
	JobID           string  `json:"job_id"`
	Round           int     `json:"round"`
	Selected        []int   `json:"selected"`
	ConsumerPrice   float64 `json:"consumer_price"`
	PlatformPrice   float64 `json:"platform_price"`
	ConsumerProfit  float64 `json:"consumer_profit"`
	PlatformProfit  float64 `json:"platform_profit"`
	NoTrade         bool    `json:"no_trade,omitempty"`
	FailedSellers   []int   `json:"failed_sellers,omitempty"`
	Regret          float64 `json:"regret"`
	ExpectedRevenue float64 `json:"expected_revenue"`
	ConsumerSpend   float64 `json:"consumer_spend"`
}

// eventSub is one live-stream subscriber.
type eventSub struct {
	ch      chan JobEvent
	dropped atomic.Int64
}

// eventHub fans one job's round events out to its subscribers. It has
// its own lock (never the job's) so subscribing during a long advance
// cannot block, and publishing from under the job lock cannot
// deadlock.
type eventHub struct {
	drops *metrics.Counter // slow-consumer drop counter (shared, registry-owned)

	mu   sync.Mutex
	subs map[*eventSub]struct{}
	n    atomic.Int32 // len(subs), readable without the lock
}

func newEventHub(drops *metrics.Counter) *eventHub {
	return &eventHub{drops: drops, subs: make(map[*eventSub]struct{})}
}

// active reports whether anyone is listening — the publish fast path.
func (h *eventHub) active() bool { return h.n.Load() > 0 }

func (h *eventHub) subscribe(buf int) *eventSub {
	sub := &eventSub{ch: make(chan JobEvent, buf)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	h.n.Store(int32(len(h.subs)))
	h.mu.Unlock()
	return sub
}

func (h *eventHub) unsubscribe(sub *eventSub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.n.Store(int32(len(h.subs)))
	h.mu.Unlock()
}

// publish delivers ev to every subscriber without ever blocking: a
// full buffer means the subscriber is slower than the simulation, and
// the event is dropped for that subscriber alone.
func (h *eventHub) publish(ev JobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			h.drops.Inc()
		}
	}
}

// observe is the job's round observer, attached for the duration of
// every advance call (it runs on the advance goroutine, which holds
// j.mu). It fans the borrowed event out to the tracing hook, encodes
// the round in place onto the write-ahead buffer when the broker runs
// on a RoundWAL store (the borrowed slices are read, never retained),
// and, only when someone is listening, copies it onto the wire form
// for the hub — so an unwatched, untraced advance on a snapshot-only
// store pays three cheap checks.
func (j *job) observe(ev *cmabhs.RoundEvent) {
	if j.traceHook != nil {
		j.traceHook(ev)
	}
	if j.walLog {
		rec := walRecord(&ev.Round)
		if buf, err := roundlog.AppendSegmentRecord(j.walBuf, &rec); err != nil {
			j.walErrs++ // reported at flush time, never fails the advance
		} else {
			j.walBuf = buf
			j.walCount++
		}
	}
	if j.series != nil {
		// Copies five scalars out of the borrowed event; the recorder
		// owns everything it keeps, so the series stays strictly
		// passive (the chaos suite proves byte-identity with it on).
		j.series.Record(telemetry.Point{
			Round:   ev.Round.Round,
			Regret:  ev.Regret,
			Revenue: ev.ExpectedRevenue,
			Spend:   ev.ConsumerSpend,
			NoTrade: ev.Round.NoTrade,
			Failed:  len(ev.FailedSellers),
		})
	}
	if j.hub.active() {
		j.hub.publish(j.wireEvent(ev))
	}
}

// wireEvent copies a borrowed RoundEvent into an owned JobEvent.
func (j *job) wireEvent(ev *cmabhs.RoundEvent) JobEvent {
	return JobEvent{
		JobID:           j.id,
		Round:           ev.Round.Round,
		Selected:        append([]int(nil), ev.Round.Selected...),
		ConsumerPrice:   ev.Round.ConsumerPrice,
		PlatformPrice:   ev.Round.PlatformPrice,
		ConsumerProfit:  ev.Round.ConsumerProfit,
		PlatformProfit:  ev.Round.PlatformProfit,
		NoTrade:         ev.Round.NoTrade,
		FailedSellers:   append([]int(nil), ev.FailedSellers...),
		Regret:          ev.Regret,
		ExpectedRevenue: ev.ExpectedRevenue,
		ConsumerSpend:   ev.ConsumerSpend,
	}
}

// wantsNDJSON picks the stream framing: NDJSON on explicit request,
// SSE otherwise.
func wantsNDJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "ndjson" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// handleJobEvents streams a job's live round events until the client
// disconnects. Events are produced only while advance calls run;
// between advances the stream idles (SSE subscribers get keep-alive
// comments).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, j *job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ndjson := wantsNDJSON(r)
	sub := j.hub.subscribe(eventBufferSize)
	defer j.hub.unsubscribe(sub)

	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.Header().Set("X-Accel-Buffering", "no") // keep reverse proxies from buffering the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(eventHeartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-sub.ch:
			data, err := json.Marshal(sanitizeJSON(ev))
			if err != nil {
				return
			}
			if ndjson {
				if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
					return
				}
			} else {
				if _, err := fmt.Fprintf(w, "event: round\ndata: %s\n\n", data); err != nil {
					return
				}
			}
			flusher.Flush()
		case <-heartbeat.C:
			if !ndjson {
				if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
					return
				}
				flusher.Flush()
			}
		}
	}
}
