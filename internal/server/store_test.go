package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFileStoreBasics(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	if ids, err := fs.List(); err != nil || len(ids) != 0 {
		t.Fatalf("fresh store: ids %v err %v", ids, err)
	}
	if err := fs.Save("job-1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("job-1", []byte(`{"a":2}`)); err != nil {
		t.Fatal(err) // overwrite must be fine
	}
	if err := fs.Save("job-10", []byte(`{"b":1}`)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Load("job-1")
	if err != nil || !bytes.Equal(got, []byte(`{"a":2}`)) {
		t.Fatalf("load: %q err %v", got, err)
	}
	ids, err := fs.List()
	if err != nil || !reflect.DeepEqual(ids, []string{"job-1", "job-10"}) {
		t.Fatalf("list: %v err %v", ids, err)
	}
	if err := fs.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("job-1"); err != nil {
		t.Fatalf("deleting a missing id: %v", err)
	}
	if _, err := fs.Load("job-1"); err == nil {
		t.Fatal("load after delete succeeded")
	}
	// No temp litter after saves.
	entries, err := os.ReadDir(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

func TestFileStoreRejectsBadIDs(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", "a.b", "x y"} {
		if err := fs.Save(id, []byte("{}")); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func persistentTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New()
	srv.Store = fs
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

var persistJobReq = JobRequest{RandomSellers: 12, K: 3, Rounds: 40, Seed: 21, Policy: "thompson"}

// TestBrokerRestartMidJob is the acceptance path of broker
// durability: advance a job partway, snapshot, kill the broker, start
// a new broker on the same state dir, and the reloaded job continues
// from the persisted round to a result identical to a never-restarted
// run.
func TestBrokerRestartMidJob(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")

	// The reference: one broker, no restart.
	_, refTS := persistentTestServer(t, filepath.Join(t.TempDir(), "ref-state"))
	var refSt JobStatus
	if code := do(t, refTS, http.MethodPost, "/v1/jobs", persistJobReq, &refSt); code != http.StatusCreated {
		t.Fatalf("ref create: %d", code)
	}
	var refAdv AdvanceResponse
	if code := do(t, refTS, http.MethodPost, "/v1/jobs/"+refSt.ID+"/advance", AdvanceRequest{Rounds: 40}, &refAdv); code != http.StatusOK {
		t.Fatalf("ref advance: %d", code)
	}
	if !refAdv.Status.Done {
		t.Fatal("reference job not done")
	}

	// Broker #1: create, advance 15 rounds, snapshot, shut down.
	srv1, ts1 := persistentTestServer(t, dir)
	var st JobStatus
	if code := do(t, ts1, http.MethodPost, "/v1/jobs", persistJobReq, &st); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var adv AdvanceResponse
	if code := do(t, ts1, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 15}, &adv); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	var snap SnapshotResponse
	if code := do(t, ts1, http.MethodPost, "/v1/jobs/"+st.ID+"/snapshot", nil, &snap); code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}
	if !snap.Persisted || snap.ID != st.ID || len(snap.Snapshot) == 0 {
		t.Fatalf("snapshot response %+v", snap)
	}
	// Graceful-shutdown path: SaveAll persists the latest state.
	if err := srv1.SaveAll(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Broker #2 on the same state dir: the job is back, mid-run.
	srv2, ts2 := persistentTestServer(t, dir)
	if err := srv2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	var reloaded JobStatus
	if code := do(t, ts2, http.MethodGet, "/v1/jobs/"+st.ID, nil, &reloaded); code != http.StatusOK {
		t.Fatalf("reloaded job missing: %d", code)
	}
	if reloaded.NextRound != 16 {
		t.Fatalf("reloaded job at round %d, want 16", reloaded.NextRound)
	}
	if reloaded.Sellers != 12 || reloaded.K != 3 || reloaded.Rounds != 40 {
		t.Fatalf("reloaded job lost its shape: %+v", reloaded)
	}
	// A fresh job on broker #2 must not collide with the loaded id.
	var fresh JobStatus
	if code := do(t, ts2, http.MethodPost, "/v1/jobs", persistJobReq, &fresh); code != http.StatusCreated {
		t.Fatalf("fresh create: %d", code)
	}
	if fresh.ID == st.ID {
		t.Fatalf("id %s reused after restart", fresh.ID)
	}

	// Finish the reloaded job: identical to the uninterrupted run.
	var adv2 AdvanceResponse
	if code := do(t, ts2, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 40}, &adv2); code != http.StatusOK {
		t.Fatalf("resume advance: %d", code)
	}
	if !adv2.Status.Done {
		t.Fatal("resumed job not done")
	}
	if !reflect.DeepEqual(adv2.Status.Result, refAdv.Status.Result) {
		t.Errorf("resumed result differs from uninterrupted run:\nref %+v\ngot %+v",
			refAdv.Status.Result, adv2.Status.Result)
	}

	// DELETE drops the stored snapshot too.
	if code := do(t, ts2, http.MethodDelete, "/v1/jobs/"+st.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if _, err := srv2.Store.Load(st.ID); err == nil {
		t.Error("snapshot still stored after DELETE")
	}
}

// TestCreateJobFromSnapshot: the snapshot payload round-trips through
// job creation on a broker with no store at all.
func TestCreateJobFromSnapshot(t *testing.T) {
	ts := newTestServer(t)
	var st JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs", persistJobReq, &st); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 10}, nil); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	var snap SnapshotResponse
	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/snapshot", nil, &snap); code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}
	if snap.Persisted {
		t.Error("persisted=true without a store")
	}
	var clone JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{Snapshot: snap.Snapshot}, &clone); code != http.StatusCreated {
		t.Fatalf("create from snapshot: %d", code)
	}
	if clone.ID == st.ID {
		t.Error("clone shares the original id")
	}
	if clone.NextRound != 11 || clone.Sellers != 12 || clone.K != 3 || clone.Rounds != 40 {
		t.Errorf("clone status %+v", clone)
	}

	// A corrupt snapshot is a 400, not a 500 or a zombie job.
	bad := json.RawMessage(`{"version":1,"config":{},"state":{"bogus":true}}`)
	if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{Snapshot: bad}, nil); code != http.StatusBadRequest {
		t.Errorf("corrupt snapshot: status %d", code)
	}
}

func TestHealthzWithStore(t *testing.T) {
	_, ts := persistentTestServer(t, t.TempDir())
	var out Healthz
	if code := do(t, ts, http.MethodGet, "/v1/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.StateStore != "ok" {
		t.Errorf("state store %q, want ok", out.StateStore)
	}
}

// TestSaveAllLoadAllWithoutStore: both error cleanly.
func TestSaveAllLoadAllWithoutStore(t *testing.T) {
	srv := New()
	if err := srv.SaveAll(); err == nil {
		t.Error("SaveAll without store succeeded")
	}
	if err := srv.LoadAll(); err == nil {
		t.Error("LoadAll without store succeeded")
	}
}

// A state directory accumulates more than pristine snapshots over its
// life: crashed atomic renames leave `.job-N-*.tmp` files, the WAL
// keeps `.wal` segments alongside, operators drop backups and editors
// drop swap files in it. List must surface only loadable snapshot
// ids — everything else would turn LoadAll into a boot failure.
func TestFileStoreListSkipsForeignAndPartialFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("job-1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("job-2", []byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	// Seed the kinds of dirt a long-lived state dir collects.
	for _, name := range []string{
		".job-3-12345.tmp",     // crashed mid-rename
		"job-1.wal",            // WAL segment riding alongside
		"job-2.json.bak",       // operator backup
		"notes.txt",            // stray file
		".DS_Store",            // desktop droppings
		"job with spaces.json", // name that can't round-trip checkID
		"job..2.json",          // ditto
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "archive.json"), 0o755); err != nil {
		t.Fatal(err) // a DIRECTORY named like a snapshot
	}

	ids, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"job-1", "job-2"}) {
		t.Fatalf("list: %v, want [job-1 job-2]", ids)
	}

	// And a broker booting off this dirty dir loads cleanly.
	srv := New()
	srv.Store = fs
	if err := srv.LoadAll(); err == nil {
		// The two snapshots are junk JSON here, so LoadAll fails on
		// content — but it must fail on CONTENT, not on foreign files.
		t.Log("LoadAll accepted junk snapshots (fine for this test)")
	}
}
