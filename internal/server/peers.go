package server

import (
	"fmt"
	"sort"
	"strings"
)

// Peer topology. A cluster is a STATIC list of brokers sharing one
// state directory; each job id maps onto the list with rendezvous
// (highest-random-weight) hashing. HRW gives every job a full,
// deterministic preference order over the peers — rank 0 is the job's
// home, rank 1 its designated successor, and so on — that every node
// computes identically with no coordination. Ownership itself is
// proven by leases (lease.go); the HRW ranking only decides who should
// ACQUIRE: rank 0 adopts unowned jobs, and when an owner's lease
// expires, the highest-ranked peer that is not the lapsed owner is the
// failover successor.

// Peer is one broker in the static cluster topology.
type Peer struct {
	// ID is the node's stable name; it appears in lease records, job
	// ids (`job-<id>-<n>`), and log lines, so it must satisfy the same
	// charset as a snapshot id.
	ID string
	// URL is the node's base API URL (scheme://host:port), the target
	// misrouted requests are proxied to.
	URL string
}

// ParsePeers parses the -peers flag form: comma-separated `id=url`
// entries, e.g. `a=http://127.0.0.1:8080,b=http://127.0.0.1:8081`.
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("server: empty peer list")
	}
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("server: peer %q: want id=url", part)
		}
		if err := checkID(id); err != nil {
			return nil, fmt.Errorf("server: peer id %q: letters, digits, '-', '_' only", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("server: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("server: empty peer list")
	}
	return peers, nil
}

// rankPeers orders peers by descending HRW weight for a job id: the
// stable per-job preference list every node agrees on. Ties (FNV
// collisions) break by peer id so the order is total.
func rankPeers(peers []Peer, jobID string) []Peer {
	type weighted struct {
		p Peer
		w uint64
	}
	ws := make([]weighted, len(peers))
	for i, p := range peers {
		ws[i] = weighted{p: p, w: hashID(p.ID + "\x00" + jobID)}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].p.ID < ws[j].p.ID
	})
	out := make([]Peer, len(peers))
	for i, w := range ws {
		out[i] = w.p
	}
	return out
}

// claimantOf returns the peer that should hold jobID's lease given the
// current lease state: the recorded owner while the lease is live, the
// HRW home when no lease exists, and the highest-ranked peer that is
// NOT the lapsed owner once the lease expires — the hash-designated
// successor a crash fails over to.
func claimantOf(peers []Peer, jobID string, l *Lease, expired bool) Peer {
	rank := rankPeers(peers, jobID)
	if l == nil {
		return rank[0]
	}
	if !expired {
		for _, p := range rank {
			if p.ID == l.Owner {
				return p
			}
		}
		return rank[0] // owner not in the static list (topology changed)
	}
	for _, p := range rank {
		if p.ID != l.Owner {
			return p
		}
	}
	return rank[0] // single-node cluster: the owner succeeds itself
}
