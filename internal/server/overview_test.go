package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// TestOverviewSingleNode checks the endpoint works without a cluster:
// one "local" row whose counts mirror the registry.
func TestOverviewSingleNode(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)
	if code, _ := advance(t, h, nil, st.ID, 10); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cluster/overview", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("overview status %d", rec.Code)
	}
	var ov ClusterOverview
	if err := json.Unmarshal(rec.Body.Bytes(), &ov); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body)
	}
	if len(ov.Nodes) != 1 {
		t.Fatalf("nodes %d, want 1", len(ov.Nodes))
	}
	n := ov.Nodes[0]
	if n.NodeID != "local" || n.Status != "ok" {
		t.Fatalf("node row %+v", n)
	}
	if n.Jobs != 1 || n.JobsOwned != 1 || ov.Jobs != 1 || ov.JobsOwned != 1 {
		t.Fatalf("job counts node=%+v totals=%+v", n, ov)
	}
	if n.RoundsAdvanced != 10 {
		t.Fatalf("rounds_advanced %d, want 10", n.RoundsAdvanced)
	}
	if n.GoVersion != runtime.Version() || n.Version == "" {
		t.Fatalf("build fields %+v", n)
	}
	// The requests above landed inside the last minute.
	if n.Window.Win1m.Requests == 0 || n.Window.Win5m.Requests < n.Window.Win1m.Requests {
		t.Fatalf("window rollup %+v", n.Window)
	}
	if ov.Leases != nil || ov.Unreachable != 0 {
		t.Fatalf("single-node overview carries cluster fields: %+v", ov)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/cluster/overview", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST overview: %d, want 405", rec.Code)
	}
}

// TestOverviewTwoNodeMerge builds a real two-broker cluster, creates a
// job on one node, and checks the merge seen from the *other* node:
// both rows present, ownership consistent, lease stats attached.
func TestOverviewTwoNodeMerge(t *testing.T) {
	nodes := newTestCluster(t, t.TempDir(), newFakeClock(), "a", "b")
	var st JobStatus
	if resp := httpJSON(t, http.MethodPost, nodes["a"].ts.URL+"/v1/jobs", clusterJob, nil, &st); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	var ov ClusterOverview
	if resp := httpJSON(t, http.MethodGet, nodes["b"].ts.URL+"/v1/cluster/overview", "", nil, &ov); resp.StatusCode != http.StatusOK {
		t.Fatalf("overview: %d", resp.StatusCode)
	}
	if len(ov.Nodes) != 2 || ov.Nodes[0].NodeID != "a" || ov.Nodes[1].NodeID != "b" {
		t.Fatalf("merged nodes %+v, want sorted [a b]", ov.Nodes)
	}
	for _, n := range ov.Nodes {
		if n.Status != "ok" {
			t.Fatalf("node %s status %q", n.NodeID, n.Status)
		}
		if n.URL == "" {
			t.Fatalf("node %s missing URL", n.NodeID)
		}
	}
	// Node a created the job, holds its lease; node b owns nothing.
	if ov.Nodes[0].JobsOwned != 1 || ov.Nodes[1].JobsOwned != 0 {
		t.Fatalf("ownership a=%d b=%d, want 1/0", ov.Nodes[0].JobsOwned, ov.Nodes[1].JobsOwned)
	}
	if ov.JobsOwned != 1 || ov.Unreachable != 0 {
		t.Fatalf("totals %+v", ov)
	}
	// Lease protocol counters are per-store-handle; node b merely
	// attaches its own (possibly idle) view.
	if ov.Leases == nil {
		t.Fatal("clustered overview missing lease stats")
	}
	var ovA ClusterOverview
	if resp := httpJSON(t, http.MethodGet, nodes["a"].ts.URL+"/v1/cluster/overview", "", nil, &ovA); resp.StatusCode != http.StatusOK {
		t.Fatalf("overview via a: %d", resp.StatusCode)
	}
	if ovA.Leases == nil || ovA.Leases.Acquired == 0 {
		t.Fatalf("creator's lease stats %+v, want acquired > 0", ovA.Leases)
	}
	if ovA.JobsOwned != 1 || len(ovA.Nodes) != 2 {
		t.Fatalf("overview via a: %+v", ovA)
	}

	// ?scope=node answers locally with a bare row, no fan-out.
	var n NodeOverview
	if resp := httpJSON(t, http.MethodGet, nodes["a"].ts.URL+"/v1/cluster/overview?scope=node", "", nil, &n); resp.StatusCode != http.StatusOK {
		t.Fatalf("scope=node: %d", resp.StatusCode)
	}
	if n.NodeID != "a" || n.JobsOwned != 1 {
		t.Fatalf("scope=node row %+v", n)
	}
}

// TestOverviewDownPeerDegrades kills one node and checks the survivor
// still answers with a stub row instead of failing the merge.
func TestOverviewDownPeerDegrades(t *testing.T) {
	nodes := newTestCluster(t, t.TempDir(), newFakeClock(), "a", "b")
	nodes["b"].ts.Close()

	var ov ClusterOverview
	if resp := httpJSON(t, http.MethodGet, nodes["a"].ts.URL+"/v1/cluster/overview", "", nil, &ov); resp.StatusCode != http.StatusOK {
		t.Fatalf("overview: %d", resp.StatusCode)
	}
	if len(ov.Nodes) != 2 {
		t.Fatalf("nodes %d, want 2 (stub for the dead peer)", len(ov.Nodes))
	}
	if ov.Unreachable != 1 {
		t.Fatalf("unreachable %d, want 1", ov.Unreachable)
	}
	var stub *NodeOverview
	for i := range ov.Nodes {
		if ov.Nodes[i].NodeID == "b" {
			stub = &ov.Nodes[i]
		}
	}
	if stub == nil || stub.Status == "ok" || !strings.Contains(stub.Status, "unreachable") {
		t.Fatalf("dead-peer row %+v", stub)
	}
}

// TestTelemetryExposition checks the new scrape families land on
// /metrics: windowed route latency, build info, and tracing-store
// pressure gauges.
func TestTelemetryExposition(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)
	if code, _ := advance(t, h, nil, st.ID, 5); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	body := scrape(t, h)

	for _, want := range []string{
		`cdt_http_request_seconds_p50_1m{route="/v1/jobs/{id}/advance"}`,
		`cdt_http_request_seconds_p99_1m{route="/v1/jobs/{id}/advance"}`,
		`cdt_http_request_seconds_p50_5m{route="/v1/jobs"}`,
		`cdt_http_requests_1m{route="/v1/jobs/{id}/advance"} 1`,
		"cdt_http_shed_1m 0",
		"cdt_http_shed_rate_1m 0",
		"cdt_http_shed_rate_5m 0",
		`cdt_build_info{go_version="` + goVersionLabel() + `"`,
		`wire_version="2"} 1`,
		"cdt_trace_evicted_traces 0",
		"cdt_trace_dropped_spans 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func goVersionLabel() string { return runtime.Version() }

// TestHealthzGoVersion pins the additive healthz field.
func TestHealthzGoVersion(t *testing.T) {
	s := New()
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var hz Healthz
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body)
	}
	if hz.GoVersion != runtime.Version() {
		t.Fatalf("go_version %q, want %q", hz.GoVersion, runtime.Version())
	}
}
