package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Multi-node operation. A Cluster names this node, the static peer
// list sharing the state directory, and the lease cadence. With it
// set (and a LeaseStore-capable Store), the broker becomes one node of
// a horizontally scaled service:
//
//   - every job it serves is backed by a lease it holds and renews;
//   - requests for jobs another node owns are transparently proxied
//     (proxy.go), with traceparent and X-Request-ID forwarded so the
//     cross-node trace stitches;
//   - jobs whose lease lapses fail over: the HRW-designated successor
//     steals the lease at a higher epoch and resumes from snapshot +
//     WAL tail through the same bit-for-bit replay verification a
//     single-node restart uses;
//   - every store write is epoch-fenced, so an owner that lost its
//     lease (a zombie) can observe its own demise but never corrupt
//     the successor's state.
//
// With Cluster nil the broker is byte-for-byte the single-node service
// it always was: no leases, no fencing, no proxying, unchanged ids and
// wire formats.
type Cluster struct {
	// NodeID is this node's name in the peer list (same charset as a
	// job id).
	NodeID string
	// Peers is the full static topology, including this node.
	Peers []Peer
	// LeaseTTL is how long an unrenewed lease lives (default 10s).
	// Failover latency after a crash is LeaseTTL plus a grace of
	// leaseGrace for clock skew.
	LeaseTTL time.Duration
	// RenewEvery is the renewal-loop cadence (default LeaseTTL/3).
	RenewEvery time.Duration
	// Client issues proxied requests; nil uses a default client whose
	// per-request lifetime is the inbound request's context.
	Client *http.Client
	// Now replaces wall time in ownership decisions (tests drive
	// failover clocks through it); nil means time.Now. Set the same
	// clock on the FileStore/WALStore so both layers agree.
	Now func() time.Time
}

func (c *Cluster) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Cluster) ttl() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 10 * time.Second
}

func (c *Cluster) renewEvery() time.Duration {
	if c.RenewEvery > 0 {
		return c.RenewEvery
	}
	return c.ttl() / 3
}

// peer returns the peer record for a node id.
func (c *Cluster) peer(id string) (Peer, bool) {
	for _, p := range c.Peers {
		if p.ID == id {
			return p, true
		}
	}
	return Peer{}, false
}

// clustered reports whether this broker runs in multi-node mode.
func (s *Server) clustered() bool { return s.Cluster != nil }

// leaseStore returns the Store's lease extension, or nil.
func (s *Server) leaseStore() LeaseStore {
	if ls, ok := s.Store.(LeaseStore); ok {
		return ls
	}
	return nil
}

// ValidateCluster checks the Cluster configuration against the Store;
// cdt-server calls it at boot so misconfiguration fails fast.
func (s *Server) ValidateCluster() error {
	if !s.clustered() {
		return nil
	}
	c := s.Cluster
	if err := checkID(c.NodeID); err != nil {
		return fmt.Errorf("server: node id: %w", err)
	}
	if _, ok := c.peer(c.NodeID); !ok {
		return fmt.Errorf("server: node id %q not in peer list", c.NodeID)
	}
	if s.leaseStore() == nil {
		return errors.New("server: -peers needs a lease-capable store (-state-dir)")
	}
	return nil
}

// jobIDPrefix is the id namespace jobs minted by this node live in:
// "job-" single-node (unchanged), "job-<node>-" clustered, so two
// nodes sharing a store can never mint the same id.
func (s *Server) jobIDPrefix() string {
	if s.clustered() {
		return "job-" + s.Cluster.NodeID + "-"
	}
	return "job-"
}

// leaseFor reads a job's lease claim under its lock.
func (j *job) leaseFor() *Lease {
	j.mu.Lock()
	l := j.lease
	j.mu.Unlock()
	return l
}

// fence verifies the job's lease claim against the store — the read
// half of epoch fencing, used before WAL appends (the write half,
// FencedSave/ResetWALFenced, guards the renames). Caller holds j.mu.
// Single-node brokers pay one nil check.
func (s *Server) fence(j *job) error {
	if !s.clustered() || j.lease == nil {
		return nil
	}
	return s.leaseStore().CheckLease(j.id, j.lease.Owner, j.lease.Epoch)
}

// evictLostJob drops a job whose lease was stolen: it is removed from
// the registry without a save (the successor already owns the state)
// and its buffered WAL rounds are discarded. Caller must NOT hold
// j.mu.
func (s *Server) evictLostJob(j *job, cause error) {
	if s.registry().remove(j.id) != nil {
		s.met().leasesLost.Inc()
		s.leasesHeld.Add(-1)
		s.logger().Warn("lease lost, job evicted", "job_id", j.id, "error", cause)
	}
	j.mu.Lock()
	j.lease = nil
	j.walBuf, j.walCount, j.walErrs = nil, 0, 0
	j.walLog = false
	j.mu.Unlock()
}

// adoptJob loads one stored job under a just-acquired lease and
// publishes it: the takeover path of both boot-time adoption and
// crash failover. Caller must already hold the lease.
func (s *Server) adoptJob(ctx context.Context, id string, lease Lease) (*job, error) {
	j, err := s.loadStoredJob(ctx, id, &lease)
	if err != nil {
		return nil, err
	}
	j.lease = &lease
	// Failover must not drop jobs at the admission limit: a takeover
	// uses put, not putIfBelow — better briefly over MaxJobs than a
	// stranded job.
	s.registry().put(j)
	s.leasesHeld.Add(1)
	s.observeLoadedID(id)
	return j, nil
}

// takeover serializes failover acquisitions: it acquires id's lease
// (stealing an expired one at a higher epoch) and resumes the job from
// snapshot + WAL tail. Concurrent requests for the same job during a
// takeover block here and find it in the registry on re-check.
func (s *Server) takeover(ctx context.Context, id string) (*job, error) {
	s.takeoverMu.Lock()
	defer s.takeoverMu.Unlock()
	if j, ok := s.registry().get(id); ok {
		return j, nil
	}
	ls := s.leaseStore()
	lease, err := ls.AcquireLease(id, s.Cluster.NodeID, s.Cluster.ttl())
	if err != nil {
		return nil, err
	}
	j, err := s.adoptJob(ctx, id, lease)
	if err != nil {
		// Leave the lease in place: this node now owns a job it cannot
		// load (corrupt snapshot?); releasing would make every peer
		// take turns failing the same load.
		s.met().leaseTakeovers.Inc() // the steal happened even if the load failed
		return nil, err
	}
	s.met().leaseTakeovers.Inc()
	s.logger().Info("job takeover", "job_id", id, "epoch", lease.Epoch,
		"next_round", j.sess.NextRound())
	return j, nil
}

// claimable reports whether this node should try to own id right now,
// given the lease (nil when absent): it is the HRW home of an unowned
// job, the current holder, or the designated successor of an expired
// one.
func (s *Server) claimable(id string, l *Lease) bool {
	c := s.Cluster
	if l != nil && l.Owner == c.NodeID {
		return true
	}
	expired := l != nil && l.Expired(c.now(), leaseGrace)
	return claimantOf(c.Peers, id, l, expired).ID == c.NodeID &&
		(l == nil || expired)
}

// RenewOwnedLeases renews the lease of every job this node serves and
// evicts any whose lease was stolen. It returns the number of renewal
// failures; the lease loop calls it every RenewEvery.
func (s *Server) RenewOwnedLeases() int {
	if !s.clustered() || s.leaseStore() == nil {
		return 0
	}
	ls := s.leaseStore()
	failures := 0
	for _, j := range s.registry().snapshot() {
		l := j.leaseFor()
		if l == nil {
			continue
		}
		renewed, err := ls.RenewLease(j.id, l.Owner, l.Epoch, s.Cluster.ttl())
		if err != nil {
			failures++
			s.met().leaseRenewFailures.Inc()
			if errors.Is(err, ErrLeaseLost) {
				s.evictLostJob(j, err)
			} else {
				s.logger().Error("lease renew", "job_id", j.id, "error", err)
			}
			continue
		}
		j.mu.Lock()
		if j.lease != nil {
			*j.lease = renewed
		}
		j.mu.Unlock()
	}
	return failures
}

// AdoptOrphans scans the store for jobs this node should own but does
// not — unowned jobs it is the HRW home of, expired leases it is the
// designated successor for — and takes them over. It returns the
// number adopted; the lease loop calls it so failover happens even
// when no request for the orphan arrives.
func (s *Server) AdoptOrphans(ctx context.Context) int {
	if !s.clustered() || s.leaseStore() == nil {
		return 0
	}
	ls := s.leaseStore()
	ids, err := ls.List()
	if err != nil {
		s.logger().Error("orphan scan", "error", err)
		return 0
	}
	adopted := 0
	for _, id := range ids {
		if _, ok := s.registry().get(id); ok {
			continue
		}
		l, err := ls.LoadLease(id)
		if err != nil || !s.claimable(id, l) {
			continue
		}
		if _, err := s.takeover(ctx, id); err != nil {
			if !errors.Is(err, ErrLeaseHeld) {
				s.logger().Error("orphan takeover", "job_id", id, "error", err)
			}
			continue
		}
		adopted++
	}
	return adopted
}

// ReleaseOwnedLeases releases every lease this node holds — the
// graceful-shutdown handoff that lets peers adopt the jobs immediately
// instead of waiting out the TTL. Call it AFTER SaveAll.
func (s *Server) ReleaseOwnedLeases() {
	if !s.clustered() || s.leaseStore() == nil {
		return
	}
	ls := s.leaseStore()
	for _, j := range s.registry().snapshot() {
		l := j.leaseFor()
		if l == nil {
			continue
		}
		if err := ls.ReleaseLease(j.id, l.Owner, l.Epoch); err != nil {
			s.logger().Error("lease release", "job_id", j.id, "error", err)
			continue
		}
		s.leasesHeld.Add(-1)
		j.mu.Lock()
		j.lease = nil
		j.mu.Unlock()
	}
}

// RunLeaseLoop drives the cluster's background duties — renewals,
// orphan adoption, lease GC — until ctx is done. cdt-server runs it on
// its own goroutine; tests call the individual steps directly.
func (s *Server) RunLeaseLoop(ctx context.Context) {
	if !s.clustered() {
		return
	}
	t := time.NewTicker(s.Cluster.renewEvery())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.RenewOwnedLeases()
			s.AdoptOrphans(ctx)
			if ls := s.leaseStore(); ls != nil {
				if n, err := ls.SweepLeases(); err != nil {
					s.logger().Error("lease sweep", "error", err)
				} else if n > 0 {
					s.logger().Info("lease sweep", "removed", n)
				}
			}
		}
	}
}

// observeLoadedID advances the id allocator past a loaded id minted in
// this node's namespace, so a restart never re-mints it.
func (s *Server) observeLoadedID(id string) {
	if n, ok := strings.CutPrefix(id, s.jobIDPrefix()); ok {
		var v int64
		if _, err := fmt.Sscanf(n, "%d", &v); err == nil && fmt.Sprintf("%d", v) == n {
			s.registry().observeID(v)
		}
	}
}

// JobLeaseStatus is the wire view of a job's ownership, embedded in
// JobStatus on clustered brokers (absent single-node, keeping the
// wire format unchanged).
type JobLeaseStatus struct {
	Owner string `json:"owner"`
	Epoch int64  `json:"epoch"`
	// ExpiresInSeconds is the remaining lease lifetime at render time;
	// negative means lapsed (failover imminent).
	ExpiresInSeconds float64 `json:"expires_in_s"`
}

// ClusterHealthz is the healthz block a clustered broker adds.
type ClusterHealthz struct {
	NodeID    string      `json:"node_id"`
	Peers     []string    `json:"peers"`
	JobsOwned int         `json:"jobs_owned"`
	LeaseTTLS float64     `json:"lease_ttl_s"`
	Leases    *LeaseStats `json:"leases,omitempty"`
}
