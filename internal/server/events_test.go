package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cmabhs/internal/metrics"
)

// TestEventHubDropAccounting pins the slow-consumer contract: a full
// subscriber buffer drops the event for that subscriber only, counts
// the drop per subscriber and in the shared counter, and never blocks
// the publisher.
func TestEventHubDropAccounting(t *testing.T) {
	reg := metrics.New()
	drops := reg.Counter("cdt_job_events_dropped_total", "test")
	hub := newEventHub(drops)

	slow := hub.subscribe(2)
	fast := hub.subscribe(16)
	for i := 1; i <= 10; i++ {
		hub.publish(JobEvent{Round: i})
	}
	if got := slow.dropped.Load(); got != 8 {
		t.Fatalf("slow subscriber dropped %d, want 8", got)
	}
	if got := fast.dropped.Load(); got != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", got)
	}
	if got := drops.Value(); got != 8 {
		t.Fatalf("shared drop counter %v, want 8", got)
	}
	// The slow subscriber kept the OLDEST two (drops happen at the
	// tail), so the gap is visible as missing later rounds.
	if ev := <-slow.ch; ev.Round != 1 {
		t.Fatalf("first buffered round %d, want 1", ev.Round)
	}
	if len(fast.ch) != 10 {
		t.Fatalf("fast subscriber buffered %d events, want 10", len(fast.ch))
	}

	hub.unsubscribe(slow)
	hub.unsubscribe(fast)
	if hub.active() {
		t.Fatal("hub still active after both unsubscribed")
	}
	// Publishing to an empty hub is a no-op, not a panic.
	hub.publish(JobEvent{Round: 99})
}

// streamEvents opens the live event stream for a job and returns the
// response plus a line scanner over the body.
func streamEvents(t *testing.T, ts *httptest.Server, id, query string, ctx context.Context) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	return resp, bufio.NewScanner(resp.Body)
}

// TestJobEventsSSE checks the default stream framing: each round
// arrives as an SSE "round" event whose data line decodes into the
// JobEvent wire form, in round order.
func TestJobEventsSSE(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs",
		JobRequest{RandomSellers: 8, K: 3, Rounds: 40, Seed: 5}, &st); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	resp, sc := streamEvents(t, ts, st.ID, "", nil)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance",
		AdvanceRequest{Rounds: 3}, nil); code != http.StatusOK {
		t.Fatalf("advance status %d", code)
	}

	want := 1
	for sc.Scan() && want <= 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			if line != "" && line != "event: round" {
				t.Fatalf("unexpected SSE line %q", line)
			}
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad data line %q: %v", line, err)
		}
		if ev.JobID != st.ID || ev.Round != want {
			t.Fatalf("event %+v, want job %s round %d", ev, st.ID, want)
		}
		if len(ev.Selected) == 0 {
			t.Fatalf("round %d event carries no selection", ev.Round)
		}
		want++
	}
	if want != 4 {
		t.Fatalf("saw %d round events, want 3 (%v)", want-1, sc.Err())
	}
}

// TestJobEventsNDJSON checks the NDJSON framing: one JSON object per
// line, nothing else on the wire.
func TestJobEventsNDJSON(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs",
		JobRequest{RandomSellers: 8, K: 3, Rounds: 40, Seed: 5}, &st); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	resp, sc := streamEvents(t, ts, st.ID, "?format=ndjson", nil)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance",
		AdvanceRequest{Rounds: 2}, nil); code != http.StatusOK {
		t.Fatalf("advance status %d", code)
	}

	for want := 1; want <= 2; want++ {
		if !sc.Scan() {
			t.Fatalf("stream ended before round %d: %v", want, sc.Err())
		}
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if ev.Round != want {
			t.Fatalf("round %d, want %d", ev.Round, want)
		}
	}
}

// TestStreamWhileAdvancing runs the advance loop and two live streams
// concurrently — under -race this is the data-race proof for the
// observer/hub/handler triangle, and functionally it checks a
// subscriber that arrives mid-run still sees events.
func TestStreamWhileAdvancing(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs",
		JobRequest{RandomSellers: 10, K: 3, Rounds: 300, Seed: 9}, &st); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	readEvents := func(query string, seen *int) {
		defer wg.Done()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/jobs/"+st.ID+"/events"+query, nil)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("stream status %d", resp.StatusCode)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") || strings.HasPrefix(line, "{") {
				*seen++
			}
		}
	}
	var sseSeen, ndSeen int
	wg.Add(2)
	go readEvents("", &sseSeen)
	go readEvents("?format=ndjson", &ndSeen)
	// Give both subscribers a moment to attach before the bursts.
	time.Sleep(20 * time.Millisecond)

	// Advance in bursts while both streams drain.
	for i := 0; i < 10; i++ {
		if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance",
			AdvanceRequest{Rounds: 20}, nil); code != http.StatusOK {
			t.Fatalf("advance burst %d status %d", i, code)
		}
	}
	cancel()
	wg.Wait()

	if sseSeen == 0 || ndSeen == 0 {
		t.Fatalf("streams starved: sse %d, ndjson %d", sseSeen, ndSeen)
	}
}

// TestEventsMethodAndRoute locks the endpoint surface: POST is
// rejected, an unknown job 404s, and the deadline middleware leaves
// the stream alone even with a short RequestTimeout.
func TestEventsMethodAndRoute(t *testing.T) {
	s := New()
	s.RequestTimeout = 50 * time.Millisecond // shorter than the streaming window below
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs",
		JobRequest{RandomSellers: 6, K: 2, Rounds: 20, Seed: 3}, &st); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/events", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST events status %d", code)
	}
	if code := do(t, ts, http.MethodGet, "/v1/jobs/nope/events", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job events status %d", code)
	}

	// The stream outlives RequestTimeout: subscribe, wait past the
	// timeout while advancing, and the events still arrive.
	resp, sc := streamEvents(t, ts, st.ID, "?format=ndjson", nil)
	defer resp.Body.Close()
	time.Sleep(3 * s.RequestTimeout)
	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance",
		AdvanceRequest{Rounds: 1}, nil); code != http.StatusOK {
		t.Fatal("advance failed")
	}
	if !sc.Scan() {
		t.Fatalf("stream died before the first event: %v", sc.Err())
	}
	var ev JobEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Round != 1 {
		t.Fatalf("event after timeout window: %q err %v", sc.Text(), err)
	}
}
