package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRegistryShardRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, defaultShards}, {-3, defaultShards},
		{1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
		{maxShards, maxShards}, {maxShards + 1, maxShards},
	}
	for _, c := range cases {
		if got := newRegistry(c.in).shardCount(); got != c.want {
			t.Errorf("newRegistry(%d): %d shards, want %d", c.in, got, c.want)
		}
	}
}

func TestRegistryBasicOps(t *testing.T) {
	r := newRegistry(4)
	if r.len() != 0 {
		t.Fatalf("fresh registry holds %d jobs", r.len())
	}
	j := &job{id: r.allocID()}
	if j.id != "job-1" {
		t.Fatalf("first id %q", j.id)
	}
	if !r.putIfBelow(j, 10) {
		t.Fatal("put below cap rejected")
	}
	if got, ok := r.get(j.id); !ok || got != j {
		t.Fatalf("get(%q) = %v, %v", j.id, got, ok)
	}
	if r.putIfBelow(&job{id: j.id}, 10) {
		t.Fatal("duplicate id accepted")
	}
	if r.len() != 1 {
		t.Fatalf("len after collision rollback: %d", r.len())
	}
	if r.remove(j.id) != j {
		t.Fatal("remove of live id failed")
	}
	if r.remove(j.id) != nil {
		t.Fatal("second remove succeeded")
	}
	if r.len() != 0 {
		t.Fatalf("len after remove: %d", r.len())
	}
}

func TestRegistryCapIsExact(t *testing.T) {
	r := newRegistry(8)
	const cap = 5
	for i := 0; i < cap; i++ {
		if !r.putIfBelow(&job{id: r.allocID()}, cap) {
			t.Fatalf("insert %d rejected below cap", i)
		}
	}
	if r.putIfBelow(&job{id: r.allocID()}, cap) {
		t.Fatal("insert above cap accepted")
	}
	// cap<=0 means unlimited.
	if !r.putIfBelow(&job{id: r.allocID()}, 0) {
		t.Fatal("unlimited insert rejected")
	}
}

// The cap must hold exactly even when every slot is contended: spawn
// far more writers than slots and count acceptances.
func TestRegistryCapUnderContention(t *testing.T) {
	r := newRegistry(16)
	const cap, writers = 10, 64
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r.putIfBelow(&job{id: r.allocID()}, cap) {
				accepted.Add(1)
			}
		}()
	}
	wg.Wait()
	if accepted.Load() != cap || r.len() != cap {
		t.Fatalf("accepted %d (len %d), want exactly %d", accepted.Load(), r.len(), cap)
	}
}

func TestRegistrySnapshotAndObserveID(t *testing.T) {
	r := newRegistry(4)
	want := map[string]bool{}
	for i := 0; i < 20; i++ {
		id := r.allocID()
		want[id] = true
		r.put(&job{id: id})
	}
	snap := r.snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d jobs, want %d", len(snap), len(want))
	}
	for _, j := range snap {
		if !want[j.id] {
			t.Fatalf("snapshot holds unknown id %q", j.id)
		}
	}

	// observeID is a CAS-max: lower observations never move nextID back.
	r.observeID(50)
	r.observeID(7)
	if id := r.allocID(); id != "job-51" {
		t.Fatalf("alloc after observe: %q, want job-51", id)
	}
}

// Satellite: hammer create/advance/status/delete across shards under
// -race with an events subscriber attached, then prove no job was
// lost and that a reloaded broker mints ids past everything persisted.
func TestRegistryConcurrentChurn(t *testing.T) {
	ws := newWALStore(t)
	srv := New()
	srv.Store = ws
	srv.MaxJobs = 0 // unlimited: every create must land
	srv.Shards = 8
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 8
	const perWorker = 6
	var created, deleted atomic.Int64

	// One events subscriber riding along for the whole churn.
	var seed JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{
		RandomSellers: 8, K: 2, Rounds: 10_000, Seed: 99,
	}, &seed); code != http.StatusCreated {
		t.Fatalf("seed job: %d", code)
	}
	created.Add(1)
	sub, err := http.Get(ts.URL + "/v1/jobs/" + seed.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		buf := make([]byte, 4096)
		for {
			if _, err := sub.Body.Read(buf); err != nil {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var st JobStatus
				if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{
					RandomSellers: 8, K: 2, Rounds: 100, Seed: int64(w*1000 + i),
				}, &st); code != http.StatusCreated {
					t.Errorf("worker %d create %d: %d", w, i, code)
					return
				}
				created.Add(1)
				do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 5}, nil)
				do(t, ts, http.MethodPost, "/v1/jobs/"+seed.ID+"/advance", AdvanceRequest{Rounds: 3}, nil)
				do(t, ts, http.MethodGet, "/v1/jobs/"+st.ID, nil, nil)
				if i%2 == 1 {
					if code := do(t, ts, http.MethodDelete, "/v1/jobs/"+st.ID, nil, nil); code == http.StatusOK {
						deleted.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var jl []JobStatus
	if code := do(t, ts, http.MethodGet, "/v1/jobs", nil, &jl); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	wantLive := created.Load() - deleted.Load()
	if int64(len(jl)) != wantLive {
		t.Fatalf("live jobs %d, want %d (created %d, deleted %d)",
			len(jl), wantLive, created.Load(), deleted.Load())
	}
	sub.Body.Close()
	<-subDone

	// Persist everything, reload into a fresh broker, and check that
	// the id counter resumed past every survivor: a new create must
	// not collide.
	if err := srv.SaveAll(); err != nil {
		t.Fatal(err)
	}
	srv2 := New()
	srv2.Store = ws
	if err := srv2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var jl2 []JobStatus
	do(t, ts2, http.MethodGet, "/v1/jobs", nil, &jl2)
	if len(jl2) != len(jl) {
		t.Fatalf("reloaded %d jobs, want %d", len(jl2), len(jl))
	}
	existing := map[string]bool{}
	for _, j := range jl2 {
		existing[j.ID] = true
	}
	var fresh JobStatus
	if code := do(t, ts2, http.MethodPost, "/v1/jobs", JobRequest{
		RandomSellers: 5, K: 2, Rounds: 10, Seed: 1,
	}, &fresh); code != http.StatusCreated {
		t.Fatalf("create after reload: %d", code)
	}
	if existing[fresh.ID] {
		t.Fatalf("reloaded broker re-minted id %q", fresh.ID)
	}
}

// Acceptance: registry throughput must scale with the shard count on
// a multi-core box (shards=1 is the old single-mutex shape). Ids are
// pre-minted so the parallel loop measures registry ops, not
// formatting. Run with:
//
//	go test ./internal/server/ -bench RegistryChurn -benchtime 1s
func BenchmarkRegistryChurn(b *testing.B) {
	const idSpace = 4096
	ids := make([]string, idSpace)
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%d", i)
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := newRegistry(shards)
			var ctr atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := ids[int(ctr.Add(1))%idSpace]
					r.put(&job{id: id})
					r.get(id)
					r.get(id)
					r.remove(id)
				}
			})
		})
	}
}
