package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Store persists job snapshots across broker restarts. Implementations
// must make Save atomic: a crash mid-save leaves either the previous
// snapshot or the new one, never a torn file.
type Store interface {
	// Save durably stores the snapshot bytes under id, replacing any
	// previous snapshot of that id.
	Save(id string, data []byte) error
	// Load returns the snapshot stored under id.
	Load(id string) ([]byte, error)
	// Delete removes id's snapshot; deleting a missing id is not an
	// error.
	Delete(id string) error
	// List returns the stored ids in stable order.
	List() ([]string, error)
}

// FileStore is a directory-backed Store: one `<id>.json` file per
// job, written via a temp file and os.Rename so readers and crash
// recovery never observe a partial snapshot. It also implements the
// LeaseStore extension (see lease.go): multi-node deployments keep a
// `<id>.json.lease` ownership record next to each snapshot.
type FileStore struct {
	dir string

	// Now, when set, replaces wall time in every lease expiry decision
	// — the injection point the clock-skew and failover tests use. Set
	// it before the store is shared; nil means time.Now.
	Now func() time.Time

	leaseCounters
}

// NewFileStore creates (if needed) the directory and returns the
// store.
func NewFileStore(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, errors.New("server: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *FileStore) Dir() string { return f.dir }

// checkID rejects ids that could escape the directory.
func checkID(id string) error {
	if id == "" {
		return errors.New("server: empty snapshot id")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("server: snapshot id %q contains %q", id, r)
		}
	}
	return nil
}

func (f *FileStore) path(id string) string {
	return filepath.Join(f.dir, id+".json")
}

// Save implements Store with write-to-temp + atomic rename.
func (f *FileStore) Save(id string, data []byte) error {
	if err := checkID(id); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(f.dir, "."+id+"-*.tmp")
	if err != nil {
		return fmt.Errorf("server: save %s: %w", id, err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: save %s: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), f.path(id)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: save %s: %w", id, err)
	}
	// The temp file's CONTENT is now durable (tmp.Sync above), but the
	// rename lives in the parent directory's entries: without syncing
	// the directory a power loss can forget the rename and resurface
	// the previous snapshot — or nothing. fsync the directory so the
	// new snapshot survives the plug being pulled.
	if err := syncDir(f.dir); err != nil {
		return fmt.Errorf("server: save %s: %w", id, err)
	}
	return nil
}

// syncDir fsyncs a directory's entry table.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	return errors.Join(serr, cerr)
}

// Load implements Store.
func (f *FileStore) Load(id string) ([]byte, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(f.path(id))
	if err != nil {
		return nil, fmt.Errorf("server: load %s: %w", id, err)
	}
	return data, nil
}

// Delete implements Store. The removal is fsynced for the same
// reason Save fsyncs the rename: a deleted job must not resurrect
// after a power loss. The job's lease record and any leftover lease
// lock go with it — a deleted job has no ownership to dispute.
func (f *FileStore) Delete(id string) error {
	if err := checkID(id); err != nil {
		return err
	}
	os.Remove(f.leasePath(id))
	os.Remove(f.lockPath(id))
	if err := os.Remove(f.path(id)); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("server: delete %s: %w", id, err)
	}
	if err := syncDir(f.dir); err != nil {
		return fmt.Errorf("server: delete %s: %w", id, err)
	}
	return nil
}

// List implements Store. Only entries that look like snapshots this
// store could have written survive the listing: foreign and partial
// files — a leftover `*.tmp` from a crashed atomic rename or lease
// write, lease records and lock files (`*.lease`, `*.lease.lock`,
// orphaned or not), editor droppings, a directory someone created in
// the state dir, a name that would never pass checkID — are skipped
// rather than surfaced as job ids that LoadAll would then fail to
// load.
func (f *FileStore) List() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("server: list snapshots: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if checkID(id) != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

var _ Store = (*FileStore)(nil)
