package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cmabhs/internal/tracing"
)

const clusterTTL = 30 * time.Second

// testNode is one in-process broker of a test cluster: a Server over
// its own WALStore handle, all handles sharing one state directory
// and one fake clock, fronted by a real HTTP listener so proxied
// requests travel the wire.
type testNode struct {
	s  *Server
	ws *WALStore
	ts *httptest.Server
}

func (n *testNode) close() {
	if n.ts != nil {
		n.ts.Close()
	}
	n.ws.Close()
}

// newTestCluster builds one broker per id over a shared dir and wires
// the full peer topology into each.
func newTestCluster(t *testing.T, dir string, clk *fakeClock, ids ...string) map[string]*testNode {
	t.Helper()
	nodes := make(map[string]*testNode, len(ids))
	var peers []Peer
	for _, id := range ids {
		ws, err := NewWALStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		ws.SetNow(clk.Now)
		s := New()
		s.Store = ws
		s.CompactEvery = 16
		s.Cluster = &Cluster{NodeID: id, LeaseTTL: clusterTTL, Now: clk.Now}
		n := &testNode{s: s, ws: ws}
		n.ts = httptest.NewServer(s.Handler())
		peers = append(peers, Peer{ID: id, URL: n.ts.URL})
		nodes[id] = n
	}
	for _, n := range nodes {
		n.s.Cluster.Peers = peers
		if err := n.s.ValidateCluster(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.close()
		}
	})
	return nodes
}

const clusterJob = `{"random_sellers":4,"k":2,"rounds":40,"seed":11}`

// httpJSON performs a request against a live node and decodes the
// response body into out (when non-nil).
func httpJSON(t *testing.T, method, url string, body string, hdr map[string]string, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s %s -> %d: %v: %s", method, url, resp.StatusCode, err, data)
		}
	}
	resp.Body.Close()
	return resp
}

func TestClusterCreateOwnsAndNamespacesJob(t *testing.T) {
	nodes := newTestCluster(t, t.TempDir(), newFakeClock(), "a", "b")
	var st JobStatus
	resp := httpJSON(t, http.MethodPost, nodes["a"].ts.URL+"/v1/jobs", clusterJob, nil, &st)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if st.ID != "job-a-1" {
		t.Fatalf("clustered id %q, want job-a-1", st.ID)
	}
	if st.Lease == nil || st.Lease.Owner != "a" || st.Lease.Epoch != 1 {
		t.Fatalf("lease block: %+v", st.Lease)
	}
	if st.Lease.ExpiresInSeconds <= 0 {
		t.Fatalf("lease already lapsed at birth: %+v", st.Lease)
	}
	if st.Links.Owner != nodes["a"].ts.URL+"/v1/jobs/job-a-1" {
		t.Fatalf("owner link: %q", st.Links.Owner)
	}
	if got := nodes["a"].s.leasesHeld.Load(); got != 1 {
		t.Fatalf("leases held: %d", got)
	}
}

// TestClusterProxyStitchesTraces is the request-forwarding contract:
// a request for a's job landing on b is served through b transparently,
// the relayed response is stamped with the forwarder, the client's
// request id survives both hops, and the trace id the client sent is
// the one the OWNER's span carries — one trace across two nodes.
func TestClusterProxyStitchesTraces(t *testing.T) {
	nodes := newTestCluster(t, t.TempDir(), newFakeClock(), "a", "b")
	var created JobStatus
	httpJSON(t, http.MethodPost, nodes["a"].ts.URL+"/v1/jobs", clusterJob, nil, &created)

	traceID := "0123456789abcdef0123456789abcdef"
	var st JobStatus
	resp := httpJSON(t, http.MethodGet, nodes["b"].ts.URL+"/v1/jobs/"+created.ID, "", map[string]string{
		"traceparent":  "00-" + traceID + "-00f067aa0ba902b7-01",
		"X-Request-ID": "req-42",
	}, &st)
	if resp.StatusCode != http.StatusOK || st.ID != created.ID {
		t.Fatalf("proxied status: %d %+v", resp.StatusCode, st)
	}
	if got := resp.Header.Get("X-CDT-Proxied-By"); got != "b" {
		t.Fatalf("X-CDT-Proxied-By %q, want b", got)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-42" {
		t.Fatalf("request id across the hop: %q", got)
	}
	gotTrace, _, ok := tracing.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || gotTrace.String() != traceID {
		t.Fatalf("trace id across the hop: %q (header %q)", gotTrace, resp.Header.Get("Traceparent"))
	}

	// An advance through the non-owner plays rounds on the owner.
	var adv AdvanceResponse
	resp = httpJSON(t, http.MethodPost, nodes["b"].ts.URL+"/v1/jobs/"+created.ID+"/advance",
		`{"rounds":3}`, nil, &adv)
	if resp.StatusCode != http.StatusOK || len(adv.Played) != 3 {
		t.Fatalf("proxied advance: %d, %d rounds", resp.StatusCode, len(adv.Played))
	}
	if adv.Status.NextRound != 4 || adv.Status.Lease.Owner != "a" {
		t.Fatalf("proxied advance status: %+v", adv.Status)
	}
	if n := nodes["b"].s.met().proxied("/v1/jobs/{id}").Value(); n == 0 {
		t.Fatal("proxied status request not counted")
	}
	if n := nodes["b"].s.met().proxied("/v1/jobs/{id}/advance").Value(); n != 1 {
		t.Fatalf("proxied advance count %v, want 1", n)
	}
	// The owner never counts a proxy.
	if n := nodes["a"].s.met().proxied("/v1/jobs/{id}").Value(); n != 0 {
		t.Fatalf("owner counted %v proxied requests", n)
	}
}

func TestClusterForwardLoopAnswers503WithRetryHint(t *testing.T) {
	nodes := newTestCluster(t, t.TempDir(), newFakeClock(), "a", "b")
	var created JobStatus
	httpJSON(t, http.MethodPost, nodes["a"].ts.URL+"/v1/jobs", clusterJob, nil, &created)

	// A request already forwarded once must not hop again: ownership
	// is in transition, and the client gets told when to come back in
	// BOTH the header and the envelope.
	var er ErrorResponse
	resp := httpJSON(t, http.MethodGet, nodes["b"].ts.URL+"/v1/jobs/"+created.ID, "",
		map[string]string{"X-CDT-Forwarded-By": "a"}, &er)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second hop: %d", resp.StatusCode)
	}
	if er.Error.Code != "ownership_transition" {
		t.Fatalf("code %q", er.Error.Code)
	}
	if er.Error.RetryAfterS <= 0 {
		t.Fatalf("no retry_after_s in the envelope: %+v", er.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After header on the 503")
	}
}

// TestClusterFailoverAndFencing is the in-process half of the chaos
// story: the owner becomes unreachable, the peer steals the lease
// after expiry and resumes the job from snapshot + WAL tail, and the
// zombie owner's next write is fenced off and evicts the job.
func TestClusterFailoverAndFencing(t *testing.T) {
	clk := newFakeClock()
	nodes := newTestCluster(t, t.TempDir(), clk, "a", "b")
	a, b := nodes["a"], nodes["b"]

	var created JobStatus
	httpJSON(t, http.MethodPost, a.ts.URL+"/v1/jobs", clusterJob, nil, &created)
	var adv AdvanceResponse
	httpJSON(t, http.MethodPost, a.ts.URL+"/v1/jobs/"+created.ID+"/advance", `{"rounds":5}`, nil, &adv)
	if adv.Status.NextRound != 6 {
		t.Fatalf("pre-crash cursor: %+v", adv.Status)
	}

	// The owner drops off the network but its lease is still live:
	// requests through b fail over the wire and come back 503 with a
	// hint, NOT as a steal.
	a.ts.Close()
	a.ts = nil
	var er ErrorResponse
	resp := httpJSON(t, http.MethodGet, b.ts.URL+"/v1/jobs/"+created.ID, "", nil, &er)
	if resp.StatusCode != http.StatusServiceUnavailable || er.Error.Code != "owner_unreachable" {
		t.Fatalf("owner down, lease live: %d %+v", resp.StatusCode, er.Error)
	}
	if er.Error.RetryAfterS <= 0 {
		t.Fatalf("no retry hint while failover pends: %+v", er.Error)
	}

	// Lease expires: the next request THROUGH b performs the takeover
	// and serves locally at a higher epoch, resumed round-exact.
	clk.Advance(clusterTTL + leaseGrace + time.Millisecond)
	var st JobStatus
	resp = httpJSON(t, http.MethodGet, b.ts.URL+"/v1/jobs/"+created.ID, "", nil, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover status: %d", resp.StatusCode)
	}
	if st.Lease == nil || st.Lease.Owner != "b" || st.Lease.Epoch != 2 {
		t.Fatalf("takeover lease: %+v", st.Lease)
	}
	if st.NextRound != 6 {
		t.Fatalf("takeover resumed at round %d, want 6", st.NextRound)
	}
	if resp.Header.Get("X-CDT-Proxied-By") != "" {
		t.Fatal("takeover response was proxied")
	}
	if n := b.s.met().leaseTakeovers.Value(); n != 1 {
		t.Fatalf("takeovers counted: %v", n)
	}

	// The zombie still has the job in memory. Its next advance is
	// fenced at the WAL flush, answered 503 lease_lost, and the job
	// is evicted — it never writes a byte over the successor's state.
	rec := httptest.NewRecorder()
	a.s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost,
		"/v1/jobs/"+created.ID+"/advance", strings.NewReader(`{"rounds":1}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("zombie advance: %d: %s", rec.Code, rec.Body)
	}
	var zer ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &zer); err != nil || zer.Error.Code != "lease_lost" {
		t.Fatalf("zombie advance envelope: %+v err=%v", zer.Error, err)
	}
	if _, ok := a.s.registry().get(created.ID); ok {
		t.Fatal("zombie kept the job after fencing")
	}
	if n := a.s.met().leasesLost.Value(); n != 1 {
		t.Fatalf("lost leases counted: %v", n)
	}

	// b still owns and serves it.
	var after JobStatus
	if resp := httpJSON(t, http.MethodGet, b.ts.URL+"/v1/jobs/"+created.ID, "", nil, &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fence status via successor: %d", resp.StatusCode)
	}
	if after.NextRound != 6 || after.Lease.Epoch != 2 {
		t.Fatalf("successor state after zombie fenced: %+v", after)
	}
}

func TestClusterRenewLoopEvictsStolenJobs(t *testing.T) {
	clk := newFakeClock()
	nodes := newTestCluster(t, t.TempDir(), clk, "a", "b")
	a, b := nodes["a"], nodes["b"]

	var created JobStatus
	httpJSON(t, http.MethodPost, a.ts.URL+"/v1/jobs", clusterJob, nil, &created)

	// Healthy renewals: no failures, expiry extended.
	clk.Advance(clusterTTL / 2)
	if n := a.s.RenewOwnedLeases(); n != 0 {
		t.Fatalf("healthy renew failures: %d", n)
	}

	// b steals after expiry (as its lease loop would); a's next renew
	// pass must discover the loss and evict.
	clk.Advance(clusterTTL + leaseGrace + time.Millisecond)
	if _, err := b.ws.AcquireLease(created.ID, "b", clusterTTL); err != nil {
		t.Fatal(err)
	}
	if n := a.s.RenewOwnedLeases(); n != 1 {
		t.Fatalf("renew failures after steal: %d", n)
	}
	if _, ok := a.s.registry().get(created.ID); ok {
		t.Fatal("stolen job not evicted by the renew loop")
	}
	if n := a.s.met().leaseRenewFailures.Value(); n != 1 {
		t.Fatalf("renew failures counted: %v", n)
	}
	if got := a.s.leasesHeld.Load(); got != 0 {
		t.Fatalf("leases held after eviction: %d", got)
	}
}

func TestClusterAdoptOrphansFailsOverWithoutTraffic(t *testing.T) {
	clk := newFakeClock()
	nodes := newTestCluster(t, t.TempDir(), clk, "a", "b")
	a, b := nodes["a"], nodes["b"]

	var created JobStatus
	httpJSON(t, http.MethodPost, a.ts.URL+"/v1/jobs", clusterJob, nil, &created)
	httpJSON(t, http.MethodPost, a.ts.URL+"/v1/jobs/"+created.ID+"/advance", `{"rounds":4}`, nil, nil)

	// No request ever reaches b for this job; its lease loop still
	// claims it once the owner lapses.
	clk.Advance(clusterTTL + leaseGrace + time.Millisecond)
	if n := b.s.AdoptOrphans(context.Background()); n != 1 {
		t.Fatalf("adopted %d orphans, want 1", n)
	}
	j, ok := b.s.registry().get(created.ID)
	if !ok {
		t.Fatal("orphan not in successor registry")
	}
	if l := j.leaseFor(); l == nil || l.Epoch != 2 {
		t.Fatalf("orphan lease: %+v", l)
	}
	// Idempotent: a second pass adopts nothing.
	if n := b.s.AdoptOrphans(context.Background()); n != 0 {
		t.Fatalf("second adoption pass took %d jobs", n)
	}
}

func TestClusterHealthzReportsTopology(t *testing.T) {
	nodes := newTestCluster(t, t.TempDir(), newFakeClock(), "a", "b")
	httpJSON(t, http.MethodPost, nodes["a"].ts.URL+"/v1/jobs", clusterJob, nil, nil)

	var h Healthz
	httpJSON(t, http.MethodGet, nodes["a"].ts.URL+"/v1/healthz", "", nil, &h)
	if h.Cluster == nil {
		t.Fatal("no cluster block on a clustered broker")
	}
	if h.Cluster.NodeID != "a" || len(h.Cluster.Peers) != 2 || h.Cluster.JobsOwned != 1 {
		t.Fatalf("cluster healthz: %+v", h.Cluster)
	}
	if h.Cluster.LeaseTTLS != clusterTTL.Seconds() {
		t.Fatalf("lease ttl: %v", h.Cluster.LeaseTTLS)
	}
	if h.Cluster.Leases == nil || h.Cluster.Leases.Acquired == 0 {
		t.Fatalf("lease stats: %+v", h.Cluster.Leases)
	}

	// The peer owns nothing and says so.
	var hb Healthz
	httpJSON(t, http.MethodGet, nodes["b"].ts.URL+"/v1/healthz", "", nil, &hb)
	if hb.Cluster.JobsOwned != 0 || hb.Cluster.NodeID != "b" {
		t.Fatalf("peer healthz: %+v", hb.Cluster)
	}
}

// TestClusterBootAdoptionPartitions: after a full-cluster graceful
// shutdown (snapshots saved, leases released), fresh nodes booting
// over the shared dir partition the stored jobs — every job adopted
// by exactly one node.
func TestClusterBootAdoptionPartitions(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	nodes := newTestCluster(t, dir, clk, "a", "b")

	var ids []string
	for _, n := range []*testNode{nodes["a"], nodes["b"]} {
		for i := 0; i < 2; i++ {
			var st JobStatus
			httpJSON(t, http.MethodPost, n.ts.URL+"/v1/jobs", clusterJob, nil, &st)
			ids = append(ids, st.ID)
		}
	}
	for _, n := range nodes {
		if err := n.s.SaveAll(); err != nil {
			t.Fatal(err)
		}
		n.s.ReleaseOwnedLeases()
		n.close()
		n.ts = nil
	}

	fresh := newTestCluster(t, dir, clk, "a", "b")
	for _, n := range fresh {
		if err := n.s.LoadAll(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		_, onA := fresh["a"].s.registry().get(id)
		_, onB := fresh["b"].s.registry().get(id)
		if onA == onB {
			t.Fatalf("job %s adopted by a=%v b=%v, want exactly one", id, onA, onB)
		}
	}
	held := fresh["a"].s.leasesHeld.Load() + fresh["b"].s.leasesHeld.Load()
	if held != int64(len(ids)) {
		t.Fatalf("leases held across the cluster: %d, want %d", held, len(ids))
	}
}

func TestValidateCluster(t *testing.T) {
	s := New()
	s.Cluster = &Cluster{NodeID: "a", Peers: []Peer{{ID: "a", URL: "http://x"}}}
	if err := s.ValidateCluster(); err == nil {
		t.Fatal("cluster without a lease-capable store validated")
	}
	ws := newWALStore(t)
	s.Store = ws
	if err := s.ValidateCluster(); err != nil {
		t.Fatal(err)
	}
	s.Cluster.NodeID = "zz"
	if err := s.ValidateCluster(); err == nil {
		t.Fatal("node id outside the peer list validated")
	}
	s.Cluster.NodeID = "bad id"
	if err := s.ValidateCluster(); err == nil {
		t.Fatal("invalid node id validated")
	}
	// Single-node: nothing to validate.
	if err := New().ValidateCluster(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleNodeWireUnchanged guards the compatibility contract: with
// no Cluster, statuses carry no lease block, ids keep the bare job-N
// form, and healthz has no cluster section.
func TestSingleNodeWireUnchanged(t *testing.T) {
	s := New()
	s.Store = newWALStore(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(clusterJob)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["lease"]; ok {
		t.Fatal("single-node status grew a lease block")
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-1" {
		t.Fatalf("single-node id %q", st.ID)
	}
	if strings.Contains(rec.Body.String(), `"owner"`) {
		t.Fatal("single-node links grew an owner relation")
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if strings.Contains(rec.Body.String(), `"cluster"`) {
		t.Fatal("single-node healthz grew a cluster block")
	}

	// And the metrics surface carries no lease families.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec.Body.String(), "cdt_leases_held") ||
		strings.Contains(rec.Body.String(), "cdt_proxied_requests_total") {
		t.Fatal("single-node /metrics grew cluster families")
	}
}

// TestFencedStoreErrorIsPermanent: a lost lease must not burn the
// whole retry budget — the retry loop stops on the first fencing
// rejection.
func TestFencedStoreErrorIsPermanent(t *testing.T) {
	clk := newFakeClock()
	nodes := newTestCluster(t, t.TempDir(), clk, "a", "b")
	a, b := nodes["a"], nodes["b"]
	var created JobStatus
	httpJSON(t, http.MethodPost, a.ts.URL+"/v1/jobs", clusterJob, nil, &created)

	clk.Advance(clusterTTL + leaseGrace + time.Millisecond)
	if _, err := b.ws.AcquireLease(created.ID, "b", clusterTTL); err != nil {
		t.Fatal(err)
	}

	j, _ := a.s.registry().get(created.ID)
	before := a.s.met().retryAttempts.Value()
	err := a.s.saveToStore(context.Background(), created.ID, []byte("{}"), j.leaseFor())
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("fenced save error: %v", err)
	}
	if got := a.s.met().retryAttempts.Value() - before; got != 1 {
		t.Fatalf("fenced save took %v attempts, want 1", got)
	}
}
