package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"cmabhs/internal/tracing"
)

// This file hardens the broker against the failure modes a public
// service meets: handler panics (isolated to a 500 instead of
// killing the process), unbounded request bodies (413 past
// MaxBodyBytes), and requests that outlive their usefulness
// (per-request deadlines, honored by the advance loop at round
// boundaries). Overload shedding for the advance pool lives in the
// advance handler itself (429 + Retry-After).

// statusWriter tracks whether a handler already wrote a status line —
// so the panic recovery layer knows whether a 500 can still go out —
// and which code it wrote, so the metrics layer can label the request
// counter. A Write without WriteHeader leaves code 0, which readers
// treat as the implicit 200.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
	code  int
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
	}
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying flusher so the event stream can
// push rounds through the middleware stack as they happen.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// harden wraps the raw mux with the middleware chain: tracing
// outermost (it assigns the request id and span every later layer —
// and every rejection those layers produce — is correlated under),
// then metrics (final status of every request), then body limits
// (cheapest rejection), then the request deadline, then panic recovery
// innermost so it sees the handler's own frame.
func (s *Server) harden(h http.Handler) http.Handler {
	return s.withTracing(s.withMetrics(s.withBodyLimit(s.withDeadline(s.withRecovery(h)))))
}

// withRecovery converts a handler panic into a 500 response and a
// log line. The process — and every other in-flight and future
// request — keeps serving; one poisoned request must not take down
// every live trading job. http.ErrAbortHandler passes through (it is
// the stdlib's own "abort this response" signal).
func (s *Server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The tracing layer already wrapped w; reuse its statusWriter
		// so the recovery 500 lands in the request counter too.
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w}
		}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.met().panics.Inc()
			span := tracing.SpanFromContext(r.Context())
			span.SetError(fmt.Errorf("panic: %v", rec))
			s.logger().LogAttrs(r.Context(), slog.LevelError, "panic recovered",
				slog.String("trace_id", span.TraceID().String()),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("panic", fmt.Sprint(rec)),
				slog.String("stack", string(debug.Stack())),
			)
			if !sw.wrote {
				httpError(sw, http.StatusInternalServerError, "internal error")
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// withDeadline bounds every request by RequestTimeout. Handlers that
// honor their context (the advance loop checks it at every round
// boundary) degrade gracefully: they return the partial progress made
// so far instead of being cut off mid-response. The live event stream
// is exempt — it is meant to outlive any single advance call and ends
// when the client disconnects.
func (s *Server) withDeadline(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.RequestTimeout > 0 && !strings.HasSuffix(r.URL.Path, "/events") {
			ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h.ServeHTTP(w, r)
	})
}

// withBodyLimit rejects oversized request bodies with a clear 413.
// Declared lengths are rejected before reading a byte; undeclared
// (chunked) bodies are capped by http.MaxBytesReader, which the JSON
// decode helpers translate into the same 413.
func (s *Server) withBodyLimit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := s.maxBodyBytes()
		if r.ContentLength > limit {
			s.met().bodyReject.Inc()
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body %d bytes exceeds limit %d", r.ContentLength, limit)
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		h.ServeHTTP(w, r)
	})
}

func (s *Server) maxBodyBytes() int64 {
	if s.MaxBodyBytes > 0 {
		return s.MaxBodyBytes
	}
	return 1 << 20 // 1 MiB default
}

// decodeJSON decodes a request body into v and writes the error
// response itself on failure: 413 when the body-limit reader tripped,
// 400 for malformed JSON. Returns false when the caller should stop.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.met().bodyReject.Inc()
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds limit %d bytes", tooBig.Limit)
		return false
	}
	httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
	return false
}

// retryAfter formats a Retry-After value from the shed backoff hint.
func retryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprint(secs)
}
