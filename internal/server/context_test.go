package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// createJob posts a small random-market job straight at the handler
// and returns its status.
func createJob(t *testing.T, h http.Handler) JobStatus {
	t.Helper()
	body, err := json.Marshal(JobRequest{RandomSellers: 10, K: 3, Rounds: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func advance(t *testing.T, h http.Handler, ctx context.Context, id string, rounds int) (int, AdvanceResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs/"+id+"/advance",
		strings.NewReader(`{"rounds":`+jsonInt(rounds)+`}`))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var adv AdvanceResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &adv); err != nil {
			t.Fatal(err)
		}
	}
	return rec.Code, adv
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestAdvanceCancelledContext checks the disconnect semantics: an
// advance whose request context is already cancelled reports zero
// rounds played and a "canceled" stop reason, and the job remains
// resumable by a later advance with a live context.
func TestAdvanceCancelledContext(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, adv := advance(t, h, ctx, st.ID, 10)
	if code != http.StatusOK {
		t.Fatalf("cancelled advance status %d", code)
	}
	if len(adv.Played) != 0 {
		t.Fatalf("cancelled advance played %d rounds", len(adv.Played))
	}
	if adv.Stopped != "canceled" {
		t.Fatalf("stopped = %q, want canceled", adv.Stopped)
	}
	if adv.Status.Done {
		t.Fatal("cancelled advance marked the job done")
	}
	if adv.Status.NextRound != 1 {
		t.Fatalf("next round %d after cancelled advance", adv.Status.NextRound)
	}

	// The cancellation left no mark: a live advance resumes normally.
	code, adv = advance(t, h, nil, st.ID, 10)
	if code != http.StatusOK {
		t.Fatalf("resumed advance status %d", code)
	}
	if len(adv.Played) != 10 || adv.Status.NextRound != 11 {
		t.Fatalf("resumed advance played %d, next %d", len(adv.Played), adv.Status.NextRound)
	}
	if adv.Stopped != "" {
		t.Fatalf("resumed advance stopped = %q", adv.Stopped)
	}
}

// TestAdvancePoolSaturated checks the load-shedding path: a full
// advance pool yields an immediate 429 with a Retry-After hint
// rather than queueing the request, and a freed slot admits the
// retry.
func TestAdvancePoolSaturated(t *testing.T) {
	s := New()
	s.MaxConcurrentAdvances = 1
	h := s.Handler()
	st := createJob(t, h)

	if err := s.pool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs/"+st.ID+"/advance", strings.NewReader(`{"rounds":5}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated advance status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without a Retry-After header")
	}

	// A freed slot admits the retried request.
	s.pool().Release()
	code, adv := advance(t, h, nil, st.ID, 5)
	if code != http.StatusOK || len(adv.Played) != 5 {
		t.Fatalf("retry after shed: status %d, played %d", code, len(adv.Played))
	}
}

// TestSanitizeJSON checks the central NaN/Inf scrub that every
// response passes through.
func TestSanitizeJSON(t *testing.T) {
	nan := math.NaN()
	type inner struct {
		F float64
		S []float64
	}
	type outer struct {
		In    *inner
		M     map[string]any
		Plain float64
		Inf   float64
		hid   float64 // unexported: must be skipped, not panic
	}
	v := outer{
		In:    &inner{F: nan, S: []float64{1, nan, 3}},
		M:     map[string]any{"x": nan, "y": []float64{nan}, "z": "str"},
		Plain: 2.5,
		Inf:   math.Inf(-1),
		hid:   nan,
	}
	got, ok := sanitizeJSON(v).(outer)
	if !ok {
		t.Fatalf("sanitizeJSON changed the type: %T", sanitizeJSON(v))
	}
	if got.In.F != 0 || got.In.S[1] != 0 || got.In.S[0] != 1 || got.In.S[2] != 3 {
		t.Fatalf("inner not scrubbed: %+v", got.In)
	}
	if got.M["x"] != 0.0 || got.M["y"].([]float64)[0] != 0 || got.M["z"] != "str" {
		t.Fatalf("map not scrubbed: %v", got.M)
	}
	if got.Plain != 2.5 || got.Inf != 0 {
		t.Fatalf("floats wrong: %+v", got)
	}
	if _, err := json.Marshal(sanitizeJSON(v)); err != nil {
		t.Fatalf("still unmarshalable: %v", err)
	}
	if sanitizeJSON(nil) != nil {
		t.Fatal("nil should stay nil")
	}
}
