package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cmabhs/internal/tracing"
)

// header issues a request straight at the handler and returns the
// recorder, for tests that inspect response headers.
func header(h http.Handler, method, path string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRequestIDEchoedOnEveryPath checks the X-Request-ID contract:
// a caller-supplied id comes back sanitized on success AND on every
// error-envelope path (404, 413, 429, 500), and a missing or junk id
// is replaced with a generated one.
func TestRequestIDEchoedOnEveryPath(t *testing.T) {
	s := New()
	s.MaxBodyBytes = 128
	s.MaxConcurrentAdvances = 1
	h := s.Handler()
	st := createJob(t, h)

	// Clean echo on a 200.
	rec := header(h, http.MethodGet, "/v1/healthz", map[string]string{"X-Request-ID": "client-req-1"})
	if got := rec.Header().Get("X-Request-ID"); got != "client-req-1" {
		t.Fatalf("200 echoed %q, want client-req-1", got)
	}

	// Missing id: a 16-hex-char one is generated.
	rec = header(h, http.MethodGet, "/v1/healthz", nil)
	if got := rec.Header().Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("generated id %q, want 16 hex chars", got)
	}

	// Hostile bytes are stripped, length is capped.
	rec = header(h, http.MethodGet, "/v1/healthz", map[string]string{"X-Request-ID": "a<b>\"c\n;d"})
	if got := rec.Header().Get("X-Request-ID"); got != "abcd" {
		t.Fatalf("sanitized to %q, want abcd", got)
	}
	long := strings.Repeat("x", 200)
	rec = header(h, http.MethodGet, "/v1/healthz", map[string]string{"X-Request-ID": long})
	if got := rec.Header().Get("X-Request-ID"); len(got) != maxRequestIDLen {
		t.Fatalf("long id kept %d chars, want %d", len(got), maxRequestIDLen)
	}
	// An id that sanitizes to nothing is replaced, not echoed empty.
	rec = header(h, http.MethodGet, "/v1/healthz", map[string]string{"X-Request-ID": "<<<>>>"})
	if got := rec.Header().Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("all-junk id became %q, want a generated one", got)
	}

	// 404.
	rec = header(h, http.MethodGet, "/v1/jobs/nope", map[string]string{"X-Request-ID": "id-404"})
	if rec.Code != http.StatusNotFound || rec.Header().Get("X-Request-ID") != "id-404" {
		t.Fatalf("404 path: code %d, id %q", rec.Code, rec.Header().Get("X-Request-ID"))
	}

	// 413: declared-oversized body.
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(strings.Repeat("x", 512)))
	req.Header.Set("X-Request-ID", "id-413")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge || rec.Header().Get("X-Request-ID") != "id-413" {
		t.Fatalf("413 path: code %d, id %q", rec.Code, rec.Header().Get("X-Request-ID"))
	}

	// 429: saturate the advance pool, then try to advance.
	if !s.pool().TryAcquire() {
		t.Fatal("could not saturate the pool")
	}
	rec = header(h, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", map[string]string{"X-Request-ID": "id-429"})
	s.pool().Release()
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("X-Request-ID") != "id-429" {
		t.Fatalf("429 path: code %d, id %q", rec.Code, rec.Header().Get("X-Request-ID"))
	}

	// 500: a recovered panic behind the same middleware chain.
	ph := s.harden(http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("boom") }))
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodGet, "/v1/poison", nil)
	req.Header.Set("X-Request-ID", "id-500")
	ph.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError || rec.Header().Get("X-Request-ID") != "id-500" {
		t.Fatalf("500 path: code %d, id %q", rec.Code, rec.Header().Get("X-Request-ID"))
	}
}

// TestTraceparentPropagation checks W3C trace-context handling at the
// broker edge: a valid inbound traceparent joins its trace (same
// trace id, new span id), a malformed one is ignored (fresh trace),
// and the access-log line carries the same trace id the response
// header does.
func TestTraceparentPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	s := New()
	lg, err := tracing.NewLogger(&logBuf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	s.Logger = lg
	s.Tracer = tracing.NewSeeded(1, 16)
	h := s.Handler()

	const inTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	rec := header(h, http.MethodGet, "/v1/healthz", map[string]string{
		"traceparent": "00-" + inTrace + "-00f067aa0ba902b7-01",
	})
	out := rec.Header().Get("Traceparent")
	gotTrace, gotSpan, ok := tracing.ParseTraceparent(out)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", out)
	}
	if gotTrace.String() != inTrace {
		t.Fatalf("trace id not joined: got %s, want %s", gotTrace, inTrace)
	}
	if gotSpan.String() == "00f067aa0ba902b7" {
		t.Fatal("server reused the caller's span id instead of minting its own")
	}

	// The slog access line carries the same trace id plus the route,
	// code, and duration fields the log schema promises.
	line := logBuf.String()
	for _, want := range []string{
		`"trace_id":"` + inTrace + `"`,
		`"route":"/v1/healthz"`,
		`"code":200`,
		`"duration"`,
		`"request_id"`,
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log line missing %s: %s", want, line)
		}
	}

	// Malformed traceparent: ignored, a fresh trace is minted.
	rec = header(h, http.MethodGet, "/v1/healthz", map[string]string{
		"traceparent": "00-" + strings.ToUpper(inTrace) + "-00f067aa0ba902b7-01",
	})
	freshTrace, _, ok := tracing.ParseTraceparent(rec.Header().Get("Traceparent"))
	if !ok || freshTrace.String() == inTrace || strings.EqualFold(freshTrace.String(), inTrace) {
		t.Fatalf("malformed traceparent not replaced: %s", rec.Header().Get("Traceparent"))
	}

	// The trace store captured request spans under both trace ids.
	if _, ok := s.Tracing().Store().Trace(inTrace); !ok {
		t.Fatal("joined trace not recorded in the store")
	}
}

// TestAdvanceTraceAcceptance is the PR's acceptance path end to end:
// an advance and a snapshot sent under one traceparent produce a
// single trace — readable through the /debug/traces handler — holding
// the request spans, the pool-acquisition span, per-round child spans
// with job id and round attributes, and a store-write span whose
// events record each retry attempt.
func TestAdvanceTraceAcceptance(t *testing.T) {
	store := &flakyStore{failures: 1}
	s := New()
	s.Store = store
	s.StoreRetry = instantRetry(3)
	s.Tracer = tracing.NewSeeded(42, 64)
	h := s.Handler()
	st := createJob(t, h)

	const tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs/"+st.ID+"/advance",
		strings.NewReader(`{"rounds":3}`))
	req.Header.Set("traceparent", tp)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("advance status %d: %s", rec.Code, rec.Body)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/jobs/"+st.ID+"/snapshot", nil)
	req.Header.Set("traceparent", tp)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", rec.Code, rec.Body)
	}

	// Read the trace back the way an operator would: through the
	// debug handler.
	dbg := tracing.Handler(s.Tracing().Store())
	rec = httptest.NewRecorder()
	dbg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/debug/traces/0af7651916cd43dd8448eb211c80319c", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug trace status %d: %s", rec.Code, rec.Body)
	}
	var detail tracing.TraceDetail
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}

	byName := map[string][]tracing.SpanData{}
	for _, sp := range detail.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	advSpans := byName["http POST /v1/jobs/{id}/advance"]
	if len(advSpans) != 1 {
		t.Fatalf("advance request spans: %d, want 1 (all spans: %+v)", len(advSpans), detail.Spans)
	}
	if advSpans[0].Attrs["code"] != float64(http.StatusOK) {
		t.Fatalf("advance span attrs %v", advSpans[0].Attrs)
	}
	if len(byName["http POST /v1/jobs/{id}/snapshot"]) != 1 {
		t.Fatal("snapshot request span missing from the joined trace")
	}

	pool := byName["pool.acquire"]
	if len(pool) != 1 || pool[0].ParentID != advSpans[0].SpanID {
		t.Fatalf("pool.acquire span missing or mis-parented: %+v", pool)
	}
	if pool[0].Attrs["acquired"] != true {
		t.Fatalf("pool.acquire attrs %v", pool[0].Attrs)
	}

	rounds := byName["round"]
	if len(rounds) != 3 {
		t.Fatalf("%d round spans, want 3", len(rounds))
	}
	seen := map[float64]bool{}
	for _, sp := range rounds {
		if sp.ParentID != advSpans[0].SpanID {
			t.Fatalf("round span not parented under the advance request: %+v", sp)
		}
		if sp.Attrs["job_id"] != st.ID {
			t.Fatalf("round span job_id %v, want %s", sp.Attrs["job_id"], st.ID)
		}
		seen[sp.Attrs["round"].(float64)] = true
	}
	for r := 1; r <= 3; r++ {
		if !seen[float64(r)] {
			t.Fatalf("round %d has no span (saw %v)", r, seen)
		}
	}

	saves := byName["store.save"]
	if len(saves) != 1 {
		t.Fatalf("%d store.save spans, want 1", len(saves))
	}
	// One failed attempt plus the success: two attempt events, the
	// first carrying the error text.
	if len(saves[0].Events) != 2 {
		t.Fatalf("store.save events %+v, want 2 attempts", saves[0].Events)
	}
	if saves[0].Events[0].Attrs["error"] == nil {
		t.Fatalf("first attempt event lost its error: %+v", saves[0].Events[0])
	}
	if saves[0].Events[1].Attrs["error"] != nil {
		t.Fatalf("successful attempt carries an error: %+v", saves[0].Events[1])
	}
}

// TestHealthzJobsAndDebugAddr checks the new healthz fields: the live
// job count and the advertised debug address, alongside the original
// fields.
func TestHealthzJobsAndDebugAddr(t *testing.T) {
	s := New()
	s.DebugAddr = "127.0.0.1:9999"
	h := s.Handler()

	var out Healthz
	rec := header(h, http.MethodGet, "/v1/healthz", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Jobs != 0 || out.DebugAddr != "127.0.0.1:9999" || out.Status != "ok" {
		t.Fatalf("healthz %+v", out)
	}

	createJob(t, h)
	rec = header(h, http.MethodGet, "/v1/healthz", nil)
	out = Healthz{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Jobs != 1 {
		t.Fatalf("jobs = %d after one create, want 1", out.Jobs)
	}
}
