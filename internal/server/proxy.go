package server

import (
	"errors"
	"io"
	"net/http"
	"os"
	"time"
)

// Request forwarding. A clustered broker serves any job it owns and
// transparently proxies requests for jobs a peer owns, so clients can
// talk to any node (or a dumb load balancer in front of all of them)
// without knowing the ownership map. The proxied request carries the
// current trace context (traceparent) and the request id, so the
// owner's spans and access lines stitch into the same trace the
// first-hop node started. Exactly one hop is allowed: a forwarded
// request that still cannot be served locally answers 503 +
// Retry-After — ownership is in transition (a steal or handoff is in
// flight) and the client should simply retry.

const (
	// forwardedByHeader marks a request as already proxied once; its
	// value is the forwarding node's id. It is the loop guard.
	forwardedByHeader = "X-CDT-Forwarded-By"
	// proxiedByHeader is stamped on relayed RESPONSES so operators
	// (and the failover smoke test) can see which node forwarded.
	proxiedByHeader = "X-CDT-Proxied-By"
)

// inTransitionRetry computes the Retry-After hint for a 503: the time
// until the current lease (if any) becomes stealable, clamped to
// [1s, TTL+grace].
func (s *Server) inTransitionRetry(l *Lease) time.Duration {
	hint := time.Second
	if l != nil {
		if d := l.Expiry().Add(leaseGrace).Sub(s.Cluster.now()); d > hint {
			hint = d
		}
	}
	if max := s.Cluster.ttl() + leaseGrace; hint > max {
		hint = max
	}
	return hint
}

// routeJob resolves where a job-scoped request must be served when the
// job is not in the local registry. It returns (job, false) after a
// successful local takeover — the caller serves as if the job had been
// local all along — or (nil, true) when the response (proxy relay,
// 503, 404, 500) has already been written.
func (s *Server) routeJob(w http.ResponseWriter, r *http.Request, id string) (*job, bool) {
	ls := s.leaseStore()
	l, err := ls.LoadLease(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return nil, true
	}
	if s.claimable(id, l) {
		// Unowned and ours by HRW, expired and ours by succession, or
		// recorded as ours already: take it over and serve locally.
		j, err := s.takeover(r.Context(), id)
		switch {
		case err == nil:
			return j, false
		case errors.Is(err, ErrLeaseHeld):
			// Raced another claimant between LoadLease and Acquire.
			s.met().proxyRejected.Inc()
			writeError(w, http.StatusServiceUnavailable, "ownership_transition", s.inTransitionRetry(l),
				"job %q ownership is in transition: %v", id, err)
		case errors.Is(err, os.ErrNotExist):
			httpError(w, http.StatusNotFound, "no job %q", id)
		default:
			httpError(w, http.StatusInternalServerError, "takeover %s: %v", id, err)
		}
		return nil, true
	}

	// Another node's job: find the peer to forward to — the recorded
	// owner while the lease is live, else the designated successor.
	expired := l != nil && l.Expired(s.Cluster.now(), leaseGrace)
	if l == nil {
		// No lease and not ours: the HRW home is another peer. But
		// first distinguish "not created yet" from "unadopted": a
		// missing snapshot is a plain 404, not a forward.
		if _, err := s.Store.Load(id); errors.Is(err, os.ErrNotExist) {
			httpError(w, http.StatusNotFound, "no job %q", id)
			return nil, true
		}
	}
	target := claimantOf(s.Cluster.Peers, id, l, expired)
	peer, ok := s.Cluster.peer(target.ID)
	if !ok || peer.ID == s.Cluster.NodeID || r.Header.Get(forwardedByHeader) != "" {
		// Unknown target, self-forward, or second hop: ownership is in
		// transition; tell the client when to come back.
		s.met().proxyRejected.Inc()
		writeError(w, http.StatusServiceUnavailable, "ownership_transition", s.inTransitionRetry(l),
			"job %q ownership is in transition (owner %s)", id, target.ID)
		return nil, true
	}
	s.proxyTo(w, r, peer, l)
	return nil, true
}

// proxyClient returns the outbound HTTP client.
func (s *Server) proxyClient() *http.Client {
	if s.Cluster.Client != nil {
		return s.Cluster.Client
	}
	return http.DefaultClient
}

// proxyTo relays the request to peer and streams the response back.
// The outbound request inherits the inbound context (and therefore its
// deadline; /events streams are exempt upstream), the current trace
// context, and the request id.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, peer Peer, l *Lease) {
	route := routeOf(r.URL.Path)
	s.met().proxied(route).Inc()

	out, err := http.NewRequestWithContext(r.Context(), r.Method, peer.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "proxy: %v", err)
		return
	}
	out.Header = r.Header.Clone()
	out.ContentLength = r.ContentLength
	// Forward the CURRENT trace context, not the inbound one: the
	// tracing middleware already minted this hop's span and wrote its
	// traceparent (same trace id, this node's span as parent) and the
	// sanitized-or-generated request id onto the response headers.
	if tp := w.Header().Get("Traceparent"); tp != "" {
		out.Header.Set("traceparent", tp)
	}
	if rid := w.Header().Get("X-Request-ID"); rid != "" {
		out.Header.Set("X-Request-ID", rid)
	}
	out.Header.Set(forwardedByHeader, s.Cluster.NodeID)

	resp, err := s.proxyClient().Do(out)
	if err != nil {
		// The owner is unreachable — crashed (failover pending lease
		// expiry) or partitioned. 503 + the time until its lease can be
		// stolen.
		s.met().proxyErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, "owner_unreachable", s.inTransitionRetry(l),
			"job owner %s unreachable: %v", peer.ID, err)
		return
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h.Del(k)
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set(proxiedByHeader, s.Cluster.NodeID)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

// flushCopy streams body to w, flushing after every chunk so proxied
// SSE/NDJSON event streams stay live end to end.
func flushCopy(w http.ResponseWriter, body io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
