package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// Lease-based job ownership. In a multi-node deployment every broker
// shares one Store; a job may be served by exactly one node at a time,
// and that node proves its claim with a lease record kept next to the
// job's snapshot. The protocol:
//
//   - Acquire: a node takes an absent lease (epoch 1), or STEALS an
//     expired one at epoch+1. An unexpired lease held by another node
//     cannot be taken — the holder is presumed alive until it misses
//     its renewals.
//   - Renew: the holder extends its expiry without changing the epoch.
//     Renewal fails the moment another node has stolen the lease, which
//     is how a zombie owner learns it lost the job.
//   - Fencing: every store write an owner performs carries its (owner,
//     epoch) claim; writes whose claim no longer matches the lease on
//     disk are rejected. The epoch is monotonic across steals, so a
//     resurrected owner can never un-happen a successor's progress.
//
// All lease mutations for one job serialize through an O_EXCL lock
// file (`<id>.lease.lock`), and the record itself is replaced with a
// temp-file + rename, so concurrent brokers racing Acquire/Renew/Steal
// observe each other's writes atomically — the same crash-safety idiom
// FileStore.Save uses for snapshots. FencedSave runs the snapshot
// rename INSIDE that lock, making snapshot fencing atomic with respect
// to a concurrent steal, not merely check-then-write.

// Lease is one job's ownership record.
type Lease struct {
	Job   string `json:"job"`
	Owner string `json:"owner"`
	// Epoch counts ownership generations: 1 at first acquisition,
	// incremented every time an expired lease is stolen. It is the
	// fencing token carried by every store write.
	Epoch int64 `json:"epoch"`
	// ExpiryUnixNano is the wall-clock instant the lease lapses unless
	// renewed first.
	ExpiryUnixNano int64 `json:"expiry_unix_nano"`
}

// Expiry returns the expiry instant.
func (l Lease) Expiry() time.Time { return time.Unix(0, l.ExpiryUnixNano) }

// Expired reports whether the lease has lapsed at now, with grace
// added to absorb clock skew between brokers: a lease is only treated
// as dead once it is grace past its stated expiry.
func (l Lease) Expired(now time.Time, grace time.Duration) bool {
	return now.After(l.Expiry().Add(grace))
}

// Errors of the lease protocol. ErrLeaseHeld means another node holds
// an unexpired lease (the caller should proxy or retry after the
// holder's expiry); ErrLeaseLost means the caller's claim is stale —
// its lease was stolen at a higher epoch — and it must stop serving
// and writing the job immediately.
var (
	ErrLeaseHeld = errors.New("server: lease held by another node")
	ErrLeaseLost = errors.New("server: lease lost (stolen at a higher epoch)")
)

// LeaseStore is the optional Store extension for multi-node job
// ownership, layered exactly like RoundWAL: FileStore (and therefore
// WALStore) implements it, single-node deployments never touch it.
type LeaseStore interface {
	Store

	// AcquireLease acquires or renews id's lease for owner with the
	// given ttl: granted fresh at epoch 1, extended in place when owner
	// already holds it, stolen at epoch+1 when the current lease is
	// expired (past its grace). An unexpired foreign lease returns
	// ErrLeaseHeld.
	AcquireLease(id, owner string, ttl time.Duration) (Lease, error)

	// RenewLease extends the expiry of a lease owner holds at exactly
	// the given epoch. Any mismatch — stolen, released, missing —
	// returns ErrLeaseLost.
	RenewLease(id, owner string, epoch int64, ttl time.Duration) (Lease, error)

	// ReleaseLease removes id's lease if owner holds it at epoch
	// (graceful shutdown / handoff). A mismatched or missing lease
	// returns ErrLeaseLost; the job itself is untouched either way.
	ReleaseLease(id, owner string, epoch int64) error

	// LoadLease returns id's current lease, or nil when none exists. A
	// corrupt record (a crashed writer's leftovers) is treated as
	// absent and counted in LeaseStats.Corrupt rather than bricking
	// the job.
	LoadLease(id string) (*Lease, error)

	// CheckLease is the fencing read: nil iff id's lease is held by
	// exactly (owner, epoch); ErrLeaseLost otherwise.
	CheckLease(id, owner string, epoch int64) error

	// FencedSave writes a snapshot only while (owner, epoch) still
	// holds id's lease, atomically with respect to concurrent lease
	// mutations — a zombie owner's snapshot can never clobber its
	// successor's.
	FencedSave(id string, data []byte, owner string, epoch int64) error

	// SweepLeases garbage-collects lease debris: expired leases whose
	// job snapshot no longer exists, and stale lock files left by
	// crashed writers. It returns the number of files removed.
	SweepLeases() (int, error)

	// LeaseStats reports the protocol counters for healthz/metrics.
	LeaseStats() LeaseStats
}

// LeaseStats is the point-in-time view of a LeaseStore's activity.
type LeaseStats struct {
	// Acquired counts fresh grants and renewals-via-acquire.
	Acquired uint64 `json:"acquired"`
	// Stolen counts expired leases taken over at a higher epoch.
	Stolen uint64 `json:"stolen"`
	// Fenced counts writes rejected because the writer's claim was
	// stale — each one is a zombie owner stopped from corrupting state.
	Fenced uint64 `json:"fenced"`
	// Corrupt counts unreadable lease records tolerated as absent.
	Corrupt uint64 `json:"corrupt"`
	// Swept counts lease/lock files garbage-collected by SweepLeases.
	Swept uint64 `json:"swept"`
}

// leaseGrace is the clock-skew allowance baked into expiry decisions:
// a lease only becomes stealable this long past its stated expiry, so
// two brokers whose clocks disagree by less than this never both
// believe they hold the same job.
const leaseGrace = 500 * time.Millisecond

// lockStaleAfter is how old (by file mtime, real wall clock) a
// `.lease.lock` file must be before another writer may break it — the
// recovery path for a broker that crashed between taking the lock and
// removing it.
const lockStaleAfter = 5 * time.Second

func (f *FileStore) leasePath(id string) string { return f.path(id) + leaseSuffix }
func (f *FileStore) lockPath(id string) string  { return f.path(id) + leaseLockSuffix }

const (
	leaseSuffix     = ".lease"
	leaseLockSuffix = ".lease.lock"
)

// now returns the store's clock — the Now field when set (tests inject
// a fake clock through it), wall time otherwise.
func (f *FileStore) now() time.Time {
	if f.Now != nil {
		return f.Now()
	}
	return time.Now()
}

// withLeaseLock runs fn while holding id's lease lock file. The lock
// is the cross-process serialization point for every lease mutation
// and fenced write; a stale lock (older than lockStaleAfter) left by a
// crashed writer is broken.
func (f *FileStore) withLeaseLock(id string, fn func() error) error {
	lock := f.lockPath(id)
	for attempt := 0; ; attempt++ {
		h, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			h.Close()
			break
		}
		if !errors.Is(err, os.ErrExist) {
			return fmt.Errorf("server: lease lock %s: %w", id, err)
		}
		if st, serr := os.Stat(lock); serr == nil && time.Since(st.ModTime()) > lockStaleAfter {
			// A crashed writer's leftover: break it and retry. The
			// remove may race another breaker; both retries converge on
			// one of them holding a fresh lock.
			os.Remove(lock)
			continue
		}
		if attempt >= 50 {
			return fmt.Errorf("server: lease lock %s: contended", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer os.Remove(lock)
	return fn()
}

// loadLeaseLocked reads id's lease record. Caller holds the lease
// lock (or accepts a point-in-time read). Corrupt records are treated
// as absent: they are a crashed writer's debris, and treating them as
// fatal would strand the job forever.
func (f *FileStore) loadLeaseLocked(id string) (*Lease, error) {
	data, err := os.ReadFile(f.leasePath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: lease load %s: %w", id, err)
	}
	var l Lease
	if jerr := json.Unmarshal(data, &l); jerr != nil || l.Owner == "" {
		f.leaseCorrupt.Add(1)
		return nil, nil
	}
	return &l, nil
}

// writeLeaseLocked atomically replaces id's lease record. Caller
// holds the lease lock.
func (f *FileStore) writeLeaseLocked(id string, l Lease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("server: lease save %s: %w", id, err)
	}
	tmp, err := os.CreateTemp(f.dir, "."+id+"-lease-*.tmp")
	if err != nil {
		return fmt.Errorf("server: lease save %s: %w", id, err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: lease save %s: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), f.leasePath(id)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: lease save %s: %w", id, err)
	}
	if err := syncDir(f.dir); err != nil {
		return fmt.Errorf("server: lease save %s: %w", id, err)
	}
	return nil
}

// AcquireLease implements LeaseStore.
func (f *FileStore) AcquireLease(id, owner string, ttl time.Duration) (Lease, error) {
	if err := checkID(id); err != nil {
		return Lease{}, err
	}
	var out Lease
	err := f.withLeaseLock(id, func() error {
		cur, err := f.loadLeaseLocked(id)
		if err != nil {
			return err
		}
		now := f.now()
		next := Lease{Job: id, Owner: owner, Epoch: 1, ExpiryUnixNano: now.Add(ttl).UnixNano()}
		switch {
		case cur == nil:
			// fresh grant at epoch 1
		case cur.Owner == owner:
			next.Epoch = cur.Epoch // renewal-via-acquire keeps the epoch
		case cur.Expired(now, leaseGrace):
			next.Epoch = cur.Epoch + 1 // steal
			f.leaseStolen.Add(1)
		default:
			return fmt.Errorf("%w: %s holds %s until %s",
				ErrLeaseHeld, cur.Owner, id, cur.Expiry().Format(time.RFC3339Nano))
		}
		if err := f.writeLeaseLocked(id, next); err != nil {
			return err
		}
		out = next
		return nil
	})
	if err == nil {
		f.leaseAcquired.Add(1)
	}
	return out, err
}

// RenewLease implements LeaseStore. Unlike AcquireLease it demands an
// exact (owner, epoch) match: a zombie that lost its lease must learn
// so, not silently re-acquire at a new epoch.
func (f *FileStore) RenewLease(id, owner string, epoch int64, ttl time.Duration) (Lease, error) {
	if err := checkID(id); err != nil {
		return Lease{}, err
	}
	var out Lease
	err := f.withLeaseLock(id, func() error {
		cur, err := f.loadLeaseLocked(id)
		if err != nil {
			return err
		}
		if cur == nil || cur.Owner != owner || cur.Epoch != epoch {
			return leaseLostErr(id, owner, epoch, cur)
		}
		next := *cur
		next.ExpiryUnixNano = f.now().Add(ttl).UnixNano()
		if err := f.writeLeaseLocked(id, next); err != nil {
			return err
		}
		out = next
		return nil
	})
	return out, err
}

// ReleaseLease implements LeaseStore.
func (f *FileStore) ReleaseLease(id, owner string, epoch int64) error {
	if err := checkID(id); err != nil {
		return err
	}
	return f.withLeaseLock(id, func() error {
		cur, err := f.loadLeaseLocked(id)
		if err != nil {
			return err
		}
		if cur == nil || cur.Owner != owner || cur.Epoch != epoch {
			return leaseLostErr(id, owner, epoch, cur)
		}
		if err := os.Remove(f.leasePath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: lease release %s: %w", id, err)
		}
		return syncDir(f.dir)
	})
}

// LoadLease implements LeaseStore. It reads without the lock — a
// point-in-time view is all routing decisions need.
func (f *FileStore) LoadLease(id string) (*Lease, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	return f.loadLeaseLocked(id)
}

// CheckLease implements LeaseStore.
func (f *FileStore) CheckLease(id, owner string, epoch int64) error {
	cur, err := f.LoadLease(id)
	if err != nil {
		return err
	}
	if cur == nil || cur.Owner != owner || cur.Epoch != epoch {
		f.leaseFenced.Add(1)
		return leaseLostErr(id, owner, epoch, cur)
	}
	return nil
}

// FencedSave implements LeaseStore: the fencing check and the snapshot
// rename happen under the same lease lock a steal must take, so the
// outcome is always one of {old snapshot + old lease, old snapshot +
// new lease, new snapshot + old lease} — never a stale owner's bytes
// landing after a successor's.
func (f *FileStore) FencedSave(id string, data []byte, owner string, epoch int64) error {
	if err := checkID(id); err != nil {
		return err
	}
	return f.withLeaseLock(id, func() error {
		cur, err := f.loadLeaseLocked(id)
		if err != nil {
			return err
		}
		if cur == nil || cur.Owner != owner || cur.Epoch != epoch {
			f.leaseFenced.Add(1)
			return leaseLostErr(id, owner, epoch, cur)
		}
		return f.Save(id, data)
	})
}

// leaseLostErr builds the ErrLeaseLost detail line.
func leaseLostErr(id, owner string, epoch int64, cur *Lease) error {
	if cur == nil {
		return fmt.Errorf("%w: %s claims %s@%d but no lease exists", ErrLeaseLost, owner, id, epoch)
	}
	return fmt.Errorf("%w: %s claims %s@%d but %s holds epoch %d",
		ErrLeaseLost, owner, id, epoch, cur.Owner, cur.Epoch)
}

// SweepLeases implements LeaseStore.
func (f *FileStore) SweepLeases() (int, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return 0, fmt.Errorf("server: lease sweep: %w", err)
	}
	removed := 0
	now := f.now()
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".json"+leaseLockSuffix):
			// A writer's lock: break it only when stale (mtime is real
			// wall time — a crashed process stops touching its lock).
			if st, err := e.Info(); err == nil && time.Since(st.ModTime()) > lockStaleAfter {
				if os.Remove(f.dir+string(os.PathSeparator)+name) == nil {
					removed++
				}
			}
		case strings.HasSuffix(name, ".json"+leaseSuffix):
			id := strings.TrimSuffix(name, ".json"+leaseSuffix)
			if checkID(id) != nil {
				continue
			}
			l, err := f.loadLeaseLocked(id)
			if err != nil || l == nil {
				continue
			}
			if !l.Expired(now, leaseGrace) {
				continue
			}
			if _, err := os.Stat(f.path(id)); !errors.Is(err, os.ErrNotExist) {
				continue // job still exists; its lease is takeover state, not garbage
			}
			// Expired lease of a deleted job: pure debris.
			err = f.withLeaseLock(id, func() error {
				if cur, _ := f.loadLeaseLocked(id); cur == nil || !cur.Expired(f.now(), leaseGrace) {
					return nil
				}
				return os.Remove(f.leasePath(id))
			})
			if err == nil {
				removed++
			}
		}
	}
	if removed > 0 {
		f.leaseSwept.Add(uint64(removed))
		if err := syncDir(f.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// LeaseStats implements LeaseStore.
func (f *FileStore) LeaseStats() LeaseStats {
	return LeaseStats{
		Acquired: f.leaseAcquired.Load(),
		Stolen:   f.leaseStolen.Load(),
		Fenced:   f.leaseFenced.Load(),
		Corrupt:  f.leaseCorrupt.Load(),
		Swept:    f.leaseSwept.Load(),
	}
}

var _ LeaseStore = (*FileStore)(nil)

// leaseCounters live on FileStore (see store.go) but are declared here
// with the rest of the protocol for locality.
type leaseCounters struct {
	leaseAcquired atomic.Uint64
	leaseStolen   atomic.Uint64
	leaseFenced   atomic.Uint64
	leaseCorrupt  atomic.Uint64
	leaseSwept    atomic.Uint64
}
