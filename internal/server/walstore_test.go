package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmabhs/internal/core"
)

func newWALStore(t *testing.T) *WALStore {
	t.Helper()
	ws, err := NewWALStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	return ws
}

func walRecs(base, n int) []core.RoundRecord {
	recs := make([]core.RoundRecord, n)
	for i := range recs {
		recs[i] = core.RoundRecord{Round: base + i, Selected: []int{0}, PJ: float64(base + i), Realized: 1}
	}
	return recs
}

func TestWALStoreAppendLoadCycle(t *testing.T) {
	ws := newWALStore(t)
	if err := ws.ResetWAL("job-1", 1); err != nil {
		t.Fatal(err)
	}
	if n, err := ws.AppendWAL("job-1", walRecs(1, 3)); err != nil || n != 3 {
		t.Fatalf("append: n=%d err=%v", n, err)
	}
	if n, err := ws.AppendWAL("job-1", walRecs(4, 2)); err != nil || n != 5 {
		t.Fatalf("second append: n=%d err=%v", n, err)
	}
	seg, err := ws.LoadWAL("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if seg == nil || seg.Base != 1 || seg.Torn || len(seg.Rounds) != 5 {
		t.Fatalf("segment: %+v", seg)
	}
	for i, r := range seg.Rounds {
		if r.Round != i+1 {
			t.Fatalf("round %d holds index %d", i, r.Round)
		}
	}

	// Reset folds the tail away; the new segment starts at the new base.
	if err := ws.ResetWAL("job-1", 6); err != nil {
		t.Fatal(err)
	}
	seg, err = ws.LoadWAL("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Base != 6 || len(seg.Rounds) != 0 {
		t.Fatalf("after reset: %+v", seg)
	}

	st := ws.WALStats()
	if st.OpenSegments != 1 || st.AppendedRounds != 5 || st.Resets != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWALStoreAppendWithoutResetFails(t *testing.T) {
	ws := newWALStore(t)
	if _, err := ws.AppendWAL("job-1", walRecs(1, 1)); err == nil {
		t.Fatal("append without an open segment succeeded")
	}
}

func TestWALStoreMissingSegmentLoadsNil(t *testing.T) {
	ws := newWALStore(t)
	seg, err := ws.LoadWAL("job-9")
	if err != nil || seg != nil {
		t.Fatalf("missing segment: seg=%v err=%v", seg, err)
	}
}

func TestWALStoreTornTailCounted(t *testing.T) {
	ws := newWALStore(t)
	if err := ws.ResetWAL("job-1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.AppendWAL("job-1", walRecs(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Tear the final record the way a kill -9 mid-write would.
	path := filepath.Join(ws.Dir(), "job-1.wal")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	seg, err := ws.LoadWAL("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Torn || len(seg.Rounds) != 1 {
		t.Fatalf("torn load: torn=%v rounds=%d", seg.Torn, len(seg.Rounds))
	}
	if st := ws.WALStats(); st.TornTails != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWALStoreDeleteRemovesSegment(t *testing.T) {
	ws := newWALStore(t)
	if err := ws.Save("job-1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := ws.ResetWAL("job-1", 1); err != nil {
		t.Fatal(err)
	}
	if err := ws.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(ws.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover file %q after delete", e.Name())
	}
	if st := ws.WALStats(); st.OpenSegments != 0 {
		t.Fatalf("open segment after delete: %+v", st)
	}
}

// The whole tentpole in one arc: a broker on a WAL store is killed
// without any graceful shutdown (no SaveAll), restarted, and must
// resume at the exact round the last advance reached — not at the
// last explicit snapshot.
func TestWALBrokerCrashRecoveryRoundGranular(t *testing.T) {
	dir := t.TempDir()
	ws, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	srv := New()
	srv.Store = ws
	srv.CompactEvery = 25 // force compactions mid-run
	ts := httptest.NewServer(srv.Handler())

	var st JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{
		RandomSellers: 12, K: 3, Rounds: 500, Seed: 42,
	}, &st); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	var adv AdvanceResponse
	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance",
		AdvanceRequest{Rounds: 137}, &adv); code != http.StatusOK {
		t.Fatalf("advance status %d", code)
	}
	if adv.Status.NextRound != 138 {
		t.Fatalf("advanced to %d, want 138", adv.Status.NextRound)
	}

	// Kill -9: drop the server with no SaveAll, reopen the directory.
	ts.Close()
	ws.Close()
	ws2, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	srv2 := New()
	srv2.Store = ws2
	if err := srv2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var got JobStatus
	if code := do(t, ts2, http.MethodGet, "/v1/jobs/"+st.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("get after recovery: %d", code)
	}
	if got.NextRound != 138 {
		t.Fatalf("recovered at round %d, want 138 (round-granular)", got.NextRound)
	}

	// New ids must be minted past the recovered one.
	var st2 JobStatus
	if code := do(t, ts2, http.MethodPost, "/v1/jobs", JobRequest{
		RandomSellers: 5, K: 2, Rounds: 10, Seed: 1,
	}, &st2); code != http.StatusCreated {
		t.Fatalf("create after recovery: %d", code)
	}
	if st2.ID == st.ID {
		t.Fatalf("recovered id %q re-minted", st.ID)
	}

	// And the recovered job still runs to completion.
	if code := do(t, ts2, http.MethodPost, "/v1/jobs/"+st.ID+"/advance",
		AdvanceRequest{Rounds: 1000}, &adv); code != http.StatusOK {
		t.Fatalf("advance after recovery: %d", code)
	}
	if !adv.Status.Done || adv.Status.NextRound != 501 {
		t.Fatalf("post-recovery run: %+v", adv.Status)
	}
}

// Healthz on a WAL broker reports the store kind, shard count, and
// segment stats, with the pre-existing fields untouched.
func TestHealthzWALFields(t *testing.T) {
	ws := newWALStore(t)
	srv := New()
	srv.Store = ws
	srv.Shards = 8
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{RandomSellers: 5, K: 2, Rounds: 10, Seed: 1}, nil)
	do(t, ts, http.MethodPost, "/v1/jobs/job-1/advance", AdvanceRequest{Rounds: 4}, nil)

	var h Healthz
	if code := do(t, ts, http.MethodGet, "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if h.Status != "ok" || h.StateStore != "ok" || h.Jobs != 1 {
		t.Fatalf("pre-existing fields drifted: %+v", h)
	}
	if h.StoreKind != "wal" || h.Shards != 8 {
		t.Fatalf("store_kind=%q shards=%d", h.StoreKind, h.Shards)
	}
	if h.WAL == nil || h.WAL.OpenSegments != 1 || h.WAL.AppendedRounds != 4 {
		t.Fatalf("wal stats: %+v", h.WAL)
	}
}

func TestStoreKinds(t *testing.T) {
	if k := (&Server{}).storeKind(); k != "disabled" {
		t.Errorf("nil store: %q", k)
	}
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if k := (&Server{Store: fs}).storeKind(); k != "file" {
		t.Errorf("file store: %q", k)
	}
	if k := (&Server{Store: newWALStore(t)}).storeKind(); k != "wal" {
		t.Errorf("wal store: %q", k)
	}
}

// A WAL broker whose segment was torn by the crash must discard the
// partial record and still recover bit-identically: the torn round is
// simply replayed live after resume.
func TestWALBrokerRecoversFromTornTail(t *testing.T) {
	dir := t.TempDir()
	ws, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New()
	srv.Store = ws
	ts := httptest.NewServer(srv.Handler())

	var st JobStatus
	do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{RandomSellers: 10, K: 3, Rounds: 100, Seed: 5}, &st)
	var adv AdvanceResponse
	do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 40}, &adv)
	ts.Close()
	ws.Close()

	// Tear the last line mid-record.
	path := filepath.Join(dir, st.ID+".wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 41 { // header + 40 rounds
		t.Fatalf("segment has %d lines, want 41", lines)
	}
	if err := os.Truncate(path, int64(len(data)-9)); err != nil {
		t.Fatal(err)
	}

	ws2, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	srv2 := New()
	srv2.Store = ws2
	if err := srv2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var got JobStatus
	do(t, ts2, http.MethodGet, "/v1/jobs/"+st.ID, nil, &got)
	if got.NextRound != 40 { // round 40's record was torn: recovered through 39
		t.Fatalf("recovered at round %d, want 40", got.NextRound)
	}
	if st := ws2.WALStats(); st.TornTails != 1 {
		t.Fatalf("torn tail not counted: %+v", st)
	}
}
