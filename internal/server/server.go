// Package server implements the CDT broker as an HTTP/JSON service:
// consumers publish data collection jobs, advance them round by
// round, and read back strategies, profits, and learning state. It
// is the "platform as a service" face of the library — everything it
// does goes through the public cmabhs API, so the service guarantees
// exactly what the library guarantees.
//
// Endpoints (all JSON):
//
//	GET    /v1/healthz            liveness probe (version, uptime, state store)
//	POST   /v1/jobs               create a job from a JobRequest (or resume one from a snapshot)
//	GET    /v1/jobs               list job summaries
//	GET    /v1/jobs/{id}          one job's status + cumulative result
//	POST   /v1/jobs/{id}/advance  play up to {"rounds": n} rounds
//	POST   /v1/jobs/{id}/snapshot durably snapshot the job, return the snapshot
//	GET    /v1/jobs/{id}/estimates current quality estimates
//	GET    /v1/jobs/{id}/events   live round-event stream (SSE; NDJSON with ?format=ndjson)
//	GET    /v1/jobs/{id}/series   downsampled regret/revenue learning curve (see series.go)
//	DELETE /v1/jobs/{id}          drop the job (and its stored snapshot)
//	POST   /v1/game/solve         stateless single-round game solve
//	GET    /v1/cluster/overview   merged per-node health/lease/latency view (see overview.go)
//
// Advance calls honor the request context: if the client disconnects
// mid-advance, the job stops at the next round boundary, keeps the
// progress it made, and stays resumable. Concurrent advances across
// all jobs share a bounded worker pool (MaxConcurrentAdvances); when
// it saturates, further advances are shed with 429 + Retry-After
// rather than queued. Handler panics are isolated to a 500 (the
// process keeps serving), request bodies are bounded (413 past
// MaxBodyBytes), and RequestTimeout deadlines every request.
//
// With a Store configured, the broker is durable: SaveAll snapshots
// every live job (cdt-server calls it on graceful shutdown), LoadAll
// resumes them on start, and each job continues from its persisted
// round exactly as if the process had never restarted.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"reflect"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cmabhs"
	"cmabhs/internal/core"
	"cmabhs/internal/engine"
	"cmabhs/internal/metrics"
	"cmabhs/internal/telemetry"
	"cmabhs/internal/tracing"
)

// JobRequest is the wire form of a market configuration.
type JobRequest struct {
	Sellers []SellerSpec `json:"sellers"`
	// RandomSellers, if positive and Sellers is empty, draws that
	// many sellers from the paper's parameter ranges using Seed.
	RandomSellers int `json:"random_sellers,omitempty"`

	K      int `json:"k"`
	PoIs   int `json:"pois,omitempty"`
	Rounds int `json:"rounds"`

	Theta  float64 `json:"theta,omitempty"`
	Lambda float64 `json:"lambda,omitempty"`
	Omega  float64 `json:"omega,omitempty"`

	PJMax float64 `json:"pj_max,omitempty"`
	PMax  float64 `json:"p_max,omitempty"`

	ObservationSD float64 `json:"observation_sd,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Policy        string  `json:"policy,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Solver        string  `json:"solver,omitempty"`
	Budget        float64 `json:"budget,omitempty"`
	CollectData   bool    `json:"collect_data,omitempty"`

	// Faults enables the fault-injection layer for this job.
	Faults *FaultRequest `json:"faults,omitempty"`

	// Snapshot, if set, creates the job by resuming a Session.Save
	// snapshot (e.g. one returned by POST /v1/jobs/{id}/snapshot)
	// instead of starting fresh; all other fields are ignored.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// SellerSpec is one seller on the wire.
type SellerSpec struct {
	CostQuadratic   float64 `json:"a"`
	CostLinear      float64 `json:"b"`
	ExpectedQuality float64 `json:"q"`
}

// config converts the wire request to a library configuration.
func (r *JobRequest) config() (cmabhs.Config, error) {
	var cfg cmabhs.Config
	switch {
	case len(r.Sellers) > 0:
		cfg = cmabhs.Config{}
		for _, s := range r.Sellers {
			cfg.Sellers = append(cfg.Sellers, cmabhs.Seller{
				CostQuadratic:   s.CostQuadratic,
				CostLinear:      s.CostLinear,
				ExpectedQuality: s.ExpectedQuality,
			})
		}
	case r.RandomSellers > 0:
		cfg = cmabhs.RandomConfig(r.RandomSellers, 0, 0, r.Seed)
	default:
		return cfg, errors.New("need sellers or random_sellers")
	}
	cfg.K = r.K
	cfg.PoIs = r.PoIs
	cfg.Rounds = r.Rounds
	cfg.Theta = r.Theta
	cfg.Lambda = r.Lambda
	cfg.Omega = r.Omega
	cfg.PJMax = r.PJMax
	cfg.PMax = r.PMax
	cfg.ObservationSD = r.ObservationSD
	cfg.Seed = r.Seed
	cfg.Policy = cmabhs.Policy(r.Policy)
	cfg.Epsilon = r.Epsilon
	cfg.Solver = cmabhs.Solver(r.Solver)
	cfg.Budget = r.Budget
	cfg.CollectData = r.CollectData
	if r.Faults != nil {
		cfg.Faults = &cmabhs.FaultConfig{
			Seed: r.Faults.Seed,
			Channel: cmabhs.ChannelFaults{
				GoodToBad: r.Faults.Channel.GoodToBad,
				BadToGood: r.Faults.Channel.BadToGood,
				LossGood:  r.Faults.Channel.LossGood,
				LossBad:   r.Faults.Channel.LossBad,
			},
			Churn: cmabhs.ChurnFaults{
				Rate:     r.Faults.Churn.Rate,
				MinRound: r.Faults.Churn.MinRound,
			},
			Straggler: cmabhs.StragglerFaults{
				Prob:      r.Faults.Straggler.Prob,
				MeanDelay: r.Faults.Straggler.MeanDelay,
				Deadline:  r.Faults.Straggler.Deadline,
			},
			Byzantine: cmabhs.ByzantineFaults{
				Fraction:  r.Faults.Byzantine.Fraction,
				Sellers:   append([]int(nil), r.Faults.Byzantine.Sellers...),
				Mode:      r.Faults.Byzantine.Mode,
				Inflation: r.Faults.Byzantine.Inflation,
			},
		}
	}
	return cfg, nil
}

// FaultRequest is the wire form of cmabhs.FaultConfig. Every model
// defaults to off; see the cmabhs package for semantics.
type FaultRequest struct {
	Seed    int64 `json:"seed,omitempty"`
	Channel struct {
		GoodToBad float64 `json:"good_to_bad,omitempty"`
		BadToGood float64 `json:"bad_to_good,omitempty"`
		LossGood  float64 `json:"loss_good,omitempty"`
		LossBad   float64 `json:"loss_bad,omitempty"`
	} `json:"channel,omitempty"`
	Churn struct {
		Rate     float64 `json:"rate,omitempty"`
		MinRound int     `json:"min_round,omitempty"`
	} `json:"churn,omitempty"`
	Straggler struct {
		Prob      float64 `json:"prob,omitempty"`
		MeanDelay float64 `json:"mean_delay,omitempty"`
		Deadline  float64 `json:"deadline,omitempty"`
	} `json:"straggler,omitempty"`
	Byzantine struct {
		Fraction  float64 `json:"fraction,omitempty"`
		Sellers   []int   `json:"sellers,omitempty"`
		Mode      string  `json:"mode,omitempty"`
		Inflation float64 `json:"inflation,omitempty"`
	} `json:"byzantine,omitempty"`
}

// JobStatus is the wire form of a job's state. Every endpoint that
// reports a job — create, get, list, and the advance envelope — emits
// this one shape.
type JobStatus struct {
	ID        string         `json:"id"`
	Sellers   int            `json:"sellers"`
	K         int            `json:"k"`
	Rounds    int            `json:"rounds"`
	NextRound int            `json:"next_round"`
	Done      bool           `json:"done"`
	Stopped   string         `json:"stopped,omitempty"`
	Result    *cmabhs.Result `json:"result"`
	Metrics   JobMetrics     `json:"metrics"`
	Links     JobLinks       `json:"links"`
	// Lease reports which node owns the job and for how long; present
	// only on clustered brokers, so the single-node wire format is
	// unchanged.
	Lease *JobLeaseStatus `json:"lease,omitempty"`
}

// JobMetrics is the per-job throughput view embedded in JobStatus.
// Rates cover advance-call wall time only — a job nobody advances has
// zero elapsed time, not a decaying rate.
type JobMetrics struct {
	// RoundsAdvanced counts rounds played through the advance
	// endpoint (excludes rounds replayed from a resumed snapshot).
	RoundsAdvanced int64 `json:"rounds_advanced"`
	// RoundsPerSec is RoundsAdvanced divided by cumulative advance
	// wall time; 0 until the first advance completes.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// LastAdvanceSeconds is the wall time of the most recent advance
	// call.
	LastAdvanceSeconds float64 `json:"last_advance_seconds"`
}

// JobLinks are the navigable relations of a job resource.
type JobLinks struct {
	Self     string `json:"self"`
	Snapshot string `json:"snapshot"`
	Metrics  string `json:"metrics"`
	// Owner is the owning node's direct URL for this job (clustered
	// brokers only): following it skips the proxy hop.
	Owner string `json:"owner,omitempty"`
}

// AdvanceRequest asks to play up to Rounds more rounds.
type AdvanceRequest struct {
	Rounds int `json:"rounds"`
}

// AdvanceResponse returns the rounds just played plus the updated
// status. Stopped is set when the advance ended early — "budget" when
// the trade budget ran out, "canceled" when the request context was
// cancelled mid-advance (the rounds already played are kept and the
// job stays resumable).
type AdvanceResponse struct {
	Played  []cmabhs.Round `json:"played"`
	Stopped string         `json:"stopped,omitempty"`
	Status  JobStatus      `json:"status"`
}

// job is one live trading session.
type job struct {
	mu      sync.Mutex
	id      string
	m       int
	k       int
	horizon int
	sess    *cmabhs.Session

	// lease is this node's ownership claim on a clustered broker (nil
	// single-node). Guarded by mu; the renewal loop refreshes it in
	// place and fencing reads it before every store write.
	lease *Lease

	// walLog, when the broker runs on a RoundWAL store, makes the
	// observer encode each played round straight into walBuf as WAL
	// entry lines (no per-round record copies — the borrowed event is
	// read in place); the advance handler flushes the buffer to the
	// store after AdvanceContext returns. All three fields are guarded
	// by mu (the observer runs on the advance goroutine, which holds
	// it). walErrs counts rounds whose encoding failed; they are
	// reported at flush time like append failures.
	walLog   bool
	walBuf   []byte
	walCount int
	walErrs  int

	// hub fans the job's round events out to /events subscribers. It
	// has its own lock — subscribe/unsubscribe never waits on mu, so
	// watching a job mid-advance is instant.
	hub *eventHub

	// series is the job's fixed-memory learning-curve recorder
	// (GET /v1/jobs/{id}/series). Like the hub it has its own leaf
	// lock: the observer appends under mu, series queries never take
	// mu at all.
	series *telemetry.Recorder

	// traceHook, when set, receives each round event for span
	// recording. Guarded by mu: the advance handler sets it before
	// AdvanceContext and clears it after, under the same lock the
	// advance itself holds.
	traceHook func(*cmabhs.RoundEvent)

	// Advance telemetry, guarded by mu like the session itself.
	roundsAdvanced int64
	advanceTotal   time.Duration
	lastAdvance    time.Duration
}

// recordAdvance folds one completed advance call into the job's
// telemetry. Caller holds mu.
func (j *job) recordAdvance(rounds int, took time.Duration) {
	j.roundsAdvanced += int64(rounds)
	j.advanceTotal += took
	j.lastAdvance = took
}

func (j *job) status() JobStatus {
	res := j.sess.Result()
	jm := JobMetrics{
		RoundsAdvanced:     j.roundsAdvanced,
		LastAdvanceSeconds: j.lastAdvance.Seconds(),
	}
	if j.advanceTotal > 0 {
		jm.RoundsPerSec = float64(j.roundsAdvanced) / j.advanceTotal.Seconds()
	}
	return JobStatus{
		ID:        j.id,
		Sellers:   j.m,
		K:         j.k,
		Rounds:    j.horizon,
		NextRound: j.sess.NextRound(),
		Done:      j.sess.Done(),
		Stopped:   j.sess.Stopped(),
		Result:    res,
		Metrics:   jm,
		Links: JobLinks{
			Self:     "/v1/jobs/" + j.id,
			Snapshot: "/v1/jobs/" + j.id + "/snapshot",
			Metrics:  "/metrics",
		},
	}
}

// statusLocked renders j's wire status plus the cluster decorations —
// the lease block and the owner link. Caller holds j.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := j.status()
	if s.clustered() && j.lease != nil {
		st.Lease = &JobLeaseStatus{
			Owner:            j.lease.Owner,
			Epoch:            j.lease.Epoch,
			ExpiresInSeconds: j.lease.Expiry().Sub(s.Cluster.now()).Seconds(),
		}
		if p, ok := s.Cluster.peer(j.lease.Owner); ok {
			st.Links.Owner = p.URL + "/v1/jobs/" + j.id
		}
	}
	return st
}

// Server is the broker service. Create with New and mount Handler.
type Server struct {
	// reg is the sharded job table; see registry.go. Built lazily so
	// Shards can be set any time before the first request.
	regOnce sync.Once
	reg     *registry

	// Shards is the job-registry stripe count, rounded up to a power
	// of two (default 16). More shards mean less lock contention under
	// concurrent create/status/delete churn; per-shard occupancy is
	// exported as cdt_registry_shard_jobs. Set before serving.
	Shards int

	// CompactEvery, on a RoundWAL store, folds a job's WAL tail into a
	// fresh snapshot once the segment holds at least this many rounds
	// (default 4096). Smaller values bound replay work on restart;
	// larger values amortize snapshot writes further.
	CompactEvery int

	// MaxJobs bounds concurrently live jobs (default 64).
	MaxJobs int
	// MaxAdvance bounds rounds per advance call (default 100000).
	MaxAdvance int
	// SeriesCapacity bounds the per-job learning-curve ring served at
	// GET /v1/jobs/{id}/series (rounded up to a power of two; default
	// telemetry.DefaultCapacity). Longer runs are not truncated —
	// the recorder downsamples deterministically instead.
	SeriesCapacity int
	// MaxConcurrentAdvances bounds advance calls executing at once
	// across all jobs (default 16). When the pool is saturated
	// further advance calls are SHED — 429 plus a Retry-After header
	// — instead of queueing unboundedly.
	MaxConcurrentAdvances int
	// ShedRetryAfter is the Retry-After hint returned with a 429
	// (default 1s).
	ShedRetryAfter time.Duration
	// MaxBodyBytes bounds every request body; oversized bodies get a
	// 413 (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout, when positive, deadlines every request context.
	// Advance calls honor it at round boundaries and return their
	// partial progress. 0 disables the deadline.
	RequestTimeout time.Duration
	// StoreRetry tunes the retry/backoff applied to Store writes (the
	// snapshot endpoint and SaveAll). The zero value retries 3 times
	// with jittered exponential backoff from 50ms.
	StoreRetry engine.RetryPolicy

	// Store, if non-nil, makes the broker durable: the snapshot
	// endpoint persists through it, SaveAll/LoadAll write and reload
	// every live job, and DELETE removes the stored snapshot. Set it
	// before serving requests.
	Store Store

	// Cluster, if non-nil, runs this broker as one node of a
	// multi-node deployment sharing the Store (see cluster.go): every
	// job it serves is backed by a lease it renews, requests for jobs
	// a peer owns are transparently proxied to that peer, and a
	// crashed peer's jobs fail over to their hash-designated
	// successors. Requires a LeaseStore-capable Store; set it (and
	// validate with ValidateCluster) before serving or loading.
	Cluster *Cluster

	// Registry, if non-nil, is the metrics registry the broker
	// instruments itself into (set it before serving to share one
	// registry across components); nil builds a private one. Either
	// way the registry is served at GET /metrics and reachable via
	// Metrics().
	Registry *metrics.Registry

	// Tracer, if non-nil, records request/round spans into its trace
	// store (set it before serving to share the store with the debug
	// listener); nil builds a private default-capacity one on first
	// request. Reachable via Tracing().
	Tracer *tracing.Tracer

	// LegacyErrors restores the deprecated top-level "message" mirror
	// on error envelopes for pre-envelope clients (wire revision 1).
	// Default off: the envelope is {"error": {...}} alone. The mirror
	// is written by the package-wide error choke point, so the setting
	// is applied process-wide when Handler is built.
	LegacyErrors bool

	// Logger, if non-nil, receives the per-request access lines and
	// recovery diagnostics; nil falls back to slog.Default().
	Logger *slog.Logger

	// DebugAddr, if set, is reported in the healthz payload so
	// operators can find the debug listener (/debug/pprof,
	// /debug/traces) from the main port.
	DebugAddr string

	started time.Time

	poolOnce sync.Once
	advPool  *engine.Pool

	metricsOnce sync.Once
	metrics     *serverMetrics

	traceOnce sync.Once

	// takeoverMu serializes cluster takeovers so concurrent requests
	// for the same orphaned job race once, not once each.
	takeoverMu sync.Mutex
	// leasesHeld counts leases this node currently holds (exported as
	// cdt_leases_held and healthz jobs_owned).
	leasesHeld atomic.Int64
}

// New returns an empty broker.
func New() *Server {
	return &Server{
		MaxJobs:    64,
		MaxAdvance: 100_000,
		started:    time.Now(),
	}
}

// registry lazily builds the sharded job table so Shards can be set
// any time before the first request (same contract as pool).
func (s *Server) registry() *registry {
	s.regOnce.Do(func() {
		s.reg = newRegistry(s.Shards)
		s.reg.prefix = s.jobIDPrefix()
	})
	return s.reg
}

// wal returns the Store's round-WAL extension, or nil when the store
// is snapshot-only (or absent).
func (s *Server) wal() RoundWAL {
	if w, ok := s.Store.(RoundWAL); ok {
		return w
	}
	return nil
}

// compactEvery returns the effective WAL compaction threshold.
func (s *Server) compactEvery() int {
	if s.CompactEvery > 0 {
		return s.CompactEvery
	}
	return 4096
}

// newJob builds a job around a session and attaches the broker's
// round observer. The observer is strictly passive (the simulation's
// trajectory and snapshots are bit-identical with or without it) and
// nearly free when nothing listens: per round it checks a nil func
// and an atomic subscriber count, nothing more.
func (s *Server) newJob(id string, sess *cmabhs.Session) *job {
	cfg := sess.Config()
	j := &job{
		id:      id,
		m:       len(cfg.Sellers),
		k:       cfg.K,
		horizon: cfg.Rounds,
		sess:    sess,
		hub:     newEventHub(s.met().eventsDropped),
		series:  telemetry.NewRecorder(s.SeriesCapacity),
	}
	sess.Observe(j.observe)
	return j
}

// pool lazily builds the shared advance pool so MaxConcurrentAdvances
// can be set any time before the first advance request.
func (s *Server) pool() *engine.Pool {
	s.poolOnce.Do(func() {
		n := s.MaxConcurrentAdvances
		if n <= 0 {
			n = 16
		}
		s.advPool = engine.NewPool(n)
	})
	return s.advPool
}

// Handler returns the HTTP handler for the broker API, hardened with
// request metrics, panic recovery, per-request deadlines, and
// request-body limits (see middleware.go and metrics.go).
func (s *Server) Handler() http.Handler {
	legacyErrorMirror.Store(s.LegacyErrors)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/game/solve", s.handleSolveGame)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/cluster/overview", s.handleClusterOverview)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.harden(mux)
}

// saveToStore writes one snapshot through the configured retry
// policy: transient store failures (a slow disk, a flaky network
// filesystem) back off and retry instead of failing the request.
// Every attempt is counted into the store-retry metrics and recorded
// as a span event, so a trace of a snapshot request shows exactly how
// many write attempts the store needed and what each one returned.
//
// lease, when non-nil, is the ownership claim the write runs under:
// the save goes through the store's FencedSave, and a fencing
// rejection (the lease was stolen) is permanent — retrying cannot
// bring the job back, so the loop stops immediately.
func (s *Server) saveToStore(ctx context.Context, id string, data []byte, lease *Lease) error {
	m := s.met()
	ctx, span := s.Tracing().StartSpan(ctx, "store.save")
	span.SetAttr("job_id", id)
	span.SetAttr("bytes", len(data))
	defer span.End()
	pol := s.StoreRetry
	inner := pol.OnAttempt
	pol.OnAttempt = func(attempt int, err error) {
		m.retryAttempts.Inc()
		evAttrs := map[string]any{"attempt": attempt}
		if err != nil {
			m.retryFailures.Inc()
			evAttrs["error"] = err.Error()
		}
		span.AddEvent("attempt", evAttrs)
		if inner != nil {
			inner(attempt, err)
		}
	}
	err := engine.Retry(ctx, pol, func(ctx context.Context) error {
		if lease != nil {
			if ls := s.leaseStore(); ls != nil {
				err := ls.FencedSave(id, data, lease.Owner, lease.Epoch)
				if errors.Is(err, ErrLeaseLost) {
					return engine.Permanent(err)
				}
				return err
			}
		}
		return s.Store.Save(id, data)
	})
	if err != nil {
		span.SetError(err)
	}
	return err
}

// walRecord views a borrowed public round as a journal record WITHOUT
// copying its slices. The view is valid only while the observer call
// that borrowed the round is running — exactly the window in which the
// WAL encoder reads it.
func walRecord(r *cmabhs.Round) core.RoundRecord {
	return core.RoundRecord{
		Round:         r.Round,
		Selected:      r.Selected,
		PJ:            r.ConsumerPrice,
		P:             r.PlatformPrice,
		Taus:          r.SensingTimes,
		TotalTau:      r.TotalTime,
		PoC:           r.ConsumerProfit,
		PoP:           r.PlatformProfit,
		SellerProfits: r.SellerProfits,
		NoTrade:       r.NoTrade,
		Realized:      r.Realized,
		AggRMSE:       r.AggregationRMSE,
	}
}

// bootstrapWAL makes a brand-new job durable on a RoundWAL store: its
// base snapshot is persisted and an empty WAL segment starting at the
// next round is opened. The job is not yet published, so no lock is
// needed; on error the job is simply not created.
func (s *Server) bootstrapWAL(ctx context.Context, j *job, wal RoundWAL) error {
	data, err := j.sess.Save()
	if err != nil {
		return err
	}
	if err := s.saveToStore(ctx, j.id, data, j.lease); err != nil {
		return err
	}
	if err := s.resetSegment(wal, j.id, j.sess.NextRound(), j.lease); err != nil {
		return err
	}
	j.walLog = true
	return nil
}

// resetSegment resets id's WAL segment; on a lease-owned job it uses
// the fenced variant when the store offers one (WALStore does), so a
// zombie's reset cannot truncate a successor's segment, and the fresh
// header carries the owner's epoch.
func (s *Server) resetSegment(wal RoundWAL, id string, base int, lease *Lease) error {
	if lease != nil {
		if fw, ok := wal.(interface {
			ResetWALFenced(id string, base int, owner string, epoch int64) error
		}); ok {
			return fw.ResetWALFenced(id, base, lease.Owner, lease.Epoch)
		}
	}
	return wal.ResetWAL(id, base)
}

// flushWAL appends the rounds buffered by the observer during one
// advance call to the job's WAL segment, then compacts — snapshot plus
// segment reset — once the segment holds CompactEvery rounds. Caller
// holds j.mu. WAL failures never fail the advance (the rounds are
// played and the job stays correct in memory); they are logged and
// counted in cdt_wal_append_errors_total, and recovery degrades to the
// last durable snapshot + intact WAL prefix.
//
// On a lease-owned job the flush is epoch-fenced: the lease is checked
// before the append, and a lost lease (stolen by a successor) makes
// flushWAL report leaseLost=true WITHOUT writing — the buffered rounds
// belong to a generation that no longer owns the job. The caller must
// then evict the job (evictLostJob) after releasing j.mu.
func (s *Server) flushWAL(ctx context.Context, j *job) (leaseLost bool) {
	wal := s.wal()
	if wal == nil {
		return false
	}
	buf, n, encErrs := j.walBuf, j.walCount, j.walErrs
	j.walBuf, j.walCount, j.walErrs = j.walBuf[:0], 0, 0
	if encErrs > 0 {
		s.met().walAppendErrors.Add(uint64(encErrs))
		s.logger().Error("wal encode", "job_id", j.id, "rounds", encErrs)
	}
	if err := s.fence(j); err != nil {
		s.logger().Warn("wal flush fenced", "job_id", j.id, "error", err)
		return true
	}
	if n == 0 {
		return false
	}
	size, err := wal.AppendWALEncoded(j.id, buf, n)
	if err != nil {
		s.met().walAppendErrors.Inc()
		s.logger().Error("wal append", "job_id", j.id, "rounds", n, "error", err)
		return false
	}
	s.met().walAppended.Add(uint64(n))
	if size < s.compactEvery() {
		return false
	}
	data, err := j.sess.Save()
	if err == nil {
		err = s.saveToStore(ctx, j.id, data, j.lease)
	}
	if err == nil {
		err = s.resetSegment(wal, j.id, j.sess.NextRound(), j.lease)
	}
	if errors.Is(err, ErrLeaseLost) {
		s.logger().Warn("wal compact fenced", "job_id", j.id, "error", err)
		return true
	}
	if err != nil {
		// The segment keeps growing and the next flush retries the
		// compaction — durability is never lost, only unfolded.
		s.met().walAppendErrors.Inc()
		s.logger().Error("wal compact", "job_id", j.id, "error", err)
		return false
	}
	s.met().walCompactions.Inc()
	return false
}

// WireVersion is the documented revision of the broker's JSON wire
// surface, reported in healthz. Revision 2 dropped the deprecated
// top-level "message" mirror from the error envelope (restorable via
// Server.LegacyErrors / cdt-server -legacy-errors) and added
// ?limit=/?after= paging to GET /v1/jobs.
const WireVersion = 2

// Healthz is the wire form of the liveness probe.
type Healthz struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	WireVersion   int     `json:"wire_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// StateStore reports snapshot durability: "disabled" without a
	// configured Store, "ok" when the store lists cleanly, otherwise
	// the error text.
	StateStore string `json:"state_store"`
	// Jobs is the live job count.
	Jobs int `json:"jobs"`
	// DebugAddr, when the debug listener is up, is its bind address
	// (pprof, trace store).
	DebugAddr string `json:"debug_addr,omitempty"`
	// StoreKind names the durability backend: "disabled", "file"
	// (whole snapshots only), "wal" (snapshots + round WAL), or
	// "custom" for a caller-supplied Store.
	StoreKind string `json:"store_kind"`
	// Shards is the job-registry stripe count.
	Shards int `json:"shards"`
	// WAL carries the segment/compaction counters on a "wal" store.
	WAL *WALStats `json:"wal,omitempty"`
	// Cluster carries the node identity, topology, and lease counters
	// on a multi-node broker.
	Cluster *ClusterHealthz `json:"cluster,omitempty"`
}

// storeKind classifies the configured Store for healthz.
func (s *Server) storeKind() string {
	switch s.Store.(type) {
	case nil:
		return "disabled"
	case *WALStore:
		return "wal"
	case *FileStore:
		return "file"
	default:
		if s.wal() != nil {
			return "wal"
		}
		return "custom"
	}
}

// buildVersion returns the module build version baked in by the Go
// toolchain ("(devel)" for plain source builds).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Healthz{
		Status:        "ok",
		Version:       buildVersion(),
		GoVersion:     runtime.Version(),
		WireVersion:   WireVersion,
		UptimeSeconds: time.Since(s.started).Seconds(),
		StateStore:    "disabled",
		Jobs:          s.registry().len(),
		DebugAddr:     s.DebugAddr,
		StoreKind:     s.storeKind(),
		Shards:        s.registry().shardCount(),
	}
	if s.Store != nil {
		if _, err := s.Store.List(); err != nil {
			h.StateStore = err.Error()
		} else {
			h.StateStore = "ok"
		}
	}
	if wal := s.wal(); wal != nil {
		st := wal.WALStats()
		h.WAL = &st
	}
	if s.clustered() {
		ch := &ClusterHealthz{
			NodeID:    s.Cluster.NodeID,
			JobsOwned: int(s.leasesHeld.Load()),
			LeaseTTLS: s.Cluster.ttl().Seconds(),
		}
		for _, p := range s.Cluster.Peers {
			ch.Peers = append(ch.Peers, p.ID)
		}
		if ls := s.leaseStore(); ls != nil {
			st := ls.LeaseStats()
			ch.Leases = &st
		}
		h.Cluster = ch
	}
	writeJSON(w, http.StatusOK, h)
}

// StatsResponse is the wire form of the service counters — the JSON
// view of the same instruments GET /metrics exposes to Prometheus.
type StatsResponse struct {
	JobsLive        int64 `json:"jobs_live"`
	JobsCreated     int64 `json:"jobs_created"`
	RoundsAdvanced  int64 `json:"rounds_advanced"`
	GamesSolved     int64 `json:"games_solved"`
	AdvanceInflight int64 `json:"advance_inflight"`
}

// handleStats reports service counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	m := s.met()
	writeJSON(w, http.StatusOK, StatsResponse{
		JobsLive:        int64(s.registry().len()),
		JobsCreated:     int64(m.jobsCreated.Value()),
		RoundsAdvanced:  int64(m.roundsAdvanced.Value()),
		GamesSolved:     int64(m.gamesSolved.Value()),
		AdvanceInflight: int64(s.pool().InUse()),
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req JobRequest
		if !s.decodeJSON(w, r, &req) {
			return
		}
		var sess *cmabhs.Session
		if len(req.Snapshot) > 0 {
			// Resume a saved session; its configuration travels inside
			// the snapshot.
			var err error
			sess, err = cmabhs.ResumeSession(req.Snapshot)
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		} else {
			cfg, err := req.config()
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			if req.K <= 0 || req.Rounds <= 0 {
				httpError(w, http.StatusBadRequest, "k and rounds must be positive")
				return
			}
			sess, err = cmabhs.NewSession(cfg)
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		reg := s.registry()
		j := s.newJob(reg.allocID(), sess)
		if s.clustered() {
			// A job is born owned: its lease is taken before anything
			// is persisted or published, so a peer scanning the shared
			// store never adopts a half-created job.
			lease, err := s.leaseStore().AcquireLease(j.id, s.Cluster.NodeID, s.Cluster.ttl())
			if err != nil {
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			j.lease = &lease
		}
		if wal := s.wal(); wal != nil {
			// Round-granular durability starts at birth: persist the
			// base snapshot and open the job's WAL segment before the
			// job is reachable, so a kill -9 one round after creation
			// already recovers the job.
			if err := s.bootstrapWAL(r.Context(), j, wal); err != nil {
				if j.lease != nil {
					_ = s.leaseStore().ReleaseLease(j.id, j.lease.Owner, j.lease.Epoch)
				}
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
		}
		if !reg.putIfBelow(j, s.MaxJobs) {
			if s.Store != nil {
				// Roll back the bootstrap snapshot + segment (and, in
				// cluster mode, the lease record alongside them).
				_ = s.Store.Delete(j.id)
			}
			httpError(w, http.StatusTooManyRequests, "job limit (%d) reached", s.MaxJobs)
			return
		}
		if j.lease != nil {
			s.leasesHeld.Add(1)
		}
		s.met().jobsCreated.Inc()
		// The job is published: take its lock before reading state, a
		// concurrent advance may already be running.
		j.mu.Lock()
		st := s.statusLocked(j)
		j.mu.Unlock()
		writeJSON(w, http.StatusCreated, st)

	case http.MethodGet:
		s.handleListJobs(w, r)

	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleListJobs serves GET /v1/jobs with optional ?limit= / ?after=
// paging. The response is a JSON array sorted by id (lexicographic —
// the same order `after` compares in); a page is the ids strictly
// past `after`, capped at `limit`. Paging matters under load: only
// the ids are collected registry-wide (cheap, per-shard locks only),
// and just the jobs inside the requested window take their job lock
// for a status render — an unpaged listing of a big registry
// serializes against every in-flight advance, a paged one does not.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid limit %q", v)
			return
		}
		limit = n
	}
	after := q.Get("after")

	ids := s.registry().ids()
	sort.Strings(ids)
	if after != "" {
		ids = ids[sort.SearchStrings(ids, after):]
		if len(ids) > 0 && ids[0] == after {
			ids = ids[1:]
		}
	}
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		// A job may vanish between the id scan and here (concurrent
		// delete); the page simply skips it.
		j, ok := s.registry().get(id)
		if !ok {
			continue
		}
		j.mu.Lock()
		out = append(out, s.statusLocked(j))
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	j, ok := s.registry().get(id)
	if !ok && s.clustered() {
		// Not served here — but in a cluster "here" is one node of
		// many: take the job over if this node may claim it, or proxy
		// the request to the node that owns it (see proxy.go).
		var handled bool
		j, handled = s.routeJob(w, r, id)
		if handled {
			return
		}
		ok = j != nil
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	action := ""
	if len(parts) > 1 {
		action = parts[1]
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		j.mu.Lock()
		st := s.statusLocked(j)
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, st)

	case action == "" && r.Method == http.MethodDelete:
		if removed := s.registry().remove(id); removed != nil && removed.leaseFor() != nil {
			s.leasesHeld.Add(-1)
		}
		if s.Store != nil {
			// Store.Delete also removes the job's lease record, so a
			// deleted job leaves no ownership to dispute.
			if err := s.Store.Delete(id); err != nil {
				httpError(w, http.StatusInternalServerError, "job dropped but snapshot not deleted: %v", err)
				return
			}
		}
		writeJSON(w, http.StatusOK, DeleteResponse{Deleted: id})

	case action == "advance" && r.Method == http.MethodPost:
		var req AdvanceRequest
		if r.ContentLength != 0 {
			if !s.decodeJSON(w, r, &req) {
				return
			}
		}
		if req.Rounds <= 0 {
			req.Rounds = 1
		}
		if req.Rounds > s.MaxAdvance {
			req.Rounds = s.MaxAdvance
		}
		// Load shedding: a saturated advance pool rejects immediately
		// with a retry hint rather than queueing the request — bounded
		// latency for the requests that are admitted, explicit
		// backpressure for the ones that are not. The acquisition
		// attempt gets its own span so a trace shows whether a request
		// was admitted or shed, and against how much contention.
		_, poolSpan := s.Tracing().StartSpan(r.Context(), "pool.acquire")
		acquired := s.pool().TryAcquire()
		poolSpan.SetAttr("acquired", acquired)
		poolSpan.SetAttr("in_flight", s.pool().InUse())
		poolSpan.End()
		if !acquired {
			hint := s.ShedRetryAfter
			if hint <= 0 {
				hint = time.Second
			}
			s.met().recordShed()
			writeError(w, http.StatusTooManyRequests, "saturated", hint,
				"advance capacity saturated (%d in flight); retry after %s", s.pool().InUse(), retryAfter(hint)+"s")
			return
		}
		defer s.pool().Release()
		start := time.Now()
		j.mu.Lock()
		j.traceHook = s.roundSpanHook(r.Context(), id)
		adv, err := j.sess.AdvanceContext(r.Context(), req.Rounds)
		j.traceHook = nil
		j.recordAdvance(len(adv.Played), time.Since(start))
		var leaseLost bool
		if j.walLog {
			// Flush the rounds the observer buffered to the WAL and
			// fold the tail into a snapshot once it is long enough.
			// Still under j.mu: the segment must see rounds in play
			// order, and a compaction snapshot must not interleave
			// with another advance.
			leaseLost = s.flushWAL(r.Context(), j)
		}
		st := s.statusLocked(j)
		j.mu.Unlock()
		if leaseLost {
			// The lease was stolen mid-advance: the successor owns the
			// job now. Evict it here and tell the client to re-resolve
			// (a retry will be proxied to the new owner).
			s.evictLostJob(j, ErrLeaseLost)
			writeError(w, http.StatusServiceUnavailable, "lease_lost", s.inTransitionRetry(nil),
				"job %q moved to another node mid-advance; retry", id)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.met().roundsAdvanced.Add(uint64(len(adv.Played)))
		writeJSON(w, http.StatusOK, AdvanceResponse{Played: adv.Played, Stopped: adv.Stopped, Status: st})

	case action == "snapshot" && r.Method == http.MethodPost:
		j.mu.Lock()
		data, err := j.sess.Save()
		l := j.lease
		j.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		persisted := false
		if s.Store != nil {
			if err := s.saveToStore(r.Context(), id, data, l); err != nil {
				if errors.Is(err, ErrLeaseLost) {
					s.evictLostJob(j, err)
					writeError(w, http.StatusServiceUnavailable, "lease_lost", s.inTransitionRetry(nil),
						"job %q moved to another node: %v", id, err)
					return
				}
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			persisted = true
		}
		writeJSON(w, http.StatusOK, SnapshotResponse{
			ID:        id,
			Persisted: persisted,
			Snapshot:  json.RawMessage(data),
		})

	case action == "events" && r.Method == http.MethodGet:
		s.handleJobEvents(w, r, j)

	case action == "series" && r.Method == http.MethodGet:
		s.handleJobSeries(w, r, j)

	case action == "estimates" && r.Method == http.MethodGet:
		j.mu.Lock()
		est := j.sess.Estimates()
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, EstimatesResponse{ID: id, Estimates: est})

	default:
		httpError(w, http.StatusMethodNotAllowed, "unsupported %s on %q", r.Method, r.URL.Path)
	}
}

// SnapshotResponse returns a job's durable snapshot. The Snapshot
// payload round-trips through POST /v1/jobs {"snapshot": ...} to
// recreate the job — on this broker or another one.
type SnapshotResponse struct {
	ID        string          `json:"id"`
	Persisted bool            `json:"persisted"` // written to the state store
	Snapshot  json.RawMessage `json:"snapshot"`
}

// SaveAll snapshots every live job into the configured Store. It is
// what cdt-server runs on graceful shutdown; jobs keep serving while
// it runs (each is locked only while its own snapshot is taken). The
// first error is returned but the remaining jobs are still saved.
func (s *Server) SaveAll() error {
	if s.Store == nil {
		return errors.New("server: no state store configured")
	}
	snap := s.registry().snapshot()
	var firstErr error
	for _, j := range snap {
		j.mu.Lock()
		data, err := j.sess.Save()
		l := j.lease
		j.mu.Unlock()
		if err == nil {
			// Shutdown snapshots retry too: losing a job's state to
			// one transient write failure is the worst outcome a
			// durable broker can produce.
			err = s.saveToStore(context.Background(), j.id, data, l)
		}
		if errors.Is(err, ErrLeaseLost) {
			// The job moved while shutting down: its durability is the
			// successor's problem now, not a save failure.
			s.evictLostJob(j, err)
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: save %s: %w", j.id, err)
		}
	}
	return firstErr
}

// LoadAll resumes every job found in the configured Store. Call it
// before serving requests. Loaded jobs keep their original ids, and
// new job ids are allocated past the highest loaded one so a restart
// never reuses an id. A snapshot that fails to resume aborts the
// load with an error — a durable broker must not silently drop jobs.
//
// On a RoundWAL store, recovery is round-granular: after the snapshot
// is resumed, the WAL tail — every logged round past the snapshot,
// with a torn final line discarded — is replayed through the session.
// Replay is deterministic re-execution (the mechanism's streams are
// seeded), so each replayed round must reproduce its logged record
// bit-for-bit; any divergence aborts the load. The caught-up state is
// then folded into a fresh snapshot and the segment is reset, so
// restart loops never re-replay the same tail.
// On a clustered broker, LoadAll adopts only the jobs this node may
// claim — its HRW homes among the unowned, anything whose lease it
// already holds, and expired leases it is the designated successor for
// — acquiring each lease before the load. Jobs a live peer owns are
// left alone.
func (s *Server) LoadAll() error {
	if s.Store == nil {
		return errors.New("server: no state store configured")
	}
	ids, err := s.Store.List()
	if err != nil {
		return err
	}
	if s.clustered() {
		return s.loadAllClustered(ids)
	}
	reg := s.registry()
	for _, id := range ids {
		j, err := s.loadStoredJob(context.Background(), id, nil)
		if err != nil {
			return err
		}
		reg.put(j)
		s.observeLoadedID(id)
	}
	return nil
}

// loadAllClustered is boot-time adoption in a cluster: a per-job claim
// lost to a racing peer is skipped, not fatal — the peer winning the
// race is the system working.
func (s *Server) loadAllClustered(ids []string) error {
	ls := s.leaseStore()
	for _, id := range ids {
		l, err := ls.LoadLease(id)
		if err != nil {
			return err
		}
		if !s.claimable(id, l) {
			continue
		}
		lease, err := ls.AcquireLease(id, s.Cluster.NodeID, s.Cluster.ttl())
		if errors.Is(err, ErrLeaseHeld) {
			continue
		}
		if err != nil {
			return err
		}
		if _, err := s.adoptJob(context.Background(), id, lease); err != nil {
			return err
		}
	}
	return nil
}

// loadStoredJob resumes one stored job: snapshot load, WAL-tail replay
// with bit-for-bit verification, and (on a WAL store) folding the
// caught-up state into a fresh base snapshot. The job is returned
// unpublished. lease, when non-nil, is the ownership claim the load
// runs under: saves are fenced with it, the reset segment header
// carries its epoch, and a WAL segment stamped with a LATER epoch
// aborts the load — it belongs to a successor generation this claim
// cannot fold.
func (s *Server) loadStoredJob(ctx context.Context, id string, lease *Lease) (*job, error) {
	data, err := s.Store.Load(id)
	if err != nil {
		return nil, err
	}
	sess, err := cmabhs.ResumeSession(data)
	if err != nil {
		return nil, fmt.Errorf("server: resume %s: %w", id, err)
	}
	wal := s.wal()
	if wal != nil {
		replayed, err := s.replayWAL(wal, id, sess, lease)
		if err != nil {
			return nil, err
		}
		if replayed > 0 {
			s.met().walReplayed.Add(uint64(replayed))
			s.logger().Info("wal replay", "job_id", id, "rounds", replayed,
				"next_round", sess.NextRound())
		}
		// Fold the replayed tail into a fresh base snapshot and
		// restart the segment from the caught-up round.
		data, err := sess.Save()
		if err == nil {
			err = s.saveToStore(ctx, id, data, lease)
		}
		if err == nil {
			err = s.resetSegment(wal, id, sess.NextRound(), lease)
		}
		if err != nil {
			return nil, fmt.Errorf("server: recover %s: %w", id, err)
		}
	}
	j := s.newJob(id, sess)
	j.walLog = wal != nil
	return j, nil
}

// replayWAL advances a just-resumed session through its WAL tail and
// verifies every replayed round reproduces the logged record exactly.
// It returns the number of rounds replayed.
func (s *Server) replayWAL(wal RoundWAL, id string, sess *cmabhs.Session, lease *Lease) (int, error) {
	seg, err := wal.LoadWAL(id)
	if err != nil {
		return 0, fmt.Errorf("server: recover %s: %w", id, err)
	}
	if seg == nil {
		return 0, nil
	}
	if lease != nil && seg.Epoch > lease.Epoch {
		return 0, fmt.Errorf("server: recover %s: wal segment from epoch %d but lease is epoch %d",
			id, seg.Epoch, lease.Epoch)
	}
	// The segment may predate the snapshot (a crash between a
	// compaction's snapshot save and its segment reset): entries below
	// the snapshot's next round are already folded in and are skipped.
	next := sess.NextRound()
	tail := seg.Rounds[:0:0]
	for i := range seg.Rounds {
		if r := seg.Rounds[i].Round; r >= next {
			if want := next + len(tail); r != want {
				return 0, fmt.Errorf("server: recover %s: wal gap: round %d follows %d", id, r, want-1)
			}
			tail = append(tail, seg.Rounds[i])
		}
	}
	if len(tail) == 0 {
		return 0, nil
	}
	adv, err := sess.AdvanceContext(context.Background(), len(tail))
	if err != nil {
		return 0, fmt.Errorf("server: recover %s: replay: %w", id, err)
	}
	if len(adv.Played) != len(tail) {
		return 0, fmt.Errorf("server: recover %s: replayed %d of %d logged rounds (stopped: %q)",
			id, len(adv.Played), len(tail), adv.Stopped)
	}
	for i := range tail {
		if err := sameRound(&adv.Played[i], &tail[i]); err != nil {
			return 0, fmt.Errorf("server: recover %s: replay diverged at round %d: %w",
				id, tail[i].Round, err)
		}
	}
	return len(tail), nil
}

// sameRound checks that a replayed round reproduces its WAL record
// bit-for-bit on every journaled money field. Replay re-executes the
// seeded mechanism, so equality here is exact float equality, not a
// tolerance.
func sameRound(got *cmabhs.Round, want *core.RoundRecord) error {
	if got.Round != want.Round {
		return fmt.Errorf("round index %d vs %d", got.Round, want.Round)
	}
	checks := []struct {
		name string
		x, y float64
	}{
		{"consumer price", got.ConsumerPrice, want.PJ},
		{"platform price", got.PlatformPrice, want.P},
		{"consumer profit", got.ConsumerProfit, want.PoC},
		{"platform profit", got.PlatformProfit, want.PoP},
		{"realized revenue", got.Realized, want.Realized},
	}
	for _, c := range checks {
		if c.x != c.y {
			return fmt.Errorf("%s %g vs logged %g", c.name, c.x, c.y)
		}
	}
	if got.NoTrade != want.NoTrade {
		return fmt.Errorf("no-trade %v vs logged %v", got.NoTrade, want.NoTrade)
	}
	if len(got.Selected) != len(want.Selected) {
		return fmt.Errorf("selection size %d vs logged %d", len(got.Selected), len(want.Selected))
	}
	for i := range got.Selected {
		if got.Selected[i] != want.Selected[i] {
			return fmt.Errorf("selection[%d] %d vs logged %d", i, got.Selected[i], want.Selected[i])
		}
	}
	return nil
}

// SolveGameRequest is the wire form of a one-round game.
type SolveGameRequest struct {
	Sellers []SellerSpec `json:"sellers"` // q is the ESTIMATED quality here
	Theta   float64      `json:"theta,omitempty"`
	Lambda  float64      `json:"lambda,omitempty"`
	Omega   float64      `json:"omega,omitempty"`
	PJMax   float64      `json:"pj_max,omitempty"`
	PMax    float64      `json:"p_max,omitempty"`
	Solver  string       `json:"solver,omitempty"`
}

func (s *Server) handleSolveGame(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SolveGameRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	gc := cmabhs.GameConfig{
		Theta: req.Theta, Lambda: req.Lambda, Omega: req.Omega,
		PJMax: req.PJMax, PMax: req.PMax,
		Solver: cmabhs.Solver(req.Solver),
	}
	for _, sp := range req.Sellers {
		gc.Sellers = append(gc.Sellers, cmabhs.GameSeller{
			CostQuadratic: sp.CostQuadratic,
			CostLinear:    sp.CostLinear,
			Quality:       sp.ExpectedQuality,
		})
	}
	out, err := cmabhs.SolveGame(gc)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met().gamesSolved.Inc()
	writeJSON(w, http.StatusOK, SolveGameResponse{GameOutcome: out})
}

// SolveGameResponse is the wire form of a stateless solve. It embeds
// the library outcome, so the JSON stays the flat GameOutcome shape
// clients already decode.
type SolveGameResponse struct {
	*cmabhs.GameOutcome
}

// EstimatesResponse reports a job's current quality estimates, one
// per seller in seller order.
type EstimatesResponse struct {
	ID        string    `json:"id,omitempty"`
	Estimates []float64 `json:"estimates"`
}

// DeleteResponse acknowledges a job deletion.
type DeleteResponse struct {
	Deleted string `json:"deleted"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	v = sanitizeJSON(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// sanitizeJSON replaces every NaN or ±Inf float reachable from v with
// 0, since encoding/json rejects them mid-stream (after the status
// line is already out). NaN legitimately shows up in results — e.g.
// AggregationRMSE when the data layer is off, DynamicRegret on
// stationary markets, and game solutions at degenerate parameters —
// and 0 on the wire uniformly means "not measured". Response values
// are built fresh per request, so scrubbing in place is safe.
func sanitizeJSON(v any) any {
	if v == nil {
		return nil
	}
	rv := reflect.ValueOf(v)
	cp := reflect.New(rv.Type()).Elem()
	cp.Set(rv)
	scrubNaN(cp)
	return cp.Interface()
}

func scrubNaN(v reflect.Value) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		if f := v.Float(); math.IsNaN(f) || math.IsInf(f, 0) {
			v.SetFloat(0)
		}
	case reflect.Pointer:
		if !v.IsNil() {
			scrubNaN(v.Elem())
		}
	case reflect.Interface:
		if !v.IsNil() {
			// Interface contents are read-only; scrub an addressable
			// copy and store it back.
			cp := reflect.New(v.Elem().Type()).Elem()
			cp.Set(v.Elem())
			scrubNaN(cp)
			if v.CanSet() {
				v.Set(cp)
			}
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				scrubNaN(v.Field(i))
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			scrubNaN(v.Index(i))
		}
	case reflect.Map:
		iter := v.MapRange()
		for iter.Next() {
			cp := reflect.New(iter.Value().Type()).Elem()
			cp.Set(iter.Value())
			scrubNaN(cp)
			v.SetMapIndex(iter.Key(), cp)
		}
	}
}

// ErrorBody is the structured half of the error envelope: a stable
// machine-readable code, a human-readable message, and — on 429s and
// 503s — the retry hint mirrored from the Retry-After header.
type ErrorBody struct {
	Code        string  `json:"code"`
	Message     string  `json:"message"`
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// ErrorResponse is the error envelope every non-2xx response carries
// (wire revision 2, see WireVersion):
//
//	{"error": {"code": "...", "message": "...", "retry_after_s": n}}
//
// Wire revision 1 additionally mirrored error.message at the top
// level for clients written against the pre-envelope format; the
// mirror is gone by default and comes back only behind
// Server.LegacyErrors (cdt-server -legacy-errors).
type ErrorResponse struct {
	Error   ErrorBody `json:"error"`
	Message string    `json:"message,omitempty"`
}

// legacyErrorMirror gates the deprecated top-level message mirror.
// It is package-wide (writeError is a free function shared by every
// handler path); Handler() applies the owning Server's LegacyErrors
// setting when the handler chain is built.
var legacyErrorMirror atomic.Bool

// writeError is the single choke point for error responses: every
// handler path goes through it (usually via httpError) so the envelope
// cannot drift between endpoints. A positive retry hint sets BOTH the
// Retry-After header and the envelope's retry_after_s — callers must
// not set the header themselves, or the two can drift.
func writeError(w http.ResponseWriter, status int, code string, after time.Duration, format string, args ...any) {
	body := ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}
	if after > 0 {
		body.RetryAfterS = after.Seconds()
		w.Header().Set("Retry-After", retryAfter(after))
	}
	resp := ErrorResponse{Error: body}
	if legacyErrorMirror.Load() {
		resp.Message = body.Message
	}
	writeJSON(w, status, resp)
}

// httpError writes the envelope with the default code for the status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeError(w, status, errorCode(status), 0, format, args...)
}

// errorCode maps an HTTP status to its default machine-readable code.
// Paths with a more specific cause pass their own to writeError (the
// shed path sends "saturated", not "too_many_requests").
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}
