package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"
)

// GET /v1/cluster/overview — the merged, cluster-wide operator view.
// The queried node answers for itself and fans out one hop to every
// peer (?scope=node suppresses the fan-out, so peers answer locally
// and the merge can never recurse), reusing the proxy plumbing's
// header discipline: the current traceparent and request id ride
// along, so a trace of an overview call shows the whole fan-out. A
// down peer degrades to a stub entry with the error in its status —
// the overview stays useful mid-failover, which is exactly when an
// operator wants it.
//
// On a single-node broker the endpoint still works and reports the
// one node, so dashboards need no mode switch.

// overviewFanoutTimeout caps how long the merge waits for a peer.
const overviewFanoutTimeout = 5 * time.Second

// WindowRates is one rolling window's traffic summary.
type WindowRates struct {
	Requests uint64  `json:"requests"`
	P50S     float64 `json:"p50_s"`
	P99S     float64 `json:"p99_s"`
	ShedRate float64 `json:"shed_rate"`
}

// WindowRollup pairs the node's 1-minute and 5-minute rollups (all
// routes pooled; per-route windows are on /metrics).
type WindowRollup struct {
	Win1m WindowRates `json:"1m"`
	Win5m WindowRates `json:"5m"`
}

// NodeOverview is one node's slice of the cluster overview.
type NodeOverview struct {
	NodeID        string  `json:"node_id"`
	URL           string  `json:"url,omitempty"`
	Status        string  `json:"status"`
	Version       string  `json:"version,omitempty"`
	GoVersion     string  `json:"go_version,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	// Jobs is the node's live (in-registry) job count; JobsOwned is
	// how many of them are backed by a lease this node holds — on a
	// healthy cluster the two match per node, and the JobsOwned sum
	// equals the cluster's total live jobs.
	Jobs           int          `json:"jobs"`
	JobsOwned      int          `json:"jobs_owned"`
	RoundsAdvanced uint64       `json:"rounds_advanced"`
	Window         WindowRollup `json:"window"`
}

// ClusterOverview is the wire form of GET /v1/cluster/overview.
type ClusterOverview struct {
	Nodes []NodeOverview `json:"nodes"`
	// Jobs and JobsOwned sum the reachable nodes' counts.
	Jobs        int `json:"jobs"`
	JobsOwned   int `json:"jobs_owned"`
	Unreachable int `json:"unreachable"`
	// Leases is the shared lease store's protocol counters (clustered
	// brokers only; every node reads the same store, so the merge
	// reports the coordinator's view once, not per node).
	Leases *LeaseStats `json:"leases,omitempty"`
}

// nodeOverview builds this node's own entry.
func (s *Server) nodeOverview() NodeOverview {
	id, url := "local", ""
	if s.clustered() {
		id = s.Cluster.NodeID
		if p, ok := s.Cluster.peer(id); ok {
			url = p.URL
		}
	}
	jobs := s.registry().len()
	owned := jobs // single-node: every live job is implicitly owned
	if s.clustered() {
		owned = int(s.leasesHeld.Load())
	}
	return NodeOverview{
		NodeID:         id,
		URL:            url,
		Status:         "ok",
		Version:        buildVersion(),
		GoVersion:      runtime.Version(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Jobs:           jobs,
		JobsOwned:      owned,
		RoundsAdvanced: s.met().roundsAdvanced.Value(),
		Window:         s.met().rollup(),
	}
}

func (s *Server) handleClusterOverview(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if r.URL.Query().Get("scope") == "node" {
		writeJSON(w, http.StatusOK, s.nodeOverview())
		return
	}

	nodes := []NodeOverview{s.nodeOverview()}
	if s.clustered() {
		ctx, cancel := context.WithTimeout(r.Context(), overviewFanoutTimeout)
		defer cancel()
		peers := make([]NodeOverview, len(s.Cluster.Peers))
		var wg sync.WaitGroup
		for i, p := range s.Cluster.Peers {
			if p.ID == s.Cluster.NodeID {
				continue
			}
			wg.Add(1)
			go func(i int, p Peer) {
				defer wg.Done()
				peers[i] = s.fetchNodeOverview(ctx, w.Header(), p)
			}(i, p)
		}
		wg.Wait()
		for _, n := range peers {
			if n.NodeID != "" {
				nodes = append(nodes, n)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].NodeID < nodes[j].NodeID })

	ov := ClusterOverview{Nodes: nodes}
	for _, n := range nodes {
		if n.Status != "ok" {
			ov.Unreachable++
			continue
		}
		ov.Jobs += n.Jobs
		ov.JobsOwned += n.JobsOwned
	}
	if s.clustered() {
		st := s.leaseStore().LeaseStats()
		ov.Leases = &st
	}
	writeJSON(w, http.StatusOK, ov)
}

// fetchNodeOverview asks one peer for its ?scope=node entry. Errors
// degrade to a stub row carrying the failure, never a failed merge.
func (s *Server) fetchNodeOverview(ctx context.Context, respHeader http.Header, p Peer) NodeOverview {
	stub := NodeOverview{NodeID: p.ID, URL: p.URL}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/v1/cluster/overview?scope=node", nil)
	if err != nil {
		stub.Status = fmt.Sprintf("unreachable: %v", err)
		return stub
	}
	// Same trace-stitching discipline as proxyTo: the tracing
	// middleware already minted this hop's span and wrote its
	// traceparent and request id onto the response headers.
	if tp := respHeader.Get("Traceparent"); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	if rid := respHeader.Get("X-Request-ID"); rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	req.Header.Set(forwardedByHeader, s.Cluster.NodeID)

	resp, err := s.proxyClient().Do(req)
	if err != nil {
		stub.Status = fmt.Sprintf("unreachable: %v", err)
		return stub
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		stub.Status = fmt.Sprintf("unreachable: status %d", resp.StatusCode)
		return stub
	}
	var n NodeOverview
	if err := json.Unmarshal(body, &n); err != nil {
		stub.Status = fmt.Sprintf("bad overview payload: %v", err)
		return stub
	}
	if n.NodeID == "" {
		n.NodeID = p.ID
	}
	if n.URL == "" {
		n.URL = p.URL
	}
	return n
}
