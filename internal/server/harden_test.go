package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cmabhs/internal/engine"
)

// chunked hides a body's length so it reaches the handler through
// http.MaxBytesReader instead of the declared-length check.
type chunked struct{ io.Reader }

// TestBodyLimits is the table-driven 413 surface: every JSON endpoint
// must reject oversized bodies — declared lengths before reading a
// byte, undeclared ones through the capped reader — with a clear 413,
// and leave the server serving.
func TestBodyLimits(t *testing.T) {
	s := New()
	s.MaxBodyBytes = 256
	h := s.Handler()
	st := createJob(t, h)

	big := `{"pad":"` + strings.Repeat("x", 512) + `"}`
	tests := []struct {
		name, method, path string
		// declaredOnly: the handler never reads its body, so only the
		// declared-length check (not the capped reader) can trip.
		declaredOnly bool
	}{
		{"job create", http.MethodPost, "/v1/jobs", false},
		{"advance", http.MethodPost, "/v1/jobs/" + st.ID + "/advance", false},
		{"snapshot", http.MethodPost, "/v1/jobs/" + st.ID + "/snapshot", true},
		{"solve game", http.MethodPost, "/v1/game/solve", false},
	}
	for _, tc := range tests {
		for _, declared := range []bool{true, false} {
			if !declared && tc.declaredOnly {
				continue
			}
			name := tc.name + "/declared"
			var body io.Reader = strings.NewReader(big)
			if !declared {
				name = tc.name + "/chunked"
				body = chunked{strings.NewReader(big)}
			}
			t.Run(name, func(t *testing.T) {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, body))
				if rec.Code != http.StatusRequestEntityTooLarge {
					t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body)
				}
			})
		}
	}

	// Within the limit everything still works.
	code, adv := advance(t, h, nil, st.ID, 3)
	if code != http.StatusOK || len(adv.Played) != 3 {
		t.Fatalf("normal advance after 413s: status %d, played %d", code, len(adv.Played))
	}
}

// TestPanicRecovery checks panic isolation: a panicking handler turns
// into a 500 without killing the process, later requests keep being
// served, and the stdlib's own abort sentinel still passes through.
func TestPanicRecovery(t *testing.T) {
	s := New()
	calls := 0
	h := s.harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		switch r.URL.Path {
		case "/boom":
			panic(fmt.Sprintf("injected panic %d", calls))
		case "/abort":
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status %d, want 500", rec.Code)
	}

	// The server survived: the next request is served normally.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/fine", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d", rec.Code)
	}

	// http.ErrAbortHandler is the stdlib's own control flow — it must
	// re-panic, not become a 500.
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler swallowed by the recovery middleware")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/abort", nil))
}

// TestPanicInAdvanceKeepsOtherJobsAlive injects a panic through the
// real mux (a poisoned handler registered alongside it) and checks an
// unrelated job keeps trading afterwards — one bad request must not
// take down live jobs.
func TestPanicInAdvanceKeepsOtherJobsAlive(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)

	// Panic mid-flight on a hardened handler sharing the server.
	ph := s.harden(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("poisoned request")
	}))
	rec := httptest.NewRecorder()
	ph.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/poison", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("poisoned request status %d", rec.Code)
	}

	code, adv := advance(t, h, nil, st.ID, 7)
	if code != http.StatusOK || len(adv.Played) != 7 {
		t.Fatalf("job after panic: status %d, played %d", code, len(adv.Played))
	}
}

// TestRequestDeadline checks the per-request deadline degrades an
// advance gracefully: the context expires at a round boundary and the
// response reports the partial progress with a "canceled" stop.
func TestRequestDeadline(t *testing.T) {
	s := New()
	h := s.Handler()
	st := createJob(t, h)

	s.RequestTimeout = time.Nanosecond // expires before the first round
	code, adv := advance(t, h, nil, st.ID, 10)
	if code != http.StatusOK {
		t.Fatalf("deadlined advance status %d", code)
	}
	if adv.Stopped != "canceled" {
		t.Fatalf("stopped = %q, want canceled", adv.Stopped)
	}

	// With a sane deadline the job resumes where it stopped.
	s.RequestTimeout = time.Minute
	code, adv = advance(t, h, nil, st.ID, 10)
	if code != http.StatusOK || len(adv.Played) == 0 {
		t.Fatalf("recovered advance: status %d, played %d", code, len(adv.Played))
	}
}

// flakyStore is an in-memory Store whose first n Save calls fail.
type flakyStore struct {
	failures int
	calls    int
	saved    map[string][]byte
}

func (f *flakyStore) Save(id string, data []byte) error {
	f.calls++
	if f.calls <= f.failures {
		return errors.New("transient store outage")
	}
	if f.saved == nil {
		f.saved = make(map[string][]byte)
	}
	f.saved[id] = append([]byte(nil), data...)
	return nil
}

func (f *flakyStore) Load(id string) ([]byte, error) {
	data, ok := f.saved[id]
	if !ok {
		return nil, errors.New("no snapshot")
	}
	return data, nil
}

func (f *flakyStore) Delete(id string) error { delete(f.saved, id); return nil }

func (f *flakyStore) List() ([]string, error) {
	var ids []string
	for id := range f.saved {
		ids = append(ids, id)
	}
	return ids, nil
}

// instantRetry is a no-wait retry policy for tests.
func instantRetry(attempts int) engine.RetryPolicy {
	return engine.RetryPolicy{
		MaxAttempts: attempts,
		Jitter:      -1,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

// TestSnapshotRetriesTransientStoreFailure checks the broker rides
// out transient store outages: Save fails twice, the retry loop keeps
// going, and the snapshot lands.
func TestSnapshotRetriesTransientStoreFailure(t *testing.T) {
	store := &flakyStore{failures: 2}
	s := New()
	s.Store = store
	s.StoreRetry = instantRetry(3)
	h := s.Handler()
	st := createJob(t, h)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+st.ID+"/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", rec.Code, rec.Body)
	}
	if store.calls != 3 {
		t.Fatalf("store saw %d Save calls, want 3 (2 failures + 1 success)", store.calls)
	}
	if _, err := store.Load(st.ID); err != nil {
		t.Fatalf("snapshot not persisted after retries: %v", err)
	}

	// A store that never recovers surfaces as a 500 once attempts run
	// out — bounded, not infinite, retrying.
	dead := &flakyStore{failures: 1 << 30}
	s.Store = dead
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs/"+st.ID+"/snapshot", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("dead store snapshot status %d, want 500", rec.Code)
	}
	if dead.calls != 3 {
		t.Fatalf("dead store saw %d attempts, want exactly 3", dead.calls)
	}
}
