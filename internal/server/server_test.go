package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// do issues a JSON request against the test server and decodes the
// response into out (if non-nil), returning the status code.
func do(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	var out Healthz
	if code := do(t, ts, http.MethodGet, "/v1/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Status != "ok" {
		t.Errorf("body %+v", out)
	}
	if out.Version == "" {
		t.Error("healthz missing build version")
	}
	if out.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", out.UptimeSeconds)
	}
	if out.StateStore != "disabled" {
		t.Errorf("state store %q without a store configured", out.StateStore)
	}
}

func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t)

	// Create.
	var st JobStatus
	code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{
		RandomSellers: 20, K: 4, Rounds: 100, Seed: 7,
	}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if st.ID == "" || st.Sellers != 20 || st.NextRound != 1 || st.Done {
		t.Fatalf("created status %+v", st)
	}

	// Advance 10 rounds.
	var adv AdvanceResponse
	code = do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 10}, &adv)
	if code != http.StatusOK {
		t.Fatalf("advance status %d", code)
	}
	if len(adv.Played) != 10 || adv.Status.NextRound != 11 {
		t.Fatalf("advance %d rounds, next %d", len(adv.Played), adv.Status.NextRound)
	}
	// Round 1 is the initial exploration (all sellers selected).
	if len(adv.Played[0].Selected) != 20 {
		t.Errorf("round 1 selected %d", len(adv.Played[0].Selected))
	}
	if len(adv.Played[5].Selected) != 4 {
		t.Errorf("later rounds should select K=4, got %d", len(adv.Played[5].Selected))
	}

	// Status reflects progress.
	code = do(t, ts, http.MethodGet, "/v1/jobs/"+st.ID, nil, &st)
	if code != http.StatusOK || st.Result.Rounds != 10 {
		t.Fatalf("status %d, rounds %d", code, st.Result.Rounds)
	}
	if st.Result.RealizedRevenue <= 0 {
		t.Error("revenue should accumulate")
	}

	// Estimates.
	var est struct {
		Estimates []float64 `json:"estimates"`
	}
	code = do(t, ts, http.MethodGet, "/v1/jobs/"+st.ID+"/estimates", nil, &est)
	if code != http.StatusOK || len(est.Estimates) != 20 {
		t.Fatalf("estimates %d (code %d)", len(est.Estimates), code)
	}

	// Run to completion.
	code = do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 1000}, &adv)
	if code != http.StatusOK || !adv.Status.Done {
		t.Fatalf("final advance code %d, done=%v", code, adv.Status.Done)
	}
	if len(adv.Played) != 90 {
		t.Errorf("remaining rounds %d, want 90", len(adv.Played))
	}

	// List contains the job.
	var list []JobStatus
	if code := do(t, ts, http.MethodGet, "/v1/jobs", nil, &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list code %d len %d", code, len(list))
	}

	// Delete.
	if code := do(t, ts, http.MethodDelete, "/v1/jobs/"+st.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if code := do(t, ts, http.MethodGet, "/v1/jobs/"+st.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted job should 404, got %d", code)
	}
}

func TestJobCreationErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"no sellers", JobRequest{K: 2, Rounds: 10}, http.StatusBadRequest},
		{"no k", JobRequest{RandomSellers: 5, Rounds: 10}, http.StatusBadRequest},
		{"no rounds", JobRequest{RandomSellers: 5, K: 2}, http.StatusBadRequest},
		{"k > m", JobRequest{RandomSellers: 3, K: 5, Rounds: 10}, http.StatusBadRequest},
		{"bad policy", JobRequest{RandomSellers: 5, K: 2, Rounds: 10, Policy: "wat"}, http.StatusBadRequest},
		{"not json", "}{", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var out ErrorResponse
		if code := do(t, ts, http.MethodPost, "/v1/jobs", tc.req, &out); code != tc.want {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, code, tc.want, out)
		}
		if out.Error.Code != "invalid_request" || out.Error.Message == "" {
			t.Errorf("%s: envelope %+v, want code invalid_request with a message", tc.name, out)
		}
		if out.Message != "" {
			t.Errorf("%s: legacy top-level message %q present; wire v2 dropped it (LegacyErrors off)", tc.name, out.Message)
		}
	}
}

func TestExplicitSellersAndBudget(t *testing.T) {
	ts := newTestServer(t)
	req := JobRequest{
		Sellers: []SellerSpec{
			{CostQuadratic: 0.2, CostLinear: 0.1, ExpectedQuality: 0.9},
			{CostQuadratic: 0.3, CostLinear: 0.2, ExpectedQuality: 0.5},
			{CostQuadratic: 0.4, CostLinear: 0.3, ExpectedQuality: 0.7},
		},
		K: 2, Rounds: 10_000, Budget: 500, Seed: 3,
	}
	var st JobStatus
	if code := do(t, ts, http.MethodPost, "/v1/jobs", req, &st); code != http.StatusCreated {
		t.Fatalf("create %d", code)
	}
	var adv AdvanceResponse
	if code := do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 10_000}, &adv); code != http.StatusOK {
		t.Fatalf("advance %d", code)
	}
	if !adv.Status.Done || adv.Status.Stopped != "budget exhausted" {
		t.Fatalf("status %+v", adv.Status)
	}
	if adv.Status.Result.ConsumerSpend < 500 {
		t.Errorf("spend %v below budget", adv.Status.Result.ConsumerSpend)
	}
}

func TestAdvanceDefaultsAndCap(t *testing.T) {
	srv := New()
	srv.MaxAdvance = 5
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var st JobStatus
	do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{RandomSellers: 5, K: 2, Rounds: 50}, &st)
	// Empty body => one round.
	var adv AdvanceResponse
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/"+st.ID+"/advance", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&adv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(adv.Played) != 1 {
		t.Fatalf("default advance played %d", len(adv.Played))
	}
	// Over-cap request clamps to MaxAdvance.
	do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 100}, &adv)
	if len(adv.Played) != 5 {
		t.Fatalf("capped advance played %d", len(adv.Played))
	}
}

func TestJobLimit(t *testing.T) {
	srv := New()
	srv.MaxJobs = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{RandomSellers: 5, K: 2, Rounds: 10}, nil); code != http.StatusCreated {
			t.Fatalf("create %d failed: %d", i, code)
		}
	}
	if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{RandomSellers: 5, K: 2, Rounds: 10}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("limit not enforced: %d", code)
	}
}

func TestSolveGameEndpoint(t *testing.T) {
	ts := newTestServer(t)
	req := SolveGameRequest{
		Sellers: []SellerSpec{
			{CostQuadratic: 0.2, CostLinear: 0.1, ExpectedQuality: 0.8},
			{CostQuadratic: 0.3, CostLinear: 0.2, ExpectedQuality: 0.6},
		},
	}
	var out struct {
		ConsumerPrice  float64   `json:"ConsumerPrice"`
		PlatformPrice  float64   `json:"PlatformPrice"`
		SensingTimes   []float64 `json:"SensingTimes"`
		ConsumerProfit float64   `json:"ConsumerProfit"`
		NoTrade        bool      `json:"NoTrade"`
	}
	if code := do(t, ts, http.MethodPost, "/v1/game/solve", req, &out); code != http.StatusOK {
		t.Fatalf("solve status %d", code)
	}
	if out.NoTrade || out.ConsumerPrice <= 0 || len(out.SensingTimes) != 2 {
		t.Fatalf("outcome %+v", out)
	}
	// Errors propagate as 400.
	if code := do(t, ts, http.MethodPost, "/v1/game/solve", SolveGameRequest{}, nil); code != http.StatusBadRequest {
		t.Error("empty game should 400")
	}
	if code := do(t, ts, http.MethodGet, "/v1/game/solve", nil, nil); code != http.StatusMethodNotAllowed {
		t.Error("GET should be rejected")
	}
}

// TestConcurrentAdvances hammers one job from several goroutines; the
// job mutex must serialize them and every round must be played
// exactly once.
func TestConcurrentAdvances(t *testing.T) {
	ts := newTestServer(t)
	var st JobStatus
	do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{RandomSellers: 10, K: 3, Rounds: 200, Seed: 5}, &st)
	var wg sync.WaitGroup
	played := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				var adv AdvanceResponse
				var buf bytes.Buffer
				fmt.Fprintf(&buf, `{"rounds": 7}`)
				resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+st.ID+"/advance", "application/json", &buf)
				if err != nil {
					t.Error(err)
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&adv)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				played[w] += len(adv.Played)
				if adv.Status.Done {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, p := range played {
		total += p
	}
	if total != 200 {
		t.Fatalf("played %d rounds across workers, want exactly 200", total)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var st JobStatus
	do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{RandomSellers: 5, K: 2, Rounds: 20}, &st)
	var adv AdvanceResponse
	do(t, ts, http.MethodPost, "/v1/jobs/"+st.ID+"/advance", AdvanceRequest{Rounds: 7}, &adv)
	do(t, ts, http.MethodPost, "/v1/game/solve", SolveGameRequest{
		Sellers: []SellerSpec{{CostQuadratic: 0.2, CostLinear: 0.1, ExpectedQuality: 0.5}},
	}, nil)
	var stats map[string]int64
	if code := do(t, ts, http.MethodGet, "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats["jobs_created"] != 1 || stats["jobs_live"] != 1 {
		t.Errorf("job counters %v", stats)
	}
	if stats["rounds_advanced"] != 7 {
		t.Errorf("rounds_advanced = %d", stats["rounds_advanced"])
	}
	if stats["games_solved"] != 1 {
		t.Errorf("games_solved = %d", stats["games_solved"])
	}
	if code := do(t, ts, http.MethodPost, "/v1/stats", nil, nil); code != http.StatusMethodNotAllowed {
		t.Error("POST /v1/stats should be rejected")
	}
}

// TestListJobsPagination drives ?limit=/?after= paging: pages are
// sorted by id, strictly past `after`, capped at `limit`, and paging
// to exhaustion sees every job exactly once.
func TestListJobsPagination(t *testing.T) {
	ts := newTestServer(t)
	const n = 7
	for i := 0; i < n; i++ {
		if code := do(t, ts, http.MethodPost, "/v1/jobs",
			JobRequest{RandomSellers: 5, K: 2, Rounds: 10, Seed: int64(i + 1)}, nil); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
	}

	var all []JobStatus
	if code := do(t, ts, http.MethodGet, "/v1/jobs", nil, &all); code != http.StatusOK {
		t.Fatalf("unpaged list status %d", code)
	}
	if len(all) != n {
		t.Fatalf("unpaged list has %d jobs, want %d", len(all), n)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("list not sorted: %q before %q", all[i-1].ID, all[i].ID)
		}
	}

	var seen []string
	after := ""
	for {
		path := "/v1/jobs?limit=3"
		if after != "" {
			path += "&after=" + after
		}
		var page []JobStatus
		if code := do(t, ts, http.MethodGet, path, nil, &page); code != http.StatusOK {
			t.Fatalf("paged list status %d", code)
		}
		if len(page) > 3 {
			t.Fatalf("page of %d exceeds limit 3", len(page))
		}
		for _, st := range page {
			if after != "" && st.ID <= after {
				t.Fatalf("page entry %q not after cursor %q", st.ID, after)
			}
			seen = append(seen, st.ID)
		}
		if len(page) < 3 {
			break
		}
		after = page[len(page)-1].ID
	}
	if len(seen) != n {
		t.Fatalf("paging saw %d jobs %v, want %d", len(seen), seen, n)
	}
	for i, st := range all {
		if seen[i] != st.ID {
			t.Fatalf("paging order %v diverges from unpaged %v", seen, all)
		}
	}

	if code := do(t, ts, http.MethodGet, "/v1/jobs?limit=wat", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad limit should 400, got %d", code)
	}
	var empty []JobStatus
	if code := do(t, ts, http.MethodGet, "/v1/jobs?after=zzz", nil, &empty); code != http.StatusOK || len(empty) != 0 {
		t.Errorf("after past the end: status %d, %d jobs, want 200 with none", code, len(empty))
	}
}

// TestLegacyErrorMirror proves the deprecated top-level message is
// gone by default (wire v2) and restored behind LegacyErrors.
func TestLegacyErrorMirror(t *testing.T) {
	s := New()
	s.LegacyErrors = true
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Reset the process-wide mirror for the tests that follow.
	defer func() { legacyErrorMirror.Store(false) }()

	var out ErrorResponse
	if code := do(t, ts, http.MethodPost, "/v1/jobs", JobRequest{}, &out); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if out.Message == "" || out.Message != out.Error.Message {
		t.Fatalf("-legacy-errors: top-level message %q should mirror error.message %q", out.Message, out.Error.Message)
	}

	ts2 := newTestServer(t) // default: mirror off
	var out2 ErrorResponse
	if code := do(t, ts2, http.MethodPost, "/v1/jobs", JobRequest{}, &out2); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if out2.Message != "" {
		t.Fatalf("default envelope still carries legacy message %q", out2.Message)
	}
	if out2.Error.Code != "invalid_request" || out2.Error.Message == "" {
		t.Fatalf("envelope %+v", out2)
	}
}
