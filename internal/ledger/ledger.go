// Package ledger implements the payment-settlement substrate of the
// CDT incentive mechanism (Definition 5): once a round's incentive
// strategy ⟨p^J, p, τ⟩ is fixed, the consumer pays the platform
// p^J·Στ_i and the platform pays each selected seller p·τ_i; the
// difference is the platform's commission. The ledger double-books
// every transfer, so conservation (Σ balances = 0 for accounts that
// start empty) is an enforced invariant rather than an assumption.
package ledger

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Account identifies a trading party.
type Account string

// Well-known accounts of a CDT market; sellers get Seller(i).
const (
	Consumer Account = "consumer"
	Platform Account = "platform"
)

// Seller returns the account of seller i.
func Seller(i int) Account { return Account(fmt.Sprintf("seller-%d", i)) }

// Errors returned by Ledger operations.
var (
	ErrNegativeAmount = errors.New("ledger: negative transfer amount")
	ErrBadAmount      = errors.New("ledger: amount must be finite")
)

// Entry is one journaled transfer.
type Entry struct {
	Round  int     `json:"round"`  // trading round the transfer settles
	From   Account `json:"from"`   // payer
	To     Account `json:"to"`     // payee
	Amount float64 `json:"amount"` // non-negative
	Memo   string  `json:"memo"`   // human-readable reason ("service reward", ...)
}

// Ledger tracks balances and the full journal. The zero value is
// ready to use. Balances may go negative: parties fund payments from
// external wealth, and a negative balance is exactly their net spend.
type Ledger struct {
	balances map[Account]float64
	journal  []Entry
	sellers  []Account // memoized Seller(i) strings, grown on demand
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{balances: make(map[Account]float64)}
}

// Transfer moves amount from one account to another in round r.
// Zero-amount transfers are journaled too (they document a no-trade
// round); negative or non-finite amounts are rejected.
func (l *Ledger) Transfer(round int, from, to Account, amount float64, memo string) error {
	if math.IsNaN(amount) || math.IsInf(amount, 0) {
		return fmt.Errorf("%w (got %v)", ErrBadAmount, amount)
	}
	if amount < 0 {
		return fmt.Errorf("%w (got %v)", ErrNegativeAmount, amount)
	}
	l.balances[from] -= amount
	l.balances[to] += amount
	l.journal = append(l.journal, Entry{Round: round, From: from, To: to, Amount: amount, Memo: memo})
	return nil
}

// Balance returns the account's current net position.
func (l *Ledger) Balance(a Account) float64 { return l.balances[a] }

// TotalImbalance returns Σ balances, which must stay ~0: transfers
// only move money, never create it. Callers assert this invariant.
func (l *Ledger) TotalImbalance() float64 {
	var sum float64
	for _, v := range l.balances {
		sum += v
	}
	return sum
}

// Entries returns a copy of the journal.
func (l *Ledger) Entries() []Entry {
	return append([]Entry(nil), l.journal...)
}

// EntriesForRound returns the journal entries of one round.
func (l *Ledger) EntriesForRound(round int) []Entry {
	var out []Entry
	for _, e := range l.journal {
		if e.Round == round {
			out = append(out, e)
		}
	}
	return out
}

// Accounts returns all accounts touched so far, sorted.
func (l *Ledger) Accounts() []Account {
	out := make([]Account, 0, len(l.balances))
	for a := range l.balances {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// State is the serializable state of a Ledger: the journal alone.
// Balances are a pure fold over the journal, so Restore rebuilds them
// instead of trusting a second copy that could disagree.
type State struct {
	Journal []Entry `json:"journal"`
}

// State exports the ledger for persistence.
func (l *Ledger) State() State {
	return State{Journal: append([]Entry(nil), l.journal...)}
}

// Restore replaces the ledger's contents by replaying an exported
// journal through the same validation as live transfers, so a
// corrupted snapshot cannot smuggle in a NaN or negative amount.
func (l *Ledger) Restore(st State) error {
	fresh := New()
	for i, e := range st.Journal {
		if err := fresh.Transfer(e.Round, e.From, e.To, e.Amount, e.Memo); err != nil {
			return fmt.Errorf("ledger: journal entry %d: %w", i, err)
		}
	}
	l.balances = fresh.balances
	l.journal = fresh.journal
	return nil
}

// SettleRound books one round's CDT payments: the consumer pays the
// platform reward·1 (p^J·Στ) and the platform pays seller i
// sellerPay[i] (p·τ_i). Seller indices map to Seller(i) accounts
// offset by idOffset, letting callers use global seller ids.
func (l *Ledger) SettleRound(round int, reward float64, sellerPay map[int]float64) error {
	if err := l.Transfer(round, Consumer, Platform, reward, "data service reward"); err != nil {
		return err
	}
	ids := make([]int, 0, len(sellerPay))
	for id := range sellerPay {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := l.Transfer(round, Platform, l.sellerAccount(id), sellerPay[id], "data collection reward"); err != nil {
			return err
		}
	}
	return nil
}

// SettleRoundSorted is the allocation-free form of SettleRound: ids
// and pay are parallel slices with ids sorted ascending and free of
// duplicates (the journal order SettleRound produces). Violations are
// rejected before anything is booked, so a failed call leaves the
// ledger untouched.
func (l *Ledger) SettleRoundSorted(round int, reward float64, ids []int, pay []float64) error {
	if len(ids) != len(pay) {
		return fmt.Errorf("ledger: %d seller ids for %d payments", len(ids), len(pay))
	}
	for j := 1; j < len(ids); j++ {
		if ids[j] <= ids[j-1] {
			return fmt.Errorf("ledger: seller ids not strictly ascending at %d", j)
		}
	}
	for _, v := range pay {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w (got %v)", ErrBadAmount, v)
		}
		if v < 0 {
			return fmt.Errorf("%w (got %v)", ErrNegativeAmount, v)
		}
	}
	if err := l.Transfer(round, Consumer, Platform, reward, "data service reward"); err != nil {
		return err
	}
	for j, id := range ids {
		if err := l.Transfer(round, Platform, l.sellerAccount(id), pay[j], "data collection reward"); err != nil {
			return err
		}
	}
	return nil
}

// sellerAccount returns Seller(i) from a memoized table so the hot
// settle path does not re-format the account string every round.
func (l *Ledger) sellerAccount(i int) Account {
	if i < 0 {
		return Seller(i) // out-of-model id; format directly
	}
	for len(l.sellers) <= i {
		l.sellers = append(l.sellers, Seller(len(l.sellers)))
	}
	return l.sellers[i]
}

// Commission returns the platform's net take for a round: reward in
// minus seller payments out.
func (l *Ledger) Commission(round int) float64 {
	var in, out float64
	for _, e := range l.journal {
		if e.Round != round {
			continue
		}
		if e.To == Platform {
			in += e.Amount
		}
		if e.From == Platform {
			out += e.Amount
		}
	}
	return in - out
}
