package ledger

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransferBasics(t *testing.T) {
	l := New()
	if err := l.Transfer(1, Consumer, Platform, 10, "reward"); err != nil {
		t.Fatal(err)
	}
	if l.Balance(Consumer) != -10 || l.Balance(Platform) != 10 {
		t.Errorf("balances %v / %v", l.Balance(Consumer), l.Balance(Platform))
	}
	if err := l.Transfer(1, Platform, Seller(0), 4, "pay"); err != nil {
		t.Fatal(err)
	}
	if l.Balance(Platform) != 6 || l.Balance(Seller(0)) != 4 {
		t.Errorf("balances %v / %v", l.Balance(Platform), l.Balance(Seller(0)))
	}
	if len(l.Entries()) != 2 {
		t.Errorf("journal size %d", len(l.Entries()))
	}
}

func TestTransferRejectsBadAmounts(t *testing.T) {
	l := New()
	for _, amt := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := l.Transfer(1, Consumer, Platform, amt, ""); err == nil {
			t.Errorf("amount %v should be rejected", amt)
		}
	}
	// A rejected transfer must not touch balances or the journal.
	if l.Balance(Consumer) != 0 || len(l.Entries()) != 0 {
		t.Error("rejected transfer had side effects")
	}
}

func TestZeroTransferJournaled(t *testing.T) {
	l := New()
	if err := l.Transfer(3, Consumer, Platform, 0, "no-trade round"); err != nil {
		t.Fatal(err)
	}
	if len(l.EntriesForRound(3)) != 1 {
		t.Error("zero transfer should be journaled")
	}
}

// TestConservationProperty: any sequence of valid transfers keeps the
// total imbalance at (numerical) zero.
func TestConservationProperty(t *testing.T) {
	f := func(ops []struct {
		From, To uint8
		Amt      float64
	}) bool {
		l := New()
		accounts := []Account{Consumer, Platform, Seller(0), Seller(1), Seller(2)}
		for i, op := range ops {
			amt := math.Abs(op.Amt)
			if math.IsNaN(amt) || math.IsInf(amt, 0) || amt > 1e12 {
				continue
			}
			from := accounts[int(op.From)%len(accounts)]
			to := accounts[int(op.To)%len(accounts)]
			if err := l.Transfer(i, from, to, amt, ""); err != nil {
				return false
			}
		}
		return math.Abs(l.TotalImbalance()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSettleRound(t *testing.T) {
	l := New()
	err := l.SettleRound(5, 100, map[int]float64{2: 30, 7: 20})
	if err != nil {
		t.Fatal(err)
	}
	if l.Balance(Consumer) != -100 {
		t.Errorf("consumer %v", l.Balance(Consumer))
	}
	if l.Balance(Platform) != 50 {
		t.Errorf("platform %v", l.Balance(Platform))
	}
	if l.Balance(Seller(2)) != 30 || l.Balance(Seller(7)) != 20 {
		t.Error("seller balances wrong")
	}
	if got := l.Commission(5); got != 50 {
		t.Errorf("commission %v", got)
	}
	if got := l.Commission(99); got != 0 {
		t.Errorf("commission of untouched round %v", got)
	}
	if imbalance := l.TotalImbalance(); math.Abs(imbalance) > 1e-12 {
		t.Errorf("imbalance %v", imbalance)
	}
	entries := l.EntriesForRound(5)
	if len(entries) != 3 {
		t.Fatalf("entries %d", len(entries))
	}
	// Seller payments are journaled in id order for determinism.
	if entries[1].To != Seller(2) || entries[2].To != Seller(7) {
		t.Errorf("entry order: %+v", entries)
	}
}

func TestSettleRoundPropagatesErrors(t *testing.T) {
	l := New()
	if err := l.SettleRound(1, -5, nil); err == nil {
		t.Error("negative reward should fail")
	}
	if err := l.SettleRound(1, 5, map[int]float64{0: math.NaN()}); err == nil {
		t.Error("NaN seller payment should fail")
	}
}

func TestAccountsSorted(t *testing.T) {
	l := New()
	_ = l.Transfer(1, Seller(2), Seller(10), 1, "")
	_ = l.Transfer(1, Consumer, Platform, 1, "")
	got := l.Accounts()
	if len(got) != 4 {
		t.Fatalf("accounts %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("accounts not sorted: %v", got)
		}
	}
}

func TestEntriesIsCopy(t *testing.T) {
	l := New()
	_ = l.Transfer(1, Consumer, Platform, 1, "")
	e := l.Entries()
	e[0].Amount = 999
	if l.Entries()[0].Amount != 1 {
		t.Error("Entries leaked internal state")
	}
}

func TestSellerAccountNames(t *testing.T) {
	if Seller(0) != "seller-0" || Seller(42) != "seller-42" {
		t.Error("unexpected seller account format")
	}
}
