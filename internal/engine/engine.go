// Package engine is the shared execution engine for CMAB-HS work
// done in bulk: a bounded worker-pool batch executor with
// deterministic result ordering, per-task error aggregation, and
// context.Context cancellation, plus a reusable concurrency pool for
// long-lived services.
//
// Every layer that used to hand-roll goroutine fan-out now runs here:
// the experiment harness executes its replicated parameter sweeps
// through ForEach/Map, the broker service caps concurrently advancing
// jobs with a Pool, and the cmd tools get Ctrl-C cancellation that
// still flushes partial results because the engine stops dispatching
// at task boundaries instead of tearing work down mid-flight.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// TaskError records the failure of one task in a batch, preserving
// which task failed. It unwraps to the task's own error.
type TaskError struct {
	Index int
	Err   error
}

// Error implements the error interface.
func (e *TaskError) Error() string { return fmt.Sprintf("engine: task %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying task error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// Options tunes a batch run.
type Options struct {
	// Workers bounds how many tasks run concurrently; <= 0 means
	// GOMAXPROCS.
	Workers int
	// KeepGoing runs every task even after one fails. The default
	// (false) is fail-fast: the first task error cancels the batch,
	// already-running tasks finish, and no new ones start.
	KeepGoing bool
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded worker
// pool and returns after every started task has finished — it never
// leaks goroutines. Errors are aggregated per task: the returned
// error joins one *TaskError per failed task in ascending index
// order (errors.Join), so the first error is the lowest-index
// failure. Under the default fail-fast mode the first failure also
// cancels the context passed to the remaining tasks and stops new
// dispatch.
//
// Cancelling ctx stops dispatch at the next task boundary; tasks
// already in flight run to completion (they can observe ctx
// themselves to stop earlier). When ctx ends the batch early the
// returned error includes ctx's error.
func ForEach(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu    sync.Mutex
		fails []error // *TaskError values
	)
	workers := opts.workers(n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(runCtx, i); err != nil {
					mu.Lock()
					fails = append(fails, &TaskError{Index: i, Err: err})
					mu.Unlock()
					if !opts.KeepGoing {
						cancel()
					}
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-runCtx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	sort.Slice(fails, func(a, b int) bool {
		return fails[a].(*TaskError).Index < fails[b].(*TaskError).Index
	})
	if err := ctx.Err(); err != nil {
		fails = append([]error{err}, fails...)
	}
	return errors.Join(fails...)
}

// Map runs fn for every index like ForEach and returns the results in
// index order, independent of completion order. On error the slice
// still holds every successfully computed result (failed or unrun
// slots keep T's zero value).
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, opts, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// Pool is a reusable concurrency cap for long-lived services: a
// counting semaphore whose Acquire honors context cancellation while
// waiting. The zero value is not usable; create with NewPool.
//
// A Pool is self-describing for telemetry: Cap, InUse, and Waiting
// expose capacity, active holders, and queue depth, so a metrics
// layer can scrape it without shadow accounting.
type Pool struct {
	slots   chan struct{}
	waiting atomic.Int64
}

// NewPool returns a pool admitting up to capacity concurrent holders;
// capacity <= 0 means GOMAXPROCS.
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, capacity)}
}

// Acquire blocks until a slot is free or ctx is done. A free slot is
// granted even when ctx is already cancelled — callers that check
// ctx per work item (like the mechanism's round loop) then terminate
// promptly with their partial progress intact, which is friendlier
// than failing the whole request at admission.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	default:
	}
	p.waiting.Add(1)
	defer p.waiting.Add(-1)
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot only if one is free right now, reporting
// whether it did. It is the load-shedding admission path: a service
// that would rather reject than queue checks TryAcquire and returns
// 429/Retry-After on false instead of parking the request on Acquire.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire.
func (p *Pool) Release() {
	select {
	case <-p.slots:
	default:
		panic("engine: Pool.Release without matching Acquire")
	}
}

// Do runs fn while holding a slot.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	defer p.Release()
	return fn()
}

// Cap returns the pool's capacity.
func (p *Pool) Cap() int { return cap(p.slots) }

// InUse returns how many slots are currently held.
func (p *Pool) InUse() int { return len(p.slots) }

// Waiting returns how many Acquire calls are currently blocked on a
// full pool — the queue depth behind the semaphore. TryAcquire
// rejections never count: load shedding keeps the queue at zero.
func (p *Pool) Waiting() int { return int(p.waiting.Load()) }
