package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy tunes Retry: capped exponential backoff with full
// jitter and optional per-attempt timeouts. The zero value is usable
// and means "3 attempts, 50ms base delay doubling to at most 1s,
// full jitter, no per-attempt timeout".
type RetryPolicy struct {
	// MaxAttempts bounds how many times fn runs (default 3; 1 means
	// no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay drawn uniformly at random.
	// The zero value means full jitter (sleep uniform in (0, delay],
	// decorrelating concurrent retriers); a negative value disables
	// jitter entirely (deterministic delays, which tests use).
	Jitter float64
	// AttemptTimeout bounds each individual attempt's context
	// (default 0: attempts inherit ctx's deadline unchanged).
	AttemptTimeout time.Duration

	// OnAttempt, if non-nil, is called after every attempt with its
	// 1-based number and outcome (nil on success). It is the metrics
	// hook — a broker counts attempts and failures through it — and
	// must not block: it runs on the retry loop's goroutine.
	OnAttempt func(attempt int, err error)

	// Sleep replaces the inter-attempt wait (tests inject instant
	// clocks). It must honor ctx. Default: time.Timer based wait.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand replaces the jitter source (tests pin it). Default: a
	// package-local seeded PRNG.
	Rand func() float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

func (p RetryPolicy) mult() float64 {
	if p.Multiplier <= 1 {
		return 2
	}
	return p.Multiplier
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter == 0:
		return 1 // zero value: full jitter
	case p.Jitter < 0:
		return 0
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// jitterRand is the default jitter source: operational randomness,
// deliberately separate from the simulation's seeded rng streams.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func defaultRand() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// delay returns the backoff before retry #retry (1-based), jittered.
func (p RetryPolicy) delay(retry int, rnd func() float64) time.Duration {
	d := float64(p.base())
	for i := 1; i < retry; i++ {
		d *= p.mult()
		if d >= float64(p.cap()) {
			break
		}
	}
	if d > float64(p.cap()) {
		d = float64(p.cap())
	}
	if j := p.jitter(); j > 0 {
		// Full-jitter style: scale the delay into [(1-j)·d, d]. With
		// j=1 that is (0, d] — decorrelates concurrent retriers.
		d *= 1 - j*rnd()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Retry fails immediately instead of
// burning the remaining attempts (e.g. a validation error that can
// never succeed on retry). Errors.Is/As see through the wrapper.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retry runs fn up to policy.MaxAttempts times, sleeping a capped,
// jittered exponential backoff between attempts. It stops early when
// fn succeeds, when fn returns an error wrapped by Permanent, or when
// ctx is done (the context error then joins the last attempt's
// error). Each attempt receives its own context, bounded by
// AttemptTimeout when set, so one hung attempt cannot eat the whole
// retry budget.
//
// The returned error is the LAST attempt's error, annotated with the
// attempt count — the earlier failures were superseded by the ones
// after them.
func Retry(ctx context.Context, policy RetryPolicy, fn func(ctx context.Context) error) error {
	sleep := policy.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	rnd := policy.Rand
	if rnd == nil {
		rnd = defaultRand
	}
	attempts := policy.attempts()
	var last error
	for a := 1; ; a++ {
		if err := ctx.Err(); err != nil {
			return errors.Join(err, last)
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if policy.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, policy.AttemptTimeout)
		}
		err := fn(attemptCtx)
		cancel()
		if policy.OnAttempt != nil {
			policy.OnAttempt(a, err)
		}
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if a >= attempts {
			if attempts > 1 {
				return fmt.Errorf("engine: %d attempts: %w", attempts, last)
			}
			return last
		}
		if serr := sleep(ctx, policy.delay(a, rnd)); serr != nil {
			return errors.Join(serr, last)
		}
	}
}
