package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

// instantPolicy retries without real sleeping and without jitter,
// recording the delays it was asked to wait.
func instantPolicy(attempts int, delays *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		Jitter:      -1, // deterministic delays
		Sleep: func(ctx context.Context, d time.Duration) error {
			if delays != nil {
				*delays = append(*delays, d)
			}
			return ctx.Err()
		},
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), instantPolicy(5, nil), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), instantPolicy(4, nil), func(ctx context.Context) error {
		calls++
		return boom
	})
	if calls != 4 {
		t.Fatalf("fn ran %d times, want 4", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the last failure", err)
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	var delays []time.Duration
	p := instantPolicy(5, &delays)
	p.BaseDelay = 10 * time.Millisecond
	p.MaxDelay = 40 * time.Millisecond
	_ = Retry(context.Background(), p, func(ctx context.Context) error {
		return errors.New("always")
	})
	want := []time.Duration{10, 20, 40, 40} // ms, capped at MaxDelay
	if len(delays) != len(want) {
		t.Fatalf("slept %d times, want %d", len(delays), len(want))
	}
	for i, d := range delays {
		if d != want[i]*time.Millisecond {
			t.Errorf("delay %d = %v, want %vms", i, d, want[i])
		}
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	fatal := errors.New("bad request")
	calls := 0
	err := Retry(context.Background(), instantPolicy(5, nil), func(ctx context.Context) error {
		calls++
		return Permanent(fatal)
	})
	if calls != 1 {
		t.Fatalf("fn ran %d times after Permanent, want 1", calls)
	}
	if !errors.Is(err, fatal) {
		t.Fatalf("error %v does not expose the permanent cause", err)
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, instantPolicy(10, nil), func(ctx context.Context) error {
		calls++
		cancel() // cancel mid-run: the sleep hook reports it
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not report cancellation", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times after cancellation, want 1", calls)
	}
}

func TestRetryAttemptTimeout(t *testing.T) {
	p := instantPolicy(2, nil)
	p.AttemptTimeout = 5 * time.Millisecond
	sawDeadline := false
	err := Retry(context.Background(), p, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline = true
		}
		<-ctx.Done() // simulate a hung attempt: unblocks at the attempt deadline
		return ctx.Err()
	})
	if !sawDeadline {
		t.Fatal("attempt context had no deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not report the attempt timeout", err)
	}
}

func TestRetryJitterStaysWithinDelay(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   100 * time.Millisecond,
		Jitter:      1,
		Rand:        func() float64 { return 0.5 },
	}
	var got time.Duration
	p.Sleep = func(ctx context.Context, d time.Duration) error {
		got = d
		return nil
	}
	_ = Retry(context.Background(), p, func(ctx context.Context) error {
		return errors.New("always")
	})
	if got != 50*time.Millisecond {
		t.Fatalf("jittered delay %v, want 50ms at rand=0.5", got)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) should stay nil")
	}
}

func TestRetryOnAttemptHook(t *testing.T) {
	type call struct {
		attempt int
		failed  bool
	}
	var calls []call
	p := instantPolicy(5, nil)
	p.OnAttempt = func(attempt int, err error) {
		calls = append(calls, call{attempt, err != nil})
	}
	n := 0
	err := Retry(context.Background(), p, func(ctx context.Context) error {
		n++
		if n < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	want := []call{{1, true}, {2, true}, {3, false}}
	if len(calls) != len(want) {
		t.Fatalf("hook saw %d calls, want %d", len(calls), len(want))
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("hook call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}

	// The hook also sees attempts cut short by Permanent.
	calls = nil
	_ = Retry(context.Background(), p, func(ctx context.Context) error {
		return Permanent(errors.New("never"))
	})
	if len(calls) != 1 || !calls[0].failed {
		t.Fatalf("hook around Permanent: %+v", calls)
	}
}
