package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var ran [100]atomic.Int32
		err := ForEach(context.Background(), len(ran), Options{Workers: workers}, func(ctx context.Context, i int) error {
			ran[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, Options{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	// Make early indices finish last: results must still land at
	// their own index.
	out, err := Map(context.Background(), 32, Options{Workers: 8}, func(ctx context.Context, i int) (int, error) {
		time.Sleep(time.Duration(32-i) * time.Millisecond / 8)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachFirstErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	err := ForEach(context.Background(), 1000, Options{Workers: 2}, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return fmt.Errorf("task payload: %w", boom)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the task error", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Index != 3 {
		t.Fatalf("error %v does not identify the failing task", err)
	}
	// Fail-fast: the vast majority of the batch must never start.
	if n := started.Load(); n > 900 {
		t.Errorf("fail-fast still started %d/1000 tasks", n)
	}
}

func TestForEachKeepGoingAggregatesAllErrors(t *testing.T) {
	err := ForEach(context.Background(), 10, Options{Workers: 4, KeepGoing: true}, func(ctx context.Context, i int) error {
		if i%3 == 0 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error %T is not a joined error", err)
	}
	errs := joined.Unwrap()
	if len(errs) != 4 { // i = 0, 3, 6, 9
		t.Fatalf("aggregated %d errors, want 4: %v", len(errs), err)
	}
	// Deterministic aggregation: ascending task index.
	prev := -1
	for _, e := range errs {
		var te *TaskError
		if !errors.As(e, &te) {
			t.Fatalf("joined element %v is not a TaskError", e)
		}
		if te.Index <= prev {
			t.Fatalf("errors not in index order: %v", err)
		}
		prev = te.Index
	}
}

func TestForEachCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 100, Options{Workers: 4}, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 4 {
		t.Errorf("cancelled batch still ran %d tasks", n)
	}
}

func TestForEachMidBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 1000, Options{Workers: 2}, func(ctx context.Context, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n < 5 || n > 10 {
		t.Errorf("ran %d tasks around cancellation, want ~5", n)
	}
}

// TestForEachDrainsWorkers asserts the engine never leaks goroutines:
// every started task signals a done channel, and after ForEach
// returns the in-flight count is zero and the goroutine count settles
// back to the baseline.
func TestForEachDrainsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var inFlight atomic.Int32
	done := make(chan int, 64)
	err := ForEach(context.Background(), 64, Options{Workers: 8}, func(ctx context.Context, i int) error {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		defer func() { done <- i }()
		if i == 20 {
			return errors.New("fail mid-batch")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want the injected error")
	}
	if n := inFlight.Load(); n != 0 {
		t.Fatalf("%d tasks still in flight after ForEach returned", n)
	}
	close(done)
	started := 0
	for range done {
		started++
	}
	if started == 0 || started > 64 {
		t.Fatalf("done-channel count %d", started)
	}
	// The worker goroutines themselves must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), 4, Options{Workers: 1}, func(ctx context.Context, i int) (string, error) {
		if i == 2 {
			return "", errors.New("no")
		}
		return fmt.Sprint(i), nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out[0] != "0" || out[1] != "1" || out[2] != "" {
		t.Fatalf("partial results %v", out)
	}
}

func TestPoolCapsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Cap() != 3 {
		t.Fatalf("cap %d", p.Cap())
	}
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() error {
				c := cur.Add(1)
				for {
					old := peak.Load()
					if c <= old || peak.CompareAndSwap(old, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d over pool cap 3", got)
	}
	if p.InUse() != 0 {
		t.Fatalf("slots still held: %d", p.InUse())
	}
}

func TestPoolAcquireHonorsContext(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	p.Release()
	// A free slot is granted even on an already-cancelled context.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := p.Acquire(done); err != nil {
		t.Fatalf("free slot refused on cancelled ctx: %v", err)
	}
	p.Release()
}

func TestPoolReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewPool(1).Release()
}

func TestPoolWaitingCountsQueuedAcquires(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.Waiting() != 0 {
		t.Fatalf("fresh pool reports %d waiting", p.Waiting())
	}

	const queued = 3
	var started, done sync.WaitGroup
	started.Add(queued)
	done.Add(queued)
	for i := 0; i < queued; i++ {
		go func() {
			defer done.Done()
			started.Done()
			if err := p.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			p.Release()
		}()
	}
	started.Wait()
	// Wait for every goroutine to actually park on the full pool.
	deadline := time.Now().Add(2 * time.Second)
	for p.Waiting() != queued {
		if time.Now().After(deadline) {
			t.Fatalf("waiting %d, want %d", p.Waiting(), queued)
		}
		time.Sleep(time.Millisecond)
	}

	// TryAcquire rejections never queue.
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full pool")
	}
	if p.Waiting() != queued {
		t.Fatalf("TryAcquire changed Waiting to %d", p.Waiting())
	}

	p.Release()
	done.Wait()
	if p.Waiting() != 0 {
		t.Fatalf("drained pool reports %d waiting", p.Waiting())
	}
}
