package core

import (
	"context"
	"testing"

	"cmabhs/internal/bandit"
)

// TestAdvanceSteadyStateAllocFree pins the hot-path invariant of the
// allocation-free advance pipeline: once warm, a full trading round —
// churn schedule, incremental top-K selection, the closed-form
// Stackelberg game, collection, settlement, estimator updates, and
// observer dispatch — performs zero heap allocations. (The ledger
// journal still grows, but its amortized doubling stays below one
// allocation per round and so rounds to zero here.)
func TestAdvanceSteadyStateAllocFree(t *testing.T) {
	cfg, _ := testConfig(t, 300, 10, 1<<30, 3, 9)
	var observed int
	cfg.Observer = func(ev *RoundEvent) { observed = ev.Round }
	m, err := NewMechanism(cfg, bandit.NewIncrementalUCB())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm every pool: round 1 explores the full population and the
	// following rounds size the steady-state buffers.
	if _, _, err := m.AdvanceN(ctx, 50, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := m.AdvanceN(ctx, 1, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state advance allocates %v times per round, want 0", allocs)
	}
	if observed != m.Round()-1 {
		t.Fatalf("observer saw round %d, mechanism at %d", observed, m.Round())
	}
}

// TestAdvanceNMatchesAdvanceContext: the batched fast path and the
// copying compatibility path must walk through identical rounds.
func TestAdvanceNMatchesAdvanceContext(t *testing.T) {
	cfgA, _ := testConfig(t, 20, 4, 60, 3, 11)
	cfgB, _ := testConfig(t, 20, 4, 60, 3, 11)
	a, err := NewMechanism(cfgA, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMechanism(cfgB, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var borrowedCopies []RoundRecord
	played, reason, err := a.AdvanceN(ctx, 60, func(rec *RoundRecord) {
		borrowedCopies = append(borrowedCopies, rec.Clone())
	})
	if err != nil || reason != "" {
		t.Fatalf("AdvanceN: played=%d reason=%q err=%v", played, reason, err)
	}
	recs, reason, err := b.AdvanceContext(ctx, 60)
	if err != nil || reason != "" {
		t.Fatalf("AdvanceContext: reason=%q err=%v", reason, err)
	}
	if played != len(recs) || played != len(borrowedCopies) {
		t.Fatalf("played %d rounds, AdvanceContext returned %d, callback saw %d", played, len(recs), len(borrowedCopies))
	}
	for i := range recs {
		got, want := borrowedCopies[i], recs[i]
		if got.Round != want.Round || got.PJ != want.PJ || got.P != want.P ||
			got.TotalTau != want.TotalTau || got.PoC != want.PoC || got.PoP != want.PoP ||
			got.Realized != want.Realized || got.NoTrade != want.NoTrade {
			t.Fatalf("round %d diverged:\n got %+v\nwant %+v", want.Round, got, want)
		}
		for j := range want.Selected {
			if got.Selected[j] != want.Selected[j] || got.Taus[j] != want.Taus[j] ||
				got.SellerProfits[j] != want.SellerProfits[j] {
				t.Fatalf("round %d seller slot %d diverged", want.Round, j)
			}
		}
	}
}
