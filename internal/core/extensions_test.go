package core

import (
	"math"
	"testing"

	"cmabhs/internal/aggregate"
	"cmabhs/internal/bandit"
	"cmabhs/internal/ledger"
	"cmabhs/internal/market"
	"cmabhs/internal/quality"
	"cmabhs/internal/rng"
)

// TestRunWithDepartures: departed sellers are never selected after
// their departure round, and the run keeps going.
func TestRunWithDepartures(t *testing.T) {
	cfg, _ := testConfig(t, 8, 3, 120, 3, 31)
	dep := make([]int, 8)
	dep[0] = 10 // seller 0 leaves at round 10
	dep[5] = 50 // seller 5 leaves at round 50
	cfg.Market.Departures = dep
	cfg.KeepRounds = true
	res, err := Run(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsPlayed != 120 {
		t.Fatalf("played %d rounds", res.RoundsPlayed)
	}
	for _, r := range res.Rounds {
		for _, i := range r.Selected {
			if i == 0 && r.Round >= 10 {
				t.Fatalf("round %d selected departed seller 0", r.Round)
			}
			if i == 5 && r.Round >= 50 {
				t.Fatalf("round %d selected departed seller 5", r.Round)
			}
		}
	}
}

// TestDeparturesWithFlakyDeliveries drives the two legacy failure
// modes together: a seller departs mid-run while every delivery is
// flaky (DeliveryRate < 1). The run must settle every round through
// the re-priced post-game path — non-delivering sellers earn exactly
// zero while delivering ones are paid, the platform never pays out
// more than the consumer's re-priced reward, the departed seller's
// account freezes at its departure round, and the ledger conserves.
func TestDeparturesWithFlakyDeliveries(t *testing.T) {
	cfg, _ := testConfig(t, 8, 3, 120, 3, 31)
	dep := make([]int, 8)
	dep[2] = 40 // seller 2 leaves at round 40, deliveries flaky throughout
	cfg.Market.Departures = dep
	cfg.Market.DeliveryRate = 0.6
	cfg.Market.DeliverySeed = 77
	cfg.KeepRounds = true

	mech, err := NewMechanism(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	led := mech.Market().Ledger()
	var balAtDeparture float64
	for !mech.Done() {
		if _, err := mech.Step(); err != nil {
			t.Fatal(err)
		}
		if mech.Round()-1 == 40 {
			balAtDeparture = led.Balance(ledger.Seller(2))
		}
	}
	res := mech.Result()
	if res.RoundsPlayed != 120 {
		t.Fatalf("played %d rounds, stopped %q", res.RoundsPlayed, res.Stopped)
	}

	// The departed seller is gone: never selected again, account
	// frozen at the departure-round balance.
	for _, r := range res.Rounds {
		if r.Round < 40 {
			continue
		}
		for _, i := range r.Selected {
			if i == 2 {
				t.Fatalf("round %d selected departed seller 2", r.Round)
			}
		}
	}
	if got := led.Balance(ledger.Seller(2)); got != balAtDeparture {
		t.Fatalf("departed seller's balance moved after departure: %v -> %v", balAtDeparture, got)
	}

	// Flaky deliveries actually bit: some settled rounds must mix
	// zero-profit (failed delivery: no data, no pay, no cost) with
	// paid sellers.
	mixed := false
	for _, r := range res.Rounds {
		if r.NoTrade {
			continue
		}
		var zero, paid bool
		for _, sp := range r.SellerProfits {
			if sp == 0 {
				zero = true
			} else if sp > 0 {
				paid = true
			}
		}
		mixed = mixed || (zero && paid)
		// Re-priced settlement: the platform's per-round commission
		// (reward in minus collection payouts) must never go negative.
		if c := led.Commission(r.Round); c < -1e-9 {
			t.Fatalf("round %d: negative commission %v", r.Round, c)
		}
	}
	if !mixed {
		t.Fatal("no round mixed failed and successful deliveries; interaction untested")
	}
	if imb := led.TotalImbalance(); math.Abs(imb) > 1e-6 {
		t.Fatalf("ledger imbalance %v", imb)
	}
}

// TestRunDeparturesShrinkSelection: when fewer than K sellers remain,
// the mechanism selects what is left; when none remain it stops.
func TestRunDeparturesShrinkSelection(t *testing.T) {
	cfg, _ := testConfig(t, 4, 3, 60, 3, 33)
	dep := []int{20, 20, 0, 0} // two sellers leave at round 20
	cfg.Market.Departures = dep
	cfg.KeepRounds = true
	res, err := Run(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		if r.Round >= 20 && len(r.Selected) != 2 {
			t.Fatalf("round %d selected %d sellers, want 2 survivors", r.Round, len(r.Selected))
		}
	}
	// Everyone leaves: run halts.
	cfg2, _ := testConfig(t, 4, 3, 60, 3, 33)
	cfg2.Market.Departures = []int{20, 20, 20, 20}
	res2, err := Run(cfg2, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stopped != "no active sellers" {
		t.Fatalf("Stopped = %q", res2.Stopped)
	}
	if res2.RoundsPlayed >= 60 {
		t.Fatalf("run should halt early, played %d", res2.RoundsPlayed)
	}
	// Everyone gone before round 1: error.
	cfg3, _ := testConfig(t, 2, 1, 10, 3, 33)
	cfg3.Market.Departures = []int{1, 1}
	if _, err := Run(cfg3, bandit.UCBGreedy{}); err == nil {
		t.Fatal("expected error when all sellers depart before round 1")
	}
}

// TestRunBudget: the run stops once the consumer's cumulative spend
// reaches the budget.
func TestRunBudget(t *testing.T) {
	cfg, _ := testConfig(t, 8, 3, 10_000, 3, 35)
	free, err := Run(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if free.Stopped != "" {
		t.Fatalf("unbudgeted run stopped: %q", free.Stopped)
	}
	cfg2, _ := testConfig(t, 8, 3, 10_000, 3, 35)
	cfg2.Budget = free.ConsumerSpend / 10
	capped, err := Run(cfg2, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Stopped != "budget exhausted" {
		t.Fatalf("Stopped = %q", capped.Stopped)
	}
	if capped.RoundsPlayed >= free.RoundsPlayed {
		t.Fatal("budgeted run should stop early")
	}
	if capped.ConsumerSpend < cfg2.Budget {
		t.Fatalf("spend %v below budget %v at stop", capped.ConsumerSpend, cfg2.Budget)
	}
	// The overshoot is at most one round's reward — bounded sanity:
	// spend before the final round was below budget.
	if capped.ConsumerSpend > 2*cfg2.Budget {
		t.Fatalf("spend %v overshoots budget %v wildly", capped.ConsumerSpend, cfg2.Budget)
	}
}

// TestRunDataLayer: with the raw-data layer enabled, aggregation RMSE
// is finite, and a quality-aware policy delivers lower error than
// random selection on the same market.
func TestRunDataLayer(t *testing.T) {
	build := func(seed int64) *Config {
		cfg, _ := testConfig(t, 20, 4, 600, 4, 37)
		sensor, err := aggregate.NewSensor(0.05, 3, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Market.Data = &market.DataLayer{
			Signal:     aggregate.SineSignal{Base: 50, Amp: 10, Period: 100},
			Sensor:     sensor,
			Aggregator: aggregate.WeightedMean{},
		}
		return cfg
	}
	ucb, err := Run(build(1), bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ucb.MeanAggRMSE) || ucb.MeanAggRMSE <= 0 {
		t.Fatalf("MeanAggRMSE = %v", ucb.MeanAggRMSE)
	}
	rnd, err := Run(build(1), bandit.NewRandom(rng.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !(ucb.MeanAggRMSE < rnd.MeanAggRMSE) {
		t.Errorf("quality-aware aggregation RMSE %v should beat random %v",
			ucb.MeanAggRMSE, rnd.MeanAggRMSE)
	}
	// Without the layer, RMSE is NaN.
	plain, _ := testConfig(t, 5, 2, 20, 3, 37)
	res, err := Run(plain, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.MeanAggRMSE) {
		t.Errorf("expected NaN RMSE without a data layer, got %v", res.MeanAggRMSE)
	}
}

// TestDeparturesValidation: a departures slice of the wrong length is
// rejected by the market config.
func TestDeparturesValidation(t *testing.T) {
	cfg, _ := testConfig(t, 5, 2, 10, 3, 39)
	cfg.Market.Departures = []int{1, 2} // wrong length
	if _, err := Run(cfg, bandit.UCBGreedy{}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestRunNonStationary: with abruptly shifting qualities the
// dynamic-regret metric is populated for every policy, all learning
// policies beat random selection, and stationary models report NaN.
// (Which learner wins is scale-dependent — see the ext-nonstationary
// experiment and EXPERIMENTS.md; the paper's wide confidence term
// makes even cumulative UCB re-explore aggressively.)
func TestRunNonStationary(t *testing.T) {
	const m = 8
	build := func() *Config {
		cfg, _ := testConfig(t, m, 2, 4000, 3, 41)
		up := make([]float64, m)
		down := make([]float64, m)
		for i := range up {
			up[i] = 0.1 + 0.8*float64(i)/float64(m-1)
			down[m-1-i] = up[i]
		}
		model, err := quality.NewShifting([][]float64{up, down}, 500, 0.05, rng.New(41))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Market.Quality = model
		return cfg
	}
	policies := []bandit.Policy{
		bandit.UCBGreedy{},
		bandit.NewSlidingWindowUCB(200),
		bandit.NewDiscountedUCB(0.998),
	}
	random, err := Run(build(), bandit.NewRandom(rng.New(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range policies {
		res, err := Run(build(), p)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(res.DynamicRegret) || res.DynamicRegret < 0 {
			t.Fatalf("%s: DynamicRegret = %v", p.Name(), res.DynamicRegret)
		}
		if !(res.DynamicRegret < random.DynamicRegret/1.5) {
			t.Errorf("%s dynamic regret %v should be well below random %v",
				p.Name(), res.DynamicRegret, random.DynamicRegret)
		}
	}
	// Stationary models report NaN.
	plain, _ := testConfig(t, 5, 2, 20, 3, 41)
	res, err := Run(plain, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.DynamicRegret) {
		t.Errorf("stationary DynamicRegret = %v, want NaN", res.DynamicRegret)
	}
}

// TestRunDeliveryFailures: with transient failures, failed sellers
// are unpaid and unlearned that round, the run completes, and the
// ledger still conserves. Revenue scales roughly with the delivery
// rate.
func TestRunDeliveryFailures(t *testing.T) {
	full, _ := testConfig(t, 10, 3, 2000, 3, 43)
	reliable, err := Run(full, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	flaky, _ := testConfig(t, 10, 3, 2000, 3, 43)
	flaky.Market.DeliveryRate = 0.6
	flaky.Market.DeliverySeed = 5
	flaky.KeepRounds = true
	res, err := Run(flaky, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsPlayed != 2000 {
		t.Fatalf("played %d rounds", res.RoundsPlayed)
	}
	// Realized revenue should be roughly 60% of the reliable run's.
	ratio := res.RealizedRevenue / reliable.RealizedRevenue
	if ratio < 0.45 || ratio > 0.75 {
		t.Errorf("revenue ratio %v, want ≈0.6", ratio)
	}
	// Spot-check failed sellers: sensing times include zeros even in
	// trading rounds (failed deliveries zeroed post-game).
	zeroed := 0
	for _, r := range res.Rounds[1:] {
		for _, tau := range r.Taus {
			if tau == 0 {
				zeroed++
			}
		}
	}
	if zeroed == 0 {
		t.Error("expected some zeroed sensing times from failures")
	}
	// Consumer spend only covers delivered time: strictly below the
	// reliable run's.
	if !(res.ConsumerSpend < reliable.ConsumerSpend) {
		t.Errorf("flaky spend %v should be below reliable %v", res.ConsumerSpend, reliable.ConsumerSpend)
	}
}

// TestDeliveryRateValidation: out-of-range rates are rejected.
func TestDeliveryRateValidation(t *testing.T) {
	cfg, _ := testConfig(t, 5, 2, 10, 3, 45)
	cfg.Market.DeliveryRate = 1.5
	if _, err := Run(cfg, bandit.UCBGreedy{}); err == nil {
		t.Fatal("rate > 1 should fail")
	}
	cfg.Market.DeliveryRate = -0.1
	if _, err := Run(cfg, bandit.UCBGreedy{}); err == nil {
		t.Fatal("negative rate should fail")
	}
}

// TestRunRandomizedSoak drives the whole mechanism through random
// configurations with every feature toggled at random — churn,
// budgets, delivery failures, drifting qualities, solvers, policies —
// and asserts the global invariants: no errors, finite metrics,
// consistent round counts, and a conserved settlement ledger.
func TestRunRandomizedSoak(t *testing.T) {
	src := rng.New(777)
	for trial := 0; trial < 40; trial++ {
		m := 3 + src.Intn(20)
		k := 1 + src.Intn(m)
		n := 10 + src.Intn(150)
		l := 1 + src.Intn(6)
		cfg, means := testConfig(t, m, k, n, l, int64(1000+trial))

		switch src.Intn(4) {
		case 1:
			amps := make([]float64, m)
			for i := range amps {
				amps[i] = src.Uniform(0, 0.4)
			}
			model, err := quality.NewDrifting(means, amps, src.Uniform(20, 200), 0.1, src.Split(int64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Market.Quality = model
		case 2:
			model, err := quality.NewBernoulli(means, src.Split(int64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Market.Quality = model
		}
		if src.Intn(3) == 0 {
			dep := make([]int, m)
			for i := range dep {
				if src.Float64() < 0.2 {
					dep[i] = 2 + src.Intn(n)
				}
			}
			cfg.Market.Departures = dep
		}
		if src.Intn(3) == 0 {
			cfg.Market.DeliveryRate = src.Uniform(0.5, 1)
			cfg.Market.DeliverySeed = int64(trial)
		}
		if src.Intn(4) == 0 {
			cfg.Budget = src.Uniform(100, 5000)
		}
		if src.Intn(5) == 0 {
			cfg.Market.Job.T = src.Uniform(0.5, 5)
		}
		cfg.Solver = Solver(src.Intn(2)) // closed-form or exact
		cfg.ColdStart = src.Intn(4) == 0

		policies := []bandit.Policy{
			bandit.UCBGreedy{},
			bandit.NewOracle(means),
			bandit.NewRandom(src.Split(int64(trial * 7))),
			bandit.NewThompson(src.Split(int64(trial * 11))),
			bandit.NewSlidingWindowUCB(1 + src.Intn(100)),
			bandit.NewDiscountedUCB(src.Uniform(0.9, 0.999)),
		}
		policy := policies[src.Intn(len(policies))]

		mech, err := NewMechanism(cfg, policy)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for !mech.Done() {
			if _, err := mech.Step(); err != nil {
				t.Fatalf("trial %d (%s): %v", trial, policy.Name(), err)
			}
		}
		res := mech.Result()
		if res.RoundsPlayed <= 0 || res.RoundsPlayed > n {
			t.Fatalf("trial %d: played %d of %d rounds", trial, res.RoundsPlayed, n)
		}
		for _, v := range []float64{res.RealizedRevenue, res.Regret, res.CumPoC, res.CumPoP, res.CumPoS, res.ConsumerSpend} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: non-finite metric %v in %+v", trial, v, res)
			}
		}
		if res.Regret < -1e-9 || res.RealizedRevenue < 0 || res.ConsumerSpend < 0 {
			t.Fatalf("trial %d: negative metric: %+v", trial, res)
		}
		if imb := mech.Market().Ledger().TotalImbalance(); math.Abs(imb) > 1e-6 {
			t.Fatalf("trial %d: ledger imbalance %v", trial, imb)
		}
		if res.Stopped == "" && res.RoundsPlayed != n {
			t.Fatalf("trial %d: unexplained early stop after %d rounds", trial, res.RoundsPlayed)
		}
	}
}
