package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cmabhs/internal/bandit"
	"cmabhs/internal/rng"
)

// recordsEqual compares RoundRecords tolerating NaN AggRMSE (NaN !=
// NaN defeats reflect.DeepEqual) while requiring bit-identity
// everywhere else.
func recordsEqual(a, b RoundRecord) bool {
	if a.Round != b.Round || a.PJ != b.PJ || a.P != b.P ||
		a.TotalTau != b.TotalTau || a.PoC != b.PoC || a.PoP != b.PoP ||
		a.NoTrade != b.NoTrade || a.Realized != b.Realized {
		return false
	}
	if !(a.AggRMSE == b.AggRMSE || (math.IsNaN(a.AggRMSE) && math.IsNaN(b.AggRMSE))) {
		return false
	}
	if len(a.Selected) != len(b.Selected) || len(a.Taus) != len(b.Taus) ||
		len(a.SellerProfits) != len(b.SellerProfits) {
		return false
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			return false
		}
	}
	for i := range a.Taus {
		if a.Taus[i] != b.Taus[i] {
			return false
		}
	}
	for i := range a.SellerProfits {
		if a.SellerProfits[i] != b.SellerProfits[i] {
			return false
		}
	}
	return true
}

// TestSnapshotRoundTripDeterminism is the correctness bar of the
// durable state layer: running rounds 1..n, snapshotting through a
// full JSON encode/decode, resuming into a FRESH mechanism, and
// continuing to N must be RoundRecord-identical to the uninterrupted
// run — across stateless, windowed, and RNG-carrying policies, over a
// market with transient delivery failures.
func TestSnapshotRoundTripDeterminism(t *testing.T) {
	policies := []struct {
		name string
		make func() bandit.Policy
	}{
		{"UCBGreedy", func() bandit.Policy { return bandit.UCBGreedy{} }},
		{"SlidingWindowUCB", func() bandit.Policy { return bandit.NewSlidingWindowUCB(7) }},
		{"Thompson", func() bandit.Policy { return bandit.NewThompson(rng.New(99)) }},
	}
	const breakAt, horizon = 9, 30
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *Config {
				cfg, _ := testConfig(t, 8, 3, horizon, 4, 5)
				cfg.Market.DeliveryRate = 0.85
				cfg.Market.DeliverySeed = 7
				cfg.KeepRounds = true
				cfg.Checkpoints = []int{5, 15, 25}
				return cfg
			}

			// Uninterrupted reference run.
			ref, err := Run(build(), tc.make())
			if err != nil {
				t.Fatal(err)
			}
			if ref.RoundsPlayed != horizon {
				t.Fatalf("reference played %d rounds", ref.RoundsPlayed)
			}

			// Interrupted run: break after breakAt rounds...
			m1, err := NewMechanism(build(), tc.make())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < breakAt; i++ {
				if _, err := m1.Step(); err != nil {
					t.Fatal(err)
				}
			}
			data, err := m1.Snapshot().Encode()
			if err != nil {
				t.Fatal(err)
			}

			// ...then resume from the wire bytes into a fresh world.
			st, err := DecodeState(data)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := Resume(build(), tc.make(), st)
			if err != nil {
				t.Fatal(err)
			}
			if m2.Round() != breakAt+1 {
				t.Fatalf("resumed at round %d, want %d", m2.Round(), breakAt+1)
			}
			for !m2.Done() {
				if _, err := m2.Step(); err != nil {
					t.Fatal(err)
				}
			}
			got := m2.Result()

			if len(got.Rounds) != len(ref.Rounds) {
				t.Fatalf("resumed run kept %d rounds, reference %d", len(got.Rounds), len(ref.Rounds))
			}
			for i := range ref.Rounds {
				if !recordsEqual(ref.Rounds[i], got.Rounds[i]) {
					t.Fatalf("round %d diverged:\nref %+v\ngot %+v", i+1, ref.Rounds[i], got.Rounds[i])
				}
			}
			if len(got.Checkpoints) != len(ref.Checkpoints) {
				t.Fatalf("checkpoints %d vs %d", len(got.Checkpoints), len(ref.Checkpoints))
			}
			for i := range ref.Checkpoints {
				if ref.Checkpoints[i] != got.Checkpoints[i] {
					t.Errorf("checkpoint %d diverged: %+v vs %+v", i, ref.Checkpoints[i], got.Checkpoints[i])
				}
			}
			if ref.RealizedRevenue != got.RealizedRevenue ||
				ref.ExpectedRevenue != got.ExpectedRevenue ||
				ref.Regret != got.Regret ||
				ref.CumPoC != got.CumPoC || ref.CumPoP != got.CumPoP || ref.CumPoS != got.CumPoS ||
				ref.ConsumerSpend != got.ConsumerSpend {
				t.Errorf("cumulative metrics diverged:\nref %+v\ngot %+v", ref, got)
			}
			for i := range ref.Estimates {
				if ref.Estimates[i] != got.Estimates[i] {
					t.Errorf("estimate %d: %v vs %v", i, ref.Estimates[i], got.Estimates[i])
				}
			}
			for i := range ref.SellerTotals {
				if ref.SellerTotals[i] != got.SellerTotals[i] {
					t.Errorf("seller total %d: %v vs %v", i, ref.SellerTotals[i], got.SellerTotals[i])
				}
			}
			// The resumed run's ledger must replay to the same balances.
			if w1, w2 := m1.Market().Ledger().Balance("platform"), m2.Market().Ledger().Balance("platform"); w1 == w2 {
				// m1 stopped at breakAt; equality is only expected for
				// the fully played reference, so just sanity-check the
				// resumed ledger is further along.
				t.Logf("ledger balances: interrupted %v, resumed %v", w1, w2)
			}
		})
	}
}

// TestSnapshotIsDeepCopy: stepping the mechanism after Snapshot must
// not disturb the exported state.
func TestSnapshotIsDeepCopy(t *testing.T) {
	cfg, _ := testConfig(t, 6, 2, 20, 3, 11)
	m, err := NewMechanism(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Snapshot()
	before, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("snapshot mutated by later steps")
	}
}

// TestResumeMismatches: a snapshot only resumes under its own
// configuration and policy; detectable mismatches are errors, not
// silent corruption.
func TestResumeMismatches(t *testing.T) {
	cfg, _ := testConfig(t, 6, 2, 20, 3, 11)
	m, err := NewMechanism(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Snapshot()

	fresh := func() *Config { c, _ := testConfig(t, 6, 2, 20, 3, 11); return c }

	if _, err := Resume(fresh(), bandit.NewThompson(rng.New(1)), st); err == nil {
		t.Error("policy mismatch not detected")
	}
	small, _ := testConfig(t, 4, 2, 20, 3, 11)
	if _, err := Resume(small, bandit.UCBGreedy{}, st); err == nil {
		t.Error("population mismatch not detected")
	}
	short, _ := testConfig(t, 6, 2, 3, 3, 11)
	if _, err := Resume(short, bandit.UCBGreedy{}, st); err == nil {
		t.Error("horizon mismatch not detected")
	}
	if _, err := Resume(fresh(), bandit.UCBGreedy{}, nil); err == nil {
		t.Error("nil state not detected")
	}
	if ok, err := Resume(fresh(), bandit.UCBGreedy{}, st); err != nil {
		t.Errorf("matching resume failed: %v", err)
	} else if ok.Round() != m.Round() {
		t.Errorf("resumed at %d, want %d", ok.Round(), m.Round())
	}
}

// TestDecodeStateStrict: version bumps, unknown fields, and invariant
// violations must all error.
func TestDecodeStateStrict(t *testing.T) {
	cfg, _ := testConfig(t, 5, 2, 15, 3, 3)
	m, err := NewMechanism(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := m.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeState(data); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	var loose map[string]json.RawMessage
	if err := json.Unmarshal(data, &loose); err != nil {
		t.Fatal(err)
	}
	mutate := func(mut func(map[string]json.RawMessage)) []byte {
		cp := make(map[string]json.RawMessage, len(loose))
		for k, v := range loose {
			cp[k] = v
		}
		mut(cp)
		b, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	bumped := mutate(func(m map[string]json.RawMessage) { m["version"] = json.RawMessage("99") })
	if _, err := DecodeState(bumped); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version bump: got %v", err)
	}
	unknown := mutate(func(m map[string]json.RawMessage) { m["surprise"] = json.RawMessage(`"x"`) })
	if _, err := DecodeState(unknown); err == nil {
		t.Error("unknown field accepted")
	}
	negative := mutate(func(m map[string]json.RawMessage) { m["next"] = json.RawMessage("-3") })
	if _, err := DecodeState(negative); err == nil {
		t.Error("negative round cursor accepted")
	}
	if _, err := DecodeState(data[:len(data)/2]); err == nil {
		t.Error("truncated payload accepted")
	}
}

// TestResultAvgGuards: the per-round averages must not emit NaN
// before any round has been played (regression: CumPoC/0 == NaN).
func TestResultAvgGuards(t *testing.T) {
	cfg, _ := testConfig(t, 5, 2, 10, 3, 1)
	m, err := NewMechanism(cfg, bandit.UCBGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if v := res.AvgPoC(); v != 0 || math.IsNaN(v) {
		t.Errorf("AvgPoC on empty run = %v, want 0", v)
	}
	if v := res.AvgPoP(); v != 0 || math.IsNaN(v) {
		t.Errorf("AvgPoP on empty run = %v, want 0", v)
	}
	if v := res.AvgPoSPerSeller(cfg.K); v != 0 || math.IsNaN(v) {
		t.Errorf("AvgPoSPerSeller on empty run = %v, want 0", v)
	}
	if v := (&Result{CumPoS: 1, RoundsPlayed: 1}).AvgPoSPerSeller(0); v != 0 {
		t.Errorf("AvgPoSPerSeller with k=0 = %v, want 0", v)
	}
}

// FuzzDecodeState: arbitrary corruptions of a snapshot must either
// decode to a valid state or error — never panic, and never produce a
// state that silently violates the invariants validate() enforces.
func FuzzDecodeState(f *testing.F) {
	cfg := func() *Config {
		c, _ := buildTestConfig(5, 2, 15, 3, 3)
		return c
	}
	m, err := NewMechanism(cfg(), bandit.UCBGreedy{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Step(); err != nil {
			f.Fatal(err)
		}
	}
	valid, err := m.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Replace(valid, []byte(`"version":1`), []byte(`"version":2`), 1))
	f.Add(bytes.Replace(valid, []byte(`"next":`), []byte(`"nxet":`), 1))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			return
		}
		// Whatever decoded must satisfy the invariants...
		if verr := st.validate(); verr != nil {
			t.Fatalf("DecodeState returned invalid state: %v", verr)
		}
		// ...and resuming must never panic; errors are fine.
		mm, err := Resume(cfg(), bandit.UCBGreedy{}, st)
		if err != nil {
			return
		}
		for i := 0; i < 3 && !mm.Done(); i++ {
			if _, err := mm.Step(); err != nil {
				return
			}
		}
	})
}
