package core

// This file implements the durable state layer of a live Mechanism:
// Snapshot exports every online accumulator — round cursor, quality
// estimators, regret tracker, Kahan-compensated profit sums, ledger
// journal, and the position of every random stream — and Resume
// rebuilds a mechanism that continues the run round-for-round
// identically to one that was never interrupted.
//
// Everything derivable from the configuration (seller costs, quality
// means, bias matrices, K, bounds, the optimal set and gap constants
// of the regret tracker) is deliberately NOT persisted: Resume
// reconstructs it through NewMechanism from the same Config and then
// overwrites only the mutable state. That keeps snapshots small,
// makes version skew visible (a config change invalidates nothing
// silently — the state simply fails validation), and mirrors how the
// RNG layer works: streams are re-split from the seed, then fast-
// forwarded by restoring their exported positions.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"cmabhs/internal/bandit"
	"cmabhs/internal/market"
	"cmabhs/internal/numutil"
)

// StateVersion is the schema version written into every snapshot.
// Bump it whenever the State layout changes incompatibly; DecodeState
// rejects any other version outright rather than guessing.
const StateVersion = 1

// State is the serializable snapshot of a live Mechanism.
type State struct {
	Version int    `json:"version"`
	Policy  string `json:"policy"` // policy name, checked on Resume

	Next         int    `json:"next"` // next round to play, 1-based
	Stopped      string `json:"stopped,omitempty"`
	RoundsPlayed int    `json:"rounds_played"`

	Arms        bandit.ArmsState    `json:"arms"`
	Tracker     bandit.TrackerState `json:"tracker"`
	PolicyState *bandit.PolicyState `json:"policy_state,omitempty"`
	Market      market.State        `json:"market"`

	Realized numutil.KahanState `json:"realized"`
	CumPoC   numutil.KahanState `json:"cum_poc"`
	CumPoP   numutil.KahanState `json:"cum_pop"`
	CumPoS   numutil.KahanState `json:"cum_pos"`
	Spend    numutil.KahanState `json:"spend"`
	AggSum   numutil.KahanState `json:"agg_sum"`

	AggRounds    int       `json:"agg_rounds"`
	NextCkpt     int       `json:"next_ckpt"`
	SellerTotals []float64 `json:"seller_totals"`

	Dynamic *bandit.DynamicRegretState `json:"dynamic,omitempty"`

	Rounds      []roundRecordWire `json:"rounds,omitempty"`
	Checkpoints []Checkpoint      `json:"checkpoints,omitempty"`
}

// roundRecordWire is RoundRecord with a JSON-safe AggRMSE: the field
// is NaN for rounds without a data layer, and JSON has no NaN — a nil
// pointer encodes it instead.
type roundRecordWire struct {
	Round         int       `json:"round"`
	Selected      []int     `json:"selected"`
	PJ            float64   `json:"pj"`
	P             float64   `json:"p"`
	Taus          []float64 `json:"taus"`
	TotalTau      float64   `json:"total_tau"`
	PoC           float64   `json:"poc"`
	PoP           float64   `json:"pop"`
	SellerProfits []float64 `json:"seller_profits"`
	NoTrade       bool      `json:"no_trade,omitempty"`
	Realized      float64   `json:"realized"`
	AggRMSE       *float64  `json:"agg_rmse,omitempty"`
}

func toWire(r RoundRecord) roundRecordWire {
	w := roundRecordWire{
		Round:         r.Round,
		Selected:      r.Selected,
		PJ:            r.PJ,
		P:             r.P,
		Taus:          r.Taus,
		TotalTau:      r.TotalTau,
		PoC:           r.PoC,
		PoP:           r.PoP,
		SellerProfits: r.SellerProfits,
		NoTrade:       r.NoTrade,
		Realized:      r.Realized,
	}
	if !math.IsNaN(r.AggRMSE) {
		v := r.AggRMSE
		w.AggRMSE = &v
	}
	return w
}

func fromWire(w roundRecordWire) RoundRecord {
	r := RoundRecord{
		Round:         w.Round,
		Selected:      w.Selected,
		PJ:            w.PJ,
		P:             w.P,
		Taus:          w.Taus,
		TotalTau:      w.TotalTau,
		PoC:           w.PoC,
		PoP:           w.PoP,
		SellerProfits: w.SellerProfits,
		NoTrade:       w.NoTrade,
		Realized:      w.Realized,
		AggRMSE:       math.NaN(),
	}
	if w.AggRMSE != nil {
		r.AggRMSE = *w.AggRMSE
	}
	return r
}

// Snapshot exports the mechanism's full mutable state. The snapshot
// is a deep copy — the mechanism may keep stepping afterwards without
// disturbing it.
func (m *Mechanism) Snapshot() *State {
	st := &State{
		Version:      StateVersion,
		Policy:       m.policy.Name(),
		Next:         m.next,
		Stopped:      m.stopped,
		RoundsPlayed: m.res.RoundsPlayed,
		Arms:         m.arms.State(),
		Tracker:      m.tracker.State(),
		Market:       m.mkt.State(),
		Realized:     m.realized.State(),
		CumPoC:       m.cumPoC.State(),
		CumPoP:       m.cumPoP.State(),
		CumPoS:       m.cumPoS.State(),
		Spend:        m.spend.State(),
		AggSum:       m.aggSum.State(),
		AggRounds:    m.aggRounds,
		NextCkpt:     m.nextCkpt,
		SellerTotals: append([]float64(nil), m.sellerTotals...),
	}
	if sp, ok := m.policy.(bandit.StatefulPolicy); ok {
		ps := sp.PolicyState()
		st.PolicyState = &ps
	}
	if m.dynTrack != nil {
		d := m.dynTrack.State()
		st.Dynamic = &d
	}
	for _, r := range m.res.Rounds {
		st.Rounds = append(st.Rounds, toWire(r))
	}
	st.Checkpoints = append([]Checkpoint(nil), m.res.Checkpoints...)
	return st
}

// validate checks the configuration-independent invariants of a
// decoded state. Configuration-dependent checks (population size,
// horizon, policy identity) happen in Resume.
func (s *State) validate() error {
	if s.Version != StateVersion {
		return fmt.Errorf("core: state version %d, this build reads version %d", s.Version, StateVersion)
	}
	if s.Policy == "" {
		return errors.New("core: state has no policy name")
	}
	if s.Next < 1 {
		return fmt.Errorf("core: state next round %d < 1", s.Next)
	}
	if s.RoundsPlayed < 0 || s.RoundsPlayed >= s.Next {
		return fmt.Errorf("core: state played %d rounds with next round %d", s.RoundsPlayed, s.Next)
	}
	if s.AggRounds < 0 || s.AggRounds > s.RoundsPlayed {
		return fmt.Errorf("core: state has %d aggregation rounds of %d played", s.AggRounds, s.RoundsPlayed)
	}
	if s.NextCkpt < 0 {
		return fmt.Errorf("core: state checkpoint cursor %d < 0", s.NextCkpt)
	}
	for i, w := range s.Rounds {
		if w.Round < 1 {
			return fmt.Errorf("core: state round record %d has round %d", i, w.Round)
		}
		if len(w.Taus) != len(w.Selected) || len(w.SellerProfits) != len(w.Selected) {
			return fmt.Errorf("core: state round record %d has mismatched slice lengths", i)
		}
	}
	return nil
}

// Encode serializes the state as JSON.
func (s *State) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// DecodeState parses and validates a snapshot produced by Encode. It
// is strict on purpose: an unknown field, a version mismatch, or an
// invariant violation is an error — never a silently zeroed field.
func DecodeState(data []byte) (*State, error) {
	// Loose version probe first, so a snapshot from a different schema
	// reports "version mismatch" instead of whichever unknown field the
	// strict decoder happens to trip on.
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("core: decode state: %w", err)
	}
	if probe.Version != StateVersion {
		return nil, fmt.Errorf("core: state version %d, this build reads version %d", probe.Version, StateVersion)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	st := &State{}
	if err := dec.Decode(st); err != nil {
		return nil, fmt.Errorf("core: decode state: %w", err)
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// Resume rebuilds a live Mechanism from a configuration and a
// snapshot taken under that same configuration. The config and policy
// must match the originals: Resume reconstructs all structural data
// through NewMechanism and then overwrites the mutable state, erroring
// on any mismatch it can detect (policy name, population size, window
// width, stream presence, horizon).
func Resume(cfg *Config, policy bandit.Policy, st *State) (*Mechanism, error) {
	if st == nil {
		return nil, errors.New("core: nil state")
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	m, err := NewMechanism(cfg, policy)
	if err != nil {
		return nil, err
	}
	if st.Policy != policy.Name() {
		return nil, fmt.Errorf("core: state was taken under policy %q, resuming with %q", st.Policy, policy.Name())
	}
	if st.Next > cfg.Market.Job.N+1 {
		return nil, fmt.Errorf("core: state next round %d beyond horizon N=%d", st.Next, cfg.Market.Job.N)
	}
	if len(st.SellerTotals) != cfg.Market.M() {
		return nil, fmt.Errorf("core: state covers %d sellers, config has %d", len(st.SellerTotals), cfg.Market.M())
	}
	if st.NextCkpt > len(cfg.Checkpoints) {
		return nil, fmt.Errorf("core: state checkpoint cursor %d beyond %d configured checkpoints", st.NextCkpt, len(cfg.Checkpoints))
	}
	if err := m.arms.Restore(st.Arms); err != nil {
		return nil, err
	}
	if m.sync != nil {
		m.sync.InvalidateSelection() // bulk estimator rewrite
	}
	if err := m.tracker.Restore(st.Tracker); err != nil {
		return nil, err
	}
	sp, stateful := policy.(bandit.StatefulPolicy)
	if stateful != (st.PolicyState != nil) {
		return nil, fmt.Errorf("core: policy %q state does not match snapshot", policy.Name())
	}
	if st.PolicyState != nil {
		if err := sp.RestorePolicyState(*st.PolicyState); err != nil {
			return nil, err
		}
	}
	if err := m.mkt.Restore(st.Market); err != nil {
		return nil, err
	}
	if (m.dynTrack != nil) != (st.Dynamic != nil) {
		return nil, errors.New("core: dynamic-regret state does not match quality model")
	}
	if st.Dynamic != nil {
		if err := m.dynTrack.Restore(*st.Dynamic); err != nil {
			return nil, err
		}
	}
	m.realized.Restore(st.Realized)
	m.cumPoC.Restore(st.CumPoC)
	m.cumPoP.Restore(st.CumPoP)
	m.cumPoS.Restore(st.CumPoS)
	m.spend.Restore(st.Spend)
	m.aggSum.Restore(st.AggSum)
	m.aggRounds = st.AggRounds
	m.nextCkpt = st.NextCkpt
	copy(m.sellerTotals, st.SellerTotals)
	m.next = st.Next
	m.stopped = st.Stopped
	m.res.RoundsPlayed = st.RoundsPlayed
	for _, w := range st.Rounds {
		m.res.Rounds = append(m.res.Rounds, fromWire(w))
	}
	m.res.Checkpoints = append([]Checkpoint(nil), st.Checkpoints...)
	return m, nil
}
